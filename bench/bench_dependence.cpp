//===- bench/bench_dependence.cpp - B4: dependence-test precision -------------===//
//
// The payoff table: on a battery of reference pairs, how many dependences
// the tests disprove or refine with the paper's extended classes enabled
// versus the linear-only (classical) setting, plus timing.
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "dependence/DependenceAnalyzer.h"
#include "ivclass/Pipeline.h"
#include <benchmark/benchmark.h>
#include <cstdio>

using namespace biv;
using namespace biv::dependence;

namespace {

void BM_DependenceBattery(benchmark::State &State) {
  ivclass::AnalyzedProgram P = ivclass::analyzeSourceOrDie(
      bench::genDependenceBattery(State.range(0)));
  for (auto _ : State) {
    DependenceAnalyzer DA(*P.IA);
    std::vector<Dependence> Deps = DA.analyze();
    benchmark::DoNotOptimize(Deps.size());
  }
  State.counters["pairs"] = State.range(0);
}

BENCHMARK(BM_DependenceBattery)->Arg(6)->Arg(24)->Arg(96);

void printPrecision() {
  std::printf("# B4: dependence precision, extended classes vs linear-only\n");
  std::printf("%8s | %12s %12s %12s | %12s %12s %12s\n", "pairs",
              "indep(ext)", "refined(ext)", "assumed(ext)", "indep(lin)",
              "refined(lin)", "assumed(lin)");
  for (unsigned Pairs : {6u, 24u, 96u}) {
    ivclass::AnalyzedProgram P =
        ivclass::analyzeSourceOrDie(bench::genDependenceBattery(Pairs));
    DependenceAnalyzer::Options Ext, Lin;
    Lin.UseExtendedClasses = false;
    DependenceAnalyzer DAExt(*P.IA, Ext), DALin(*P.IA, Lin);
    DAExt.analyze();
    DALin.analyze();
    const DependenceStats &SE = DAExt.stats();
    const DependenceStats &SL = DALin.stats();
    std::printf("%8u | %12u %12u %12u | %12u %12u %12u\n", Pairs,
                SE.Independent, SE.DirectionRefined, SE.AssumedDependences,
                SL.Independent, SL.DirectionRefined, SL.AssumedDependences);
  }
  std::printf("# (shape: the extended column proves more pairs independent"
              " and refines more directions)\n");
}

} // namespace

int main(int argc, char **argv) {
  printPrecision();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
