//===- bench/bench_ssa.cpp - B5: substrate throughput -------------------------===//
//
// Throughput of the pipeline stages under the analysis: parsing/lowering,
// SSA construction (phi placement + renaming), and SCCP.  Not a claim from
// the paper, but the substrate cost against which the "improves the speed
// of compilers" argument is made.
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "frontend/Lowering.h"
#include "ssa/SCCP.h"
#include "ssa/SSABuilder.h"
#include <benchmark/benchmark.h>
#include <cstdio>

using namespace biv;

namespace {

void BM_ParseAndLower(benchmark::State &State) {
  std::string Src = bench::genLinearChain(State.range(0));
  for (auto _ : State) {
    auto F = frontend::parseAndLowerOrDie(Src);
    benchmark::DoNotOptimize(F->instructionCount());
  }
  State.SetBytesProcessed(State.iterations() * Src.size());
}

void BM_BuildSSA(benchmark::State &State) {
  std::string Src = bench::genLinearChain(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    auto F = frontend::parseAndLowerOrDie(Src);
    State.ResumeTiming();
    ssa::SSAInfo Info = ssa::buildSSA(*F);
    benchmark::DoNotOptimize(Info.PhisPlaced);
  }
}

void BM_SCCP(benchmark::State &State) {
  std::string Src = bench::genLinearChain(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    auto F = frontend::parseAndLowerOrDie(Src);
    ssa::buildSSA(*F);
    State.ResumeTiming();
    ssa::SCCPResult R = ssa::runSCCP(*F, /*SimplifyCFG=*/false);
    benchmark::DoNotOptimize(R.FoldedInstructions);
  }
}

void BM_Dominators(benchmark::State &State) {
  auto F = frontend::parseAndLowerOrDie(
      bench::genMixedClasses(State.range(0)));
  ssa::buildSSA(*F);
  for (auto _ : State) {
    analysis::DominatorTree DT(*F);
    analysis::LoopInfo LI(*F, DT);
    benchmark::DoNotOptimize(LI.loops().size());
  }
}

BENCHMARK(BM_ParseAndLower)->Arg(100)->Arg(1000);
BENCHMARK(BM_BuildSSA)->Arg(100)->Arg(1000);
BENCHMARK(BM_SCCP)->Arg(100)->Arg(1000);
BENCHMARK(BM_Dominators)->Arg(8)->Arg(64);

void printTable() {
  std::printf("# B5: SSA construction statistics on the chain workload\n");
  std::printf("%10s %12s %12s\n", "stmts", "instrs", "phis");
  for (unsigned N : {100u, 1000u, 3000u}) {
    auto F = frontend::parseAndLowerOrDie(bench::genLinearChain(N));
    size_t Before = F->instructionCount();
    ssa::SSAInfo Info = ssa::buildSSA(*F);
    std::printf("%10u %12zu %12u\n", N, Before, Info.PhisPlaced);
  }
}

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
