//===- bench/bench_transform.cpp - B6: the transformations' payoff ------------===//
//
// Ablation for the two transformations the paper motivates: peeling turns
// wrap-around-flagged dependences into plain ones (section 4.1/6), and
// classification-driven strength reduction eliminates loop multiplications
// (the introduction's classical link).  Shape to check: peel removes every
// "after k iterations" flag; strength reduction removes all linear
// multiplications and the interpreter step count drops.
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "dependence/DependenceAnalyzer.h"
#include "frontend/Lowering.h"
#include "interp/Interpreter.h"
#include "ivclass/Pipeline.h"
#include "ssa/SCCP.h"
#include "ssa/SSABuilder.h"
#include "ssa/SSAVerifier.h"
#include "transform/LoopPeel.h"
#include "transform/StrengthReduce.h"
#include <benchmark/benchmark.h>
#include <cstdio>

using namespace biv;

namespace {

std::string wrapHeavySource(unsigned Chains) {
  std::string Init, Body;
  for (unsigned K = 0; K < Chains; ++K) {
    std::string W = "w" + std::to_string(K);
    Init += "  " + W + " = 90;\n";
    Body += "    A" + std::to_string(K) + "[i] = A" + std::to_string(K) +
            "[" + W + "] + 1;\n    " + W + " = i;\n";
  }
  return "func f(n) {\n" + Init + "  for L: i = 1 to 50 {\n" + Body +
         "  }\n  return 0;\n}\n";
}

void BM_StrengthReduce(benchmark::State &State) {
  std::string Src = bench::genLinearChain(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    ivclass::AnalyzedProgram P = ivclass::analyzeSourceOrDie(Src);
    State.ResumeTiming();
    transform::StrengthReduceStats S = transform::strengthReduce(*P.IA);
    benchmark::DoNotOptimize(S.Reduced);
  }
}

void BM_Peel(benchmark::State &State) {
  std::string Src = wrapHeavySource(State.range(0));
  for (auto _ : State) {
    State.PauseTiming();
    auto F = frontend::parseAndLowerOrDie(Src);
    State.ResumeTiming();
    bool OK = transform::peelLoop(*F, "L", 1);
    benchmark::DoNotOptimize(OK);
  }
}

BENCHMARK(BM_StrengthReduce)->Arg(30)->Arg(300);
BENCHMARK(BM_Peel)->Arg(2)->Arg(16);

void printTable() {
  // Peel ablation: wrap-flagged dependences before/after.
  std::printf("# B6a: peeling vs wrap-around dependence flags\n");
  std::printf("%8s %18s %18s\n", "chains", "flagged_before", "flagged_after");
  for (unsigned Chains : {1u, 4u, 12u}) {
    std::string Src = wrapHeavySource(Chains);
    auto flagged = [&](bool Peel) {
      auto F = frontend::parseAndLowerOrDie(Src);
      if (Peel)
        transform::peelLoop(*F, "L", 1);
      ssa::buildSSA(*F);
      ssa::runSCCP(*F, false);
      analysis::DominatorTree DT(*F);
      analysis::LoopInfo LI(*F, DT);
      ivclass::InductionAnalysis IA(*F, DT, LI);
      IA.run();
      dependence::DependenceAnalyzer DA(IA);
      unsigned N = 0;
      for (const dependence::Dependence &D : DA.analyze())
        N += D.Result.ValidAfterIterations > 0;
      return N;
    };
    std::printf("%8u %18u %18u\n", Chains, flagged(false), flagged(true));
  }

  // Strength reduction: static and *dynamic* multiplication counts (the
  // transformation trades each executed multiply for an add in the latch).
  std::printf("\n# B6b: strength reduction on the chain workload\n");
  std::printf("%8s %10s %10s %14s %14s\n", "stmts", "muls_pre", "muls_post",
              "dynmuls_pre", "dynmuls_post");
  for (unsigned N : {30u, 100u, 300u}) {
    std::string Src = bench::genLinearChain(N);
    auto countMuls = [](const ir::Function &F) {
      unsigned M = 0;
      for (const auto &BB : F.blocks())
        for (const auto &I : *BB)
          M += I->opcode() == ir::Opcode::Mul;
      return M;
    };
    auto dynMuls = [](const ir::Function &F) {
      interp::ExecOptions EO;
      EO.MaxSteps = 64u << 20;
      interp::ExecutionTrace T = interp::run(F, {64}, EO);
      uint64_t M = 0;
      for (const auto &BB : F.blocks())
        for (const auto &I : *BB)
          if (I->opcode() == ir::Opcode::Mul)
            M += T.sequenceOf(I).size();
      return M;
    };
    ivclass::AnalyzedProgram P = ivclass::analyzeSourceOrDie(Src);
    unsigned Pre = countMuls(*P.F);
    uint64_t DynPre = dynMuls(*P.F);
    transform::strengthReduce(*P.IA);
    ssa::verifySSAOrDie(*P.F);
    std::printf("%8u %10u %10u %14llu %14llu\n", N, Pre, countMuls(*P.F),
                static_cast<unsigned long long>(DynPre),
                static_cast<unsigned long long>(dynMuls(*P.F)));
  }
  std::printf("# (shape: flags drop to 0 after peel; every linear multiply "
              "disappears, statically and dynamically)\n");
}

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
