//===- bench/bench_frontend.cpp - B7: front-half cost per instruction ---------===//
//
// Measures the allocation-lean front half in isolation: parse+lower only,
// parse+SSA, and parse+SSA+SCCP, each as best-of-reps nanoseconds per IR
// instruction at three chain sizes.  This is the stage DESIGN.md §11 moves
// onto arenas and interned symbols, so the record tracks exactly the costs
// that rewrite targets -- no induction analysis, no reporting.
//
//   bench_frontend [--quick] [--json=PATH]
//
// Plain binary (no google-benchmark) like bench_batch: the numbers land in
// BENCH_SCALING.json under the "frontend" key via run_benchmarks.sh.
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "frontend/Lowering.h"
#include "ssa/SCCP.h"
#include "ssa/SSABuilder.h"
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace biv;

namespace {

double nowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct StagePoint {
  unsigned Stmts;
  size_t Instrs;       // after parse+lower (pre-SSA), the stable size metric
  double ParseUs;      // parse + lower
  double SSAUs;        // parse + lower + SSA
  double SCCPUs;       // parse + lower + SSA + SCCP (fold-only)
};

StagePoint measure(unsigned N, int Reps) {
  const std::string Src = bench::genLinearChain(N);
  StagePoint P{N, 0, 1e30, 1e30, 1e30};
  for (int Rep = 0; Rep < Reps; ++Rep) {
    {
      double T0 = nowUs();
      std::unique_ptr<ir::Function> F = frontend::parseAndLowerOrDie(Src);
      double T1 = nowUs();
      P.ParseUs = std::min(P.ParseUs, T1 - T0);
      P.Instrs = F->instructionCount();
    }
    {
      double T0 = nowUs();
      std::unique_ptr<ir::Function> F = frontend::parseAndLowerOrDie(Src);
      ssa::buildSSA(*F);
      double T1 = nowUs();
      P.SSAUs = std::min(P.SSAUs, T1 - T0);
    }
    {
      double T0 = nowUs();
      std::unique_ptr<ir::Function> F = frontend::parseAndLowerOrDie(Src);
      ssa::buildSSA(*F);
      ssa::runSCCP(*F, /*SimplifyCFG=*/false);
      double T1 = nowUs();
      P.SCCPUs = std::min(P.SCCPUs, T1 - T0);
    }
  }
  return P;
}

} // namespace

int main(int Argc, char **Argv) {
  int Reps = 5;
  std::string JsonPath;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--quick") == 0)
      Reps = 2;
    else if (std::strncmp(A, "--json=", 7) == 0)
      JsonPath = A + 7;
    else {
      std::fprintf(stderr, "usage: bench_frontend [--quick] [--json=PATH]\n");
      return 2;
    }
  }

  std::printf("# B7: front-half cost (parse / +ssa / +sccp), ns per "
              "instruction\n");
  std::printf("%10s %10s %12s %12s %12s\n", "stmts", "instrs", "parse",
              "parse+ssa", "+sccp");
  std::vector<StagePoint> Points;
  for (unsigned N : {64u, 512u, 4096u}) {
    StagePoint P = measure(N, Reps);
    Points.push_back(P);
    std::printf("%10u %10zu %12.1f %12.1f %12.1f\n", P.Stmts, P.Instrs,
                P.ParseUs * 1000.0 / double(P.Instrs),
                P.SSAUs * 1000.0 / double(P.Instrs),
                P.SCCPUs * 1000.0 / double(P.Instrs));
  }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "bench_frontend: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
    char Buf[256];
    Out << "[\n";
    for (size_t I = 0; I < Points.size(); ++I) {
      const StagePoint &P = Points[I];
      std::snprintf(
          Buf, sizeof(Buf),
          "  {\"stmts\": %u, \"instrs\": %zu, \"parse_ns_per_instr\": %.1f, "
          "\"ssa_ns_per_instr\": %.1f, \"sccp_ns_per_instr\": %.1f}%s\n",
          P.Stmts, P.Instrs, P.ParseUs * 1000.0 / double(P.Instrs),
          P.SSAUs * 1000.0 / double(P.Instrs),
          P.SCCPUs * 1000.0 / double(P.Instrs),
          I + 1 < Points.size() ? "," : "");
      Out << Buf;
    }
    Out << "]\n";
    std::printf("# wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
