//===- bench/bench_scaling.cpp - B1: the linear-time claim --------------------===//
//
// The paper: "this algorithm is linear in the size of the SSA graph, not
// iterative."  This bench times the classification (SSA graph + Tarjan +
// classify) over loops of growing size and prints the per-statement cost,
// whose flatness is the claim's shape.
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "frontend/Lowering.h"
#include "ivclass/InductionAnalysis.h"
#include "ssa/SSABuilder.h"
#include <benchmark/benchmark.h>
#include <chrono>
#include <cstdio>

using namespace biv;

namespace {

struct Prepared {
  std::unique_ptr<ir::Function> F;
  std::unique_ptr<analysis::DominatorTree> DT;
  std::unique_ptr<analysis::LoopInfo> LI;
};

Prepared prepare(const std::string &Src) {
  Prepared P;
  P.F = frontend::parseAndLowerOrDie(Src);
  ssa::buildSSA(*P.F);
  P.DT = std::make_unique<analysis::DominatorTree>(*P.F);
  P.LI = std::make_unique<analysis::LoopInfo>(*P.F, *P.DT);
  return P;
}

void BM_ClassifyChain(benchmark::State &State) {
  unsigned N = State.range(0);
  Prepared P = prepare(bench::genLinearChain(N));
  ivclass::InductionAnalysis::Options Opts;
  Opts.MaterializeExitValues = false; // run() must stay re-entrant per iter
  for (auto _ : State) {
    ivclass::InductionAnalysis IA(*P.F, *P.DT, *P.LI, Opts);
    IA.run();
    benchmark::DoNotOptimize(IA.stats().Regions);
  }
  State.SetItemsProcessed(State.iterations() * P.F->instructionCount());
  State.counters["stmts"] = N;
}

void BM_ClassifyMixed(benchmark::State &State) {
  unsigned Groups = State.range(0);
  Prepared P = prepare(bench::genMixedClasses(Groups));
  ivclass::InductionAnalysis::Options Opts;
  Opts.MaterializeExitValues = false;
  for (auto _ : State) {
    ivclass::InductionAnalysis IA(*P.F, *P.DT, *P.LI, Opts);
    IA.run();
    benchmark::DoNotOptimize(IA.stats().Regions);
  }
  State.SetItemsProcessed(State.iterations() * P.F->instructionCount());
}

BENCHMARK(BM_ClassifyChain)->Arg(10)->Arg(30)->Arg(64)->Arg(100)->Arg(300)
    ->Arg(512)->Arg(1000)->Arg(3000)->Arg(4096);
BENCHMARK(BM_ClassifyMixed)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

/// Prints the B1 table: statements vs. one-shot wall time and ns/stmt; the
/// last column's flatness is the paper's linearity claim.
void printTable() {
  std::printf("# B1: classification time vs loop size (claim: linear in "
              "the size of the SSA graph)\n");
  std::printf("%10s %12s %14s %12s\n", "stmts", "instrs", "time_us",
              "ns_per_inst");
  for (unsigned N : {10u, 30u, 64u, 100u, 300u, 512u, 1000u, 3000u, 4096u}) {
    Prepared P = prepare(bench::genLinearChain(N));
    ivclass::InductionAnalysis::Options Opts;
    Opts.MaterializeExitValues = false;
    // Best of five.
    double Best = 1e30;
    for (int Rep = 0; Rep < 5; ++Rep) {
      auto T0 = std::chrono::steady_clock::now();
      ivclass::InductionAnalysis IA(*P.F, *P.DT, *P.LI, Opts);
      IA.run();
      auto T1 = std::chrono::steady_clock::now();
      Best = std::min(
          Best, std::chrono::duration<double, std::micro>(T1 - T0).count());
    }
    size_t Instrs = P.F->instructionCount();
    std::printf("%10u %12zu %14.1f %12.1f\n", N, Instrs, Best,
                Best * 1000.0 / double(Instrs));
  }
}

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
