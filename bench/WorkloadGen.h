//===- bench/WorkloadGen.h - Synthetic program generator --------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generators of loop-language programs for the benchmarks:
/// derived-IV chains (scaling), mixed-class loops (coverage), deep nests
/// (multiloop IVs), and array-reference batteries (dependence precision).
/// All generation is seeded and reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_BENCH_WORKLOADGEN_H
#define BEYONDIV_BENCH_WORKLOADGEN_H

#include "support/Lcg.h"
#include <cstdint>
#include <string>
#include <vector>

namespace biv {
namespace bench {

/// Deterministic LCG shared with the fuzzing subsystem (support/Lcg.h).
using biv::Lcg;

/// One loop with a chain of \p N derived linear statements
/// (v_k = v_{k-1} + c or v_k = a*i + b), ending in array stores so nothing
/// is trivially dead.
inline std::string genLinearChain(unsigned N, uint64_t Seed = 1) {
  Lcg R(Seed);
  std::string Src = "func chain(n) {\n";
  for (unsigned K = 0; K < N; ++K)
    Src += "  v" + std::to_string(K) + " = 0;\n";
  Src += "  for L1: i = 1 to n {\n";
  for (unsigned K = 0; K < N; ++K) {
    std::string V = "v" + std::to_string(K);
    if (K == 0 || R.range(0, 2) == 0)
      Src += "    " + V + " = " + std::to_string(R.range(1, 9)) + "*i + " +
             std::to_string(R.range(0, 99)) + ";\n";
    else
      Src += "    " + V + " = v" + std::to_string(R.range(0, K - 1)) +
             " + " + std::to_string(R.range(1, 5)) + ";\n";
  }
  Src += "    A[v" + std::to_string(N - 1) + "] = i;\n";
  Src += "  }\n  return v0;\n}\n";
  return Src;
}

/// One loop mixing every class the paper handles, \p Groups times over:
/// linear, polynomial, geometric, wrap-around, periodic-3, and monotonic.
inline std::string genMixedClasses(unsigned Groups, uint64_t Seed = 2) {
  Lcg R(Seed);
  std::string Init, Body;
  for (unsigned G = 0; G < Groups; ++G) {
    std::string S = std::to_string(G);
    Init += "  lin" + S + " = 0; pol" + S + " = 1; geo" + S + " = 1;" +
            " wrp" + S + " = 9;" + " p" + S + " = 1; q" + S + " = 2; r" +
            S + " = 3; t" + S + " = 0; mon" + S + " = 0;\n";
    Body += "    lin" + S + " = lin" + S + " + " +
            std::to_string(R.range(1, 7)) + ";\n";
    Body += "    pol" + S + " = pol" + S + " + i;\n";
    Body += "    geo" + S + " = geo" + S + " * 2 + 1;\n";
    Body += "    wrp" + S + " = i;\n";
    Body += "    t" + S + " = p" + S + "; p" + S + " = q" + S + "; q" + S +
            " = r" + S + "; r" + S + " = t" + S + ";\n";
    Body += "    if (A[i] > " + std::to_string(R.range(0, 5)) + ") { mon" +
            S + " = mon" + S + " + 1; }\n";
  }
  return "func mixed(n) {\n" + Init + "  for L1: i = 1 to n {\n" + Body +
         "    B[lin0] = i;\n  }\n  return mon0;\n}\n";
}

/// A nest of \p Depth countable loops, each body updating a multiloop IV.
inline std::string genNest(unsigned Depth, unsigned TripEach = 4) {
  std::string Src = "func nest(n) {\n  k = 0;\n";
  std::string Pad = "  ";
  for (unsigned D = 0; D < Depth; ++D) {
    Src += Pad + "for L" + std::to_string(D + 1) + ": i" +
           std::to_string(D + 1) + " = 1 to " + std::to_string(TripEach) +
           " {\n";
    Pad += "  ";
  }
  Src += Pad + "k = k + 1;\n";
  Src += Pad + "A[k] = k;\n";
  for (unsigned D = 0; D < Depth; ++D) {
    Pad.resize(Pad.size() - 2);
    Src += Pad + "}\n";
  }
  Src += "  return k;\n}\n";
  return Src;
}

/// One loop with \p Pairs write/read reference pairs cycling through the
/// dependence-test situations: strong SIV hits and misses, GCD-separable
/// strides, weak-zero, wrap-around, periodic, and monotonic subscripts.
inline std::string genDependenceBattery(unsigned Pairs, uint64_t Seed = 3) {
  Lcg R(Seed);
  std::string Init = "  w = 99; p = 1; q = 2; t = 0; m = 0;\n";
  std::string Body;
  for (unsigned K = 0; K < Pairs; ++K) {
    std::string A = "A" + std::to_string(K);
    switch (K % 6) {
    case 0: // strong SIV, small distance: dependent
      Body += "    " + A + "[i] = " + A + "[i - " +
              std::to_string(R.range(1, 3)) + "] + 1;\n";
      break;
    case 1: // distinct strides: GCD-independent
      Body += "    " + A + "[2*i] = " + A + "[2*i + 1] + 1;\n";
      break;
    case 2: // beyond bounds: independent with known trip counts
      Body += "    " + A + "[i] = " + A + "[i + 500] + 1;\n";
      break;
    case 3: // wrap-around read
      Body += "    " + A + "[i] = " + A + "[w] + 1;\n";
      break;
    case 4: // periodic planes
      Body += "    " + A + "[p] = " + A + "[q] + 1;\n";
      break;
    case 5: // monotonic pack
      Body += "    if (" + A + "[i] > 0) { m = m + 1; " + A +
              "[m + 200] = i; }\n";
      break;
    }
  }
  return "func battery(n) {\n" + Init +
         "  for L1: i = 1 to 100 {\n" + Body +
         "    w = i;\n    t = p; p = q; q = t;\n  }\n  return m;\n}\n";
}

/// A seeded corpus of \p Functions independent functions cycling through the
/// generator shapes above -- the batch driver's workload.  Names are unique
/// so a merged report attributes every unit.
struct CorpusUnit {
  std::string Name;
  std::string Text;
};

inline std::vector<CorpusUnit> genCorpus(unsigned Functions,
                                         uint64_t Seed = 7) {
  Lcg R(Seed);
  std::vector<CorpusUnit> Corpus;
  Corpus.reserve(Functions);
  for (unsigned I = 0; I < Functions; ++I) {
    std::string Name = "u" + std::to_string(I);
    switch (I % 4) {
    case 0:
      Corpus.push_back({Name + "_chain",
                        genLinearChain(unsigned(R.range(16, 64)), R.next())});
      break;
    case 1:
      Corpus.push_back({Name + "_mixed",
                        genMixedClasses(unsigned(R.range(2, 6)), R.next())});
      break;
    case 2:
      Corpus.push_back({Name + "_nest",
                        genNest(unsigned(R.range(2, 5)))});
      break;
    default:
      Corpus.push_back({Name + "_deps",
                        genDependenceBattery(unsigned(R.range(4, 12)),
                                             R.next())});
      break;
    }
  }
  return Corpus;
}

} // namespace bench
} // namespace biv

#endif // BEYONDIV_BENCH_WORKLOADGEN_H
