//===- bench/bench_nesting.cpp - B3: multiloop induction variables ------------===//
//
// Section 5.3's inner-to-outer processing: cost and results as the nest
// deepens, including trip-count computation and exit-value materialization
// (the nested tuples like (L3, (L2, (L1, 0, 30), 6), 1)).
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "frontend/Lowering.h"
#include "ivclass/InductionAnalysis.h"
#include "ssa/SSABuilder.h"
#include <benchmark/benchmark.h>
#include <cstdio>

using namespace biv;

namespace {

void BM_Nest(benchmark::State &State) {
  unsigned Depth = State.range(0);
  // Rebuilt per iteration: exit-value materialization mutates the function.
  for (auto _ : State) {
    State.PauseTiming();
    auto F = frontend::parseAndLowerOrDie(bench::genNest(Depth));
    ssa::buildSSA(*F);
    analysis::DominatorTree DT(*F);
    analysis::LoopInfo LI(*F, DT);
    State.ResumeTiming();
    ivclass::InductionAnalysis IA(*F, DT, LI);
    IA.run();
    benchmark::DoNotOptimize(IA.stats().ExitValuesMaterialized);
  }
  State.counters["depth"] = Depth;
}

BENCHMARK(BM_Nest)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(6)->Arg(8);

void printTable() {
  std::printf("# B3: loop-nest depth vs classification results\n");
  std::printf("%6s %10s %12s %14s %16s\n", "depth", "loops",
              "linear_fams", "exit_values", "innermost_k");
  for (unsigned Depth : {1u, 2u, 3u, 4u, 6u, 8u}) {
    auto F = frontend::parseAndLowerOrDie(bench::genNest(Depth));
    ssa::SSAInfo Info = ssa::buildSSA(*F);
    analysis::DominatorTree DT(*F);
    analysis::LoopInfo LI(*F, DT);
    ivclass::InductionAnalysis IA(*F, DT, LI);
    IA.run();
    // The innermost k is a multiloop IV whose tuple nests Depth levels.
    analysis::Loop *Inner = LI.byName("L" + std::to_string(Depth));
    ir::Instruction *K = Info.phiFor(Inner->header(), "k");
    std::string Tuple = K ? IA.strNested(IA.classify(K, Inner), Depth + 1)
                          : "<none>";
    if (Tuple.size() > 40)
      Tuple = Tuple.substr(0, 37) + "...";
    std::printf("%6u %10zu %12u %14u   %s\n", Depth, LI.loops().size(),
                IA.stats().LinearFamilies,
                IA.stats().ExitValuesMaterialized, Tuple.c_str());
  }
}

} // namespace

int main(int argc, char **argv) {
  printTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
