//===- bench/bench_cache.cpp - B7: cold vs warm cache speedup -----------------===//
//
// Measures the content-addressed analysis cache end-to-end over a seeded
// corpus: one cold batch run that populates an on-disk cache file, then one
// warm run served from it.  The record is the cold/warm wall-clock ratio
// plus the hit rate and the phase.classify span counts of both runs -- the
// spans are the proof that a warm run actually skips classification work
// rather than redoing it faster.
//
//   bench_cache [--functions=N] [--jobs=N] [--quick] [--json=PATH]
//               [--cache-file=PATH]
//
// Like bench_batch this is a plain binary: the unit under test is the
// driver + cache file round trip, pool and I/O included.  The JSON fragment
// it writes is merged into BENCH_SCALING.json by bench/run_benchmarks.sh.
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "cache/AnalysisCache.h"
#include "driver/BatchAnalyzer.h"
#include "support/Stats.h"
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace biv;

namespace {

struct RunPoint {
  double WallMs = 0.0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t ClassifySpans = 0;
};

RunPoint timedRun(const std::vector<driver::SourceInput> &Sources,
                  const std::string &CacheFile, unsigned Jobs) {
  static const stats::Counter HitCounter("cache.hit");
  static const stats::Counter MissCounter("cache.miss");
  static const stats::Timer ClassifyTimer("phase.classify");

  driver::BatchOptions BO;
  BO.Jobs = Jobs;
  cache::AnalysisCache Cache;
  std::string Err;
  if (!Cache.open(CacheFile, Err)) {
    std::fprintf(stderr, "bench_cache: %s\n", Err.c_str());
    std::exit(1);
  }
  BO.Cache = &Cache;

  auto T0 = std::chrono::steady_clock::now();
  driver::BatchResult R = driver::analyzeBatch(Sources, BO);
  if (!Cache.save(Err)) {
    std::fprintf(stderr, "bench_cache: %s\n", Err.c_str());
    std::exit(1);
  }
  auto T1 = std::chrono::steady_clock::now();

  // Workers bump their own thread-local frames; the merged per-unit deltas
  // are the complete picture regardless of Jobs.
  stats::Frame Delta = R.MergedStats;
  RunPoint P;
  P.WallMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
  P.Hits = Delta.Counters[HitCounter.index()];
  P.Misses = Delta.Counters[MissCounter.index()];
  P.ClassifySpans = Delta.Timers[ClassifyTimer.index()].Spans;
  return P;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Functions = 1000;
  unsigned Jobs = 1;
  std::string JsonPath;
  std::string CacheFile;
  bool Quick = false;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--functions=", 12) == 0)
      Functions = unsigned(std::strtoul(A + 12, nullptr, 10));
    else if (std::strncmp(A, "--jobs=", 7) == 0)
      Jobs = unsigned(std::strtoul(A + 7, nullptr, 10));
    else if (std::strncmp(A, "--json=", 7) == 0)
      JsonPath = A + 7;
    else if (std::strncmp(A, "--cache-file=", 13) == 0)
      CacheFile = A + 13;
    else if (std::strcmp(A, "--quick") == 0)
      Quick = true;
    else {
      std::fprintf(stderr,
                   "usage: bench_cache [--functions=N] [--jobs=N] [--quick] "
                   "[--json=PATH] [--cache-file=PATH]\n");
      return 2;
    }
  }
  if (Quick)
    Functions = std::min(Functions, 64u);
  if (CacheFile.empty())
    CacheFile = (std::filesystem::temp_directory_path() /
                 "biv_bench_cache.bin")
                    .string();
  std::error_code EC;
  std::filesystem::remove(CacheFile, EC); // always start cold

  std::vector<bench::CorpusUnit> Corpus = bench::genCorpus(Functions);
  std::vector<driver::SourceInput> Sources;
  Sources.reserve(Corpus.size());
  for (const bench::CorpusUnit &U : Corpus)
    Sources.push_back({U.Name, U.Text});

  std::printf("# B7: analysis-cache cold vs warm (%u functions, -j%u)\n",
              Functions, Jobs);
  RunPoint Cold = timedRun(Sources, CacheFile, Jobs);
  RunPoint Warm = timedRun(Sources, CacheFile, Jobs);
  uint64_t CacheBytes = std::filesystem::file_size(CacheFile, EC);
  std::filesystem::remove(CacheFile, EC);

  double Speedup = Warm.WallMs > 0.0 ? Cold.WallMs / Warm.WallMs : 0.0;
  uint64_t Units = Cold.Hits + Cold.Misses;
  double HitRate = Units ? double(Warm.Hits) / double(Units) : 0.0;
  std::printf("%10s %12s %12s %12s %16s\n", "run", "wall_ms", "hits",
              "misses", "classify_spans");
  std::printf("%10s %12.2f %12llu %12llu %16llu\n", "cold", Cold.WallMs,
              (unsigned long long)Cold.Hits, (unsigned long long)Cold.Misses,
              (unsigned long long)Cold.ClassifySpans);
  std::printf("%10s %12.2f %12llu %12llu %16llu\n", "warm", Warm.WallMs,
              (unsigned long long)Warm.Hits, (unsigned long long)Warm.Misses,
              (unsigned long long)Warm.ClassifySpans);
  std::printf("# warm speedup %.2fx, hit rate %.1f%%, cache file %llu "
              "bytes\n",
              Speedup, 100.0 * HitRate, (unsigned long long)CacheBytes);

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "bench_cache: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\n"
        "  \"functions\": %u,\n  \"jobs\": %u,\n"
        "  \"cold_ms\": %.2f,\n  \"warm_ms\": %.2f,\n"
        "  \"warm_speedup\": %.2f,\n  \"warm_hit_rate\": %.4f,\n"
        "  \"classify_spans_cold\": %llu,\n"
        "  \"classify_spans_warm\": %llu,\n"
        "  \"cache_file_bytes\": %llu\n}\n",
        Functions, Jobs, Cold.WallMs, Warm.WallMs, Speedup, HitRate,
        (unsigned long long)Cold.ClassifySpans,
        (unsigned long long)Warm.ClassifySpans,
        (unsigned long long)CacheBytes);
    Out << Buf;
    Out.flush();
    if (!Out) {
      std::fprintf(stderr, "bench_cache: error writing %s\n",
                   JsonPath.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", JsonPath.c_str());
  }

  // The whole point of the cache is skipping classification: a warm run
  // that still opened classify spans on cached units is a regression, and
  // the bench doubles as its own acceptance check.
  if (Warm.Hits != Units || Warm.ClassifySpans > Cold.ClassifySpans / 10) {
    std::fprintf(stderr,
                 "bench_cache: warm run did not skip >=90%% of "
                 "classification (hits %llu/%llu, spans %llu vs %llu)\n",
                 (unsigned long long)Warm.Hits, (unsigned long long)Units,
                 (unsigned long long)Warm.ClassifySpans,
                 (unsigned long long)Cold.ClassifySpans);
    return 1;
  }
  return 0;
}
