//===- bench/bench_vs_classical.cpp - B2: unified vs classical + ad hoc -------===//
//
// The paper's pitch against the status quo: one pass over the SSA graph
// replaces iterative classical IV detection *and* the bolted-on pattern
// matchers, while classifying strictly more variables.  This bench times
// both pipelines on the same loops and prints the coverage table.
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "baseline/ClassicalIV.h"
#include "baseline/PatternMatchers.h"
#include "frontend/Lowering.h"
#include "ivclass/InductionAnalysis.h"
#include "ivclass/Report.h"
#include "ssa/SSABuilder.h"
#include <benchmark/benchmark.h>
#include <cstdio>

using namespace biv;

namespace {

struct Prepared {
  std::unique_ptr<ir::Function> F;
  std::unique_ptr<analysis::DominatorTree> DT;
  std::unique_ptr<analysis::LoopInfo> LI;
};

Prepared prepare(const std::string &Src) {
  Prepared P;
  P.F = frontend::parseAndLowerOrDie(Src);
  ssa::buildSSA(*P.F);
  P.DT = std::make_unique<analysis::DominatorTree>(*P.F);
  P.LI = std::make_unique<analysis::LoopInfo>(*P.F, *P.DT);
  return P;
}

void BM_Unified(benchmark::State &State) {
  Prepared P = prepare(bench::genMixedClasses(State.range(0)));
  ivclass::InductionAnalysis::Options Opts;
  Opts.MaterializeExitValues = false;
  for (auto _ : State) {
    ivclass::InductionAnalysis IA(*P.F, *P.DT, *P.LI, Opts);
    IA.run();
    benchmark::DoNotOptimize(IA.stats().Regions);
  }
}

void BM_ClassicalPlusAdHoc(benchmark::State &State) {
  Prepared P = prepare(bench::genMixedClasses(State.range(0)));
  for (auto _ : State) {
    unsigned Total = 0;
    for (const auto &L : P.LI->loops()) {
      baseline::ClassicalResult CR = baseline::runClassicalIV(*L);
      baseline::AdHocResult AH = baseline::runAdHocMatchers(*L, CR);
      Total += CR.BasicIVs + CR.DerivedIVs + AH.WrapArounds + AH.FlipFlops;
    }
    benchmark::DoNotOptimize(Total);
  }
}

void BM_UnifiedChain(benchmark::State &State) {
  Prepared P = prepare(bench::genLinearChain(State.range(0)));
  ivclass::InductionAnalysis::Options Opts;
  Opts.MaterializeExitValues = false;
  for (auto _ : State) {
    ivclass::InductionAnalysis IA(*P.F, *P.DT, *P.LI, Opts);
    IA.run();
    benchmark::DoNotOptimize(IA.stats().Regions);
  }
}

void BM_ClassicalChain(benchmark::State &State) {
  // Derived-IV chains are the classical algorithm's worst case: each sweep
  // discovers only a prefix, so the pass count grows with the chain.
  Prepared P = prepare(bench::genLinearChain(State.range(0)));
  for (auto _ : State) {
    unsigned Total = 0;
    for (const auto &L : P.LI->loops())
      Total += baseline::runClassicalIV(*L).Passes;
    benchmark::DoNotOptimize(Total);
  }
}

BENCHMARK(BM_Unified)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_ClassicalPlusAdHoc)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_UnifiedChain)->Arg(100)->Arg(1000);
BENCHMARK(BM_ClassicalChain)->Arg(100)->Arg(1000);

/// The coverage table: per class, how many loop-header variables each
/// approach classifies on the mixed workload.
void printCoverage() {
  Prepared P = prepare(bench::genMixedClasses(16));
  ivclass::InductionAnalysis::Options Opts;
  Opts.MaterializeExitValues = false;
  ivclass::InductionAnalysis IA(*P.F, *P.DT, *P.LI, Opts);
  IA.run();
  ivclass::KindCounts KC = ivclass::countHeaderPhiKinds(IA);

  unsigned ClassicalIVs = 0, AdHocWraps = 0, AdHocFlips = 0;
  unsigned HeaderPhis = 0;
  for (const auto &L : P.LI->loops()) {
    baseline::ClassicalResult CR = baseline::runClassicalIV(*L);
    baseline::AdHocResult AH = baseline::runAdHocMatchers(*L, CR);
    for (ir::Instruction *Phi : L->header()->phis()) {
      ++HeaderPhis;
      ClassicalIVs += CR.isIV(Phi);
    }
    AdHocWraps += AH.WrapArounds;
    AdHocFlips += AH.FlipFlops;
  }
  std::printf("# B2: coverage on the mixed workload (header phis "
              "classified)\n");
  std::printf("%-28s %8u / %u\n", "classical linear IVs:", ClassicalIVs,
              HeaderPhis);
  std::printf("%-28s %8u\n", "ad-hoc wrap-arounds:", AdHocWraps);
  std::printf("%-28s %8u\n", "ad-hoc flip-flops:", AdHocFlips);
  std::printf("%-28s %8u / %u   (linear %u, poly %u, geom %u, wrap %u, "
              "periodic %u, monotonic %u)\n",
              "unified (this paper):", KC.classified(), HeaderPhis,
              KC.Linear, KC.Polynomial, KC.Geometric, KC.WrapAround,
              KC.Periodic, KC.Monotonic);
}

} // namespace

int main(int argc, char **argv) {
  printCoverage();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
