#!/bin/sh
# Runs the batch-scaling and analysis-cache benchmarks and writes
# BENCH_SCALING.json at the repo root (serial classification cost at fixed
# chain sizes, batch throughput at several worker counts, and the cold vs
# warm cache speedup under the "cache" key).
#
#   bench/run_benchmarks.sh [--quick] [--build-dir DIR] [--out FILE]
#
# --quick shrinks the corpus and rep counts; it is what the bench-smoke ctest
# entry runs.
set -e

SCRIPT_DIR=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)
REPO_ROOT=$(dirname "$SCRIPT_DIR")
BUILD_DIR=""
OUT=""
QUICK=0

while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    --build-dir=*) BUILD_DIR="${1#--build-dir=}" ;;
    --out) OUT="$2"; shift ;;
    --out=*) OUT="${1#--out=}" ;;
    *) echo "usage: $0 [--quick] [--build-dir DIR] [--out FILE]" >&2; exit 2 ;;
  esac
  shift
done

if [ -z "$BUILD_DIR" ]; then
  for D in "$REPO_ROOT/build" "$REPO_ROOT/cmake-build-release"; do
    if [ -x "$D/bench/bench_batch" ]; then BUILD_DIR="$D"; break; fi
  done
fi
BENCH="$BUILD_DIR/bench/bench_batch"
if [ ! -x "$BENCH" ]; then
  echo "$0: bench_batch not found; build it first:" >&2
  echo "  cmake --build ${BUILD_DIR:-build} --target bench_batch" >&2
  exit 1
fi

BENCH_CACHE="$BUILD_DIR/bench/bench_cache"
BENCH_SERVE="$BUILD_DIR/bench/bench_serve"
BENCH_FRONTEND="$BUILD_DIR/bench/bench_frontend"
if [ "$QUICK" = 1 ]; then
  # Smoke mode: tiny corpus, throwaway JSON -- proves the harness end to end
  # without perturbing the committed record.
  OUT="${OUT:-$BUILD_DIR/BENCH_SCALING.quick.json}"
  "$BENCH" --quick --jobs=1,2 --json="$OUT"
  [ -x "$BENCH_FRONTEND" ] && "$BENCH_FRONTEND" --quick --json="$OUT.frontend"
  [ -x "$BENCH_CACHE" ] && "$BENCH_CACHE" --quick --json="$OUT.cache"
  [ -x "$BENCH_SERVE" ] && "$BENCH_SERVE" --quick --json="$OUT.serve"
  [ -x "$BENCH_SERVE" ] && \
    "$BENCH_SERVE" --quick --fleet=2 --json="$OUT.serve_fleet"
else
  OUT="${OUT:-$REPO_ROOT/BENCH_SCALING.json}"
  "$BENCH" --functions=1000 --jobs=1,2,4,8 --json="$OUT"
  [ -x "$BENCH_FRONTEND" ] && "$BENCH_FRONTEND" --json="$OUT.frontend"
  [ -x "$BENCH_CACHE" ] && "$BENCH_CACHE" --functions=1000 --json="$OUT.cache"
  [ -x "$BENCH_SERVE" ] && "$BENCH_SERVE" --functions=1000 --json="$OUT.serve"
  [ -x "$BENCH_SERVE" ] && \
    "$BENCH_SERVE" --functions=1000 --fleet=2 --json="$OUT.serve_fleet"
fi

# Fold the cache and serve records into the main JSON (one committed file,
# one schema).
if command -v python3 >/dev/null 2>&1; then
  for KEY in frontend cache serve serve_fleet; do
    [ -f "$OUT.$KEY" ] || continue
    python3 - "$OUT" "$OUT.$KEY" "$KEY" <<'EOF'
import json, sys
rec = json.load(open(sys.argv[1]))
rec[sys.argv[3]] = json.load(open(sys.argv[2]))
with open(sys.argv[1], "w") as f:
    json.dump(rec, f, indent=2)
    f.write("\n")
EOF
    rm -f "$OUT.$KEY"
  done
fi

# Consume the record: print the serial (jobs=1) per-phase CPU-time breakdown
# the stats layer embedded, so a scaling run doubles as a profile.
if command -v python3 >/dev/null 2>&1; then
  python3 - "$OUT" <<'EOF'
import json, sys
rec = json.load(open(sys.argv[1]))
for pt in rec.get("batch_throughput", []):
    if pt.get("jobs") == 1:
        phases = pt.get("phase_cpu_ns", {})
        total = sum(phases.values()) or 1
        print("# jobs=1 phase breakdown (CPU time):")
        for name, ns in sorted(phases.items(), key=lambda kv: -kv[1]):
            print("#   %-20s %9.2f ms  %5.1f%%"
                  % (name, ns / 1e6, 100.0 * ns / total))
        break
EOF
fi

echo "# benchmark record: $OUT"
