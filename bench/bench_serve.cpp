//===- bench/bench_serve.cpp - B8: daemon round-trip throughput ---------------===//
//
// Drives an in-process `bivc --serve` daemon end-to-end over a unix-domain
// socket: a seeded corpus is pushed through concurrent blocking clients
// twice -- once cold (every request a cache miss) and once warm (every
// request served from the shared cache) -- and the record is wall-clock
// throughput for both passes plus the daemon's own request-latency
// histogram quantiles.  Socket framing, admission, scheduling, and the
// shared-cache lock are all on the measured path.
//
//   bench_serve [--functions=N] [--clients=N] [--jobs=N] [--quick]
//               [--json=PATH]
//
// Like bench_batch and bench_cache this is a plain binary; the JSON
// fragment it writes is merged into BENCH_SCALING.json under the "serve"
// key by bench/run_benchmarks.sh.
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "server/Client.h"
#include "server/Server.h"
#include "support/Stats.h"
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

using namespace biv;

namespace {

// The one-shot CLI's default bits: RunSCCP | Materialize | Classify |
// NestedTuples.
constexpr uint64_t DefaultBits = 1 | 2 | 4 | 16;

struct PassResult {
  double WallMs = 0.0;
  uint64_t Ok = 0;
  uint64_t Failed = 0;
};

/// Pushes every source through the daemon once, sharded over Clients
/// concurrent blocking connections.
PassResult runPass(const std::string &Socket,
                   const std::vector<std::string> &Sources,
                   unsigned Clients) {
  std::atomic<size_t> Next{0};
  std::atomic<uint64_t> Ok{0}, Failed{0};
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&] {
      for (;;) {
        size_t I = Next.fetch_add(1);
        if (I >= Sources.size())
          return;
        server::Request Q;
        Q.OptsBits = DefaultBits;
        Q.Source = Sources[I];
        server::Response R;
        std::string Err;
        if (server::call(Socket, Q, R, Err) &&
            R.S == server::Status::Ok)
          Ok.fetch_add(1);
        else
          Failed.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  auto T1 = std::chrono::steady_clock::now();
  PassResult P;
  P.WallMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
  P.Ok = Ok.load();
  P.Failed = Failed.load();
  return P;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Functions = 1000;
  unsigned Clients = 8;
  unsigned Jobs = 0; // hardware concurrency, the daemon default
  std::string JsonPath;
  bool Quick = false;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--functions=", 12) == 0)
      Functions = unsigned(std::strtoul(A + 12, nullptr, 10));
    else if (std::strncmp(A, "--clients=", 10) == 0)
      Clients = unsigned(std::strtoul(A + 10, nullptr, 10));
    else if (std::strncmp(A, "--jobs=", 7) == 0)
      Jobs = unsigned(std::strtoul(A + 7, nullptr, 10));
    else if (std::strncmp(A, "--json=", 7) == 0)
      JsonPath = A + 7;
    else if (std::strcmp(A, "--quick") == 0)
      Quick = true;
    else {
      std::fprintf(stderr,
                   "usage: bench_serve [--functions=N] [--clients=N] "
                   "[--jobs=N] [--quick] [--json=PATH]\n");
      return 2;
    }
  }
  if (Quick) {
    Functions = std::min(Functions, 64u);
    Clients = std::min(Clients, 4u);
  }

  std::vector<bench::CorpusUnit> Corpus = bench::genCorpus(Functions);
  std::vector<std::string> Sources;
  Sources.reserve(Corpus.size());
  for (const bench::CorpusUnit &U : Corpus)
    Sources.push_back(U.Text);

  std::string Dir = (std::filesystem::temp_directory_path() /
                     ("biv_bench_serve_" + std::to_string(::getpid())))
                        .string();
  std::filesystem::create_directories(Dir);

  server::ServerOptions SO;
  SO.Threads = Jobs;
  SO.AdmitLimit = 4096; // measure throughput, not rejection
  SO.CachePath = Dir + "/serve.cache";
  server::Server S(Dir + "/serve.sock", SO);
  std::string Err;
  if (!S.start(Err)) {
    std::fprintf(stderr, "bench_serve: %s\n", Err.c_str());
    return 1;
  }

  std::printf("# B8: daemon round-trip throughput (%u functions, "
              "%u clients, -j%u)\n",
              Functions, Clients, Jobs);
  PassResult Cold = runPass(S.socketPath(), Sources, Clients);
  PassResult Warm = runPass(S.socketPath(), Sources, Clients);

  stats::StatsSnapshot Snap = S.statsSnapshot();
  uint64_t Hits = Snap.Counters.count("cache.hit")
                      ? Snap.Counters.at("cache.hit")
                      : 0;
  uint64_t Overloaded = Snap.Counters.count("serve.overloaded")
                            ? Snap.Counters.at("serve.overloaded")
                            : 0;
  uint64_t P50 = 0, P99 = 0;
  if (Snap.Hists.count("serve.latency_ns")) {
    const stats::HistValue &H = Snap.Hists.at("serve.latency_ns");
    P50 = H.quantileUpperBound(0.5);
    P99 = H.quantileUpperBound(0.99);
  }
  bool DrainOk = S.drain(Err);
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
  if (!DrainOk) {
    std::fprintf(stderr, "bench_serve: %s\n", Err.c_str());
    return 1;
  }

  double ColdRps = Cold.WallMs > 0 ? 1000.0 * Functions / Cold.WallMs : 0.0;
  double WarmRps = Warm.WallMs > 0 ? 1000.0 * Functions / Warm.WallMs : 0.0;
  std::printf("%10s %12s %14s\n", "pass", "wall_ms", "requests_per_s");
  std::printf("%10s %12.2f %14.0f\n", "cold", Cold.WallMs, ColdRps);
  std::printf("%10s %12.2f %14.0f\n", "warm", Warm.WallMs, WarmRps);
  std::printf("# latency p50 <= %llu ns, p99 <= %llu ns, warm hits "
              "%llu/%u, overloaded %llu\n",
              (unsigned long long)P50, (unsigned long long)P99,
              (unsigned long long)Hits, Functions,
              (unsigned long long)Overloaded);

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\n"
        "  \"functions\": %u,\n  \"clients\": %u,\n  \"jobs\": %u,\n"
        "  \"cold_ms\": %.2f,\n  \"warm_ms\": %.2f,\n"
        "  \"cold_rps\": %.0f,\n  \"warm_rps\": %.0f,\n"
        "  \"latency_p50_ns_le\": %llu,\n"
        "  \"latency_p99_ns_le\": %llu,\n"
        "  \"warm_hit_rate\": %.4f,\n  \"overloaded\": %llu\n}\n",
        Functions, Clients, Jobs, Cold.WallMs, Warm.WallMs, ColdRps,
        WarmRps, (unsigned long long)P50, (unsigned long long)P99,
        Functions ? double(Hits) / double(Functions) : 0.0,
        (unsigned long long)Overloaded);
    Out << Buf;
    Out.flush();
    if (!Out) {
      std::fprintf(stderr, "bench_serve: error writing %s\n",
                   JsonPath.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", JsonPath.c_str());
  }

  // The daemon's contract doubles as the bench's acceptance check: every
  // request answered, none lost, and the warm pass fully cache-served.
  // (Hits can exceed Functions: the generator may emit duplicate sources,
  // which already hit during the cold pass.)
  if (Cold.Failed || Warm.Failed || Hits < Functions) {
    std::fprintf(stderr,
                 "bench_serve: lifecycle violation (failed %llu/%llu, "
                 "warm hits %llu/%u)\n",
                 (unsigned long long)Cold.Failed,
                 (unsigned long long)Warm.Failed,
                 (unsigned long long)Hits, Functions);
    return 1;
  }
  return 0;
}
