//===- bench/bench_serve.cpp - B8: daemon round-trip throughput ---------------===//
//
// Drives an in-process `bivc --serve` daemon end-to-end over a unix-domain
// socket: a seeded corpus is pushed through concurrent blocking clients
// twice -- once cold (every request a cache miss) and once warm (every
// request served from the shared cache) -- and the record is wall-clock
// throughput for both passes plus the daemon's own request-latency
// histogram quantiles.  Socket framing, admission, scheduling, and the
// shared-cache lock are all on the measured path.
//
//   bench_serve [--functions=N] [--clients=N] [--jobs=N] [--quick]
//               [--json=PATH] [--fleet=N]
//
// With --fleet=N the daemon is instead a real pre-forked fleet (a
// supervisor child running runFleet with N workers, each a full process)
// and the record is aggregate client-side throughput plus p50/p99
// latency, including an overload pass that offers 4x the client
// concurrency.  Latency is measured at the client because fleet stats are
// per-worker (see server/Fleet.h).
//
// Like bench_batch and bench_cache this is a plain binary; the JSON
// fragment it writes is merged into BENCH_SCALING.json under the "serve"
// (or, for --fleet, "serve_fleet") key by bench/run_benchmarks.sh.
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "server/Client.h"
#include "server/Fleet.h"
#include "server/Server.h"
#include "support/Stats.h"
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace biv;

namespace {

// The one-shot CLI's default bits: RunSCCP | Materialize | Classify |
// NestedTuples.
constexpr uint64_t DefaultBits = 1 | 2 | 4 | 16;

struct PassResult {
  double WallMs = 0.0;
  uint64_t Ok = 0;
  uint64_t Failed = 0;
};

/// Pushes every source through the daemon once, sharded over Clients
/// concurrent blocking connections.
PassResult runPass(const std::string &Socket,
                   const std::vector<std::string> &Sources,
                   unsigned Clients) {
  std::atomic<size_t> Next{0};
  std::atomic<uint64_t> Ok{0}, Failed{0};
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&] {
      for (;;) {
        size_t I = Next.fetch_add(1);
        if (I >= Sources.size())
          return;
        server::Request Q;
        Q.OptsBits = DefaultBits;
        Q.Source = Sources[I];
        server::Response R;
        std::string Err;
        if (server::call(Socket, Q, R, Err) &&
            R.S == server::Status::Ok)
          Ok.fetch_add(1);
        else
          Failed.fetch_add(1);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  auto T1 = std::chrono::steady_clock::now();
  PassResult P;
  P.WallMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
  P.Ok = Ok.load();
  P.Failed = Failed.load();
  return P;
}

// A fleet pass additionally measures per-request latency at the client:
// fleet workers are separate processes with separate stats, so the client
// side is the only place an aggregate distribution exists.
struct FleetPass {
  double WallMs = 0.0;
  uint64_t Ok = 0;
  uint64_t Overloaded = 0;
  uint64_t Failed = 0;
  std::vector<uint64_t> LatNs;
};

FleetPass runFleetPass(const std::string &Socket,
                       const std::vector<std::string> &Sources,
                       unsigned Clients) {
  std::atomic<size_t> Next{0};
  std::mutex Merge;
  FleetPass P;
  P.LatNs.reserve(Sources.size());
  auto T0 = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C < Clients; ++C)
    Threads.emplace_back([&] {
      std::vector<uint64_t> Local;
      uint64_t Ok = 0, Over = 0, Failed = 0;
      for (;;) {
        size_t I = Next.fetch_add(1);
        if (I >= Sources.size())
          break;
        server::Request Q;
        Q.OptsBits = DefaultBits;
        Q.Source = Sources[I];
        server::Response R;
        std::string Err;
        auto S0 = std::chrono::steady_clock::now();
        bool Sent = server::call(Socket, Q, R, Err);
        auto S1 = std::chrono::steady_clock::now();
        if (Sent && R.S == server::Status::Ok) {
          ++Ok;
          Local.push_back(uint64_t(
              std::chrono::duration_cast<std::chrono::nanoseconds>(S1 - S0)
                  .count()));
        } else if (Sent && R.S == server::Status::Overloaded) {
          ++Over; // explicit backpressure, not a lifecycle failure
        } else {
          ++Failed;
        }
      }
      std::lock_guard<std::mutex> Lock(Merge);
      P.Ok += Ok;
      P.Overloaded += Over;
      P.Failed += Failed;
      P.LatNs.insert(P.LatNs.end(), Local.begin(), Local.end());
    });
  for (std::thread &T : Threads)
    T.join();
  auto T1 = std::chrono::steady_clock::now();
  P.WallMs = std::chrono::duration<double, std::milli>(T1 - T0).count();
  std::sort(P.LatNs.begin(), P.LatNs.end());
  return P;
}

uint64_t quantile(const std::vector<uint64_t> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  size_t I = size_t(Q * double(Sorted.size() - 1));
  return Sorted[std::min(I, Sorted.size() - 1)];
}

/// The --fleet=N path: fork a supervisor child running a real pre-forked
/// fleet, drive it cold / warm / overloaded from this process, SIGTERM it,
/// and require a clean drain.  Returns the process exit code.
int runFleetBench(unsigned Workers, unsigned Functions, unsigned Clients,
                  unsigned Jobs, const std::string &JsonPath) {
  std::vector<bench::CorpusUnit> Corpus = bench::genCorpus(Functions);
  std::vector<std::string> Sources;
  Sources.reserve(Corpus.size());
  for (const bench::CorpusUnit &U : Corpus)
    Sources.push_back(U.Text);

  std::string Dir = (std::filesystem::temp_directory_path() /
                     ("biv_bench_fleet_" + std::to_string(::getpid())))
                        .string();
  std::filesystem::create_directories(Dir);
  const std::string Socket = Dir + "/fleet.sock";
  const std::string CachePath = Dir + "/fleet.cache";
  const uint64_t CacheCap = 128 * 1024;

  // Fork strictly before any client thread exists (runFleet requires a
  // single-threaded process on entry).
  pid_t Sup = ::fork();
  if (Sup < 0) {
    std::perror("bench_serve: fork");
    return 1;
  }
  if (Sup == 0) {
    server::FleetOptions FO;
    FO.SocketPath = Socket;
    FO.Workers = Workers;
    FO.Worker.Threads = Jobs;
    FO.Worker.AdmitLimit = 4096; // measure queueing, not rejection
    FO.Worker.CachePath = CachePath;
    FO.Worker.CacheMaxBytes = CacheCap;
    ::_exit(server::runFleet(FO));
  }

  // Readiness: the supervisor binds before forking workers, but a worker
  // must be accepting before the clock starts.
  bool Ready = false;
  for (int I = 0; I < 200 && !Ready; ++I) {
    server::Request Q;
    Q.Kind = server::RequestKind::Stats;
    server::Response R;
    std::string Err;
    Ready = server::call(Socket, Q, R, Err);
    if (!Ready)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (!Ready) {
    std::fprintf(stderr, "bench_serve: fleet never became ready\n");
    ::kill(Sup, SIGKILL);
    return 1;
  }

  std::printf("# B8f: fleet round-trip throughput (%u workers, "
              "%u functions, %u clients, -j%u per worker)\n",
              Workers, Functions, Clients, Jobs);
  FleetPass Cold = runFleetPass(Socket, Sources, Clients);
  FleetPass Warm = runFleetPass(Socket, Sources, Clients);
  // Overload: 4x the client concurrency against the same corpus.  Service
  // concurrency is Workers x Jobs, so this queues hard; the p99 under this
  // pass is the number an operator sizing a fleet wants.
  unsigned OverClients = Clients * 4;
  FleetPass Over = runFleetPass(Socket, Sources, OverClients);

  ::kill(Sup, SIGTERM);
  int Status = 0;
  ::waitpid(Sup, &Status, 0);
  int SupExit =
      WIFEXITED(Status) ? WEXITSTATUS(Status) : 128 + WTERMSIG(Status);

  std::error_code EC;
  uint64_t CacheBytes = uint64_t(std::filesystem::file_size(CachePath, EC));
  if (EC)
    CacheBytes = 0;

  auto Rps = [&](const FleetPass &P) {
    return P.WallMs > 0 ? 1000.0 * double(P.Ok) / P.WallMs : 0.0;
  };
  std::printf("%10s %12s %14s %12s %12s\n", "pass", "wall_ms",
              "requests_per_s", "p50_ns", "p99_ns");
  std::printf("%10s %12.2f %14.0f %12llu %12llu\n", "cold", Cold.WallMs,
              Rps(Cold), (unsigned long long)quantile(Cold.LatNs, 0.5),
              (unsigned long long)quantile(Cold.LatNs, 0.99));
  std::printf("%10s %12.2f %14.0f %12llu %12llu\n", "warm", Warm.WallMs,
              Rps(Warm), (unsigned long long)quantile(Warm.LatNs, 0.5),
              (unsigned long long)quantile(Warm.LatNs, 0.99));
  std::printf("%10s %12.2f %14.0f %12llu %12llu\n", "overload", Over.WallMs,
              Rps(Over), (unsigned long long)quantile(Over.LatNs, 0.5),
              (unsigned long long)quantile(Over.LatNs, 0.99));
  std::printf("# overloaded replies %llu, cache %llu/%llu bytes, "
              "supervisor exit %d\n",
              (unsigned long long)Over.Overloaded,
              (unsigned long long)CacheBytes, (unsigned long long)CacheCap,
              SupExit);

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
    char Buf[1024];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\n"
        "  \"workers\": %u,\n  \"functions\": %u,\n  \"clients\": %u,\n"
        "  \"jobs\": %u,\n"
        "  \"cold_ms\": %.2f,\n  \"warm_ms\": %.2f,\n"
        "  \"cold_rps\": %.0f,\n  \"warm_rps\": %.0f,\n"
        "  \"warm_p50_ns\": %llu,\n  \"warm_p99_ns\": %llu,\n"
        "  \"overload_clients\": %u,\n  \"overload_rps\": %.0f,\n"
        "  \"overload_p50_ns\": %llu,\n  \"overload_p99_ns\": %llu,\n"
        "  \"overloaded\": %llu,\n"
        "  \"cache_max_bytes\": %llu,\n  \"cache_file_bytes\": %llu,\n"
        "  \"supervisor_exit\": %d\n}\n",
        Workers, Functions, Clients, Jobs, Cold.WallMs, Warm.WallMs,
        Rps(Cold), Rps(Warm),
        (unsigned long long)quantile(Warm.LatNs, 0.5),
        (unsigned long long)quantile(Warm.LatNs, 0.99), OverClients,
        Rps(Over), (unsigned long long)quantile(Over.LatNs, 0.5),
        (unsigned long long)quantile(Over.LatNs, 0.99),
        (unsigned long long)Over.Overloaded, (unsigned long long)CacheCap,
        (unsigned long long)CacheBytes, SupExit);
    Out << Buf;
    Out.flush();
    if (!Out) {
      std::fprintf(stderr, "bench_serve: error writing %s\n",
                   JsonPath.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", JsonPath.c_str());
  }

  std::filesystem::remove_all(Dir, EC);
  // Acceptance: every request answered (overload replies are answers), the
  // bounded cache honored its cap, and the fleet drained cleanly.
  if (Cold.Failed || Warm.Failed || Over.Failed || SupExit != 0 ||
      CacheBytes > CacheCap) {
    std::fprintf(stderr,
                 "bench_serve: fleet lifecycle violation (failed "
                 "%llu/%llu/%llu, cache %llu > %llu, exit %d)\n",
                 (unsigned long long)Cold.Failed,
                 (unsigned long long)Warm.Failed,
                 (unsigned long long)Over.Failed,
                 (unsigned long long)CacheBytes,
                 (unsigned long long)CacheCap, SupExit);
    return 1;
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Functions = 1000;
  unsigned Clients = 8;
  unsigned Jobs = 0; // hardware concurrency, the daemon default
  unsigned Fleet = 0; // 0 = in-process daemon; N = pre-forked fleet of N
  std::string JsonPath;
  bool Quick = false;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--functions=", 12) == 0)
      Functions = unsigned(std::strtoul(A + 12, nullptr, 10));
    else if (std::strncmp(A, "--clients=", 10) == 0)
      Clients = unsigned(std::strtoul(A + 10, nullptr, 10));
    else if (std::strncmp(A, "--jobs=", 7) == 0)
      Jobs = unsigned(std::strtoul(A + 7, nullptr, 10));
    else if (std::strncmp(A, "--fleet=", 8) == 0)
      Fleet = unsigned(std::strtoul(A + 8, nullptr, 10));
    else if (std::strncmp(A, "--json=", 7) == 0)
      JsonPath = A + 7;
    else if (std::strcmp(A, "--quick") == 0)
      Quick = true;
    else {
      std::fprintf(stderr,
                   "usage: bench_serve [--functions=N] [--clients=N] "
                   "[--jobs=N] [--fleet=N] [--quick] [--json=PATH]\n");
      return 2;
    }
  }
  if (Quick) {
    Functions = std::min(Functions, 64u);
    Clients = std::min(Clients, 4u);
  }
  if (Fleet > 0)
    return runFleetBench(Fleet, Functions, Clients, Jobs, JsonPath);

  std::vector<bench::CorpusUnit> Corpus = bench::genCorpus(Functions);
  std::vector<std::string> Sources;
  Sources.reserve(Corpus.size());
  for (const bench::CorpusUnit &U : Corpus)
    Sources.push_back(U.Text);

  std::string Dir = (std::filesystem::temp_directory_path() /
                     ("biv_bench_serve_" + std::to_string(::getpid())))
                        .string();
  std::filesystem::create_directories(Dir);

  server::ServerOptions SO;
  SO.Threads = Jobs;
  SO.AdmitLimit = 4096; // measure throughput, not rejection
  SO.CachePath = Dir + "/serve.cache";
  server::Server S(Dir + "/serve.sock", SO);
  std::string Err;
  if (!S.start(Err)) {
    std::fprintf(stderr, "bench_serve: %s\n", Err.c_str());
    return 1;
  }

  std::printf("# B8: daemon round-trip throughput (%u functions, "
              "%u clients, -j%u)\n",
              Functions, Clients, Jobs);
  PassResult Cold = runPass(S.socketPath(), Sources, Clients);
  PassResult Warm = runPass(S.socketPath(), Sources, Clients);

  stats::StatsSnapshot Snap = S.statsSnapshot();
  uint64_t Hits = Snap.Counters.count("cache.hit")
                      ? Snap.Counters.at("cache.hit")
                      : 0;
  uint64_t Overloaded = Snap.Counters.count("serve.overloaded")
                            ? Snap.Counters.at("serve.overloaded")
                            : 0;
  uint64_t P50 = 0, P99 = 0;
  if (Snap.Hists.count("serve.latency_ns")) {
    const stats::HistValue &H = Snap.Hists.at("serve.latency_ns");
    P50 = H.quantileUpperBound(0.5);
    P99 = H.quantileUpperBound(0.99);
  }
  bool DrainOk = S.drain(Err);
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
  if (!DrainOk) {
    std::fprintf(stderr, "bench_serve: %s\n", Err.c_str());
    return 1;
  }

  double ColdRps = Cold.WallMs > 0 ? 1000.0 * Functions / Cold.WallMs : 0.0;
  double WarmRps = Warm.WallMs > 0 ? 1000.0 * Functions / Warm.WallMs : 0.0;
  std::printf("%10s %12s %14s\n", "pass", "wall_ms", "requests_per_s");
  std::printf("%10s %12.2f %14.0f\n", "cold", Cold.WallMs, ColdRps);
  std::printf("%10s %12.2f %14.0f\n", "warm", Warm.WallMs, WarmRps);
  std::printf("# latency p50 <= %llu ns, p99 <= %llu ns, warm hits "
              "%llu/%u, overloaded %llu\n",
              (unsigned long long)P50, (unsigned long long)P99,
              (unsigned long long)Hits, Functions,
              (unsigned long long)Overloaded);

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "bench_serve: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        "{\n"
        "  \"functions\": %u,\n  \"clients\": %u,\n  \"jobs\": %u,\n"
        "  \"cold_ms\": %.2f,\n  \"warm_ms\": %.2f,\n"
        "  \"cold_rps\": %.0f,\n  \"warm_rps\": %.0f,\n"
        "  \"latency_p50_ns_le\": %llu,\n"
        "  \"latency_p99_ns_le\": %llu,\n"
        "  \"warm_hit_rate\": %.4f,\n  \"overloaded\": %llu\n}\n",
        Functions, Clients, Jobs, Cold.WallMs, Warm.WallMs, ColdRps,
        WarmRps, (unsigned long long)P50, (unsigned long long)P99,
        Functions ? double(Hits) / double(Functions) : 0.0,
        (unsigned long long)Overloaded);
    Out << Buf;
    Out.flush();
    if (!Out) {
      std::fprintf(stderr, "bench_serve: error writing %s\n",
                   JsonPath.c_str());
      return 1;
    }
    std::printf("# wrote %s\n", JsonPath.c_str());
  }

  // The daemon's contract doubles as the bench's acceptance check: every
  // request answered, none lost, and the warm pass fully cache-served.
  // (Hits can exceed Functions: the generator may emit duplicate sources,
  // which already hit during the cold pass.)
  if (Cold.Failed || Warm.Failed || Hits < Functions) {
    std::fprintf(stderr,
                 "bench_serve: lifecycle violation (failed %llu/%llu, "
                 "warm hits %llu/%u)\n",
                 (unsigned long long)Cold.Failed,
                 (unsigned long long)Warm.Failed,
                 (unsigned long long)Hits, Functions);
    return 1;
  }
  return 0;
}
