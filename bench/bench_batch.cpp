//===- bench/bench_batch.cpp - B6: batch-driver throughput --------------------===//
//
// Measures the parallel batch-analysis driver: a seeded corpus of independent
// functions is analyzed end-to-end (parse, SSA, SCCP, classify, report) at
// several worker counts, and the serial classification hot path is timed at
// fixed chain sizes.  Everything it measures lands in one JSON file so the
// scaling record is machine-readable.  Timings come from the pipeline's own
// stats layer (support/Stats.h): the chain points read the phase.classify
// span, and every batch point carries the merged per-phase CPU-time
// breakdown of its best rep.
//
//   bench_batch [--functions=N] [--jobs=1,2,4,8] [--quick] [--json=PATH]
//
// Unlike the other benches this is a plain binary (no google-benchmark): the
// JSON must hold wall-clock throughput of the *driver*, pool included, and
// the driver is the unit under test.
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "driver/BatchAnalyzer.h"
#include "driver/ThreadPool.h"
#include "frontend/Lowering.h"
#include "ivclass/InductionAnalysis.h"
#include "ssa/DeadCode.h"
#include "ssa/SCCP.h"
#include "ssa/SSABuilder.h"
#include "support/Stats.h"
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

using namespace biv;

// Every general-heap allocation in the process goes through these overrides,
// so the batch driver's hot path can be audited for mallocs the arena layer
// was supposed to absorb (DESIGN.md §11).
static std::atomic<unsigned long long> GHeapAllocs{0};

void *operator new(std::size_t Sz) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Sz ? Sz : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Sz) { return operator new(Sz); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

/// Ceiling on general-heap allocations per unit on the front-half hot path
/// (parse + lower + SSA + SCCP + DCE).  The seed spent 1781 heap
/// allocations per corpus unit here; the arena/interner/dense-table rewrite
/// targets a >=10x reduction, so the ceiling is pinned at a tenth of that.
/// The same number is documented in DESIGN.md §11 and cross-checked by
/// tools/check_docs.sh; raise both together, deliberately.
constexpr unsigned long long MaxHeapAllocsPerUnit = 178;

/// Best-of-\p Reps one-shot classification time for a derived-IV chain of
/// \p N statements, in nanoseconds per instruction.  This is the serial
/// hot path the allocation-lean rewrite targets.
struct ChainPoint {
  unsigned Stmts;
  size_t Instrs;
  double BestUs;
  double NsPerInstr;
};

ChainPoint measureChain(unsigned N, int Reps) {
  std::unique_ptr<ir::Function> F =
      frontend::parseAndLowerOrDie(bench::genLinearChain(N));
  ssa::buildSSA(*F);
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  ivclass::InductionAnalysis::Options Opts;
  Opts.MaterializeExitValues = false; // keep run() re-entrant per rep
  // The classification time comes from the pipeline's own phase.classify
  // span (the stats layer), not a bespoke stopwatch around the call: the
  // bench measures exactly what `bivc --stats-json` reports.
  static const stats::Timer ClassifyTimer("phase.classify");
  double Best = 1e30;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    stats::Frame Before = stats::captureFrame();
    ivclass::InductionAnalysis IA(*F, DT, LI, Opts);
    IA.run();
    stats::Frame Delta = stats::captureFrame() - Before;
    Best = std::min(Best,
                    double(Delta.Timers[ClassifyTimer.index()].Ns) / 1000.0);
  }
  size_t Instrs = F->instructionCount();
  return {N, Instrs, Best, Best * 1000.0 / double(Instrs)};
}

/// One timed batch run over \p Sources with \p Jobs workers.
struct BatchPoint {
  unsigned Jobs;
  double WallMs;
  size_t Units;
  size_t Instructions;
  double StmtsPerSec;
  double Speedup; // vs the Jobs==1 point of the same corpus
  /// Merged per-phase timings of the best rep (summed across workers, so
  /// CPU time, not wall time).
  stats::StatsSnapshot Phases;
};

BatchPoint measureBatch(const std::vector<driver::SourceInput> &Sources,
                        unsigned Jobs, int Reps) {
  driver::BatchOptions BO;
  BO.Jobs = Jobs;
  BO.Classify = false; // time analysis, not report rendering
  double Best = 1e30;
  driver::BatchResult Last;
  for (int Rep = 0; Rep < Reps; ++Rep) {
    auto T0 = std::chrono::steady_clock::now();
    driver::BatchResult R = driver::analyzeBatch(Sources, BO);
    auto T1 = std::chrono::steady_clock::now();
    double Ms = std::chrono::duration<double, std::milli>(T1 - T0).count();
    if (Ms < Best) {
      Best = Ms;
      Last = std::move(R);
    }
  }
  BatchPoint P;
  P.Jobs = Jobs;
  P.WallMs = Best;
  P.Units = Last.Units.size();
  P.Instructions = Last.TotalInstructions;
  P.StmtsPerSec = double(Last.TotalInstructions) / (Best / 1000.0);
  P.Speedup = 0.0; // filled by the caller
  P.Phases = stats::snapshotFrame(Last.MergedStats);
  return P;
}

std::vector<unsigned> parseJobsList(const char *Spec) {
  std::vector<unsigned> Jobs;
  unsigned Cur = 0;
  bool Any = false;
  for (const char *P = Spec;; ++P) {
    if (*P >= '0' && *P <= '9') {
      Cur = Cur * 10 + unsigned(*P - '0');
      Any = true;
    } else if (*P == ',' || *P == '\0') {
      if (Any)
        Jobs.push_back(Cur);
      Cur = 0;
      Any = false;
      if (*P == '\0')
        break;
    }
  }
  return Jobs;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Functions = 1000;
  std::vector<unsigned> Jobs = {1, 2, 4, 8};
  int Reps = 3;
  std::string JsonPath;
  bool Quick = false;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--functions=", 12) == 0)
      Functions = unsigned(std::strtoul(A + 12, nullptr, 10));
    else if (std::strncmp(A, "--jobs=", 7) == 0)
      Jobs = parseJobsList(A + 7);
    else if (std::strncmp(A, "--json=", 7) == 0)
      JsonPath = A + 7;
    else if (std::strcmp(A, "--quick") == 0)
      Quick = true;
    else {
      std::fprintf(stderr,
                   "usage: bench_batch [--functions=N] [--jobs=1,2,4,8] "
                   "[--quick] [--json=PATH]\n");
      return 2;
    }
  }
  if (Quick) {
    Functions = std::min(Functions, 64u);
    Reps = 1;
  }
  if (Jobs.empty())
    Jobs = {1};

  unsigned Hw = driver::ThreadPool::defaultThreadCount();
  std::printf("# B6: batch-analysis throughput (%u functions, hardware "
              "concurrency %u)\n",
              Functions, Hw);

  // Serial hot path at the record's fixed sizes.
  std::vector<ChainPoint> Chain;
  std::printf("%10s %12s %14s %12s\n", "stmts", "instrs", "best_us",
              "ns_per_inst");
  for (unsigned N : {64u, 512u, 4096u}) {
    Chain.push_back(measureChain(N, Quick ? 2 : 5));
    const ChainPoint &C = Chain.back();
    std::printf("%10u %12zu %14.1f %12.1f\n", C.Stmts, C.Instrs, C.BestUs,
                C.NsPerInstr);
  }

  // Batch corpus shared by every jobs point so speedups compare like with
  // like.
  std::vector<bench::CorpusUnit> Corpus = bench::genCorpus(Functions);
  std::vector<driver::SourceInput> Sources;
  Sources.reserve(Corpus.size());
  for (const bench::CorpusUnit &U : Corpus)
    Sources.push_back({U.Name, U.Text});

  std::vector<BatchPoint> Points;
  double SerialMs = 0.0;
  std::printf("%10s %12s %14s %16s %10s\n", "jobs", "units", "wall_ms",
              "stmts_per_sec", "speedup");
  for (unsigned J : Jobs) {
    BatchPoint P = measureBatch(Sources, J, Reps);
    if (Points.empty() && J == 1)
      SerialMs = P.WallMs;
    P.Speedup = SerialMs > 0.0 ? SerialMs / P.WallMs : 0.0;
    Points.push_back(P);
    std::printf("%10u %12zu %14.2f %16.0f %9.2fx\n", P.Jobs, P.Units, P.WallMs,
                P.StmtsPerSec, P.Speedup);
  }

  // Punt-rate record (EXPERIMENTS.md): of all classification verdicts the
  // corpus produced, how many were Unknown.  The c-finite lattice extension
  // is measured by this ratio dropping at a fixed corpus, so the scaling
  // record carries it alongside the throughput numbers.
  unsigned long long Punted = 0, Classified = 0;
  if (!Points.empty()) {
    const auto &Ctrs = Points.front().Phases.Counters;
    auto It = Ctrs.find("ivclass.punt");
    Punted = It != Ctrs.end() ? It->second : 0;
    for (const auto &[Name, V] : Ctrs)
      if (Name.rfind("ivclass.kind.", 0) == 0)
        Classified += V;
  }
  double PuntRate =
      Classified ? double(Punted) / double(Classified) : 0.0;
  std::printf("# punt rate: %llu / %llu verdicts (%.4f)\n", Punted,
              Classified, PuntRate);

  // Audit the front-half hot path for heap traffic: run parse + lower +
  // SSA + SCCP + DCE over the corpus serially, counting every operator-new
  // call.  Per-unit traffic above the ceiling means the arena/interner/
  // dense-table path regressed, and the bench fails loudly.
  double FrontAllocsPerUnit = 0.0;
  double BatchAllocsPerUnit = 0.0;
  {
    unsigned long long Before = GHeapAllocs.load(std::memory_order_relaxed);
    for (const driver::SourceInput &S : Sources) {
      std::unique_ptr<ir::Function> F = frontend::parseAndLowerOrDie(S.Text);
      ssa::buildSSA(*F);
      ssa::runSCCP(*F, /*SimplifyCFG=*/true);
      ssa::removeDeadCode(*F);
    }
    unsigned long long Delta =
        GHeapAllocs.load(std::memory_order_relaxed) - Before;
    FrontAllocsPerUnit =
        Sources.empty() ? 0.0 : double(Delta) / double(Sources.size());

    driver::BatchOptions BO;
    BO.Jobs = 1;
    BO.Classify = false;
    Before = GHeapAllocs.load(std::memory_order_relaxed);
    driver::BatchResult R = driver::analyzeBatch(Sources, BO);
    Delta = GHeapAllocs.load(std::memory_order_relaxed) - Before;
    BatchAllocsPerUnit =
        R.Units.empty() ? 0.0 : double(Delta) / double(R.Units.size());

    std::printf("# heap allocations per unit: front-half %.1f (ceiling "
                "%llu), full batch %.1f\n",
                FrontAllocsPerUnit, MaxHeapAllocsPerUnit, BatchAllocsPerUnit);
    if (FrontAllocsPerUnit > double(MaxHeapAllocsPerUnit)) {
      std::fprintf(stderr,
                   "bench_batch: FAIL: %.1f front-half heap allocations per "
                   "unit exceeds the documented ceiling of %llu "
                   "(DESIGN.md \u00a711)\n",
                   FrontAllocsPerUnit, MaxHeapAllocsPerUnit);
      return 1;
    }
  }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "bench_batch: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    char Buf[256];
    Out << "{\n";
    std::snprintf(Buf, sizeof(Buf),
                  "  \"hardware_concurrency\": %u,\n  \"functions\": %u,\n"
                  "  \"front_half_allocs_per_unit\": %.1f,\n"
                  "  \"front_half_allocs_ceiling\": %llu,\n"
                  "  \"batch_allocs_per_unit\": %.1f,\n",
                  Hw, Functions, FrontAllocsPerUnit, MaxHeapAllocsPerUnit,
                  BatchAllocsPerUnit);
    Out << Buf;
    std::snprintf(Buf, sizeof(Buf),
                  "  \"punt\": {\"punted\": %llu, \"classified\": %llu, "
                  "\"rate\": %.4f},\n",
                  Punted, Classified, PuntRate);
    Out << Buf;
    Out << "  \"classify_chain_serial\": [\n";
    for (size_t I = 0; I < Chain.size(); ++I) {
      const ChainPoint &C = Chain[I];
      std::snprintf(Buf, sizeof(Buf),
                    "    {\"stmts\": %u, \"instrs\": %zu, \"best_us\": %.1f, "
                    "\"ns_per_instr\": %.1f}%s\n",
                    C.Stmts, C.Instrs, C.BestUs, C.NsPerInstr,
                    I + 1 < Chain.size() ? "," : "");
      Out << Buf;
    }
    Out << "  ],\n  \"batch_throughput\": [\n";
    for (size_t I = 0; I < Points.size(); ++I) {
      const BatchPoint &P = Points[I];
      std::snprintf(
          Buf, sizeof(Buf),
          "    {\"jobs\": %u, \"units\": %zu, \"instructions\": %zu, "
          "\"wall_ms\": %.2f, \"stmts_per_sec\": %.0f, \"speedup\": %.2f, "
          "\"phase_cpu_ns\": {",
          P.Jobs, P.Units, P.Instructions, P.WallMs, P.StmtsPerSec, P.Speedup);
      Out << Buf;
      bool First = true;
      for (const auto &[Name, V] : P.Phases.Timers) {
        std::snprintf(Buf, sizeof(Buf), "%s\"%s\": %llu", First ? "" : ", ",
                      Name.c_str(), static_cast<unsigned long long>(V.Ns));
        Out << Buf;
        First = false;
      }
      Out << "}}" << (I + 1 < Points.size() ? "," : "") << "\n";
    }
    Out << "  ]\n}\n";
    std::printf("# wrote %s\n", JsonPath.c_str());
  }
  return 0;
}
