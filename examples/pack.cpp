//===- examples/pack.cpp - Monotonic variables and the pack idiom -------------===//
//
// Section 4.4's motivating pattern: compressing selected elements of one
// vector into another through a conditionally incremented counter.  The
// counter is not an induction variable, but classifying it as *strictly
// monotonic within the guard* (Figure 10) proves the packed writes never
// collide -- B can be written in parallel with a prefix-sum of the guard.
//
//   $ ./pack
//
//===----------------------------------------------------------------------===//

#include "dependence/DependenceAnalyzer.h"
#include "interp/Interpreter.h"
#include "ivclass/Pipeline.h"
#include <cstdio>

using namespace biv;
using namespace biv::dependence;

int main() {
  const char *Source = R"(
    func pack(n) {
      k = 0;
      for L15: i = 1 to n {
        if (A[i] > 0) {
          k = k + 1;
          B[k] = A[i];
        }
      }
      return k;
    }
  )";
  ivclass::AnalyzedProgram P = ivclass::analyzeSourceOrDie(Source);
  analysis::Loop *L = P.LI->byName("L15");

  ir::Instruction *K = P.Info.phiFor(L->header(), "k");
  const ivclass::Classification &CK = P.IA->classify(K, L);
  std::printf("k at the loop header: %s\n", CK.str(P.IA->namer()).c_str());

  // The subscript actually used by the store is k+1 inside the guard --
  // strictly monotonic per the paper's Figure 10 argument.
  const ir::Instruction *Store = nullptr;
  for (const ir::BasicBlock *BB : P.F->blocks())
    for (const ir::Instruction *I : *BB)
      if (I->opcode() == ir::Opcode::ArrayStore &&
          I->array()->name() == "B")
        Store = I;
  const auto *Sub = ir::cast<ir::Instruction>(Store->operand(1));
  const ivclass::Classification &CS = P.IA->classify(Sub, L);
  std::printf("store subscript k+1:  %s\n", CS.str(P.IA->namer()).c_str());

  DependenceAnalyzer DA(*P.IA);
  std::vector<Dependence> Deps = DA.analyze();
  bool SelfCollision = false;
  for (const Dependence &D : Deps)
    if (D.Kind == DepKind::Output && D.Src->array()->name() == "B")
      SelfCollision |= (D.Result.dirsFor(L) & (DirLT | DirGT)) != 0;
  std::printf("packed writes can collide across iterations: %s\n",
              SelfCollision ? "maybe" : "NO (strictly monotonic subscript)");

  // Demonstrate on real data.
  std::map<std::string, std::map<std::vector<int64_t>, int64_t>> Arrays;
  const int64_t Data[] = {4, -1, 7, 0, 3, -9, 8, 2};
  for (int64_t I = 0; I < 8; ++I)
    Arrays["A"][{I + 1}] = Data[I];
  interp::ExecutionTrace T = interp::runWithArrays(*P.F, {8}, Arrays);
  if (!T.ok()) {
    std::printf("execution failed: %s\n", T.Error.c_str());
    return 1;
  }
  std::printf("packed %lld positive elements\n",
              static_cast<long long>(*T.ReturnValue));
  return SelfCollision ? 1 : 0;
}
