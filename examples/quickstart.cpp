//===- examples/quickstart.cpp - Five-minute tour of the library --------------===//
//
// Parses a small loop program, runs the whole pipeline (SSA construction,
// constant propagation, the paper's unified induction-variable analysis),
// and prints the IR, the classification tuples, and the trip counts.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "ivclass/Pipeline.h"
#include "ivclass/Report.h"
#include <cstdio>

using namespace biv;

int main() {
  // A loop nest exercising several of the paper's variable classes:
  // a linear IV (i), a derived linear subscript (2*i+1), a polynomial (acc),
  // a wrap-around (prev), and a monotonic variable (count).
  const char *Source = R"(
    func quickstart(n) {
      acc = 1;
      prev = n;
      count = 0;
      for L1: i = 1 to n {
        A[2*i + 1] = A[prev] + 1;   # prev wraps around the loop
        acc = acc + i;              # second-order polynomial
        if (A[i] > 0) {
          count = count + 1;        # monotonic: conditionally incremented
        }
        prev = i;
      }
      return count;
    }
  )";

  ivclass::AnalyzedProgram P = ivclass::analyzeSourceOrDie(Source);

  std::printf("=== SSA form ===\n%s\n", ir::toString(*P.F).c_str());
  std::printf("=== Classification (paper notation: (loop, init, steps)) "
              "===\n%s\n",
              ivclass::report(*P.IA, &P.Info).c_str());

  const ivclass::InductionAnalysis::Stats &S = P.IA->stats();
  std::printf("=== Stats ===\n"
              "strongly connected regions: %u\n"
              "linear families:            %u\n"
              "polynomial families:        %u\n"
              "wrap-arounds:               %u\n"
              "monotonic regions:          %u\n",
              S.Regions, S.LinearFamilies, S.PolynomialFamilies,
              S.WrapArounds, S.MonotonicRegions);
  return 0;
}
