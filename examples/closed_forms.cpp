//===- examples/closed_forms.cpp - Section 4.3's loop L14, end to end ---------===//
//
// Reproduces the paper's polynomial/geometric table: classify loop L14,
// print each closed form, then *execute* the loop and verify every form
// against the observed value sequence.
//
//   $ ./closed_forms
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "ivclass/Pipeline.h"
#include <cstdio>

using namespace biv;

int main() {
  const char *Source = R"(
    func l14(n) {
      j = 1; k = 1; l = 1; m = 0;
      for L14: i = 1 to n {
        j = j + i;            # polynomial, order 2
        k = k + j + 1;        # polynomial, order 3
        l = l * 2 + 1;        # geometric, base 2
        m = 3*m + 2*i + 1;    # the paper's geometric example, base 3
      }
      return k;
    }
  )";
  ivclass::AnalyzedProgram P = ivclass::analyzeSourceOrDie(Source);
  analysis::Loop *L = P.LI->byName("L14");

  std::printf("loop L14 closed forms (h = iteration counter, 0-based):\n");
  interp::ExecutionTrace T = interp::run(*P.F, {12});
  if (!T.ok()) {
    std::printf("execution failed: %s\n", T.Error.c_str());
    return 1;
  }

  int Failures = 0;
  for (const char *Var : {"j", "k", "l", "m"}) {
    ir::Instruction *Phi = P.Info.phiFor(L->header(), Var);
    const ivclass::Classification &C = P.IA->classify(Phi, L);
    std::printf("  %-2s = %-34s tuple %s\n", Var,
                C.Form.str(P.IA->namer()).c_str(),
                C.str(P.IA->namer()).c_str());
    // Verify against the real execution.
    const std::vector<int64_t> &Seq = T.sequenceOf(Phi);
    for (size_t H = 0; H < Seq.size(); ++H) {
      Affine V = C.Form.evaluateAt(H);
      if (!V.getConstant() || V.getConstant()->getInteger() != Seq[H]) {
        std::printf("     MISMATCH at h=%zu: form says %s, execution says "
                    "%lld\n",
                    H, V.str().c_str(), static_cast<long long>(Seq[H]));
        ++Failures;
      }
    }
  }
  if (Failures)
    std::printf("%d mismatches\n", Failures);
  else
    std::printf("all closed forms match execution over 12 iterations\n");
  return Failures != 0;
}
