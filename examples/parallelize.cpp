//===- examples/parallelize.cpp - Dependence-driven parallelization advisor ---===//
//
// The paper's motivating use case: "the driving force for classifying the
// variables in loops ... is to improve the generality of dependence
// testing ... allowing more aggressive optimization."  This example runs
// the dependence analyzer over several loops and reports, per loop, whether
// it can run in parallel (no loop-carried dependence) and why not when it
// cannot.
//
//   $ ./parallelize
//
//===----------------------------------------------------------------------===//

#include "dependence/DependenceAnalyzer.h"
#include "ivclass/Pipeline.h"
#include <cstdio>

using namespace biv;
using namespace biv::dependence;

namespace {

void advise(const char *Name, const char *Source) {
  ivclass::AnalyzedProgram P = ivclass::analyzeSourceOrDie(Source);
  DependenceAnalyzer DA(*P.IA);
  std::vector<Dependence> Deps = DA.analyze();

  std::printf("--- %s ---\n", Name);
  for (const auto &L : P.LI->loops()) {
    // A dependence is *carried* by L when it can hold with '=' in every
    // loop enclosing L and '<' or '>' in L itself; a loop with no carried
    // dependence can run its iterations in parallel.
    bool Parallel = true;
    const Dependence *Blocker = nullptr;
    for (const Dependence &D : Deps) {
      if (D.Result.O == DependenceResult::Outcome::Independent)
        continue;
      if (!L->contains(D.Src->parent()) || !L->contains(D.Dst->parent()))
        continue;
      bool OuterCanBeEq = true;
      for (const LoopDirection &LD : D.Result.Directions) {
        if (LD.L == L.get())
          break;
        OuterCanBeEq &= (LD.Dirs & DirEQ) != 0;
      }
      if (OuterCanBeEq && (D.Result.dirsFor(L.get()) & (DirLT | DirGT))) {
        Parallel = false;
        Blocker = &D;
        break;
      }
    }
    std::printf("  loop %-4s: %s", L->name().c_str(),
                Parallel ? "PARALLELIZABLE" : "serial");
    if (!Parallel && Blocker) {
      std::printf("  (carried %s dep on %s, %s)",
                  depKindName(Blocker->Kind),
                  std::string(Blocker->Src->array()->name()).c_str(),
                  Blocker->Result.Note.c_str());
      if (Blocker->Result.ValidAfterIterations)
        std::printf(" [peel %u iteration(s) first]",
                    Blocker->Result.ValidAfterIterations);
    }
    std::printf("\n");
  }
  std::printf("%s\n", DA.report(Deps).c_str());
}

} // namespace

int main() {
  // 1. Independent columns: classic parallel loop.
  advise("independent updates",
         R"(func f(n) {
              for L1: i = 1 to n {
                A[2*i] = A[2*i + 1] + 1;
              }
              return 0;
            })");

  // 2. A recurrence: serial (distance-1 flow dependence).
  advise("linear recurrence",
         R"(func g(n) {
              for L1: i = 1 to 100 {
                A[i] = A[i - 1] + 1;
              }
              return 0;
            })");

  // 3. The paper's L9 wrap-around: once iml settles to i-1 this is a
  //    distance-1 recurrence; the advisor shows the dependence together
  //    with the "holds after 1 iteration" peel hint (section 6).
  advise("wrap-around (settles to a recurrence)",
         R"(func l9(n) {
              iml = n;
              for L9: i = 1 to n {
                A[i] = A[iml] + 1;
                iml = i;
              }
              return 0;
            })");

  // 4. Normalization-invariance (section 6.1): triangular loop nest; the
  //    inner loop is parallel, the outer carries the dependence.
  advise("triangular nest",
         R"(func l23(n) {
              for L23: i = 1 to 50 {
                for L24: j = i + 1 to 50 {
                  A[i, j] = A[i - 1, j] + 1;
                }
              }
              return 0;
            })");
  return 0;
}
