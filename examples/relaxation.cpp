//===- examples/relaxation.cpp - Periodic variables in relaxation codes -------===//
//
// Section 4.2's motivating workload: relaxation sweeps that ping-pong
// between the "old" and "new" halves of an array using flip-flop variables.
// The paper's point: "it is extremely important and useful for the compiler
// to realize that for any fixed value of iter, j and jold have different
// values" -- the periodic classification proves the two planes never alias
// within one sweep, so each sweep's inner loop can run in parallel.
//
//   $ ./relaxation
//
//===----------------------------------------------------------------------===//

#include "dependence/DependenceAnalyzer.h"
#include "interp/Interpreter.h"
#include "ivclass/Pipeline.h"
#include "ivclass/Report.h"
#include <cstdio>

using namespace biv;
using namespace biv::dependence;

int main() {
  // Both flip-flop idioms from the paper, L11 (swap) and L12 (j = 3 - j),
  // driving a 1-D Jacobi-style relaxation over A[plane, x].
  const char *Source = R"(
    func relax(n, steps) {
      j = 1;        # plane holding the current values
      jold = 2;     # plane being read
      jtemp = 0;
      for L11: iter = 1 to steps {
        for LX: x = 2 to n {
          A[j, x] = A[jold, x - 1] + A[jold, x + 1];
        }
        jtemp = jold;   # swap planes
        jold = j;
        j = jtemp;
      }
      return j;
    }
  )";
  ivclass::AnalyzedProgram P = ivclass::analyzeSourceOrDie(Source);

  std::printf("=== classification ===\n%s\n",
              ivclass::report(*P.IA, &P.Info).c_str());

  analysis::Loop *L11 = P.LI->byName("L11");
  ir::Instruction *J = P.Info.phiFor(L11->header(), "j");
  ir::Instruction *JOld = P.Info.phiFor(L11->header(), "jold");
  const ivclass::Classification &CJ = P.IA->classify(J, L11);
  const ivclass::Classification &CO = P.IA->classify(JOld, L11);
  std::printf("j    : %s\n", CJ.str(P.IA->namer()).c_str());
  std::printf("jold : %s\n", CO.str(P.IA->namer()).c_str());
  if (CJ.isPeriodic() && CO.isPeriodic() && CJ.FamilyId == CO.FamilyId &&
      CJ.Phase != CO.Phase)
    std::printf("=> same period-2 family, different phases: j != jold on "
                "every iteration.\n\n");

  DependenceAnalyzer DA(*P.IA);
  std::vector<Dependence> Deps = DA.analyze();
  std::printf("=== dependence report ===\n%s", DA.report(Deps).c_str());

  // The payoff: the write plane j and the read plane jold can never meet in
  // the same outer iteration, so no dependence between the A accesses is
  // loop-independent in L11 -- each sweep's reads and writes are disjoint.
  bool AnySameSweepAlias = false;
  for (const Dependence &D : Deps) {
    if (D.Src == D.Dst ||
        D.Result.O == DependenceResult::Outcome::Independent)
      continue;
    AnySameSweepAlias |= (D.Result.dirsFor(L11) & DirEQ) != 0;
  }
  std::printf("\nwithin one sweep, write/read planes alias: %s\n",
              AnySameSweepAlias ? "maybe (analysis too weak)" : "NO");

  // Sanity check by execution.
  interp::ExecutionTrace T = interp::run(*P.F, {8, 6});
  std::printf("dynamic check: %s\n", T.ok() ? "ran fine" : T.Error.c_str());
  return AnySameSweepAlias ? 1 : 0;
}
