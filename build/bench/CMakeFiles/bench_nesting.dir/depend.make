# Empty dependencies file for bench_nesting.
# This may be replaced when dependencies are built.
