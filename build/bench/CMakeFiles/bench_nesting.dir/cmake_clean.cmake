file(REMOVE_RECURSE
  "CMakeFiles/bench_nesting.dir/bench_nesting.cpp.o"
  "CMakeFiles/bench_nesting.dir/bench_nesting.cpp.o.d"
  "bench_nesting"
  "bench_nesting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nesting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
