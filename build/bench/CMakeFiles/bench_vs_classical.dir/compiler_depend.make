# Empty compiler generated dependencies file for bench_vs_classical.
# This may be replaced when dependencies are built.
