file(REMOVE_RECURSE
  "CMakeFiles/bench_vs_classical.dir/bench_vs_classical.cpp.o"
  "CMakeFiles/bench_vs_classical.dir/bench_vs_classical.cpp.o.d"
  "bench_vs_classical"
  "bench_vs_classical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vs_classical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
