# Empty compiler generated dependencies file for bench_ssa.
# This may be replaced when dependencies are built.
