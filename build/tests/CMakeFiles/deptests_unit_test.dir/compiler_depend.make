# Empty compiler generated dependencies file for deptests_unit_test.
# This may be replaced when dependencies are built.
