file(REMOVE_RECURSE
  "CMakeFiles/deptests_unit_test.dir/deptests_unit_test.cpp.o"
  "CMakeFiles/deptests_unit_test.dir/deptests_unit_test.cpp.o.d"
  "deptests_unit_test"
  "deptests_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deptests_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
