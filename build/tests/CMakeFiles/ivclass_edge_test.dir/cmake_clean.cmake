file(REMOVE_RECURSE
  "CMakeFiles/ivclass_edge_test.dir/ivclass_edge_test.cpp.o"
  "CMakeFiles/ivclass_edge_test.dir/ivclass_edge_test.cpp.o.d"
  "ivclass_edge_test"
  "ivclass_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivclass_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
