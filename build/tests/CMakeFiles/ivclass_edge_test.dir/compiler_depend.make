# Empty compiler generated dependencies file for ivclass_edge_test.
# This may be replaced when dependencies are built.
