# Empty dependencies file for ivclass_test.
# This may be replaced when dependencies are built.
