file(REMOVE_RECURSE
  "CMakeFiles/ivclass_test.dir/ivclass_test.cpp.o"
  "CMakeFiles/ivclass_test.dir/ivclass_test.cpp.o.d"
  "ivclass_test"
  "ivclass_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivclass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
