file(REMOVE_RECURSE
  "CMakeFiles/closedform_test.dir/closedform_test.cpp.o"
  "CMakeFiles/closedform_test.dir/closedform_test.cpp.o.d"
  "closedform_test"
  "closedform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closedform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
