# Empty dependencies file for closedform_test.
# This may be replaced when dependencies are built.
