# Empty compiler generated dependencies file for ivclass_nested_test.
# This may be replaced when dependencies are built.
