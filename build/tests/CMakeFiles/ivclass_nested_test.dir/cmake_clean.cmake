file(REMOVE_RECURSE
  "CMakeFiles/ivclass_nested_test.dir/ivclass_nested_test.cpp.o"
  "CMakeFiles/ivclass_nested_test.dir/ivclass_nested_test.cpp.o.d"
  "ivclass_nested_test"
  "ivclass_nested_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ivclass_nested_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
