
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dependence_test.cpp" "tests/CMakeFiles/dependence_test.dir/dependence_test.cpp.o" "gcc" "tests/CMakeFiles/dependence_test.dir/dependence_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transform/CMakeFiles/biv_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/biv_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/dependence/CMakeFiles/biv_dependence.dir/DependInfo.cmake"
  "/root/repo/build/src/ivclass/CMakeFiles/biv_ivclass.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/biv_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ssa/CMakeFiles/biv_ssa.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/biv_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/biv_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/biv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/biv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
