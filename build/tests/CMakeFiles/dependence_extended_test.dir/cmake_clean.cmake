file(REMOVE_RECURSE
  "CMakeFiles/dependence_extended_test.dir/dependence_extended_test.cpp.o"
  "CMakeFiles/dependence_extended_test.dir/dependence_extended_test.cpp.o.d"
  "dependence_extended_test"
  "dependence_extended_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependence_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
