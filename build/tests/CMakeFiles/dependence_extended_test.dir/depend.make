# Empty dependencies file for dependence_extended_test.
# This may be replaced when dependencies are built.
