file(REMOVE_RECURSE
  "libbiv_ivclass.a"
)
