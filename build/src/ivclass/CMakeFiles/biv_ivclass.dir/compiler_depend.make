# Empty compiler generated dependencies file for biv_ivclass.
# This may be replaced when dependencies are built.
