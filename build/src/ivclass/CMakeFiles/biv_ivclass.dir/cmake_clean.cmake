file(REMOVE_RECURSE
  "CMakeFiles/biv_ivclass.dir/Classification.cpp.o"
  "CMakeFiles/biv_ivclass.dir/Classification.cpp.o.d"
  "CMakeFiles/biv_ivclass.dir/ClosedForm.cpp.o"
  "CMakeFiles/biv_ivclass.dir/ClosedForm.cpp.o.d"
  "CMakeFiles/biv_ivclass.dir/InductionAnalysis.cpp.o"
  "CMakeFiles/biv_ivclass.dir/InductionAnalysis.cpp.o.d"
  "CMakeFiles/biv_ivclass.dir/Pipeline.cpp.o"
  "CMakeFiles/biv_ivclass.dir/Pipeline.cpp.o.d"
  "CMakeFiles/biv_ivclass.dir/RecurrenceSolver.cpp.o"
  "CMakeFiles/biv_ivclass.dir/RecurrenceSolver.cpp.o.d"
  "CMakeFiles/biv_ivclass.dir/Report.cpp.o"
  "CMakeFiles/biv_ivclass.dir/Report.cpp.o.d"
  "CMakeFiles/biv_ivclass.dir/SSAGraph.cpp.o"
  "CMakeFiles/biv_ivclass.dir/SSAGraph.cpp.o.d"
  "CMakeFiles/biv_ivclass.dir/TripCount.cpp.o"
  "CMakeFiles/biv_ivclass.dir/TripCount.cpp.o.d"
  "libbiv_ivclass.a"
  "libbiv_ivclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biv_ivclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
