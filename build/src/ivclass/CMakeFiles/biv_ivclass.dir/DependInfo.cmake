
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ivclass/Classification.cpp" "src/ivclass/CMakeFiles/biv_ivclass.dir/Classification.cpp.o" "gcc" "src/ivclass/CMakeFiles/biv_ivclass.dir/Classification.cpp.o.d"
  "/root/repo/src/ivclass/ClosedForm.cpp" "src/ivclass/CMakeFiles/biv_ivclass.dir/ClosedForm.cpp.o" "gcc" "src/ivclass/CMakeFiles/biv_ivclass.dir/ClosedForm.cpp.o.d"
  "/root/repo/src/ivclass/InductionAnalysis.cpp" "src/ivclass/CMakeFiles/biv_ivclass.dir/InductionAnalysis.cpp.o" "gcc" "src/ivclass/CMakeFiles/biv_ivclass.dir/InductionAnalysis.cpp.o.d"
  "/root/repo/src/ivclass/Pipeline.cpp" "src/ivclass/CMakeFiles/biv_ivclass.dir/Pipeline.cpp.o" "gcc" "src/ivclass/CMakeFiles/biv_ivclass.dir/Pipeline.cpp.o.d"
  "/root/repo/src/ivclass/RecurrenceSolver.cpp" "src/ivclass/CMakeFiles/biv_ivclass.dir/RecurrenceSolver.cpp.o" "gcc" "src/ivclass/CMakeFiles/biv_ivclass.dir/RecurrenceSolver.cpp.o.d"
  "/root/repo/src/ivclass/Report.cpp" "src/ivclass/CMakeFiles/biv_ivclass.dir/Report.cpp.o" "gcc" "src/ivclass/CMakeFiles/biv_ivclass.dir/Report.cpp.o.d"
  "/root/repo/src/ivclass/SSAGraph.cpp" "src/ivclass/CMakeFiles/biv_ivclass.dir/SSAGraph.cpp.o" "gcc" "src/ivclass/CMakeFiles/biv_ivclass.dir/SSAGraph.cpp.o.d"
  "/root/repo/src/ivclass/TripCount.cpp" "src/ivclass/CMakeFiles/biv_ivclass.dir/TripCount.cpp.o" "gcc" "src/ivclass/CMakeFiles/biv_ivclass.dir/TripCount.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ssa/CMakeFiles/biv_ssa.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/biv_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/biv_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/biv_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/biv_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
