file(REMOVE_RECURSE
  "CMakeFiles/biv_analysis.dir/DominatorTree.cpp.o"
  "CMakeFiles/biv_analysis.dir/DominatorTree.cpp.o.d"
  "CMakeFiles/biv_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/biv_analysis.dir/LoopInfo.cpp.o.d"
  "libbiv_analysis.a"
  "libbiv_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biv_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
