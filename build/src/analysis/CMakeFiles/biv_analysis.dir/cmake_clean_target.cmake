file(REMOVE_RECURSE
  "libbiv_analysis.a"
)
