# Empty compiler generated dependencies file for biv_analysis.
# This may be replaced when dependencies are built.
