file(REMOVE_RECURSE
  "libbiv_ir.a"
)
