file(REMOVE_RECURSE
  "CMakeFiles/biv_ir.dir/BasicBlock.cpp.o"
  "CMakeFiles/biv_ir.dir/BasicBlock.cpp.o.d"
  "CMakeFiles/biv_ir.dir/Function.cpp.o"
  "CMakeFiles/biv_ir.dir/Function.cpp.o.d"
  "CMakeFiles/biv_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/biv_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/biv_ir.dir/Instruction.cpp.o"
  "CMakeFiles/biv_ir.dir/Instruction.cpp.o.d"
  "CMakeFiles/biv_ir.dir/Opcode.cpp.o"
  "CMakeFiles/biv_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/biv_ir.dir/Printer.cpp.o"
  "CMakeFiles/biv_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/biv_ir.dir/Verifier.cpp.o"
  "CMakeFiles/biv_ir.dir/Verifier.cpp.o.d"
  "libbiv_ir.a"
  "libbiv_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biv_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
