# Empty dependencies file for biv_ir.
# This may be replaced when dependencies are built.
