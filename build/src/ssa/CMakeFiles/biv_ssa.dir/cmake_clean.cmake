file(REMOVE_RECURSE
  "CMakeFiles/biv_ssa.dir/DeadCode.cpp.o"
  "CMakeFiles/biv_ssa.dir/DeadCode.cpp.o.d"
  "CMakeFiles/biv_ssa.dir/SCCP.cpp.o"
  "CMakeFiles/biv_ssa.dir/SCCP.cpp.o.d"
  "CMakeFiles/biv_ssa.dir/SSABuilder.cpp.o"
  "CMakeFiles/biv_ssa.dir/SSABuilder.cpp.o.d"
  "CMakeFiles/biv_ssa.dir/SSAVerifier.cpp.o"
  "CMakeFiles/biv_ssa.dir/SSAVerifier.cpp.o.d"
  "libbiv_ssa.a"
  "libbiv_ssa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biv_ssa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
