
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssa/DeadCode.cpp" "src/ssa/CMakeFiles/biv_ssa.dir/DeadCode.cpp.o" "gcc" "src/ssa/CMakeFiles/biv_ssa.dir/DeadCode.cpp.o.d"
  "/root/repo/src/ssa/SCCP.cpp" "src/ssa/CMakeFiles/biv_ssa.dir/SCCP.cpp.o" "gcc" "src/ssa/CMakeFiles/biv_ssa.dir/SCCP.cpp.o.d"
  "/root/repo/src/ssa/SSABuilder.cpp" "src/ssa/CMakeFiles/biv_ssa.dir/SSABuilder.cpp.o" "gcc" "src/ssa/CMakeFiles/biv_ssa.dir/SSABuilder.cpp.o.d"
  "/root/repo/src/ssa/SSAVerifier.cpp" "src/ssa/CMakeFiles/biv_ssa.dir/SSAVerifier.cpp.o" "gcc" "src/ssa/CMakeFiles/biv_ssa.dir/SSAVerifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/biv_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/biv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/biv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
