file(REMOVE_RECURSE
  "libbiv_ssa.a"
)
