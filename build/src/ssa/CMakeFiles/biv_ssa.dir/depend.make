# Empty dependencies file for biv_ssa.
# This may be replaced when dependencies are built.
