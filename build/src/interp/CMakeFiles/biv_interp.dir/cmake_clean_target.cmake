file(REMOVE_RECURSE
  "libbiv_interp.a"
)
