# Empty dependencies file for biv_interp.
# This may be replaced when dependencies are built.
