file(REMOVE_RECURSE
  "CMakeFiles/biv_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/biv_interp.dir/Interpreter.cpp.o.d"
  "libbiv_interp.a"
  "libbiv_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biv_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
