file(REMOVE_RECURSE
  "CMakeFiles/biv_support.dir/Affine.cpp.o"
  "CMakeFiles/biv_support.dir/Affine.cpp.o.d"
  "CMakeFiles/biv_support.dir/Matrix.cpp.o"
  "CMakeFiles/biv_support.dir/Matrix.cpp.o.d"
  "CMakeFiles/biv_support.dir/Rational.cpp.o"
  "CMakeFiles/biv_support.dir/Rational.cpp.o.d"
  "libbiv_support.a"
  "libbiv_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biv_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
