file(REMOVE_RECURSE
  "libbiv_support.a"
)
