# Empty compiler generated dependencies file for biv_support.
# This may be replaced when dependencies are built.
