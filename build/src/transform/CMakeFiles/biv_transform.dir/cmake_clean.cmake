file(REMOVE_RECURSE
  "CMakeFiles/biv_transform.dir/Interchange.cpp.o"
  "CMakeFiles/biv_transform.dir/Interchange.cpp.o.d"
  "CMakeFiles/biv_transform.dir/LoopPeel.cpp.o"
  "CMakeFiles/biv_transform.dir/LoopPeel.cpp.o.d"
  "CMakeFiles/biv_transform.dir/StrengthReduce.cpp.o"
  "CMakeFiles/biv_transform.dir/StrengthReduce.cpp.o.d"
  "libbiv_transform.a"
  "libbiv_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biv_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
