file(REMOVE_RECURSE
  "libbiv_transform.a"
)
