# Empty dependencies file for biv_transform.
# This may be replaced when dependencies are built.
