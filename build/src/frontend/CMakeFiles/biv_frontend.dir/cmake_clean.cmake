file(REMOVE_RECURSE
  "CMakeFiles/biv_frontend.dir/AST.cpp.o"
  "CMakeFiles/biv_frontend.dir/AST.cpp.o.d"
  "CMakeFiles/biv_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/biv_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/biv_frontend.dir/Lowering.cpp.o"
  "CMakeFiles/biv_frontend.dir/Lowering.cpp.o.d"
  "CMakeFiles/biv_frontend.dir/Parser.cpp.o"
  "CMakeFiles/biv_frontend.dir/Parser.cpp.o.d"
  "libbiv_frontend.a"
  "libbiv_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biv_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
