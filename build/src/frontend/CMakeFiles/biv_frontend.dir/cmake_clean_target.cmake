file(REMOVE_RECURSE
  "libbiv_frontend.a"
)
