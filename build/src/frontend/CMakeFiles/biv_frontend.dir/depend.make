# Empty dependencies file for biv_frontend.
# This may be replaced when dependencies are built.
