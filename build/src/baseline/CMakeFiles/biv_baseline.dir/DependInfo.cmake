
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/ClassicalIV.cpp" "src/baseline/CMakeFiles/biv_baseline.dir/ClassicalIV.cpp.o" "gcc" "src/baseline/CMakeFiles/biv_baseline.dir/ClassicalIV.cpp.o.d"
  "/root/repo/src/baseline/PatternMatchers.cpp" "src/baseline/CMakeFiles/biv_baseline.dir/PatternMatchers.cpp.o" "gcc" "src/baseline/CMakeFiles/biv_baseline.dir/PatternMatchers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ssa/CMakeFiles/biv_ssa.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/biv_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/biv_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/biv_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
