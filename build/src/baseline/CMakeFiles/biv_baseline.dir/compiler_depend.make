# Empty compiler generated dependencies file for biv_baseline.
# This may be replaced when dependencies are built.
