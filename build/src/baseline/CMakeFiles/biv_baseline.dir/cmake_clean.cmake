file(REMOVE_RECURSE
  "CMakeFiles/biv_baseline.dir/ClassicalIV.cpp.o"
  "CMakeFiles/biv_baseline.dir/ClassicalIV.cpp.o.d"
  "CMakeFiles/biv_baseline.dir/PatternMatchers.cpp.o"
  "CMakeFiles/biv_baseline.dir/PatternMatchers.cpp.o.d"
  "libbiv_baseline.a"
  "libbiv_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biv_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
