file(REMOVE_RECURSE
  "libbiv_baseline.a"
)
