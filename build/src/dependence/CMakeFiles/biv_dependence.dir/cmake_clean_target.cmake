file(REMOVE_RECURSE
  "libbiv_dependence.a"
)
