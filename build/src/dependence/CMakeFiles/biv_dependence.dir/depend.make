# Empty dependencies file for biv_dependence.
# This may be replaced when dependencies are built.
