file(REMOVE_RECURSE
  "CMakeFiles/biv_dependence.dir/DependenceAnalyzer.cpp.o"
  "CMakeFiles/biv_dependence.dir/DependenceAnalyzer.cpp.o.d"
  "CMakeFiles/biv_dependence.dir/DependenceTests.cpp.o"
  "CMakeFiles/biv_dependence.dir/DependenceTests.cpp.o.d"
  "CMakeFiles/biv_dependence.dir/SubscriptExpr.cpp.o"
  "CMakeFiles/biv_dependence.dir/SubscriptExpr.cpp.o.d"
  "libbiv_dependence.a"
  "libbiv_dependence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biv_dependence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
