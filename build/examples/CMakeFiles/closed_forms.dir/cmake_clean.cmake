file(REMOVE_RECURSE
  "CMakeFiles/closed_forms.dir/closed_forms.cpp.o"
  "CMakeFiles/closed_forms.dir/closed_forms.cpp.o.d"
  "closed_forms"
  "closed_forms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closed_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
