# Empty compiler generated dependencies file for closed_forms.
# This may be replaced when dependencies are built.
