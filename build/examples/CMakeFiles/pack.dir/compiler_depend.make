# Empty compiler generated dependencies file for pack.
# This may be replaced when dependencies are built.
