file(REMOVE_RECURSE
  "CMakeFiles/pack.dir/pack.cpp.o"
  "CMakeFiles/pack.dir/pack.cpp.o.d"
  "pack"
  "pack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
