file(REMOVE_RECURSE
  "CMakeFiles/bivc.dir/bivc.cpp.o"
  "CMakeFiles/bivc.dir/bivc.cpp.o.d"
  "bivc"
  "bivc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bivc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
