# Empty dependencies file for bivc.
# This may be replaced when dependencies are built.
