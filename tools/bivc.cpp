//===- tools/bivc.cpp - BeyondIV command-line driver ---------------------------===//
//
// The project's compiler-driver face: parse a loop-language file, run the
// pipeline, and print whatever the flags ask for.
//
//   bivc FILE [options] [-- args...]
//     --ir               print the SSA-form IR
//     --classify         print the classification report (default)
//     --all-values       classify every value, not just header phis
//     --deps             print the dependence report
//     --trip-counts      print per-loop trip counts
//     --peel=LOOP[:N]    peel N (default 1) iterations off LOOP first
//     --strength-reduce  run strength reduction and print the IR after
//     --no-sccp          skip constant propagation
//     --run              interpret the program with the given integer args
//
//   Observability (any mode):
//     --stats            print the counter/phase-timer table to stderr
//     --stats-json FILE  write the schema-v1 stats JSON to FILE; in batch
//                        mode the file holds one snapshot per unit plus the
//                        merged aggregate
//   Counters and span counts are deterministic (identical for -j1 and -j8);
//   only span durations (ns) vary run to run.  In fuzz mode the snapshot
//   covers the calling thread: generation, oracle checks, and the serial
//   pipeline work (the -jN determinism probes inside the fuzzer run on
//   worker threads whose frames are deliberately not folded in).
//
//   bivc --batch [-jN] FILES...
//     Parallel batch analysis: every file is split into top-level functions
//     and the whole set is sharded across N workers (default 1; -j0 picks
//     the hardware concurrency).  Prints the merged classification report in
//     input order -- byte-identical for every N -- plus a summary.
//     --summary          suppress per-unit reports, print the summary only
//     --materialize      enable exit-value materialization per unit
//     --all-values / --no-sccp apply per unit as in single-file mode
//     --cache FILE       content-addressed analysis cache: units whose
//                        lowered IR (and result-shaping options) match a
//                        cached entry are served from FILE byte-identically;
//                        misses are appended.  A stale or damaged FILE is
//                        rebuilt from scratch.  cache.hit / cache.miss /
//                        cache.bytes counters and the phase.cache timer
//                        surface through --stats / --stats-json.
//
//   bivc --serve SOCKET [-jN] [--admit N] [--cache FILE]
//        [--workers N] [--serve-tcp HOST:PORT] [--cache-max-bytes N]
//     Persistent analysis daemon on a unix-domain socket: each connection
//     carries one length-prefixed request (source text + option bits) and
//     receives the same report bytes the one-shot CLI would print.  All
//     requests share one warm analysis cache (--cache) and one worker pool
//     (-jN, default hardware concurrency).  At most --admit requests
//     (default 64) are queued-or-running; the next is answered
//     `overloaded`.  SIGTERM/SIGINT stop accepting, finish every admitted
//     request, save the cache, and exit.  --stats/--stats-json on the
//     daemon report server-lifetime counters plus per-request latency and
//     queue-depth histograms.
//       --workers N          pre-fork N worker processes sharing the
//                            listening socket(s); a supervisor respawns
//                            dead workers with backoff (stats stay
//                            per-worker)
//       --serve-tcp H:P      additional TCP frontend, same protocol
//                            (connect with `tcp:HOST:PORT`)
//       --cache-max-bytes N  compact the cache file (LRU-ish eviction,
//                            atomic rename) whenever a save would push it
//                            past N bytes
//
//   bivc --connect ENDPOINT FILE [--deadline-ms N]
//   bivc --connect ENDPOINT --server-stats
//     ENDPOINT is a unix socket path, or tcp:HOST:PORT for a --serve-tcp
//     frontend.
//     Blocking client for the daemon: sends FILE (honouring --all-values,
//     --no-sccp, --materialize) and prints the server's report, or fetches
//     the daemon's merged stats snapshot as JSON.  A non-ok status
//     (overloaded, deadline_exceeded, shutting_down, analysis errors) goes
//     to stderr with exit status 1.  --deadline-ms bounds how long the
//     request may sit in the daemon's queue before it is abandoned.
//
//   bivc --fuzz N [--seed S] [--minimize] [--cache-oracle]
//     Differential fuzzing: generate N seeded random programs, check every
//     classifier claim against the interpreter oracle, diff batch -j1
//     against -j8 byte-for-byte, and (with --minimize) delta-debug any
//     mismatching program down to a minimal statement list.  Exit status 0
//     iff no mismatch was found.  --cache-oracle additionally runs every
//     program cold and warm through an in-memory analysis cache and fails
//     on any report divergence (a random subset of programs exercises the
//     same check even without the flag).
//
//===----------------------------------------------------------------------===//

#include "cache/AnalysisCache.h"
#include "dependence/DependenceAnalyzer.h"
#include "driver/BatchAnalyzer.h"
#include "frontend/Lowering.h"
#include "fuzz/Fuzzer.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ivclass/Pipeline.h"
#include "ivclass/Report.h"
#include "server/Client.h"
#include "server/Fleet.h"
#include "server/Server.h"
#include "ssa/SCCP.h"
#include "ssa/SSABuilder.h"
#include "ssa/SSAVerifier.h"
#include "support/Stats.h"
#include "transform/LoopPeel.h"
#include "transform/StrengthReduce.h"
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace biv;

namespace {

struct CliOptions {
  std::string File;
  bool PrintIR = false;
  bool Classify = false;
  bool AllValues = false;
  bool Deps = false;
  bool TripCounts = false;
  bool StrengthReduce = false;
  bool RunSCCP = true;
  bool Summarize = false;
  bool Run = false;
  std::string PeelLoop;
  unsigned PeelTimes = 1;
  std::vector<int64_t> RunArgs;

  // Batch mode.
  bool Batch = false;
  unsigned Jobs = 1;
  bool SummaryOnly = false;
  bool Materialize = false;
  std::string CacheFile;
  std::vector<std::string> BatchFiles;

  // Serve / connect modes.
  std::string ServeSocket;
  std::string ConnectSocket;
  size_t AdmitLimit = 64;
  bool AdmitSet = false;
  bool JobsSet = false;
  uint64_t DeadlineMs = 0;
  bool ServerStats = false;
  unsigned Workers = server::DefaultWorkers;
  bool WorkersSet = false;
  std::string ServeTcp;
  uint64_t CacheMaxBytes = server::DefaultCacheMaxBytes;
  bool CacheMaxSet = false;

  // Fuzz mode.
  bool Fuzz = false;
  unsigned FuzzCount = 500;
  uint64_t FuzzSeed = 1;
  bool FuzzMinimize = false;
  bool FuzzCacheOracle = false;

  // Observability (any mode).
  bool Stats = false;
  std::string StatsJson;

  bool statsRequested() const { return Stats || !StatsJson.empty(); }
};

int usage() {
  std::fprintf(stderr,
               "usage: bivc FILE [--ir] [--classify] [--all-values] "
               "[--deps] [--trip-counts]\n"
               "            [--peel=LOOP[:N]] [--strength-reduce] "
               "[--no-sccp] [--summarize] [--run] [-- args...]\n"
               "       bivc --batch [-jN] [--summary] [--materialize] "
               "[--summarize] [--cache FILE] FILES...\n"
               "       bivc --serve SOCKET [-jN] [--admit N] "
               "[--cache FILE] [--workers N]\n"
               "            [--serve-tcp HOST:PORT] [--cache-max-bytes N]\n"
               "       bivc --connect ENDPOINT FILE [--deadline-ms N] | "
               "--connect ENDPOINT --server-stats\n"
               "            (ENDPOINT: unix socket path or tcp:HOST:PORT)\n"
               "       bivc --fuzz N [--seed S] [--minimize] "
               "[--cache-oracle]\n"
               "       any mode: [--stats] [--stats-json FILE]\n");
  return 2;
}

bool numericArg(const char *S) {
  return *S && std::string(S).find_first_not_of("0123456789") ==
                   std::string::npos;
}

/// Strict bounded parse for flags whose value feeds arithmetic (deadline
/// ns conversion, admission counters, fork counts): the whole string must
/// be decimal digits -- `-3` or `12x` never silently wraps through
/// strtoul -- and the value must land in [\p Min, \p Max].  Diagnoses and
/// returns false otherwise, matching the unknown-flag hard-error policy.
bool parseBounded(const char *Flag, const std::string &Text, uint64_t Min,
                  uint64_t Max, uint64_t &Out) {
  if (Text.empty() ||
      Text.find_first_not_of("0123456789") != std::string::npos) {
    std::fprintf(stderr,
                 "bivc: %s requires a positive integer, got '%s'\n", Flag,
                 Text.c_str());
    return false;
  }
  uint64_t V = 0;
  for (char C : Text) {
    unsigned D = unsigned(C - '0');
    if (V > (UINT64_MAX - D) / 10) {
      std::fprintf(stderr, "bivc: %s value '%s' is out of range\n", Flag,
                   Text.c_str());
      return false;
    }
    V = V * 10 + D;
  }
  if (V < Min || V > Max) {
    std::fprintf(stderr,
                 "bivc: %s value %llu is out of range [%llu, %llu]\n",
                 Flag, (unsigned long long)V, (unsigned long long)Min,
                 (unsigned long long)Max);
    return false;
  }
  Out = V;
  return true;
}

/// The value of `--flag X` / `--flag=X`, advancing \p I for the two-token
/// form.  Empty when there is no value.
std::string flagValue(const std::string &A, size_t FlagLen, int &I,
                      int Argc, char **Argv) {
  if (A.size() > FlagLen && A[FlagLen] == '=')
    return A.substr(FlagLen + 1);
  if (I + 1 < Argc)
    return Argv[++I];
  return std::string();
}

bool parseArgs(int Argc, char **Argv, CliOptions &O) {
  bool AfterDashes = false;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (AfterDashes) {
      O.RunArgs.push_back(std::strtoll(A.c_str(), nullptr, 10));
      continue;
    }
    if (A == "--") {
      AfterDashes = true;
    } else if (A == "--batch") {
      O.Batch = true;
    } else if (A == "--fuzz" || A.rfind("--fuzz=", 0) == 0) {
      O.Fuzz = true;
      if (A.size() > 7 && A[6] == '=')
        O.FuzzCount = std::strtoul(A.c_str() + 7, nullptr, 10);
      else if (I + 1 < Argc && numericArg(Argv[I + 1]))
        O.FuzzCount = std::strtoul(Argv[++I], nullptr, 10);
    } else if (A == "--seed" || A.rfind("--seed=", 0) == 0) {
      if (A.size() > 7 && A[6] == '=')
        O.FuzzSeed = std::strtoull(A.c_str() + 7, nullptr, 10);
      else if (I + 1 < Argc && numericArg(Argv[I + 1]))
        O.FuzzSeed = std::strtoull(Argv[++I], nullptr, 10);
      else
        return false;
    } else if (A == "--minimize") {
      O.FuzzMinimize = true;
    } else if (A == "--cache-oracle") {
      O.FuzzCacheOracle = true;
    } else if (A == "--cache" || A.rfind("--cache=", 0) == 0) {
      if (A.size() > 7 && A[7] == '=')
        O.CacheFile = A.substr(8);
      else if (I + 1 < Argc)
        O.CacheFile = Argv[++I];
      if (O.CacheFile.empty()) {
        std::fprintf(stderr, "bivc: --cache requires a file name\n");
        return false;
      }
    } else if (A == "--serve" || A.rfind("--serve=", 0) == 0) {
      if (A.rfind("--serve=", 0) == 0)
        O.ServeSocket = A.substr(8);
      else if (I + 1 < Argc)
        O.ServeSocket = Argv[++I];
      if (O.ServeSocket.empty()) {
        std::fprintf(stderr, "bivc: --serve requires a socket path\n");
        return false;
      }
    } else if (A == "--connect" || A.rfind("--connect=", 0) == 0) {
      if (A.rfind("--connect=", 0) == 0)
        O.ConnectSocket = A.substr(10);
      else if (I + 1 < Argc)
        O.ConnectSocket = Argv[++I];
      if (O.ConnectSocket.empty()) {
        std::fprintf(stderr, "bivc: --connect requires a socket path\n");
        return false;
      }
    } else if (A == "--admit" || A.rfind("--admit=", 0) == 0) {
      // The limit seeds admission counters; an unchecked strtoul would let
      // `--admit=-3` wrap to effectively-unbounded admission.
      uint64_t V = 0;
      if (!parseBounded("--admit", flagValue(A, 7, I, Argc, Argv), 1,
                        1u << 20, V))
        return false;
      O.AdmitLimit = size_t(V);
      O.AdmitSet = true;
    } else if (A == "--deadline-ms" || A.rfind("--deadline-ms=", 0) == 0) {
      // Bounded so the server's ms -> ns conversion cannot overflow:
      // anything past INT64_MAX/1e6 ms would wrap into the past and
      // deadline-expire every request (or never).
      if (!parseBounded("--deadline-ms", flagValue(A, 13, I, Argc, Argv),
                        1, uint64_t(INT64_MAX) / 1000000u, O.DeadlineMs))
        return false;
    } else if (A == "--workers" || A.rfind("--workers=", 0) == 0) {
      uint64_t V = 0;
      if (!parseBounded("--workers", flagValue(A, 9, I, Argc, Argv), 1,
                        server::MaxWorkers, V))
        return false;
      O.Workers = unsigned(V);
      O.WorkersSet = true;
    } else if (A == "--cache-max-bytes" ||
               A.rfind("--cache-max-bytes=", 0) == 0) {
      // Below ~4KB not even an empty cache image fits; treat it as the
      // typo it is rather than thrash compaction forever.
      if (!parseBounded("--cache-max-bytes",
                        flagValue(A, 17, I, Argc, Argv), 4096, UINT64_MAX,
                        O.CacheMaxBytes))
        return false;
      O.CacheMaxSet = true;
    } else if (A == "--serve-tcp" || A.rfind("--serve-tcp=", 0) == 0) {
      O.ServeTcp = flagValue(A, 11, I, Argc, Argv);
      if (O.ServeTcp.empty()) {
        std::fprintf(stderr, "bivc: --serve-tcp requires HOST:PORT\n");
        return false;
      }
    } else if (A == "--server-stats") {
      O.ServerStats = true;
    } else if (A == "--summary") {
      O.SummaryOnly = true;
    } else if (A == "--materialize") {
      O.Materialize = true;
    } else if (A.rfind("-j", 0) == 0 && A != "-j" &&
               A.find_first_not_of("0123456789", 2) == std::string::npos) {
      O.Jobs = std::strtoul(A.c_str() + 2, nullptr, 10);
      O.JobsSet = true;
    } else if (A.rfind("--jobs=", 0) == 0) {
      O.Jobs = std::strtoul(A.c_str() + 7, nullptr, 10);
      O.JobsSet = true;
    } else if (A == "--ir") {
      O.PrintIR = true;
    } else if (A == "--classify") {
      O.Classify = true;
    } else if (A == "--all-values") {
      O.AllValues = O.Classify = true;
    } else if (A == "--deps") {
      O.Deps = true;
    } else if (A == "--trip-counts") {
      O.TripCounts = true;
    } else if (A == "--strength-reduce") {
      O.StrengthReduce = true;
    } else if (A == "--no-sccp") {
      O.RunSCCP = false;
    } else if (A == "--summarize") {
      O.Summarize = true;
    } else if (A == "--run") {
      O.Run = true;
    } else if (A == "--stats") {
      O.Stats = true;
    } else if (A == "--stats-json" || A.rfind("--stats-json=", 0) == 0) {
      if (A.size() > 12 && A[12] == '=')
        O.StatsJson = A.substr(13);
      else if (I + 1 < Argc)
        O.StatsJson = Argv[++I];
      if (O.StatsJson.empty()) {
        std::fprintf(stderr, "bivc: --stats-json requires a file name\n");
        return false;
      }
    } else if (A.rfind("--peel=", 0) == 0) {
      std::string Spec = A.substr(7);
      size_t Colon = Spec.find(':');
      if (Colon == std::string::npos) {
        O.PeelLoop = Spec;
      } else {
        O.PeelLoop = Spec.substr(0, Colon);
        O.PeelTimes = std::strtoul(Spec.c_str() + Colon + 1, nullptr, 10);
      }
    } else if (!A.empty() && A[0] == '-') {
      // Anything else that looks like a flag -- `--whatever`, `-z`, a bare
      // `-j` -- is a hard error, never silently a file name.
      std::fprintf(stderr, "bivc: unknown option %s\n", A.c_str());
      return false;
    } else if (O.Batch) {
      O.BatchFiles.push_back(A);
    } else if (O.File.empty()) {
      O.File = A;
    } else {
      return false;
    }
  }
  if (!O.CacheFile.empty() && !O.Batch && O.ServeSocket.empty()) {
    std::fprintf(stderr,
                 "bivc: --cache only applies to --batch and --serve modes\n");
    return false;
  }
  if (!O.ServeSocket.empty()) {
    if (O.Batch || O.Fuzz || !O.ConnectSocket.empty() || !O.File.empty()) {
      std::fprintf(stderr,
                   "bivc: --serve takes no input files and excludes the "
                   "other modes\n");
      return false;
    }
    if (O.CacheMaxSet && O.CacheFile.empty()) {
      std::fprintf(stderr,
                   "bivc: --cache-max-bytes requires --cache FILE\n");
      return false;
    }
    return true;
  }
  if (O.AdmitSet) {
    std::fprintf(stderr, "bivc: --admit only applies to --serve mode\n");
    return false;
  }
  if (O.WorkersSet || !O.ServeTcp.empty() || O.CacheMaxSet) {
    std::fprintf(stderr, "bivc: --workers, --serve-tcp, and "
                         "--cache-max-bytes only apply to --serve mode\n");
    return false;
  }
  if (!O.ConnectSocket.empty()) {
    if (O.Batch || O.Fuzz)
      return false;
    if (O.PrintIR || O.Deps || O.TripCounts || O.Run || O.StrengthReduce ||
        !O.PeelLoop.empty()) {
      std::fprintf(stderr,
                   "bivc: --connect serves classification reports only\n");
      return false;
    }
    if (O.ServerStats)
      return O.File.empty();
    if (O.File.empty()) {
      std::fprintf(stderr,
                   "bivc: --connect requires a FILE (or --server-stats)\n");
      return false;
    }
    O.Classify = true;
    return true;
  }
  if (O.DeadlineMs != 0 || O.ServerStats) {
    std::fprintf(stderr, "bivc: --deadline-ms and --server-stats only "
                         "apply to --connect mode\n");
    return false;
  }
  if (O.Fuzz)
    return O.FuzzCount > 0 && O.File.empty() && !O.Batch;
  if (O.Batch)
    return !O.BatchFiles.empty();
  if (O.File.empty())
    return false;
  if (!O.PrintIR && !O.Deps && !O.TripCounts && !O.Run &&
      !O.StrengthReduce)
    O.Classify = true;
  return true;
}

/// Renders \p S to the surfaces the flags asked for: human table on stderr
/// (--stats), schema-v1 JSON file (--stats-json).  \p BatchJson, when
/// non-empty, replaces the single-snapshot JSON body (batch mode embeds
/// per-unit snapshots).  Returns false when the JSON file cannot be written.
bool writeStatsOutputs(const CliOptions &O, const stats::StatsSnapshot &S,
                       const std::string &BatchJson = std::string()) {
  if (O.Stats) {
    std::string T = S.renderTable();
    std::fwrite(T.data(), 1, T.size(), stderr);
  }
  if (!O.StatsJson.empty()) {
    std::ofstream Out(O.StatsJson);
    if (!Out) {
      std::fprintf(stderr, "bivc: cannot write %s\n", O.StatsJson.c_str());
      return false;
    }
    Out << (BatchJson.empty() ? S.renderJson() : BatchJson) << "\n";
    // Opening can succeed where writing does not (full disk, /dev/full, a
    // vanished directory): flush and re-check, or a truncated stats file
    // would pass for a successful run.
    Out.flush();
    if (!Out) {
      std::fprintf(stderr, "bivc: error writing %s\n", O.StatsJson.c_str());
      return false;
    }
  }
  return true;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (unsigned(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", unsigned(C));
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

int runFuzzMode(const CliOptions &O) {
  fuzz::FuzzOptions FO;
  FO.Count = O.FuzzCount;
  FO.Seed = O.FuzzSeed;
  FO.Minimize = O.FuzzMinimize;
  FO.CacheOracleAlways = O.FuzzCacheOracle;
  FO.Oracle.Summarize = O.Summarize;
  fuzz::FuzzResult R = fuzz::runFuzz(FO);
  std::string Text = R.renderText();
  std::fwrite(Text.data(), 1, Text.size(), stdout);
  if (O.statsRequested() &&
      !writeStatsOutputs(O, stats::snapshotFrame(stats::captureFrame())))
    return 1;
  return R.ok() ? 0 : 1;
}

int runBatch(const CliOptions &O) {
  std::vector<driver::SourceInput> Sources;
  Sources.reserve(O.BatchFiles.size());
  for (const std::string &Path : O.BatchFiles) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "bivc: cannot open %s\n", Path.c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    Sources.push_back({Path, Buf.str()});
  }

  driver::BatchOptions BO;
  BO.Jobs = O.Jobs;
  BO.RunSCCP = O.RunSCCP;
  BO.MaterializeExitValues = O.Materialize;
  BO.Classify = !O.SummaryOnly;
  BO.Summarize = O.Summarize;
  BO.Report.AllValues = O.AllValues;

  cache::AnalysisCache Cache;
  if (!O.CacheFile.empty()) {
    std::string Err;
    if (!Cache.open(O.CacheFile, Err)) {
      std::fprintf(stderr, "bivc: %s\n", Err.c_str());
      return 1;
    }
    if (Cache.invalidated())
      std::fprintf(stderr,
                   "bivc: cache %s is stale or damaged; rebuilding it\n",
                   O.CacheFile.c_str());
    BO.Cache = &Cache;
  }

  driver::BatchResult R = driver::analyzeBatch(Sources, BO);
  std::string Text = R.renderText();
  std::fwrite(Text.data(), 1, Text.size(), stdout);

  if (!O.CacheFile.empty()) {
    std::string Err;
    if (!Cache.save(Err)) {
      // A cache that silently fails to persist would re-analyze forever
      // while claiming warm runs; fail the whole invocation instead.
      std::fprintf(stderr, "bivc: %s\n", Err.c_str());
      return 1;
    }
  }

  if (O.statsRequested()) {
    stats::StatsSnapshot Merged = stats::snapshotFrame(R.MergedStats);
    // Batch JSON: one snapshot per unit (input order) plus the aggregate.
    std::string Json;
    if (!O.StatsJson.empty()) {
      Json = "{\n  \"v\": 1,\n  \"units\": [";
      for (size_t I = 0; I < R.Units.size(); ++I) {
        const driver::UnitResult &U = R.Units[I];
        Json += I ? ",\n" : "\n";
        Json += "    {\"name\": \"" + jsonEscape(U.Name) + "\", \"stats\":\n";
        Json += stats::snapshotFrame(U.StatsDelta).renderJson("      ");
        Json += "}";
      }
      Json += "\n  ],\n  \"aggregate\":\n";
      Json += Merged.renderJson("    ");
      Json += "\n}";
    }
    if (!writeStatsOutputs(O, Merged, Json))
      return 1;
  }
  return R.Failed == 0 ? 0 : 1;
}

int runServe(const CliOptions &O) {
  server::ServerOptions SO;
  // Unlike batch mode a daemon defaults to the hardware concurrency: the
  // whole point is amortizing one process over many concurrent clients.
  SO.Threads = O.JobsSet ? O.Jobs : 0;
  SO.AdmitLimit = O.AdmitLimit;
  SO.CachePath = O.CacheFile;
  SO.CacheMaxBytes = O.CacheMaxBytes;
  // Fault injection for the soak harness only; see ServerOptions.
  if (const char *Tok = std::getenv("BIV_SERVE_CRASH_TOKEN"))
    SO.CrashToken = Tok;

  if (O.Workers > 1) {
    // Fleet mode: fork first, thread later.  The supervisor owns the
    // bound sockets and the socket file; stats remain per-worker, so the
    // daemon-side --stats surfaces are not available here.
    if (O.statsRequested())
      std::fprintf(stderr,
                   "bivc: --stats/--stats-json are per-worker; the fleet "
                   "supervisor has none to report\n");
    server::FleetOptions FO;
    FO.SocketPath = O.ServeSocket;
    FO.TcpSpec = O.ServeTcp;
    FO.Workers = O.Workers;
    FO.Worker = SO;
    std::fprintf(stderr,
                 "bivc: fleet of %u workers on %s (admit limit %zu per "
                 "worker); SIGTERM drains\n",
                 O.Workers, O.ServeSocket.c_str(), SO.AdmitLimit);
    return server::runFleet(FO);
  }

  SO.TcpSpec = O.ServeTcp;
  server::Server S(O.ServeSocket, SO);
  std::string Err;
  if (!S.start(Err)) {
    std::fprintf(stderr, "bivc: %s\n", Err.c_str());
    return 1;
  }
  S.installSignalHandlers();
  if (S.tcpPort() != 0)
    std::fprintf(stderr, "bivc: serving on tcp port %d\n", S.tcpPort());
  std::fprintf(stderr,
               "bivc: serving on %s (admit limit %zu); SIGTERM drains\n",
               O.ServeSocket.c_str(), SO.AdmitLimit);
  S.waitForShutdown();
  int Rc = 0;
  if (!S.drain(Err)) {
    std::fprintf(stderr, "bivc: %s\n", Err.c_str());
    Rc = 1;
  }
  if (O.statsRequested() && !writeStatsOutputs(O, S.statsSnapshot()))
    Rc = 1;
  return Rc;
}

int runConnect(const CliOptions &O) {
  server::Request Q;
  if (O.ServerStats) {
    Q.Kind = server::RequestKind::Stats;
  } else {
    std::ifstream In(O.File);
    if (!In) {
      std::fprintf(stderr, "bivc: cannot open %s\n", O.File.c_str());
      return 1;
    }
    std::stringstream Buf;
    Buf << In.rdbuf();
    Q.Kind = server::RequestKind::Analyze;
    Q.Source = Buf.str();
    // The batch driver's digest bits.  Bit 2 (exit-value materialization)
    // and bit 16 (nested tuples) are always on: those are the one-shot
    // pipeline's defaults, and --connect promises byte-identity with it
    // (--batch defaults materialization off instead).
    Q.OptsBits = (O.RunSCCP ? 1u : 0u) | 2u | (O.Classify ? 4u : 0u) |
                 (O.AllValues ? 8u : 0u) | 16u | (O.Summarize ? 32u : 0u);
    Q.DeadlineMs = O.DeadlineMs;
  }
  server::Response R;
  std::string Err;
  if (!server::call(O.ConnectSocket, Q, R, Err)) {
    std::fprintf(stderr, "bivc: %s\n", Err.c_str());
    return 1;
  }
  if (R.S != server::Status::Ok) {
    std::fprintf(stderr, "bivc: server: %s%s%s\n", server::statusName(R.S),
                 R.Body.empty() ? "" : ": ", R.Body.c_str());
    return 1;
  }
  std::fwrite(R.Body.data(), 1, R.Body.size(), stdout);
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions O;
  if (!parseArgs(Argc, Argv, O))
    return usage();

  if (!O.ServeSocket.empty())
    return runServe(O);
  if (!O.ConnectSocket.empty())
    return runConnect(O);
  if (O.Fuzz)
    return runFuzzMode(O);
  if (O.Batch)
    return runBatch(O);

  std::ifstream In(O.File);
  if (!In) {
    std::fprintf(stderr, "bivc: cannot open %s\n", O.File.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();

  std::vector<std::string> Errors;
  std::unique_ptr<ir::Function> F =
      frontend::parseAndLower(Buf.str(), Errors);
  if (!F) {
    for (const std::string &E : Errors)
      std::fprintf(stderr, "bivc: %s\n", E.c_str());
    // Diagnostics are themselves counted; a failing parse still reports.
    if (O.statsRequested())
      writeStatsOutputs(O, stats::snapshotFrame(stats::captureFrame()));
    return 1;
  }

  if (!O.PeelLoop.empty()) {
    unsigned Peeled = transform::peelLoop(*F, O.PeelLoop, O.PeelTimes);
    if (Peeled < O.PeelTimes) {
      // Partial success is still a failure of the request, but the IR now
      // really carries Peeled copies -- say so instead of pretending
      // nothing happened.
      std::fprintf(stderr,
                   "bivc: peeled only %u of %u requested iteration(s) of "
                   "loop '%s'\n",
                   Peeled, O.PeelTimes, O.PeelLoop.c_str());
      return 1;
    }
    std::printf(";; peeled %u iteration(s) of %s\n", Peeled,
                O.PeelLoop.c_str());
  }

  ssa::SSAInfo Info = ssa::buildSSA(*F);
  ssa::verifySSAOrDie(*F);
  if (O.RunSCCP)
    ssa::runSCCP(*F, /*SimplifyCFG=*/false);

  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  ivclass::InductionAnalysis::Options AO;
  AO.Summarize = O.Summarize;
  ivclass::InductionAnalysis IA(*F, DT, LI, AO);
  IA.run();

  if (O.StrengthReduce) {
    transform::StrengthReduceStats S = transform::strengthReduce(IA);
    std::printf(";; strength reduction: %u multiplication(s) replaced\n",
                S.Reduced);
    ssa::verifySSAOrDie(*F);
    O.PrintIR = true;
  }

  if (O.PrintIR)
    std::printf("%s\n", ir::toString(*F).c_str());

  if (O.Classify) {
    ivclass::ReportOptions RO;
    RO.AllValues = O.AllValues;
    std::printf("%s", ivclass::report(IA, &Info, RO).c_str());
  }

  if (O.TripCounts)
    for (const auto &L : LI.loops())
      std::printf("trip count of %s: %s\n", L->name().c_str(),
                  IA.tripCount(L.get()).str(IA.namer()).c_str());

  if (O.Deps) {
    dependence::DependenceAnalyzer DA(IA);
    std::vector<dependence::Dependence> Deps = DA.analyze();
    std::printf("%s", DA.report(Deps).c_str());
  }

  if (O.Run) {
    interp::ExecutionTrace T = interp::run(*F, O.RunArgs);
    if (!T.ok()) {
      std::fprintf(stderr, "bivc: execution failed: %s\n", T.Error.c_str());
      return 1;
    }
    if (T.ReturnValue)
      std::printf("returned %lld (in %llu steps)\n",
                  static_cast<long long>(*T.ReturnValue),
                  static_cast<unsigned long long>(T.Steps));
    else
      std::printf("returned void (in %llu steps)\n",
                  static_cast<unsigned long long>(T.Steps));
  }

  if (O.statsRequested()) {
    // The per-kind counters fire in countHeaderPhiKinds (the one canonical
    // accounting site); batch mode calls it per unit, single mode here.
    ivclass::countHeaderPhiKinds(IA);
    if (!writeStatsOutputs(O, stats::snapshotFrame(stats::captureFrame())))
      return 1;
  }
  return 0;
}
