#!/bin/sh
# Checks that the documentation is not lying about the code:
#
#  1. every `--flag` that appears on a `bivc` line in the docs must be
#     handled by tools/bivc.cpp (catches docs advertising dead flags);
#  2. every backtick-quoted repo path under src/ tools/ tests/ bench/ docs/
#     that the docs mention must exist (catches stale references after
#     renames).
#
# Registered as the tier-1 `docs_check` ctest entry; also runnable directly:
#   tools/check_docs.sh
set -u

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
cd "$ROOT"
FAIL=0

DOCS="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/LANGUAGE.md"
for D in $DOCS; do
  if [ ! -f "$D" ]; then
    echo "docs_check: missing documentation file $D" >&2
    FAIL=1
  fi
done

# 1. Flags on bivc command lines (only tokens after the word `bivc`, so
# ctest/cmake flags on mixed prose lines don't false-positive) plus the
# README CLI reference table (rows whose first cell is a flag).  A flag is
# "handled" when it appears as a string literal in the driver's parser.
FLAGS=$({
  grep -h 'bivc' $DOCS 2>/dev/null | sed 's/.*bivc//' |
    grep -oE -- '--[a-z][a-z-]*'
  grep -hE '^\| .?-' README.md 2>/dev/null |
    grep -oE -- '--[a-z][a-z-]*'
} | sort -u)
for FLAG in $FLAGS; do
  if ! grep -qF "\"$FLAG" tools/bivc.cpp; then
    echo "docs_check: docs mention bivc flag $FLAG," \
         "which tools/bivc.cpp does not parse" >&2
    FAIL=1
  fi
done

# 2. Backtick-quoted repo paths.  Docs may name build-tree binaries
# (`bench/bench_batch`, `tests/ivclass`); those count as long as the source
# that produces them exists.
PATHS=$(grep -hoE '`[A-Za-z0-9_./-]+`' $DOCS 2>/dev/null | tr -d '\140' |
  grep -E '^(src|tools|tests|bench|docs)/' | sort -u)
for P in $PATHS; do
  if [ ! -e "$P" ] && [ ! -e "$P.cpp" ] && [ ! -e "${P}_test.cpp" ]; then
    echo "docs_check: docs reference missing path $P" >&2
    FAIL=1
  fi
done

# 3. The cache salt the docs document must be the salt the code ships:
# DESIGN.md section 9 states the current AnalysisVersionSalt in bold so
# readers can tell stale cache files apart; a bump that forgets the doc
# (or vice versa) fails here.
CODE_SALT=$(sed -n \
  's/.*AnalysisVersionSalt = \([0-9][0-9]*\);.*/\1/p' \
  src/cache/AnalysisCache.h)
DOC_SALT=$(sed -n \
  's/.*`AnalysisVersionSalt` (currently \*\*\([0-9][0-9]*\)\*\*.*/\1/p' \
  DESIGN.md)
if [ -z "$CODE_SALT" ]; then
  echo "docs_check: cannot find AnalysisVersionSalt in" \
       "src/cache/AnalysisCache.h" >&2
  FAIL=1
elif [ -z "$DOC_SALT" ]; then
  echo "docs_check: DESIGN.md does not document the current" \
       "AnalysisVersionSalt" >&2
  FAIL=1
elif [ "$CODE_SALT" != "$DOC_SALT" ]; then
  echo "docs_check: DESIGN.md documents AnalysisVersionSalt $DOC_SALT" \
       "but src/cache/AnalysisCache.h says $CODE_SALT" >&2
  FAIL=1
fi

# 4. Same contract for the daemon's wire protocol: DESIGN.md section 10
# states the current ProtocolVersion in bold; a wire-visible change that
# bumps the constant but not the doc (or vice versa) fails here.
CODE_PROTO=$(sed -n \
  's/.*ProtocolVersion = \([0-9][0-9]*\);.*/\1/p' \
  src/server/Protocol.h)
DOC_PROTO=$(sed -n \
  's/.*`ProtocolVersion` (currently \*\*\([0-9][0-9]*\)\*\*.*/\1/p' \
  DESIGN.md)
if [ -z "$CODE_PROTO" ]; then
  echo "docs_check: cannot find ProtocolVersion in" \
       "src/server/Protocol.h" >&2
  FAIL=1
elif [ -z "$DOC_PROTO" ]; then
  echo "docs_check: DESIGN.md does not document the current" \
       "ProtocolVersion" >&2
  FAIL=1
elif [ "$CODE_PROTO" != "$DOC_PROTO" ]; then
  echo "docs_check: DESIGN.md documents ProtocolVersion $DOC_PROTO" \
       "but src/server/Protocol.h says $CODE_PROTO" >&2
  FAIL=1
fi

# 5. Same contract for the per-unit allocation ceiling: DESIGN.md
# section 11 states the current MaxHeapAllocsPerUnit in bold, and
# bench/bench_batch.cpp fails its run when the front-half hot path
# exceeds the constant; doc and assertion must move together.
CODE_CEIL=$(sed -n \
  's/.*MaxHeapAllocsPerUnit = \([0-9][0-9]*\);.*/\1/p' \
  bench/bench_batch.cpp)
DOC_CEIL=$(sed -n \
  's/.*`MaxHeapAllocsPerUnit` (currently \*\*\([0-9][0-9]*\)\*\*.*/\1/p' \
  DESIGN.md)
if [ -z "$CODE_CEIL" ]; then
  echo "docs_check: cannot find MaxHeapAllocsPerUnit in" \
       "bench/bench_batch.cpp" >&2
  FAIL=1
elif [ -z "$DOC_CEIL" ]; then
  echo "docs_check: DESIGN.md does not document the current" \
       "MaxHeapAllocsPerUnit" >&2
  FAIL=1
elif [ "$CODE_CEIL" != "$DOC_CEIL" ]; then
  echo "docs_check: DESIGN.md documents MaxHeapAllocsPerUnit $DOC_CEIL" \
       "but bench/bench_batch.cpp says $CODE_CEIL" >&2
  FAIL=1
fi

# 6. Fleet constants: the README documents the default worker count and
# the default cache cap; both live in src/server/Fleet.h and must match.
CODE_WORKERS=$(sed -n \
  's/.*DefaultWorkers = \([0-9][0-9]*\);.*/\1/p' src/server/Fleet.h)
DOC_WORKERS=$(sed -n \
  's/.*`--workers N`[^|]*|.*default \*\*\([0-9][0-9]*\)\*\*.*/\1/p' \
  README.md)
if [ -z "$CODE_WORKERS" ]; then
  echo "docs_check: cannot find DefaultWorkers in src/server/Fleet.h" >&2
  FAIL=1
elif [ -z "$DOC_WORKERS" ]; then
  echo "docs_check: README.md does not document the default --workers" \
       "count in bold on its table row" >&2
  FAIL=1
elif [ "$CODE_WORKERS" != "$DOC_WORKERS" ]; then
  echo "docs_check: README.md documents default --workers $DOC_WORKERS" \
       "but src/server/Fleet.h says $CODE_WORKERS" >&2
  FAIL=1
fi
CODE_CACHE_CAP=$(sed -n \
  's/.*DefaultCacheMaxBytes = \([0-9][0-9]*\);.*/\1/p' src/server/Fleet.h)
DOC_CACHE_CAP=$(sed -n \
  's/.*`--cache-max-bytes N`[^|]*|.*default \*\*\([0-9][0-9]*\)\*\*.*/\1/p' \
  README.md)
if [ -z "$CODE_CACHE_CAP" ]; then
  echo "docs_check: cannot find DefaultCacheMaxBytes in" \
       "src/server/Fleet.h" >&2
  FAIL=1
elif [ -z "$DOC_CACHE_CAP" ]; then
  echo "docs_check: README.md does not document the default" \
       "--cache-max-bytes in bold on its table row" >&2
  FAIL=1
elif [ "$CODE_CACHE_CAP" != "$DOC_CACHE_CAP" ]; then
  echo "docs_check: README.md documents default --cache-max-bytes" \
       "$DOC_CACHE_CAP but src/server/Fleet.h says $CODE_CACHE_CAP" >&2
  FAIL=1
fi

# 7. The c-finite lattice extension ships with its documentation: as long
# as the classifier defines IVKind::CFinite, DESIGN.md must carry the
# "C-finite lattice extension" section and EXPERIMENTS.md must track the
# punt-rate metric by its real counter name (`ivclass.punt`, declared in
# src/ivclass/Report.cpp).
if grep -q "CFinite" src/ivclass/Classification.h; then
  if ! grep -q "C-finite lattice extension" DESIGN.md; then
    echo "docs_check: classifier has IVKind::CFinite but DESIGN.md lacks" \
         "the 'C-finite lattice extension' section" >&2
    FAIL=1
  fi
  if ! grep -q "ivclass.punt" EXPERIMENTS.md; then
    echo "docs_check: EXPERIMENTS.md does not document the punt-rate" \
         "counter ivclass.punt" >&2
    FAIL=1
  fi
  if ! grep -q '"ivclass.punt"' src/ivclass/Report.cpp; then
    echo "docs_check: EXPERIMENTS.md tracks ivclass.punt but the counter" \
         "is not declared in src/ivclass/Report.cpp" >&2
    FAIL=1
  fi
fi

# 8. Summarizer constants: DESIGN.md section 14 states the conjecture
# bounds in bold; both live in src/ivclass/Summarize.h and must match.
CODE_SUMM_PERIOD=$(sed -n \
  's/.*SummarizeMaxPeriod = \([0-9][0-9]*\);.*/\1/p' \
  src/ivclass/Summarize.h)
DOC_SUMM_PERIOD=$(sed -n \
  's/.*`SummarizeMaxPeriod` (currently \*\*\([0-9][0-9]*\)\*\*.*/\1/p' \
  DESIGN.md)
if [ -z "$CODE_SUMM_PERIOD" ]; then
  echo "docs_check: cannot find SummarizeMaxPeriod in" \
       "src/ivclass/Summarize.h" >&2
  FAIL=1
elif [ -z "$DOC_SUMM_PERIOD" ]; then
  echo "docs_check: DESIGN.md does not document the current" \
       "SummarizeMaxPeriod" >&2
  FAIL=1
elif [ "$CODE_SUMM_PERIOD" != "$DOC_SUMM_PERIOD" ]; then
  echo "docs_check: DESIGN.md documents SummarizeMaxPeriod" \
       "$DOC_SUMM_PERIOD but src/ivclass/Summarize.h says" \
       "$CODE_SUMM_PERIOD" >&2
  FAIL=1
fi
CODE_SUMM_SAMPLES=$(sed -n \
  's/.*SummarizeSampleCount = \([0-9][0-9]*\);.*/\1/p' \
  src/ivclass/Summarize.h)
DOC_SUMM_SAMPLES=$(sed -n \
  's/.*`SummarizeSampleCount` (currently \*\*\([0-9][0-9]*\)\*\*.*/\1/p' \
  DESIGN.md)
if [ -z "$CODE_SUMM_SAMPLES" ]; then
  echo "docs_check: cannot find SummarizeSampleCount in" \
       "src/ivclass/Summarize.h" >&2
  FAIL=1
elif [ -z "$DOC_SUMM_SAMPLES" ]; then
  echo "docs_check: DESIGN.md does not document the current" \
       "SummarizeSampleCount" >&2
  FAIL=1
elif [ "$CODE_SUMM_SAMPLES" != "$DOC_SUMM_SAMPLES" ]; then
  echo "docs_check: DESIGN.md documents SummarizeSampleCount" \
       "$DOC_SUMM_SAMPLES but src/ivclass/Summarize.h says" \
       "$CODE_SUMM_SAMPLES" >&2
  FAIL=1
fi

if [ "$FAIL" = 0 ]; then
  echo "docs_check: OK ($(echo "$FLAGS" | wc -w) flags," \
       "$(echo "$PATHS" | wc -w) paths, cache salt $CODE_SALT," \
       "protocol version $CODE_PROTO, alloc ceiling $CODE_CEIL," \
       "fleet defaults $CODE_WORKERS/$CODE_CACHE_CAP," \
       "summarizer $CODE_SUMM_PERIOD/$CODE_SUMM_SAMPLES verified)"
fi
exit "$FAIL"
