#!/usr/bin/env bash
# Big-budget differential fuzzing under ASan/UBSan.
#
# Configures a separate sanitizer-instrumented build tree (so the tier-1
# build stays fast), builds bivc, runs a 10k-program campaign, and then
# cross-checks the observability layer: the merged `--batch` stats snapshot
# must be byte-identical between -j1 and -j8 once the (legitimately
# nondeterministic) span durations are normalized out.  Invoked by
# `ctest -C fuzz -R fuzz_big` or directly:
#
#   tools/run_fuzz.sh [count] [seed]
#
set -euo pipefail

COUNT="${1:-10000}"
SEED="${2:-1}"

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-fuzz-san"

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBIV_SANITIZE="address;undefined" >/dev/null
cmake --build "$BUILD" --target bivc -j "$(nproc)" >/dev/null

export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

BIVC="$BUILD/tools/bivc"

# Stats determinism probe: merge the whole corpus at two worker counts and
# diff the snapshots with "ns" durations zeroed (counters and span counts
# must agree exactly; wall-clock never can).
STATS_DIR="$(mktemp -d)"
trap 'rm -rf "$STATS_DIR"' EXIT
"$BIVC" --batch -j1 --summary --stats-json "$STATS_DIR/j1.json" \
  "$ROOT"/tests/corpus/*.biv >/dev/null
"$BIVC" --batch -j8 --summary --stats-json "$STATS_DIR/j8.json" \
  "$ROOT"/tests/corpus/*.biv >/dev/null
sed 's/"ns": [0-9]*/"ns": 0/g' "$STATS_DIR/j1.json" > "$STATS_DIR/j1.norm"
sed 's/"ns": [0-9]*/"ns": 0/g' "$STATS_DIR/j8.json" > "$STATS_DIR/j8.norm"
if ! cmp -s "$STATS_DIR/j1.norm" "$STATS_DIR/j8.norm"; then
  echo "run_fuzz.sh: -j1 vs -j8 merged stats snapshots differ:" >&2
  diff "$STATS_DIR/j1.norm" "$STATS_DIR/j8.norm" >&2 || true
  exit 1
fi
echo "fuzz: -j1 vs -j8 merged stats snapshots identical (ns normalized)"

# Cache round trip under the sanitizers: a cold run populates an on-disk
# cache, a warm run is served from it, and both must print byte-identical
# reports (this also exercises the cache file I/O paths, which the
# in-memory fuzz oracle cannot).
"$BIVC" --batch -j8 --cache "$STATS_DIR/corpus.cache" \
  "$ROOT"/tests/corpus/*.biv > "$STATS_DIR/cold.out"
"$BIVC" --batch -j8 --cache "$STATS_DIR/corpus.cache" \
  "$ROOT"/tests/corpus/*.biv > "$STATS_DIR/warm.out"
if ! cmp -s "$STATS_DIR/cold.out" "$STATS_DIR/warm.out"; then
  echo "run_fuzz.sh: cold vs warm --cache batch reports differ:" >&2
  diff "$STATS_DIR/cold.out" "$STATS_DIR/warm.out" >&2 || true
  exit 1
fi
echo "fuzz: cold vs warm --cache batch reports identical"

# Arena-lifetime probe: the unit tests for the bump arena, the interner,
# and unit teardown (tests/arena_test.cpp) run in the instrumented tree so
# ASan/UBSan see the batch-free path directly -- a use-after-batch-free or
# misaligned bump allocation dies here, not in production.
cmake --build "$BUILD" --target arena_test -j "$(nproc)" >/dev/null
"$BUILD/tests/arena_test"
echo "fuzz: arena/interner unit tests clean under ASan/UBSan"

# C-finite slice: the extension's focused suites (`ctest -L cfinite` in
# tier-1) run in the instrumented tree, and a dedicated campaign slice must
# report nonzero cfinite and partial oracle checks -- generator drift that
# stops reaching the new recurrence shapes dies here, under the sanitizers.
cmake --build "$BUILD" --target cfinite_test -j "$(nproc)" >/dev/null
"$BUILD/tests/cfinite_test" >/dev/null
echo "fuzz: c-finite suites clean under ASan/UBSan"
CF_OUT="$("$BIVC" --fuzz "$((COUNT / 10 + 1))" --seed "$((SEED + 2))")"
printf '%s\n' "$CF_OUT" | head -n 1
case "$CF_OUT" in
  *"cfinite 0,"* | *"partial 0,"*)
    echo "run_fuzz.sh: campaign slice never exercised the cfinite/partial" \
         "oracles (generator drift?)" >&2
    exit 1
    ;;
esac

# Summarizer slice: the multi-branch summarization suite runs in the
# instrumented tree, and a dedicated campaign slice with --summarize must
# report nonzero phase-periodic oracle checks -- generator drift that stops
# producing branch-cyclic shapes (or a summarizer that silently stops
# firing) dies here, under the sanitizers.
cmake --build "$BUILD" --target summarize_test -j "$(nproc)" >/dev/null
"$BUILD/tests/summarize_test" >/dev/null
echo "fuzz: summarizer suites clean under ASan/UBSan"
SUMM_OUT="$("$BIVC" --fuzz "$((COUNT / 10 + 1))" --seed "$((SEED + 3))" --summarize)"
printf '%s\n' "$SUMM_OUT" | head -n 1
case "$SUMM_OUT" in
  *"phase-periodic 0,"*)
    echo "run_fuzz.sh: --summarize campaign slice never exercised the" \
         "phase-periodic oracle (generator drift?)" >&2
    exit 1
    ;;
esac

# A slice of the budget runs with the cache oracle forced on for every
# program; the main campaign keeps the default sampled (~1/8) oracle.
"$BIVC" --fuzz "$((COUNT / 10 + 1))" --seed "$((SEED + 1))" --cache-oracle

exec "$BIVC" --fuzz "$COUNT" --seed "$SEED" --minimize
