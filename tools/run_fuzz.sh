#!/usr/bin/env bash
# Big-budget differential fuzzing under ASan/UBSan.
#
# Configures a separate sanitizer-instrumented build tree (so the tier-1
# build stays fast), builds bivc, and runs a 10k-program campaign.  Invoked
# by `ctest -C fuzz -R fuzz_big` or directly:
#
#   tools/run_fuzz.sh [count] [seed]
#
set -euo pipefail

COUNT="${1:-10000}"
SEED="${2:-1}"

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-fuzz-san"

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBIV_SANITIZE="address;undefined" >/dev/null
cmake --build "$BUILD" --target bivc -j "$(nproc)" >/dev/null

export ASAN_OPTIONS="abort_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"

exec "$BUILD/tools/bivc" --fuzz "$COUNT" --seed "$SEED" --minimize
