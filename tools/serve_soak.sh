#!/usr/bin/env bash
# ThreadSanitizer soak of the analysis daemon.
#
# Configures a separate TSan-instrumented build tree (the tier-1 build stays
# uninstrumented), runs the daemon lifecycle unit matrix under TSan, and then
# soaks the real `bivc --serve` / `bivc --connect` binaries over the
# regression corpus:
#
#  1. server_test under TSan: byte-identity, warm shared cache, bounded
#     admission, deadlines, crash isolation, SIGTERM drain -- the ISSUE's
#     acceptance matrix with the race detector watching.
#  2. CLI byte-identity: every corpus report served over the socket must
#     equal the one-shot `bivc FILE` bytes, cold and warm.
#  3. Concurrent warm blast: parallel clients hammer the shared cache, then
#     the Stats request kind must show the hits.
#  4. No-silent-drop under overload: a tiny-admission daemon answers every
#     one of a burst of concurrent clients, and its `serve.overloaded`
#     counter equals the number of clients that were told so.
#  5. SIGTERM drain: in-flight clients are answered, the daemon exits 0,
#     the socket file is gone.
#  6. Fleet byte-identity: a --workers 3 pre-forked fleet serves the same
#     corpus byte-identically under concurrent clients, drains on SIGTERM
#     with exit 0, and its bounded cache never exceeds --cache-max-bytes.
#  7. Worker crash mid-request: a fault-injected worker _exit()s between
#     reading a request and replying; the client gets a connection error
#     (never a hang), the supervisor respawns the worker, and the fleet
#     keeps serving correct bytes.
#  8. Compaction under concurrent load: clients hammer a capped cache
#     across repeated flush/compact cycles from multiple worker processes;
#     every reply stays byte-identical and the file stays under the cap.
#
# Invoked by `ctest -C stress -R serve_soak` or directly:
#
#   tools/serve_soak.sh
#
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-serve-tsan"

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBIV_SANITIZE=thread >/dev/null
cmake --build "$BUILD" --target bivc server_test -j "$(nproc)" >/dev/null

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

BIVC="$BUILD/tools/bivc"
DIR="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "serve_soak: daemon never bound $1" >&2
  return 1
}

# 1. Lifecycle matrix under the race detector.
"$BUILD/tests/server_test"
echo "serve_soak: server_test clean under TSan"

# 2 + 3. Byte-identity and the concurrent warm blast against one daemon.
SOCK="$DIR/soak.sock"
"$BIVC" --serve "$SOCK" --cache "$DIR/soak.cache" -j4 \
  2>"$DIR/serve.log" &
SERVE_PID=$!
wait_for_socket "$SOCK"

for F in "$ROOT"/tests/corpus/*.biv; do
  "$BIVC" "$F" >"$DIR/one.out" 2>/dev/null || true
  "$BIVC" --connect "$SOCK" "$F" >"$DIR/served.out" 2>/dev/null || true
  if ! cmp -s "$DIR/one.out" "$DIR/served.out"; then
    echo "serve_soak: served report differs from one-shot for $F:" >&2
    diff "$DIR/one.out" "$DIR/served.out" >&2 || true
    exit 1
  fi
done
echo "serve_soak: served reports byte-identical to one-shot (cold)"

# (explicit pid list: a bare `wait` would also wait on the daemon job)
BLAST_PIDS=""
for C in 1 2 3 4 5 6 7 8; do
  (
    for F in "$ROOT"/tests/corpus/*.biv; do
      "$BIVC" --connect "$SOCK" "$F" >/dev/null 2>&1 || true
    done
  ) &
  BLAST_PIDS="$BLAST_PIDS $!"
done
for P in $BLAST_PIDS; do
  wait "$P" || true
done
"$BIVC" --connect "$SOCK" --server-stats >"$DIR/stats.json"
HITS=$(grep -o '"cache.hit": [0-9]*' "$DIR/stats.json" |
  grep -o '[0-9]*$' || echo 0)
if [ "${HITS:-0}" -lt 8 ]; then
  echo "serve_soak: warm blast shows only ${HITS:-0} cache hits:" >&2
  cat "$DIR/stats.json" >&2
  exit 1
fi
echo "serve_soak: concurrent warm blast served from shared cache" \
  "($HITS hits)"

# 5 (first daemon). Drain with clients in flight.
CLIENT_PIDS=""
for C in 1 2 3 4; do
  "$BIVC" --connect "$SOCK" "$ROOT"/tests/corpus/linear_chain.biv \
    >/dev/null 2>"$DIR/drain.$C.err" &
  CLIENT_PIDS="$CLIENT_PIDS $!"
done
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "serve_soak: daemon exited non-zero after SIGTERM:" >&2
  cat "$DIR/serve.log" >&2
  exit 1
fi
SERVE_PID=""
for P in $CLIENT_PIDS; do
  wait "$P" || true # answered or politely refused; never hung
done
if [ -e "$SOCK" ]; then
  echo "serve_soak: daemon left its socket file behind" >&2
  exit 1
fi
echo "serve_soak: SIGTERM drained with clients in flight, socket removed"

# 4. Overload burst: every client answered, and the daemon's own counter
# agrees with how many were turned away.
SOCK2="$DIR/tiny.sock"
"$BIVC" --serve "$SOCK2" --admit 1 -j1 2>"$DIR/tiny.log" &
SERVE_PID=$!
wait_for_socket "$SOCK2"
BURST=16
PIDS=""
for C in $(seq 1 $BURST); do
  "$BIVC" --connect "$SOCK2" "$ROOT"/tests/corpus/linear_chain.biv \
    >"$DIR/burst.$C.out" 2>"$DIR/burst.$C.err" &
  PIDS="$PIDS $!"
done
ANSWERED=0
REFUSED=0
for P in $PIDS; do
  if wait "$P"; then
    ANSWERED=$((ANSWERED + 1))
  else
    REFUSED=$((REFUSED + 1))
  fi
done
if [ $((ANSWERED + REFUSED)) -ne "$BURST" ]; then
  echo "serve_soak: burst lost requests ($ANSWERED + $REFUSED != $BURST)" >&2
  exit 1
fi
CLIENT_OVERLOADED=$(grep -l "overloaded" "$DIR"/burst.*.err 2>/dev/null |
  wc -l)
"$BIVC" --connect "$SOCK2" --server-stats >"$DIR/tiny.stats.json"
SERVER_OVERLOADED=$(grep -o '"serve.overloaded": [0-9]*' \
  "$DIR/tiny.stats.json" | grep -o '[0-9]*$' || echo 0)
if [ "${SERVER_OVERLOADED:-0}" -ne "$CLIENT_OVERLOADED" ]; then
  echo "serve_soak: daemon counted ${SERVER_OVERLOADED:-0} overloads but" \
    "$CLIENT_OVERLOADED clients were told so" >&2
  exit 1
fi
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
echo "serve_soak: overload burst fully answered" \
  "($ANSWERED ok, $REFUSED refused, counter agrees)"

# 6. Fleet byte-identity + bounded cache + clean drain.
FSOCK="$DIR/fleet.sock"
FCACHE="$DIR/fleet.cache"
FCAP=16384
"$BIVC" --serve "$FSOCK" --workers 3 --cache "$FCACHE" \
  --cache-max-bytes "$FCAP" -j2 2>"$DIR/fleet.log" &
SERVE_PID=$!
wait_for_socket "$FSOCK"
FLEET_PIDS=""
for C in 1 2 3 4; do
  (
    for F in "$ROOT"/tests/corpus/*.biv; do
      "$BIVC" "$F" >"$DIR/fleet.$C.one" 2>/dev/null || true
      "$BIVC" --connect "$FSOCK" "$F" >"$DIR/fleet.$C.served" \
        2>/dev/null || true
      cmp -s "$DIR/fleet.$C.one" "$DIR/fleet.$C.served" || exit 1
    done
  ) &
  FLEET_PIDS="$FLEET_PIDS $!"
done
for P in $FLEET_PIDS; do
  if ! wait "$P"; then
    echo "serve_soak: fleet served bytes differ from one-shot" >&2
    cat "$DIR/fleet.log" >&2
    exit 1
  fi
done
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "serve_soak: fleet exited non-zero after SIGTERM:" >&2
  cat "$DIR/fleet.log" >&2
  exit 1
fi
SERVE_PID=""
if [ -e "$FSOCK" ]; then
  echo "serve_soak: fleet left its socket file behind" >&2
  exit 1
fi
FSIZE=$(stat -c %s "$FCACHE" 2>/dev/null || echo 0)
if [ "$FSIZE" -gt "$FCAP" ]; then
  echo "serve_soak: fleet cache $FSIZE bytes exceeds cap $FCAP" >&2
  exit 1
fi
echo "serve_soak: fleet byte-identical under concurrent clients," \
  "cache $FSIZE <= $FCAP, clean drain"

# 7. Worker crash mid-request: error (not a hang) at the client, respawn
# at the supervisor, correct bytes afterwards.
CSOCK="$DIR/crash.sock"
BIV_SERVE_CRASH_TOKEN="BIV_SOAK_BOOM" \
  "$BIVC" --serve "$CSOCK" --workers 2 2>"$DIR/crash.log" &
SERVE_PID=$!
wait_for_socket "$CSOCK"
printf 'func f(n) { s = 0; for L: i = 1 to n { s = s + i; } return s; }\n// BIV_SOAK_BOOM\n' \
  >"$DIR/boom.biv"
set +e
timeout 30 "$BIVC" --connect "$CSOCK" "$DIR/boom.biv" \
  >"$DIR/boom.out" 2>"$DIR/boom.err"
BOOM_RC=$?
set -e
if [ "$BOOM_RC" -eq 0 ] || [ "$BOOM_RC" -eq 124 ]; then
  echo "serve_soak: crash-injected request must fail fast, got rc=$BOOM_RC" >&2
  cat "$DIR/boom.err" >&2
  exit 1
fi
# The supervisor noticed the death and respawned.
for _ in $(seq 1 100); do
  grep -q "respawning" "$DIR/crash.log" && break
  sleep 0.1
done
grep -q "respawning" "$DIR/crash.log" || {
  echo "serve_soak: supervisor never logged a respawn" >&2
  cat "$DIR/crash.log" >&2
  exit 1
}
# The fleet keeps serving, correctly, with a full worker complement.
F="$ROOT"/tests/corpus/linear_chain.biv
"$BIVC" "$F" >"$DIR/after.one"
for _ in 1 2 3 4; do
  "$BIVC" --connect "$CSOCK" "$F" >"$DIR/after.served"
  cmp "$DIR/after.one" "$DIR/after.served" || {
    echo "serve_soak: post-crash served bytes differ" >&2
    exit 1
  }
done
kill -TERM "$SERVE_PID"
# Exit 1 is the contract here: a worker died, the supervisor aggregates.
wait "$SERVE_PID" && {
  echo "serve_soak: supervisor must exit non-zero after a worker death" >&2
  exit 1
}
SERVE_PID=""
echo "serve_soak: worker crash mid-request -> client error, respawn," \
  "correct bytes after"

# 8. Compaction under concurrent load: many distinct programs through a
# tightly capped cache, repeatedly, from several worker processes.
KSOCK="$DIR/compact.sock"
KCACHE="$DIR/compact.cache"
KCAP=8192
"$BIVC" --serve "$KSOCK" --workers 2 --cache "$KCACHE" \
  --cache-max-bytes "$KCAP" 2>"$DIR/compact.log" &
SERVE_PID=$!
wait_for_socket "$KSOCK"
mkdir -p "$DIR/gen"
for I in $(seq 1 40); do
  printf 'func f%d(n) { s = %d; for L: i = 1 to n { s = s + i * %d; } return s; }\n' \
    "$I" "$I" "$I" >"$DIR/gen/g$I.biv"
done
for PASS in 1 2 3; do
  KPIDS=""
  for C in 1 2; do
    (
      for G in "$DIR"/gen/*.biv; do
        "$BIVC" "$G" >"$DIR/k.$C.one" 2>/dev/null || exit 1
        "$BIVC" --connect "$KSOCK" "$G" >"$DIR/k.$C.served" \
          2>/dev/null || exit 1
        cmp -s "$DIR/k.$C.one" "$DIR/k.$C.served" || exit 1
      done
    ) &
    KPIDS="$KPIDS $!"
  done
  for P in $KPIDS; do
    if ! wait "$P"; then
      echo "serve_soak: compaction pass $PASS served wrong bytes" >&2
      cat "$DIR/compact.log" >&2
      exit 1
    fi
  done
done
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || {
  echo "serve_soak: compaction fleet exited non-zero:" >&2
  cat "$DIR/compact.log" >&2
  exit 1
}
SERVE_PID=""
KSIZE=$(stat -c %s "$KCACHE" 2>/dev/null || echo 0)
if [ "$KSIZE" -gt "$KCAP" ]; then
  echo "serve_soak: compacted cache $KSIZE bytes exceeds cap $KCAP" >&2
  exit 1
fi
echo "serve_soak: compaction under concurrent load held the cap" \
  "($KSIZE <= $KCAP, 3 passes x 40 programs x 2 clients)"

echo "serve_soak: OK"
