#!/usr/bin/env bash
# ThreadSanitizer soak of the analysis daemon.
#
# Configures a separate TSan-instrumented build tree (the tier-1 build stays
# uninstrumented), runs the daemon lifecycle unit matrix under TSan, and then
# soaks the real `bivc --serve` / `bivc --connect` binaries over the
# regression corpus:
#
#  1. server_test under TSan: byte-identity, warm shared cache, bounded
#     admission, deadlines, crash isolation, SIGTERM drain -- the ISSUE's
#     acceptance matrix with the race detector watching.
#  2. CLI byte-identity: every corpus report served over the socket must
#     equal the one-shot `bivc FILE` bytes, cold and warm.
#  3. Concurrent warm blast: parallel clients hammer the shared cache, then
#     the Stats request kind must show the hits.
#  4. No-silent-drop under overload: a tiny-admission daemon answers every
#     one of a burst of concurrent clients, and its `serve.overloaded`
#     counter equals the number of clients that were told so.
#  5. SIGTERM drain: in-flight clients are answered, the daemon exits 0,
#     the socket file is gone.
#
# Invoked by `ctest -C stress -R serve_soak` or directly:
#
#   tools/serve_soak.sh
#
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-serve-tsan"

cmake -S "$ROOT" -B "$BUILD" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DBIV_SANITIZE=thread >/dev/null
cmake --build "$BUILD" --target bivc server_test -j "$(nproc)" >/dev/null

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"

BIVC="$BUILD/tools/bivc"
DIR="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

wait_for_socket() {
  for _ in $(seq 1 100); do
    [ -S "$1" ] && return 0
    sleep 0.1
  done
  echo "serve_soak: daemon never bound $1" >&2
  return 1
}

# 1. Lifecycle matrix under the race detector.
"$BUILD/tests/server_test"
echo "serve_soak: server_test clean under TSan"

# 2 + 3. Byte-identity and the concurrent warm blast against one daemon.
SOCK="$DIR/soak.sock"
"$BIVC" --serve "$SOCK" --cache "$DIR/soak.cache" -j4 \
  2>"$DIR/serve.log" &
SERVE_PID=$!
wait_for_socket "$SOCK"

for F in "$ROOT"/tests/corpus/*.biv; do
  "$BIVC" "$F" >"$DIR/one.out" 2>/dev/null || true
  "$BIVC" --connect "$SOCK" "$F" >"$DIR/served.out" 2>/dev/null || true
  if ! cmp -s "$DIR/one.out" "$DIR/served.out"; then
    echo "serve_soak: served report differs from one-shot for $F:" >&2
    diff "$DIR/one.out" "$DIR/served.out" >&2 || true
    exit 1
  fi
done
echo "serve_soak: served reports byte-identical to one-shot (cold)"

# (explicit pid list: a bare `wait` would also wait on the daemon job)
BLAST_PIDS=""
for C in 1 2 3 4 5 6 7 8; do
  (
    for F in "$ROOT"/tests/corpus/*.biv; do
      "$BIVC" --connect "$SOCK" "$F" >/dev/null 2>&1 || true
    done
  ) &
  BLAST_PIDS="$BLAST_PIDS $!"
done
for P in $BLAST_PIDS; do
  wait "$P" || true
done
"$BIVC" --connect "$SOCK" --server-stats >"$DIR/stats.json"
HITS=$(grep -o '"cache.hit": [0-9]*' "$DIR/stats.json" |
  grep -o '[0-9]*$' || echo 0)
if [ "${HITS:-0}" -lt 8 ]; then
  echo "serve_soak: warm blast shows only ${HITS:-0} cache hits:" >&2
  cat "$DIR/stats.json" >&2
  exit 1
fi
echo "serve_soak: concurrent warm blast served from shared cache" \
  "($HITS hits)"

# 5 (first daemon). Drain with clients in flight.
CLIENT_PIDS=""
for C in 1 2 3 4; do
  "$BIVC" --connect "$SOCK" "$ROOT"/tests/corpus/linear_chain.biv \
    >/dev/null 2>"$DIR/drain.$C.err" &
  CLIENT_PIDS="$CLIENT_PIDS $!"
done
kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "serve_soak: daemon exited non-zero after SIGTERM:" >&2
  cat "$DIR/serve.log" >&2
  exit 1
fi
SERVE_PID=""
for P in $CLIENT_PIDS; do
  wait "$P" || true # answered or politely refused; never hung
done
if [ -e "$SOCK" ]; then
  echo "serve_soak: daemon left its socket file behind" >&2
  exit 1
fi
echo "serve_soak: SIGTERM drained with clients in flight, socket removed"

# 4. Overload burst: every client answered, and the daemon's own counter
# agrees with how many were turned away.
SOCK2="$DIR/tiny.sock"
"$BIVC" --serve "$SOCK2" --admit 1 -j1 2>"$DIR/tiny.log" &
SERVE_PID=$!
wait_for_socket "$SOCK2"
BURST=16
PIDS=""
for C in $(seq 1 $BURST); do
  "$BIVC" --connect "$SOCK2" "$ROOT"/tests/corpus/linear_chain.biv \
    >"$DIR/burst.$C.out" 2>"$DIR/burst.$C.err" &
  PIDS="$PIDS $!"
done
ANSWERED=0
REFUSED=0
for P in $PIDS; do
  if wait "$P"; then
    ANSWERED=$((ANSWERED + 1))
  else
    REFUSED=$((REFUSED + 1))
  fi
done
if [ $((ANSWERED + REFUSED)) -ne "$BURST" ]; then
  echo "serve_soak: burst lost requests ($ANSWERED + $REFUSED != $BURST)" >&2
  exit 1
fi
CLIENT_OVERLOADED=$(grep -l "overloaded" "$DIR"/burst.*.err 2>/dev/null |
  wc -l)
"$BIVC" --connect "$SOCK2" --server-stats >"$DIR/tiny.stats.json"
SERVER_OVERLOADED=$(grep -o '"serve.overloaded": [0-9]*' \
  "$DIR/tiny.stats.json" | grep -o '[0-9]*$' || echo 0)
if [ "${SERVER_OVERLOADED:-0}" -ne "$CLIENT_OVERLOADED" ]; then
  echo "serve_soak: daemon counted ${SERVER_OVERLOADED:-0} overloads but" \
    "$CLIENT_OVERLOADED clients were told so" >&2
  exit 1
fi
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=""
echo "serve_soak: overload burst fully answered" \
  "($ANSWERED ok, $REFUSED refused, counter agrees)"

echo "serve_soak: OK"
