//===- tests/stats_test.cpp - Observability layer units -----------------------===//
//
// Covers the support/Stats registry end to end: name interning, thread-local
// frames and delta capture, scoped-span nesting, cross-thread merge
// associativity, the schema-v1 JSON golden rendering, and the pipeline-level
// guarantee that the per-kind counters agree with the Report's own counts.
//
//===----------------------------------------------------------------------===//

#include "driver/BatchAnalyzer.h"
#include "ivclass/Pipeline.h"
#include "ivclass/Report.h"
#include "support/Stats.h"
#include <gtest/gtest.h>
#include <thread>

using namespace biv;

namespace {

// The thread-local frame is process-wide and grows monotonically, so every
// test works on before/after deltas rather than absolute cell values.
stats::Frame deltaOf(const stats::Frame &Before) {
  return stats::captureFrame() - Before;
}

//===----------------------------------------------------------------------===//
// Registration
//===----------------------------------------------------------------------===//

TEST(StatsTest, RegistrationDeduplicatesBySpelling) {
  stats::Counter A("test.dedup.counter");
  stats::Counter B("test.dedup.counter");
  stats::Counter C("test.dedup.other");
  EXPECT_EQ(A.index(), B.index());
  EXPECT_NE(A.index(), C.index());

  stats::Timer TA("test.dedup.timer");
  stats::Timer TB("test.dedup.timer");
  EXPECT_EQ(TA.index(), TB.index());
}

TEST(StatsTest, BumpIsVisibleInDelta) {
  stats::Counter C("test.bump.counter");
  stats::Frame Before = stats::captureFrame();
  C.bump();
  C.bump(41);
  stats::Frame D = deltaOf(Before);
  EXPECT_EQ(D.Counters[C.index()], 42u);

  stats::StatsSnapshot S = stats::snapshotFrame(D);
  EXPECT_EQ(S.Counters.at("test.bump.counter"), 42u);
}

TEST(StatsTest, SnapshotDropsZeroCells) {
  stats::Counter C("test.zero.counter");
  (void)C;
  stats::Frame Before = stats::captureFrame();
  stats::StatsSnapshot S = stats::snapshotFrame(deltaOf(Before));
  EXPECT_EQ(S.Counters.count("test.zero.counter"), 0u);
}

//===----------------------------------------------------------------------===//
// Scoped spans
//===----------------------------------------------------------------------===//

TEST(StatsTest, ScopedSpansNest) {
  stats::Timer Outer("test.span.outer");
  stats::Timer Inner("test.span.inner");
  stats::Frame Before = stats::captureFrame();
  {
    stats::ScopedSpan SO(Outer);
    {
      stats::ScopedSpan SI(Inner);
    }
    {
      stats::ScopedSpan SI(Inner);
    }
  }
  stats::Frame D = deltaOf(Before);
  EXPECT_EQ(D.Timers[Outer.index()].Spans, 1u);
  EXPECT_EQ(D.Timers[Inner.index()].Spans, 2u);
  // Each level accrues its own inclusive time, so the outer span's duration
  // must cover both inner spans.
  EXPECT_GE(D.Timers[Outer.index()].Ns, D.Timers[Inner.index()].Ns);
}

TEST(StatsTest, ReentrantSpansOnSameTimerAccumulate) {
  stats::Timer T("test.span.reentrant");
  stats::Frame Before = stats::captureFrame();
  {
    stats::ScopedSpan A(T);
    stats::ScopedSpan B(T); // same timer, nested: both spans count
  }
  EXPECT_EQ(deltaOf(Before).Timers[T.index()].Spans, 2u);
}

//===----------------------------------------------------------------------===//
// Cross-thread merge
//===----------------------------------------------------------------------===//

TEST(StatsTest, CrossThreadMergeIsOrderIndependent) {
  stats::Counter C("test.merge.counter");
  stats::Timer T("test.merge.timer");

  // Each worker starts with a fresh (zero) thread-local frame, so its final
  // frame is its own delta.
  constexpr unsigned N = 4;
  stats::Frame Deltas[N];
  std::vector<std::thread> Workers;
  for (unsigned I = 0; I < N; ++I)
    Workers.emplace_back([&, I] {
      for (unsigned K = 0; K <= I; ++K) {
        stats::ScopedSpan Span(T);
        C.bump(I + 1);
      }
      Deltas[I] = stats::captureFrame();
    });
  for (std::thread &W : Workers)
    W.join();

  stats::Frame Fwd, Rev;
  for (unsigned I = 0; I < N; ++I)
    Fwd += Deltas[I];
  for (unsigned I = N; I-- > 0;)
    Rev += Deltas[I];

  // 1*1 + 2*2 + 3*3 + 4*4 bumps of size I+1 each.
  EXPECT_EQ(Fwd.Counters[C.index()], 30u);
  EXPECT_EQ(Fwd.Counters[C.index()], Rev.Counters[C.index()]);
  EXPECT_EQ(Fwd.Timers[T.index()].Spans, 10u);
  EXPECT_EQ(Fwd.Timers[T.index()].Ns, Rev.Timers[T.index()].Ns);
  EXPECT_EQ(stats::snapshotFrame(Fwd).fingerprint(),
            stats::snapshotFrame(Rev).fingerprint());
}

TEST(StatsTest, SnapshotMergeMatchesFrameMerge) {
  stats::Counter C("test.merge2.counter");
  stats::Frame Before = stats::captureFrame();
  C.bump(5);
  stats::Frame D1 = deltaOf(Before);
  Before = stats::captureFrame();
  C.bump(7);
  stats::Frame D2 = deltaOf(Before);

  stats::StatsSnapshot Sum = stats::snapshotFrame(D1);
  Sum.merge(stats::snapshotFrame(D2));
  stats::Frame F = D1;
  F += D2;
  EXPECT_EQ(Sum.fingerprint(), stats::snapshotFrame(F).fingerprint());
  EXPECT_EQ(Sum.Counters.at("test.merge2.counter"), 12u);
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

TEST(StatsTest, JsonSchemaGolden) {
  // Built by hand so the golden string is exact: keys sorted, "v": 1 first,
  // timers carry spans and ns.
  stats::StatsSnapshot S;
  S.Counters["b.two"] = 2;
  S.Counters["a.one"] = 1;
  S.Timers["t.z"] = {3, 4500};
  S.Timers["t.a"] = {1, 10};
  EXPECT_EQ(S.renderJson(),
            "{\n"
            "  \"v\": 1,\n"
            "  \"counters\": {\n"
            "    \"a.one\": 1,\n"
            "    \"b.two\": 2\n"
            "  },\n"
            "  \"timers\": {\n"
            "    \"t.a\": {\"spans\": 1, \"ns\": 10},\n"
            "    \"t.z\": {\"spans\": 3, \"ns\": 4500}\n"
            "  }\n"
            "}");
}

TEST(StatsTest, JsonEmptySnapshot) {
  stats::StatsSnapshot S;
  EXPECT_EQ(S.renderJson(), "{\n"
                            "  \"v\": 1,\n"
                            "  \"counters\": {},\n"
                            "  \"timers\": {}\n"
                            "}");
}

TEST(StatsTest, JsonIndentPrefixesEveryLine) {
  stats::StatsSnapshot S;
  S.Counters["x"] = 1;
  std::string J = S.renderJson("  ");
  EXPECT_EQ(J.rfind("  {", 0), 0u);
  EXPECT_NE(J.find("\n      \"x\": 1"), std::string::npos);
  EXPECT_EQ(J.back(), '}');
}

TEST(StatsTest, FingerprintExcludesDurations) {
  stats::StatsSnapshot A, B;
  A.Counters["c"] = 3;
  B.Counters["c"] = 3;
  A.Timers["t"] = {2, 111};
  B.Timers["t"] = {2, 999999}; // same spans, different ns
  EXPECT_EQ(A.fingerprint(), B.fingerprint());
  B.Timers["t"].Spans = 3;
  EXPECT_NE(A.fingerprint(), B.fingerprint());
}

//===----------------------------------------------------------------------===//
// Histograms (the serving path's latency/queue-depth cells)
//===----------------------------------------------------------------------===//

TEST(StatsTest, HistogramObserveBucketsByLog2) {
  stats::Histogram H("test.hist.obs");
  stats::Frame Before = stats::captureFrame();
  H.observe(0);    // bucket 0: the value 0
  H.observe(1);    // bucket 1: [1, 1]
  H.observe(2);    // bucket 2: [2, 3]
  H.observe(3);    // bucket 2
  H.observe(1000); // bucket 10: [512, 1023]
  stats::StatsSnapshot S = stats::snapshotFrame(deltaOf(Before));
  const stats::HistValue &V = S.Hists.at("test.hist.obs");
  EXPECT_EQ(V.Count, 5u);
  EXPECT_EQ(V.Sum, 1006u);
  EXPECT_EQ(V.Buckets[0], 1u);
  EXPECT_EQ(V.Buckets[1], 1u);
  EXPECT_EQ(V.Buckets[2], 2u);
  EXPECT_EQ(V.Buckets[10], 1u);

  EXPECT_EQ(V.quantileUpperBound(0.5), 1u);
  EXPECT_EQ(V.quantileUpperBound(0.99), 3u);
  EXPECT_EQ(V.quantileUpperBound(1.0), 1023u);
}

TEST(StatsTest, HistogramWithoutObservationsStaysOutOfSnapshot) {
  stats::Histogram H("test.hist.silent");
  (void)H;
  stats::Frame Before = stats::captureFrame();
  stats::StatsSnapshot S = stats::snapshotFrame(deltaOf(Before));
  EXPECT_EQ(S.Hists.count("test.hist.silent"), 0u);
}

TEST(StatsTest, HistogramJsonGoldenAndSchemaPreserved) {
  // Runs that record histogram data get a third "hists" key with trailing
  // zero buckets trimmed; runs that never observe one keep the original
  // two-key schema byte-for-byte (JsonEmptySnapshot covers that side).
  stats::StatsSnapshot S;
  S.Counters["c"] = 1;
  stats::HistValue H;
  H.Count = 3;
  H.Sum = 7;
  H.Buckets = {1, 2, 0, 0};
  S.Hists["h.lat"] = H;
  EXPECT_EQ(S.renderJson(),
            "{\n"
            "  \"v\": 1,\n"
            "  \"counters\": {\n"
            "    \"c\": 1\n"
            "  },\n"
            "  \"timers\": {},\n"
            "  \"hists\": {\n"
            "    \"h.lat\": {\"count\": 3, \"sum\": 7, \"buckets\": [1, 2]}\n"
            "  }\n"
            "}");
}

TEST(StatsTest, HistogramMergeAndFingerprint) {
  stats::StatsSnapshot A, B;
  stats::HistValue H1;
  H1.Count = 2;
  H1.Sum = 10;
  H1.Buckets = {1, 1};
  stats::HistValue H2;
  H2.Count = 1;
  H2.Sum = 100;
  H2.Buckets = {0, 0, 0, 1};
  A.Hists["h"] = H1;
  B.Hists["h"] = H2;
  A.merge(B);
  EXPECT_EQ(A.Hists["h"].Count, 3u);
  EXPECT_EQ(A.Hists["h"].Sum, 110u);
  ASSERT_GE(A.Hists["h"].Buckets.size(), 4u);
  EXPECT_EQ(A.Hists["h"].Buckets[0], 1u);
  EXPECT_EQ(A.Hists["h"].Buckets[3], 1u);

  // Durations and bucket shapes are wall-clock artifacts; only the
  // observation count participates in the determinism fingerprint.
  stats::StatsSnapshot X, Y;
  stats::HistValue HX = H1, HY = H1;
  HY.Sum = 999;
  HY.Buckets = {2};
  X.Hists["h"] = HX;
  Y.Hists["h"] = HY;
  EXPECT_EQ(X.fingerprint(), Y.fingerprint());
  HY.Count = 5;
  Y.Hists["h"] = HY;
  EXPECT_NE(X.fingerprint(), Y.fingerprint());
}

//===----------------------------------------------------------------------===//
// Pipeline-level: counters agree with the Report
//===----------------------------------------------------------------------===//

const char *LinearChain = R"(
func linear_chain(n) {
  j = n;
  s = 0;
  for L7: x = 1 to 12 {
    i = j + 3;
    j = i + 2;
    s = s + j;
  }
  return s;
}
)";

const char *FlipFlop = R"(
func flipflop(n) {
  a = 1;
  b = 2;
  t = 0;
  s = 0;
  for L: i = 1 to n {
    t = a;
    a = b;
    b = t;
    s = s + a;
  }
  return s;
}
)";

/// Runs the pipeline on \p Source and checks that the ivclass.kind.*
/// counter deltas equal the Report's own KindCounts.
void expectKindCountersMatchReport(const char *Source) {
  stats::Counter Linear("ivclass.kind.linear");
  stats::Counter Polynomial("ivclass.kind.polynomial");
  stats::Counter Geometric("ivclass.kind.geometric");
  stats::Counter WrapAround("ivclass.kind.wrap_around");
  stats::Counter Periodic("ivclass.kind.periodic");
  stats::Counter Monotonic("ivclass.kind.monotonic");
  stats::Counter Invariant("ivclass.kind.invariant");
  stats::Counter Unknown("ivclass.kind.unknown");

  stats::Frame Before = stats::captureFrame();
  std::vector<std::string> Errors;
  std::optional<ivclass::AnalyzedProgram> P =
      ivclass::analyzeSource(Source, Errors);
  ASSERT_TRUE(P) << (Errors.empty() ? "" : Errors.front());
  ivclass::KindCounts K = ivclass::countHeaderPhiKinds(*P->IA);
  stats::Frame D = deltaOf(Before);

  EXPECT_EQ(D.Counters[Linear.index()], K.Linear);
  EXPECT_EQ(D.Counters[Polynomial.index()], K.Polynomial);
  EXPECT_EQ(D.Counters[Geometric.index()], K.Geometric);
  EXPECT_EQ(D.Counters[WrapAround.index()], K.WrapAround);
  EXPECT_EQ(D.Counters[Periodic.index()], K.Periodic);
  EXPECT_EQ(D.Counters[Monotonic.index()], K.Monotonic);
  EXPECT_EQ(D.Counters[Invariant.index()], K.Invariant);
  EXPECT_EQ(D.Counters[Unknown.index()], K.Unknown);
  EXPECT_GT(K.classified() + K.Unknown, 0u) << "program has no header phis";
}

TEST(StatsPipelineTest, KindCountersMatchReportLinearChain) {
  expectKindCountersMatchReport(LinearChain);
}

TEST(StatsPipelineTest, KindCountersMatchReportFlipFlop) {
  expectKindCountersMatchReport(FlipFlop);
}

TEST(StatsPipelineTest, PhaseTimersFireOncePerStage) {
  stats::Timer Parse("phase.parse");
  stats::Timer SSA("phase.ssa");
  stats::Timer Classify("phase.classify");

  stats::Frame Before = stats::captureFrame();
  std::vector<std::string> Errors;
  ASSERT_TRUE(ivclass::analyzeSource(LinearChain, Errors));
  stats::Frame D = deltaOf(Before);

  EXPECT_EQ(D.Timers[Parse.index()].Spans, 1u);
  EXPECT_EQ(D.Timers[SSA.index()].Spans, 1u);
  EXPECT_EQ(D.Timers[Classify.index()].Spans, 1u);
  EXPECT_GT(D.Timers[Classify.index()].Ns, 0u);
}

//===----------------------------------------------------------------------===//
// Batch: worker count cannot change the merged snapshot
//===----------------------------------------------------------------------===//

TEST(StatsBatchTest, MergedSnapshotIdenticalAcrossThreadCounts) {
  std::vector<driver::SourceInput> Sources = {
      {"linear_chain.biv", LinearChain},
      {"flipflop.biv", FlipFlop},
      {"bad.biv", "func broken( {"}, // failed units still merge diagnostics
  };
  driver::BatchOptions BO;
  BO.Jobs = 1;
  driver::BatchResult R1 = driver::analyzeBatch(Sources, BO);
  BO.Jobs = 8;
  driver::BatchResult R8 = driver::analyzeBatch(Sources, BO);

  ASSERT_EQ(R1.Units.size(), R8.Units.size());
  EXPECT_EQ(stats::snapshotFrame(R1.MergedStats).fingerprint(),
            stats::snapshotFrame(R8.MergedStats).fingerprint());
  for (size_t I = 0; I < R1.Units.size(); ++I)
    EXPECT_EQ(stats::snapshotFrame(R1.Units[I].StatsDelta).fingerprint(),
              stats::snapshotFrame(R8.Units[I].StatsDelta).fingerprint())
        << "unit " << R1.Units[I].Name;

  // The merged kind counters must also equal the batch's own aggregate.
  stats::Counter Linear("ivclass.kind.linear");
  EXPECT_EQ(R1.MergedStats.Counters[Linear.index()], R1.Kinds.Linear);
}

} // namespace
