//===- tests/closedform_test.cpp - ClosedForm and recurrence solver units -----===//

#include "ivclass/ClosedForm.h"
#include "ivclass/RecurrenceSolver.h"
#include <gtest/gtest.h>

using namespace biv;
using namespace biv::ivclass;

namespace {
int SymN; // opaque symbol
} // namespace

//===----------------------------------------------------------------------===//
// ClosedForm construction and queries
//===----------------------------------------------------------------------===//

TEST(ClosedFormTest, ConstantAndCounter) {
  ClosedForm C = ClosedForm::constant(Affine(7));
  EXPECT_TRUE(C.isInvariant());
  EXPECT_EQ(C.evaluateAt(5), Affine(7));

  ClosedForm H = ClosedForm::counter();
  EXPECT_TRUE(H.isLinear());
  EXPECT_FALSE(H.isInvariant());
  EXPECT_EQ(H.evaluateAt(9), Affine(9));
}

TEST(ClosedFormTest, LinearEvaluate) {
  ClosedForm F = ClosedForm::linear(Affine(3), Affine(2)); // 3 + 2h
  EXPECT_EQ(F.evaluateAt(0), Affine(3));
  EXPECT_EQ(F.evaluateAt(10), Affine(23));
  EXPECT_EQ(F.initialValue(), Affine(3));
  EXPECT_EQ(F.linearStep(), Affine(2));
}

TEST(ClosedFormTest, NormalizationDropsZeros) {
  ClosedForm F = ClosedForm::linear(Affine(3), Affine(0));
  EXPECT_TRUE(F.isInvariant());
  EXPECT_EQ(F.degree(), 0u);
  // Base-1 exponentials fold into the constant.
  std::map<int64_t, Affine> Geo;
  Geo[1] = Affine(5);
  ClosedForm G = ClosedForm::make({Affine(2)}, Geo);
  EXPECT_TRUE(G.isInvariant());
  EXPECT_EQ(G.initialValue(), Affine(7));
}

TEST(ClosedFormTest, ArithmeticExact) {
  ClosedForm A = ClosedForm::linear(Affine(1), Affine(2)); // 1 + 2h
  ClosedForm B = ClosedForm::linear(Affine(4), Affine(-2)); // 4 - 2h
  ClosedForm Sum = A + B;
  EXPECT_TRUE(Sum.isInvariant());
  EXPECT_EQ(Sum.initialValue(), Affine(5));
  ClosedForm Diff = A - B;
  EXPECT_EQ(Diff.coeff(1), Affine(4));
  ClosedForm Scaled = A * Rational(3);
  EXPECT_EQ(Scaled.coeff(0), Affine(3));
  EXPECT_EQ(Scaled.coeff(1), Affine(6));
}

TEST(ClosedFormTest, MulPolyPoly) {
  // (1 + h)^2 = 1 + 2h + h^2.
  ClosedForm F = ClosedForm::linear(Affine(1), Affine(1));
  auto P = F.mulChecked(F);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->degree(), 2u);
  EXPECT_EQ(P->coeff(0), Affine(1));
  EXPECT_EQ(P->coeff(1), Affine(2));
  EXPECT_EQ(P->coeff(2), Affine(1));
}

TEST(ClosedFormTest, MulSymbolicFailsWhenQuadratic) {
  // (n*h) * (n*h): coefficient n*n is not affine.
  ClosedForm F = ClosedForm::linear(Affine(0), Affine::symbol(&SymN));
  EXPECT_FALSE(F.mulChecked(F).has_value());
  // But scaling by a constant form works.
  ClosedForm Two = ClosedForm::constant(Affine(2));
  auto P = F.mulChecked(Two);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->coeff(1), Affine::symbol(&SymN) * Rational(2));
}

TEST(ClosedFormTest, MulExponentials) {
  // (2^h) * (3^h) = 6^h; (2^h) * (2^h) = 4^h.
  ClosedForm A = ClosedForm::make({}, {{2, Affine(1)}});
  ClosedForm B = ClosedForm::make({}, {{3, Affine(1)}});
  auto P = A.mulChecked(B);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->geoTerms().count(6), 1u);
  auto Q = A.mulChecked(A);
  ASSERT_TRUE(Q.has_value());
  EXPECT_EQ(Q->geoTerms().count(4), 1u);
}

TEST(ClosedFormTest, MulBaseProductOne) {
  // (-1)^h * (-1)^h == 1 (a constant).
  ClosedForm A = ClosedForm::make({}, {{-1, Affine(1)}});
  auto P = A.mulChecked(A);
  ASSERT_TRUE(P.has_value());
  EXPECT_TRUE(P->isInvariant());
  EXPECT_EQ(P->initialValue(), Affine(1));
}

TEST(ClosedFormTest, MulPolyTimesExp) {
  // h * 2^h lands in the coefficient polynomial of 2^h (the c-finite
  // extension; it used to be outside the representation).
  ClosedForm H = ClosedForm::counter();
  ClosedForm E = ClosedForm::make({}, {{2, Affine(1)}});
  auto X = H.mulChecked(E);
  ASSERT_TRUE(X.has_value());
  EXPECT_TRUE(X->hasPolyExponential());
  EXPECT_EQ(X->geoCoeff(2, 1), Affine(1));
  for (int64_t I = 0; I <= 6; ++I)
    EXPECT_EQ(X->evaluateAt(I), Affine(I * (int64_t(1) << I)));
  // Constant * 2^h stays a constant coefficient.
  ClosedForm C = ClosedForm::constant(Affine(5));
  auto P = C.mulChecked(E);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->geoCoeff(2), Affine(5));
}

TEST(ClosedFormTest, ShiftPolynomial) {
  // F = h^2; F.shifted(1)(h) = (h+1)^2.
  ClosedForm F = ClosedForm::make({Affine(0), Affine(0), Affine(1)});
  auto S = F.shifted(1);
  ASSERT_TRUE(S.has_value());
  for (int64_t H = 0; H <= 5; ++H)
    EXPECT_EQ(S->evaluateAt(H), F.evaluateAt(H + 1));
  auto Back = S->shifted(-1);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, F);
}

TEST(ClosedFormTest, ShiftExponential) {
  // F = 3 * 2^h; F.shifted(-1) = 3/2 * 2^h.
  ClosedForm F = ClosedForm::make({}, {{2, Affine(3)}});
  auto S = F.shifted(-1);
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->geoCoeff(2), Affine(Rational(3, 2)));
  for (int64_t H = 1; H <= 5; ++H)
    EXPECT_EQ(S->evaluateAt(H), F.evaluateAt(H - 1));
}

TEST(ClosedFormTest, EvaluateAtAffineSymbolic) {
  // (init + 2h) at h = n  ->  init + 2n.
  ClosedForm F = ClosedForm::linear(Affine(5), Affine(2));
  auto V = F.evaluateAtAffine(Affine::symbol(&SymN));
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(V->coefficientOf(&SymN), Rational(2));
  EXPECT_EQ(V->constantPart(), Rational(5));
  // Symbolic step times symbolic count fails (not affine).
  ClosedForm G = ClosedForm::linear(Affine(0), Affine::symbol(&SymN));
  EXPECT_FALSE(G.evaluateAtAffine(Affine::symbol(&SymN)).has_value());
  // Non-linear forms fail.
  ClosedForm H2 = ClosedForm::make({Affine(0), Affine(0), Affine(1)});
  EXPECT_FALSE(H2.evaluateAtAffine(Affine(3)).has_value());
}

TEST(ClosedFormTest, MonotonicityPredicates) {
  EXPECT_TRUE(ClosedForm::linear(Affine(0), Affine(2))
                  .provablyIncreasing());
  EXPECT_TRUE(ClosedForm::constant(Affine(5)).provablyNonDecreasing());
  EXPECT_FALSE(ClosedForm::constant(Affine(5)).provablyIncreasing());
  EXPECT_FALSE(
      ClosedForm::linear(Affine(0), Affine(-1)).provablyNonDecreasing());
  // 2^h increases; (-2)^h does not (alternates).
  EXPECT_TRUE(ClosedForm::make({}, {{2, Affine(1)}}).provablyIncreasing());
  EXPECT_FALSE(
      ClosedForm::make({}, {{-2, Affine(1)}}).provablyNonDecreasing());
  // Symbolic coefficients: never provable.
  EXPECT_FALSE(ClosedForm::linear(Affine(0), Affine::symbol(&SymN))
                   .provablyNonDecreasing());
}

TEST(ClosedFormTest, Printing) {
  ClosedForm F = ClosedForm::make({Affine(3), Affine(Rational(1, 2))},
                                  {{2, Affine(4)}});
  EXPECT_EQ(F.str(), "3 + 1/2*h + 4*2^h");
  ClosedForm Neg = ClosedForm::make({}, {{-1, Affine(Rational(-1, 2))}});
  EXPECT_EQ(Neg.str(), "-1/2*(-1)^h");
  EXPECT_EQ(ClosedForm().str(), "0");
}

//===----------------------------------------------------------------------===//
// Recurrence solver
//===----------------------------------------------------------------------===//

namespace {

/// Checks the solved form against direct iteration of the recurrence.
void checkSolution(const Rational &A, const ClosedForm &B, int64_t Init,
                   unsigned Iters = 8) {
  auto Form = solveLinearRecurrence(A, B, Affine(Init));
  ASSERT_TRUE(Form.has_value()) << "recurrence should be solvable";
  Rational X(Init);
  for (unsigned H = 0; H < Iters; ++H) {
    Affine V = Form->evaluateAt(H);
    ASSERT_TRUE(V.getConstant().has_value());
    EXPECT_EQ(*V.getConstant(), X) << "at h=" << H;
    ASSERT_TRUE(B.evaluateAt(H).getConstant().has_value());
    X = X * A + *B.evaluateAt(H).getConstant();
  }
}

} // namespace

TEST(SolverTest, LinearFastPath) {
  auto F = solveLinearRecurrence(Rational(1),
                                 ClosedForm::constant(Affine(3)), Affine(7));
  ASSERT_TRUE(F.has_value());
  EXPECT_TRUE(F->isLinear());
  EXPECT_EQ(F->coeff(0), Affine(7));
  EXPECT_EQ(F->coeff(1), Affine(3));
}

TEST(SolverTest, PolynomialOrders) {
  // X' = X + h: quadratic.
  checkSolution(Rational(1), ClosedForm::counter(), 0);
  // X' = X + h^2: cubic.
  checkSolution(Rational(1),
                ClosedForm::make({Affine(0), Affine(0), Affine(1)}), 5);
  // X' = X + (2 + 3h + h^3): quartic.
  checkSolution(
      Rational(1),
      ClosedForm::make({Affine(2), Affine(3), Affine(0), Affine(1)}), 1);
}

TEST(SolverTest, GeometricBases) {
  checkSolution(Rational(2), ClosedForm::constant(Affine(1)), 1);  // 2^h ...
  checkSolution(Rational(3), ClosedForm::constant(Affine(0)), 4);  // 4*3^h
  checkSolution(Rational(-1), ClosedForm::constant(Affine(3)), 1); // flipflop
  checkSolution(Rational(-2), ClosedForm::constant(Affine(5)), 0);
}

TEST(SolverTest, GeometricWithPolynomialDrive) {
  // The paper's m' = 3m + (2i + 1), i = 1 + h: B = 3 + 2h.
  checkSolution(Rational(3), ClosedForm::linear(Affine(3), Affine(2)), 0);
  auto F = solveLinearRecurrence(
      Rational(3), ClosedForm::linear(Affine(3), Affine(2)), Affine(0));
  ASSERT_TRUE(F.has_value());
  // 6*3^h - h - 3 for the value *after* the update at iteration h is the
  // phi form here: -2 - h + 2*3^h.
  EXPECT_EQ(F->coeff(0), Affine(-2));
  EXPECT_EQ(F->coeff(1), Affine(-1));
  EXPECT_EQ(F->geoCoeff(3), Affine(2));
}

TEST(SolverTest, ExponentialDrive) {
  // X' = X + 2^h: solution has a 2^h term.
  checkSolution(Rational(1), ClosedForm::make({}, {{2, Affine(1)}}), 0);
  // X' = 2X + 3^h: distinct bases, fine.
  checkSolution(Rational(2), ClosedForm::make({}, {{3, Affine(1)}}), 1);
}

TEST(SolverTest, ResonanceSolved) {
  // X' = 2X + 2^h needs h*2^h: X(h) = h * 2^(h-1) = 1/2 * h * 2^h.
  auto F = solveLinearRecurrence(
      Rational(2), ClosedForm::make({}, {{2, Affine(1)}}), Affine(0));
  ASSERT_TRUE(F.has_value());
  EXPECT_TRUE(F->hasPolyExponential());
  EXPECT_EQ(F->geoCoeff(2, 1), Affine(Rational(1, 2)));
  int64_t X = 0;
  for (int64_t H = 0; H <= 8; ++H) {
    EXPECT_EQ(F->evaluateAt(H), Affine(X));
    X = 2 * X + (int64_t(1) << H);
  }
}

TEST(SolverTest, NonIntegerScaleRejected) {
  auto F = solveLinearRecurrence(Rational(1, 2),
                                 ClosedForm::constant(Affine(1)), Affine(8));
  EXPECT_FALSE(F.has_value());
}

TEST(SolverTest, SymbolicInitAndStep) {
  // X' = X + n with X(0) = n: X(h) = n + n*h, all symbolic.
  Affine N = Affine::symbol(&SymN);
  auto F = solveLinearRecurrence(Rational(1), ClosedForm::constant(N), N);
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ(F->coeff(0), N);
  EXPECT_EQ(F->coeff(1), N);
  // Symbolic init with a polynomial drive still solves (coefficients stay
  // affine in n).
  auto G = solveLinearRecurrence(Rational(1), ClosedForm::counter(), N);
  ASSERT_TRUE(G.has_value());
  EXPECT_EQ(G->coeff(0), N);
  EXPECT_EQ(G->coeff(2), Affine(Rational(1, 2)));
}

TEST(SolverTest, ZeroScaleRejected) {
  EXPECT_FALSE(solveLinearRecurrence(Rational(0),
                                     ClosedForm::constant(Affine(1)),
                                     Affine(0))
                   .has_value());
}
