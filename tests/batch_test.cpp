//===- tests/batch_test.cpp - Batch driver, thread pool, workload RNG ---------===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
// Covers the parallel batch-analysis subsystem: the ThreadPool's lifecycle
// and error paths, function splitting, the analyzeSources() pipeline entry,
// and the load-bearing determinism guarantee -- a parallel batch run renders
// byte-identically to a serial one over a generated corpus.  Also pins the
// WorkloadGen LCG's overflow-safe range().
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "driver/BatchAnalyzer.h"
#include "driver/ThreadPool.h"
#include "ivclass/Pipeline.h"
#include <atomic>
#include <gtest/gtest.h>
#include <limits>
#include <stdexcept>

using namespace biv;

namespace {

//===----------------------------------------------------------------------===//
// WorkloadGen Lcg
//===----------------------------------------------------------------------===//

TEST(LcgTest, RangeStaysInBounds) {
  bench::Lcg R(42);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = R.range(-5, 17);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 17);
  }
}

TEST(LcgTest, DegenerateRangeIsConstant) {
  bench::Lcg R(7);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(R.range(3, 3), 3);
}

TEST(LcgTest, FullRangeDoesNotOverflow) {
  // Hi - Lo + 1 wraps to 0 here; the old formula computed it in int64 and
  // hit signed overflow (UB).  Any returned value is in range by definition;
  // the test is that this is well-defined and deterministic.
  bench::Lcg A(11), B(11);
  int64_t Lo = std::numeric_limits<int64_t>::min();
  int64_t Hi = std::numeric_limits<int64_t>::max();
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.range(Lo, Hi), B.range(Lo, Hi));
}

TEST(LcgTest, Deterministic) {
  bench::Lcg A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, ConstructDestructEmpty) {
  // Shutdown with an empty queue must not hang or crash.
  driver::ThreadPool Pool(4);
  EXPECT_EQ(Pool.threadCount(), 4u);
}

TEST(ThreadPoolTest, ZeroPicksHardwareConcurrency) {
  driver::ThreadPool Pool(0);
  EXPECT_GE(Pool.threadCount(), 1u);
  EXPECT_EQ(Pool.threadCount(), driver::ThreadPool::defaultThreadCount());
}

TEST(ThreadPoolTest, RunsEveryTask) {
  driver::ThreadPool Pool(4);
  std::atomic<long> Sum{0};
  for (int I = 1; I <= 1000; ++I)
    Pool.submit([&Sum, I] { Sum.fetch_add(I, std::memory_order_relaxed); });
  Pool.wait();
  EXPECT_EQ(Sum.load(), 1000L * 1001 / 2);
}

TEST(ThreadPoolTest, WaitPropagatesFirstException) {
  driver::ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I < 16; ++I)
    Pool.submit([&Ran, I] {
      Ran.fetch_add(1);
      if (I == 5)
        throw std::runtime_error("unit 5 failed");
    });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // The failure drained the queue rather than aborting siblings.
  EXPECT_EQ(Ran.load(), 16);
  // And the pool stays usable afterwards.
  Pool.submit([&Ran] { Ran.fetch_add(1); });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Ran.load(), 17);
}

//===----------------------------------------------------------------------===//
// splitFunctions
//===----------------------------------------------------------------------===//

TEST(BatchTest, SplitsTopLevelFunctions) {
  driver::SourceInput File{
      "two.biv",
      "# leading comment with the word func in it\n"
      "func first(n) {\n  s = 0;\n  for L1: i = 1 to n { s = s + 1; }\n"
      "  return s;\n}\n"
      "func second(n) {\n  return n;\n}\n"};
  std::vector<driver::SourceInput> Units = driver::splitFunctions(File);
  ASSERT_EQ(Units.size(), 2u);
  EXPECT_EQ(Units[0].Name, "two.biv:first");
  EXPECT_EQ(Units[1].Name, "two.biv:second");
}

TEST(BatchTest, SingleFunctionKeepsFileName) {
  driver::SourceInput File{"one.biv", "func only(n) {\n  return n;\n}\n"};
  std::vector<driver::SourceInput> Units = driver::splitFunctions(File);
  ASSERT_EQ(Units.size(), 1u);
  EXPECT_EQ(Units[0].Name, "one.biv");
}

//===----------------------------------------------------------------------===//
// Pipeline::analyzeSources
//===----------------------------------------------------------------------===//

TEST(BatchTest, AnalyzeSourcesReportsPerSourceErrors) {
  std::vector<std::string> Sources = {
      "func ok(n) {\n  s = 0;\n  for L1: i = 1 to n { s = s + 2; }\n"
      "  return s;\n}\n",
      "func broken(n) { this is not a program }\n"};
  std::vector<std::vector<std::string>> Errors;
  ivclass::PipelineOptions Opts;
  Opts.Analysis.MaterializeExitValues = false;
  auto Results = ivclass::analyzeSources(Sources, Errors, Opts);
  ASSERT_EQ(Results.size(), 2u);
  ASSERT_EQ(Errors.size(), 2u);
  EXPECT_TRUE(Results[0].has_value());
  EXPECT_TRUE(Errors[0].empty());
  EXPECT_FALSE(Results[1].has_value());
  EXPECT_FALSE(Errors[1].empty());
}

//===----------------------------------------------------------------------===//
// Batch determinism
//===----------------------------------------------------------------------===//

TEST(BatchTest, ParallelMatchesSerialByteForByte) {
  // A corpus spanning every generator shape; at 8 workers on any scheduler
  // the rendered report and aggregates must match the serial run exactly.
  std::vector<bench::CorpusUnit> Corpus = bench::genCorpus(48, /*Seed=*/99);
  std::vector<driver::SourceInput> Sources;
  for (const bench::CorpusUnit &U : Corpus)
    Sources.push_back({U.Name, U.Text});

  driver::BatchOptions Serial;
  Serial.Jobs = 1;
  driver::BatchOptions Parallel = Serial;
  Parallel.Jobs = 8;

  driver::BatchResult RS = driver::analyzeBatch(Sources, Serial);
  driver::BatchResult RP = driver::analyzeBatch(Sources, Parallel);

  EXPECT_EQ(RS.Failed, 0u);
  EXPECT_EQ(RP.Failed, 0u);
  ASSERT_EQ(RS.Units.size(), RP.Units.size());
  EXPECT_EQ(RS.TotalInstructions, RP.TotalInstructions);
  EXPECT_EQ(RS.TotalLoops, RP.TotalLoops);
  EXPECT_EQ(RS.Stats.Regions, RP.Stats.Regions);
  EXPECT_EQ(RS.Stats.LinearFamilies, RP.Stats.LinearFamilies);
  EXPECT_EQ(RS.Stats.PeriodicFamilies, RP.Stats.PeriodicFamilies);
  EXPECT_EQ(RS.renderText(), RP.renderText());
}

TEST(BatchTest, CFiniteCorpusParallelByteIdentical) {
  // Exponential-polynomial rendering must not depend on worker count: the
  // coefficient polynomials on geometric bases, symbolic coefficients
  // (built in different interner orders per thread), and partial-member
  // projections all have to render byte-identically at -j1 and -j8.
  const char *Shapes[] = {
      // Symbolic 2^h coefficient a+b whose symbols arrive in both orders.
      "func s%d(n) {\n a = n + 1;\n b = n + 2;\n x = a;\n"
      " for L1: i = 0 to 6 {\n x = 2*x + b;\n }\n return x;\n}",
      "func t%d(n) {\n b = n + 2;\n a = n + 1;\n x = b;\n"
      " for L1: i = 0 to 6 {\n x = 2*x + a;\n }\n return x;\n}",
      // Two bases (2^h from g, 3^h from the carry) in one form.
      "func u%d(n) {\n g = 1;\n y = 1;\n for L1: i = 0 to 6 {\n"
      " g = g * 2;\n y = 3*y + g;\n }\n return y;\n}",
      // Resonance: h*2^h coefficient polynomial.
      "func v%d(n) {\n c0 = 1;\n c1 = 0;\n for L1: i = 0 to n {\n"
      " c0 = c0 * 2;\n c1 = 2*c1 + c0;\n }\n return c1;\n}",
      // Coupled system, eigenvalues {3, -1}.
      "func w%d(n) {\n u = 1;\n v = 0;\n for L1: i = 0 to n {\n"
      " t = u + 2*v;\n v = 2*u + v + i;\n u = t;\n }\n return u + v;\n}",
      // Unsolvable SCC with a partial projection.
      "func p%d(n) {\n px = 1;\n ps = 0;\n for L1: i = 0 to n {\n"
      " pt = px + i;\n pm = pt - px;\n px = px * px + pm;\n"
      " ps = ps + pm;\n }\n return ps;\n}",
  };
  std::vector<driver::SourceInput> Sources;
  for (int Copy = 0; Copy < 4; ++Copy)
    for (const char *Shape : Shapes) {
      char Buf[512];
      std::snprintf(Buf, sizeof(Buf), Shape, Copy);
      Sources.push_back(
          {"cf" + std::to_string(Sources.size()), std::string(Buf)});
    }

  driver::BatchOptions Serial;
  Serial.Jobs = 1;
  Serial.Report.AllValues = true;
  driver::BatchOptions Parallel = Serial;
  Parallel.Jobs = 8;

  driver::BatchResult RS = driver::analyzeBatch(Sources, Serial);
  driver::BatchResult RP = driver::analyzeBatch(Sources, Parallel);
  EXPECT_EQ(RS.Failed, 0u);
  EXPECT_EQ(RP.Failed, 0u);
  EXPECT_EQ(RS.renderText(), RP.renderText());
}

TEST(BatchTest, FailedUnitDoesNotAbortSiblings) {
  std::vector<driver::SourceInput> Sources = {
      {"good1", "func a(n) {\n  s = 0;\n  for L1: i = 1 to n { s = s + 1; }\n"
                "  return s;\n}\n"},
      {"bad", "func b(n) { syntax error here }\n"},
      {"good2", "func c(n) {\n  return n;\n}\n"}};
  driver::BatchOptions BO;
  BO.Jobs = 4;
  driver::BatchResult R = driver::analyzeBatch(Sources, BO);
  ASSERT_EQ(R.Units.size(), 3u);
  EXPECT_EQ(R.Failed, 1u);
  EXPECT_TRUE(R.Units[0].OK);
  EXPECT_FALSE(R.Units[1].OK);
  EXPECT_TRUE(R.Units[2].OK);
  EXPECT_FALSE(R.Units[1].Errors.empty());
}

TEST(BatchTest, ThrowingUnitFailsBatchWithoutDeadlock) {
  // A worker exception used to either deadlock wait() or vanish with the
  // unit silently analyzed as OK.  Now: the batch completes, exactly the
  // offending unit is failed with a diagnostic naming the cause, and its
  // siblings are unaffected.
  std::vector<driver::SourceInput> Sources;
  for (int I = 0; I < 12; ++I)
    Sources.push_back({"u" + std::to_string(I),
                       "func f(n) {\n  s = 0;\n"
                       "  for L1: i = 1 to n { s = s + 1; }\n"
                       "  return s;\n}\n"});
  driver::BatchOptions BO;
  BO.Jobs = 4;
  BO.PerUnitHook = [](const driver::SourceInput &U) {
    if (U.Name == "u7")
      throw std::runtime_error("injected fault");
  };
  driver::BatchResult R = driver::analyzeBatch(Sources, BO);
  ASSERT_EQ(R.Units.size(), 12u);
  EXPECT_EQ(R.Failed, 1u);
  for (const driver::UnitResult &U : R.Units) {
    if (U.Name == "u7") {
      EXPECT_FALSE(U.OK);
      ASSERT_FALSE(U.Errors.empty());
      EXPECT_NE(U.Errors[0].find("internal error"), std::string::npos);
      EXPECT_NE(U.Errors[0].find("injected fault"), std::string::npos);
    } else {
      EXPECT_TRUE(U.OK) << U.Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Analysis cache through the batch driver
//===----------------------------------------------------------------------===//

TEST(BatchCacheTest, WarmRunIsByteIdenticalAndFullyHit) {
  std::vector<bench::CorpusUnit> Corpus = bench::genCorpus(24, /*Seed=*/7);
  std::vector<driver::SourceInput> Sources;
  for (const bench::CorpusUnit &U : Corpus)
    Sources.push_back({U.Name, U.Text});

  cache::AnalysisCache Cache; // in-memory: open()/save() not needed
  driver::BatchOptions BO;
  BO.Jobs = 4;
  BO.Report.AllValues = true;
  BO.Cache = &Cache;

  driver::BatchResult Cold = driver::analyzeBatch(Sources, BO);
  EXPECT_EQ(Cold.Failed, 0u);
  // Content addressing dedups generator collisions: at most one entry per
  // distinct IR, at least one per distinct program shape.
  size_t ColdEntries = Cache.pendingCount();
  EXPECT_GT(ColdEntries, 0u);
  EXPECT_LE(ColdEntries, Sources.size());

  driver::BatchResult Warm = driver::analyzeBatch(Sources, BO);
  EXPECT_EQ(Warm.renderText(), Cold.renderText());
  // Nothing new to cache on the second pass: every unit hit.
  EXPECT_EQ(Cache.pendingCount(), ColdEntries);

  // And the cached result equals a cache-less analysis.
  driver::BatchOptions Plain = BO;
  Plain.Cache = nullptr;
  EXPECT_EQ(driver::analyzeBatch(Sources, Plain).renderText(),
            Cold.renderText());
}

TEST(BatchCacheTest, OptionChangesMissInsteadOfCrossContaminating) {
  std::vector<driver::SourceInput> Sources = {
      {"f", "func f(n) {\n  s = 0;\n  for L1: i = 1 to n { s = s + i; }\n"
            "  return s;\n}\n"}};
  cache::AnalysisCache Cache;

  driver::BatchOptions Terse;
  Terse.Jobs = 1;
  Terse.Report.AllValues = false;
  Terse.Cache = &Cache;
  std::string TerseText = driver::analyzeBatch(Sources, Terse).renderText();
  EXPECT_EQ(Cache.pendingCount(), 1u);

  // Same IR, different report options: must be a second entry, and the
  // verbose report must not come back in terse clothing (or vice versa).
  driver::BatchOptions Verbose = Terse;
  Verbose.Report.AllValues = true;
  std::string VerboseText =
      driver::analyzeBatch(Sources, Verbose).renderText();
  EXPECT_EQ(Cache.pendingCount(), 2u);
  EXPECT_NE(VerboseText, TerseText);

  // Both configurations now replay from the cache, each its own bytes.
  EXPECT_EQ(driver::analyzeBatch(Sources, Terse).renderText(), TerseText);
  EXPECT_EQ(driver::analyzeBatch(Sources, Verbose).renderText(), VerboseText);
  EXPECT_EQ(Cache.pendingCount(), 2u);
}

TEST(BatchCacheTest, FailedUnitsAreNeverCached) {
  std::vector<driver::SourceInput> Sources = {
      {"bad", "func b(n) { not a program }\n"}};
  cache::AnalysisCache Cache;
  driver::BatchOptions BO;
  BO.Jobs = 1;
  BO.Cache = &Cache;
  driver::BatchResult R = driver::analyzeBatch(Sources, BO);
  EXPECT_EQ(R.Failed, 1u);
  EXPECT_EQ(Cache.pendingCount(), 0u);
}

} // namespace
