//===- tests/server_test.cpp - Analysis daemon lifecycle ----------------------===//
//
// The `bivc --serve` acceptance surface, in-process against a real unix
// socket: byte-identical responses, warm shared cache, bounded admission
// with explicit overload replies, per-request deadlines, crash isolation,
// and the drain-on-shutdown guarantee that no accepted request is ever
// silently dropped.  tools/serve_soak.sh repeats the same checks against
// the installed binary under ThreadSanitizer.
//
//===----------------------------------------------------------------------===//

#include "ivclass/Pipeline.h"
#include "ivclass/Report.h"
#include "server/Client.h"
#include "server/Server.h"
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <mutex>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace biv;
using namespace biv::server;

namespace {

// The one-shot CLI's default option bits: RunSCCP | MaterializeExitValues
// | Classify | the NestedTuples report default.
constexpr uint64_t DefaultBits = 1 | 2 | 4 | 16;

std::string tempDir() {
  static int Seq = 0;
  std::string D = (std::filesystem::temp_directory_path() /
                   ("biv_server_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(Seq++)))
                      .string();
  std::filesystem::create_directories(D);
  return D;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// What the one-shot CLI would print for Source under the default flags
/// (parse, SSA, SCCP, analysis, classification report).
std::string oneShotReport(const std::string &Source) {
  ivclass::PipelineOptions PO;
  PO.VerifyEach = false;
  std::vector<std::string> Errors;
  std::optional<ivclass::AnalyzedProgram> P =
      ivclass::analyzeSource(Source, Errors, PO);
  EXPECT_TRUE(P.has_value());
  if (!P)
    return std::string();
  return ivclass::report(*P->IA, &P->Info, ivclass::ReportOptions());
}

Response callOk(const std::string &Socket, const std::string &Source,
                uint64_t DeadlineMs = 0) {
  Request Q;
  Q.Kind = RequestKind::Analyze;
  Q.OptsBits = DefaultBits;
  Q.Source = Source;
  Q.DeadlineMs = DeadlineMs;
  Response R;
  std::string Err;
  EXPECT_TRUE(call(Socket, Q, R, Err)) << Err;
  return R;
}

const char *SimpleSrc = "func f(n) {"
                        "  s = 0;"
                        "  for L: i = 1 to n { s = s + i; }"
                        "  return s;"
                        "}";

} // namespace

TEST(ServerTest, ByteIdenticalToOneShotForCorpus) {
  std::string Dir = tempDir();
  Server S(Dir + "/d.sock", ServerOptions());
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  unsigned Checked = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(
           BIV_CORPUS_DIR)) {
    if (Entry.path().extension() != ".biv")
      continue;
    std::string Source = readFile(Entry.path().string());
    Response R = callOk(S.socketPath(), Source);
    ASSERT_EQ(R.S, Status::Ok) << Entry.path() << ": " << R.Body;
    EXPECT_EQ(R.Body, oneShotReport(Source)) << Entry.path();
    ++Checked;
  }
  EXPECT_GE(Checked, 5u) << "corpus should hold several programs";
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, WarmCacheServesRepeatsWithoutClassifying) {
  std::string Dir = tempDir();
  ServerOptions SO;
  SO.CachePath = Dir + "/d.cache";
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  Response Cold = callOk(S.socketPath(), SimpleSrc);
  ASSERT_EQ(Cold.S, Status::Ok) << Cold.Body;
  stats::StatsSnapshot After1 = S.statsSnapshot();

  Response Warm = callOk(S.socketPath(), SimpleSrc);
  ASSERT_EQ(Warm.S, Status::Ok) << Warm.Body;
  EXPECT_EQ(Warm.Body, Cold.Body) << "hit must be byte-identical";
  stats::StatsSnapshot After2 = S.statsSnapshot();

  EXPECT_EQ(After1.Counters.count("cache.hit"), 0u);
  EXPECT_EQ(After1.Counters.at("cache.miss"), 1u);
  EXPECT_EQ(After2.Counters.at("cache.hit"), 1u) << "hit counter must rise";
  EXPECT_EQ(After2.Counters.at("cache.miss"), 1u);
  // Classification really was skipped on the hit: the phase timer's span
  // count did not move between the two requests (hits replay counters but
  // never timers).
  EXPECT_EQ(After2.Timers.at("phase.classify").Spans,
            After1.Timers.at("phase.classify").Spans);
  // The request latency histogram saw both requests.
  EXPECT_EQ(After2.Hists.at("serve.latency_ns").Count, 2u);

  ASSERT_TRUE(S.drain(Err)) << Err;
  // The daemon persisted the shared cache on drain.
  EXPECT_TRUE(std::filesystem::exists(SO.CachePath));
}

TEST(ServerTest, OverloadedPastAdmissionBoundWhileEarlierComplete) {
  std::string Dir = tempDir();
  std::mutex M;
  std::condition_variable CV;
  bool Release = false;
  unsigned Held = 0;

  ServerOptions SO;
  SO.Threads = 2;
  SO.AdmitLimit = 2;
  SO.TestHookBeforeAnalyze = [&](const Request &) {
    std::unique_lock<std::mutex> Lock(M);
    ++Held;
    CV.notify_all();
    CV.wait(Lock, [&] { return Release; });
  };
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Fill the admission bound with two requests parked in the test hook.
  std::vector<std::thread> Clients;
  std::vector<Response> Rs(2);
  for (int I = 0; I < 2; ++I)
    Clients.emplace_back([&, I] { Rs[I] = callOk(S.socketPath(), SimpleSrc); });
  {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Held == 2; });
  }

  // The third arrival must get an explicit overloaded reply immediately.
  Response Over = callOk(S.socketPath(), SimpleSrc);
  EXPECT_EQ(Over.S, Status::Overloaded);
  EXPECT_NE(Over.Body.find("admission queue full"), std::string::npos)
      << Over.Body;

  // Release the held workers; the earlier requests still complete.
  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  CV.notify_all();
  for (std::thread &T : Clients)
    T.join();
  for (const Response &R : Rs)
    EXPECT_EQ(R.S, Status::Ok) << R.Body;

  stats::StatsSnapshot Snap = S.statsSnapshot();
  EXPECT_EQ(Snap.Counters.at("serve.overloaded"), 1u);
  EXPECT_EQ(Snap.Counters.at("serve.completed"), 2u);
  // Queue-depth histogram saw every arrival, including the rejected one.
  EXPECT_EQ(Snap.Hists.at("serve.queue_depth").Count, 3u);
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, SigtermDrainsEveryAdmittedRequest) {
  std::string Dir = tempDir();
  std::mutex M;
  std::condition_variable CV;
  bool Release = false;
  unsigned Held = 0;

  ServerOptions SO;
  SO.Threads = 4;
  SO.TestHookBeforeAnalyze = [&](const Request &) {
    std::unique_lock<std::mutex> Lock(M);
    ++Held;
    CV.notify_all();
    CV.wait(Lock, [&] { return Release; });
  };
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  S.installSignalHandlers();

  constexpr unsigned N = 4;
  std::vector<std::thread> Clients;
  std::vector<Response> Rs(N);
  for (unsigned I = 0; I < N; ++I)
    Clients.emplace_back([&, I] { Rs[I] = callOk(S.socketPath(), SimpleSrc); });
  {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Held == N; });
  }

  // SIGTERM arrives while all N requests are in flight...
  ASSERT_EQ(::raise(SIGTERM), 0);
  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  CV.notify_all();
  S.waitForShutdown();
  ASSERT_TRUE(S.drain(Err)) << Err;

  // ...and every one of them was answered before the daemon exited.
  for (std::thread &T : Clients)
    T.join();
  for (const Response &R : Rs)
    EXPECT_EQ(R.S, Status::Ok) << R.Body;
  EXPECT_EQ(S.statsSnapshot().Counters.at("serve.completed"),
            uint64_t(N));
  // The socket file is gone: no client can half-connect to a dead daemon.
  EXPECT_FALSE(std::filesystem::exists(S.socketPath()));
}

TEST(ServerTest, CrashingRequestFailsAloneDaemonKeepsServing) {
  std::string Dir = tempDir();
  ServerOptions SO;
  SO.TestHookBeforeAnalyze = [](const Request &Q) {
    if (Q.Source.find("BOOM") != std::string::npos)
      throw std::runtime_error("injected worker crash");
  };
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  Response Crash = callOk(S.socketPath(), "// BOOM\nfunc f() { return 1; }");
  EXPECT_EQ(Crash.S, Status::AnalysisError);
  EXPECT_NE(Crash.Body.find("injected worker crash"), std::string::npos)
      << Crash.Body;

  // The daemon and its pool survived: the next request is served normally.
  Response After = callOk(S.socketPath(), SimpleSrc);
  EXPECT_EQ(After.S, Status::Ok) << After.Body;
  EXPECT_EQ(After.Body, oneShotReport(SimpleSrc));
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, ParseDiagnosticsComeBackAsAnalysisError) {
  std::string Dir = tempDir();
  Server S(Dir + "/d.sock", ServerOptions());
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  Response R = callOk(S.socketPath(), "func broken( {");
  EXPECT_EQ(R.S, Status::AnalysisError);
  EXPECT_FALSE(R.Body.empty());
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, DeadlineExpiredWhileQueuedIsNotAnalyzed) {
  std::string Dir = tempDir();
  std::mutex M;
  std::condition_variable CV;
  bool Release = false;
  bool HoldArrived = false;

  ServerOptions SO;
  SO.Threads = 1; // one worker, so the second request must queue
  SO.TestHookBeforeAnalyze = [&](const Request &Q) {
    if (Q.Source.find("HOLD") == std::string::npos)
      return;
    std::unique_lock<std::mutex> Lock(M);
    HoldArrived = true;
    CV.notify_all();
    CV.wait(Lock, [&] { return Release; });
  };
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  std::thread Blocker([&] {
    callOk(S.socketPath(), std::string("// HOLD\n") + SimpleSrc);
  });
  {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return HoldArrived; });
  }

  // This request's 1ms deadline expires while it waits for the worker.
  std::thread Expired([&] {
    Response R = callOk(S.socketPath(), SimpleSrc, /*DeadlineMs=*/1);
    EXPECT_EQ(R.S, Status::DeadlineExceeded) << R.Body;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  CV.notify_all();
  Blocker.join();
  Expired.join();

  stats::StatsSnapshot Snap = S.statsSnapshot();
  EXPECT_EQ(Snap.Counters.at("serve.deadline_exceeded"), 1u);
  // The expired request never reached the pipeline: exactly one parse ran.
  EXPECT_EQ(Snap.Timers.at("phase.parse").Spans, 1u);
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, StatsRequestKindReturnsServerJson) {
  std::string Dir = tempDir();
  Server S(Dir + "/d.sock", ServerOptions());
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  Response First = callOk(S.socketPath(), SimpleSrc);
  ASSERT_EQ(First.S, Status::Ok) << First.Body;

  Request Q;
  Q.Kind = RequestKind::Stats;
  Response R;
  ASSERT_TRUE(call(S.socketPath(), Q, R, Err)) << Err;
  EXPECT_EQ(R.S, Status::Ok);
  // A worker folds its delta before replying, so a client that got its
  // answer is guaranteed to see its own request in a follow-up stats call.
  EXPECT_NE(R.Body.find("\"serve.completed\": 1"), std::string::npos)
      << R.Body;
  EXPECT_NE(R.Body.find("\"serve.latency_ns\""), std::string::npos)
      << R.Body;
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, MalformedFrameGetsBadRequest) {
  std::string Dir = tempDir();
  Server S(Dir + "/d.sock", ServerOptions());
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Hand-roll a frame whose payload is garbage (wrong magic).
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::string Path = S.socketPath();
  ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  ASSERT_TRUE(writeFrame(Fd, "garbage payload", Err)) << Err;
  std::string Payload;
  ASSERT_TRUE(readFrame(Fd, Payload, Err)) << Err;
  Response R;
  ASSERT_TRUE(R.decode(Payload, Err)) << Err;
  EXPECT_EQ(R.S, Status::BadRequest);
  ::close(Fd);
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, ClientGoneBeforeReplyIsAConnectionErrorNotACrash) {
  // A client that dies between sending its request and reading the reply
  // used to take the whole daemon down with SIGPIPE.  Now the write fails
  // as a per-connection error (counted), and the daemon keeps serving.
  std::string Dir = tempDir();
  std::mutex M;
  std::condition_variable CV;
  bool Parked = false, Release = false;

  ServerOptions SO;
  // One worker: the same thread that hits the dead socket serves the
  // follow-up request, folding the failure counter where stats can see it.
  SO.Threads = 1;
  SO.TestHookBeforeAnalyze = [&](const Request &) {
    std::unique_lock<std::mutex> Lock(M);
    Parked = true;
    CV.notify_all();
    CV.wait(Lock, [&] { return Release; });
  };
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Raw connection: send a valid request, then vanish before the reply.
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::string Path = S.socketPath();
  ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)), 0);
  Request Q;
  Q.Kind = RequestKind::Analyze;
  Q.OptsBits = DefaultBits;
  Q.Source = SimpleSrc;
  ASSERT_TRUE(writeFrame(Fd, Q.encode(), Err)) << Err;
  // Wait until the worker holds the request, then kill the client side --
  // the reply is now guaranteed to hit a closed socket.
  {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Parked; });
  }
  ::close(Fd);
  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  CV.notify_all();

  // The daemon survived and still serves; the failed reply was counted.
  Response After = callOk(S.socketPath(), SimpleSrc);
  EXPECT_EQ(After.S, Status::Ok) << After.Body;
  EXPECT_EQ(After.Body, oneShotReport(SimpleSrc));
  stats::StatsSnapshot Snap = S.statsSnapshot();
  EXPECT_EQ(Snap.Counters.at("serve.reply_failures"), 1u);
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, NearMaxFrameSurvivesTinySendBufferAndNonblocking) {
  // writeFrame must loop through short writes.  Force the worst case: a
  // non-blocking sender with a minimal kernel send buffer pushing a frame
  // close to the 16MB cap through a socketpair while the reader drains.
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  int Tiny = 4096; // the kernel clamps to its floor; still far below 16MB
  ASSERT_EQ(::setsockopt(Sp[0], SOL_SOCKET, SO_SNDBUF, &Tiny, sizeof(Tiny)),
            0);
  ASSERT_EQ(::setsockopt(Sp[1], SOL_SOCKET, SO_RCVBUF, &Tiny, sizeof(Tiny)),
            0);
  int Flags = ::fcntl(Sp[0], F_GETFL, 0);
  ASSERT_GE(Flags, 0);
  ASSERT_EQ(::fcntl(Sp[0], F_SETFL, Flags | O_NONBLOCK), 0);

  std::string Payload(MaxFrameBytes - 64, '\0');
  for (size_t I = 0; I < Payload.size(); ++I)
    Payload[I] = char('a' + I % 23);

  std::string ReadErr;
  std::string Got;
  std::thread Reader([&] {
    if (!readFrame(Sp[1], Got, ReadErr))
      Got.clear();
  });
  std::string WriteErr;
  EXPECT_TRUE(writeFrame(Sp[0], Payload, WriteErr)) << WriteErr;
  Reader.join();
  EXPECT_TRUE(ReadErr.empty()) << ReadErr;
  EXPECT_EQ(Got.size(), Payload.size());
  EXPECT_EQ(Got, Payload) << "short writes must not reorder or drop bytes";
  ::close(Sp[0]);
  ::close(Sp[1]);
}

TEST(ServerTest, TcpFrontendServesByteIdenticalReports) {
  std::string Dir = tempDir();
  ServerOptions SO;
  SO.TcpSpec = "127.0.0.1:0"; // port 0: kernel picks, tcpPort() reports
  SO.CachePath = Dir + "/d.cache";
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  ASSERT_GT(S.tcpPort(), 0);

  std::string TcpEndpoint =
      "tcp:127.0.0.1:" + std::to_string(S.tcpPort());
  Response OverTcp = callOk(TcpEndpoint, SimpleSrc);
  ASSERT_EQ(OverTcp.S, Status::Ok) << OverTcp.Body;
  EXPECT_EQ(OverTcp.Body, oneShotReport(SimpleSrc));

  // Both frontends serve the same daemon: the unix path answers too, and
  // the TCP request warmed the shared cache for it.
  Response OverUnix = callOk(S.socketPath(), SimpleSrc);
  ASSERT_EQ(OverUnix.S, Status::Ok) << OverUnix.Body;
  EXPECT_EQ(OverUnix.Body, OverTcp.Body);
  EXPECT_EQ(S.statsSnapshot().Counters.at("cache.hit"), 1u);
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, PeriodicFlushPersistsCacheWithoutDrain) {
  // Fleet workers can die at any time; the cache must reach disk on a
  // cadence, not only at drain.  With the cadence at 1 the very first
  // miss is durable before the client even sees its reply.
  std::string Dir = tempDir();
  ServerOptions SO;
  SO.CachePath = Dir + "/d.cache";
  SO.CacheFlushEvery = 1;
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  Response R = callOk(S.socketPath(), SimpleSrc);
  ASSERT_EQ(R.S, Status::Ok) << R.Body;
  EXPECT_TRUE(std::filesystem::exists(SO.CachePath))
      << "cache must be flushed before the reply, not only at drain";

  // A second daemon sharing the file serves the entry as a warm hit.
  Server S2(Dir + "/d2.sock", SO);
  ASSERT_TRUE(S2.start(Err)) << Err;
  Response Warm = callOk(S2.socketPath(), SimpleSrc);
  ASSERT_EQ(Warm.S, Status::Ok) << Warm.Body;
  EXPECT_EQ(Warm.Body, R.Body);
  EXPECT_EQ(S2.statsSnapshot().Counters.at("cache.hit"), 1u);
  ASSERT_TRUE(S2.drain(Err)) << Err;
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, ConnectionsAfterDrainAreRefusedPolitely) {
  std::string Dir = tempDir();
  Server S(Dir + "/d.sock", ServerOptions());
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  Response R = callOk(S.socketPath(), SimpleSrc);
  ASSERT_EQ(R.S, Status::Ok);
  ASSERT_TRUE(S.drain(Err)) << Err;

  // The socket is unlinked; a late client gets a connect error rather
  // than a hang.
  Request Q;
  Q.Source = SimpleSrc;
  Q.OptsBits = DefaultBits;
  Response Late;
  EXPECT_FALSE(call(S.socketPath(), Q, Late, Err));
}
