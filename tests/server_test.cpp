//===- tests/server_test.cpp - Analysis daemon lifecycle ----------------------===//
//
// The `bivc --serve` acceptance surface, in-process against a real unix
// socket: byte-identical responses, warm shared cache, bounded admission
// with explicit overload replies, per-request deadlines, crash isolation,
// and the drain-on-shutdown guarantee that no accepted request is ever
// silently dropped.  tools/serve_soak.sh repeats the same checks against
// the installed binary under ThreadSanitizer.
//
//===----------------------------------------------------------------------===//

#include "ivclass/Pipeline.h"
#include "ivclass/Report.h"
#include "server/Client.h"
#include "server/Server.h"
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <mutex>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace biv;
using namespace biv::server;

namespace {

// The one-shot CLI's default option bits: RunSCCP | MaterializeExitValues
// | Classify | the NestedTuples report default.
constexpr uint64_t DefaultBits = 1 | 2 | 4 | 16;

std::string tempDir() {
  static int Seq = 0;
  std::string D = (std::filesystem::temp_directory_path() /
                   ("biv_server_test_" + std::to_string(::getpid()) + "_" +
                    std::to_string(Seq++)))
                      .string();
  std::filesystem::create_directories(D);
  return D;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// What the one-shot CLI would print for Source under the default flags
/// (parse, SSA, SCCP, analysis, classification report).
std::string oneShotReport(const std::string &Source) {
  ivclass::PipelineOptions PO;
  PO.VerifyEach = false;
  std::vector<std::string> Errors;
  std::optional<ivclass::AnalyzedProgram> P =
      ivclass::analyzeSource(Source, Errors, PO);
  EXPECT_TRUE(P.has_value());
  if (!P)
    return std::string();
  return ivclass::report(*P->IA, &P->Info, ivclass::ReportOptions());
}

Response callOk(const std::string &Socket, const std::string &Source,
                uint64_t DeadlineMs = 0) {
  Request Q;
  Q.Kind = RequestKind::Analyze;
  Q.OptsBits = DefaultBits;
  Q.Source = Source;
  Q.DeadlineMs = DeadlineMs;
  Response R;
  std::string Err;
  EXPECT_TRUE(call(Socket, Q, R, Err)) << Err;
  return R;
}

const char *SimpleSrc = "func f(n) {"
                        "  s = 0;"
                        "  for L: i = 1 to n { s = s + i; }"
                        "  return s;"
                        "}";

} // namespace

TEST(ServerTest, ByteIdenticalToOneShotForCorpus) {
  std::string Dir = tempDir();
  Server S(Dir + "/d.sock", ServerOptions());
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  unsigned Checked = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(
           BIV_CORPUS_DIR)) {
    if (Entry.path().extension() != ".biv")
      continue;
    std::string Source = readFile(Entry.path().string());
    Response R = callOk(S.socketPath(), Source);
    ASSERT_EQ(R.S, Status::Ok) << Entry.path() << ": " << R.Body;
    EXPECT_EQ(R.Body, oneShotReport(Source)) << Entry.path();
    ++Checked;
  }
  EXPECT_GE(Checked, 5u) << "corpus should hold several programs";
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, WarmCacheServesRepeatsWithoutClassifying) {
  std::string Dir = tempDir();
  ServerOptions SO;
  SO.CachePath = Dir + "/d.cache";
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  Response Cold = callOk(S.socketPath(), SimpleSrc);
  ASSERT_EQ(Cold.S, Status::Ok) << Cold.Body;
  stats::StatsSnapshot After1 = S.statsSnapshot();

  Response Warm = callOk(S.socketPath(), SimpleSrc);
  ASSERT_EQ(Warm.S, Status::Ok) << Warm.Body;
  EXPECT_EQ(Warm.Body, Cold.Body) << "hit must be byte-identical";
  stats::StatsSnapshot After2 = S.statsSnapshot();

  EXPECT_EQ(After1.Counters.count("cache.hit"), 0u);
  EXPECT_EQ(After1.Counters.at("cache.miss"), 1u);
  EXPECT_EQ(After2.Counters.at("cache.hit"), 1u) << "hit counter must rise";
  EXPECT_EQ(After2.Counters.at("cache.miss"), 1u);
  // Classification really was skipped on the hit: the phase timer's span
  // count did not move between the two requests (hits replay counters but
  // never timers).
  EXPECT_EQ(After2.Timers.at("phase.classify").Spans,
            After1.Timers.at("phase.classify").Spans);
  // The request latency histogram saw both requests.
  EXPECT_EQ(After2.Hists.at("serve.latency_ns").Count, 2u);

  ASSERT_TRUE(S.drain(Err)) << Err;
  // The daemon persisted the shared cache on drain.
  EXPECT_TRUE(std::filesystem::exists(SO.CachePath));
}

TEST(ServerTest, OverloadedPastAdmissionBoundWhileEarlierComplete) {
  std::string Dir = tempDir();
  std::mutex M;
  std::condition_variable CV;
  bool Release = false;
  unsigned Held = 0;

  ServerOptions SO;
  SO.Threads = 2;
  SO.AdmitLimit = 2;
  SO.TestHookBeforeAnalyze = [&](const Request &) {
    std::unique_lock<std::mutex> Lock(M);
    ++Held;
    CV.notify_all();
    CV.wait(Lock, [&] { return Release; });
  };
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Fill the admission bound with two requests parked in the test hook.
  std::vector<std::thread> Clients;
  std::vector<Response> Rs(2);
  for (int I = 0; I < 2; ++I)
    Clients.emplace_back([&, I] { Rs[I] = callOk(S.socketPath(), SimpleSrc); });
  {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Held == 2; });
  }

  // The third arrival must get an explicit overloaded reply immediately.
  Response Over = callOk(S.socketPath(), SimpleSrc);
  EXPECT_EQ(Over.S, Status::Overloaded);
  EXPECT_NE(Over.Body.find("admission queue full"), std::string::npos)
      << Over.Body;

  // Release the held workers; the earlier requests still complete.
  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  CV.notify_all();
  for (std::thread &T : Clients)
    T.join();
  for (const Response &R : Rs)
    EXPECT_EQ(R.S, Status::Ok) << R.Body;

  stats::StatsSnapshot Snap = S.statsSnapshot();
  EXPECT_EQ(Snap.Counters.at("serve.overloaded"), 1u);
  EXPECT_EQ(Snap.Counters.at("serve.completed"), 2u);
  // Queue-depth histogram saw every arrival, including the rejected one.
  EXPECT_EQ(Snap.Hists.at("serve.queue_depth").Count, 3u);
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, SigtermDrainsEveryAdmittedRequest) {
  std::string Dir = tempDir();
  std::mutex M;
  std::condition_variable CV;
  bool Release = false;
  unsigned Held = 0;

  ServerOptions SO;
  SO.Threads = 4;
  SO.TestHookBeforeAnalyze = [&](const Request &) {
    std::unique_lock<std::mutex> Lock(M);
    ++Held;
    CV.notify_all();
    CV.wait(Lock, [&] { return Release; });
  };
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  S.installSignalHandlers();

  constexpr unsigned N = 4;
  std::vector<std::thread> Clients;
  std::vector<Response> Rs(N);
  for (unsigned I = 0; I < N; ++I)
    Clients.emplace_back([&, I] { Rs[I] = callOk(S.socketPath(), SimpleSrc); });
  {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Held == N; });
  }

  // SIGTERM arrives while all N requests are in flight...
  ASSERT_EQ(::raise(SIGTERM), 0);
  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  CV.notify_all();
  S.waitForShutdown();
  ASSERT_TRUE(S.drain(Err)) << Err;

  // ...and every one of them was answered before the daemon exited.
  for (std::thread &T : Clients)
    T.join();
  for (const Response &R : Rs)
    EXPECT_EQ(R.S, Status::Ok) << R.Body;
  EXPECT_EQ(S.statsSnapshot().Counters.at("serve.completed"),
            uint64_t(N));
  // The socket file is gone: no client can half-connect to a dead daemon.
  EXPECT_FALSE(std::filesystem::exists(S.socketPath()));
}

TEST(ServerTest, CrashingRequestFailsAloneDaemonKeepsServing) {
  std::string Dir = tempDir();
  ServerOptions SO;
  SO.TestHookBeforeAnalyze = [](const Request &Q) {
    if (Q.Source.find("BOOM") != std::string::npos)
      throw std::runtime_error("injected worker crash");
  };
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  Response Crash = callOk(S.socketPath(), "// BOOM\nfunc f() { return 1; }");
  EXPECT_EQ(Crash.S, Status::AnalysisError);
  EXPECT_NE(Crash.Body.find("injected worker crash"), std::string::npos)
      << Crash.Body;

  // The daemon and its pool survived: the next request is served normally.
  Response After = callOk(S.socketPath(), SimpleSrc);
  EXPECT_EQ(After.S, Status::Ok) << After.Body;
  EXPECT_EQ(After.Body, oneShotReport(SimpleSrc));
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, ParseDiagnosticsComeBackAsAnalysisError) {
  std::string Dir = tempDir();
  Server S(Dir + "/d.sock", ServerOptions());
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  Response R = callOk(S.socketPath(), "func broken( {");
  EXPECT_EQ(R.S, Status::AnalysisError);
  EXPECT_FALSE(R.Body.empty());
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, DeadlineExpiredWhileQueuedIsNotAnalyzed) {
  std::string Dir = tempDir();
  std::mutex M;
  std::condition_variable CV;
  bool Release = false;
  bool HoldArrived = false;

  ServerOptions SO;
  SO.Threads = 1; // one worker, so the second request must queue
  SO.TestHookBeforeAnalyze = [&](const Request &Q) {
    if (Q.Source.find("HOLD") == std::string::npos)
      return;
    std::unique_lock<std::mutex> Lock(M);
    HoldArrived = true;
    CV.notify_all();
    CV.wait(Lock, [&] { return Release; });
  };
  Server S(Dir + "/d.sock", SO);
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  std::thread Blocker([&] {
    callOk(S.socketPath(), std::string("// HOLD\n") + SimpleSrc);
  });
  {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return HoldArrived; });
  }

  // This request's 1ms deadline expires while it waits for the worker.
  std::thread Expired([&] {
    Response R = callOk(S.socketPath(), SimpleSrc, /*DeadlineMs=*/1);
    EXPECT_EQ(R.S, Status::DeadlineExceeded) << R.Body;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  {
    std::lock_guard<std::mutex> Lock(M);
    Release = true;
  }
  CV.notify_all();
  Blocker.join();
  Expired.join();

  stats::StatsSnapshot Snap = S.statsSnapshot();
  EXPECT_EQ(Snap.Counters.at("serve.deadline_exceeded"), 1u);
  // The expired request never reached the pipeline: exactly one parse ran.
  EXPECT_EQ(Snap.Timers.at("phase.parse").Spans, 1u);
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, StatsRequestKindReturnsServerJson) {
  std::string Dir = tempDir();
  Server S(Dir + "/d.sock", ServerOptions());
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  Response First = callOk(S.socketPath(), SimpleSrc);
  ASSERT_EQ(First.S, Status::Ok) << First.Body;

  Request Q;
  Q.Kind = RequestKind::Stats;
  Response R;
  ASSERT_TRUE(call(S.socketPath(), Q, R, Err)) << Err;
  EXPECT_EQ(R.S, Status::Ok);
  // A worker folds its delta before replying, so a client that got its
  // answer is guaranteed to see its own request in a follow-up stats call.
  EXPECT_NE(R.Body.find("\"serve.completed\": 1"), std::string::npos)
      << R.Body;
  EXPECT_NE(R.Body.find("\"serve.latency_ns\""), std::string::npos)
      << R.Body;
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, MalformedFrameGetsBadRequest) {
  std::string Dir = tempDir();
  Server S(Dir + "/d.sock", ServerOptions());
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;

  // Hand-roll a frame whose payload is garbage (wrong magic).
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::string Path = S.socketPath();
  ASSERT_LT(Path.size(), sizeof(Addr.sun_path));
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  ASSERT_TRUE(writeFrame(Fd, "garbage payload", Err)) << Err;
  std::string Payload;
  ASSERT_TRUE(readFrame(Fd, Payload, Err)) << Err;
  Response R;
  ASSERT_TRUE(R.decode(Payload, Err)) << Err;
  EXPECT_EQ(R.S, Status::BadRequest);
  ::close(Fd);
  ASSERT_TRUE(S.drain(Err)) << Err;
}

TEST(ServerTest, ConnectionsAfterDrainAreRefusedPolitely) {
  std::string Dir = tempDir();
  Server S(Dir + "/d.sock", ServerOptions());
  std::string Err;
  ASSERT_TRUE(S.start(Err)) << Err;
  Response R = callOk(S.socketPath(), SimpleSrc);
  ASSERT_EQ(R.S, Status::Ok);
  ASSERT_TRUE(S.drain(Err)) << Err;

  // The socket is unlinked; a late client gets a connect error rather
  // than a hang.
  Request Q;
  Q.Source = SimpleSrc;
  Q.OptsBits = DefaultBits;
  Response Late;
  EXPECT_FALSE(call(S.socketPath(), Q, Late, Err));
}
