//===- tests/corpus_test.cpp - Regression corpus golden tests ----------------===//
//
// Every `.biv` file under tests/corpus/ is (a) run through the differential
// oracle, which must come back clean, and (b) analyzed and diffed against
// its `.expect` golden report.  Minimized fuzzer finds land here as
// one-file-plus-golden PRs.
//
// Regenerate goldens after an intentional classifier change with:
//   BIV_UPDATE_EXPECT=1 ./corpus_test
//
//===----------------------------------------------------------------------===//

#include "driver/BatchAnalyzer.h"
#include "fuzz/Oracle.h"
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using namespace biv;

namespace {

std::string slurp(const fs::path &P) {
  std::ifstream In(P);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<fs::path> corpusFiles() {
  std::vector<fs::path> Files;
  for (const auto &E : fs::directory_iterator(BIV_CORPUS_DIR))
    if (E.path().extension() == ".biv")
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string analyzeReport(const std::string &Name, const std::string &Text) {
  driver::BatchOptions BO;
  BO.Jobs = 1;
  BO.Report.AllValues = true;
  driver::BatchResult R = driver::analyzeBatch({{Name, Text}}, BO);
  std::string Out;
  for (const driver::UnitResult &U : R.Units) {
    for (const std::string &E : U.Errors)
      Out += "error: " + E + "\n";
    Out += U.ReportText;
  }
  return Out;
}

} // namespace

TEST(CorpusTest, DirectoryIsNotEmpty) {
  EXPECT_FALSE(corpusFiles().empty())
      << "no .biv files under " << BIV_CORPUS_DIR;
}

TEST(CorpusTest, OracleCleanOnEveryProgram) {
  for (const fs::path &P : corpusFiles()) {
    std::string Src = slurp(P);
    fuzz::OracleResult R = fuzz::checkProgram(Src);
    EXPECT_TRUE(R.ParseOK) << P.filename();
    for (const fuzz::Mismatch &M : R.Mismatches)
      ADD_FAILURE() << P.filename().string() << ": " << M.str();
  }
}

TEST(CorpusTest, ReportsMatchGoldens) {
  const bool Update = std::getenv("BIV_UPDATE_EXPECT") != nullptr;
  for (const fs::path &P : corpusFiles()) {
    std::string Report = analyzeReport(P.stem().string(), slurp(P));
    fs::path Golden = P;
    Golden.replace_extension(".expect");
    if (Update) {
      std::ofstream Out(Golden);
      Out << Report;
      continue;
    }
    ASSERT_TRUE(fs::exists(Golden))
        << "missing golden " << Golden.filename()
        << " (run with BIV_UPDATE_EXPECT=1 to create)";
    EXPECT_EQ(Report, slurp(Golden)) << P.filename();
  }
}
