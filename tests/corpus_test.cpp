//===- tests/corpus_test.cpp - Regression corpus golden tests ----------------===//
//
// Every `.biv` file under tests/corpus/ is (a) run through the differential
// oracle, which must come back clean, and (b) analyzed and diffed against
// its `.expect` golden report.  Minimized fuzzer finds land here as
// one-file-plus-golden PRs.
//
// Regenerate goldens after an intentional classifier change with:
//   BIV_UPDATE_EXPECT=1 ./corpus_test
//
//===----------------------------------------------------------------------===//

#include "driver/BatchAnalyzer.h"
#include "fuzz/Oracle.h"
#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using namespace biv;

namespace {

std::string slurp(const fs::path &P) {
  std::ifstream In(P);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<fs::path> corpusFiles() {
  std::vector<fs::path> Files;
  for (const auto &E : fs::directory_iterator(BIV_CORPUS_DIR))
    if (E.path().extension() == ".biv")
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string analyzeReport(const std::string &Name, const std::string &Text) {
  driver::BatchOptions BO;
  BO.Jobs = 1;
  BO.Report.AllValues = true;
  BO.Summarize = true;
  driver::BatchResult R = driver::analyzeBatch({{Name, Text}}, BO);
  std::string Out;
  for (const driver::UnitResult &U : R.Units) {
    for (const std::string &E : U.Errors)
      Out += "error: " + E + "\n";
    Out += U.ReportText;
  }
  return Out;
}

} // namespace

TEST(CorpusTest, DirectoryIsNotEmpty) {
  EXPECT_FALSE(corpusFiles().empty())
      << "no .biv files under " << BIV_CORPUS_DIR;
}

TEST(CorpusTest, OracleCleanOnEveryProgram) {
  for (const fs::path &P : corpusFiles()) {
    std::string Src = slurp(P);
    fuzz::OracleOptions OO;
    OO.Summarize = true;
    fuzz::OracleResult R = fuzz::checkProgram(Src, OO);
    EXPECT_TRUE(R.ParseOK) << P.filename();
    for (const fuzz::Mismatch &M : R.Mismatches)
      ADD_FAILURE() << P.filename().string() << ": " << M.str();
  }
}

TEST(CorpusTest, ReportsMatchGoldens) {
  const bool Update = std::getenv("BIV_UPDATE_EXPECT") != nullptr;
  for (const fs::path &P : corpusFiles()) {
    std::string Report = analyzeReport(P.stem().string(), slurp(P));
    fs::path Golden = P;
    Golden.replace_extension(".expect");
    if (Update) {
      std::ofstream Out(Golden);
      Out << Report;
      continue;
    }
    ASSERT_TRUE(fs::exists(Golden))
        << "missing golden " << Golden.filename()
        << " (run with BIV_UPDATE_EXPECT=1 to create)";
    EXPECT_EQ(Report, slurp(Golden)) << P.filename();
  }
}

TEST(CorpusTest, CachedReportsMatchGoldensColdWarmAndStale) {
  // The whole corpus, three times over one on-disk cache file: a cold run
  // (every unit a miss) and a warm run (every unit a hit) must both equal
  // the committed goldens, and a salt bump must invalidate everything while
  // still reproducing the goldens from scratch.  Golden comparisons are
  // skipped while BIV_UPDATE_EXPECT regenerates them, but the cold-vs-warm
  // byte identity holds either way.
  const bool Update = std::getenv("BIV_UPDATE_EXPECT") != nullptr;

  fs::path CachePath =
      fs::path(::testing::TempDir()) / "corpus_golden.cache";
  fs::remove(CachePath);
  std::string Err;

  std::vector<driver::SourceInput> Sources;
  for (const fs::path &P : corpusFiles())
    Sources.push_back({P.stem().string(), slurp(P)});

  auto runWithCache = [&](cache::AnalysisCache &C) {
    driver::BatchOptions BO;
    BO.Jobs = 1;
    BO.Report.AllValues = true;
    BO.Summarize = true;
    BO.Cache = &C;
    return driver::analyzeBatch(Sources, BO);
  };
  auto checkGoldens = [&](const driver::BatchResult &R, const char *Pass) {
    ASSERT_EQ(R.Units.size(), Sources.size());
    if (Update)
      return;
    for (const driver::UnitResult &U : R.Units) {
      std::string Report;
      for (const std::string &E : U.Errors)
        Report += "error: " + E + "\n";
      Report += U.ReportText;
      fs::path Golden = fs::path(BIV_CORPUS_DIR) / (U.Name + ".expect");
      ASSERT_TRUE(fs::exists(Golden)) << Golden;
      EXPECT_EQ(Report, slurp(Golden)) << Pass << ": " << U.Name;
    }
  };

  // Cold: nothing on disk yet, every unit analyzed and appended.
  {
    cache::AnalysisCache C;
    ASSERT_TRUE(C.open(CachePath.string(), Err)) << Err;
    EXPECT_EQ(C.entryCount(), 0u);
    driver::BatchResult R = runWithCache(C);
    checkGoldens(R, "cold");
    ASSERT_TRUE(C.save(Err)) << Err;
  }

  // Warm: one read serves the whole corpus; reports still golden.
  {
    cache::AnalysisCache C;
    ASSERT_TRUE(C.open(CachePath.string(), Err)) << Err;
    EXPECT_FALSE(C.invalidated());
    EXPECT_GT(C.entryCount(), 0u);
    driver::BatchResult R = runWithCache(C);
    checkGoldens(R, "warm");
    EXPECT_EQ(C.pendingCount(), 0u) << "a warm corpus pass missed";
  }

  // Stale: rewrite the salt u64 at header offset 16 to the pre-c-finite
  // value, turning the file into exactly what a cache written before the
  // lattice extension looks like.  The cache discards itself and
  // re-analysis still matches.
  {
    std::fstream F(CachePath,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.is_open());
    F.seekp(16);
    uint64_t Stale = 1; // AnalysisVersionSalt before the c-finite bump
    static_assert(cache::AnalysisVersionSalt != 1,
                  "pre-extension salt must differ from the current salt");
    F.write(reinterpret_cast<const char *>(&Stale), sizeof Stale);
    ASSERT_TRUE(F.good());
  }
  {
    cache::AnalysisCache C;
    ASSERT_TRUE(C.open(CachePath.string(), Err)) << Err;
    EXPECT_TRUE(C.invalidated());
    EXPECT_EQ(C.entryCount(), 0u);
    driver::BatchResult R = runWithCache(C);
    checkGoldens(R, "stale");
    EXPECT_EQ(C.pendingCount(), Sources.size());
  }

  fs::remove(CachePath);
}
