//===- tests/deptests_unit_test.cpp - Decision procedures in isolation --------===//
//
// Drives testLinearPair/combineDimensions directly on synthetic subscripts,
// covering corners the whole-program tests reach only incidentally:
// weak-crossing patterns, unbounded loops, non-common loop terms, vector
// intersection, and the brute-force cross-check of the exact SIV test.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "dependence/DependenceTests.h"
#include "frontend/Lowering.h"
#include <gtest/gtest.h>

using namespace biv;
using namespace biv::dependence;

namespace {

/// A tiny real nest so we have Loop pointers to hang bounds on.
class DepUnitTest : public ::testing::Test {
protected:
  void SetUp() override {
    F = frontend::parseAndLowerOrDie("func f(n) {"
                                     "  for L1: i = 1 to 4 {"
                                     "    for L2: j = 1 to 4 { A[i, j] = 0; }"
                                     "  }"
                                     "  return 0;"
                                     "}");
    DT = std::make_unique<analysis::DominatorTree>(*F);
    LI = std::make_unique<analysis::LoopInfo>(*F, *DT);
    L1 = LI->byName("L1");
    L2 = LI->byName("L2");
  }

  LinearSubscript sub(int64_t C, int64_t A1 = 0, int64_t A2 = 0) {
    LinearSubscript S;
    S.Const = Affine(C);
    if (A1)
      S.Coeff[L1] = Affine(A1);
    if (A2)
      S.Coeff[L2] = Affine(A2);
    return S;
  }

  static LoopBound bound(const analysis::Loop *L, std::optional<int64_t> U) {
    LoopBound B;
    B.L = L;
    B.U = U;
    return B;
  }

  /// Brute force: does a*h - b*h' = delta have a solution in [0,U]^2, and
  /// with which directions?
  static std::pair<bool, uint8_t> brute(int64_t A, int64_t B, int64_t Delta,
                                        int64_t U) {
    bool Any = false;
    uint8_t Dirs = DirNone;
    for (int64_t H = 0; H <= U; ++H)
      for (int64_t HP = 0; HP <= U; ++HP)
        if (A * H - B * HP == Delta) {
          Any = true;
          Dirs |= H < HP ? DirLT : (H == HP ? DirEQ : DirGT);
        }
    return {Any, Dirs};
  }

  std::unique_ptr<ir::Function> F;
  std::unique_ptr<analysis::DominatorTree> DT;
  std::unique_ptr<analysis::LoopInfo> LI;
  analysis::Loop *L1 = nullptr, *L2 = nullptr;
};

} // namespace

TEST_F(DepUnitTest, WeakCrossingSIV) {
  // src = h, dst = 6 - h': collisions where h + h' = 6.  With U = 10
  // there are crossing solutions including h == h' == 3.
  std::vector<LoopBound> Common = {bound(L1, 10)};
  DependenceResult R =
      testLinearPair(sub(0, 1), sub(6, -1), Common, {});
  EXPECT_NE(R.O, DependenceResult::Outcome::Independent);
  EXPECT_EQ(R.dirsFor(L1), DirAll); // h<h', h==h', h>h' all occur
  // h + h' = 7 (odd): no equal-iteration crossing.
  DependenceResult R2 =
      testLinearPair(sub(0, 1), sub(7, -1), Common, {});
  EXPECT_EQ(R2.dirsFor(L1) & DirEQ, 0);
  // h + h' = 30: beyond 2U, no solution at all.
  DependenceResult R3 =
      testLinearPair(sub(0, 1), sub(30, -1), Common, {});
  EXPECT_EQ(R3.O, DependenceResult::Outcome::Independent);
}

TEST_F(DepUnitTest, ExactSIVMatchesBruteForce) {
  const int64_t U = 7;
  std::vector<LoopBound> Common = {bound(L1, U)};
  for (int64_t A : {-3, -1, 1, 2, 3})
    for (int64_t B : {-2, 1, 2, 4})
      for (int64_t Delta : {-9, -2, 0, 1, 3, 8}) {
        // src = A*h, dst = B*h' + Delta  ->  A*h - B*h' = Delta.
        DependenceResult R =
            testLinearPair(sub(0, A), sub(Delta, B), Common, {});
        auto [Any, Dirs] = brute(A, B, Delta, U);
        if (!Any) {
          EXPECT_EQ(R.O, DependenceResult::Outcome::Independent)
              << A << "h - " << B << "h' = " << Delta;
        } else {
          EXPECT_NE(R.O, DependenceResult::Outcome::Independent)
              << A << "h - " << B << "h' = " << Delta;
          // The reported direction set must cover reality.
          EXPECT_EQ(R.dirsFor(L1) & Dirs, Dirs)
              << A << "h - " << B << "h' = " << Delta;
        }
      }
}

TEST_F(DepUnitTest, UnboundedLoopStaysSound) {
  // No bound: src = h vs dst = h' + 5 collide when h = h' + 5, i.e. the
  // sink runs 5 iterations *before* the source: distance -5, direction (>).
  std::vector<LoopBound> Common = {bound(L1, std::nullopt)};
  DependenceResult R = testLinearPair(sub(0, 1), sub(5, 1), Common, {});
  EXPECT_NE(R.O, DependenceResult::Outcome::Independent);
  ASSERT_EQ(R.Directions.size(), 1u);
  ASSERT_TRUE(R.Directions[0].Distance.has_value());
  EXPECT_EQ(*R.Directions[0].Distance, -5);
  EXPECT_EQ(R.dirsFor(L1), DirGT);
  // Swapping the references flips the distance and direction.
  DependenceResult R2 = testLinearPair(sub(5, 1), sub(0, 1), Common, {});
  EXPECT_EQ(R2.dirsFor(L1), DirLT);
  ASSERT_TRUE(R2.Directions[0].Distance.has_value());
  EXPECT_EQ(*R2.Directions[0].Distance, 5);
}

TEST_F(DepUnitTest, NonCommonLoopTermsWidenTheEquation) {
  // Subscripts share L1 but the source also varies in (non-common) L2 with
  // bound 4: src = h1 + h2, dst = h1' + 20.  Max of h1 + h2 is 8 < 20:
  // Banerjee proves independence.
  LinearSubscript Src = sub(0, 1, 1);
  LinearSubscript Dst = sub(20, 1);
  std::vector<LoopBound> Common = {bound(L1, 4)};
  std::vector<LoopBound> NonCommon = {bound(L2, 4)};
  DependenceResult R = testLinearPair(Src, Dst, Common, NonCommon);
  EXPECT_EQ(R.O, DependenceResult::Outcome::Independent);
  // With delta reachable (8), dependence must be assumed.
  DependenceResult R2 =
      testLinearPair(Src, sub(8, 1), Common, NonCommon);
  EXPECT_NE(R2.O, DependenceResult::Outcome::Independent);
}

TEST_F(DepUnitTest, CoupledVectorsExcludeDiagonal) {
  // dim1: h1 == h1' (strong SIV distance 0); dim2: h1 + h2 == h1' + h2'.
  // Vector (=, <) would need h2 < h2' with equal sums: impossible.
  std::vector<LoopBound> Common = {bound(L1, 4), bound(L2, 4)};
  DependenceResult D1 = testLinearPair(sub(0, 1), sub(0, 1), Common, {});
  DependenceResult D2 =
      testLinearPair(sub(0, 1, 1), sub(0, 1, 1), Common, {});
  DependenceResult R = combineDimensions({D1, D2});
  EXPECT_NE(R.O, DependenceResult::Outcome::Independent);
  EXPECT_EQ(R.dirsFor(L1), DirEQ);
  EXPECT_EQ(R.dirsFor(L2), DirEQ)
      << "vector intersection must kill (=, <) and (=, >)";
}

TEST_F(DepUnitTest, ConflictingDistancesProveIndependence) {
  std::vector<LoopBound> Common = {bound(L1, 10)};
  DependenceResult D1 = testLinearPair(sub(0, 1), sub(1, 1), Common, {});
  DependenceResult D2 = testLinearPair(sub(0, 1), sub(2, 1), Common, {});
  DependenceResult R = combineDimensions({D1, D2});
  EXPECT_EQ(R.O, DependenceResult::Outcome::Independent);
}

TEST_F(DepUnitTest, IndependentClearsDirectionState) {
  // An Independent combination used to keep whatever per-loop direction
  // sets the merge had accumulated; a consumer that read Directions or
  // Vectors before checking the outcome saw stale "dependence" data.
  std::vector<LoopBound> Common = {bound(L1, 10)};
  DependenceResult D1 = testLinearPair(sub(0, 1), sub(1, 1), Common, {});
  DependenceResult D2 = testLinearPair(sub(0, 1), sub(2, 1), Common, {});
  ASSERT_NE(D1.dirsFor(L1), DirNone) << "each dimension alone is dependent";
  DependenceResult R = combineDimensions({D1, D2});
  ASSERT_EQ(R.O, DependenceResult::Outcome::Independent);
  for (const LoopDirection &D : R.Directions)
    EXPECT_EQ(D.Dirs, DirNone)
        << "Independent must clear per-loop sets, not keep stale ones";
  EXPECT_TRUE(R.Vectors.empty());

  // And projectVectors applied to an already-Independent result clears the
  // same state directly.
  DependenceResult P;
  P.O = DependenceResult::Outcome::Independent;
  LoopDirection LD;
  LD.L = L1;
  LD.Dirs = DirAll;
  P.Directions.push_back(LD);
  P.Vectors.push_back({DirLT});
  P.projectVectors();
  EXPECT_EQ(P.dirsFor(L1), DirNone);
  EXPECT_TRUE(P.Vectors.empty());
}

TEST_F(DepUnitTest, SymbolicCoefficientFallsBackSafely) {
  // Coefficient n (symbolic): never Independent without proof.
  LinearSubscript Src;
  Src.Const = Affine(0);
  Src.Coeff[L1] = Affine::symbol(F->findArgument("n"));
  LinearSubscript Dst = sub(3, 2);
  std::vector<LoopBound> Common = {bound(L1, 10)};
  DependenceResult R = testLinearPair(Src, Dst, Common, {});
  EXPECT_EQ(R.O, DependenceResult::Outcome::Maybe);
  EXPECT_EQ(R.dirsFor(L1), DirAll);
}

TEST_F(DepUnitTest, GCDWithMixedCoefficients) {
  // 6h - 4h' = 3: gcd 2 does not divide 3.
  std::vector<LoopBound> Common = {bound(L1, 100)};
  DependenceResult R = testLinearPair(sub(0, 6), sub(3, 4), Common, {});
  EXPECT_EQ(R.O, DependenceResult::Outcome::Independent);
  EXPECT_TRUE(R.Note.find("gcd") != std::string::npos ||
              R.Note.find("GCD") != std::string::npos)
      << R.Note;
}

TEST_F(DepUnitTest, DirSetRendering) {
  EXPECT_EQ(dirSetStr(DirLT), "(<)");
  EXPECT_EQ(dirSetStr(DirLT | DirEQ), "(<=)");
  EXPECT_EQ(dirSetStr(DirAll), "(*)");
  EXPECT_EQ(dirSetStr(DirNone), "()");
  EXPECT_EQ(dirSetStr(DirLT | DirGT), "(<>)");
}

TEST_F(DepUnitTest, ZIVSymbolicDifference) {
  // A[n] vs A[n]: identical symbolic constants -> dependent distance 0...
  LinearSubscript S;
  S.Const = Affine::symbol(F->findArgument("n"));
  std::vector<LoopBound> Common = {bound(L1, 5)};
  DependenceResult R = testLinearPair(S, S, Common, {});
  EXPECT_NE(R.O, DependenceResult::Outcome::Independent);
  // ...while A[n] vs A[n+1] differ by a nonzero constant: independent even
  // though n is symbolic.
  LinearSubscript S2 = S;
  S2.Const += Affine(1);
  DependenceResult R2 = testLinearPair(S, S2, Common, {});
  // Delta = 1 is numeric; no loop terms -> ZIV: distinct.
  EXPECT_EQ(R2.O, DependenceResult::Outcome::Independent);
}
