//===- tests/ivclass_edge_test.cpp - Classifier edge cases --------------------===//
//
// Situations around the boundaries of the classification lattice: negative
// and zero steps, negative geometric bases, unknown-producing operations,
// wrapped specials, report plumbing, and option behaviour.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "ivclass/Pipeline.h"
#include "ivclass/Report.h"

using namespace biv;
using namespace biv::testutil;
using ivclass::Classification;
using ivclass::IVKind;
using ivclass::MonotoneDir;

TEST(IVEdgeTest, NegativeStep) {
  Analyzed A = analyze("func f(n) {"
                       "  for L: i = n downto 1 { A[i] = i; }"
                       "  return 0;"
                       "}");
  const Classification &I = A.cls("L", "i");
  ASSERT_EQ(I.Kind, IVKind::Linear);
  EXPECT_EQ(I.Form.coeff(1), Affine(-1));
  EXPECT_EQ(I.Form.coeff(0), Affine::symbol(A.F->findArgument("n")));
}

TEST(IVEdgeTest, ZeroStepIsInvariant) {
  // x = x + 1 - 1 is an invariant recurrence: the steps cancel.  (With
  // SCCP enabled the whole variable constant-folds away instead, which is
  // equally correct; here we exercise the classifier's own path.)
  Analyzed A = analyze("func f(n) {"
                       "  x = 7;"
                       "  for L: i = 1 to n { x = x + 1 - 1; }"
                       "  return x;"
                       "}");
  const Classification &X = A.cls("L", "x");
  EXPECT_TRUE(X.isInvariant());
  EXPECT_EQ(X.Form.initialValue(), Affine(7));
}

TEST(IVEdgeTest, NegativeGeometricBase) {
  // x = -2*x: base -2 alternates sign; exact closed form.
  Analyzed A = analyze("func f(n) {"
                       "  x = 3;"
                       "  for L: i = 1 to n { x = 0 - 2 * x; }"
                       "  return x;"
                       "}");
  const Classification &X = A.cls("L", "x");
  ASSERT_EQ(X.Kind, IVKind::Geometric);
  auto It = X.Form.geoTerms().find(-2);
  ASSERT_TRUE(It != X.Form.geoTerms().end());
  EXPECT_EQ(X.Form.geoCoeff(-2), Affine(3));
  interp::ExecutionTrace T = interp::run(*A.F, {10});
  ASSERT_TRUE(T.ok());
  expectFormMatchesTrace(X, A.phi("L", "x"), T);
}

TEST(IVEdgeTest, DivisionBreaksClassification) {
  Analyzed A = analyze("func f(n) {"
                       "  x = 1000;"
                       "  for L: i = 1 to n { x = x / 2; }"
                       "  return x;"
                       "}");
  // Integer halving is not representable: must degrade, not mis-classify.
  const Classification &X = A.cls("L", "x");
  EXPECT_FALSE(X.hasClosedForm());
}

TEST(IVEdgeTest, DataDependentUpdateIsUnknown) {
  Analyzed A = analyze("func f(n) {"
                       "  x = 0;"
                       "  for L: i = 1 to n { x = x + A[i]; }"
                       "  return x;"
                       "}");
  EXPECT_EQ(A.cls("L", "x").Kind, IVKind::Unknown);
}

TEST(IVEdgeTest, MonotonicWithPolynomialIncrement) {
  // Conditionally adding the (positive) counter: still monotonic.
  Analyzed A = analyze("func f(n) {"
                       "  x = 0;"
                       "  for L: i = 1 to n {"
                       "    if (A[i] > 0) { x = x + i; }"
                       "  }"
                       "  return x;"
                       "}");
  const Classification &X = A.cls("L", "x");
  ASSERT_EQ(X.Kind, IVKind::Monotonic);
  EXPECT_EQ(X.Dir, MonotoneDir::Increasing);
  EXPECT_FALSE(X.Strict);
}

TEST(IVEdgeTest, OppositeSignIncrementsUnknown) {
  Analyzed A = analyze("func f(n) {"
                       "  x = 0;"
                       "  for L: i = 1 to n {"
                       "    if (A[i] > 0) { x = x + 1; } else { x = x - 1; }"
                       "  }"
                       "  return x;"
                       "}");
  EXPECT_EQ(A.cls("L", "x").Kind, IVKind::Unknown);
}

TEST(IVEdgeTest, WrapAroundOfMonotonic) {
  // prev trails a monotonic variable: wrap-around with monotonic inner.
  Analyzed A = analyze("func f(n) {"
                       "  k = 0; prev = 99;"
                       "  for L: i = 1 to n {"
                       "    A[prev] = i;"
                       "    prev = k;"
                       "    if (B[i] > 0) { k = k + 1; }"
                       "  }"
                       "  return k;"
                       "}");
  const Classification &P = A.cls("L", "prev");
  ASSERT_EQ(P.Kind, IVKind::WrapAround);
  ASSERT_TRUE(P.Inner);
  EXPECT_EQ(P.Inner->Kind, IVKind::Monotonic);
}

TEST(IVEdgeTest, PeriodicWithSymbolicInits) {
  // Rotation of argument values: still a periodic family (ring symbolic).
  Analyzed A = analyze("func f(n, a, b) {"
                       "  p = a; q = b; t = 0;"
                       "  for L: i = 1 to n {"
                       "    t = p; p = q; q = t;"
                       "  }"
                       "  return p;"
                       "}");
  const Classification &P = A.cls("L", "p");
  ASSERT_EQ(P.Kind, IVKind::Periodic);
  EXPECT_EQ(P.Period, 2u);
  // Ring entries are the (symbolic) arguments.
  EXPECT_FALSE(P.RingInits[0].isConstant());
}

TEST(IVEdgeTest, InfiniteLoopHasUnknownTripCount) {
  // A loop whose only exit is the function return inside it... our language
  // has no such construct; a counter-free `loop` with an unreachable break
  // condition reports Infinite.
  Analyzed A = analyze("func f() {"
                       "  x = 1;"
                       "  loop L {"
                       "    x = x + 1;"
                       "    if (x < 0) break;" // never (x grows)
                       "  }"
                       "  return x;"
                       "}");
  EXPECT_EQ(A.IA->tripCount(A.loop("L")).K,
            ivclass::TripCountInfo::Kind::Infinite);
}

TEST(IVEdgeTest, EqualityExitLoop) {
  // stay while i != n: countable when the step divides the distance.
  Analyzed A = analyze("func f() {"
                       "  i = 0;"
                       "  loop L {"
                       "    i = i + 2;"
                       "    if (i == 10) break;"
                       "  }"
                       "  return i;"
                       "}");
  const ivclass::TripCountInfo &TC = A.IA->tripCount(A.loop("L"));
  ASSERT_EQ(TC.K, ivclass::TripCountInfo::Kind::Finite);
  EXPECT_EQ(TC.Count, Affine(4)); // stays at h=0..3, exits when i==10
  interp::ExecutionTrace T = interp::run(*A.F, {});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 10);
}

TEST(IVEdgeTest, EqualityExitNonDivisibleIsInfinite) {
  Analyzed A = analyze("func f() {"
                       "  i = 0;"
                       "  loop L {"
                       "    i = i + 2;"
                       "    if (i == 9) break;" // parity never matches
                       "    if (i > 100) break;"
                       "  }"
                       "  return i;"
                       "}");
  // Multi-exit: the equality exit never fires; only a max trip count.
  const ivclass::TripCountInfo &TC = A.IA->tripCount(A.loop("L"));
  EXPECT_TRUE(TC.K == ivclass::TripCountInfo::Kind::Unknown ||
              TC.K == ivclass::TripCountInfo::Kind::Finite);
  interp::ExecutionTrace T = interp::run(*A.F, {});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 102);
}

TEST(IVEdgeTest, ReportAndCountsPlumbing) {
  ivclass::AnalyzedProgram P = ivclass::analyzeSourceOrDie(
      "func f(n) {"
      "  j = 1; w = 9; m = 0; p = 1; q = 2; t = 0;"
      "  for L: i = 1 to n {"
      "    j = j + i;"
      "    t = p; p = q; q = t;"
      "    if (A[i] > 0) { m = m + 1; }"
      "    w = i;"
      "  }"
      "  return m;"
      "}");
  ivclass::KindCounts KC = ivclass::countHeaderPhiKinds(*P.IA);
  EXPECT_EQ(KC.Linear, 1u);     // i
  EXPECT_EQ(KC.Polynomial, 1u); // j
  EXPECT_EQ(KC.Periodic, 2u);   // p, q
  EXPECT_EQ(KC.Monotonic, 1u);  // m
  EXPECT_GE(KC.WrapAround, 2u); // w, t
  EXPECT_EQ(KC.Unknown, 0u);
  std::string Rep = ivclass::report(*P.IA, &P.Info);
  EXPECT_NE(Rep.find("periodic"), std::string::npos);
  EXPECT_NE(Rep.find("monotonic"), std::string::npos);
  EXPECT_NE(Rep.find("trip count"), std::string::npos);
  // All-values mode renders strictly more lines.
  ivclass::ReportOptions RO;
  RO.AllValues = true;
  EXPECT_GT(ivclass::report(*P.IA, &P.Info, RO).size(), Rep.size());
}

TEST(IVEdgeTest, PipelineErrorPath) {
  std::vector<std::string> Errors;
  EXPECT_FALSE(
      ivclass::analyzeSource("func broken( {", Errors).has_value());
  EXPECT_FALSE(Errors.empty());
}

TEST(IVEdgeTest, WhileLoopCountsAsIV) {
  Analyzed A = analyze("func f(n) {"
                       "  x = 0;"
                       "  while W: (x < n) { x = x + 3; }"
                       "  return x;"
                       "}");
  const Classification &X = A.cls("W", "x");
  ASSERT_EQ(X.Kind, IVKind::Linear);
  EXPECT_EQ(X.Form.coeff(0), Affine(0));
  EXPECT_EQ(X.Form.coeff(1), Affine(3));
}

TEST(IVEdgeTest, SelfCancellingSwapIsPeriodicPeriod2) {
  // A 2-cycle with equal inits: still periodic structurally; the
  // dependence layer (not the classifier) refuses to exploit it.
  Analyzed A = analyze("func f(n) {"
                       "  p = 5; q = 5; t = 0;"
                       "  for L: i = 1 to n { t = p; p = q; q = t; }"
                       "  return p;"
                       "}");
  const Classification &P = A.cls("L", "p");
  ASSERT_EQ(P.Kind, IVKind::Periodic);
  EXPECT_EQ(P.RingInits[0], P.RingInits[1]);
}

TEST(IVEdgeTest, StrNestedDepthCap) {
  // Depth-limited nested printing terminates on deep chains.
  Analyzed A = analyze("func deep(n) {"
                       "  k = 0;"
                       "  for L1: a = 1 to 2 {"
                       "    for L2: b = 1 to 2 {"
                       "      for L3: c = 1 to 2 {"
                       "        for L4: d = 1 to 2 {"
                       "          for L5: e = 1 to 2 { k = k + 1; }"
                       "        }"
                       "      }"
                       "    }"
                       "  }"
                       "  return k;"
                       "}");
  ir::Instruction *K = A.phi("L5", "k");
  ASSERT_NE(K, nullptr);
  std::string S = A.IA->strNested(A.IA->classify(K, A.loop("L5")), 2);
  EXPECT_FALSE(S.empty());
  // With depth 2 the innermost expansion stops at a symbol, not at L1.
  EXPECT_EQ(S.find("(L1"), std::string::npos);
}

TEST(IVEdgeTest, SubtractionOfSameIVCancels) {
  // (i + 5) - i is the invariant 5.
  Analyzed A = analyze("func f(n) {"
                       "  for L: i = 1 to n { A[(i + 5) - i] = i; }"
                       "  return 0;"
                       "}");
  analysis::Loop *L = A.loop("L");
  const ir::Instruction *Store = nullptr;
  for (ir::BasicBlock *BB : L->blocks())
    for (const auto &I : *BB)
      if (I->opcode() == ir::Opcode::ArrayStore)
        Store = I;
  const Classification &C = A.clsOf(Store->operand(1), "L");
  ASSERT_TRUE(C.isInvariant());
  EXPECT_EQ(C.Form.initialValue(), Affine(5));
}

TEST(IVEdgeTest, HighOrderPolynomialSurvivesWideIntermediates) {
  // A degree-7 difference chain with a 1e10 base step: solving its
  // Vandermonde system goes through determinant products past 2^32 and
  // value/coefficient products past 2^63.  The 128-bit-then-reduce rational
  // arithmetic must deliver the exact (fractional-coefficient) closed form;
  // the old 64-bit intermediates silently wrapped here.
  Analyzed A = analyze("func f(n) {"
                       "  x1 = 0; x2 = 0; x3 = 0; x4 = 0;"
                       "  x5 = 0; x6 = 0; x7 = 0;"
                       "  for L: i = 1 to n {"
                       "    x1 = x1 + 10000000000;"
                       "    x2 = x2 + x1;"
                       "    x3 = x3 + x2;"
                       "    x4 = x4 + x3;"
                       "    x5 = x5 + x4;"
                       "    x6 = x6 + x5;"
                       "    x7 = x7 + x6;"
                       "  }"
                       "  return x7;"
                       "}");
  const Classification &X7 = A.cls("L", "x7");
  ASSERT_EQ(X7.Kind, IVKind::Polynomial);
  // Oracle: the closed form must reproduce execution exactly, values up to
  // ~1e14 at n=10.
  interp::ExecutionTrace T = interp::run(*A.F, {10});
  ASSERT_TRUE(T.ok()) << T.Error;
  expectFormMatchesTrace(X7, A.phi("L", "x7"), T);
}

TEST(IVEdgeTest, UnrepresentableCoefficientsDegradeNotWrap) {
  // x accumulates i*i where i steps by 1e10: the squared-step coefficient
  // (1e20) does not fit any int64 rational.  The only sound answers are a
  // weaker class or unknown -- never a wrapped "closed form".  The linear
  // IV itself is unaffected.
  Analyzed A = analyze("func f(n) {"
                       "  x = 0;"
                       "  for L: i = 0 to n by 10000000000 {"
                       "    x = x + i * i;"
                       "  }"
                       "  return x;"
                       "}");
  const Classification &I = A.cls("L", "i");
  ASSERT_EQ(I.Kind, IVKind::Linear);
  EXPECT_EQ(I.Form.coeff(1), Affine(10000000000LL));

  const Classification &X = A.cls("L", "x");
  EXPECT_NE(X.Kind, IVKind::Polynomial);
  EXPECT_FALSE(X.hasClosedForm())
      << "overflowed coefficients must not masquerade as a closed form";
}
