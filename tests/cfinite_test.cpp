//===- tests/cfinite_test.cpp - C-finite recurrence lattice extension ---------===//
//
// Coverage for the extension beyond the paper's fixed shapes: scalar
// recurrences x' = c*x + p(h) with exponential-polynomial solutions
// (including the resonant h*c^h case), coupled constant-coefficient
// systems over RatMatrix, graceful rejection of unrepresentable spectra,
// RationalOverflow degradation to "no claim", and partial closed forms
// projected out of unsolvable regions.  Every claimed form is re-verified
// value-by-value against either direct iteration or the interpreter.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "fuzz/Oracle.h"
#include "ivclass/RecurrenceSolver.h"
#include <gtest/gtest.h>

using namespace biv;
using namespace biv::ivclass;
using namespace biv::testutil;

//===----------------------------------------------------------------------===//
// Scalar solver: x(h+1) = A*x(h) + B(h)
//===----------------------------------------------------------------------===//

TEST(CFiniteSolverTest, GeometricWithQuadraticForcing) {
  // x' = 2x + h^2, x(0) = 1: mixes a 2^h carry with a polynomial drive.
  ClosedForm B = ClosedForm::make({Affine(0), Affine(0), Affine(1)});
  std::optional<ClosedForm> F =
      solveLinearRecurrence(Rational(2), B, Affine(1));
  ASSERT_TRUE(F.has_value());
  EXPECT_TRUE(F->hasExponential());
  EXPECT_FALSE(F->hasPolyExponential()); // no resonance: constant 2^h coeff
  int64_t X = 1;
  for (int64_t H = 0; H <= 14; ++H) {
    EXPECT_EQ(F->evaluateAt(unsigned(H)), Affine(X)) << "h=" << H;
    X = 2 * X + H * H;
  }
}

TEST(CFiniteSolverTest, ResonantForcingNeedsPolynomialCoefficient) {
  // x' = 3x + h*3^h: the forcing sits on the eigenvalue, so the solution
  // escalates to an h^2*3^h term -- outside the paper's lattice.
  ClosedForm B = ClosedForm::makeExp({}, {{3, {Affine(0), Affine(1)}}});
  std::optional<ClosedForm> F =
      solveLinearRecurrence(Rational(3), B, Affine(1));
  ASSERT_TRUE(F.has_value());
  EXPECT_TRUE(F->hasPolyExponential());
  EXPECT_NE(F->geoCoeff(3, 2), Affine(0));
  int64_t X = 1, Pow3 = 1;
  for (int64_t H = 0; H <= 10; ++H) {
    EXPECT_EQ(F->evaluateAt(unsigned(H)), Affine(X)) << "h=" << H;
    X = 3 * X + H * Pow3;
    Pow3 *= 3;
  }
}

TEST(CFiniteSolverTest, AccumulatorGainsOneDegree) {
  // A == 1 control: x' = x + h is the classic triangular sum.
  ClosedForm B = ClosedForm::linear(Affine(0), Affine(1));
  std::optional<ClosedForm> F =
      solveLinearRecurrence(Rational(1), B, Affine(5));
  ASSERT_TRUE(F.has_value());
  EXPECT_TRUE(F->isPolynomial());
  EXPECT_EQ(F->degree(), 2u);
  int64_t X = 5;
  for (int64_t H = 0; H <= 12; ++H) {
    EXPECT_EQ(F->evaluateAt(unsigned(H)), Affine(X)) << "h=" << H;
    X = X + H;
  }
}

TEST(CFiniteSolverTest, ZeroCoefficientIsAShiftedForcing) {
  // x' = 0*x + (5 + h): x(h) = 4 + h for h >= 1.  The full closed form
  // exists only when the initial value happens to sit on that line; any
  // other init must be refused (the caller then models it as wrap-around).
  ClosedForm B = ClosedForm::linear(Affine(5), Affine(1));
  std::optional<ClosedForm> OnLine =
      solveLinearRecurrence(Rational(0), B, Affine(4));
  ASSERT_TRUE(OnLine.has_value());
  EXPECT_EQ(*OnLine, ClosedForm::linear(Affine(4), Affine(1)));
  EXPECT_FALSE(
      solveLinearRecurrence(Rational(0), B, Affine(99)).has_value());
}

TEST(CFiniteSolverTest, NonIntegerCoefficientRejected) {
  EXPECT_FALSE(solveLinearRecurrence(Rational(1, 2), ClosedForm(), Affine(8))
                   .has_value());
}

TEST(CFiniteSolverTest, TooManyUnknownsRejected) {
  // Degree-16 forcing next to a geometric carry needs 18 basis functions;
  // the solver's cap (16) must refuse rather than build a huge system.
  std::vector<Affine> Poly(17, Affine(0));
  Poly[16] = Affine(1);
  ClosedForm B = ClosedForm::make(std::move(Poly));
  EXPECT_FALSE(
      solveLinearRecurrence(Rational(2), B, Affine(0)).has_value());
}

TEST(CFiniteSolverTest, RationalOverflowDegradesToNullopt) {
  // Iterates of x' = 10^9 * x blow through 64-bit rationals within two
  // steps; the wrapper must swallow RationalOverflow and return nullopt
  // instead of propagating or fabricating a form.
  EXPECT_FALSE(solveLinearRecurrence(Rational(1000000000), ClosedForm(),
                                     Affine(1000000000))
                   .has_value());
}

//===----------------------------------------------------------------------===//
// Coupled systems: X(h+1) = M*X(h) + B(h)
//===----------------------------------------------------------------------===//

namespace {

/// Iterates the system numerically and checks every component's claimed
/// form at h = 0..Steps.
void expectSystemMatchesIteration(
    const RatMatrix &M, const std::vector<int64_t> &Forcing0,
    const std::vector<int64_t> &ForcingH, std::vector<int64_t> X,
    const std::vector<std::optional<ClosedForm>> &Sol, unsigned Steps) {
  const size_t K = X.size();
  for (unsigned H = 0; H <= Steps; ++H) {
    for (size_t I = 0; I < K; ++I)
      if (Sol[I])
        EXPECT_EQ(Sol[I]->evaluateAt(H), Affine(X[I]))
            << "component " << I << " at h=" << H;
    std::vector<int64_t> Next(K, 0);
    for (size_t I = 0; I < K; ++I) {
      Rational Acc;
      for (size_t J = 0; J < K; ++J)
        Acc += M.at(unsigned(I), unsigned(J)) * Rational(X[J]);
      ASSERT_TRUE(Acc.isInteger());
      Next[I] = Acc.getInteger() + Forcing0[I] + ForcingH[I] * int64_t(H);
    }
    X = std::move(Next);
  }
}

} // namespace

TEST(CFiniteSystemTest, CoupledEigenThreeMinusOne) {
  // u' = u + 2v, v' = 2u + v + h: eigenvalues {3, -1} plus a linear
  // particular term from the forcing.
  RatMatrix M(2, 2);
  M.at(0, 0) = Rational(1);
  M.at(0, 1) = Rational(2);
  M.at(1, 0) = Rational(2);
  M.at(1, 1) = Rational(1);
  std::vector<ClosedForm> B = {ClosedForm(),
                               ClosedForm::linear(Affine(0), Affine(1))};
  auto Sol = solveLinearSystem(M, B, {Affine(1), Affine(0)});
  ASSERT_EQ(Sol.size(), 2u);
  ASSERT_TRUE(Sol[0].has_value());
  ASSERT_TRUE(Sol[1].has_value());
  EXPECT_NE(Sol[0]->geoCoeff(3), Affine(0));
  EXPECT_NE(Sol[0]->geoCoeff(-1), Affine(0));
  expectSystemMatchesIteration(M, {0, 0}, {0, 1}, {1, 0}, Sol, 10);
}

TEST(CFiniteSystemTest, RepeatedEigenvalueEscalates) {
  // Jordan-style pair x0' = 2x0 + x1, x1' = 2x1: the repeated eigenvalue
  // 2 forces an h*2^h term in x0.
  RatMatrix M(2, 2);
  M.at(0, 0) = Rational(2);
  M.at(0, 1) = Rational(1);
  M.at(1, 1) = Rational(2);
  auto Sol = solveLinearSystem(M, {ClosedForm(), ClosedForm()},
                               {Affine(1), Affine(1)});
  ASSERT_EQ(Sol.size(), 2u);
  ASSERT_TRUE(Sol[0].has_value());
  ASSERT_TRUE(Sol[1].has_value());
  EXPECT_TRUE(Sol[0]->hasPolyExponential());
  expectSystemMatchesIteration(M, {0, 0}, {0, 0}, {1, 1}, Sol, 12);
}

TEST(CFiniteSystemTest, IrrationalSpectrumRejected) {
  // Fibonacci companion matrix: eigenvalues (1 +- sqrt(5))/2 are not
  // integers, so no component is representable.
  RatMatrix M(2, 2);
  M.at(0, 0) = Rational(1);
  M.at(0, 1) = Rational(1);
  M.at(1, 0) = Rational(1);
  auto Sol = solveLinearSystem(M, {ClosedForm(), ClosedForm()},
                               {Affine(1), Affine(0)});
  ASSERT_EQ(Sol.size(), 2u);
  EXPECT_FALSE(Sol[0].has_value());
  EXPECT_FALSE(Sol[1].has_value());
}

TEST(CFiniteSystemTest, ZeroEigenvalueRejected) {
  // Nilpotent shift: characteristic polynomial h^2 has the zero root the
  // exponential-polynomial basis cannot express (0^h at h=0).
  RatMatrix M(2, 2);
  M.at(0, 1) = Rational(1);
  auto Sol = solveLinearSystem(M, {ClosedForm(), ClosedForm()},
                               {Affine(5), Affine(7)});
  ASSERT_EQ(Sol.size(), 2u);
  EXPECT_FALSE(Sol[0].has_value());
  EXPECT_FALSE(Sol[1].has_value());
}

TEST(CFiniteSystemTest, OversizeSystemRejected) {
  RatMatrix M = RatMatrix::identity(5);
  auto Sol = solveLinearSystem(
      M, std::vector<ClosedForm>(5),
      std::vector<Affine>(5, Affine(1)));
  ASSERT_EQ(Sol.size(), 5u);
  for (const auto &S : Sol)
    EXPECT_FALSE(S.has_value());
}

//===----------------------------------------------------------------------===//
// Full pipeline: classification + interpreter cross-check
//===----------------------------------------------------------------------===//

TEST(CFinitePipelineTest, MixedUpdateMatchesExecution) {
  Analyzed A = analyze("func f(n) {\n"
                       " x = 1;\n"
                       " for L1: i = 0 to n {\n"
                       " x = 2*x + i^2;\n"
                       " }\n"
                       " return x;\n"
                       "}");
  const ivclass::Classification &C = A.cls("L1", "x");
  ASSERT_TRUE(C.hasClosedForm());
  EXPECT_EQ(C.Kind, ivclass::IVKind::Geometric);
  interp::ExecutionTrace T = interp::run(*A.F, {10});
  expectFormMatchesTrace(C, A.phi("L1", "x"), T);
}

TEST(CFinitePipelineTest, ResonantPairIsCFiniteKind) {
  Analyzed A = analyze("func f(n) {\n"
                       " c0 = 1;\n"
                       " c1 = 0;\n"
                       " for L1: i = 0 to n {\n"
                       " c0 = c0 * 2;\n"
                       " c1 = 2*c1 + c0;\n"
                       " }\n"
                       " return c1;\n"
                       "}");
  const ivclass::Classification &C = A.cls("L1", "c1");
  ASSERT_TRUE(C.hasClosedForm());
  EXPECT_EQ(C.Kind, ivclass::IVKind::CFinite);
  EXPECT_TRUE(C.Form.hasPolyExponential());
  EXPECT_EQ(A.tuple("L1", "c1"), "(L1, h*2^h)");
  interp::ExecutionTrace T = interp::run(*A.F, {12});
  expectFormMatchesTrace(C, A.phi("L1", "c1"), T);
}

TEST(CFinitePipelineTest, CoupledSystemMatchesExecution) {
  Analyzed A = analyze("func f(n) {\n"
                       " u = 1;\n"
                       " v = 0;\n"
                       " for L1: i = 0 to n {\n"
                       " t = u + 2*v;\n"
                       " v = 2*u + v + i;\n"
                       " u = t;\n"
                       " }\n"
                       " return u + v;\n"
                       "}");
  interp::ExecutionTrace T = interp::run(*A.F, {8});
  for (const char *Var : {"u", "v"}) {
    const ivclass::Classification &C = A.cls("L1", Var);
    ASSERT_TRUE(C.hasClosedForm()) << Var;
    EXPECT_FALSE(C.Partial) << Var;
    expectFormMatchesTrace(C, A.phi("L1", Var), T);
  }
}

TEST(CFinitePipelineTest, UnsolvableSCCProjectsPartialMembers) {
  Analyzed A = analyze("func f(n) {\n"
                       " px = 1;\n"
                       " ps = 0;\n"
                       " for L1: i = 0 to n {\n"
                       " pt = px + i;\n"
                       " pm = pt - px;\n"
                       " px = px * px + pm;\n"
                       " ps = ps + pm;\n"
                       " }\n"
                       " return ps;\n"
                       "}");
  // px itself stays unsolved...
  EXPECT_FALSE(A.cls("L1", "px").hasClosedForm());
  // ...but its member pm projects out exactly (partial, order-1 wrap), and
  // the downstream sum unlocks as a plain exact polynomial.
  EXPECT_EQ(A.tuple("L1", "pm"),
            "wrap-around(L1, order 1, partial (L1, 0, 1))");
  const ivclass::Classification &PS = A.cls("L1", "ps");
  ASSERT_TRUE(PS.hasClosedForm());
  EXPECT_FALSE(PS.Partial);
  EXPECT_EQ(PS.Kind, ivclass::IVKind::Polynomial);
  interp::ExecutionTrace T = interp::run(*A.F, {6});
  expectFormMatchesTrace(PS, A.phi("L1", "ps"), T);
}

TEST(CFinitePipelineTest, OverflowingSolveDegradesToUnknown) {
  // 10^9 growth overflows the solver's rational iterates; the variable
  // must end up with no closed-form claim (monotonic at best), never a
  // wrong form and never a crash.
  Analyzed A = analyze("func f(n) {\n"
                       " x = 1000000000;\n"
                       " for L1: i = 0 to n {\n"
                       " x = 1000000000*x + 1;\n"
                       " }\n"
                       " return x;\n"
                       "}");
  EXPECT_FALSE(A.cls("L1", "x").hasClosedForm());
}

//===----------------------------------------------------------------------===//
// Oracle under int64 wrap
//===----------------------------------------------------------------------===//

TEST(CFiniteOracleTest, WrappingExecutionSkipsClaimsCleanly) {
  // At n = 80 the 2^h terms wrap int64 during execution and overflow the
  // solver's rationals during claim evaluation; both paths must degrade to
  // "claim not checked" -- zero mismatches -- rather than comparing a
  // wrapped trace against a mathematical form.
  const char *Src = "func f(n) {\n"
                    " c0 = 1;\n"
                    " c1 = 0;\n"
                    " for L1: i = 0 to n {\n"
                    " c0 = c0 * 2;\n"
                    " c1 = 2*c1 + c0;\n"
                    " }\n"
                    " return c1;\n"
                    "}";
  for (int64_t N : {10, 40, 80}) {
    fuzz::OracleOptions OO;
    OO.Args = {N};
    fuzz::OracleResult R = fuzz::checkProgram(Src, OO);
    EXPECT_TRUE(R.ParseOK);
    for (const fuzz::Mismatch &M : R.Mismatches)
      ADD_FAILURE() << "n=" << N << ": " << M.str();
    if (N == 10)
      EXPECT_GT(R.Checks.CFinite, 0u); // small n: claims actually checked
  }
}
