//===- tests/ivclass_test.cpp - The paper's figures, sections 2-4 -------------===//
//
// Experiments E1-E6 of DESIGN.md: every classification example in sections
// 2 through 4 of the paper, checked both against the tuples the paper
// states and against the interpreter oracle (the closed form must reproduce
// the observed execution).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace biv;
using namespace biv::testutil;
using ivclass::Classification;
using ivclass::IVKind;
using ivclass::MonotoneDir;

//===----------------------------------------------------------------------===//
// E1: basic and mutual linear induction variables (section 2, Figure 1)
//===----------------------------------------------------------------------===//

TEST(IVClassTest, BasicLinearL1) {
  // i = i0; loop L1: i = i + k.
  Analyzed A = analyze("func l1(i0, k, n) {"
                       "  i = i0;"
                       "  loop L1 {"
                       "    i = i + k;"
                       "    if (i > n) break;"
                       "  }"
                       "  return i;"
                       "}");
  // Header phi: (L1, i0, k).
  const Classification &Phi = A.cls("L1", "i");
  ASSERT_EQ(Phi.Kind, IVKind::Linear);
  const ir::Value *I0 = A.F->findArgument("i0");
  const ir::Value *K = A.F->findArgument("k");
  EXPECT_EQ(Phi.Form.coeff(0), Affine::symbol(I0));
  EXPECT_EQ(Phi.Form.coeff(1), Affine::symbol(K));
  // The incremented value: the paper's (L1, i0+k, k).
  const Classification &Inc = A.clsOf(A.carried("L1", "i"), "L1");
  ASSERT_EQ(Inc.Kind, IVKind::Linear);
  EXPECT_EQ(Inc.Form.coeff(0), Affine::symbol(I0) + Affine::symbol(K));
  EXPECT_EQ(Inc.Form.coeff(1), Affine::symbol(K));
}

TEST(IVClassTest, MutualInductionL2) {
  // j = n; loop L2: i = j + c; j = i + k  (both linear, step c+k).
  Analyzed A = analyze("func l2(n, c, k) {"
                       "  j = n;"
                       "  i = 0;"
                       "  loop L2 {"
                       "    i = j + c;"
                       "    j = i + k;"
                       "    if (i > 100) break;"
                       "  }"
                       "  return j;"
                       "}");
  const ir::Value *N = A.F->findArgument("n");
  const ir::Value *C = A.F->findArgument("c");
  const ir::Value *K = A.F->findArgument("k");
  Affine Step = Affine::symbol(C) + Affine::symbol(K);

  // j2 = (L2, n, c+k), as in Figure 1.
  const Classification &J = A.cls("L2", "j");
  ASSERT_EQ(J.Kind, IVKind::Linear);
  EXPECT_EQ(J.Form.coeff(0), Affine::symbol(N));
  EXPECT_EQ(J.Form.coeff(1), Step);

  // i3 = (L2, n+c, c+k) and j3 = (L2, n+c+k, c+k).
  const Classification &I3 = A.clsOf(A.carried("L2", "i"), "L2");
  ASSERT_EQ(I3.Kind, IVKind::Linear);
  EXPECT_EQ(I3.Form.coeff(0), Affine::symbol(N) + Affine::symbol(C));
  EXPECT_EQ(I3.Form.coeff(1), Step);
  const Classification &J3 = A.clsOf(A.carried("L2", "j"), "L2");
  ASSERT_EQ(J3.Kind, IVKind::Linear);
  EXPECT_EQ(J3.Form.coeff(0), Affine::symbol(N) + Step);
  EXPECT_EQ(J3.Form.coeff(1), Step);
}

TEST(IVClassTest, Figure1OracleCheck) {
  Analyzed A = analyze("func l7(n, c, k) {"
                       "  j = n;"
                       "  i = 0;"
                       "  loop L7 {"
                       "    i = j + c;"
                       "    j = i + k;"
                       "    if (i > 40) break;"
                       "  }"
                       "  return j;"
                       "}");
  interp::ExecutionTrace T = interp::run(*A.F, {3, 2, 5});
  ASSERT_TRUE(T.ok()) << T.Error;
  std::map<const ir::Value *, int64_t> Syms = {
      {A.F->findArgument("n"), 3},
      {A.F->findArgument("c"), 2},
      {A.F->findArgument("k"), 5}};
  expectFormMatchesTrace(A.cls("L7", "j"), A.phi("L7", "j"), T, Syms);
  expectFormMatchesTrace(A.clsOf(A.carried("L7", "i"), "L7"),
                         A.carried("L7", "i"), T, Syms);
  expectFormMatchesTrace(A.clsOf(A.carried("L7", "j"), "L7"),
                         A.carried("L7", "j"), T, Syms);
}

//===----------------------------------------------------------------------===//
// E2: equal increments on both branches (Figure 3, loop L8)
//===----------------------------------------------------------------------===//

TEST(IVClassTest, Figure3BranchesWithEqualIncrements) {
  Analyzed A = analyze("func l8(x, n) {"
                       "  i = 1;"
                       "  loop L8 {"
                       "    if (x > 0) { i = i + 2; } else { i = i + 2; }"
                       "    if (i > n) break;"
                       "  }"
                       "  return i;"
                       "}");
  // i2 = (L8, 1, 2): still a linear IV despite the control flow.
  const Classification &I2 = A.cls("L8", "i");
  ASSERT_EQ(I2.Kind, IVKind::Linear);
  EXPECT_EQ(I2.Form.coeff(0), Affine(1));
  EXPECT_EQ(I2.Form.coeff(1), Affine(2));
  // The join phi (i5 in the figure) is (L8, 3, 2).
  const Classification &I5 = A.clsOf(A.carried("L8", "i"), "L8");
  ASSERT_EQ(I5.Kind, IVKind::Linear);
  EXPECT_EQ(I5.Form.coeff(0), Affine(3));
  EXPECT_EQ(I5.Form.coeff(1), Affine(2));
}

TEST(IVClassTest, UnequalIncrementsAreNotLinear) {
  // Same shape, but +1 / +2: the figure-6 situation -> monotonic.
  Analyzed A = analyze("func l16(x, n) {"
                       "  k = 0;"
                       "  loop L16 {"
                       "    if (x > 0) { k = k + 1; } else { k = k + 2; }"
                       "    if (k > n) break;"
                       "  }"
                       "  return k;"
                       "}");
  const Classification &K = A.cls("L16", "k");
  ASSERT_EQ(K.Kind, IVKind::Monotonic);
  EXPECT_EQ(K.Dir, MonotoneDir::Increasing);
  EXPECT_TRUE(K.Strict) << "incremented on every path -> strictly monotonic";
}

//===----------------------------------------------------------------------===//
// E3: wrap-around variables (Figure 4, loop L10)
//===----------------------------------------------------------------------===//

TEST(IVClassTest, Figure4WrapAround) {
  Analyzed A = analyze("func l10(n) {"
                       "  i = 1; j = 9; k = 9;"
                       "  loop L10 {"
                       "    k = j;"
                       "    j = i;"
                       "    i = i + 1;"
                       "    if (i > n) break;"
                       "  }"
                       "  return k;"
                       "}");
  // i2 = (L10, 1, 1).
  const Classification &I = A.cls("L10", "i");
  ASSERT_EQ(I.Kind, IVKind::Linear);
  EXPECT_EQ(I.Form.coeff(0), Affine(1));
  EXPECT_EQ(I.Form.coeff(1), Affine(1));
  // j2: first-order wrap-around of a linear IV.
  const Classification &J = A.cls("L10", "j");
  ASSERT_EQ(J.Kind, IVKind::WrapAround);
  EXPECT_EQ(J.WrapOrder, 1u);
  ASSERT_TRUE(J.Inner);
  EXPECT_EQ(J.Inner->Kind, IVKind::Linear);
  // k2: second-order wrap-around.
  const Classification &K = A.cls("L10", "k");
  ASSERT_EQ(K.Kind, IVKind::WrapAround);
  EXPECT_EQ(K.WrapOrder, 2u);
}

TEST(IVClassTest, WrapAroundCollapsesWhenInitFits) {
  // Paper, end of 4.1: if the initial value of j had been 0 (= i - 1 on the
  // first iteration), j is the plain induction variable (L10, 0, 1).
  Analyzed A = analyze("func l10b(n) {"
                       "  i = 1; j = 0;"
                       "  loop L10 {"
                       "    j = i;"
                       "    i = i + 1;"
                       "    if (i > n) break;"
                       "  }"
                       "  return j;"
                       "}");
  const Classification &J = A.cls("L10", "j");
  ASSERT_EQ(J.Kind, IVKind::Linear);
  EXPECT_EQ(J.Form.coeff(0), Affine(0));
  EXPECT_EQ(J.Form.coeff(1), Affine(1));
}

TEST(IVClassTest, WrapAroundOracle) {
  // The wrap-around's inner sequence must match execution after the first
  // iteration: j(h) = i(h-1) = h for h >= 1.
  Analyzed A = analyze("func l10c(n) {"
                       "  i = 1; j = 99;"
                       "  loop L10 {"
                       "    j = i;"
                       "    i = i + 1;"
                       "    if (i > n) break;"
                       "  }"
                       "  return j;"
                       "}");
  const Classification &J = A.cls("L10", "j");
  ASSERT_EQ(J.Kind, IVKind::WrapAround);
  ASSERT_TRUE(J.Inner && J.Inner->hasClosedForm());
  interp::ExecutionTrace T = interp::run(*A.F, {8});
  ASSERT_TRUE(T.ok()) << T.Error;
  const std::vector<int64_t> &Seq = T.sequenceOf(A.phi("L10", "j"));
  ASSERT_GE(Seq.size(), 3u);
  EXPECT_EQ(Seq[0], 99); // the wrapped first value
  // After WrapOrder iterations the inner closed form holds; the inner form
  // is the carried value's sequence shifted by one.
  for (size_t H = J.WrapOrder; H < Seq.size(); ++H) {
    Affine V = J.Inner->Form.evaluateAt(H - 1);
    ASSERT_TRUE(V.getConstant().has_value());
    EXPECT_EQ(V.getConstant()->getInteger(), Seq[H]) << "at h=" << H;
  }
}

//===----------------------------------------------------------------------===//
// E4: periodic and flip-flop variables (Figure 5, loops L11-L13)
//===----------------------------------------------------------------------===//

TEST(IVClassTest, Figure5PeriodicPeriod3) {
  Analyzed A = analyze("func l13(n) {"
                       "  t = 0; j = 1; k = 2; l = 3;"
                       "  for L13: iter = 1 to n {"
                       "    t = j;"
                       "    j = k;"
                       "    k = l;"
                       "    l = t;"
                       "  }"
                       "  return j;"
                       "}");
  const Classification &J = A.cls("L13", "j");
  const Classification &K = A.cls("L13", "k");
  const Classification &L = A.cls("L13", "l");
  ASSERT_EQ(J.Kind, IVKind::Periodic);
  ASSERT_EQ(K.Kind, IVKind::Periodic);
  ASSERT_EQ(L.Kind, IVKind::Periodic);
  EXPECT_EQ(J.Period, 3u);
  EXPECT_EQ(J.FamilyId, K.FamilyId);
  EXPECT_EQ(J.FamilyId, L.FamilyId);
  // Distinct phases.
  EXPECT_NE(J.Phase, K.Phase);
  EXPECT_NE(J.Phase, L.Phase);
  EXPECT_NE(K.Phase, L.Phase);
  // t2 is not in the region: it wraps the periodic family (paper: "note
  // that t2 does not appear in the strongly connected region").
  const Classification &T = A.cls("L13", "t");
  ASSERT_EQ(T.Kind, IVKind::WrapAround);
  ASSERT_TRUE(T.Inner);
  EXPECT_EQ(T.Inner->Kind, IVKind::Periodic);
}

TEST(IVClassTest, PeriodicOracle) {
  // Member at phase d must observe value Ring[(d+h) mod p] at iteration h.
  Analyzed A = analyze("func l13(n) {"
                       "  t = 0; j = 10; k = 20; l = 30;"
                       "  for L13: iter = 1 to n {"
                       "    t = j; j = k; k = l; l = t;"
                       "  }"
                       "  return j;"
                       "}");
  interp::ExecutionTrace T = interp::run(*A.F, {7});
  ASSERT_TRUE(T.ok()) << T.Error;
  for (const char *Var : {"j", "k", "l"}) {
    const Classification &C = A.cls("L13", Var);
    ASSERT_EQ(C.Kind, IVKind::Periodic) << Var;
    const std::vector<int64_t> &Seq = T.sequenceOf(A.phi("L13", Var));
    ASSERT_FALSE(Seq.empty());
    for (size_t H = 0; H < Seq.size(); ++H) {
      const Affine &Init = C.RingInits[(C.Phase + H) % C.Period];
      ASSERT_TRUE(Init.getConstant().has_value());
      EXPECT_EQ(Init.getConstant()->getInteger(), Seq[H])
          << Var << " at h=" << H;
    }
  }
}

TEST(IVClassTest, FlipFlopSwapL11) {
  // jtemp = jold; jold = j; j = jtemp: a period-2 rotation.
  Analyzed A = analyze("func l11(n) {"
                       "  j = 1; jold = 2; jtemp = 0;"
                       "  for L11: iter = 1 to n {"
                       "    jtemp = jold;"
                       "    jold = j;"
                       "    j = jtemp;"
                       "  }"
                       "  return j;"
                       "}");
  const Classification &J = A.cls("L11", "j");
  const Classification &JO = A.cls("L11", "jold");
  ASSERT_EQ(J.Kind, IVKind::Periodic);
  ASSERT_EQ(JO.Kind, IVKind::Periodic);
  EXPECT_EQ(J.Period, 2u);
  EXPECT_TRUE(J.isFlipFlop());
  EXPECT_EQ(J.FamilyId, JO.FamilyId);
  EXPECT_NE(J.Phase, JO.Phase);
}

TEST(IVClassTest, FlipFlopArithmeticL12) {
  // j = 3 - j: the paper recognizes this as geometric with base -1
  // (cumulative effect: subtract the loop-header value from an invariant).
  Analyzed A = analyze("func l12(n) {"
                       "  j = 1; jold = 2;"
                       "  for L12: iter = 1 to n {"
                       "    j = 3 - j;"
                       "    jold = 3 - jold;"
                       "  }"
                       "  return j;"
                       "}");
  const Classification &J = A.cls("L12", "j");
  ASSERT_EQ(J.Kind, IVKind::Geometric);
  EXPECT_TRUE(J.isFlipFlop());
  // j(h) = 3/2 - 1/2 * (-1)^h: alternates 1, 2, 1, 2...
  EXPECT_EQ(J.Form.coeff(0), Affine(Rational(3, 2)));
  auto It = J.Form.geoTerms().find(-1);
  ASSERT_TRUE(It != J.Form.geoTerms().end());
  EXPECT_EQ(J.Form.geoCoeff(-1), Affine(Rational(-1, 2)));
  // Oracle.
  interp::ExecutionTrace T = interp::run(*A.F, {6});
  ASSERT_TRUE(T.ok()) << T.Error;
  expectFormMatchesTrace(J, A.phi("L12", "j"), T);
}

//===----------------------------------------------------------------------===//
// E5: polynomial and geometric induction variables (section 4.3, loop L14)
//===----------------------------------------------------------------------===//

TEST(IVClassTest, LoopL14Polynomials) {
  Analyzed A = analyze("func l14(n) {"
                       "  j = 1; k = 1; l = 1; m = 0;"
                       "  for L14: i = 1 to n {"
                       "    j = j + i;"
                       "    k = k + j + 1;"
                       "    l = l * 2 + 1;"
                       "    m = 3*m + 2*i + 1;"
                       "  }"
                       "  return k;"
                       "}");
  // i = (L14, 1, 1).
  const Classification &I = A.cls("L14", "i");
  ASSERT_EQ(I.Kind, IVKind::Linear);
  EXPECT_EQ(I.Form.coeff(0), Affine(1));
  EXPECT_EQ(I.Form.coeff(1), Affine(1));

  // j's updated value follows (h^2 + 3h + 4) / 2  (the paper's table).
  const Classification &J3 = A.clsOf(A.carried("L14", "j"), "L14");
  ASSERT_EQ(J3.Kind, IVKind::Polynomial);
  EXPECT_EQ(J3.Form.coeff(0), Affine(2));
  EXPECT_EQ(J3.Form.coeff(1), Affine(Rational(3, 2)));
  EXPECT_EQ(J3.Form.coeff(2), Affine(Rational(1, 2)));

  // k's updated value follows (h^3 + 6h^2 + 23h + 24) / 6.
  const Classification &K3 = A.clsOf(A.carried("L14", "k"), "L14");
  ASSERT_EQ(K3.Kind, IVKind::Polynomial);
  EXPECT_EQ(K3.Form.coeff(0), Affine(4));
  EXPECT_EQ(K3.Form.coeff(1), Affine(Rational(23, 6)));
  EXPECT_EQ(K3.Form.coeff(2), Affine(1));
  EXPECT_EQ(K3.Form.coeff(3), Affine(Rational(1, 6)));

  // l's updated value follows 2^(h+2) - 1 (the paper's 2^{h+2} - 1).
  const Classification &L3 = A.clsOf(A.carried("L14", "l"), "L14");
  ASSERT_EQ(L3.Kind, IVKind::Geometric);
  EXPECT_EQ(L3.Form.coeff(0), Affine(-1));
  auto GIt = L3.Form.geoTerms().find(2);
  ASSERT_TRUE(GIt != L3.Form.geoTerms().end());
  EXPECT_EQ(L3.Form.geoCoeff(2), Affine(4));

  // m = 3m + 2i + 1: the paper's geometric example, 6*3^h - h - 3 for the
  // updated value; note there is no quadratic term after all.
  const Classification &M3 = A.clsOf(A.carried("L14", "m"), "L14");
  ASSERT_EQ(M3.Kind, IVKind::Geometric);
  EXPECT_EQ(M3.Form.degree(), 1u) << "no quadratic term, as the paper notes";
  EXPECT_EQ(M3.Form.coeff(0), Affine(-3));
  EXPECT_EQ(M3.Form.coeff(1), Affine(-1));
  auto MIt = M3.Form.geoTerms().find(3);
  ASSERT_TRUE(MIt != M3.Form.geoTerms().end());
  EXPECT_EQ(M3.Form.geoCoeff(3), Affine(6));
}

TEST(IVClassTest, LoopL14Oracle) {
  Analyzed A = analyze("func l14(n) {"
                       "  j = 1; k = 1; l = 1; m = 0;"
                       "  for L14: i = 1 to n {"
                       "    j = j + i;"
                       "    k = k + j + 1;"
                       "    l = l * 2 + 1;"
                       "    m = 3*m + 2*i + 1;"
                       "  }"
                       "  return k;"
                       "}");
  interp::ExecutionTrace T = interp::run(*A.F, {10});
  ASSERT_TRUE(T.ok()) << T.Error;
  for (const char *Var : {"j", "k", "l", "m"}) {
    ir::Instruction *Carried = A.carried("L14", Var);
    expectFormMatchesTrace(A.clsOf(Carried, "L14"), Carried, T);
    expectFormMatchesTrace(A.cls("L14", Var), A.phi("L14", Var), T);
  }
}

TEST(IVClassTest, PowerOperatorGeometric) {
  // p = 2^i with i = (L, 0, 1) classifies as the exponential 1*2^h.
  Analyzed A = analyze("func pw(n) {"
                       "  p = 0;"
                       "  for L1: i = 0 to n {"
                       "    p = 2 ^ i;"
                       "    A[p] = p;"
                       "  }"
                       "  return p;"
                       "}");
  // p's assignment is 2^i; find it as the stored value's class.
  analysis::Loop *L = A.loop("L1");
  const ir::Instruction *Exp = nullptr;
  for (ir::BasicBlock *BB : L->blocks())
    for (const auto &I : *BB)
      if (I->opcode() == ir::Opcode::Exp)
        Exp = I;
  ASSERT_NE(Exp, nullptr);
  const Classification &P = A.clsOf(Exp, "L1");
  ASSERT_EQ(P.Kind, IVKind::Geometric);
  auto It = P.Form.geoTerms().find(2);
  ASSERT_TRUE(It != P.Form.geoTerms().end());
  EXPECT_EQ(P.Form.geoCoeff(2), Affine(1));
  interp::ExecutionTrace T = interp::run(*A.F, {12});
  ASSERT_TRUE(T.ok()) << T.Error;
  expectFormMatchesTrace(P, Exp, T);
}

//===----------------------------------------------------------------------===//
// E6: monotonic variables (section 4.4, Figures 6 and 10)
//===----------------------------------------------------------------------===//

TEST(IVClassTest, ConditionalIncrementIsMonotonic) {
  // Loop L15's pack pattern: k incremented only when A(i) > 0.
  Analyzed A = analyze("func l15(n) {"
                       "  k = 0;"
                       "  for L15: i = 1 to n {"
                       "    if (A[i] > 0) {"
                       "      k = k + 1;"
                       "      B[k] = A[i];"
                       "    }"
                       "  }"
                       "  return k;"
                       "}");
  const Classification &K = A.cls("L15", "k");
  ASSERT_EQ(K.Kind, IVKind::Monotonic);
  EXPECT_EQ(K.Dir, MonotoneDir::Increasing);
  EXPECT_FALSE(K.Strict) << "k can stay unchanged on the else path";
}

TEST(IVClassTest, Figure6StrictlyMonotonic) {
  // +1 or +2 on every path: strictly monotonically increasing.
  Analyzed A = analyze("func l16(n) {"
                       "  k = 0;"
                       "  for L16: i = 1 to n {"
                       "    if (A[i] > 0) { k = k + 1; } else { k = k + 2; }"
                       "  }"
                       "  return k;"
                       "}");
  const Classification &K = A.cls("L16", "k");
  ASSERT_EQ(K.Kind, IVKind::Monotonic);
  EXPECT_TRUE(K.Strict);
  // Oracle on a mixed array.
  interp::ExecutionTrace T = interp::runWithArrays(
      *A.F, {6},
      {{"A", {{{1}, 5}, {{2}, -1}, {{3}, 2}, {{4}, 0}, {{5}, 7}, {{6}, 1}}}});
  ASSERT_TRUE(T.ok()) << T.Error;
  expectMonotoneTrace(K, A.phi("L16", "k"), T);
}

TEST(IVClassTest, MonotonicDecreasing) {
  Analyzed A = analyze("func dec(n) {"
                       "  k = 100;"
                       "  for L1: i = 1 to n {"
                       "    if (A[i] > 0) { k = k - 1; } else { k = k - 3; }"
                       "  }"
                       "  return k;"
                       "}");
  const Classification &K = A.cls("L1", "k");
  ASSERT_EQ(K.Kind, IVKind::Monotonic);
  EXPECT_EQ(K.Dir, MonotoneDir::Decreasing);
  EXPECT_TRUE(K.Strict);
}

TEST(IVClassTest, MonotonicWithMultiply) {
  // The paper's "2*i+i as long as the initial value of i is known":
  // i' = 3i with i0 = 1 is strictly increasing (also solvable as geometric,
  // so check the closed form instead).
  Analyzed A = analyze("func tri3(n) {"
                       "  i = 1;"
                       "  loop L1 {"
                       "    i = 2*i + i;"
                       "    if (i > n) break;"
                       "  }"
                       "  return i;"
                       "}");
  const Classification &I = A.cls("L1", "i");
  ASSERT_EQ(I.Kind, IVKind::Geometric);
  auto It = I.Form.geoTerms().find(3);
  ASSERT_TRUE(It != I.Form.geoTerms().end());
  EXPECT_EQ(I.Form.geoCoeff(3), Affine(1)); // i(h) = 3^h
}

TEST(IVClassTest, ConditionalMultiplyIsMonotonic) {
  // Conditionally doubling with positive start: monotonic, not geometric.
  Analyzed A = analyze("func cm(n) {"
                       "  i = 1;"
                       "  for L1: t = 1 to n {"
                       "    if (A[t] > 0) { i = 2 * i; } else { i = i + 1; }"
                       "  }"
                       "  return i;"
                       "}");
  const Classification &I = A.cls("L1", "i");
  ASSERT_EQ(I.Kind, IVKind::Monotonic);
  EXPECT_EQ(I.Dir, MonotoneDir::Increasing);
  EXPECT_TRUE(I.Strict);
}

//===----------------------------------------------------------------------===//
// Expression algebra over the classes (section 5.1)
//===----------------------------------------------------------------------===//

TEST(IVClassTest, DerivedExpressionsClassify) {
  Analyzed A = analyze("func expr(n, c) {"
                       "  k = 0;"
                       "  for L1: i = 1 to n {"
                       "    A[2*i + 1] = i;"       // linear 3+2h
                       "    A[i*i] = i;"           // polynomial (1+h)^2
                       "    A[c - i] = i;"         // linear, symbolic
                       "    if (A[i] > 0) { k = k + 1; }"
                       "    A[k + 5] = i;"         // monotonic + invariant
                       "  }"
                       "  return k;"
                       "}");
  analysis::Loop *L = A.loop("L1");
  std::vector<const ir::Instruction *> Stores;
  for (ir::BasicBlock *BB : L->blocks())
    for (const auto &I : *BB)
      if (I->opcode() == ir::Opcode::ArrayStore)
        Stores.push_back(I);
  ASSERT_EQ(Stores.size(), 4u);

  // 2*i + 1 -> (L1, 3, 2).
  const Classification &S0 = A.clsOf(Stores[0]->operand(1), "L1");
  ASSERT_EQ(S0.Kind, IVKind::Linear);
  EXPECT_EQ(S0.Form.coeff(0), Affine(3));
  EXPECT_EQ(S0.Form.coeff(1), Affine(2));

  // i*i -> polynomial 1 + 2h + h^2.
  const Classification &S1 = A.clsOf(Stores[1]->operand(1), "L1");
  ASSERT_EQ(S1.Kind, IVKind::Polynomial);
  EXPECT_EQ(S1.Form.coeff(2), Affine(1));

  // c - i -> linear with negative step and symbolic base.
  const Classification &S2 = A.clsOf(Stores[2]->operand(1), "L1");
  ASSERT_EQ(S2.Kind, IVKind::Linear);
  EXPECT_EQ(S2.Form.coeff(1), Affine(-1));

  // k + 5 -> monotonic increasing.
  const Classification &S3 = A.clsOf(Stores[3]->operand(1), "L1");
  ASSERT_EQ(S3.Kind, IVKind::Monotonic);
  EXPECT_EQ(S3.Dir, MonotoneDir::Increasing);
}

TEST(IVClassTest, InvariantOperationsStayInvariant) {
  Analyzed A = analyze("func inv(n, m) {"
                       "  for L1: i = 1 to n {"
                       "    A[n * m] = i;"  // symbol product: opaque invariant
                       "    A[n + 3] = i;"  // affine invariant
                       "  }"
                       "  return 0;"
                       "}");
  analysis::Loop *L = A.loop("L1");
  std::vector<const ir::Instruction *> Stores;
  for (ir::BasicBlock *BB : L->blocks())
    for (const auto &I : *BB)
      if (I->opcode() == ir::Opcode::ArrayStore)
        Stores.push_back(I);
  ASSERT_EQ(Stores.size(), 2u);
  EXPECT_TRUE(A.clsOf(Stores[0]->operand(1), "L1").isInvariant());
  const Classification &C1 = A.clsOf(Stores[1]->operand(1), "L1");
  ASSERT_TRUE(C1.isInvariant());
  EXPECT_EQ(C1.Form.initialValue(),
            Affine::symbol(A.F->findArgument("n")) + Affine(3));
}

TEST(IVClassTest, NegatedIVIsLinear) {
  Analyzed A = analyze("func neg(n) {"
                       "  for L1: i = 1 to n {"
                       "    A[-i] = i;"
                       "  }"
                       "  return 0;"
                       "}");
  analysis::Loop *L = A.loop("L1");
  const ir::Instruction *Store = nullptr;
  for (ir::BasicBlock *BB : L->blocks())
    for (const auto &I : *BB)
      if (I->opcode() == ir::Opcode::ArrayStore)
        Store = I;
  ASSERT_NE(Store, nullptr);
  const Classification &C = A.clsOf(Store->operand(1), "L1");
  ASSERT_EQ(C.Kind, IVKind::Linear);
  EXPECT_EQ(C.Form.coeff(0), Affine(-1));
  EXPECT_EQ(C.Form.coeff(1), Affine(-1));
}
