//===- tests/ssa_test.cpp - SSA construction, SCCP, DCE unit tests ------------===//

#include "TestUtil.h"
#include "ssa/DeadCode.h"

using namespace biv;
using namespace biv::testutil;

namespace {

std::unique_ptr<ir::Function> buildSSAOf(const std::string &Src,
                                         ssa::SSAInfo *Info = nullptr) {
  auto F = frontend::parseAndLowerOrDie(Src);
  ssa::SSAInfo I = ssa::buildSSA(*F);
  ssa::verifySSAOrDie(*F);
  if (Info)
    *Info = std::move(I);
  return F;
}

unsigned countPhis(const ir::Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    N += BB->phis().size();
  return N;
}

} // namespace

TEST(SSATest, NoPhiForStraightLine) {
  auto F = buildSSAOf("func f(n) { x = n; y = x + 1; x = y * 2;"
                      " return x; }");
  EXPECT_EQ(countPhis(*F), 0u);
}

TEST(SSATest, NestedIfsPlaceCascadingPhis) {
  ssa::SSAInfo Info;
  auto F = buildSSAOf("func f(a, b) {"
                      "  x = 0;"
                      "  if (a > 0) {"
                      "    if (b > 0) { x = 1; } else { x = 2; }"
                      "  }"
                      "  return x;"
                      "}",
                      &Info);
  // Inner join merges 1/2; outer join merges inner result with 0.
  EXPECT_EQ(countPhis(*F), 2u);
  EXPECT_EQ(Info.PhisPlaced, 2u);
}

TEST(SSATest, LoopPhiOperandsAreCorrect) {
  ssa::SSAInfo Info;
  auto F = buildSSAOf("func f(n) {"
                      "  s = 10;"
                      "  for L: i = 1 to n { s = s + i; }"
                      "  return s;"
                      "}",
                      &Info);
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  ir::Instruction *S = Info.phiFor(LI.byName("L")->header(), "s");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->numOperands(), 2u);
  // One operand is the constant 10 (from the preheader), the other the add.
  bool HasInit = false, HasAdd = false;
  for (ir::Value *Op : S->operands()) {
    if (const auto *C = ir::dyn_cast<ir::Constant>(Op))
      HasInit |= C->value() == 10;
    if (const auto *I = ir::dyn_cast<ir::Instruction>(Op))
      HasAdd |= I->opcode() == ir::Opcode::Add;
  }
  EXPECT_TRUE(HasInit);
  EXPECT_TRUE(HasAdd);
}

TEST(SSATest, UndefFlowsIntoUninitializedPaths) {
  auto F = buildSSAOf("func f(a) {"
                      "  if (a > 0) { x = 1; }"
                      "  x = x + 0;" // reads phi(1, undef)
                      "  return x;"
                      "}");
  bool SawUndef = false;
  for (const auto &BB : F->blocks())
    for (const auto &I : *BB)
      for (ir::Value *Op : I->operands())
        SawUndef |= ir::isa<ir::UndefValue>(Op);
  EXPECT_TRUE(SawUndef);
}

TEST(SSATest, PhiNamesFollowVariables) {
  ssa::SSAInfo Info;
  auto F = buildSSAOf("func f(n) {"
                      "  counter = 0;"
                      "  for L: i = 1 to n { counter = counter + 1; }"
                      "  return counter;"
                      "}",
                      &Info);
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  ir::Instruction *C = Info.phiFor(LI.byName("L")->header(), "counter");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->name().rfind("counter", 0), 0u)
      << "phi should carry the source variable's name";
}

//===----------------------------------------------------------------------===//
// SCCP
//===----------------------------------------------------------------------===//

TEST(SCCPTest, FoldsThroughPhis) {
  auto F = buildSSAOf("func f(a) {"
                      "  if (a > 0) { x = 2 + 3; } else { x = 10 / 2; }"
                      "  return x * 2;"
                      "}");
  ssa::SCCPResult R = ssa::runSCCP(*F);
  EXPECT_GE(R.FoldedInstructions, 3u); // both adds and the phi and the mul
  const ir::Instruction *Ret = nullptr;
  for (const auto &BB : F->blocks())
    for (const auto &I : *BB)
      if (I->opcode() == ir::Opcode::Ret)
        Ret = I;
  const auto *C = ir::dyn_cast<ir::Constant>(Ret->operand(0));
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->value(), 10);
}

TEST(SCCPTest, TracksOnlyExecutablePaths) {
  // The false branch would poison the phi, but SCCP proves it dead.
  auto F = buildSSAOf("func f(a) {"
                      "  if (1 < 2) { x = 7; } else { x = a; }"
                      "  return x;"
                      "}");
  ssa::SCCPResult R = ssa::runSCCP(*F, /*SimplifyCFG=*/false);
  EXPECT_GE(R.FoldedInstructions, 1u);
  const ir::Instruction *Ret = nullptr;
  for (const auto &BB : F->blocks())
    for (const auto &I : *BB)
      if (I->opcode() == ir::Opcode::Ret)
        Ret = I;
  const auto *C = ir::dyn_cast<ir::Constant>(Ret->operand(0));
  ASSERT_NE(C, nullptr) << "phi over one live edge must fold";
  EXPECT_EQ(C->value(), 7);
}

TEST(SCCPTest, LoopCarriedNonConstantStaysBottom) {
  auto F = buildSSAOf("func f(n) {"
                      "  s = 0;"
                      "  for L: i = 1 to n { s = s + 1; }"
                      "  return s;"
                      "}");
  ssa::SCCPResult R = ssa::runSCCP(*F);
  // s varies; the return operand must not fold to a constant.
  const ir::Instruction *Ret = nullptr;
  for (const auto &BB : F->blocks())
    for (const auto &I : *BB)
      if (I->opcode() == ir::Opcode::Ret)
        Ret = I;
  EXPECT_EQ(ir::dyn_cast<ir::Constant>(Ret->operand(0)), nullptr);
  (void)R;
}

TEST(SCCPTest, ConstantLoopCollapses) {
  // A loop whose exit condition folds: 'while (0 > 1)' never runs.
  auto F = buildSSAOf("func f() {"
                      "  x = 5;"
                      "  while (0 > 1) { x = 99; }"
                      "  return x;"
                      "}");
  ssa::SCCPResult R = ssa::runSCCP(*F);
  EXPECT_GE(R.SimplifiedBranches, 1u);
  interp::ExecutionTrace T = interp::run(*F, {});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 5);
  ssa::verifySSAOrDie(*F);
}

TEST(SCCPTest, DivByZeroNotFolded) {
  auto F = buildSSAOf("func f(a) {"
                      "  x = 1 / 0;" // must not be folded away to a constant
                      "  return a;"
                      "}");
  ssa::SCCPResult R = ssa::runSCCP(*F, /*SimplifyCFG=*/false);
  bool DivSurvives = false;
  for (const auto &BB : F->blocks())
    for (const auto &I : *BB)
      DivSurvives |= I->opcode() == ir::Opcode::Div;
  EXPECT_TRUE(DivSurvives);
  (void)R;
}

TEST(SCCPTest, ExpFolding) {
  auto F = buildSSAOf("func f() { return 2 ^ 10; }");
  ssa::runSCCP(*F);
  const ir::Instruction *Ret = nullptr;
  for (const auto &BB : F->blocks())
    for (const auto &I : *BB)
      if (I->opcode() == ir::Opcode::Ret)
        Ret = I;
  const auto *C = ir::dyn_cast<ir::Constant>(Ret->operand(0));
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->value(), 1024);
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

TEST(DCETest, RemovesUnusedChains) {
  auto F = buildSSAOf("func f(n) {"
                      "  dead = n * 7 + 3;"
                      "  live = n + 1;"
                      "  A[live] = 1;"
                      "  return live;"
                      "}");
  size_t Before = F->instructionCount();
  unsigned Removed = ssa::removeDeadCode(*F);
  EXPECT_GE(Removed, 2u); // the mul and add feeding `dead`
  EXPECT_EQ(F->instructionCount(), Before - Removed);
  ssa::verifySSAOrDie(*F);
}

TEST(DCETest, RemovesDeadPhiCycles) {
  // The classic DCE challenge: a loop-carried variable used only by itself.
  auto F = buildSSAOf("func f(n) {"
                      "  d = 0; s = 0;"
                      "  for L: i = 1 to n {"
                      "    d = d + 1;" // dead cycle
                      "    s = s + 2;" // live (returned)
                      "  }"
                      "  return s;"
                      "}");
  ssa::removeDeadCode(*F);
  ssa::verifySSAOrDie(*F);
  // No instruction named after d remains.
  for (const auto &BB : F->blocks())
    for (const auto &I : *BB)
      EXPECT_TRUE(I->name().rfind("d", 0) != 0 || I->name().rfind("d.", 0)
                  != 0);
  interp::ExecutionTrace T = interp::run(*F, {5});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 10);
}

TEST(DCETest, KeepsSideEffects) {
  auto F = buildSSAOf("func f(n) {"
                      "  x = n * 2;"
                      "  A[x] = x;" // store keeps the chain alive
                      "  return 0;"
                      "}");
  unsigned Removed = ssa::removeDeadCode(*F);
  EXPECT_EQ(Removed, 0u);
}
