//===- tests/ir_test.cpp - IR layer unit tests --------------------------------===//

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include <gtest/gtest.h>

using namespace biv::ir;

TEST(IRTest, ConstantsAreUniqued) {
  Function F("f");
  EXPECT_EQ(F.constant(42), F.constant(42));
  EXPECT_NE(F.constant(42), F.constant(43));
  EXPECT_EQ(F.constant(42)->value(), 42);
}

TEST(IRTest, VarsAndArraysByName) {
  Function F("f");
  Var *V = F.getOrCreateVar("x");
  EXPECT_EQ(F.getOrCreateVar("x"), V);
  EXPECT_EQ(F.findVar("x"), V);
  EXPECT_EQ(F.findVar("y"), nullptr);
  Array *A = F.getOrCreateArray("A", 2);
  EXPECT_EQ(A->rank(), 2u);
  EXPECT_EQ(F.getOrCreateArray("A", 2), A);
}

TEST(IRTest, UniqueNames) {
  Function F("f");
  EXPECT_EQ(F.uniqueName("x"), "x");
  EXPECT_EQ(F.uniqueName("x"), "x.1");
  EXPECT_EQ(F.uniqueName("x"), "x.2");
  EXPECT_EQ(F.uniqueName("y"), "y");
}

TEST(IRTest, ValueCasts) {
  Function F("f");
  Value *C = F.constant(1);
  Argument *A = F.addArgument("n");
  EXPECT_TRUE(isa<Constant>(C));
  EXPECT_FALSE(isa<Argument>(C));
  EXPECT_NE(dyn_cast<Argument>(static_cast<Value *>(A)), nullptr);
  EXPECT_EQ(dyn_cast<Constant>(static_cast<Value *>(A)), nullptr);
  EXPECT_EQ(cast<Constant>(C)->value(), 1);
}

namespace {

/// Builds: entry -> (then | else) -> join -> ret.
struct Diamond {
  Function F{"diamond"};
  BasicBlock *Entry, *Then, *Else, *Join;

  Diamond() {
    Entry = F.createBlock("entry");
    Then = F.createBlock("then");
    Else = F.createBlock("else");
    Join = F.createBlock("join");
    IRBuilder B(F, Entry);
    Argument *N = F.addArgument("n");
    Instruction *Cmp = B.binary(Opcode::CmpGT, N, B.constInt(0));
    B.condBr(Cmp, Then, Else);
    B.setInsertBlock(Then);
    B.br(Join);
    B.setInsertBlock(Else);
    B.br(Join);
    B.setInsertBlock(Join);
    B.ret(N);
    F.recomputePreds();
  }
};

} // namespace

TEST(IRTest, CFGEdges) {
  Diamond D;
  EXPECT_EQ(D.Entry->successors().size(), 2u);
  EXPECT_EQ(D.Join->predecessors().size(), 2u);
  EXPECT_EQ(D.Join->successors().size(), 0u);
  EXPECT_NE(D.Entry->terminator(), nullptr);
}

TEST(IRTest, ReversePostOrder) {
  Diamond D;
  std::vector<BasicBlock *> RPO = D.F.reversePostOrder();
  ASSERT_EQ(RPO.size(), 4u);
  EXPECT_EQ(RPO.front(), D.Entry);
  EXPECT_EQ(RPO.back(), D.Join);
}

TEST(IRTest, VerifierAcceptsWellFormed) {
  Diamond D;
  EXPECT_TRUE(verify(D.F).empty());
}

TEST(IRTest, VerifierCatchesMissingTerminator) {
  Function F("bad");
  BasicBlock *BB = F.createBlock("entry");
  IRBuilder B(F, BB);
  B.add(F.constant(1), F.constant(2));
  F.recomputePreds();
  std::vector<std::string> Problems = verify(F);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("terminator"), std::string::npos);
}

TEST(IRTest, VerifierCatchesPhiPredMismatch) {
  Diamond D;
  // A phi in Join with only one incoming.
  Instruction *Phi = D.F.newInstr(Opcode::Phi, {}, "p");
  Phi->addIncoming(D.F.constant(1), D.Then);
  D.Join->insertAt(0, Phi);
  std::vector<std::string> Problems = verify(D.F);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("phi"), std::string::npos);
}

TEST(IRTest, VerifierCatchesPhiAfterNonPhi) {
  Diamond D;
  // Sneak an add before the phi inside Join.
  Instruction *Add =
      D.F.newInstr(Opcode::Add, {D.F.constant(1), D.F.constant(2)}, "x");
  D.Join->insertAt(0, Add);
  Instruction *Phi = D.F.newInstr(Opcode::Phi, {}, "p");
  Phi->addIncoming(D.F.constant(1), D.Then);
  Phi->addIncoming(D.F.constant(2), D.Else);
  D.Join->insertAt(1, Phi);
  std::vector<std::string> Problems = verify(D.F);
  bool Found = false;
  for (const std::string &P : Problems)
    Found |= P.find("phi after non-phi") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(IRTest, RemoveUnreachableBlocks) {
  Diamond D;
  BasicBlock *Dead = D.F.createBlock("dead");
  IRBuilder B(D.F, Dead);
  B.br(D.Join); // dead -> join adds a phi-less edge
  D.F.recomputePreds();
  EXPECT_EQ(D.F.numBlocks(), 5u);
  unsigned Removed = D.F.removeUnreachableBlocks();
  EXPECT_EQ(Removed, 1u);
  EXPECT_EQ(D.F.numBlocks(), 4u);
  // Ids are dense again.
  for (size_t I = 0; I < D.F.numBlocks(); ++I)
    EXPECT_EQ(D.F.blocks()[I]->id(), I);
  EXPECT_TRUE(verify(D.F).empty());
}

TEST(IRTest, RemoveUnreachablePrunesPhiIncomings) {
  Diamond D;
  BasicBlock *Dead = D.F.createBlock("dead");
  IRBuilder B(D.F, Dead);
  B.br(D.Join);
  Instruction *Phi = D.F.newInstr(Opcode::Phi, {}, "p");
  Phi->addIncoming(D.F.constant(1), D.Then);
  Phi->addIncoming(D.F.constant(2), D.Else);
  Phi->addIncoming(D.F.constant(3), Dead);
  Instruction *P = D.Join->insertAt(0, Phi);
  D.F.recomputePreds();
  D.F.removeUnreachableBlocks();
  EXPECT_EQ(P->numOperands(), 2u);
  EXPECT_TRUE(verify(D.F).empty());
}

TEST(IRTest, ReplaceAllUsesWith) {
  Function F("f");
  BasicBlock *BB = F.createBlock("entry");
  IRBuilder B(F, BB);
  Instruction *X = B.add(F.constant(1), F.constant(2), "x");
  Instruction *Y = B.add(X, X, "y");
  B.ret(Y);
  F.replaceAllUsesWith(X, F.constant(3));
  EXPECT_EQ(Y->operand(0), F.constant(3));
  EXPECT_EQ(Y->operand(1), F.constant(3));
}

TEST(IRTest, InsertBeforeTerminatorAndTake) {
  Function F("f");
  BasicBlock *BB = F.createBlock("entry");
  IRBuilder B(F, BB);
  B.ret();
  Instruction *I =
      F.newInstr(Opcode::Add, {F.constant(1), F.constant(2)}, "x");
  Instruction *X = BB->insertBeforeTerminator(I);
  EXPECT_EQ(BB->size(), 2u);
  EXPECT_EQ(BB->instructions()[0], X);
  Instruction *Taken = BB->take(X);
  EXPECT_EQ(BB->size(), 1u);
  EXPECT_EQ(Taken->parent(), nullptr);
}

TEST(IRTest, PrinterRendersAllForms) {
  Diamond D;
  std::string S = toString(D.F);
  EXPECT_NE(S.find("func diamond(n)"), std::string::npos);
  EXPECT_NE(S.find("condbr"), std::string::npos);
  EXPECT_NE(S.find("ret n"), std::string::npos);
  EXPECT_NE(S.find("preds:"), std::string::npos);
}

TEST(IRTest, OpcodePredicates) {
  EXPECT_TRUE(isTerminator(Opcode::Ret));
  EXPECT_TRUE(isTerminator(Opcode::CondBr));
  EXPECT_FALSE(isTerminator(Opcode::Add));
  EXPECT_TRUE(isCompare(Opcode::CmpLE));
  EXPECT_FALSE(isCompare(Opcode::Sub));
  EXPECT_TRUE(isBinaryArith(Opcode::Exp));
  EXPECT_FALSE(isBinaryArith(Opcode::Phi));
  EXPECT_STREQ(opcodeName(Opcode::ArrayLoad), "aload");
}

TEST(IRTest, PhiIncomingAccessors) {
  Diamond D;
  Instruction *Phi = D.F.newInstr(Opcode::Phi, {}, "p");
  Phi->addIncoming(D.F.constant(1), D.Then);
  Phi->addIncoming(D.F.constant(2), D.Else);
  Instruction *P = D.Join->insertAt(0, Phi);
  EXPECT_EQ(P->incomingFor(D.Then), D.F.constant(1));
  EXPECT_EQ(P->incomingFor(D.Else), D.F.constant(2));
  P->removeIncoming(0);
  EXPECT_EQ(P->numOperands(), 1u);
  EXPECT_EQ(P->incomingFor(D.Else), D.F.constant(2));
}
