//===- tests/transform_test.cpp - Loop peeling and strength reduction ---------===//
//
// The two transformations the paper motivates: peeling (section 4.1's
// "standard compiler trick" for wrap-around variables) and strength
// reduction (the introduction's classical companion of IV analysis), both
// validated semantically against the interpreter.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dependence/DependenceAnalyzer.h"
#include "transform/LoopPeel.h"
#include "transform/StrengthReduce.h"

using namespace biv;
using namespace biv::testutil;

namespace {

const char *WrapSrc = "func l9(n) {"
                      "  iml = n;"
                      "  for L9: i = 1 to n {"
                      "    A[i] = A[iml] + 1;"
                      "    iml = i;"
                      "  }"
                      "  return 0;"
                      "}";

/// Runs Src through lowering (+ optional peel), SSA, and analysis.
Analyzed analyzePeeled(const std::string &Src, const std::string &Loop,
                       unsigned Times) {
  Analyzed A;
  A.F = frontend::parseAndLowerOrDie(Src);
  EXPECT_EQ(transform::peelLoop(*A.F, Loop, Times), Times);
  A.Info = ssa::buildSSA(*A.F);
  ssa::verifySSAOrDie(*A.F);
  // The paper's [WZ91] step: fold the peeled iteration's arithmetic so the
  // loop phis see literal initial values (this is what lets the wrap-around
  // collapse).
  ssa::runSCCP(*A.F, /*SimplifyCFG=*/false);
  A.DT = std::make_unique<analysis::DominatorTree>(*A.F);
  A.LI = std::make_unique<analysis::LoopInfo>(*A.F, *A.DT);
  A.IA = std::make_unique<ivclass::InductionAnalysis>(*A.F, *A.DT, *A.LI);
  A.IA->run();
  return A;
}

/// Executes both functions and compares observable behaviour.
void expectSameBehaviour(
    const ir::Function &F1, const ir::Function &F2,
    const std::vector<int64_t> &Args,
    const std::map<std::string, std::map<std::vector<int64_t>, int64_t>>
        &Arrays = {}) {
  interp::ExecutionTrace T1 = interp::runWithArrays(F1, Args, Arrays);
  interp::ExecutionTrace T2 = interp::runWithArrays(F2, Args, Arrays);
  ASSERT_TRUE(T1.ok()) << T1.Error;
  ASSERT_TRUE(T2.ok()) << T2.Error;
  EXPECT_EQ(T1.ReturnValue, T2.ReturnValue);
  ASSERT_EQ(T1.Accesses.size(), T2.Accesses.size());
  for (size_t K = 0; K < T1.Accesses.size(); ++K) {
    EXPECT_EQ(T1.Accesses[K].A->name(), T2.Accesses[K].A->name());
    EXPECT_EQ(T1.Accesses[K].Indices, T2.Accesses[K].Indices);
    EXPECT_EQ(T1.Accesses[K].IsWrite, T2.Accesses[K].IsWrite);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Loop peeling
//===----------------------------------------------------------------------===//

TEST(PeelTest, PreservesSemantics) {
  auto Ref = frontend::parseAndLowerOrDie(WrapSrc);
  ssa::buildSSA(*Ref);
  Analyzed Peeled = analyzePeeled(WrapSrc, "L9", 1);
  for (int64_t N : {0, 1, 2, 7})
    expectSameBehaviour(*Ref, *Peeled.F, {N});
}

TEST(PeelTest, CollapsesWrapAroundToLinear) {
  // Before: iml is a wrap-around; after one peel its initial value fits the
  // sequence and it is the plain induction variable (L9, 1, 1).
  Analyzed Before = analyze(WrapSrc);
  EXPECT_EQ(Before.cls("L9", "iml").Kind, ivclass::IVKind::WrapAround);

  Analyzed After = analyzePeeled(WrapSrc, "L9", 1);
  const ivclass::Classification &Iml = After.cls("L9", "iml");
  ASSERT_EQ(Iml.Kind, ivclass::IVKind::Linear);
  EXPECT_EQ(Iml.Form.coeff(0), Affine(1));
  EXPECT_EQ(Iml.Form.coeff(1), Affine(1));
  // The peeled loop starts at i = 2.
  const ivclass::Classification &I = After.cls("L9", "i");
  ASSERT_EQ(I.Kind, ivclass::IVKind::Linear);
  EXPECT_EQ(I.Form.coeff(0), Affine(2));
}

TEST(PeelTest, RemovesDependencePeelFlag) {
  Analyzed After = analyzePeeled(WrapSrc, "L9", 1);
  dependence::DependenceAnalyzer DA(*After.IA);
  std::vector<dependence::Dependence> Deps = DA.analyze();
  bool SawLoopDep = false;
  for (const dependence::Dependence &D : Deps) {
    EXPECT_EQ(D.Result.ValidAfterIterations, 0u)
        << "peeled loop must not need further peeling";
    for (const dependence::LoopDirection &LD : D.Result.Directions)
      if (LD.Distance && *LD.Distance == 1)
        SawLoopDep = true;
  }
  EXPECT_TRUE(SawLoopDep) << "the settled distance-1 recurrence remains";
}

TEST(PeelTest, SecondOrderNeedsTwoPeels) {
  const char *Src = "func f(n) {"
                    "  w1 = 90; w2 = 91;"
                    "  for L: i = 1 to n {"
                    "    A[w2] = i;"
                    "    w2 = w1;"
                    "    w1 = i;"
                    "  }"
                    "  return 0;"
                    "}";
  Analyzed Base = analyze(Src);
  ASSERT_EQ(Base.cls("L", "w2").Kind, ivclass::IVKind::WrapAround);
  EXPECT_EQ(Base.cls("L", "w2").WrapOrder, 2u);

  Analyzed One = analyzePeeled(Src, "L", 1);
  EXPECT_EQ(One.cls("L", "w2").Kind, ivclass::IVKind::WrapAround)
      << "one peel only reduces the order";
  EXPECT_EQ(One.cls("L", "w2").WrapOrder, 1u);

  Analyzed Two = analyzePeeled(Src, "L", 2);
  EXPECT_EQ(Two.cls("L", "w2").Kind, ivclass::IVKind::Linear);

  auto Ref = frontend::parseAndLowerOrDie(Src);
  ssa::buildSSA(*Ref);
  for (int64_t N : {0, 1, 2, 3, 9})
    expectSameBehaviour(*Ref, *Two.F, {N});
}

TEST(PeelTest, UnknownLoopFails) {
  auto F = frontend::parseAndLowerOrDie(WrapSrc);
  EXPECT_EQ(transform::peelLoop(*F, "NOPE", 1), 0u);
}

TEST(PeelTest, RefusesSSAForm) {
  auto F = frontend::parseAndLowerOrDie(WrapSrc);
  ssa::buildSSA(*F);
  EXPECT_EQ(transform::peelLoop(*F, "L9", 1), 0u)
      << "peeling runs pre-SSA only";
}

TEST(PeelTest, ReportsActualCountOnShortfall) {
  // Requesting more peels than the loop supports must report how many
  // actually happened -- the old bool return conflated a 0-of-4 outcome
  // with success whenever any earlier call had mutated the function.
  // An SSA-form function supports zero peels, so 4 requested -> 0 done.
  auto F = frontend::parseAndLowerOrDie(WrapSrc);
  ssa::buildSSA(*F);
  EXPECT_EQ(transform::peelLoop(*F, "L9", 4), 0u)
      << "shortfall must surface as the real count, not as success";

  // A peelable loop reports exactly the requested count, and the result
  // still matches the un-peeled function observably.
  auto Ref = frontend::parseAndLowerOrDie(WrapSrc);
  ssa::buildSSA(*Ref);
  Analyzed Peeled = analyzePeeled(WrapSrc, "L9", 3);
  for (int64_t N : {0, 2, 7})
    expectSameBehaviour(*Ref, *Peeled.F, {N});
}

TEST(PeelTest, PeeledBottomTestLoop) {
  const char *Src = "func f(n) {"
                    "  s = 0; i = 0;"
                    "  loop L {"
                    "    i = i + 1;"
                    "    s = s + i;"
                    "    if (i >= n) break;"
                    "  }"
                    "  return s;"
                    "}";
  auto Ref = frontend::parseAndLowerOrDie(Src);
  ssa::buildSSA(*Ref);
  Analyzed Peeled = analyzePeeled(Src, "L", 1);
  for (int64_t N : {0, 1, 2, 5}) // note: body runs once even for n <= 0
    expectSameBehaviour(*Ref, *Peeled.F, {N});
}

//===----------------------------------------------------------------------===//
// Strength reduction
//===----------------------------------------------------------------------===//

namespace {

unsigned countMuls(const ir::Function &F) {
  unsigned N = 0;
  for (const auto &BB : F.blocks())
    for (const auto &I : *BB)
      N += I->opcode() == ir::Opcode::Mul;
  return N;
}

} // namespace

TEST(StrengthReduceTest, ReplacesLinearMultiplications) {
  const char *Src = "func f(n) {"
                    "  for L: i = 0 to n {"
                    "    A[8*i + 4] = i;"
                    "    B[3*i] = 2 * i;"
                    "  }"
                    "  return 0;"
                    "}";
  auto Ref = frontend::parseAndLowerOrDie(Src);
  ssa::buildSSA(*Ref);

  Analyzed A = analyze(Src);
  EXPECT_EQ(countMuls(*A.F), 3u);
  transform::StrengthReduceStats S = transform::strengthReduce(*A.IA);
  EXPECT_EQ(S.Reduced, 3u);
  EXPECT_EQ(countMuls(*A.F), 0u);
  ssa::verifySSAOrDie(*A.F);
  for (int64_t N : {0, 1, 5, 12})
    expectSameBehaviour(*Ref, *A.F, {N});
}

TEST(StrengthReduceTest, SymbolicStepReduces) {
  // A[c*i]: step c is symbolic but materializable in the preheader.
  const char *Src = "func f(n, c) {"
                    "  for L: i = 0 to n {"
                    "    A[c*i] = i;"
                    "  }"
                    "  return 0;"
                    "}";
  auto Ref = frontend::parseAndLowerOrDie(Src);
  ssa::buildSSA(*Ref);
  Analyzed A = analyze(Src);
  transform::StrengthReduceStats S = transform::strengthReduce(*A.IA);
  EXPECT_EQ(S.Reduced, 1u);
  ssa::verifySSAOrDie(*A.F);
  for (int64_t C : {2, 3, -1})
    expectSameBehaviour(*Ref, *A.F, {6, C});
}

TEST(StrengthReduceTest, LeavesNonLinearAlone) {
  const char *Src = "func f(n) {"
                    "  for L: i = 1 to n {"
                    "    A[i * i] = i;"  // polynomial: not reduced (yet)
                    "    A[i * n] = i;"  // linear with symbolic step: yes
                    "  }"
                    "  return 0;"
                    "}";
  Analyzed A = analyze(Src);
  unsigned Before = countMuls(*A.F);
  transform::StrengthReduceStats S = transform::strengthReduce(*A.IA);
  EXPECT_EQ(S.Reduced, 1u);
  EXPECT_EQ(countMuls(*A.F), Before - 1);
  ssa::verifySSAOrDie(*A.F);
}

TEST(StrengthReduceTest, ConditionalMultiplicationStillExact) {
  // A conditionally executed multiplication is replaced by an
  // unconditional recurrence with identical values on the iterations that
  // do execute it.
  const char *Src = "func f(n) {"
                    "  s = 0;"
                    "  for L: i = 1 to n {"
                    "    if (A[i] > 0) { s = s + 5*i; }"
                    "  }"
                    "  return s;"
                    "}";
  auto Ref = frontend::parseAndLowerOrDie(Src);
  ssa::buildSSA(*Ref);
  Analyzed A = analyze(Src);
  transform::StrengthReduceStats S = transform::strengthReduce(*A.IA);
  EXPECT_EQ(S.Reduced, 1u);
  ssa::verifySSAOrDie(*A.F);
  std::map<std::string, std::map<std::vector<int64_t>, int64_t>> Arrays;
  for (int64_t I = 1; I <= 9; ++I)
    Arrays["A"][{I}] = (I % 3) - 1;
  expectSameBehaviour(*Ref, *A.F, {9}, Arrays);
}

TEST(StrengthReduceTest, NestedLoopsReduceInnermost) {
  const char *Src = "func f(n) {"
                    "  for L1: i = 1 to 8 {"
                    "    for L2: j = 1 to 8 {"
                    "      A[16*i + 2*j] = i + j;"
                    "    }"
                    "  }"
                    "  return 0;"
                    "}";
  auto Ref = frontend::parseAndLowerOrDie(Src);
  ssa::buildSSA(*Ref);
  Analyzed A = analyze(Src);
  transform::StrengthReduceStats S = transform::strengthReduce(*A.IA);
  EXPECT_GE(S.Reduced, 2u);
  ssa::verifySSAOrDie(*A.F);
  expectSameBehaviour(*Ref, *A.F, {0});
}

//===----------------------------------------------------------------------===//
// Loop interchange legality (section 6.1's motivating transformation)
//===----------------------------------------------------------------------===//

#include "transform/Interchange.h"

namespace {

transform::InterchangeVerdict verdictFor(const char *Src) {
  static std::vector<Analyzed> Keep; // keep functions alive per test run
  Keep.push_back(analyze(Src));
  Analyzed &A = Keep.back();
  dependence::DependenceAnalyzer DA(*A.IA);
  static std::vector<std::vector<dependence::Dependence>> KeepDeps;
  KeepDeps.push_back(DA.analyze());
  return transform::canInterchange(A.loop("LO"), A.loop("LI"),
                                   KeepDeps.back());
}

} // namespace

TEST(InterchangeTest, LegalWhenDistanceIsOuterOnly) {
  // A[i][j] = A[i-1][j]: direction (<, =): interchange legal.
  EXPECT_EQ(verdictFor("func f(n) {"
                       "  for LO: i = 1 to 40 {"
                       "    for LI: j = 1 to 40 {"
                       "      A[i, j] = A[i - 1, j] + 1;"
                       "    }"
                       "  }"
                       "  return 0;"
                       "}"),
            transform::InterchangeVerdict::Legal);
}

TEST(InterchangeTest, IllegalOnCrossingDiagonal) {
  // A[i][j] = A[i-1][j+1]: direction (<, >): interchange flips it to the
  // lexicographically negative (>, <) -- illegal.
  EXPECT_EQ(verdictFor("func f(n) {"
                       "  for LO: i = 2 to 40 {"
                       "    for LI: j = 1 to 39 {"
                       "      A[i, j] = A[i - 1, j + 1] + 1;"
                       "    }"
                       "  }"
                       "  return 0;"
                       "}"),
            transform::InterchangeVerdict::IllegalDirection);
}

TEST(InterchangeTest, LegalOnAlignedDiagonal) {
  // A[i][j] = A[i-1][j-1]: direction (<, <): stays lexicographically
  // positive after interchange -- legal.
  EXPECT_EQ(verdictFor("func f(n) {"
                       "  for LO: i = 2 to 40 {"
                       "    for LI: j = 2 to 40 {"
                       "      A[i, j] = A[i - 1, j - 1] + 1;"
                       "    }"
                       "  }"
                       "  return 0;"
                       "}"),
            transform::InterchangeVerdict::Legal);
}

TEST(InterchangeTest, ShortVectorIsUnknownNotOutOfBounds) {
  // A direction vector shorter than the Directions list carries no
  // information for the missing levels; canInterchange used to index past
  // its end.  Construct the mismatched shape directly and expect the
  // conservative verdict instead of undefined behaviour.
  Analyzed A = analyze("func f(n) {"
                       "  for LO: i = 2 to 40 {"
                       "    for LI: j = 1 to 39 {"
                       "      A[i, j] = A[i - 1, j + 1] + 1;"
                       "    }"
                       "  }"
                       "  return 0;"
                       "}");
  dependence::DependenceAnalyzer DA(*A.IA);
  std::vector<dependence::Dependence> Deps = DA.analyze();
  ASSERT_EQ(transform::canInterchange(A.loop("LO"), A.loop("LI"), Deps),
            transform::InterchangeVerdict::IllegalDirection);
  bool Truncated = false;
  for (dependence::Dependence &D : Deps)
    for (std::vector<uint8_t> &V : D.Result.Vectors)
      if (V.size() > 1) {
        V.resize(1);
        Truncated = true;
      }
  ASSERT_TRUE(Truncated) << "test needs a two-level vector to truncate";
  EXPECT_EQ(transform::canInterchange(A.loop("LO"), A.loop("LI"), Deps),
            transform::InterchangeVerdict::UnknownDependence);
}

TEST(InterchangeTest, NotNestedRejected) {
  Analyzed A = analyze("func f(n) {"
                       "  for LO: i = 1 to 4 { A[i] = i; }"
                       "  for LI: j = 1 to 4 { A[j] = j; }"
                       "  return 0;"
                       "}");
  dependence::DependenceAnalyzer DA(*A.IA);
  std::vector<dependence::Dependence> Deps = DA.analyze();
  EXPECT_EQ(transform::canInterchange(A.loop("LO"), A.loop("LI"), Deps),
            transform::InterchangeVerdict::NotPerfectlyNested);
}
