//===- tests/arena_test.cpp - Arena, interner, and determinism tests ----------===//
//
// The memory architecture of DESIGN.md §11: chunked bump allocation, arena
// vectors, string interning, symbol stability across units, and the
// end-to-end guarantee the arena switch must not disturb -- batch output and
// cache bytes identical at any -jN.
//
//===----------------------------------------------------------------------===//

#include "WorkloadGen.h"
#include "cache/AnalysisCache.h"
#include "driver/BatchAnalyzer.h"
#include "frontend/Lowering.h"
#include "support/Arena.h"
#include "support/StringInterner.h"
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

using namespace biv;
using support::Arena;
using support::ArenaVector;
using support::StringInterner;
using support::Symbol;

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(ArenaTest, ChunkGrowth) {
  Arena A;
  EXPECT_EQ(A.numChunks(), 0u);
  EXPECT_EQ(A.bytesAllocated(), 0u);

  // Fill well past the first chunk; chunks double, so the count grows
  // logarithmically while reserved bytes always cover allocated bytes.
  size_t Total = 0;
  while (Total < Arena::MinChunkBytes * 8) {
    A.allocate(256, 8);
    Total += 256;
  }
  EXPECT_EQ(A.bytesAllocated(), Total);
  EXPECT_GE(A.bytesReserved(), A.bytesAllocated());
  EXPECT_GE(A.numChunks(), 2u);
  EXPECT_LE(A.numChunks(), 8u);
}

TEST(ArenaTest, OversizedAllocationGetsItsOwnChunk) {
  Arena A;
  // Larger than the max chunk size: the arena must still satisfy it.
  const size_t Big = Arena::MaxChunkBytes + 4096;
  char *P = static_cast<char *>(A.allocate(Big, 16));
  ASSERT_NE(P, nullptr);
  // The storage must actually be usable end to end.
  P[0] = 1;
  P[Big - 1] = 2;
  EXPECT_GE(A.bytesReserved(), Big);
}

TEST(ArenaTest, Alignment) {
  Arena A;
  for (size_t Align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    // Skew the bump pointer first so alignment is actually exercised.
    A.allocate(1, 1);
    void *P = A.allocate(Align * 3, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u)
        << "misaligned for align " << Align;
  }
}

TEST(ArenaTest, ResetReleasesAndReuses) {
  Arena A;
  for (int I = 0; I < 100; ++I)
    A.allocate(512, 8);
  EXPECT_GT(A.bytesAllocated(), 0u);
  EXPECT_GT(A.numChunks(), 0u);

  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_EQ(A.bytesReserved(), 0u);
  EXPECT_EQ(A.numChunks(), 0u);

  // The arena is fully usable again after batch free.
  int *X = A.create<int>(42);
  EXPECT_EQ(*X, 42);
  EXPECT_GT(A.bytesAllocated(), 0u);
}

TEST(ArenaTest, ArenaVectorGrowthKeepsContents) {
  Arena A;
  ArenaVector<uint32_t> V;
  for (uint32_t I = 0; I < 1000; ++I)
    V.push_back(A, I * 3);
  ASSERT_EQ(V.size(), 1000u);
  for (uint32_t I = 0; I < 1000; ++I)
    EXPECT_EQ(V[I], I * 3);

  V.insert(A, 0, 7u);
  EXPECT_EQ(V.front(), 7u);
  EXPECT_EQ(V[1], 0u);
  V.erase(0);
  EXPECT_EQ(V.front(), 0u);
  EXPECT_EQ(V.size(), 1000u);
}

//===----------------------------------------------------------------------===//
// StringInterner
//===----------------------------------------------------------------------===//

TEST(InternerTest, DedupeAndStability) {
  Arena A;
  StringInterner SI(A);
  Symbol S1 = SI.intern("alpha");
  Symbol S2 = SI.intern("beta");
  Symbol S3 = SI.intern("alpha");
  EXPECT_EQ(S1, S3);
  EXPECT_NE(S1, S2);
  EXPECT_EQ(SI.str(S1), "alpha");
  EXPECT_EQ(SI.str(S2), "beta");
  EXPECT_EQ(SI.size(), 2u);

  // The view is arena-backed, not a view of the caller's buffer.
  std::string Ephemeral = "gamma";
  std::string_view View = SI.internView(Ephemeral);
  Ephemeral.assign("XXXXX");
  EXPECT_EQ(View, "gamma");
}

TEST(InternerTest, CollisionAndRehash) {
  Arena A;
  StringInterner SI(A);
  // Far more symbols than the initial table (64 slots): every insertion
  // beyond the load factor forces probing and several rehashes.  All
  // symbols must stay dense, distinct, and resolvable afterwards.
  std::vector<Symbol> Syms;
  for (int I = 0; I < 5000; ++I) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "sym_%d", I);
    Syms.push_back(SI.intern(Buf));
  }
  EXPECT_EQ(SI.size(), 5000u);
  for (int I = 0; I < 5000; ++I) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "sym_%d", I);
    EXPECT_EQ(Syms[I], Symbol(I)) << "symbols must be dense";
    EXPECT_EQ(SI.str(Syms[I]), Buf);
    EXPECT_EQ(SI.lookup(Buf), Syms[I]);
  }
  EXPECT_EQ(SI.lookup("never_interned"), support::NoSymbol);
}

TEST(InternerTest, SymbolStabilityAcrossUnits) {
  // Units own disjoint interners: dropping one unit must not disturb
  // another's symbols or spellings (the batch driver frees units in
  // arbitrary order relative to their siblings).
  const std::string Src =
      "func f(n) {\n  s = 0;\n  for L1: i = 1 to n { s = s + i; }\n"
      "  return s;\n}\n";
  std::unique_ptr<ir::Function> F1 = frontend::parseAndLowerOrDie(Src);
  std::unique_ptr<ir::Function> F2 = frontend::parseAndLowerOrDie(Src);

  std::string_view Name1 = F1->vars().front()->name();
  F2.reset(); // batch-free the sibling unit
  EXPECT_EQ(Name1, F1->vars().front()->name());
  EXPECT_EQ(Name1, "i"); // scalars are registered sorted by spelling
}

//===----------------------------------------------------------------------===//
// End-to-end determinism across the arena switch
//===----------------------------------------------------------------------===//

namespace {

std::vector<driver::SourceInput> corpusSources() {
  std::vector<bench::CorpusUnit> Corpus = bench::genCorpus(40, /*Seed=*/7);
  std::vector<driver::SourceInput> Sources;
  for (const bench::CorpusUnit &U : Corpus)
    Sources.push_back({U.Name, U.Text});
  return Sources;
}

std::string fileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

} // namespace

TEST(ArenaDeterminismTest, BatchOutputIdenticalAcrossJobCounts) {
  std::vector<driver::SourceInput> Sources = corpusSources();
  driver::BatchOptions Serial;
  Serial.Jobs = 1;
  driver::BatchOptions Parallel = Serial;
  Parallel.Jobs = 8;

  driver::BatchResult RS = driver::analyzeBatch(Sources, Serial);
  driver::BatchResult RP = driver::analyzeBatch(Sources, Parallel);
  EXPECT_EQ(RS.Failed, 0u);
  EXPECT_EQ(RP.Failed, 0u);
  EXPECT_EQ(RS.renderText(), RP.renderText());
}

TEST(ArenaDeterminismTest, CacheBytesIdenticalAcrossJobCounts) {
  std::vector<driver::SourceInput> Sources = corpusSources();
  const std::string P1 = testing::TempDir() + "arena_cache_j1.bin";
  const std::string P8 = testing::TempDir() + "arena_cache_j8.bin";
  std::remove(P1.c_str());
  std::remove(P8.c_str());

  std::string Error;
  cache::AnalysisCache C1, C8;
  ASSERT_TRUE(C1.open(P1, Error)) << Error;
  ASSERT_TRUE(C8.open(P8, Error)) << Error;

  driver::BatchOptions B1;
  B1.Jobs = 1;
  B1.Cache = &C1;
  driver::BatchOptions B8;
  B8.Jobs = 8;
  B8.Cache = &C8;

  driver::BatchResult R1 = driver::analyzeBatch(Sources, B1);
  driver::BatchResult R8 = driver::analyzeBatch(Sources, B8);
  EXPECT_EQ(R1.Failed, 0u);
  EXPECT_EQ(R8.Failed, 0u);
  ASSERT_TRUE(C1.save(Error)) << Error;
  ASSERT_TRUE(C8.save(Error)) << Error;

  // The digests are content-addressed over canonical IR text, and entries
  // are committed in input order after the parallel section, so the cache
  // files must match byte for byte regardless of worker count.
  const std::string Bytes1 = fileBytes(P1);
  const std::string Bytes8 = fileBytes(P8);
  ASSERT_FALSE(Bytes1.empty());
  EXPECT_EQ(Bytes1, Bytes8);
  // Content-addressed: duplicate corpus programs share one entry.
  EXPECT_GT(C1.entryCount(), 0u);
  EXPECT_LE(C1.entryCount(), Sources.size());

  std::remove(P1.c_str());
  std::remove(P8.c_str());
}
