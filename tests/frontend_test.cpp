//===- tests/frontend_test.cpp - Lexer and parser unit tests ------------------===//

#include "frontend/Lexer.h"
#include "frontend/Lowering.h"
#include "frontend/Parser.h"
#include <cstdint>
#include <memory>
#include <gtest/gtest.h>

using namespace biv::frontend;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, BasicTokens) {
  Lexer L("func f ( ) { x = 1 + 2 ; }");
  std::vector<Token> T = L.lexAll();
  std::vector<TokenKind> Kinds;
  for (const Token &Tok : T)
    Kinds.push_back(Tok.Kind);
  std::vector<TokenKind> Expected = {
      TokenKind::KwFunc,  TokenKind::Identifier, TokenKind::LParen,
      TokenKind::RParen,  TokenKind::LBrace,     TokenKind::Identifier,
      TokenKind::Assign,  TokenKind::Number,     TokenKind::Plus,
      TokenKind::Number,  TokenKind::Semicolon,  TokenKind::RBrace,
      TokenKind::EndOfFile};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, TwoCharOperators) {
  Lexer L("== != <= >= < > =");
  std::vector<Token> T = L.lexAll();
  ASSERT_EQ(T.size(), 8u);
  EXPECT_EQ(T[0].Kind, TokenKind::EqEq);
  EXPECT_EQ(T[1].Kind, TokenKind::NotEq);
  EXPECT_EQ(T[2].Kind, TokenKind::LessEq);
  EXPECT_EQ(T[3].Kind, TokenKind::GreaterEq);
  EXPECT_EQ(T[4].Kind, TokenKind::Less);
  EXPECT_EQ(T[5].Kind, TokenKind::Greater);
  EXPECT_EQ(T[6].Kind, TokenKind::Assign);
}

TEST(LexerTest, KeywordsVsIdentifiers) {
  Lexer L("for forx to toto by downto loop while");
  std::vector<Token> T = L.lexAll();
  EXPECT_EQ(T[0].Kind, TokenKind::KwFor);
  EXPECT_EQ(T[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[2].Kind, TokenKind::KwTo);
  EXPECT_EQ(T[3].Kind, TokenKind::Identifier);
  EXPECT_EQ(T[4].Kind, TokenKind::KwBy);
  EXPECT_EQ(T[5].Kind, TokenKind::KwDownTo);
  EXPECT_EQ(T[6].Kind, TokenKind::KwLoop);
  EXPECT_EQ(T[7].Kind, TokenKind::KwWhile);
}

TEST(LexerTest, CommentsAndLocations) {
  Lexer L("x # comment to end of line\n  y");
  Token X = L.next();
  Token Y = L.next();
  EXPECT_EQ(X.Text, "x");
  EXPECT_EQ(X.Loc.Line, 1u);
  EXPECT_EQ(Y.Text, "y");
  EXPECT_EQ(Y.Loc.Line, 2u);
  EXPECT_EQ(Y.Loc.Col, 3u);
}

TEST(LexerTest, NumberValues) {
  Lexer L("0 42 123456789");
  EXPECT_EQ(L.next().Value, 0);
  EXPECT_EQ(L.next().Value, 42);
  EXPECT_EQ(L.next().Value, 123456789);
}

TEST(LexerTest, ErrorToken) {
  Lexer L("x @ y");
  L.next(); // x
  Token Bad = L.next();
  EXPECT_EQ(Bad.Kind, TokenKind::Error);
  EXPECT_NE(Bad.Text.find("unexpected"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// The returned FuncDecl lives in the Parser's arena, so the Parser must
/// stay alive for as long as the tree is inspected.
struct ParsedFunc {
  std::unique_ptr<Parser> P;
  FuncDecl *F = nullptr;
  FuncDecl *operator->() const { return F; }
  FuncDecl &operator*() const { return *F; }
};

ParsedFunc parseOk(const std::string &Src) {
  ParsedFunc R;
  R.P = std::make_unique<Parser>(Src);
  R.F = R.P->parseFunction();
  EXPECT_NE(R.F, nullptr);
  for (const std::string &E : R.P->errors())
    ADD_FAILURE() << E;
  return R;
}

} // namespace

TEST(ParserTest, Precedence) {
  auto F = parseOk("func f() { x = 1 + 2 * 3 - 4 / 2; }");
  const auto *A = ast_cast<AssignStmt>(F->Body[0]);
  // ((1 + (2*3)) - (4/2))
  EXPECT_EQ(toString(A->value()), "((1 + (2 * 3)) - (4 / 2))");
}

TEST(ParserTest, PowerIsRightAssociativeAndTight) {
  auto F = parseOk("func f() { x = 2 * 3 ^ 2 ^ 2; }");
  const auto *A = ast_cast<AssignStmt>(F->Body[0]);
  EXPECT_EQ(toString(A->value()), "(2 * (3 ^ (2 ^ 2)))");
}

TEST(ParserTest, UnaryMinus) {
  auto F = parseOk("func f(a) { x = -a * 2; y = 1 - -2; }");
  const auto *X = ast_cast<AssignStmt>(F->Body[0]);
  EXPECT_EQ(toString(X->value()), "((-a) * 2)");
  const auto *Y = ast_cast<AssignStmt>(F->Body[1]);
  EXPECT_EQ(toString(Y->value()), "(1 - (-2))");
}

TEST(ParserTest, Comparisons) {
  auto F = parseOk("func f(a, b) { if (a + 1 <= b * 2) { x = 1; } }");
  const auto *If = ast_cast<IfStmt>(F->Body[0]);
  EXPECT_EQ(toString(If->cond()), "((a + 1) <= (b * 2))");
}

TEST(ParserTest, LoopForms) {
  auto F = parseOk("func f(n) {"
                   "  loop L1 { break; }"
                   "  for L2: i = 1 to n by 2 { x = i; }"
                   "  for j = n downto 1 { x = j; }"
                   "  while (n > 0) { break; }"
                   "}");
  ASSERT_EQ(F->Body.size(), 4u);
  EXPECT_EQ(ast_cast<LoopStmt>(F->Body[0])->label(), "L1");
  const auto *For = ast_cast<ForStmt>(F->Body[1]);
  EXPECT_EQ(For->label(), "L2");
  EXPECT_NE(For->step(), nullptr);
  EXPECT_FALSE(For->isDown());
  const auto *Down = ast_cast<ForStmt>(F->Body[2]);
  EXPECT_TRUE(Down->isDown());
  EXPECT_EQ(Down->step(), nullptr);
  // Auto-generated labels for unlabeled loops.
  EXPECT_FALSE(Down->label().empty());
  EXPECT_FALSE(ast_cast<WhileStmt>(F->Body[3])->label().empty());
}

TEST(ParserTest, IfElseAndSingleStatementBodies) {
  auto F = parseOk("func f(a) {"
                   "  if (a > 0) x = 1; else x = 2;"
                   "  if (a > 1) { x = 3; } else { if (a > 2) x = 4; }"
                   "}");
  const auto *I1 = ast_cast<IfStmt>(F->Body[0]);
  EXPECT_EQ(I1->thenBody().size(), 1u);
  EXPECT_EQ(I1->elseBody().size(), 1u);
}

TEST(ParserTest, MultiDimArrayRefs) {
  auto F = parseOk("func f(i, j) { A[i, j+1] = A[i-1, j] + B[i]; }");
  const auto *S = ast_cast<ArrayAssignStmt>(F->Body[0]);
  EXPECT_EQ(S->indices().size(), 2u);
}

TEST(ParserTest, ReturnForms) {
  auto F = parseOk("func f(a) { if (a > 0) { return a; } return; }");
  const auto *R =
      ast_cast<ReturnStmt>(ast_cast<IfStmt>(F->Body[0])->thenBody()[0]);
  EXPECT_NE(R->value(), nullptr);
  EXPECT_EQ(ast_cast<ReturnStmt>(F->Body[1])->value(), nullptr);
}

TEST(ParserTest, RoundTripPrinting) {
  const char *Src = "func f(n) {\n"
                    "  s = 0;\n"
                    "  for L1: i = 1 to n {\n"
                    "    s = (s + i);\n"
                    "  }\n"
                    "  return s;\n"
                    "}\n";
  auto F = parseOk(Src);
  // Print and reparse: the ASTs must render identically.
  std::string Printed = toString(*F);
  auto F2 = parseOk(Printed);
  EXPECT_EQ(Printed, toString(*F2));
}

TEST(ParserTest, ErrorRecoveryMessages) {
  struct Case {
    const char *Src;
    const char *Expect;
  };
  const Case Cases[] = {
      {"func f() { x = ; }", "expected expression"},
      {"func f() { x 1; }", "expected '='"},
      {"func f() { for i 1 to 2 { } }", "expected '='"},
      {"func () {}", "expected function name"},
      {"func f() { if a > 0 { } }", "expected '('"},
  };
  for (const Case &C : Cases) {
    Parser P(C.Src);
    EXPECT_EQ(P.parseFunction(), nullptr) << C.Src;
    ASSERT_FALSE(P.errors().empty()) << C.Src;
    EXPECT_NE(P.errors()[0].find(C.Expect), std::string::npos)
        << C.Src << " -> " << P.errors()[0];
  }
}

TEST(ParserTest, LexErrorSurfaces) {
  Parser P("func f() { x = $; }");
  EXPECT_EQ(P.parseFunction(), nullptr);
  ASSERT_FALSE(P.errors().empty());
  EXPECT_NE(P.errors()[0].find("lex error"), std::string::npos);
}

TEST(LexerTest, HugeLiteralIsErrorTokenNotException) {
  // std::stoll would throw out_of_range on this; the lexer must instead
  // surface a diagnosable Error token (fuzzer inputs are untrusted).
  Lexer L("x = 99999999999999999999999999");
  L.next(); // x
  L.next(); // =
  Token Bad = L.next();
  EXPECT_EQ(Bad.Kind, TokenKind::Error);
  EXPECT_NE(Bad.Text.find("out of range"), std::string::npos);
  // INT64_MAX itself still lexes.
  Lexer L2("9223372036854775807");
  Token Max = L2.next();
  EXPECT_EQ(Max.Kind, TokenKind::Number);
  EXPECT_EQ(Max.Value, INT64_MAX);
  // One past INT64_MAX does not.
  Lexer L3("9223372036854775808");
  EXPECT_EQ(L3.next().Kind, TokenKind::Error);
}

TEST(ParserTest, HugeLiteralSurfacesAsLexError) {
  Parser P("func f() { return 123456789012345678901234567890; }");
  EXPECT_EQ(P.parseFunction(), nullptr);
  ASSERT_FALSE(P.errors().empty());
  EXPECT_NE(P.errors()[0].find("out of range"), std::string::npos);
}

TEST(ParserTest, TruncatedInputNeverCrashes) {
  // Every prefix of a valid program must produce a parse error or a valid
  // AST -- never an assert or exception.  (The generator never emits
  // malformed text, but the minimizer's line subsets can.)
  const std::string Src = "func f(n) {"
                          "  s = 0;"
                          "  for L1: i = 1 to n by 2 {"
                          "    if (i > 3) { s = s + A[i, 2]; } else break;"
                          "  }"
                          "  while (s < n) { s = s * 2; }"
                          "  return s;"
                          "}";
  for (size_t Len = 0; Len <= Src.size(); ++Len) {
    Parser P(Src.substr(0, Len));
    FuncDecl *F = P.parseFunction();
    if (!F)
      EXPECT_FALSE(P.errors().empty()) << "silent failure at prefix " << Len;
  }
}

//===----------------------------------------------------------------------===//
// Lowering diagnostics
//===----------------------------------------------------------------------===//

namespace {

/// Lowers \p Src expecting failure; returns the first diagnostic.
std::string lowerError(const std::string &Src) {
  std::vector<std::string> Errors;
  auto F = biv::frontend::parseAndLower(Src, Errors);
  EXPECT_EQ(F, nullptr) << Src;
  if (Errors.empty()) {
    ADD_FAILURE() << "no diagnostic for: " << Src;
    return "";
  }
  return Errors[0];
}

} // namespace

TEST(LoweringTest, UndefinedName) {
  EXPECT_NE(lowerError("func f() { x = y + 1; return x; }")
                .find("undefined name 'y'"),
            std::string::npos);
}

TEST(LoweringTest, BreakOutsideLoop) {
  EXPECT_NE(lowerError("func f() { break; }").find("'break' outside"),
            std::string::npos);
}

TEST(LoweringTest, InconsistentArrayRank) {
  EXPECT_NE(lowerError("func f(n) { A[1] = n; x = A[1, 2]; return x; }")
                .find("inconsistent rank"),
            std::string::npos);
}

TEST(LoweringTest, NameUsedAsArrayAndScalar) {
  EXPECT_NE(lowerError("func f() { A = 1; A[2] = 3; return A; }")
                .find("both array and scalar"),
            std::string::npos);
  // A parameter subscripted as an array is the same conflict.
  EXPECT_NE(lowerError("func f(A) { A[1] = 2; return 0; }")
                .find("both array and scalar"),
            std::string::npos);
}

TEST(LoweringTest, DuplicateParameterName) {
  EXPECT_NE(lowerError("func f(a, b, a) { return a; }")
                .find("duplicate parameter name 'a'"),
            std::string::npos);
}

TEST(LoweringTest, DuplicateLoopLabel) {
  EXPECT_NE(lowerError("func f(n) {"
                       "  for L: i = 1 to n { x = i; }"
                       "  for L: j = 1 to n { y = j; }"
                       "  return 0;"
                       "}")
                .find("duplicate loop label 'L'"),
            std::string::npos);
  // Auto-generated labels never collide with each other or user labels.
  std::vector<std::string> Errors;
  auto F = biv::frontend::parseAndLower("func g(n) {"
                                        "  loop { break; }"
                                        "  loop { break; }"
                                        "  while (n > 0) { break; }"
                                        "  return 0;"
                                        "}",
                                        Errors);
  EXPECT_NE(F, nullptr);
  EXPECT_TRUE(Errors.empty());
}
