//===- tests/cache_test.cpp - Content-addressed analysis cache -----------===//
//
// Unit tests for cache/AnalysisCache: digesting, payload round trips, the
// append-only file format, and -- most importantly -- every way a cache file
// can be stale or damaged.  The invariant under test throughout: the cache
// may forget, but it may never lie (serve bytes for the wrong key) and
// never crash on hostile input.
//
//===----------------------------------------------------------------------===//

#include "cache/AnalysisCache.h"
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace biv;
using namespace biv::cache;

namespace {

/// A per-test scratch path that is removed on destruction.
struct TempPath {
  std::string Path;
  explicit TempPath(const std::string &Name)
      : Path((std::filesystem::path(::testing::TempDir()) / Name).string()) {
    std::filesystem::remove(Path);
  }
  ~TempPath() { std::filesystem::remove(Path); }
};

CacheEntry sampleEntry(const std::string &Report) {
  CacheEntry E;
  E.ReportText = Report;
  E.Stats.Regions = 3;
  E.Stats.LinearFamilies = 2;
  E.Stats.PolynomialFamilies = 1;
  E.Kinds.Linear = 2;
  E.Kinds.Polynomial = 1;
  E.Instructions = 42;
  E.Loops = 2;
  E.Counters = {{"ivclass.kind.linear", 2}, {"ivclass.kind.polynomial", 1}};
  return E;
}

/// Overwrites the u64 at byte \p Offset of \p Path.
void patchU64(const std::string &Path, uint64_t Offset, uint64_t V) {
  std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(F.is_open());
  F.seekp(static_cast<std::streamoff>(Offset));
  F.write(reinterpret_cast<const char *>(&V), sizeof V);
  ASSERT_TRUE(F.good());
}

} // namespace

TEST(CacheDigestTest, Fnv1aNeverZeroAndSeedSensitive) {
  EXPECT_NE(fnv1a(""), 0u);
  EXPECT_NE(fnv1a("x"), 0u);
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abc", /*Seed=*/1));
  // Deterministic across calls.
  EXPECT_EQ(fnv1a("stable"), fnv1a("stable"));
}

TEST(CacheDigestTest, UnitDigestSeparatesContentAndOptions) {
  const std::string IR = "func f:\n  entry:\n    ret 0\n";
  // Same inputs, same key; any input change, a different key.  An
  // options-bit flip must miss even with identical IR -- report bytes
  // depend on those switches.
  EXPECT_EQ(unitDigest(IR, 5), unitDigest(IR, 5));
  EXPECT_NE(unitDigest(IR, 5), unitDigest(IR, 4));
  EXPECT_NE(unitDigest(IR, 5), unitDigest(IR + " ", 5));
  EXPECT_NE(unitDigest(IR, 5), 0u);
}

TEST(CacheEntryTest, SerializeRoundTripsEverything) {
  CacheEntry E = sampleEntry("report body\nwith two lines\n");
  std::string Bytes = E.serialize();

  CacheEntry D;
  ASSERT_TRUE(D.deserialize(Bytes));
  EXPECT_EQ(D.ReportText, E.ReportText);
  EXPECT_EQ(D.Stats.Regions, E.Stats.Regions);
  EXPECT_EQ(D.Stats.LinearFamilies, E.Stats.LinearFamilies);
  EXPECT_EQ(D.Stats.PolynomialFamilies, E.Stats.PolynomialFamilies);
  EXPECT_EQ(D.Kinds.Linear, E.Kinds.Linear);
  EXPECT_EQ(D.Kinds.Polynomial, E.Kinds.Polynomial);
  EXPECT_EQ(D.Instructions, E.Instructions);
  EXPECT_EQ(D.Loops, E.Loops);
  EXPECT_EQ(D.Counters, E.Counters);
}

TEST(CacheEntryTest, DeserializeRejectsMalformedBytes) {
  std::string Bytes = sampleEntry("r").serialize();

  CacheEntry D;
  // Truncation anywhere must fail cleanly, not read out of bounds.
  for (size_t Cut : {size_t(0), size_t(4), Bytes.size() / 2, Bytes.size() - 1})
    EXPECT_FALSE(D.deserialize(Bytes.substr(0, Cut))) << "cut at " << Cut;
  // Trailing garbage is as malformed as a missing tail: length fields must
  // account for every byte.
  EXPECT_FALSE(D.deserialize(Bytes + "x"));
  EXPECT_TRUE(D.deserialize(Bytes));
}

TEST(AnalysisCacheTest, MissingFileOpensEmpty) {
  TempPath P("cache_missing.bin");
  AnalysisCache C;
  std::string Err;
  ASSERT_TRUE(C.open(P.Path, Err)) << Err;
  EXPECT_FALSE(C.invalidated());
  EXPECT_EQ(C.entryCount(), 0u);
  EXPECT_EQ(C.lookup(fnv1a("anything")), nullptr);
}

TEST(AnalysisCacheTest, InsertLookupSaveReopen) {
  TempPath P("cache_roundtrip.bin");
  uint64_t D1 = unitDigest("func a", 0), D2 = unitDigest("func b", 0);

  {
    AnalysisCache C;
    std::string Err;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    C.insert(D1, sampleEntry("report A"));
    C.insert(D2, sampleEntry("report B"));
    EXPECT_EQ(C.pendingCount(), 2u);
    // Pending entries are visible before save.
    ASSERT_NE(C.lookup(D1), nullptr);
    EXPECT_EQ(C.lookup(D1)->ReportText, "report A");
    ASSERT_TRUE(C.save(Err)) << Err;
    EXPECT_EQ(C.pendingCount(), 0u);
  }

  AnalysisCache C2;
  std::string Err;
  ASSERT_TRUE(C2.open(P.Path, Err)) << Err;
  EXPECT_FALSE(C2.invalidated());
  EXPECT_EQ(C2.entryCount(), 2u);
  ASSERT_NE(C2.lookup(D1), nullptr);
  ASSERT_NE(C2.lookup(D2), nullptr);
  EXPECT_EQ(C2.lookup(D1)->ReportText, "report A");
  EXPECT_EQ(C2.lookup(D2)->ReportText, "report B");
  EXPECT_EQ(C2.lookup(D2)->Counters, sampleEntry("x").Counters);
  EXPECT_EQ(C2.lookup(unitDigest("func c", 0)), nullptr);
}

TEST(AnalysisCacheTest, AppendPreservesExistingEntries) {
  TempPath P("cache_append.bin");
  uint64_t D1 = unitDigest("func a", 0), D2 = unitDigest("func b", 0);
  std::string Err;

  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    C.insert(D1, sampleEntry("first"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  uintmax_t SizeAfterFirst = std::filesystem::file_size(P.Path);
  {
    // A warm run that discovers one new unit: appends, never rewrites.
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_EQ(C.entryCount(), 1u);
    C.insert(D2, sampleEntry("second"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  EXPECT_GT(std::filesystem::file_size(P.Path), SizeAfterFirst);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_EQ(C.entryCount(), 2u);
    ASSERT_NE(C.lookup(D1), nullptr);
    EXPECT_EQ(C.lookup(D1)->ReportText, "first");
    ASSERT_NE(C.lookup(D2), nullptr);
    EXPECT_EQ(C.lookup(D2)->ReportText, "second");
  }
}

TEST(AnalysisCacheTest, SaveWithNothingPendingIsANoOp) {
  TempPath P("cache_noop.bin");
  std::string Err;
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    C.insert(unitDigest("f", 0), sampleEntry("r"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  auto Before = std::filesystem::last_write_time(P.Path);
  uintmax_t Size = std::filesystem::file_size(P.Path);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    ASSERT_TRUE(C.save(Err)) << Err; // fully warm run: no writes at all
  }
  EXPECT_EQ(std::filesystem::file_size(P.Path), Size);
  EXPECT_EQ(std::filesystem::last_write_time(P.Path), Before);
}

TEST(AnalysisCacheTest, DuplicateInsertKeepsFirst) {
  AnalysisCache C; // never opened: pure in-memory use is supported
  uint64_t D = unitDigest("f", 0);
  C.insert(D, sampleEntry("first"));
  C.insert(D, sampleEntry("shadowed"));
  EXPECT_EQ(C.pendingCount(), 1u);
  ASSERT_NE(C.lookup(D), nullptr);
  EXPECT_EQ(C.lookup(D)->ReportText, "first");
}

TEST(AnalysisCacheTest, StaleSaltInvalidatesWholesale) {
  TempPath P("cache_stale_salt.bin");
  uint64_t D = unitDigest("f", 0);
  std::string Err;
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    C.insert(D, sampleEntry("old analysis"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  // Simulate an analysis-semantics bump: the salt u64 lives at header
  // offset 16 (after magic and format).
  patchU64(P.Path, 16, AnalysisVersionSalt + 1);

  AnalysisCache C;
  ASSERT_TRUE(C.open(P.Path, Err)) << Err; // stale is not an I/O error
  EXPECT_TRUE(C.invalidated());
  EXPECT_EQ(C.entryCount(), 0u);
  EXPECT_EQ(C.lookup(D), nullptr);

  // The rebuilt cache must be loadable again.
  C.insert(D, sampleEntry("new analysis"));
  ASSERT_TRUE(C.save(Err)) << Err;
  AnalysisCache C2;
  ASSERT_TRUE(C2.open(P.Path, Err)) << Err;
  EXPECT_FALSE(C2.invalidated());
  ASSERT_NE(C2.lookup(D), nullptr);
  EXPECT_EQ(C2.lookup(D)->ReportText, "new analysis");
}

TEST(AnalysisCacheTest, DamagedFilesInvalidateNotCrash) {
  uint64_t D = unitDigest("f", 0);
  std::string Err;

  // A valid file to mutilate, regenerated per scenario.
  auto makeValid = [&](const std::string &Path) {
    std::filesystem::remove(Path);
    AnalysisCache C;
    ASSERT_TRUE(C.open(Path, Err)) << Err;
    C.insert(D, sampleEntry("payload"));
    ASSERT_TRUE(C.save(Err)) << Err;
  };

  TempPath P("cache_damage.bin");

  // Truncated mid-log: the tail footer is gone.
  makeValid(P.Path);
  std::filesystem::resize_file(P.Path,
                               std::filesystem::file_size(P.Path) - 9);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_TRUE(C.invalidated());
    EXPECT_EQ(C.entryCount(), 0u);
  }

  // Bad leading magic.
  makeValid(P.Path);
  patchU64(P.Path, 0, 0xdeadbeefull);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_TRUE(C.invalidated());
  }

  // Future format revision.
  makeValid(P.Path);
  patchU64(P.Path, 8, CacheFormatVersion + 1);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_TRUE(C.invalidated());
  }

  // Shorter than even a header.
  makeValid(P.Path);
  std::filesystem::resize_file(P.Path, 7);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_TRUE(C.invalidated());
    // And a save from the invalidated state rewrites a loadable file.
    C.insert(D, sampleEntry("rebuilt"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_FALSE(C.invalidated());
    ASSERT_NE(C.lookup(D), nullptr);
    EXPECT_EQ(C.lookup(D)->ReportText, "rebuilt");
  }
}

TEST(AnalysisCacheTest, UnwritablePathFailsLoudly) {
  // The whole point of satellite 4: persisting to a path that cannot be
  // written must produce an error string, not a silent success.
  AnalysisCache C;
  std::string Err;
  ASSERT_TRUE(
      C.open("/nonexistent-biv-dir/sub/cache.bin", Err)); // missing = empty
  C.insert(unitDigest("f", 0), sampleEntry("r"));
  EXPECT_FALSE(C.save(Err));
  EXPECT_NE(Err.find("cache"), std::string::npos) << Err;
}
