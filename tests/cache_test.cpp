//===- tests/cache_test.cpp - Content-addressed analysis cache -----------===//
//
// Unit tests for cache/AnalysisCache: digesting, payload round trips, the
// append-only file format, and -- most importantly -- every way a cache file
// can be stale or damaged.  The invariant under test throughout: the cache
// may forget, but it may never lie (serve bytes for the wrong key) and
// never crash on hostile input.
//
//===----------------------------------------------------------------------===//

#include "cache/AnalysisCache.h"
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace biv;
using namespace biv::cache;

namespace {

/// A per-test scratch path that is removed on destruction.
struct TempPath {
  std::string Path;
  explicit TempPath(const std::string &Name)
      : Path((std::filesystem::path(::testing::TempDir()) / Name).string()) {
    std::filesystem::remove(Path);
  }
  ~TempPath() { std::filesystem::remove(Path); }
};

CacheEntry sampleEntry(const std::string &Report) {
  CacheEntry E;
  E.ReportText = Report;
  E.Stats.Regions = 3;
  E.Stats.LinearFamilies = 2;
  E.Stats.PolynomialFamilies = 1;
  E.Kinds.Linear = 2;
  E.Kinds.Polynomial = 1;
  E.Instructions = 42;
  E.Loops = 2;
  E.Counters = {{"ivclass.kind.linear", 2}, {"ivclass.kind.polynomial", 1}};
  return E;
}

/// Overwrites the u64 at byte \p Offset of \p Path.
void patchU64(const std::string &Path, uint64_t Offset, uint64_t V) {
  std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(F.is_open());
  F.seekp(static_cast<std::streamoff>(Offset));
  F.write(reinterpret_cast<const char *>(&V), sizeof V);
  ASSERT_TRUE(F.good());
}

} // namespace

TEST(CacheDigestTest, Fnv1aNeverZeroAndSeedSensitive) {
  EXPECT_NE(fnv1a(""), 0u);
  EXPECT_NE(fnv1a("x"), 0u);
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abc", /*Seed=*/1));
  // Deterministic across calls.
  EXPECT_EQ(fnv1a("stable"), fnv1a("stable"));
}

TEST(CacheDigestTest, UnitDigestSeparatesContentAndOptions) {
  const std::string IR = "func f:\n  entry:\n    ret 0\n";
  // Same inputs, same key; any input change, a different key.  An
  // options-bit flip must miss even with identical IR -- report bytes
  // depend on those switches.
  EXPECT_EQ(unitDigest(IR, 5), unitDigest(IR, 5));
  EXPECT_NE(unitDigest(IR, 5), unitDigest(IR, 4));
  EXPECT_NE(unitDigest(IR, 5), unitDigest(IR + " ", 5));
  EXPECT_NE(unitDigest(IR, 5), 0u);
}

TEST(CacheEntryTest, SerializeRoundTripsEverything) {
  CacheEntry E = sampleEntry("report body\nwith two lines\n");
  std::string Bytes = E.serialize();

  CacheEntry D;
  ASSERT_TRUE(D.deserialize(Bytes));
  EXPECT_EQ(D.ReportText, E.ReportText);
  EXPECT_EQ(D.Stats.Regions, E.Stats.Regions);
  EXPECT_EQ(D.Stats.LinearFamilies, E.Stats.LinearFamilies);
  EXPECT_EQ(D.Stats.PolynomialFamilies, E.Stats.PolynomialFamilies);
  EXPECT_EQ(D.Kinds.Linear, E.Kinds.Linear);
  EXPECT_EQ(D.Kinds.Polynomial, E.Kinds.Polynomial);
  EXPECT_EQ(D.Instructions, E.Instructions);
  EXPECT_EQ(D.Loops, E.Loops);
  EXPECT_EQ(D.Counters, E.Counters);
}

TEST(CacheEntryTest, DeserializeRejectsMalformedBytes) {
  std::string Bytes = sampleEntry("r").serialize();

  CacheEntry D;
  // Truncation anywhere must fail cleanly, not read out of bounds.
  for (size_t Cut : {size_t(0), size_t(4), Bytes.size() / 2, Bytes.size() - 1})
    EXPECT_FALSE(D.deserialize(Bytes.substr(0, Cut))) << "cut at " << Cut;
  // Trailing garbage is as malformed as a missing tail: length fields must
  // account for every byte.
  EXPECT_FALSE(D.deserialize(Bytes + "x"));
  EXPECT_TRUE(D.deserialize(Bytes));
}

TEST(AnalysisCacheTest, MissingFileOpensEmpty) {
  TempPath P("cache_missing.bin");
  AnalysisCache C;
  std::string Err;
  ASSERT_TRUE(C.open(P.Path, Err)) << Err;
  EXPECT_FALSE(C.invalidated());
  EXPECT_EQ(C.entryCount(), 0u);
  EXPECT_EQ(C.lookup(fnv1a("anything")), nullptr);
}

TEST(AnalysisCacheTest, InsertLookupSaveReopen) {
  TempPath P("cache_roundtrip.bin");
  uint64_t D1 = unitDigest("func a", 0), D2 = unitDigest("func b", 0);

  {
    AnalysisCache C;
    std::string Err;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    C.insert(D1, sampleEntry("report A"));
    C.insert(D2, sampleEntry("report B"));
    EXPECT_EQ(C.pendingCount(), 2u);
    // Pending entries are visible before save.
    ASSERT_NE(C.lookup(D1), nullptr);
    EXPECT_EQ(C.lookup(D1)->ReportText, "report A");
    ASSERT_TRUE(C.save(Err)) << Err;
    EXPECT_EQ(C.pendingCount(), 0u);
  }

  AnalysisCache C2;
  std::string Err;
  ASSERT_TRUE(C2.open(P.Path, Err)) << Err;
  EXPECT_FALSE(C2.invalidated());
  EXPECT_EQ(C2.entryCount(), 2u);
  ASSERT_NE(C2.lookup(D1), nullptr);
  ASSERT_NE(C2.lookup(D2), nullptr);
  EXPECT_EQ(C2.lookup(D1)->ReportText, "report A");
  EXPECT_EQ(C2.lookup(D2)->ReportText, "report B");
  EXPECT_EQ(C2.lookup(D2)->Counters, sampleEntry("x").Counters);
  EXPECT_EQ(C2.lookup(unitDigest("func c", 0)), nullptr);
}

TEST(AnalysisCacheTest, AppendPreservesExistingEntries) {
  TempPath P("cache_append.bin");
  uint64_t D1 = unitDigest("func a", 0), D2 = unitDigest("func b", 0);
  std::string Err;

  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    C.insert(D1, sampleEntry("first"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  uintmax_t SizeAfterFirst = std::filesystem::file_size(P.Path);
  {
    // A warm run that discovers one new unit: appends, never rewrites.
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_EQ(C.entryCount(), 1u);
    C.insert(D2, sampleEntry("second"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  EXPECT_GT(std::filesystem::file_size(P.Path), SizeAfterFirst);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_EQ(C.entryCount(), 2u);
    ASSERT_NE(C.lookup(D1), nullptr);
    EXPECT_EQ(C.lookup(D1)->ReportText, "first");
    ASSERT_NE(C.lookup(D2), nullptr);
    EXPECT_EQ(C.lookup(D2)->ReportText, "second");
  }
}

TEST(AnalysisCacheTest, SaveWithNothingPendingIsANoOp) {
  TempPath P("cache_noop.bin");
  std::string Err;
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    C.insert(unitDigest("f", 0), sampleEntry("r"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  auto Before = std::filesystem::last_write_time(P.Path);
  uintmax_t Size = std::filesystem::file_size(P.Path);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    ASSERT_TRUE(C.save(Err)) << Err; // fully warm run: no writes at all
  }
  EXPECT_EQ(std::filesystem::file_size(P.Path), Size);
  EXPECT_EQ(std::filesystem::last_write_time(P.Path), Before);
}

TEST(AnalysisCacheTest, DuplicateInsertKeepsFirst) {
  AnalysisCache C; // never opened: pure in-memory use is supported
  uint64_t D = unitDigest("f", 0);
  C.insert(D, sampleEntry("first"));
  C.insert(D, sampleEntry("shadowed"));
  EXPECT_EQ(C.pendingCount(), 1u);
  ASSERT_NE(C.lookup(D), nullptr);
  EXPECT_EQ(C.lookup(D)->ReportText, "first");
}

TEST(AnalysisCacheTest, StaleSaltInvalidatesWholesale) {
  TempPath P("cache_stale_salt.bin");
  uint64_t D = unitDigest("f", 0);
  std::string Err;
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    C.insert(D, sampleEntry("old analysis"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  // Simulate an analysis-semantics bump: the salt u64 lives at header
  // offset 16 (after magic and format).
  patchU64(P.Path, 16, AnalysisVersionSalt + 1);

  AnalysisCache C;
  ASSERT_TRUE(C.open(P.Path, Err)) << Err; // stale is not an I/O error
  EXPECT_TRUE(C.invalidated());
  EXPECT_EQ(C.entryCount(), 0u);
  EXPECT_EQ(C.lookup(D), nullptr);

  // The rebuilt cache must be loadable again.
  C.insert(D, sampleEntry("new analysis"));
  ASSERT_TRUE(C.save(Err)) << Err;
  AnalysisCache C2;
  ASSERT_TRUE(C2.open(P.Path, Err)) << Err;
  EXPECT_FALSE(C2.invalidated());
  ASSERT_NE(C2.lookup(D), nullptr);
  EXPECT_EQ(C2.lookup(D)->ReportText, "new analysis");
}

TEST(AnalysisCacheTest, DamagedFilesInvalidateNotCrash) {
  uint64_t D = unitDigest("f", 0);
  std::string Err;

  // A valid file to mutilate, regenerated per scenario.
  auto makeValid = [&](const std::string &Path) {
    std::filesystem::remove(Path);
    AnalysisCache C;
    ASSERT_TRUE(C.open(Path, Err)) << Err;
    C.insert(D, sampleEntry("payload"));
    ASSERT_TRUE(C.save(Err)) << Err;
  };

  TempPath P("cache_damage.bin");

  // Truncated mid-log: the tail footer is gone.
  makeValid(P.Path);
  std::filesystem::resize_file(P.Path,
                               std::filesystem::file_size(P.Path) - 9);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_TRUE(C.invalidated());
    EXPECT_EQ(C.entryCount(), 0u);
  }

  // Bad leading magic.
  makeValid(P.Path);
  patchU64(P.Path, 0, 0xdeadbeefull);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_TRUE(C.invalidated());
  }

  // Future format revision.
  makeValid(P.Path);
  patchU64(P.Path, 8, CacheFormatVersion + 1);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_TRUE(C.invalidated());
  }

  // Shorter than even a header.
  makeValid(P.Path);
  std::filesystem::resize_file(P.Path, 7);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_TRUE(C.invalidated());
    // And a save from the invalidated state rewrites a loadable file.
    C.insert(D, sampleEntry("rebuilt"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_FALSE(C.invalidated());
    ASSERT_NE(C.lookup(D), nullptr);
    EXPECT_EQ(C.lookup(D)->ReportText, "rebuilt");
  }
}

TEST(AnalysisCacheTest, UnwritablePathFailsLoudly) {
  // Persisting to a path that cannot be written must produce an error
  // string, not a silent success.
  AnalysisCache C;
  std::string Err;
  ASSERT_TRUE(
      C.open("/nonexistent-biv-dir/sub/cache.bin", Err)); // missing = empty
  C.insert(unitDigest("f", 0), sampleEntry("r"));
  EXPECT_FALSE(C.save(Err));
  EXPECT_NE(Err.find("cache"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Multi-writer world: generations, refresh, compaction, racing appenders.
// The invariant stays the same -- forget or retry cleanly, never serve a
// corrupt hit -- but now the damage comes from concurrent processes, not
// just a mutilated file.
//===----------------------------------------------------------------------===//

TEST(AnalysisCacheTest, GenerationAdvancesPerSave) {
  TempPath P("cache_generation.bin");
  std::string Err;
  AnalysisCache C;
  ASSERT_TRUE(C.open(P.Path, Err)) << Err;
  EXPECT_EQ(C.generation(), 0u); // no valid file yet
  C.insert(unitDigest("a", 0), sampleEntry("a"));
  ASSERT_TRUE(C.save(Err)) << Err;
  EXPECT_EQ(C.generation(), 1u);
  C.insert(unitDigest("b", 0), sampleEntry("b"));
  ASSERT_TRUE(C.save(Err)) << Err;
  EXPECT_EQ(C.generation(), 2u);

  // A fresh open reads the generation out of the tail.
  AnalysisCache C2;
  ASSERT_TRUE(C2.open(P.Path, Err)) << Err;
  EXPECT_EQ(C2.generation(), 2u);
}

TEST(AnalysisCacheTest, RefreshIfChangedAdoptsAnotherWritersAppend) {
  TempPath P("cache_refresh.bin");
  std::string Err;
  uint64_t D1 = unitDigest("a", 0), D2 = unitDigest("b", 0);

  AnalysisCache Reader, Writer;
  ASSERT_TRUE(Reader.open(P.Path, Err)) << Err;
  ASSERT_TRUE(Writer.open(P.Path, Err)) << Err;

  Writer.insert(D1, sampleEntry("from writer"));
  ASSERT_TRUE(Writer.save(Err)) << Err;

  // The reader's mapped view predates the save; one refresh adopts it.
  EXPECT_EQ(Reader.lookup(D1), nullptr);
  EXPECT_TRUE(Reader.refreshIfChanged());
  ASSERT_NE(Reader.lookup(D1), nullptr);
  EXPECT_EQ(Reader.lookup(D1)->ReportText, "from writer");
  // Nothing moved since: refresh is a cheap no.
  EXPECT_FALSE(Reader.refreshIfChanged());

  // The reader's own pending work survives a refresh.
  Reader.insert(D2, sampleEntry("from reader"));
  Writer.insert(unitDigest("c", 0), sampleEntry("more"));
  ASSERT_TRUE(Writer.save(Err)) << Err;
  EXPECT_TRUE(Reader.refreshIfChanged());
  ASSERT_NE(Reader.lookup(D2), nullptr);
  EXPECT_EQ(Reader.lookup(D2)->ReportText, "from reader");
}

TEST(AnalysisCacheTest, RacingAppendersBothLand) {
  // Two instances (two open file descriptions, so a real flock contest --
  // same shape as two worker processes) append different entries without
  // coordinating.  Both saves must succeed and the union must be on disk.
  TempPath P("cache_race.bin");
  std::string Err;
  uint64_t DA = unitDigest("a", 0), DB = unitDigest("b", 0);

  AnalysisCache A, B;
  ASSERT_TRUE(A.open(P.Path, Err)) << Err;
  ASSERT_TRUE(B.open(P.Path, Err)) << Err;
  A.insert(DA, sampleEntry("A's entry"));
  B.insert(DB, sampleEntry("B's entry"));
  ASSERT_TRUE(A.save(Err)) << Err;
  // B's loaded view (generation 0) is now stale; its save must merge, not
  // clobber A's append.
  ASSERT_TRUE(B.save(Err)) << Err;
  EXPECT_EQ(B.generation(), 2u);

  AnalysisCache C;
  ASSERT_TRUE(C.open(P.Path, Err)) << Err;
  EXPECT_EQ(C.entryCount(), 2u);
  ASSERT_NE(C.lookup(DA), nullptr);
  EXPECT_EQ(C.lookup(DA)->ReportText, "A's entry");
  ASSERT_NE(C.lookup(DB), nullptr);
  EXPECT_EQ(C.lookup(DB)->ReportText, "B's entry");

  // And the duplicate-digest race: both discover the same unit.  First
  // writer wins; the second's save drops its now-redundant copy.
  AnalysisCache X, Y;
  ASSERT_TRUE(X.open(P.Path, Err)) << Err;
  ASSERT_TRUE(Y.open(P.Path, Err)) << Err;
  uint64_t DD = unitDigest("dup", 0);
  X.insert(DD, sampleEntry("first copy"));
  Y.insert(DD, sampleEntry("second copy"));
  ASSERT_TRUE(X.save(Err)) << Err;
  ASSERT_TRUE(Y.save(Err)) << Err;
  AnalysisCache Z;
  ASSERT_TRUE(Z.open(P.Path, Err)) << Err;
  EXPECT_EQ(Z.entryCount(), 3u);
  ASSERT_NE(Z.lookup(DD), nullptr);
  EXPECT_EQ(Z.lookup(DD)->ReportText, "first copy");
}

TEST(AnalysisCacheTest, CompactionEvictsColdEntriesAndBoundsTheFile) {
  TempPath P("cache_compact.bin");
  std::string Err;
  auto digestOf = [](int I) {
    return unitDigest("func " + std::to_string(I), 0);
  };

  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    for (int I = 0; I < 12; ++I)
      C.insert(digestOf(I), sampleEntry("report for function " +
                                        std::to_string(I)));
    ASSERT_TRUE(C.save(Err)) << Err;
    EXPECT_EQ(C.compactions(), 0u); // unbounded: no cap, no compaction
  }
  uintmax_t Unbounded = std::filesystem::file_size(P.Path);

  constexpr uint64_t Cap = 2048;
  ASSERT_GT(Unbounded, Cap) << "test premise: 12 entries exceed the cap";
  uint64_t HotA = digestOf(7), HotB = digestOf(3);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    C.setMaxBytes(Cap);
    // Recency is per-process: touch two survivors-to-be, then trigger a
    // compacting save with one fresh insert (the most recent of all).
    ASSERT_NE(C.lookup(HotA), nullptr);
    ASSERT_NE(C.lookup(HotB), nullptr);
    C.insert(digestOf(100), sampleEntry("the newest entry"));
    ASSERT_TRUE(C.save(Err)) << Err;
    EXPECT_EQ(C.compactions(), 1u);
    // The compacted view keeps serving in-process.
    ASSERT_NE(C.lookup(digestOf(100)), nullptr);
  }
  EXPECT_LE(std::filesystem::file_size(P.Path), Cap);

  // Survivors are the most recently used; the untouched tail is gone.
  AnalysisCache C2;
  ASSERT_TRUE(C2.open(P.Path, Err)) << Err;
  EXPECT_FALSE(C2.invalidated());
  ASSERT_NE(C2.lookup(digestOf(100)), nullptr);
  EXPECT_EQ(C2.lookup(digestOf(100))->ReportText, "the newest entry");
  ASSERT_NE(C2.lookup(HotA), nullptr);
  ASSERT_NE(C2.lookup(HotB), nullptr);
  EXPECT_LT(C2.entryCount(), 12u);

  // Repeated capped saves never push the file back over the cap.
  C2.setMaxBytes(Cap);
  for (int I = 200; I < 212; ++I) {
    C2.insert(digestOf(I), sampleEntry("refill " + std::to_string(I)));
    ASSERT_TRUE(C2.save(Err)) << Err;
    EXPECT_LE(std::filesystem::file_size(P.Path), Cap);
  }
}

TEST(AnalysisCacheTest, StaleGenerationAfterCompactionSwap) {
  // A live reader whose mmap snapshot predates a compaction swap must (a)
  // keep serving its own consistent snapshot, (b) detect the swap via
  // refreshIfChanged, and (c) merge -- not clobber -- on its next save.
  TempPath P("cache_swap.bin");
  std::string Err;
  auto digestOf = [](int I) {
    return unitDigest("func " + std::to_string(I), 0);
  };

  {
    AnalysisCache Seed;
    ASSERT_TRUE(Seed.open(P.Path, Err)) << Err;
    for (int I = 0; I < 10; ++I)
      Seed.insert(digestOf(I), sampleEntry("seed " + std::to_string(I)));
    ASSERT_TRUE(Seed.save(Err)) << Err;
  }

  AnalysisCache Reader;
  ASSERT_TRUE(Reader.open(P.Path, Err)) << Err;
  uint64_t GenBefore = Reader.generation();

  {
    AnalysisCache Compactor;
    ASSERT_TRUE(Compactor.open(P.Path, Err)) << Err;
    Compactor.setMaxBytes(2048);
    Compactor.insert(digestOf(50), sampleEntry("tipping point"));
    ASSERT_TRUE(Compactor.save(Err)) << Err;
    ASSERT_EQ(Compactor.compactions(), 1u);
  }

  // (a) The reader's old snapshot still serves -- the swapped-out inode
  // stays alive under its mapping.
  ASSERT_NE(Reader.lookup(digestOf(0)), nullptr);
  // (b) The swap is visible.
  EXPECT_TRUE(Reader.refreshIfChanged());
  EXPECT_GT(Reader.generation(), GenBefore);
  // (c) New work saved from the reader merges into the compacted file.
  Reader.insert(digestOf(60), sampleEntry("post-swap entry"));
  ASSERT_TRUE(Reader.save(Err)) << Err;
  AnalysisCache Check;
  ASSERT_TRUE(Check.open(P.Path, Err)) << Err;
  ASSERT_NE(Check.lookup(digestOf(60)), nullptr);
  ASSERT_NE(Check.lookup(digestOf(50)), nullptr);
}

TEST(AnalysisCacheTest, TornAppendDegradesToInvalidationOrRetry) {
  // A writer killed mid-append leaves header + partial record and no valid
  // tail.  Openers must invalidate wholesale; live readers must skip the
  // torn state (clean retry), not adopt it; the next save must rebuild.
  TempPath P("cache_torn.bin");
  std::string Err;
  // A fresh save lays records out in digest order, so give "intact" (the
  // record the tear must spare) whichever digest sorts first.
  uint64_t D = std::min(unitDigest("f", 0), unitDigest("g", 0));
  uint64_t D2 = std::max(unitDigest("f", 0), unitDigest("g", 0));
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    C.insert(D, sampleEntry("intact"));
    C.insert(D2, sampleEntry("also intact"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }

  AnalysisCache Reader;
  ASSERT_TRUE(Reader.open(P.Path, Err)) << Err;

  // Tear the file mid-record (inside the second entry's bytes): the first
  // record spans [24, 24 + 16 + |entry|), so cut a little past its end.
  // Computing the offset from the record's real length keeps the tear on
  // the second record no matter how CacheEntry's layout evolves.
  uintmax_t Rec1End = 24 + 16 + sampleEntry("intact").serialize().size();
  ASSERT_GT(std::filesystem::file_size(P.Path), Rec1End + 16);
  std::filesystem::resize_file(P.Path, Rec1End + 10);

  // The live reader: refresh sees a change but refuses the torn image and
  // keeps serving its intact snapshot.
  EXPECT_FALSE(Reader.refreshIfChanged());
  ASSERT_NE(Reader.lookup(D), nullptr);
  EXPECT_EQ(Reader.lookup(D)->ReportText, "intact");

  // A fresh opener: wholesale invalidation, then a clean rebuild.
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    EXPECT_TRUE(C.invalidated());
    EXPECT_EQ(C.entryCount(), 0u);
    C.insert(D, sampleEntry("rebuilt"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  AnalysisCache C2;
  ASSERT_TRUE(C2.open(P.Path, Err)) << Err;
  EXPECT_FALSE(C2.invalidated());
  ASSERT_NE(C2.lookup(D), nullptr);
  EXPECT_EQ(C2.lookup(D)->ReportText, "rebuilt");

  // The reader eventually adopts the rebuilt (valid) image.
  EXPECT_TRUE(Reader.refreshIfChanged());
  ASSERT_NE(Reader.lookup(D), nullptr);
}

TEST(AnalysisCacheTest, CorruptPayloadUnderLazyProbeNeverServesALie) {
  // Structural validation happens at open; payloads deserialize on first
  // lookup.  A payload whose bytes rotted between the two must miss -- and
  // take the whole disk index with it -- never return garbage.
  TempPath P("cache_lazy_corrupt.bin");
  std::string Err;
  uint64_t D1 = unitDigest("a", 0);
  {
    AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    C.insert(D1, sampleEntry("to be corrupted"));
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  // The single record starts right after the 24-byte header; its payload
  // starts 16 bytes later with the ReportText length u64.  Blow that up:
  // the frame stays structurally valid, the payload does not.
  patchU64(P.Path, 24 + 16, uint64_t(1) << 40);

  AnalysisCache C;
  ASSERT_TRUE(C.open(P.Path, Err)) << Err;
  EXPECT_FALSE(C.invalidated()) << "structure is intact at open";
  EXPECT_EQ(C.entryCount(), 1u);
  EXPECT_EQ(C.lookup(D1), nullptr) << "corrupt payload must miss";
  EXPECT_TRUE(C.invalidated());
  EXPECT_EQ(C.lookup(D1), nullptr) << "and stay missing";
}
