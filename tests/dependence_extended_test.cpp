//===- tests/dependence_extended_test.cpp - Section 6's new variable classes --===//
//
// E9 (Figure 10: monotonic directions), E11 (loop L22: periodic families
// translate "=" to "!="), and the wrap-around "holds after k iterations"
// flag -- the dependence-testing payoff the paper's classification exists
// for.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dependence/DependenceAnalyzer.h"

using namespace biv;
using namespace biv::testutil;
using namespace biv::dependence;

namespace {

struct DepRun {
  Analyzed A;
  std::vector<Dependence> Deps;
};

DepRun analyzeDeps(const std::string &Src) {
  DepRun R;
  R.A = analyze(Src);
  DependenceAnalyzer DA(*R.A.IA);
  R.Deps = DA.analyze();
  return R;
}

const Dependence *findDep(const DepRun &R, const std::string &ArrayName,
                          DepKind K) {
  for (const Dependence &D : R.Deps)
    if (D.Kind == K && D.Src->array()->name() == ArrayName)
      return &D;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// E11: periodic families (loop L22)
//===----------------------------------------------------------------------===//

TEST(ExtendedDepTest, LoopL22PeriodicEqBecomesNeq) {
  // j=1; k=2; l=3; loop: A(2j) = A(2k); rotate (j,k,l).  Same periodic
  // family, distinct phases: the "=" solution of 2j == 2k translates to a
  // "!=" direction (distance == 2 (mod 3), never 0).
  DepRun R = analyzeDeps("func l22(n) {"
                         "  j = 1; k = 2; l = 3; temp = 0;"
                         "  for L22: iter = 1 to n {"
                         "    A[2 * j] = A[2 * k] + 1;"
                         "    temp = j;"
                         "    j = k;"
                         "    k = l;"
                         "    l = temp;"
                         "  }"
                         "  return j;"
                         "}");
  ASSERT_FALSE(R.Deps.empty());
  analysis::Loop *L = R.A.loop("L22");
  bool SawPeriodicRefinement = false;
  for (const Dependence &D : R.Deps) {
    if (D.Result.O == DependenceResult::Outcome::Independent ||
        D.Src == D.Dst) // a self pair's residue-0 output dep is real
      continue;
    for (const LoopDirection &LD : D.Result.Directions) {
      if (LD.L != L || !LD.ModPeriod)
        continue;
      SawPeriodicRefinement = true;
      EXPECT_EQ(*LD.ModPeriod, 3u);
      // j and k are one rotation apart: "=" is excluded.
      EXPECT_NE(*LD.ModResidue, 0u);
      EXPECT_EQ(LD.Dirs & DirEQ, 0)
          << "loop-independent dependence must be ruled out";
    }
  }
  EXPECT_TRUE(SawPeriodicRefinement);
}

TEST(ExtendedDepTest, PeriodicDynamicOracle) {
  // The modular claim checked against execution: writes via j and reads
  // via k never touch the same cell in the same iteration.
  DepRun R = analyzeDeps("func l22(n) {"
                         "  j = 1; k = 2; l = 3; temp = 0;"
                         "  for L22: iter = 1 to n {"
                         "    A[2 * j] = iter;"
                         "    B[iter] = A[2 * k];"
                         "    temp = j; j = k; k = l; l = temp;"
                         "  }"
                         "  return j;"
                         "}");
  interp::ExecutionTrace T = interp::run(*R.A.F, {9});
  ASSERT_TRUE(T.ok()) << T.Error;
  // Reconstruct per-iteration subscripts.
  const ir::Instruction *Store = nullptr, *Load = nullptr;
  for (const auto &BB : R.A.F->blocks())
    for (const auto &I : *BB) {
      if (I->opcode() == ir::Opcode::ArrayStore && I->array()->name() == "A")
        Store = I;
      if (I->opcode() == ir::Opcode::ArrayLoad && I->array()->name() == "A")
        Load = I;
    }
  ASSERT_NE(Store, nullptr);
  ASSERT_NE(Load, nullptr);
  const auto &W = T.sequenceOf(ir::cast<ir::Instruction>(Store->operand(1)));
  const auto &Rd = T.sequenceOf(ir::cast<ir::Instruction>(Load->operand(0)));
  ASSERT_EQ(W.size(), Rd.size());
  for (size_t H = 0; H < W.size(); ++H)
    EXPECT_NE(W[H], Rd[H]) << "same-iteration collision at " << H;
}

TEST(ExtendedDepTest, UnrelatedPeriodicFamiliesStayMaybe) {
  // Two independent rotations: no family relation, no refinement.
  DepRun R = analyzeDeps("func f(n) {"
                         "  j = 1; k = 2;"
                         "  p = 1; q = 2;"
                         "  t = 0;"
                         "  for L: iter = 1 to n {"
                         "    A[j] = A[p] + 1;"
                         "    t = j; j = k; k = t;"
                         "    t = p; p = q; q = t;"
                         "  }"
                         "  return j;"
                         "}");
  for (const Dependence &D : R.Deps) {
    if (D.Src == D.Dst)
      continue; // self pairs legitimately carry a residue-0 constraint
    for (const LoopDirection &LD : D.Result.Directions)
      EXPECT_FALSE(LD.ModPeriod.has_value())
          << "cross-family pairs must not claim modular distances";
  }
}

TEST(ExtendedDepTest, NonDistinctRingNoRefinement) {
  // Ring values 1,1: periodicity cannot be exploited (the paper requires
  // the compiler to check distinctness of the initial values).
  DepRun R = analyzeDeps("func f(n) {"
                         "  j = 1; k = 1; t = 0;"
                         "  for L: iter = 1 to n {"
                         "    A[j] = A[k] + 1;"
                         "    t = j; j = k; k = t;"
                         "  }"
                         "  return j;"
                         "}");
  for (const Dependence &D : R.Deps) {
    if (D.Src == D.Dst)
      continue;
    EXPECT_NE(D.Result.O, DependenceResult::Outcome::Independent);
    for (const LoopDirection &LD : D.Result.Directions)
      EXPECT_FALSE(LD.ModPeriod.has_value());
  }
}

//===----------------------------------------------------------------------===//
// E9: monotonic directions (Figure 10)
//===----------------------------------------------------------------------===//

TEST(ExtendedDepTest, Figure10StrictMonotonicEquals) {
  // k3 = k2 + i (strictly increasing inside the guard): B(k3) written and
  // read in the same iteration -> flow direction (=).
  DepRun R = analyzeDeps("func fig10(n) {"
                         "  k = 0;"
                         "  for L15: i = 1 to n {"
                         "    if (A[i] > 0) {"
                         "      k = k + 1;"
                         "      B[k] = A[i];"
                         "      E[i] = B[k];"
                         "    }"
                         "  }"
                         "  return k;"
                         "}");
  const Dependence *FlowB = findDep(R, "B", DepKind::Flow);
  ASSERT_NE(FlowB, nullptr);
  analysis::Loop *L = R.A.loop("L15");
  EXPECT_EQ(FlowB->Result.dirsFor(L), DirEQ)
      << "strictly monotonic same-value subscript: direction (=)";
}

TEST(ExtendedDepTest, Figure10NonStrictMonotonicLeq) {
  // F(k2) written, F(k4) read with k2/k4 only monotonic (k may stay
  // unchanged): flow direction (<=), anti (<).
  DepRun R = analyzeDeps("func fig10b(n) {"
                         "  k = 0;"
                         "  for L15: i = 1 to n {"
                         "    F[k] = A[i];"
                         "    if (A[i] > 0) {"
                         "      k = k + 1;"
                         "    }"
                         "    G[i] = F[k];"
                         "  }"
                         "  return k;"
                         "}");
  const Dependence *FlowF = findDep(R, "F", DepKind::Flow);
  ASSERT_NE(FlowF, nullptr);
  analysis::Loop *L = R.A.loop("L15");
  EXPECT_EQ(FlowF->Result.dirsFor(L) & DirGT, 0)
      << "monotonic subscripts: only (<=) directions survive";
  EXPECT_NE(FlowF->Result.dirsFor(L) & DirEQ, 0);
}

TEST(ExtendedDepTest, MonotonicOracle) {
  // The pack loop: statically-kept directions must cover every dynamic
  // collision of write/read pairs.
  DepRun R = analyzeDeps("func pack(n) {"
                         "  k = 0;"
                         "  for L: i = 1 to n {"
                         "    if (A[i] > 0) {"
                         "      k = k + 1;"
                         "      B[k] = A[i];"
                         "    }"
                         "  }"
                         "  return k;"
                         "}");
  // B is written through a strictly monotonic subscript: self-output dep
  // impossible beyond (=), so no output dependence record should carry LT.
  for (const Dependence &D : R.Deps)
    if (D.Kind == DepKind::Output && D.Src == D.Dst) {
      EXPECT_EQ(D.Result.dirsFor(R.A.loop("L")) & DirLT, 0)
          << "strictly monotonic writes never repeat a cell";
    }
  interp::ExecutionTrace T = interp::runWithArrays(
      *R.A.F, {8},
      {{"A",
        {{{1}, 1}, {{2}, -2}, {{3}, 3}, {{4}, -4},
         {{5}, 5}, {{6}, 6}, {{7}, -7}, {{8}, 8}}}});
  ASSERT_TRUE(T.ok()) << T.Error;
  // Dynamic: the written subscripts are pairwise distinct.
  const ir::Instruction *Store = nullptr;
  for (const auto &BB : R.A.F->blocks())
    for (const auto &I : *BB)
      if (I->opcode() == ir::Opcode::ArrayStore && I->array()->name() == "B")
        Store = I;
  ASSERT_NE(Store, nullptr);
  const auto &Seq =
      T.sequenceOf(ir::cast<ir::Instruction>(Store->operand(1)));
  std::set<int64_t> Unique(Seq.begin(), Seq.end());
  EXPECT_EQ(Unique.size(), Seq.size());
}

//===----------------------------------------------------------------------===//
// Wrap-around subscripts (section 6's peeling discussion, loop L9)
//===----------------------------------------------------------------------===//

TEST(ExtendedDepTest, WrapAroundHoldsAfterKIterations) {
  // iml = n; for i = 1 to n { A(i) = A(iml) + ...; iml = i }: after the
  // first iteration iml == i-1, so the dependence is the distance-1 flow
  // dep, valid after 1 iteration (peel to exploit).
  DepRun R = analyzeDeps("func l9(n) {"
                         "  iml = n;"
                         "  for L9: i = 1 to n {"
                         "    A[i] = A[iml] + 1;"
                         "    iml = i;"
                         "  }"
                         "  return 0;"
                         "}");
  bool SawWrapFlag = false;
  for (const Dependence &D : R.Deps)
    SawWrapFlag |= D.Result.ValidAfterIterations == 1;
  EXPECT_TRUE(SawWrapFlag)
      << "wrap-around subscript must flag the peelable prefix";
}

TEST(ExtendedDepTest, WrapAroundCollapsedNeedsNoFlag) {
  // iml = 0 fits the sequence: iml is the plain IV (L9, 0, 1), ordinary
  // distance-1 dependence, no peeling flag.
  DepRun R = analyzeDeps("func l9b(n) {"
                         "  iml = 0;"
                         "  for L9: i = 1 to n {"
                         "    A[i] = A[iml] + 1;"
                         "    iml = i;"
                         "  }"
                         "  return 0;"
                         "}");
  for (const Dependence &D : R.Deps) {
    EXPECT_EQ(D.Result.ValidAfterIterations, 0u);
    if (D.Kind == DepKind::Flow) {
      ASSERT_EQ(D.Result.Directions.size(), 1u);
      ASSERT_TRUE(D.Result.Directions[0].Distance.has_value());
      EXPECT_EQ(*D.Result.Directions[0].Distance, 1);
    }
  }
}

//===----------------------------------------------------------------------===//
// Precision comparison: extended classes vs. linear-only analysis
//===----------------------------------------------------------------------===//

TEST(ExtendedDepTest, StatsCountRefinements) {
  DepRun R = analyzeDeps("func mix(n) {"
                         "  j = 1; k = 2; t = 0; m = 0;"
                         "  for L: i = 1 to n {"
                         "    A[2 * j] = A[2 * k] + 1;"   // periodic pair
                         "    C[i] = C[i - 1] + 1;"        // strong SIV
                         "    if (A[i] > 0) { m = m + 1; D[m] = i; }"
                         "    t = j; j = k; k = t;"
                         "  }"
                         "  return m;"
                         "}");
  DependenceAnalyzer DA(*R.A.IA);
  std::vector<Dependence> Deps = DA.analyze();
  const DependenceStats &S = DA.stats();
  EXPECT_GT(S.PairsTested, 0u);
  EXPECT_GT(S.DirectionRefined, 0u);
  // The report must render without crashing and mention each array.
  std::string Report = DA.report(Deps);
  EXPECT_NE(Report.find("dep"), std::string::npos);
}
