//===- tests/baseline_test.cpp - Classical baseline and coverage gap ----------===//
//
// Checks the classical/ad-hoc baseline itself, and the paper's core claim:
// the unified algorithm classifies strictly more than classical + ad hoc.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "baseline/ClassicalIV.h"
#include "baseline/PatternMatchers.h"

using namespace biv;
using namespace biv::testutil;
using namespace biv::baseline;

TEST(BaselineTest, FindsBasicIV) {
  Analyzed A = analyze("func f(n) {"
                       "  s = 0;"
                       "  for L: i = 1 to n { s = s + i; }"
                       "  return s;"
                       "}");
  ClassicalResult R = runClassicalIV(*A.loop("L"));
  EXPECT_EQ(R.BasicIVs, 1u); // i; s is not a classical IV (step varies)
  EXPECT_TRUE(R.isIV(A.phi("L", "i")));
  EXPECT_FALSE(R.isIV(A.phi("L", "s")));
}

TEST(BaselineTest, FindsDerivedIVsIteratively) {
  Analyzed A = analyze("func f(n, c) {"
                       "  for L: i = 1 to n {"
                       "    A[2*i + 1] = i;"
                       "    A[c - i] = i;"
                       "  }"
                       "  return 0;"
                       "}");
  ClassicalResult R = runClassicalIV(*A.loop("L"));
  EXPECT_EQ(R.BasicIVs, 1u);
  EXPECT_GE(R.DerivedIVs, 3u); // 2*i, 2*i+1, c-i
  EXPECT_GE(R.Passes, 2u) << "fixed-point detection needs >= 2 sweeps";
}

TEST(BaselineTest, MutualIVsNeedIteration) {
  // The L2 mutual pattern: i = j+c; j = i+k.  One basic variable (the
  // cycle), derived values found across sweeps.
  Analyzed A = analyze("func l2(n, c, k) {"
                       "  j = n; i = 0;"
                       "  loop L2 {"
                       "    i = j + c;"
                       "    j = i + k;"
                       "    if (i > 100) break;"
                       "  }"
                       "  return j;"
                       "}");
  ClassicalResult R = runClassicalIV(*A.loop("L2"));
  EXPECT_TRUE(R.isIV(A.phi("L2", "j")));
}

TEST(BaselineTest, ConditionalEqualIncrementsAreBasic) {
  // Figure 3: same increment on both branches still a basic IV.
  Analyzed A = analyze("func l8(x, n) {"
                       "  i = 1;"
                       "  loop L8 {"
                       "    if (x > 0) { i = i + 2; } else { i = i + 2; }"
                       "    if (i > n) break;"
                       "  }"
                       "  return i;"
                       "}");
  ClassicalResult R = runClassicalIV(*A.loop("L8"));
  EXPECT_TRUE(R.isIV(A.phi("L8", "i")));
}

TEST(BaselineTest, AdHocWrapAround) {
  Analyzed A = analyze("func l9(n) {"
                       "  iml = n;"
                       "  for L9: i = 1 to n {"
                       "    A[i] = A[iml] + 1;"
                       "    iml = i;"
                       "  }"
                       "  return 0;"
                       "}");
  ClassicalResult R = runClassicalIV(*A.loop("L9"));
  AdHocResult AH = runAdHocMatchers(*A.loop("L9"), R);
  EXPECT_EQ(AH.WrapArounds, 1u);
}

TEST(BaselineTest, AdHocFlipFlop) {
  Analyzed A = analyze("func l12(n) {"
                       "  j = 1;"
                       "  for L12: iter = 1 to n { j = 3 - j; }"
                       "  return j;"
                       "}");
  ClassicalResult R = runClassicalIV(*A.loop("L12"));
  AdHocResult AH = runAdHocMatchers(*A.loop("L12"), R);
  EXPECT_EQ(AH.FlipFlops, 1u);
}

TEST(BaselineTest, CoverageGapVersusUnified) {
  // One loop containing every class: the classical baseline plus ad hoc
  // matchers must miss the polynomial, geometric, periodic-3, monotonic and
  // second-order wrap-around variables that the unified algorithm gets.
  Analyzed A = analyze("func gap(n) {"
                       "  j = 1; k = 1; l = 1; m = 0; w = 9; w2 = 9;"
                       "  p = 1; q = 2; r = 3; t = 0; cnt = 0;"
                       "  for L: i = 1 to n {"
                       "    j = j + i;"           // polynomial
                       "    l = l * 2 + 1;"       // geometric
                       "    w2 = w;"              // wrap-around order 2
                       "    w = i;"               // wrap-around order 1
                       "    t = p; p = q; q = r; r = t;" // periodic 3
                       "    if (A[i] > 0) { cnt = cnt + 1; }" // monotonic
                       "    k = 3 * i + 7;"       // derived linear (both find)
                       "  }"
                       "  return cnt;"
                       "}");
  analysis::Loop *L = A.loop("L");
  ClassicalResult CR = runClassicalIV(*L);
  AdHocResult AH = runAdHocMatchers(*L, CR);

  // Classical: only i (basic) and the derived linear expressions.
  EXPECT_FALSE(CR.isIV(A.phi("L", "j")));
  EXPECT_FALSE(CR.isIV(A.phi("L", "l")));
  EXPECT_FALSE(CR.isIV(A.phi("L", "p")));
  EXPECT_FALSE(CR.isIV(A.phi("L", "cnt")));
  EXPECT_TRUE(CR.isIV(A.phi("L", "i")));

  // Ad hoc: finds first-order wrap-arounds only (w, and k's header phi
  // which wraps the derived IV 3i+7) -- but not the second-order w2.
  EXPECT_EQ(AH.WrapArounds, 2u);

  // Unified: classifies all of them.
  using ivclass::IVKind;
  EXPECT_EQ(A.cls("L", "j").Kind, IVKind::Polynomial);
  EXPECT_EQ(A.cls("L", "l").Kind, IVKind::Geometric);
  EXPECT_EQ(A.cls("L", "p").Kind, IVKind::Periodic);
  EXPECT_EQ(A.cls("L", "cnt").Kind, IVKind::Monotonic);
  EXPECT_EQ(A.cls("L", "w").Kind, IVKind::WrapAround);
  const ivclass::Classification &W2 = A.cls("L", "w2");
  ASSERT_EQ(W2.Kind, IVKind::WrapAround);
  EXPECT_EQ(W2.WrapOrder, 2u);
}

TEST(BaselineTest, AgreementOnLinearIVs) {
  // Property: everything classical calls an IV, the unified analysis must
  // classify as linear (they agree on the classical domain).
  const char *Programs[] = {
      "func a(n) { for L: i = 1 to n { A[3*i - 2] = i; } return 0; }",
      "func b(n, c) { j = c; loop L { j = j + 4; if (j > n) break; }"
      " return j; }",
      "func c(n) { s = 0; for L: i = 2 to n by 3 { s = s + 2; } return s; }",
  };
  for (const char *Src : Programs) {
    Analyzed A = analyze(Src);
    analysis::Loop *L = A.loop("L");
    ClassicalResult CR = runClassicalIV(*L);
    EXPECT_GT(CR.BasicIVs + CR.DerivedIVs, 0u) << Src;
    for (const auto &[V, IV] : CR.IVs) {
      (void)IV;
      const ivclass::Classification &C = A.IA->classify(V, L);
      EXPECT_TRUE(C.isLinear() || C.isInvariant())
          << Src << ": classical IV not linear under unified analysis";
    }
  }
}
