//===- tests/analysis_test.cpp - Dominators and loop info unit tests ----------===//

#include "TestUtil.h"

using namespace biv;
using namespace biv::testutil;
using namespace biv::analysis;

namespace {

std::unique_ptr<ir::Function> build(const std::string &Src) {
  return frontend::parseAndLowerOrDie(Src);
}

ir::BasicBlock *byName(const ir::Function &F, const std::string &N) {
  for (ir::BasicBlock *BB : F.blocks())
    if (BB->name() == N)
      return BB;
  return nullptr;
}

/// Brute-force dominance: A dominates B iff removing A disconnects B from
/// the entry.
bool bruteDominates(const ir::Function &F, const ir::BasicBlock *A,
                    const ir::BasicBlock *B) {
  if (A == B)
    return true;
  if (B == F.entry())
    return false; // the entry is dominated only by itself
  std::vector<char> Seen(F.numBlocks(), 0);
  std::vector<const ir::BasicBlock *> Work{F.entry()};
  if (F.entry() == A)
    return true;
  Seen[F.entry()->id()] = 1;
  while (!Work.empty()) {
    const ir::BasicBlock *BB = Work.back();
    Work.pop_back();
    for (ir::BasicBlock *S : BB->successors()) {
      if (S == A || Seen[S->id()])
        continue;
      if (S == B)
        return false;
      Seen[S->id()] = 1;
      Work.push_back(S);
    }
  }
  return true; // B unreachable without A (or unreachable entirely)
}

/// Is B reachable from the entry?
bool reachable(const ir::Function &F, const ir::BasicBlock *B) {
  std::vector<char> Seen(F.numBlocks(), 0);
  std::vector<const ir::BasicBlock *> Work{F.entry()};
  Seen[F.entry()->id()] = 1;
  while (!Work.empty()) {
    const ir::BasicBlock *BB = Work.back();
    Work.pop_back();
    if (BB == B)
      return true;
    for (ir::BasicBlock *S : BB->successors())
      if (!Seen[S->id()]) {
        Seen[S->id()] = 1;
        Work.push_back(S);
      }
  }
  return false;
}

} // namespace

TEST(DominatorTest, DiamondShape) {
  auto F = build("func f(n) {"
                 "  if (n > 0) { x = 1; } else { x = 2; }"
                 "  return x;"
                 "}");
  DominatorTree DT(*F);
  ir::BasicBlock *Entry = F->entry();
  ir::BasicBlock *Then = byName(*F, "if.then");
  ir::BasicBlock *Else = byName(*F, "if.else");
  ir::BasicBlock *Join = byName(*F, "if.join");
  ASSERT_TRUE(Then && Else && Join);
  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(Then, Join));
  EXPECT_FALSE(DT.dominates(Else, Join));
  EXPECT_EQ(DT.idom(Join), Entry);
  EXPECT_EQ(DT.idom(Then), Entry);
  EXPECT_TRUE(DT.properlyDominates(Entry, Then));
  EXPECT_FALSE(DT.properlyDominates(Entry, Entry));
}

TEST(DominatorTest, MatchesBruteForceOnRealPrograms) {
  const char *Programs[] = {
      "func a(n) { s = 0; for L: i = 1 to n { if (i > 2) { s = s + 1; }"
      " else { s = s + 2; } } return s; }",
      "func b(n) { x = 0; loop L1 { x = x + 1; if (x > n) break;"
      " loop L2 { x = x + 2; if (x > 2 * n) break; } } return x; }",
      "func c(n) { if (n > 0) { if (n > 1) { x = 1; } else { x = 2; } }"
      " else { x = 3; } while (x < n) { x = x + 1; } return x; }",
  };
  for (const char *Src : Programs) {
    auto F = build(Src);
    DominatorTree DT(*F);
    for (const ir::BasicBlock *A : F->blocks())
      for (const ir::BasicBlock *B : F->blocks()) {
        if (!reachable(*F, A) || !reachable(*F, B))
          continue;
        EXPECT_EQ(DT.dominates(A, B), bruteDominates(*F, A, B))
            << Src << ": " << A->name() << " vs " << B->name();
      }
  }
}

TEST(DominatorTest, InstructionLevelDominance) {
  auto F = build("func f(n) { x = n + 1; y = x * 2; return y; }");
  DominatorTree DT(*F);
  const ir::BasicBlock *Entry = F->entry();
  const ir::Instruction *X = Entry->instructions()[0];
  const ir::Instruction *Y = Entry->instructions()[1];
  EXPECT_TRUE(DT.dominates(X, Y));
  EXPECT_FALSE(DT.dominates(Y, X));
  EXPECT_FALSE(DT.dominates(X, X));
}

TEST(DominanceFrontierTest, JoinIsInBranchFrontiers) {
  auto F = build("func f(n) {"
                 "  if (n > 0) { x = 1; } else { x = 2; }"
                 "  return x;"
                 "}");
  DominatorTree DT(*F);
  DominanceFrontier DF(DT);
  ir::BasicBlock *Then = byName(*F, "if.then");
  ir::BasicBlock *Join = byName(*F, "if.join");
  const auto &Frontier = DF.frontier(Then);
  EXPECT_NE(std::find(Frontier.begin(), Frontier.end(), Join),
            Frontier.end());
  // The entry dominates everything: empty frontier.
  EXPECT_TRUE(DF.frontier(F->entry()).empty());
}

TEST(DominanceFrontierTest, LoopHeaderInLatchFrontier) {
  auto F = build("func f(n) { s = 0; for L: i = 1 to n { s = s + 1; }"
                 " return s; }");
  DominatorTree DT(*F);
  DominanceFrontier DF(DT);
  ir::BasicBlock *Latch = byName(*F, "L.latch");
  ir::BasicBlock *Header = byName(*F, "L.header");
  ASSERT_TRUE(Latch && Header);
  const auto &Frontier = DF.frontier(Latch);
  EXPECT_NE(std::find(Frontier.begin(), Frontier.end(), Header),
            Frontier.end());
  // The header is in its own frontier (it does not strictly dominate
  // itself as a join of the backedge).
  const auto &HF = DF.frontier(Header);
  EXPECT_NE(std::find(HF.begin(), HF.end(), Header), HF.end());
}

TEST(PostDominatorTest, LinearAndDiamond) {
  auto F = build("func f(n) {"
                 "  if (n > 0) { x = 1; } else { x = 2; }"
                 "  return x;"
                 "}");
  PostDominatorTree PDT(*F);
  ir::BasicBlock *Entry = F->entry();
  ir::BasicBlock *Then = byName(*F, "if.then");
  ir::BasicBlock *Join = byName(*F, "if.join");
  EXPECT_TRUE(PDT.postDominates(Join, Entry));
  EXPECT_TRUE(PDT.postDominates(Join, Then));
  EXPECT_FALSE(PDT.postDominates(Then, Entry));
  EXPECT_TRUE(PDT.postDominates(Join, Join));
}

TEST(LoopInfoTest, WhileLoopShape) {
  auto F = build("func f(n) { x = 0; while W: (x < n) { x = x + 1; }"
                 " return x; }");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop *L = LI.loops()[0].get();
  EXPECT_EQ(L->name(), "W");
  EXPECT_NE(L->preheader(), nullptr);
  EXPECT_EQ(L->exitingBlocks().size(), 1u);
  EXPECT_EQ(L->exitingBlocks()[0], L->header());
}

TEST(LoopInfoTest, MultipleBreaksOneLoop) {
  auto F = build("func f(n) {"
                 "  x = 0;"
                 "  loop L {"
                 "    x = x + 1;"
                 "    if (x > n) break;"
                 "    if (x > 2 * n) break;"
                 "  }"
                 "  return x;"
                 "}");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  EXPECT_EQ(LI.loops()[0]->exitingBlocks().size(), 2u);
  EXPECT_EQ(LI.loops()[0]->latches().size(), 1u);
}

TEST(LoopInfoTest, SiblingsAndNesting) {
  auto F = build("func f(n) {"
                 "  for L1: i = 1 to n {"
                 "    for L2: j = 1 to n { A[i, j] = 0; }"
                 "    for L3: j = 1 to n { A[i, j] = 1; }"
                 "  }"
                 "  for L4: i = 1 to n { B[i] = 0; }"
                 "  return 0;"
                 "}");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 4u);
  EXPECT_EQ(LI.topLevel().size(), 2u);
  Loop *L1 = LI.byName("L1");
  Loop *L2 = LI.byName("L2");
  Loop *L3 = LI.byName("L3");
  Loop *L4 = LI.byName("L4");
  EXPECT_EQ(L2->parent(), L1);
  EXPECT_EQ(L3->parent(), L1);
  EXPECT_EQ(L4->parent(), nullptr);
  EXPECT_EQ(L1->subLoops().size(), 2u);
  // loopFor maps blocks to the innermost loop.
  EXPECT_EQ(LI.loopFor(L2->header()), L2);
  EXPECT_EQ(LI.loopFor(L1->header()), L1);
}

TEST(LoopInfoTest, InnerToOuterOrder) {
  auto F = build("func f(n) {"
                 "  for L1: a = 1 to n {"
                 "    for L2: b = 1 to n {"
                 "      for L3: c = 1 to n { A[c] = 0; }"
                 "    }"
                 "  }"
                 "  return 0;"
                 "}");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  std::vector<Loop *> Order = LI.innerToOuter();
  ASSERT_EQ(Order.size(), 3u);
  // Children before parents.
  for (size_t I = 0; I < Order.size(); ++I)
    for (size_t J = I + 1; J < Order.size(); ++J)
      EXPECT_FALSE(Order[I]->encloses(Order[J]) && Order[I] != Order[J]);
}

TEST(LoopInfoTest, LoopBlocksAndContains) {
  auto F = build("func f(n) {"
                 "  s = 0;"
                 "  for L: i = 1 to n {"
                 "    if (i > 2) { s = s + 1; }"
                 "  }"
                 "  return s;"
                 "}");
  DominatorTree DT(*F);
  LoopInfo LI(*F, DT);
  Loop *L = LI.byName("L");
  ASSERT_NE(L, nullptr);
  // header, body, if.then, if.join, latch.
  EXPECT_EQ(L->blocks().size(), 5u);
  EXPECT_TRUE(L->contains(L->header()));
  EXPECT_FALSE(L->contains(F->entry()));
  for (ir::BasicBlock *BB : L->exitBlocks())
    EXPECT_FALSE(L->contains(BB));
}
