//===- tests/pipeline_test.cpp - Frontend -> SSA smoke tests -----------------===//
//
// End-to-end checks that source text parses, lowers, converts to SSA, and
// passes the verifiers; detailed per-pass behaviour is tested elsewhere.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "frontend/Parser.h"

using namespace biv;
using biv::testutil::makeSSA;

TEST(PipelineTest, StraightLine) {
  auto F = makeSSA("func f(n) { x = n + 1; y = x * 2; return y; }");
  // All scalar traffic promoted: no loadvar/storevar anywhere.
  for (const auto &BB : F->blocks())
    for (const auto &I : *BB) {
      EXPECT_NE(I->opcode(), ir::Opcode::LoadVar);
      EXPECT_NE(I->opcode(), ir::Opcode::StoreVar);
    }
}

TEST(PipelineTest, PaperFigure1LoopL7) {
  // j = n; loop L7: i = j+c; j = i+k; endloop
  ssa::SSAInfo Info;
  auto F = makeSSA("func l7(n, c, k) {"
                   "  j = n;"
                   "  loop L7 {"
                   "    i = j + c;"
                   "    j = i + k;"
                   "    if (i > 100) break;"
                   "  }"
                   "  return j;"
                   "}",
                   &Info);
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  analysis::Loop *L = LI.byName("L7");
  ASSERT_NE(L, nullptr);
  // The loop-header phi for j exists and merges n with the loop value,
  // mirroring Figure 1(b)'s j2 = phi(j1, j3).
  ir::Instruction *JPhi = Info.phiFor(L->header(), "j");
  ASSERT_NE(JPhi, nullptr);
  EXPECT_EQ(JPhi->numOperands(), 2u);
  // One incoming is the argument n (via the preheader).
  bool HasN = false;
  for (ir::Value *Op : JPhi->operands())
    HasN |= ir::isa<ir::Argument>(Op) && Op->name() == "n";
  EXPECT_TRUE(HasN);
}

TEST(PipelineTest, IfElseProducesJoinPhi) {
  ssa::SSAInfo Info;
  auto F = makeSSA("func g(n) {"
                   "  if (n > 0) { x = 1; } else { x = 2; }"
                   "  return x;"
                   "}",
                   &Info);
  // Exactly one phi merges x at the join.
  unsigned Phis = 0;
  for (const auto &BB : F->blocks())
    Phis += BB->phis().size();
  EXPECT_EQ(Phis, 1u);
}

TEST(PipelineTest, ForLoopShape) {
  auto F = makeSSA("func h(n) {"
                   "  s = 0;"
                   "  for L1: i = 1 to n {"
                   "    s = s + i;"
                   "  }"
                   "  return s;"
                   "}");
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const analysis::Loop *L = LI.loops()[0].get();
  EXPECT_EQ(L->name(), "L1");
  EXPECT_NE(L->preheader(), nullptr);
  EXPECT_EQ(L->latches().size(), 1u);
  EXPECT_EQ(L->depth(), 1u);
}

TEST(PipelineTest, NestedLoopsDepths) {
  auto F = makeSSA("func nest(n) {"
                   "  for L1: i = 1 to n {"
                   "    for L2: j = 1 to i {"
                   "      A[i, j] = i + j;"
                   "    }"
                   "  }"
                   "  return 0;"
                   "}");
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  ASSERT_EQ(LI.loops().size(), 2u);
  analysis::Loop *L1 = LI.byName("L1");
  analysis::Loop *L2 = LI.byName("L2");
  ASSERT_NE(L1, nullptr);
  ASSERT_NE(L2, nullptr);
  EXPECT_EQ(L2->parent(), L1);
  EXPECT_EQ(L1->depth(), 1u);
  EXPECT_EQ(L2->depth(), 2u);
  EXPECT_TRUE(L1->encloses(L2));
  EXPECT_FALSE(L2->encloses(L1));
  // Inner-to-outer traversal: L2 before L1.
  std::vector<analysis::Loop *> Order = LI.innerToOuter();
  ASSERT_EQ(Order.size(), 2u);
  EXPECT_EQ(Order[0], L2);
  EXPECT_EQ(Order[1], L1);
}

TEST(PipelineTest, SCCPFoldsConstants) {
  auto F = makeSSA("func c() { x = 2 + 3; y = x * 4; return y; }");
  ssa::SCCPResult R = ssa::runSCCP(*F);
  EXPECT_GE(R.FoldedInstructions, 2u);
  // return now uses the literal 20.
  const ir::Instruction *Ret = nullptr;
  for (const auto &BB : F->blocks())
    for (const auto &I : *BB)
      if (I->opcode() == ir::Opcode::Ret)
        Ret = I;
  ASSERT_NE(Ret, nullptr);
  ASSERT_EQ(Ret->numOperands(), 1u);
  const auto *C = ir::dyn_cast<ir::Constant>(Ret->operand(0));
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->value(), 20);
}

TEST(PipelineTest, SCCPPrunesDeadBranch) {
  auto F = makeSSA("func d(n) {"
                   "  if (1 > 2) { x = n; } else { x = 7; }"
                   "  return x;"
                   "}");
  size_t Before = F->numBlocks();
  ssa::SCCPResult R = ssa::runSCCP(*F);
  EXPECT_GE(R.SimplifiedBranches, 1u);
  EXPECT_GT(R.RemovedBlocks, 0u);
  EXPECT_LT(F->numBlocks(), Before);
  ssa::verifySSAOrDie(*F);
}

TEST(PipelineTest, ParserReportsErrors) {
  frontend::Parser P("func broken( { }");
  EXPECT_EQ(P.parseFunction(), nullptr);
  EXPECT_FALSE(P.errors().empty());
}

TEST(PipelineTest, SemanticErrorUndefinedName) {
  std::vector<std::string> Errors;
  auto F = frontend::parseAndLower("func bad() { x = y + 1; return x; }",
                                   Errors);
  EXPECT_EQ(F, nullptr);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("undefined name"), std::string::npos);
}

TEST(PipelineTest, SemanticErrorRankMismatch) {
  std::vector<std::string> Errors;
  auto F = frontend::parseAndLower(
      "func bad(n) { A[1] = 0; A[1, 2] = n; return 0; }", Errors);
  EXPECT_EQ(F, nullptr);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("inconsistent rank"), std::string::npos);
}

TEST(PipelineTest, BreakOutsideLoopIsError) {
  std::vector<std::string> Errors;
  auto F = frontend::parseAndLower("func bad() { break; }", Errors);
  EXPECT_EQ(F, nullptr);
}

TEST(PipelineTest, WrapAroundFigure4SSAShape) {
  // Figure 4: k = j; j = i; i = i + 1 inside loop L10.
  ssa::SSAInfo Info;
  auto F = makeSSA("func l10(n) {"
                   "  i = 1; j = 0; k = 0;"
                   "  loop L10 {"
                   "    k = j;"
                   "    j = i;"
                   "    i = i + 1;"
                   "    if (i > n) break;"
                   "  }"
                   "  return k;"
                   "}",
                   &Info);
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  analysis::Loop *L = LI.byName("L10");
  ASSERT_NE(L, nullptr);
  // Header carries phis for i, j and k as in Figure 4(b).
  EXPECT_NE(Info.phiFor(L->header(), "i"), nullptr);
  EXPECT_NE(Info.phiFor(L->header(), "j"), nullptr);
  EXPECT_NE(Info.phiFor(L->header(), "k"), nullptr);
}
