//===- tests/interp_test.cpp - Interpreter unit tests -------------------------===//

#include "TestUtil.h"

using namespace biv;
using namespace biv::testutil;
using namespace biv::interp;

namespace {

std::unique_ptr<ir::Function> build(const std::string &Src) {
  auto F = frontend::parseAndLowerOrDie(Src);
  ssa::buildSSA(*F);
  ssa::verifySSAOrDie(*F);
  return F;
}

} // namespace

TEST(InterpTest, ArithmeticAndReturn) {
  auto F = build("func f(a, b) { return (a + b) * 2 - a / b; }");
  ExecutionTrace T = run(*F, {10, 3});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, (10 + 3) * 2 - 10 / 3);
}

TEST(InterpTest, PowerOperator) {
  auto F = build("func f(a, b) { return a ^ b; }");
  ExecutionTrace T = run(*F, {3, 4});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 81);
}

TEST(InterpTest, NegativeExponentFails) {
  auto F = build("func f(a) { return 2 ^ a; }");
  ExecutionTrace T = run(*F, {-1});
  EXPECT_FALSE(T.ok());
  EXPECT_NE(T.Error.find("exponent"), std::string::npos);
}

TEST(InterpTest, DivisionByZeroFails) {
  auto F = build("func f(a) { return 1 / a; }");
  ExecutionTrace T = run(*F, {0});
  EXPECT_FALSE(T.ok());
  EXPECT_NE(T.Error.find("zero"), std::string::npos);
}

TEST(InterpTest, TruncatingDivision) {
  auto F = build("func f(a, b) { return a / b; }");
  EXPECT_EQ(run(*F, {7, 2}).ReturnValue, 3);
  EXPECT_EQ(run(*F, {-7, 2}).ReturnValue, -3); // C++ semantics
}

TEST(InterpTest, LoopsAndConditionals) {
  auto F = build("func f(n) {"
                 "  s = 0;"
                 "  for L: i = 1 to n {"
                 "    if (i / 2 * 2 == i) { s = s + i; }"
                 "  }"
                 "  return s;"
                 "}");
  ExecutionTrace T = run(*F, {10});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 2 + 4 + 6 + 8 + 10);
}

TEST(InterpTest, WhileLoop) {
  auto F = build("func f(n) {"
                 "  x = 1;"
                 "  while (x < n) { x = x * 2; }"
                 "  return x;"
                 "}");
  EXPECT_EQ(run(*F, {100}).ReturnValue, 128);
  EXPECT_EQ(run(*F, {1}).ReturnValue, 1); // zero-trip
}

TEST(InterpTest, DownToLoop) {
  auto F = build("func f() {"
                 "  s = 0;"
                 "  for L: i = 5 downto 1 { s = s * 10 + i; }"
                 "  return s;"
                 "}");
  EXPECT_EQ(run(*F, {}).ReturnValue, 54321);
}

TEST(InterpTest, ArrayReadWrite) {
  auto F = build("func f(n) {"
                 "  for L: i = 1 to n { A[i] = i * i; }"
                 "  s = 0;"
                 "  for M: i = 1 to n { s = s + A[i]; }"
                 "  return s;"
                 "}");
  ExecutionTrace T = run(*F, {4});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 1 + 4 + 9 + 16);
  // Access log: 4 writes then 4 reads.
  ASSERT_EQ(T.Accesses.size(), 8u);
  EXPECT_TRUE(T.Accesses[0].IsWrite);
  EXPECT_FALSE(T.Accesses[7].IsWrite);
}

TEST(InterpTest, MultiDimArrays) {
  auto F = build("func f() {"
                 "  A[2, 3] = 42;"
                 "  return A[2, 3] + A[3, 2];"
                 "}");
  ExecutionTrace T = run(*F, {});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 42); // unwritten cells read 0
}

TEST(InterpTest, SeededArrays) {
  auto F = build("func f() { return A[5]; }");
  ExecutionTrace T = runWithArrays(*F, {}, {{"A", {{{5}, 99}}}});
  EXPECT_EQ(T.ReturnValue, 99);
}

TEST(InterpTest, StepLimitStopsInfiniteLoop) {
  auto F = build("func f() {"
                 "  x = 0;"
                 "  loop L { x = x + 1; if (x < 0) break; }"
                 "  return x;"
                 "}");
  ExecOptions Opts;
  Opts.MaxSteps = 1000;
  ExecutionTrace T = run(*F, {}, Opts);
  EXPECT_TRUE(T.HitStepLimit);
  EXPECT_FALSE(T.ok());
}

TEST(InterpTest, HistoryRecordsPerIterationValues) {
  ssa::SSAInfo Info;
  auto F = frontend::parseAndLowerOrDie("func f(n) {"
                                        "  s = 0;"
                                        "  for L: i = 1 to n { s = s + i; }"
                                        "  return s;"
                                        "}");
  Info = ssa::buildSSA(*F);
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  ExecutionTrace T = run(*F, {5});
  ASSERT_TRUE(T.ok());
  ir::Instruction *SPhi = Info.phiFor(LI.byName("L")->header(), "s");
  ASSERT_NE(SPhi, nullptr);
  // s at header: 0, 1, 3, 6, 10, 15 (observed on each of 6 header visits).
  std::vector<int64_t> Expected = {0, 1, 3, 6, 10, 15};
  EXPECT_EQ(T.sequenceOf(SPhi), Expected);
}

TEST(InterpTest, PeriodicSwapReadsOldValues) {
  // The two-phase phi evaluation: a swap without a temporary in phi terms.
  ssa::SSAInfo Info;
  auto F = frontend::parseAndLowerOrDie("func f(n) {"
                                        "  a = 1; b = 2; t = 0;"
                                        "  for L: i = 1 to n {"
                                        "    t = a; a = b; b = t;"
                                        "  }"
                                        "  return a;"
                                        "}");
  Info = ssa::buildSSA(*F);
  ExecutionTrace T = run(*F, {3});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 2); // three swaps: a = 2
}

TEST(InterpTest, PoisonBlocksControlFlow) {
  // Using a never-assigned variable in a branch is an error...
  auto F1 = build("func f(n) {"
                  "  loop L {"
                  "    x = y + 1;" // y undefined on first iteration
                  "    y = 1;"
                  "    if (x > n) break;"
                  "  }"
                  "  return x;"
                  "}");
  ExecutionTrace T1 = run(*F1, {10});
  EXPECT_FALSE(T1.ok());
  EXPECT_NE(T1.Error.find("uninitialized"), std::string::npos);
}

TEST(InterpTest, PoisonHarmlessWhenUnused) {
  // ...but a dead phi of an uninitialized variable must not abort the run
  // (unpruned SSA creates these routinely).
  auto F = build("func f(n) {"
                 "  s = 0;"
                 "  for L1: i = 1 to n {"
                 "    t = i * 2;" // t's header phi reads undef at entry
                 "    s = s + t;"
                 "  }"
                 "  return s;"
                 "}");
  ExecutionTrace T = run(*F, {4});
  ASSERT_TRUE(T.ok()) << T.Error;
  EXPECT_EQ(T.ReturnValue, 2 + 4 + 6 + 8);
}

TEST(InterpTest, ReturnWithoutValue) {
  auto F = build("func f() { A[1] = 2; return; }");
  ExecutionTrace T = run(*F, {});
  ASSERT_TRUE(T.ok());
  EXPECT_FALSE(T.ReturnValue.has_value());
}

TEST(InterpTest, BreakLeavesLoopEarly) {
  auto F = build("func f(n) {"
                 "  s = 0;"
                 "  for L: i = 1 to 100 {"
                 "    if (i > n) break;"
                 "    s = s + 1;"
                 "  }"
                 "  return s;"
                 "}");
  EXPECT_EQ(run(*F, {7}).ReturnValue, 7);
}
