//===- tests/interp_test.cpp - Interpreter unit tests -------------------------===//

#include "TestUtil.h"

using namespace biv;
using namespace biv::testutil;
using namespace biv::interp;

namespace {

/// Local shorthand over the shared pipeline-front helper.
std::unique_ptr<ir::Function> build(const std::string &Src) {
  return makeSSA(Src);
}

} // namespace

TEST(InterpTest, ArithmeticAndReturn) {
  auto F = build("func f(a, b) { return (a + b) * 2 - a / b; }");
  ExecutionTrace T = run(*F, {10, 3});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, (10 + 3) * 2 - 10 / 3);
}

TEST(InterpTest, PowerOperator) {
  auto F = build("func f(a, b) { return a ^ b; }");
  ExecutionTrace T = run(*F, {3, 4});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 81);
}

TEST(InterpTest, NegativeExponentFails) {
  auto F = build("func f(a) { return 2 ^ a; }");
  ExecutionTrace T = run(*F, {-1});
  EXPECT_FALSE(T.ok());
  EXPECT_NE(T.Error.find("exponent"), std::string::npos);
}

TEST(InterpTest, DivisionByZeroFails) {
  auto F = build("func f(a) { return 1 / a; }");
  ExecutionTrace T = run(*F, {0});
  EXPECT_FALSE(T.ok());
  EXPECT_NE(T.Error.find("zero"), std::string::npos);
}

TEST(InterpTest, TruncatingDivision) {
  auto F = build("func f(a, b) { return a / b; }");
  EXPECT_EQ(run(*F, {7, 2}).ReturnValue, 3);
  EXPECT_EQ(run(*F, {-7, 2}).ReturnValue, -3); // C++ semantics
}

TEST(InterpTest, LoopsAndConditionals) {
  auto F = build("func f(n) {"
                 "  s = 0;"
                 "  for L: i = 1 to n {"
                 "    if (i / 2 * 2 == i) { s = s + i; }"
                 "  }"
                 "  return s;"
                 "}");
  ExecutionTrace T = run(*F, {10});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 2 + 4 + 6 + 8 + 10);
}

TEST(InterpTest, WhileLoop) {
  auto F = build("func f(n) {"
                 "  x = 1;"
                 "  while (x < n) { x = x * 2; }"
                 "  return x;"
                 "}");
  EXPECT_EQ(run(*F, {100}).ReturnValue, 128);
  EXPECT_EQ(run(*F, {1}).ReturnValue, 1); // zero-trip
}

TEST(InterpTest, DownToLoop) {
  auto F = build("func f() {"
                 "  s = 0;"
                 "  for L: i = 5 downto 1 { s = s * 10 + i; }"
                 "  return s;"
                 "}");
  EXPECT_EQ(run(*F, {}).ReturnValue, 54321);
}

TEST(InterpTest, ArrayReadWrite) {
  auto F = build("func f(n) {"
                 "  for L: i = 1 to n { A[i] = i * i; }"
                 "  s = 0;"
                 "  for M: i = 1 to n { s = s + A[i]; }"
                 "  return s;"
                 "}");
  ExecutionTrace T = run(*F, {4});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 1 + 4 + 9 + 16);
  // Access log: 4 writes then 4 reads.
  ASSERT_EQ(T.Accesses.size(), 8u);
  EXPECT_TRUE(T.Accesses[0].IsWrite);
  EXPECT_FALSE(T.Accesses[7].IsWrite);
}

TEST(InterpTest, MultiDimArrays) {
  auto F = build("func f() {"
                 "  A[2, 3] = 42;"
                 "  return A[2, 3] + A[3, 2];"
                 "}");
  ExecutionTrace T = run(*F, {});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 42); // unwritten cells read 0
}

TEST(InterpTest, SeededArrays) {
  auto F = build("func f() { return A[5]; }");
  ExecutionTrace T = runWithArrays(*F, {}, {{"A", {{{5}, 99}}}});
  EXPECT_EQ(T.ReturnValue, 99);
}

TEST(InterpTest, StepLimitStopsInfiniteLoop) {
  auto F = build("func f() {"
                 "  x = 0;"
                 "  loop L { x = x + 1; if (x < 0) break; }"
                 "  return x;"
                 "}");
  ExecOptions Opts;
  Opts.MaxSteps = 1000;
  ExecutionTrace T = run(*F, {}, Opts);
  EXPECT_TRUE(T.HitStepLimit);
  EXPECT_FALSE(T.ok());
}

TEST(InterpTest, HistoryRecordsPerIterationValues) {
  ssa::SSAInfo Info;
  auto F = frontend::parseAndLowerOrDie("func f(n) {"
                                        "  s = 0;"
                                        "  for L: i = 1 to n { s = s + i; }"
                                        "  return s;"
                                        "}");
  Info = ssa::buildSSA(*F);
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  ExecutionTrace T = run(*F, {5});
  ASSERT_TRUE(T.ok());
  ir::Instruction *SPhi = Info.phiFor(LI.byName("L")->header(), "s");
  ASSERT_NE(SPhi, nullptr);
  // s at header: 0, 1, 3, 6, 10, 15 (observed on each of 6 header visits).
  std::vector<int64_t> Expected = {0, 1, 3, 6, 10, 15};
  EXPECT_EQ(T.sequenceOf(SPhi), Expected);
}

TEST(InterpTest, PeriodicSwapReadsOldValues) {
  // The two-phase phi evaluation: a swap without a temporary in phi terms.
  ssa::SSAInfo Info;
  auto F = frontend::parseAndLowerOrDie("func f(n) {"
                                        "  a = 1; b = 2; t = 0;"
                                        "  for L: i = 1 to n {"
                                        "    t = a; a = b; b = t;"
                                        "  }"
                                        "  return a;"
                                        "}");
  Info = ssa::buildSSA(*F);
  ExecutionTrace T = run(*F, {3});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 2); // three swaps: a = 2
}

TEST(InterpTest, PoisonBlocksControlFlow) {
  // Using a never-assigned variable in a branch is an error...
  auto F1 = build("func f(n) {"
                  "  loop L {"
                  "    x = y + 1;" // y undefined on first iteration
                  "    y = 1;"
                  "    if (x > n) break;"
                  "  }"
                  "  return x;"
                  "}");
  ExecutionTrace T1 = run(*F1, {10});
  EXPECT_FALSE(T1.ok());
  EXPECT_NE(T1.Error.find("uninitialized"), std::string::npos);
}

TEST(InterpTest, PoisonHarmlessWhenUnused) {
  // ...but a dead phi of an uninitialized variable must not abort the run
  // (unpruned SSA creates these routinely).
  auto F = build("func f(n) {"
                 "  s = 0;"
                 "  for L1: i = 1 to n {"
                 "    t = i * 2;" // t's header phi reads undef at entry
                 "    s = s + t;"
                 "  }"
                 "  return s;"
                 "}");
  ExecutionTrace T = run(*F, {4});
  ASSERT_TRUE(T.ok()) << T.Error;
  EXPECT_EQ(T.ReturnValue, 2 + 4 + 6 + 8);
}

TEST(InterpTest, ReturnWithoutValue) {
  auto F = build("func f() { A[1] = 2; return; }");
  ExecutionTrace T = run(*F, {});
  ASSERT_TRUE(T.ok());
  EXPECT_FALSE(T.ReturnValue.has_value());
}

TEST(InterpTest, BreakLeavesLoopEarly) {
  auto F = build("func f(n) {"
                 "  s = 0;"
                 "  for L: i = 1 to 100 {"
                 "    if (i > n) break;"
                 "    s = s + 1;"
                 "  }"
                 "  return s;"
                 "}");
  EXPECT_EQ(run(*F, {7}).ReturnValue, 7);
}

//===----------------------------------------------------------------------===//
// Pinned edge-case semantics: the fuzzer's differential oracle trusts the
// interpreter, so aborts, division edge cases, and overflow must be
// *specified* behavior, not host UB.  (The language has no modulo operator;
// division is the only trapping arithmetic.)
//===----------------------------------------------------------------------===//

TEST(InterpEdgeTest, MaxStepsAbortIsNotAnError) {
  // A budget abort sets HitStepLimit, leaves Error empty, and still makes
  // ok() false -- callers can tell "ran out of budget" from "faulted".
  auto F = build("func f() {"
                 "  x = 0;"
                 "  loop L { x = x + 1; if (x < 0) break; }"
                 "  return x;"
                 "}");
  ExecOptions Opts;
  Opts.MaxSteps = 777;
  ExecutionTrace T = run(*F, {}, Opts);
  EXPECT_TRUE(T.HitStepLimit);
  EXPECT_TRUE(T.Error.empty());
  EXPECT_FALSE(T.ok());
  EXPECT_EQ(T.Steps, 777u);
  EXPECT_FALSE(T.ReturnValue.has_value());
}

TEST(InterpEdgeTest, MaxStepsAbortKeepsTracePrefix) {
  // The trace up to the abort is valid: the oracle may still read it.
  ssa::SSAInfo Info;
  auto F = makeSSA("func f() {"
                   "  x = 0;"
                   "  loop L { x = x + 1; if (x < 0) break; }"
                   "  return x;"
                   "}",
                   &Info);
  analysis::DominatorTree DT(*F);
  analysis::LoopInfo LI(*F, DT);
  ExecOptions Opts;
  Opts.MaxSteps = 1000;
  ExecutionTrace T = run(*F, {}, Opts);
  ASSERT_TRUE(T.HitStepLimit);
  ir::Instruction *XPhi = Info.phiFor(LI.byName("L")->header(), "x");
  ASSERT_NE(XPhi, nullptr);
  const std::vector<int64_t> &Seq = T.sequenceOf(XPhi);
  ASSERT_GE(Seq.size(), 3u);
  for (size_t H = 0; H < Seq.size(); ++H)
    EXPECT_EQ(Seq[H], int64_t(H));
}

TEST(InterpEdgeTest, DivisionByZeroVariants) {
  auto F = build("func f(a, b) { return a / b; }");
  ExecutionTrace T = run(*F, {0, 0});
  EXPECT_FALSE(T.ok());
  EXPECT_NE(T.Error.find("division by zero"), std::string::npos);
  EXPECT_FALSE(T.HitStepLimit) << "a fault is not a budget abort";
  // Zero numerator with nonzero divisor is fine.
  EXPECT_EQ(run(*F, {0, 5}).ReturnValue, 0);
}

TEST(InterpEdgeTest, DivisionMinByMinusOneWraps) {
  // The lone overflowing quotient wraps (two's complement) instead of
  // trapping, matching the other arithmetic ops.
  auto F = build("func f(a, b) { return a / b; }");
  ExecutionTrace T = run(*F, {INT64_MIN, -1});
  ASSERT_TRUE(T.ok()) << T.Error;
  EXPECT_EQ(T.ReturnValue, INT64_MIN);
}

TEST(InterpEdgeTest, SignedOverflowWraps) {
  // Add, Sub, Mul, and Neg all wrap as two's complement.
  auto FAdd = build("func f(a, b) { return a + b; }");
  EXPECT_EQ(run(*FAdd, {INT64_MAX, 1}).ReturnValue, INT64_MIN);
  auto FSub = build("func f(a, b) { return a - b; }");
  EXPECT_EQ(run(*FSub, {INT64_MIN, 1}).ReturnValue, INT64_MAX);
  auto FMul = build("func f(a, b) { return a * b; }");
  EXPECT_EQ(run(*FMul, {INT64_MAX, 2}).ReturnValue, -2);
  auto FNeg = build("func f(a) { return -a; }");
  EXPECT_EQ(run(*FNeg, {INT64_MIN}).ReturnValue, INT64_MIN);
}

TEST(InterpEdgeTest, ExponentOverflowWraps) {
  auto F = build("func f(a, b) { return a ^ b; }");
  // 2^63 wraps to INT64_MIN; 2^64 wraps to 0.
  EXPECT_EQ(run(*F, {2, 63}).ReturnValue, INT64_MIN);
  EXPECT_EQ(run(*F, {2, 64}).ReturnValue, 0);
  // In-range powers still exact.
  EXPECT_EQ(run(*F, {3, 5}).ReturnValue, 243);
}

TEST(InterpEdgeTest, OverflowWrapInsideLoop) {
  // A geometric recurrence that overflows mid-run keeps executing with
  // wrapped values -- no abort, deterministic trace.
  auto F = build("func f(n) {"
                 "  g = 1;"
                 "  for L: i = 1 to n { g = g * 2 + 1; }"
                 "  return g;"
                 "}");
  ExecutionTrace T = run(*F, {70});
  ASSERT_TRUE(T.ok()) << T.Error;
  int64_t G = 1;
  for (int K = 0; K < 70; ++K)
    G = int64_t(uint64_t(G) * 2 + 1);
  EXPECT_EQ(T.ReturnValue, G);
}
