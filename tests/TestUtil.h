//===- tests/TestUtil.h - Shared test pipeline helpers ----------*- C++ -*-===//
//
// Builds source text through the full pipeline (parse -> lower -> SSA ->
// induction analysis) and exposes the paper-style queries the figure tests
// need, plus interpreter-oracle helpers.
//
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_TESTS_TESTUTIL_H
#define BEYONDIV_TESTS_TESTUTIL_H

#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "frontend/Lowering.h"
#include "interp/Interpreter.h"
#include "ir/Printer.h"
#include "ivclass/InductionAnalysis.h"
#include "ssa/SCCP.h"
#include "ssa/SSABuilder.h"
#include "ssa/SSAVerifier.h"
#include <gtest/gtest.h>
#include <memory>
#include <string>

namespace biv {
namespace testutil {

/// A program pushed through the whole pipeline.
struct Analyzed {
  std::unique_ptr<ir::Function> F;
  ssa::SSAInfo Info;
  std::unique_ptr<analysis::DominatorTree> DT;
  std::unique_ptr<analysis::LoopInfo> LI;
  std::unique_ptr<ivclass::InductionAnalysis> IA;

  analysis::Loop *loop(const std::string &Name) const {
    analysis::Loop *L = LI->byName(Name);
    EXPECT_NE(L, nullptr) << "no loop named " << Name;
    return L;
  }

  /// Loop-header phi of source variable \p Var in loop \p LoopName.
  ir::Instruction *phi(const std::string &LoopName,
                       const std::string &Var) const {
    analysis::Loop *L = LI->byName(LoopName);
    if (!L)
      return nullptr;
    return Info.phiFor(L->header(), Var);
  }

  /// The in-loop (carried) operand of \p Var 's header phi: the instruction
  /// computing the variable's next value -- the paper usually quotes the
  /// tuple of this value (e.g. i3/j3 in Figure 1).
  ir::Instruction *carried(const std::string &LoopName,
                           const std::string &Var) const {
    ir::Instruction *P = phi(LoopName, Var);
    analysis::Loop *L = LI->byName(LoopName);
    if (!P || !L)
      return nullptr;
    for (unsigned I = 0; I < P->numOperands(); ++I)
      if (L->contains(P->blocks()[I]))
        return ir::dyn_cast<ir::Instruction>(P->operand(I));
    return nullptr;
  }

  /// Classification of an arbitrary value relative to a loop.
  const ivclass::Classification &clsOf(const ir::Value *V,
                                       const std::string &LoopName) const {
    return IA->classify(V, LI->byName(LoopName));
  }

  /// Classification of variable \p Var 's header phi relative to its loop.
  const ivclass::Classification &cls(const std::string &LoopName,
                                     const std::string &Var) const {
    static ivclass::Classification Unknown;
    ir::Instruction *P = phi(LoopName, Var);
    if (!P)
      return Unknown;
    return IA->classify(P, LI->byName(LoopName));
  }

  /// Paper-style nested-tuple rendering of a variable's classification.
  std::string tuple(const std::string &LoopName,
                    const std::string &Var) const {
    ir::Instruction *P = phi(LoopName, Var);
    if (!P)
      return "<no phi>";
    return IA->strNested(IA->classify(P, LI->byName(LoopName)));
  }
};

/// Parses, lowers, and converts \p Src to verified SSA -- the shared
/// front half of the pipeline for tests that do not need the induction
/// analysis (pipeline, interpreter, and frontend tests).
inline std::unique_ptr<ir::Function> makeSSA(const std::string &Src,
                                             ssa::SSAInfo *InfoOut = nullptr) {
  auto F = frontend::parseAndLowerOrDie(Src);
  ssa::SSAInfo Info = ssa::buildSSA(*F);
  ssa::verifySSAOrDie(*F);
  if (InfoOut)
    *InfoOut = std::move(Info);
  return F;
}

/// Runs the full pipeline.  \p RunSCCP folds constants first (the paper's
/// [WZ91] step); figure tests usually keep it on.
inline Analyzed analyze(const std::string &Src, bool RunSCCP = false,
                        ivclass::InductionAnalysis::Options Opts = {}) {
  Analyzed A;
  A.F = frontend::parseAndLowerOrDie(Src);
  A.Info = ssa::buildSSA(*A.F);
  ssa::verifySSAOrDie(*A.F);
  if (RunSCCP) {
    // Fold-only: pruning branches could delete the loops under test.
    ssa::runSCCP(*A.F, /*SimplifyCFG=*/false);
    ssa::verifySSAOrDie(*A.F);
  }
  A.DT = std::make_unique<analysis::DominatorTree>(*A.F);
  A.LI = std::make_unique<analysis::LoopInfo>(*A.F, *A.DT);
  A.IA = std::make_unique<ivclass::InductionAnalysis>(*A.F, *A.DT, *A.LI,
                                                      Opts);
  A.IA->run();
  return A;
}

/// Evaluates \p V with every symbol bound through \p Syms (symbols are IR
/// values: arguments or instructions).  Fails the test on unbound symbols.
inline int64_t evalAffine(const Affine &V,
                          const std::map<const ir::Value *, int64_t> &Syms) {
  Rational R = V.constantPart();
  for (const auto &[Sym, Coeff] : V.terms()) {
    auto It = Syms.find(static_cast<const ir::Value *>(Sym));
    EXPECT_TRUE(It != Syms.end()) << "unbound symbol in affine";
    if (It == Syms.end())
      return 0;
    R += Coeff * Rational(It->second);
  }
  EXPECT_TRUE(R.isInteger()) << "affine evaluated to non-integer";
  return R.isInteger() ? R.getInteger() : 0;
}

/// Oracle check: the closed form of \p C must reproduce the observed value
/// sequence of \p I from \p Trace (every iteration).
inline void expectFormMatchesTrace(
    const ivclass::Classification &C, const ir::Instruction *I,
    const interp::ExecutionTrace &Trace,
    const std::map<const ir::Value *, int64_t> &Syms = {}) {
  ASSERT_TRUE(C.hasClosedForm()) << "classification has no closed form";
  const std::vector<int64_t> &Seq = Trace.sequenceOf(I);
  ASSERT_FALSE(Seq.empty()) << "instruction never executed";
  for (size_t H = 0; H < Seq.size(); ++H) {
    int64_t Expected = evalAffine(C.Form.evaluateAt(H), Syms);
    EXPECT_EQ(Expected, Seq[H])
        << "closed form diverges from execution at iteration " << H;
  }
}

/// Oracle check for monotonic classifications.
inline void expectMonotoneTrace(const ivclass::Classification &C,
                                const ir::Instruction *I,
                                const interp::ExecutionTrace &Trace) {
  ASSERT_TRUE(C.isMonotonic());
  const std::vector<int64_t> &Seq = Trace.sequenceOf(I);
  ASSERT_GE(Seq.size(), 2u) << "need at least two observations";
  // Monotone claims hold over Z; once the machine run wraps int64 the
  // observed sequence no longer witnesses the mathematical one, so the
  // claim is unfalsifiable by this execution.  Same bound and rationale
  // as the fuzz oracle's ClaimValueBound.
  constexpr int64_t ClaimValueBound = int64_t(1) << 31;
  for (int64_t V : Seq)
    if (V > ClaimValueBound || V < -ClaimValueBound)
      return;
  for (size_t K = 1; K < Seq.size(); ++K) {
    if (C.Dir == ivclass::MonotoneDir::Increasing) {
      if (C.Strict)
        EXPECT_LT(Seq[K - 1], Seq[K]);
      else
        EXPECT_LE(Seq[K - 1], Seq[K]);
    } else {
      if (C.Strict)
        EXPECT_GT(Seq[K - 1], Seq[K]);
      else
        EXPECT_GE(Seq[K - 1], Seq[K]);
    }
  }
}

} // namespace testutil
} // namespace biv

#endif // BEYONDIV_TESTS_TESTUTIL_H
