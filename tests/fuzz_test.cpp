//===- tests/fuzz_test.cpp - Differential fuzzing smoke tests ----------------===//
//
// Tier-1 gate for the fuzzing subsystem: a bounded seeded campaign (500
// programs) must come back with zero oracle mismatches, every check
// category exercised, and byte-identical batch output across worker counts.
// The minimizer is demonstrated end to end through the test-only
// fault-injection hook.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "fuzz/Fuzzer.h"
#include "fuzz/Minimizer.h"
#include "fuzz/Oracle.h"
#include "fuzz/ProgramGen.h"
#include <sstream>

using namespace biv;
using namespace biv::fuzz;

//===----------------------------------------------------------------------===//
// Generator
//===----------------------------------------------------------------------===//

TEST(FuzzGenTest, Deterministic) {
  for (uint64_t Seed : {1u, 7u, 42u, 1234u})
    EXPECT_EQ(generateProgram(Seed), generateProgram(Seed));
  // Different seeds produce different programs (not a tautology, but any
  // collision here means the seed is not reaching the grammar).
  EXPECT_NE(generateProgram(1), generateProgram(2));
}

TEST(FuzzGenTest, EveryProgramParsesAndLowers) {
  for (uint64_t Seed = 1; Seed <= 200; ++Seed) {
    std::string Src = generateProgram(Seed);
    std::vector<std::string> Errors;
    auto F = frontend::parseAndLower(Src, Errors);
    ASSERT_NE(F, nullptr) << "seed " << Seed << " failed:\n"
                          << Src << "\nfirst error: "
                          << (Errors.empty() ? "<none>" : Errors[0]);
  }
}

TEST(FuzzGenTest, OneStatementPerLineForMinimizer) {
  // The minimizer deletes whole lines; a line holding two statements would
  // silently coarsen its granularity.
  std::string Src = generateProgram(11);
  std::istringstream In(Src);
  std::string Line;
  while (std::getline(In, Line)) {
    size_t Semis = 0;
    for (char C : Line)
      Semis += C == ';';
    EXPECT_LE(Semis, 1u) << "line with multiple statements: " << Line;
  }
}

//===----------------------------------------------------------------------===//
// Oracle
//===----------------------------------------------------------------------===//

TEST(FuzzOracleTest, CleanOnPaperShapes) {
  // One program per claim family; each must verify cleanly AND bump its
  // check counter (a zero counter means the oracle silently skipped it).
  struct Case {
    const char *Name;
    const char *Src;
    unsigned CheckCounts::*Counter;
  };
  const Case Cases[] = {
      {"linear",
       "func f(n) {\n s = 0;\n for L: i = 1 to n { s = s + 2; }\n"
       " return s;\n}",
       &CheckCounts::ClosedForm},
      {"wrap-around",
       // j's init (99) must NOT sit on i's extrapolated line, or the
       // classifier rightly collapses the wrap-around to plain linear.
       "func f(n) {\n i = 1;\n j = 99;\n loop L {\n j = i;\n i = i + 1;\n"
       " if (i > n) break;\n }\n return j;\n}",
       &CheckCounts::WrapAround},
      {"periodic",
       "func f(n) {\n a = 1;\n b = 2;\n t = 0;\n"
       " for L: i = 1 to n {\n t = a;\n a = b;\n b = t;\n }\n return a;\n}",
       &CheckCounts::Periodic},
      {"monotonic",
       "func f(n) {\n m = 0;\n for L: i = 1 to n {\n"
       " if (A[i] > 0) { m = m + i; }\n }\n return m;\n}",
       &CheckCounts::Monotonic},
      {"trip-count",
       // Unstrided symbolic bound: countable as a guarded "-1 + n" count.
       // (Strided symbolic counts need a division the solver doesn't do.)
       "func f(n) {\n s = 0;\n for L: i = 2 to n { s = s + i; }\n"
       " return s;\n}",
       &CheckCounts::TripCount},
      {"cfinite",
       // Resonant pair: c1's closed form carries the h*2^h term, so its
       // checks land in the disjoint CFinite bucket.
       "func f(n) {\n c0 = 1;\n c1 = 0;\n for L: i = 1 to n {\n"
       " c0 = c0 * 2;\n c1 = 2*c1 + c0;\n }\n return c1;\n}",
       &CheckCounts::CFinite},
      {"partial",
       // px' = px*px + pm is unsolvable, but the member pm projects out as
       // an exact partial form the member-claim oracle can verify.
       "func f(n) {\n px = 1;\n ps = 0;\n for L: i = 1 to n {\n"
       " pt = px + i;\n pm = pt - px;\n px = px * px + pm;\n"
       " ps = ps + pm;\n }\n return ps;\n}",
       &CheckCounts::Partial},
  };
  for (const Case &C : Cases) {
    OracleOptions OO;
    OO.Args = {9};
    OracleResult R = checkProgram(C.Src, OO);
    EXPECT_TRUE(R.ParseOK) << C.Name;
    for (const Mismatch &M : R.Mismatches)
      ADD_FAILURE() << C.Name << ": " << M.str();
    EXPECT_GT(R.Checks.*(C.Counter), 0u)
        << C.Name << ": its oracle category was never exercised";
  }
}

TEST(FuzzOracleTest, InjectedSkewIsDetected) {
  // The fault-injection hook makes a *correct* linear claim look wrong;
  // the oracle must catch it and report claim vs. observed.
  OracleOptions OO;
  OO.InjectLinearSkew = 1;
  OracleResult R = checkProgram("func f(n) {\n"
                                " s = 0;\n"
                                " for L: i = 1 to n { s = s + 3; }\n"
                                " return s;\n"
                                "}",
                                OO);
  ASSERT_TRUE(R.ParseOK);
  ASSERT_FALSE(R.Mismatches.empty());
  EXPECT_EQ(R.Mismatches[0].Check, "closed-form");
  EXPECT_FALSE(R.Mismatches[0].Claim.empty());
  EXPECT_FALSE(R.Mismatches[0].Observed.empty());
}

TEST(FuzzOracleTest, ParseFailureIsNotAMismatch) {
  OracleResult R = checkProgram("func f( {");
  EXPECT_FALSE(R.ParseOK);
  EXPECT_TRUE(R.Mismatches.empty());
  EXPECT_FALSE(R.FrontendErrors.empty());
}

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

TEST(FuzzMinimizerTest, ShrinksToRelevantLines) {
  const std::string Src = "func f(n) {\n"
                          " a = 1;\n"
                          " b = 2;\n"
                          " c = a + b;\n"
                          " s = 0;\n"
                          " for L: i = 1 to n {\n"
                          " s = s + 7;\n"
                          " c = c * 2;\n"
                          " }\n"
                          " return s;\n"
                          "}\n";
  // Failure := "program parses and still contains the s = s + 7 update".
  StillFailing Pred = [](const std::string &Candidate) {
    if (countStatements(Candidate) == 0)
      return false;
    return Candidate.find("s = s + 7") != std::string::npos;
  };
  ASSERT_TRUE(Pred(Src));
  MinimizeResult R = minimizeProgram(Src, Pred);
  EXPECT_TRUE(Pred(R.Source));
  // a/b/c lines and the return are deletable; the loop wrapper may or may
  // not survive depending on which subsets parse, but the result must be
  // 1-minimal and far smaller than the input.
  EXPECT_LE(R.Statements, 3u) << R.Source;
  EXPECT_GT(R.Probes, 0u);
}

TEST(FuzzMinimizerTest, ProbesCountRealPredicateRuns) {
  // Probes must equal the number of times the predicate actually ran:
  // chunks whose lines were already dropped are skipped without a probe,
  // and the final re-verification is charged like any other run.
  const std::string Src = "func f(n) {\n"
                          " a = 1;\n"
                          " b = 2;\n"
                          " s = 0;\n"
                          " s = s + 7;\n"
                          " return s;\n"
                          "}\n";
  unsigned Calls = 0;
  StillFailing Pred = [&Calls](const std::string &Candidate) {
    ++Calls;
    if (countStatements(Candidate) == 0)
      return false;
    return Candidate.find("s = s + 7") != std::string::npos;
  };
  ASSERT_TRUE(Pred(Src));
  Calls = 0;
  MinimizeResult R = minimizeProgram(Src, Pred);
  EXPECT_EQ(R.Probes, Calls);
  EXPECT_TRUE(R.Parses);
  EXPECT_TRUE(Pred(R.Source));
}

TEST(FuzzMinimizerTest, UnparseableReproIsDistinguished) {
  // A failure that lives in the *frontend* minimizes to something that
  // does not parse; Parses tells that apart from a parseable program that
  // happens to have zero statements (both report Statements == 0).
  const std::string Src = "this is not a program\n"
                          "XYZZY trigger line\n"
                          "more filler\n";
  StillFailing Pred = [](const std::string &Candidate) {
    return Candidate.find("XYZZY") != std::string::npos;
  };
  MinimizeResult R = minimizeProgram(Src, Pred);
  EXPECT_TRUE(Pred(R.Source));
  EXPECT_FALSE(R.Parses);
  EXPECT_EQ(R.Statements, 0u);
}

TEST(FuzzMinimizerTest, ReVerifyFallsBackToOriginal) {
  // A predicate that goes quiet mid-run (here: accepts exactly one probe)
  // can trick ddmin's bookkeeping into keeping a candidate that no longer
  // fails.  The final re-verification must catch that and hand back the
  // original known repro instead of a non-failing "minimized" one.
  const std::string Src = "func f(n) {\n"
                          " a = 1;\n"
                          " b = 2;\n"
                          " return a;\n"
                          "}\n";
  unsigned Calls = 0;
  StillFailing Pred = [&Calls](const std::string &) {
    return Calls++ < 1;
  };
  MinimizeResult R = minimizeProgram(Src, Pred);
  EXPECT_EQ(R.Source, Src) << "re-verify must reject the stale candidate";
  EXPECT_TRUE(R.Parses);
  EXPECT_EQ(R.Probes, Calls);
}

TEST(FuzzMinimizerTest, CountStatements) {
  EXPECT_EQ(countStatements("func f() { return 1; }"), 1u);
  EXPECT_EQ(countStatements("func f(n) {"
                            "  s = 0;"
                            "  for L: i = 1 to n { s = s + i; }"
                            "  return s;"
                            "}"),
            4u); // assign, for, inner assign, return
  EXPECT_EQ(countStatements("not a program"), 0u);
}

//===----------------------------------------------------------------------===//
// Campaign smoke (the tier-1 acceptance gate)
//===----------------------------------------------------------------------===//

TEST(FuzzCampaignTest, Smoke500ProgramsCleanAndDeterministic) {
  FuzzOptions FO;
  FO.Count = 500;
  FO.Seed = 1;
  FO.BatchJobs = 8;
  FuzzResult R = runFuzz(FO);

  EXPECT_EQ(R.Programs, 500u);
  for (const FuzzFailure &F : R.Failures)
    for (const Mismatch &M : F.Mismatches)
      ADD_FAILURE() << "seed " << F.ProgramSeed << ": " << M.str() << "\n"
                    << F.Source;
  EXPECT_TRUE(R.Failures.empty());

  // -j1 vs -j8 batch output over the whole fuzzed corpus is byte-identical.
  EXPECT_TRUE(R.BatchChecked);
  EXPECT_TRUE(R.BatchDeterministic);

  // Every oracle category fired: the grammar keeps reaching all claim
  // families.  (If a generator change trips one of these, the grammar lost
  // a recurrence shape -- fix the generator, don't relax the bound.)
  EXPECT_GT(R.Checks.ClosedForm, 0u);
  EXPECT_GT(R.Checks.CFinite, 0u);
  EXPECT_GT(R.Checks.Partial, 0u);
  EXPECT_GT(R.Checks.WrapAround, 0u);
  EXPECT_GT(R.Checks.Periodic, 0u);
  EXPECT_GT(R.Checks.Monotonic, 0u);
  EXPECT_GT(R.Checks.TripCount, 0u);
  EXPECT_GT(R.Checks.Behavior, 0u);
  EXPECT_GT(R.Checks.Baseline, 0u);
}

TEST(FuzzCampaignTest, InjectedFailureMinimizesToAtMostFiveStatements) {
  // Acceptance demo: a deliberately skewed oracle turns correct linear
  // classifications into mismatches; the campaign must catch one, shrink it
  // to <= 5 statements, and carry the offending claim + observed sequence.
  FuzzOptions FO;
  FO.Count = 40;
  FO.Seed = 7;
  FO.Minimize = true;
  FO.MaxFailures = 1;
  FO.BatchJobs = 0; // determinism diff is exercised by the smoke test
  FO.Oracle.InjectLinearSkew = 2;
  FuzzResult R = runFuzz(FO);

  ASSERT_FALSE(R.Failures.empty());
  const FuzzFailure &F = R.Failures[0];
  ASSERT_FALSE(F.Mismatches.empty());
  EXPECT_FALSE(F.MinimizedSource.empty());
  EXPECT_LE(F.MinimizedStatements, 5u) << F.MinimizedSource;
  ASSERT_FALSE(F.MinimizedMismatches.empty());
  const Mismatch &M = F.MinimizedMismatches[0];
  EXPECT_EQ(M.Check, "closed-form");
  EXPECT_FALSE(M.Claim.empty());
  EXPECT_FALSE(M.Observed.empty());
  // The campaign report renders the reduced program and the claim diff.
  std::string Text = R.renderText();
  EXPECT_NE(Text.find("FAILURES"), std::string::npos);
  EXPECT_NE(Text.find(M.Check), std::string::npos);
}

TEST(FuzzCampaignTest, CampaignIsReproducible) {
  FuzzOptions FO;
  FO.Count = 25;
  FO.Seed = 99;
  FO.BatchJobs = 0;
  FuzzResult A = runFuzz(FO);
  FuzzResult B = runFuzz(FO);
  EXPECT_EQ(A.renderText(), B.renderText());
  EXPECT_EQ(A.Checks.total(), B.Checks.total());
}

TEST(FuzzMinimizerTest, MultiBranchReproSurvivesMinimization) {
  // A summarizer repro: the failure lives in the interplay of the phase
  // flag, both branch arms, and the break -- ddmin must keep the whole
  // diamond (dropping one arm kills the phase cycle) while stripping the
  // unrelated statements around it.  The predicate re-runs the analysis:
  // "the summarizer still proves a phase-periodic tuple for z behind a
  // wrap-around prefix", exactly the claim an oracle mismatch would have
  // been reported against.
  const std::string Src = "func f(n) {\n"
                          " junk1 = 17;\n"
                          " junk2 = junk1 * 3;\n"
                          " t = 0;\n"
                          " z = 0;\n"
                          " acc = 0;\n"
                          " for L: i = 1 to 40 {\n"
                          " junk2 = junk2 + 1;\n"
                          " if (t == 0) {\n"
                          " z = z + 5;\n"
                          " t = 1;\n"
                          " } else {\n"
                          " z = z - 2;\n"
                          " t = 0;\n"
                          " }\n"
                          " acc = acc + junk2;\n"
                          " }\n"
                          " return z;\n"
                          "}\n";
  StillFailing Pred = [](const std::string &Candidate) {
    using namespace biv::testutil;
    if (countStatements(Candidate) == 0)
      return false;
    // Pre-validate: ddmin slices can drop a definition a later use still
    // references; analyze() would abort on those, so weed them out with
    // the non-fatal front end first.
    {
      std::vector<std::string> Errors;
      if (!frontend::parseAndLower(Candidate, Errors))
        return false;
    }
    try {
      ivclass::InductionAnalysis::Options Opts;
      Opts.Summarize = true;
      Analyzed A = analyze(Candidate, /*RunSCCP=*/true, Opts);
      const analysis::Loop *L = nullptr;
      for (const auto &Lp : A.LI->loops())
        if (!Lp->parent())
          L = Lp.get();
      if (!L)
        return false;
      for (ir::Instruction *Phi : L->header()->phis()) {
        const ivclass::Classification &C = A.IA->classify(Phi, L);
        const ivclass::Classification *W = &C;
        while (W->isWrapAround() && W->Inner)
          W = W->Inner.get();
        // The repro's claim is about the accumulator: a period-2 tuple
        // whose phase forms actually grow with the cycle index.  (The
        // bare flip-flop flag also summarizes at period 2, but with
        // invariant phases -- it must not satisfy the predicate alone.)
        if (W->isPhasePeriodic() && W->Period == 2 &&
            !W->PhaseForms.empty() && !W->PhaseForms[0].isInvariant())
          return true;
      }
    } catch (...) {
      return false;
    }
    return false;
  };
  ASSERT_TRUE(Pred(Src));
  MinimizeResult R = minimizeProgram(Src, Pred);
  // The original predicate still fails (holds) on the minimized program...
  EXPECT_TRUE(Pred(R.Source));
  EXPECT_TRUE(R.Parses);
  // ...and the diamond survived whole: both arm updates are still there,
  // while the junk tracker and the accumulator are gone.
  EXPECT_NE(R.Source.find("z = z + 5"), std::string::npos) << R.Source;
  EXPECT_NE(R.Source.find("z = z - 2"), std::string::npos) << R.Source;
  EXPECT_EQ(R.Source.find("junk1"), std::string::npos) << R.Source;
  EXPECT_EQ(R.Source.find("acc"), std::string::npos) << R.Source;
  // 1-minimal core: flag init, z init, the loop, the diamond (two arm
  // bodies, two flag flips), and nothing else.
  EXPECT_LE(R.Statements, 9u) << R.Source;
}
