//===- tests/summarize_test.cpp - Multi-branch loop summarization -------------===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
// Coverage for the summarizer (beyond the paper): the sample-conjecture-
// prove split on branch cycles, per-phase closed forms up to
// SummarizeMaxPeriod, the disproved-conjecture fallback to Unknown,
// RationalOverflow degradation to "no claim", rotation idioms that cross a
// subloop, and the result cache under the --summarize option bit (cold /
// warm / stale-salt).  Every claimed per-phase form is re-verified
// value-by-value against the interpreter.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "cache/AnalysisCache.h"
#include "driver/BatchAnalyzer.h"
#include "ivclass/Summarize.h"
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>

using namespace biv;
using namespace biv::ivclass;
using namespace biv::testutil;

namespace {

InductionAnalysis::Options summarizeOpts() {
  InductionAnalysis::Options O;
  O.Summarize = true;
  return O;
}

/// Re-verifies a summarized classification against an execution trace.
/// Accepts a phase-periodic form, optionally under a chain of wrap-arounds
/// (the shape the summarizer commits for reset variables and rotations):
/// for every header visit h past the accumulated wrap order W, the value
/// must equal PhaseForms[(h-W) mod Period] evaluated at cycle (h-W) / Period.
void expectPhasePeriodicTrace(const Classification &C,
                              const ir::Instruction *Phi,
                              const interp::ExecutionTrace &Trace) {
  const Classification *W = &C;
  uint64_t Order = 0;
  while (W->isWrapAround() && W->Inner) {
    Order += W->WrapOrder;
    W = W->Inner.get();
  }
  ASSERT_TRUE(W->isPhasePeriodic());
  ASSERT_GE(W->Period, 2u);
  ASSERT_EQ(W->PhaseForms.size(), W->Period);
  const std::vector<int64_t> &Seq = Trace.sequenceOf(Phi);
  ASSERT_GT(Seq.size(), Order) << "trace too short to reach the claim";
  for (uint64_t H = Order; H < Seq.size(); ++H) {
    const uint64_t HS = H - Order;
    int64_t Expected = evalAffine(
        W->PhaseForms[HS % W->Period].evaluateAt(int64_t(HS / W->Period)), {});
    EXPECT_EQ(Expected, Seq[H]) << "phase form diverges at h=" << H;
  }
}

//===----------------------------------------------------------------------===//
// Conjecture/proof split and per-phase closed forms
//===----------------------------------------------------------------------===//

const char *FlipFlopSrc = R"(
func f(n) {
  t = 0; z = 0;
  for L: i = 1 to n {
    if (t == 0) { z = z + 5; t = 1; }
    else { z = z - 2; t = 0; }
  }
  return z;
}
)";

TEST(SummarizeTest, OffByDefaultLeavesMultiBranchUnknown) {
  // The classifier alone punts on a per-path update ("Multiple paths or an
  // unsolvable recurrence"); summarization is strictly opt-in.
  Analyzed A = analyze(FlipFlopSrc, /*RunSCCP=*/true);
  EXPECT_TRUE(A.cls("L", "z").isUnknown());
  EXPECT_TRUE(A.cls("L", "t").isUnknown());
}

TEST(SummarizeTest, FlipFlopProvesPeriodTwoForms) {
  Analyzed A = analyze(FlipFlopSrc, /*RunSCCP=*/true, summarizeOpts());
  // The toggle resets every iteration (zero matrix row), so it lands as a
  // wrap-around whose order covers one full cycle, with the per-phase
  // constants inside; the accumulator gains +3 per 2-cycle.
  EXPECT_EQ(A.tuple("L", "t"),
            "wrap-around(L, order 2, phase-periodic(L, period 2, [0 ; 1]))");
  EXPECT_EQ(A.tuple("L", "z"),
            "wrap-around(L, order 2, "
            "phase-periodic(L, period 2, [3 + 3*h ; 8 + 3*h]))");
  interp::ExecutionTrace T = interp::run(*A.F, {9});
  expectPhasePeriodicTrace(A.cls("L", "z"), A.phi("L", "z"), T);
  expectPhasePeriodicTrace(A.cls("L", "t"), A.phi("L", "t"), T);
}

TEST(SummarizeTest, ThreeArmSelectorProvesPeriodThreeForms) {
  // A mod-3 selector with mixed-sign arms: the accumulator is not even
  // monotonic, so nothing short of the per-phase proof can claim it.
  Analyzed A = analyze(R"(
func g(n) {
  c = 0; z = 0;
  for L: i = 1 to n {
    if (c == 0) { z = z + 1; c = 1; }
    else { if (c == 1) { z = z - 3; c = 2; } else { z = z + 7; c = 0; } }
  }
  return z;
}
)",
                       /*RunSCCP=*/true, summarizeOpts());
  EXPECT_EQ(A.tuple("L", "c"),
            "wrap-around(L, order 3, phase-periodic(L, period 3, [0 ; 1 ; 2]))");
  EXPECT_EQ(A.tuple("L", "z"),
            "wrap-around(L, order 3, "
            "phase-periodic(L, period 3, [5 + 5*h ; 6 + 5*h ; 3 + 5*h]))");
  interp::ExecutionTrace T = interp::run(*A.F, {11});
  expectPhasePeriodicTrace(A.cls("L", "z"), A.phi("L", "z"), T);
}

TEST(SummarizeTest, PeriodBeyondMaxStaysUnknown) {
  // A mod-7 selector cycles its paths with period 7 > SummarizeMaxPeriod:
  // the conjecture must reject it, leaving the classifier's verdict alone.
  static_assert(SummarizeMaxPeriod < 7,
                "test assumes period 7 is out of range");
  Analyzed A = analyze(R"(
func h(n) {
  c = 0; z = 0;
  for L: i = 1 to n {
    if (c == 6) { c = 0; z = z + 1; } else { c = c + 1; z = z - 1; }
  }
  return z;
}
)",
                       /*RunSCCP=*/true, summarizeOpts());
  EXPECT_TRUE(A.cls("L", "c").isUnknown());
  EXPECT_TRUE(A.cls("L", "z").isUnknown());
}

//===----------------------------------------------------------------------===//
// Disproved conjecture and overflow degradation
//===----------------------------------------------------------------------===//

TEST(SummarizeTest, UnprovableBranchFallsBackToUnknown) {
  // All three sample runs (n = 3, 7, 12) take the n < 100 arm, so the
  // sampled paths look like a period-1 cycle -- but the condition is not
  // provably phase-constant for symbolic n, and the arms update z
  // differently.  The conjecture must be disproved, not believed.
  Analyzed A = analyze(R"(
func d(n) {
  z = 0; w = 0;
  for L: i = 1 to n {
    if (n < 100) { z = z + 1; w = w + 2; } else { z = z - 2; w = w + 1; }
  }
  return z + w;
}
)",
                       /*RunSCCP=*/true, summarizeOpts());
  EXPECT_TRUE(A.cls("L", "z").isUnknown());
  // w rises along both arms; the plain classifier already claims monotone,
  // and summarization never touches non-Unknown phis.
  EXPECT_TRUE(A.cls("L", "w").isMonotonic());
}

TEST(SummarizeTest, RationalOverflowDegradesToNoClaim) {
  // Composing the two phase transfers squares 3037000500, which exceeds
  // int64: the attempt must degrade to "no claim" (never a wrong claim,
  // never a crash).  The toggle rides in the same system, so it degrades
  // with the throwing attempt.
  Analyzed A = analyze(R"(
func o(n) {
  t = 0; z = 1;
  for L: i = 1 to n {
    if (t == 0) { z = z * 3037000500; t = 1; }
    else { z = 0 - z * 3037000500; t = 0; }
  }
  return z;
}
)",
                       /*RunSCCP=*/true, summarizeOpts());
  EXPECT_TRUE(A.cls("L", "z").isUnknown());
  EXPECT_TRUE(A.cls("L", "t").isUnknown());
}

//===----------------------------------------------------------------------===//
// Rotation across a subloop
//===----------------------------------------------------------------------===//

TEST(SummarizeTest, RotationAcrossSubloopProvesAtPeriodMultiple) {
  // The inner loop rotates the ring symbolically (periodic with the outer
  // phis as inits), so each outer iteration permutes the unknowns.  The
  // permutation matrix has complex eigenvalues at the observed period 1;
  // only the K = 3 multiple composes it back to the identity, which is
  // exactly what the attempt sweep is for.  Exit-value materialization is
  // off (the batch/bench profile): with it on, the classical ring detector
  // claims these phis first and the summarizer never sees them.
  InductionAnalysis::Options Opts = summarizeOpts();
  Opts.MaterializeExitValues = false;
  Analyzed A = analyze(R"(
func f(n) {
  p0 = 3; p1 = 8; p2 = 11; tmp = 0; s = 0;
  for L: i = 1 to 6 {
    for M: j = 1 to 7 { tmp = p0; p0 = p1; p1 = p2; p2 = tmp; }
    s = s + p0;
  }
  return s;
}
)",
                       /*RunSCCP=*/true, Opts);
  EXPECT_EQ(A.tuple("L", "p0"),
            "wrap-around(L, order 3, "
            "phase-periodic(L, period 3, [3 ; 8 ; 11]))");
  EXPECT_EQ(A.tuple("L", "p1"),
            "wrap-around(L, order 3, "
            "phase-periodic(L, period 3, [8 ; 11 ; 3]))");
  EXPECT_EQ(A.tuple("L", "p2"),
            "wrap-around(L, order 3, "
            "phase-periodic(L, period 3, [11 ; 3 ; 8]))");
  interp::ExecutionTrace T = interp::run(*A.F, {});
  expectPhasePeriodicTrace(A.cls("L", "p0"), A.phi("L", "p0"), T);
  expectPhasePeriodicTrace(A.cls("L", "p1"), A.phi("L", "p1"), T);
  expectPhasePeriodicTrace(A.cls("L", "p2"), A.phi("L", "p2"), T);
  // The inner ring itself reports symbolically against the outer phis.
  EXPECT_EQ(A.tuple("M", "p0"),
            "periodic(M, period 3, phase 1, inits [p2.1, p0.1, p1.1])");
}

//===----------------------------------------------------------------------===//
// Cache interaction: cold / warm / stale salt under the --summarize bit
//===----------------------------------------------------------------------===//

struct TempPath {
  std::string Path;
  explicit TempPath(const std::string &Name)
      : Path((std::filesystem::path(::testing::TempDir()) / Name).string()) {
    std::filesystem::remove(Path);
  }
  ~TempPath() { std::filesystem::remove(Path); }
};

driver::BatchOptions cachedOpts(cache::AnalysisCache *C, bool Summarize) {
  driver::BatchOptions BO;
  BO.Jobs = 1;
  BO.Summarize = Summarize;
  BO.Cache = C;
  return BO;
}

TEST(SummarizeCacheTest, ColdWarmIdenticalAndKeyedOnSummarizeBit) {
  std::vector<driver::SourceInput> Sources{{"flipflop.biv", FlipFlopSrc}};
  TempPath P("summarize_cache.bin");
  std::string Err;

  std::string Cold, Warm, Off;
  {
    cache::AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    Cold = driver::analyzeBatch(Sources, cachedOpts(&C, true)).renderText();
    ASSERT_TRUE(C.save(Err)) << Err;
  }
  {
    cache::AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    Warm = driver::analyzeBatch(Sources, cachedOpts(&C, true)).renderText();
    // The summarize option bit is part of the cache key: a non-summarize
    // run over the same unit must not be served the summarized report.
    Off = driver::analyzeBatch(Sources, cachedOpts(&C, false)).renderText();
  }
  EXPECT_EQ(Cold, Warm) << "warm --summarize run must render byte-identically";
  EXPECT_NE(Cold, Off) << "summarize bit must partition the cache key";
  // The kinds footer names every kind unconditionally; pin the per-variable
  // report lines instead.
  EXPECT_NE(Cold.find("t: wrap-around"), std::string::npos);
  EXPECT_NE(Off.find("t: unknown"), std::string::npos);
}

TEST(SummarizeCacheTest, StaleSaltDiscardsAndRecomputesIdentically) {
  std::vector<driver::SourceInput> Sources{{"flipflop.biv", FlipFlopSrc}};
  TempPath P("summarize_cache_salt.bin");
  std::string Err;

  std::string Cold;
  {
    cache::AnalysisCache C;
    ASSERT_TRUE(C.open(P.Path, Err)) << Err;
    Cold = driver::analyzeBatch(Sources, cachedOpts(&C, true)).renderText();
    ASSERT_TRUE(C.save(Err)) << Err;
  }

  // Corrupt the salt field (third u64 of the header): the file must read
  // as a stale cache from an older analysis version.
  {
    std::fstream F(P.Path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(F.good());
    uint64_t Bogus = cache::AnalysisVersionSalt + 1000;
    F.seekp(16);
    F.write(reinterpret_cast<const char *>(&Bogus), sizeof(Bogus));
  }

  cache::AnalysisCache C;
  ASSERT_TRUE(C.open(P.Path, Err)) << Err;
  EXPECT_TRUE(C.invalidated());
  std::string Recomputed =
      driver::analyzeBatch(Sources, cachedOpts(&C, true)).renderText();
  EXPECT_EQ(Cold, Recomputed)
      << "a discarded stale cache must recompute to the same report";
}

} // namespace
