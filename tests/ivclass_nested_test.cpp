//===- tests/ivclass_nested_test.cpp - Sections 5.2/5.3: nested loops ---------===//
//
// Experiments E7 (Figures 7/8) and E8 (Figure 9): trip counts, materialized
// exit values, multiloop induction variables, and the triangular-loop
// quadratic that [EHLP92] found hard.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

using namespace biv;
using namespace biv::testutil;
using ivclass::Classification;
using ivclass::IVKind;
using ivclass::TripCountInfo;

namespace {

/// Figures 7/8 verbatim: the inner loop's exit test sits between the two k
/// increments.
const char *Fig7Src = "func fig7(outer) {"
                      "  k = 0;"
                      "  for L17: t = 1 to outer {"
                      "    i = 1;"
                      "    loop L18 {"
                      "      k = k + 2;"
                      "      if (i > 100) break;"
                      "      i = i + 1;"
                      "    }"
                      "    k = k + 2;"
                      "  }"
                      "  return k;"
                      "}";

} // namespace

TEST(NestedIVTest, Figure7InnerLoop) {
  Analyzed A = analyze(Fig7Src);
  // Inner: k3 = (L18, k2, 2) with k2 symbolic; i2 = (L18, 1, 1).
  const Classification &I2 = A.cls("L18", "i");
  ASSERT_EQ(I2.Kind, IVKind::Linear);
  EXPECT_EQ(I2.Form.coeff(0), Affine(1));
  EXPECT_EQ(I2.Form.coeff(1), Affine(1));

  const Classification &K3 = A.cls("L18", "k");
  ASSERT_EQ(K3.Kind, IVKind::Linear);
  EXPECT_EQ(K3.Form.coeff(1), Affine(2));
  EXPECT_FALSE(K3.Form.coeff(0).isConstant())
      << "inner initial value is the outer loop's k";

  // Trip count: the exit converts to (L18, 100, -1), so 100 stays.
  const TripCountInfo &TC = A.IA->tripCount(A.loop("L18"));
  ASSERT_EQ(TC.K, TripCountInfo::Kind::Finite);
  EXPECT_EQ(TC.Count, Affine(100));
}

TEST(NestedIVTest, Figure8OuterLoopThroughExitValues) {
  Analyzed A = analyze(Fig7Src);
  // k increments 2*(100+1) inside the loop (the k4 = k3+2 above the exit
  // test runs 101 times) plus 2 after it: outer k2 = (L17, 0, 204).
  const Classification &K2 = A.cls("L17", "k");
  ASSERT_EQ(K2.Kind, IVKind::Linear);
  EXPECT_EQ(K2.Form.coeff(0), Affine(0));
  EXPECT_EQ(K2.Form.coeff(1), Affine(204));
  // The paper's k5 (carried value) = (L17, 204, 204).
  const Classification &K5 = A.clsOf(A.carried("L17", "k"), "L17");
  ASSERT_EQ(K5.Kind, IVKind::Linear);
  EXPECT_EQ(K5.Form.coeff(0), Affine(204));
  EXPECT_EQ(K5.Form.coeff(1), Affine(204));
  EXPECT_GE(A.IA->stats().ExitValuesMaterialized, 1u);
}

TEST(NestedIVTest, Figure8NestedTuplePrinting) {
  Analyzed A = analyze(Fig7Src);
  // k3 = (L18, (L17, 0, 204), 2): the multiloop induction variable as a
  // nested tuple, exactly the paper's section 5.3 result.
  EXPECT_EQ(A.tuple("L18", "k"), "(L18, (L17, 0, 204), 2)");
}

TEST(NestedIVTest, Figure7Oracle) {
  Analyzed A = analyze(Fig7Src);
  interp::ExecutionTrace T = interp::run(*A.F, {5}, {1u << 20});
  ASSERT_TRUE(T.ok()) << T.Error;
  // Outer k2 observed: 0, 204, 408, ...
  expectFormMatchesTrace(A.cls("L17", "k"), A.phi("L17", "k"), T);
  EXPECT_EQ(T.ReturnValue, 5 * 204);
}

TEST(NestedIVTest, Figure9TriangularLoop) {
  // The [EHLP92] example: inner trip count depends on the outer index.
  Analyzed A = analyze("func fig9(n) {"
                       "  j = 0;"
                       "  for L19: i = 1 to n {"
                       "    j = j + 1;"
                       "    for L20: k = 1 to i {"
                       "      j = j + 1;"
                       "    }"
                       "  }"
                       "  return j;"
                       "}");
  // Inner trip count is the symbolic i.
  const TripCountInfo &TC = A.IA->tripCount(A.loop("L20"));
  ASSERT_EQ(TC.K, TripCountInfo::Kind::Finite);
  EXPECT_TRUE(TC.Guarded);
  EXPECT_FALSE(TC.Count.isConstant());

  // Outer j2: the quadratic family (L19, 0, 3/2, 1/2).
  const Classification &J2 = A.cls("L19", "j");
  ASSERT_EQ(J2.Kind, IVKind::Polynomial);
  EXPECT_EQ(J2.Form.coeff(0), Affine(0));
  EXPECT_EQ(J2.Form.coeff(1), Affine(Rational(3, 2)));
  EXPECT_EQ(J2.Form.coeff(2), Affine(Rational(1, 2)));

  // Inner j4 = (L20, j3, 1) with the outer quadratic as its initial value:
  // the nested tuple of section 5.3.
  const Classification &J4 = A.cls("L20", "j");
  ASSERT_EQ(J4.Kind, IVKind::Linear);
  EXPECT_EQ(J4.Form.coeff(1), Affine(1));
  // j4's initial value is j3 = j2 + 1 = (L19, 1, 3/2, 1/2).
  EXPECT_EQ(A.tuple("L20", "j"), "(L20, (L19, 1, 3/2, 1/2), 1)");

  // Oracle: j2(h) = h(h+3)/2 on a real run.
  interp::ExecutionTrace T = interp::run(*A.F, {8});
  ASSERT_TRUE(T.ok()) << T.Error;
  expectFormMatchesTrace(J2, A.phi("L19", "j"), T);
  // Total: n increments outside + sum(i) inside = n + n(n+1)/2.
  EXPECT_EQ(T.ReturnValue, 8 + 8 * 9 / 2);
}

TEST(NestedIVTest, TripCountNumericCases) {
  // All three branches of the paper's formula.
  struct Case {
    const char *Src;
    TripCountInfo::Kind Kind;
    int64_t Count;
  };
  const Case Cases[] = {
      // i <= 0: zero-trip (for 5 to 1 never stays).
      {"func z() { s = 0; for L: i = 5 to 1 { s = s + 1; } return s; }",
       TripCountInfo::Kind::Zero, 0},
      // i > 0, s < 0: ceil(i / -s); 1..10 by 3 -> ceil(10/3) = 4.
      {"func f() { s = 0; for L: i = 1 to 10 by 3 { s = s + 1; } return s; }",
       TripCountInfo::Kind::Finite, 4},
      // i > 0, s >= 0: infinite (decreasing exit test never fires).
      {"func inf() { s = 0; i = 0;"
       "  loop L { i = i + 1; s = s - 1; if (s > 0) break; }"
       "  return s; }",
       TripCountInfo::Kind::Infinite, 0},
  };
  for (const Case &C : Cases) {
    Analyzed A = analyze(C.Src);
    const TripCountInfo &TC = A.IA->tripCount(A.loop("L"));
    EXPECT_EQ(TC.K, C.Kind) << C.Src;
    if (C.Kind == TripCountInfo::Kind::Finite) {
      EXPECT_EQ(TC.Count, Affine(C.Count)) << C.Src;
    }
    // Oracle: a finite/zero count must match the interpreter (count stay
    // decisions by running the loop).
    if (TC.isCountable()) {
      interp::ExecutionTrace T = interp::run(*A.F, {});
      ASSERT_TRUE(T.ok()) << T.Error;
    }
  }
}

TEST(NestedIVTest, TripCountMatchesExecutionSweep) {
  // Property sweep: for lo..hi by st, trip count formula vs. real runs.
  for (int64_t Lo : {-3, 0, 1, 5})
    for (int64_t Hi : {-4, 0, 3, 17})
      for (int64_t St : {1, 2, 5}) {
        std::string Src = "func f() { s = 0; for L: i = " +
                          std::to_string(Lo) + " to " + std::to_string(Hi) +
                          " by " + std::to_string(St) +
                          " { s = s + 1; } return s; }";
        Analyzed A = analyze(Src);
        const TripCountInfo &TC = A.IA->tripCount(A.loop("L"));
        interp::ExecutionTrace T = interp::run(*A.F, {});
        ASSERT_TRUE(T.ok()) << T.Error;
        ASSERT_TRUE(TC.isCountable()) << Src;
        EXPECT_EQ(TC.count(), Affine(*T.ReturnValue)) << Src;
      }
}

TEST(NestedIVTest, SymbolicTripCountForLoop) {
  Analyzed A = analyze("func f(n) { s = 0;"
                       "  for L: i = 1 to n { s = s + 1; }"
                       "  return s; }");
  const TripCountInfo &TC = A.IA->tripCount(A.loop("L"));
  ASSERT_EQ(TC.K, TripCountInfo::Kind::Finite);
  EXPECT_TRUE(TC.Guarded);
  EXPECT_EQ(TC.Count, Affine::symbol(A.F->findArgument("n")));
}

TEST(NestedIVTest, MultiExitMaxTripCount) {
  // Two exits: i > 100 and a data-dependent break; only a max count.
  Analyzed A = analyze("func f(n) { s = 0; i = 0;"
                       "  loop L {"
                       "    i = i + 1;"
                       "    if (i > 100) break;"
                       "    if (A[i] > n) break;"
                       "    s = s + 1;"
                       "  }"
                       "  return s; }");
  const TripCountInfo &TC = A.IA->tripCount(A.loop("L"));
  EXPECT_EQ(TC.K, TripCountInfo::Kind::Unknown);
  ASSERT_TRUE(TC.MaxCount.has_value());
  EXPECT_EQ(*TC.MaxCount, Affine(100));
}

TEST(NestedIVTest, ExitValueOfForLoopVariable) {
  // After `for i = 1 to 10`, uses of i see the exit value 11.
  Analyzed A = analyze("func f() {"
                       "  s = 0;"
                       "  for L: i = 1 to 10 { s = s + i; }"
                       "  return i;"
                       "}");
  interp::ExecutionTrace T = interp::run(*A.F, {});
  ASSERT_TRUE(T.ok()) << T.Error;
  EXPECT_EQ(T.ReturnValue, 11);
  // The return operand was rewritten to a constant/materialized exit value,
  // not the phi itself.
  const ir::Instruction *Ret = nullptr;
  for (const auto &BB : A.F->blocks())
    for (const auto &I : *BB)
      if (I->opcode() == ir::Opcode::Ret)
        Ret = I;
  ASSERT_NE(Ret, nullptr);
  ASSERT_EQ(Ret->numOperands(), 1u);
  EXPECT_NE(Ret->operand(0), A.phi("L", "i"));
}

TEST(NestedIVTest, TripleNestingClassifies) {
  // Three levels; the innermost initial value chains two nested tuples.
  Analyzed A = analyze("func deep(n) {"
                       "  k = 0;"
                       "  for L1: a = 1 to 4 {"
                       "    for L2: b = 1 to 5 {"
                       "      for L3: c = 1 to 6 {"
                       "        k = k + 1;"
                       "      }"
                       "    }"
                       "  }"
                       "  return k;"
                       "}");
  const Classification &K1 = A.cls("L1", "k");
  ASSERT_EQ(K1.Kind, IVKind::Linear);
  EXPECT_EQ(K1.Form.coeff(1), Affine(30));
  EXPECT_EQ(A.tuple("L3", "k"), "(L3, (L2, (L1, 0, 30), 6), 1)");
  interp::ExecutionTrace T = interp::run(*A.F, {});
  ASSERT_TRUE(T.ok());
  EXPECT_EQ(T.ReturnValue, 4 * 5 * 6);
}

TEST(NestedIVTest, DisablingMaterializationLosesOuterIV) {
  // With exit-value materialization off, the outer k is unknown (the
  // paper's "treated as unknown" fallback).
  ivclass::InductionAnalysis::Options Opts;
  Opts.MaterializeExitValues = false;
  Analyzed A = analyze(Fig7Src, /*RunSCCP=*/false, Opts);
  EXPECT_EQ(A.cls("L17", "k").Kind, IVKind::Unknown);
}
