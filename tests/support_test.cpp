//===- tests/support_test.cpp - Rational/Affine/Matrix unit tests ------------===//

#include "support/Affine.h"
#include "support/Matrix.h"
#include "support/Rational.h"
#include <gtest/gtest.h>
#include <limits>

using namespace biv;

//===----------------------------------------------------------------------===//
// Rational
//===----------------------------------------------------------------------===//

TEST(RationalTest, DefaultIsZero) {
  Rational R;
  EXPECT_TRUE(R.isZero());
  EXPECT_TRUE(R.isInteger());
  EXPECT_EQ(R.getInteger(), 0);
}

TEST(RationalTest, NormalizesSignAndGcd) {
  Rational R(6, -8);
  EXPECT_EQ(R.numerator(), -3);
  EXPECT_EQ(R.denominator(), 4);
  EXPECT_TRUE(R.isNegative());
}

TEST(RationalTest, Arithmetic) {
  Rational Half(1, 2), Third(1, 3);
  EXPECT_EQ(Half + Third, Rational(5, 6));
  EXPECT_EQ(Half - Third, Rational(1, 6));
  EXPECT_EQ(Half * Third, Rational(1, 6));
  EXPECT_EQ(Half / Third, Rational(3, 2));
  EXPECT_EQ(-Half, Rational(-1, 2));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 3), Rational(-1, 2));
  EXPECT_NE(Rational(1, 3), Rational(1, 2));
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(6, 2).floor(), 3);
  EXPECT_EQ(Rational(6, 2).ceil(), 3);
}

TEST(RationalTest, Pow) {
  EXPECT_EQ(Rational(2).pow(10), Rational(1024));
  EXPECT_EQ(Rational(-3).pow(3), Rational(-27));
  EXPECT_EQ(Rational(2).pow(0), Rational(1));
  EXPECT_EQ(Rational(2).pow(-2), Rational(1, 4));
  EXPECT_EQ(Rational(1, 2).pow(3), Rational(1, 8));
}

TEST(RationalTest, Str) {
  EXPECT_EQ(Rational(5).str(), "5");
  EXPECT_EQ(Rational(-3, 2).str(), "-3/2");
}

TEST(RationalTest, LargeIntermediates) {
  // (1/3e9) + (1/3e9) must reduce through 128-bit intermediates.
  Rational A(1, 3000000000LL);
  Rational Sum = A + A;
  EXPECT_EQ(Sum, Rational(1, 1500000000LL));
}

TEST(RationalTest, Gcd64) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
}

TEST(RationalTest, GcdReductionAfterEveryOp) {
  // Results are always in lowest terms -- no "non-normalized fraction"
  // survives an operation (the old bug let 3/6 escape and poison ==).
  Rational S = Rational(1, 6) + Rational(1, 3);
  EXPECT_EQ(S.numerator(), 1);
  EXPECT_EQ(S.denominator(), 2);
  Rational P = Rational(2, 3) * Rational(3, 4);
  EXPECT_EQ(P.numerator(), 1);
  EXPECT_EQ(P.denominator(), 2);
  Rational D = Rational(4, 6) / Rational(2, 9);
  EXPECT_EQ(D.numerator(), 3);
  EXPECT_EQ(D.denominator(), 1);
}

TEST(RationalTest, OverflowThrowsInsteadOfWrapping) {
  const int64_t Max = std::numeric_limits<int64_t>::max();
  const int64_t Min = std::numeric_limits<int64_t>::min();
  // Each of these has an exact value just outside int64 after reduction:
  // the old code wrapped silently, producing a *wrong* closed form.
  EXPECT_THROW(Rational(Max) + Rational(1), RationalOverflow);
  EXPECT_THROW(Rational(Min) - Rational(1), RationalOverflow);
  EXPECT_THROW(-Rational(Min), RationalOverflow);
  EXPECT_THROW(Rational(Max) * Rational(2), RationalOverflow);
  // Normalization keeps Den > 0, so a Den of INT64_MIN must negate Num --
  // representable only when the division by gcd makes room.
  EXPECT_THROW(Rational(1, Min), RationalOverflow);
  EXPECT_THROW(Rational(Min, -1), RationalOverflow); // == -Min, one too big
  EXPECT_THROW(Rational(Min) / Rational(-1), RationalOverflow);
}

TEST(RationalTest, ExtremeValuesThatDoFitAreExact) {
  const int64_t Max = std::numeric_limits<int64_t>::max();
  const int64_t Min = std::numeric_limits<int64_t>::min();
  // INT64_MIN / -2 reduces to 2^62: wide intermediates make it exact.
  Rational R(Min, -2);
  EXPECT_EQ(R.numerator(), int64_t(1) << 62);
  EXPECT_EQ(R.denominator(), 1);
  // (MAX/2) * 2 cancels back inside range.
  EXPECT_EQ(Rational(Max, 2) * Rational(2), Rational(Max));
  // floor/ceil at the bottom of the range must not round through a wrap.
  EXPECT_EQ(Rational(Min).floor(), Min);
  EXPECT_EQ(Rational(Min).ceil(), Min);
  EXPECT_EQ(Rational(Min, 3).ceil(), Min / 3);
}

//===----------------------------------------------------------------------===//
// Affine
//===----------------------------------------------------------------------===//

namespace {
int SymA, SymB; // arbitrary distinct addresses as symbols
} // namespace

TEST(AffineTest, ConstantOnly) {
  Affine A(Rational(3, 2));
  EXPECT_TRUE(A.isConstant());
  EXPECT_EQ(*A.getConstant(), Rational(3, 2));
}

TEST(AffineTest, SymbolArithmetic) {
  Affine N = Affine::symbol(&SymA);
  Affine E = N + Affine(2);            // n + 2
  Affine F = E * Rational(3);          // 3n + 6
  EXPECT_EQ(F.coefficientOf(&SymA), Rational(3));
  EXPECT_EQ(F.constantPart(), Rational(6));
  EXPECT_FALSE(F.isConstant());
}

TEST(AffineTest, CancellationRemovesTerms) {
  Affine N = Affine::symbol(&SymA);
  Affine Z = N - N;
  EXPECT_TRUE(Z.isZero());
  EXPECT_TRUE(Z.isConstant());
}

TEST(AffineTest, MulRequiresConstantSide) {
  Affine N = Affine::symbol(&SymA);
  Affine M = Affine::symbol(&SymB);
  EXPECT_FALSE(Affine::mul(N, M).has_value());
  auto P = Affine::mul(N + Affine(1), Affine(4));
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->coefficientOf(&SymA), Rational(4));
  EXPECT_EQ(P->constantPart(), Rational(4));
}

TEST(AffineTest, Equality) {
  Affine X = Affine::symbol(&SymA) + Affine(1);
  Affine Y = Affine(1) + Affine::symbol(&SymA);
  EXPECT_EQ(X, Y);
  EXPECT_NE(X, X + Affine(1));
}

TEST(AffineTest, Printing) {
  auto Namer = [](SymbolRef S) {
    return S == &SymA ? std::string("n") : std::string("m");
  };
  Affine E = Affine::symbol(&SymA) * Rational(2) + Affine(Rational(1, 2));
  EXPECT_EQ(E.str(Namer), "1/2 + 2*n");
  Affine Neg = -Affine::symbol(&SymA) + Affine(3);
  EXPECT_EQ(Neg.str(Namer), "3 - n");
  EXPECT_EQ(Affine().str(), "0");
}

//===----------------------------------------------------------------------===//
// RatMatrix
//===----------------------------------------------------------------------===//

TEST(MatrixTest, IdentityInverse) {
  RatMatrix I = RatMatrix::identity(3);
  auto Inv = I.inverse();
  ASSERT_TRUE(Inv.has_value());
  EXPECT_EQ(*Inv, I);
}

TEST(MatrixTest, SingularHasNoInverse) {
  RatMatrix M(2, 2);
  M.at(0, 0) = Rational(1);
  M.at(0, 1) = Rational(2);
  M.at(1, 0) = Rational(2);
  M.at(1, 1) = Rational(4);
  EXPECT_FALSE(M.inverse().has_value());
}

TEST(MatrixTest, PaperVandermondeExample) {
  // Section 4.3: k in loop L14 is a third-order polynomial IV; the matrix of
  // h^k values for h = 0..3 must invert exactly over the rationals.
  RatMatrix A(4, 4);
  for (unsigned H = 0; H < 4; ++H)
    for (unsigned K = 0; K < 4; ++K)
      A.at(H, K) = Rational(int64_t(H)).pow(K);
  auto Inv = A.inverse();
  ASSERT_TRUE(Inv.has_value());
  EXPECT_EQ(*Inv * A, RatMatrix::identity(4));

  // Multiplying the inverse by the first four values of k (4, 9, 17, 29)
  // yields the closed-form coefficients (24 23 6 1)/6, i.e.
  // k(h) = (h^3 + 6h^2 + 23h + 24) / 6.
  std::vector<Affine> B = {Affine(4), Affine(9), Affine(17), Affine(29)};
  auto X = A.solveAffine(B);
  ASSERT_TRUE(X.has_value());
  EXPECT_EQ(*(*X)[0].getConstant(), Rational(4));
  EXPECT_EQ(*(*X)[1].getConstant(), Rational(23, 6));
  EXPECT_EQ(*(*X)[2].getConstant(), Rational(1));
  EXPECT_EQ(*(*X)[3].getConstant(), Rational(1, 6));
}

TEST(MatrixTest, SolveWithSymbolicRHS) {
  // x0 + x1*h for h=0,1 with symbolic first values (n, n+s).
  int N, S;
  RatMatrix A(2, 2);
  A.at(0, 0) = Rational(1);
  A.at(0, 1) = Rational(0);
  A.at(1, 0) = Rational(1);
  A.at(1, 1) = Rational(1);
  std::vector<Affine> B = {Affine::symbol(&N),
                           Affine::symbol(&N) + Affine::symbol(&S)};
  auto X = A.solveAffine(B);
  ASSERT_TRUE(X.has_value());
  EXPECT_EQ((*X)[0], Affine::symbol(&N));
  EXPECT_EQ((*X)[1], Affine::symbol(&S));
}

TEST(MatrixTest, GeometricPaperMatrix) {
  // Section 4.3's geometric example m = 3*m + 2*i + 1: matrix rows are
  // [1 h h^2 3^h] for h = 0..3.
  RatMatrix A(4, 4);
  for (unsigned H = 0; H < 4; ++H) {
    A.at(H, 0) = Rational(1);
    A.at(H, 1) = Rational(int64_t(H));
    A.at(H, 2) = Rational(int64_t(H)).pow(2);
    A.at(H, 3) = Rational(3).pow(int64_t(H));
  }
  ASSERT_TRUE(A.inverse().has_value());
  // First values of m starting at 0 with i = h+1: m' = 3m + 2(h+1) + 1.
  // m(0)=0, m(1)=3, m(2)=14, m(3)=49.
  std::vector<Affine> B = {Affine(0), Affine(3), Affine(14), Affine(49)};
  auto X = A.solveAffine(B);
  ASSERT_TRUE(X.has_value());
  // Verify the closed form reproduces the sequence (coefficients are exact).
  for (int64_t H = 0; H <= 3; ++H) {
    Rational V = *(*X)[0].getConstant() +
                 *(*X)[1].getConstant() * Rational(H) +
                 *(*X)[2].getConstant() * Rational(H).pow(2) +
                 *(*X)[3].getConstant() * Rational(3).pow(H);
    EXPECT_EQ(V, *B[H].getConstant());
  }
  // No quadratic term survives, as the paper notes.
  EXPECT_EQ(*(*X)[2].getConstant(), Rational(0));
}

TEST(MatrixTest, MultiplyShapes) {
  RatMatrix A(2, 3), B(3, 2);
  for (unsigned R = 0; R < 2; ++R)
    for (unsigned C = 0; C < 3; ++C)
      A.at(R, C) = Rational(R + C);
  for (unsigned R = 0; R < 3; ++R)
    for (unsigned C = 0; C < 2; ++C)
      B.at(R, C) = Rational(int64_t(R) - int64_t(C));
  RatMatrix P = A * B;
  EXPECT_EQ(P.rows(), 2u);
  EXPECT_EQ(P.cols(), 2u);
  // Row 0 of A = (0 1 2), col 0 of B = (0 1 2) -> 5.
  EXPECT_EQ(P.at(0, 0), Rational(5));
}
