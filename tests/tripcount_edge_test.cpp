//===- tests/tripcount_edge_test.cpp - Trip counts at the int64 edges ---------===//
//
// Table-driven trip counts for strides +-1 and +-k and for bounds pushed up
// against INT64_MIN / INT64_MAX, cross-checked against the interpreter.
// The sharp edge: the paper's formula reasons over mathematical integers
// while execution wraps in two's complement, so near the extremes a loop
// that "counts to 3" actually wraps past its bound and keeps running.  The
// analysis must answer Unknown there -- a wrapped finite claim is the bug
// these tests pin down.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "ivclass/TripCount.h"

using namespace biv;
using namespace biv::testutil;
using ivclass::TripCountInfo;

namespace {

struct Case {
  const char *Name;
  const char *Header; // the `for L: ...` line, label L, variable i
  TripCountInfo::Kind Expect;
  int64_t Count;      // when Expect == Finite
  bool RunSCCP = true;
};

/// Wraps \p Header in a counting function: the machine's own trip count
/// comes back as the return value.
std::string program(const Case &C) {
  return std::string("func f() {  c = 0;  ") + C.Header +
         " { c = c + 1; }  return c; }";
}

const Case Cases[] = {
    // The plain strides.
    {"up_by_1", "for L: i = 0 to 9", TripCountInfo::Kind::Finite, 10},
    {"up_by_3_exact", "for L: i = 0 to 8 by 3", TripCountInfo::Kind::Finite,
     3},
    {"up_by_3_overshoot", "for L: i = 0 to 9 by 3",
     TripCountInfo::Kind::Finite, 4},
    {"down_by_1", "for L: i = 9 downto 0", TripCountInfo::Kind::Finite, 10},
    {"down_by_4", "for L: i = 20 downto 1 by 4", TripCountInfo::Kind::Finite,
     5},
    // Degenerate loops run without SCCP: with folding on, the always-false
    // (or always-true) exit compare constant-folds away and the trip-count
    // walker has no comparison left to normalize (soundly Unknown).  These
    // rows pin the analyzer's own zero/infinite formula.
    {"up_empty", "for L: i = 5 to 4", TripCountInfo::Kind::Zero, 0,
     /*RunSCCP=*/false},
    {"down_empty", "for L: i = 1 downto 2", TripCountInfo::Kind::Zero, 0,
     /*RunSCCP=*/false},
    {"zero_stride", "for L: i = 0 to 5 by 0", TripCountInfo::Kind::Infinite,
     0, /*RunSCCP=*/false},

    // Extreme bounds that stay countable: the margin arithmetic runs in
    // exact rationals, so sitting on INT64_MIN is fine as long as no
    // executed value leaves int64.
    {"min_up", "for L: i = -9223372036854775807 - 1 to "
               "-9223372036854775800",
     TripCountInfo::Kind::Finite, 9},
    {"max_down", "for L: i = 9223372036854775807 downto "
                 "9223372036854775800",
     TripCountInfo::Kind::Finite, 8},

    // A `to INT64_MAX` bound: the `<=` rewrite needs hi+1, and execution
    // wraps past the bound and never leaves -- Unknown, not a number.
    {"to_int64_max", "for L: i = 0 to 9223372036854775807",
     TripCountInfo::Kind::Unknown, 0},

    // (hi - lo) itself overflows: a nearly 2^64 margin.
    {"span_overflow", "for L: i = -9223372036854775807 to "
                      "9223372036854775806",
     TripCountInfo::Kind::Unknown, 0},

    // The classic lie: ceil((806+1-802)/2) = 3, but iteration 3 computes
    // 802+6 = 2^63, which wraps negative and stays below the bound; the
    // machine loop is effectively endless.  Claiming Finite 3 here is the
    // silent-wrap bug.
    {"wrap_past_bound", "for L: i = 9223372036854775802 to "
                        "9223372036854775806 by 2",
     TripCountInfo::Kind::Unknown, 0},
    // Downward twin: ceil((-803 - (-808) + 1)/2) = 3, but iteration 3 is
    // -803 - 6 = -809, below INT64_MIN -- the machine wraps to +2^63-1,
    // which is still >= the bound, and loops on.
    {"wrap_past_bound_down", "for L: i = -9223372036854775803 downto "
                             "-9223372036854775807 - 1 by 2",
     TripCountInfo::Kind::Unknown, 0},

    // Contrast: stepping down exactly *onto* INT64_MIN is representable
    // and exits normally -- the analysis must not over-degrade it.
    {"down_to_int64_min", "for L: i = -9223372036854775802 downto "
                          "-9223372036854775806 by 2",
     TripCountInfo::Kind::Finite, 3},
};

} // namespace

TEST(TripCountEdgeTest, TableMatchesAnalysisAndInterpreter) {
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Name);
    Analyzed A = analyze(program(C), C.RunSCCP);
    const TripCountInfo &TC = A.IA->tripCount(A.loop("L"));
    EXPECT_EQ(TC.K, C.Expect);
    if (C.Expect == TripCountInfo::Kind::Finite) {
      ASSERT_TRUE(TC.Count.isConstant());
      EXPECT_EQ(TC.Count.getConstant()->getInteger(), C.Count);

      // Ground truth: the machine must agree with every finite claim.
      interp::ExecOptions EO;
      EO.TraceValues = false;
      EO.TraceArrays = false;
      interp::ExecutionTrace T = interp::run(*A.F, {}, EO);
      ASSERT_TRUE(T.ok()) << T.Error;
      ASSERT_TRUE(T.ReturnValue.has_value());
      EXPECT_EQ(*T.ReturnValue, C.Count);
    }
  }
}

TEST(TripCountEdgeTest, UnknownCasesReallyDoWrap) {
  // For the wrap cases the interpreter (budget-capped) must still be going
  // strong long past the would-be count: evidence that Unknown is the only
  // sound answer, and that a resurrected finite formula would be wrong.
  for (const char *Name : {"wrap_past_bound", "wrap_past_bound_down"}) {
    const Case *C = nullptr;
    for (const Case &K : Cases)
      if (std::string(K.Name) == Name)
        C = &K;
    ASSERT_NE(C, nullptr);
    SCOPED_TRACE(Name);
    Analyzed A = analyze(program(*C), /*RunSCCP=*/true);
    interp::ExecOptions EO;
    EO.MaxSteps = 20000;
    EO.TraceValues = false;
    EO.TraceArrays = false;
    interp::ExecutionTrace T = interp::run(*A.F, {}, EO);
    EXPECT_TRUE(T.HitStepLimit)
        << "expected the wrapped loop to outlive the step budget";
  }
}

TEST(TripCountEdgeTest, SymbolicUnitStrideStillGuarded) {
  // The symbolic `for i = 1 to n` path is untouched by the overflow
  // hardening: count n, guarded against non-positive n.
  Analyzed A = analyze("func f(n) {  c = 0;"
                       "  for L: i = 1 to n { c = c + 1; }"
                       "  return c; }");
  const TripCountInfo &TC = A.IA->tripCount(A.loop("L"));
  ASSERT_EQ(TC.K, TripCountInfo::Kind::Finite);
  EXPECT_TRUE(TC.Guarded);
}

//===----------------------------------------------------------------------===//
// Branch-cyclic (summarized) exits.  A break whose controlling value is a
// phase-periodic tuple behind a wrap-around prefix has a computable first
// failing iteration; the prefix itself is unverified, so the analysis
// reports an upper bound (Unknown + MaxCount), never an exact count.  The
// interpreter supplies the ground truth the bound must cover.
//===----------------------------------------------------------------------===//

namespace {

ivclass::InductionAnalysis::Options summarizedOpts() {
  ivclass::InductionAnalysis::Options Opts;
  Opts.Summarize = true;
  return Opts;
}

} // namespace

TEST(TripCountEdgeTest, BranchCyclicBreakYieldsSoundUpperBound) {
  // z flip-flops +5 / -2 (net +3 per 2-cycle) and the break trips at
  // z > 50; the phase forms sit behind a wrap-around prefix, so the exact
  // first-failing iteration becomes a MaxCount bound.  The machine's own
  // exit iteration (returned in c) must never exceed it.
  Analyzed A = analyze("func f() {"
                       "  t = 0; z = 0; c = 0;"
                       "  for L: i = 1 to 1000000 {"
                       "    if (z > 50) break;"
                       "    if (t == 0) { z = z + 5; t = 1; }"
                       "    else { z = z - 2; t = 0; }"
                       "    c = c + 1;"
                       "  }"
                       "  return c; }",
                       /*RunSCCP=*/true, summarizedOpts());
  const TripCountInfo &TC = A.IA->tripCount(A.loop("L"));
  EXPECT_EQ(TC.K, TripCountInfo::Kind::Unknown);
  ASSERT_TRUE(TC.MaxCount.has_value());
  ASSERT_TRUE(TC.MaxCount->isConstant());
  const int64_t Bound = TC.MaxCount->getConstant()->getInteger();

  interp::ExecOptions EO;
  EO.TraceValues = false;
  EO.TraceArrays = false;
  interp::ExecutionTrace T = interp::run(*A.F, {}, EO);
  ASSERT_TRUE(T.ok()) << T.Error;
  ASSERT_TRUE(T.ReturnValue.has_value());
  // Sound and, for this shape, tight: the warmup prefix completes and the
  // first failing phase evaluation is exact.
  EXPECT_LE(*T.ReturnValue, Bound);
  EXPECT_EQ(Bound, 33);
  EXPECT_EQ(*T.ReturnValue, 33);
}

TEST(TripCountEdgeTest, BranchCyclicBoundFoldsIntoMultiExitMinimum) {
  // Same break, but the for-bound 10 is the tighter exit: the combined
  // count folds the numeric bound of the countable exit against the
  // break's MaxCount and keeps the minimum.
  Analyzed A = analyze("func f() {"
                       "  t = 0; z = 0; c = 0;"
                       "  for L: i = 1 to 10 {"
                       "    if (z > 50) break;"
                       "    if (t == 0) { z = z + 5; t = 1; }"
                       "    else { z = z - 2; t = 0; }"
                       "    c = c + 1;"
                       "  }"
                       "  return c; }",
                       /*RunSCCP=*/true, summarizedOpts());
  const TripCountInfo &TC = A.IA->tripCount(A.loop("L"));
  EXPECT_EQ(TC.K, TripCountInfo::Kind::Unknown);
  ASSERT_TRUE(TC.MaxCount.has_value());
  ASSERT_TRUE(TC.MaxCount->isConstant());
  EXPECT_EQ(TC.MaxCount->getConstant()->getInteger(), 10);

  interp::ExecOptions EO;
  EO.TraceValues = false;
  EO.TraceArrays = false;
  interp::ExecutionTrace T = interp::run(*A.F, {}, EO);
  ASSERT_TRUE(T.ok()) << T.Error;
  ASSERT_TRUE(T.ReturnValue.has_value());
  EXPECT_EQ(*T.ReturnValue, 10);
}

TEST(TripCountEdgeTest, BranchCyclicHugeStepsDegradeWithoutALie) {
  // Per-phase steps near 2^62: the mathematical first-failing iteration
  // would be tiny, but the executed values wrap int64 before ever failing
  // the mathematical test -- the analysis must not claim a finite count or
  // a wrapped bound.  (Exact-rational proof or evaluation overflows and
  // degrades; either way the only sound numeric answer left is the
  // enclosing for-bound.)
  Analyzed A = analyze("func f() {"
                       "  t = 0; z = 0; c = 0;"
                       "  for L: i = 1 to 1000000 {"
                       "    if (z > 9000000000000000000) break;"
                       "    if (t == 0) { z = z + 5000000000000000000; t = 1; }"
                       "    else { z = z - 1; t = 0; }"
                       "    c = c + 1;"
                       "  }"
                       "  return c; }",
                       /*RunSCCP=*/true, summarizedOpts());
  const TripCountInfo &TC = A.IA->tripCount(A.loop("L"));
  EXPECT_NE(TC.K, TripCountInfo::Kind::Finite);
  if (TC.MaxCount && TC.MaxCount->isConstant()) {
    // Any surviving bound must cover the machine's real exit iteration.
    interp::ExecOptions EO;
    EO.TraceValues = false;
    EO.TraceArrays = false;
    interp::ExecutionTrace T = interp::run(*A.F, {}, EO);
    ASSERT_TRUE(T.ok()) << T.Error;
    ASSERT_TRUE(T.ReturnValue.has_value());
    EXPECT_LE(*T.ReturnValue, TC.MaxCount->getConstant()->getInteger());
  }
}
