//===- tests/dependence_test.cpp - Section 6: classical dependence tests ------===//
//
// E10 (loop L21's dependence equation), E12 (the L23/L24 normalization
// argument), plus unit coverage of ZIV/SIV/MIV and a dynamic oracle: a pair
// the analyzer proves independent must never collide at runtime.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dependence/DependenceAnalyzer.h"

using namespace biv;
using namespace biv::testutil;
using namespace biv::dependence;

namespace {

struct DepRun {
  Analyzed A;
  std::vector<Dependence> Deps;
};

DepRun analyzeDeps(const std::string &Src) {
  DepRun R;
  R.A = analyze(Src);
  DependenceAnalyzer DA(*R.A.IA);
  R.Deps = DA.analyze();
  return R;
}

/// The unique dependence of kind \p K, or null.
const Dependence *depOfKind(const DepRun &R, DepKind K) {
  const Dependence *Found = nullptr;
  for (const Dependence &D : R.Deps)
    if (D.Kind == K) {
      EXPECT_EQ(Found, nullptr) << "multiple " << depKindName(K) << " deps";
      Found = &D;
    }
  return Found;
}

/// Dynamic oracle: if two references ever touch the same cell at runtime,
/// the static result must not be Independent.
void checkNoFalseIndependence(const DepRun &R,
                              const interp::ExecutionTrace &T) {
  ASSERT_TRUE(T.ok()) << T.Error;
  for (const Dependence &D : R.Deps) {
    if (D.Result.O != DependenceResult::Outcome::Independent)
      continue;
    // Collect cells per reference.
    std::set<std::vector<int64_t>> SrcCells, DstCells;
    for (const interp::ArrayAccess &A : T.Accesses) {
      // Match accesses back to instructions via the traced values; the
      // trace does not record the instruction, so replay by index pattern:
      // conservative check below uses the full access sets of the array.
      (void)A;
    }
    // Simpler sound check: replay all accesses of this array; if any cell
    // is both written and read/written at different times by *any* refs,
    // we cannot attribute it; so instead check that the two specific
    // subscript sequences never intersect.
    const std::vector<int64_t> &SrcSeq =
        T.sequenceOf(ir::cast<ir::Instruction>(
            D.Src->operand(D.Src->opcode() == ir::Opcode::ArrayStore ? 1
                                                                     : 0)));
    const std::vector<int64_t> &DstSeq =
        T.sequenceOf(ir::cast<ir::Instruction>(
            D.Dst->operand(D.Dst->opcode() == ir::Opcode::ArrayStore ? 1
                                                                     : 0)));
    std::set<int64_t> SrcVals(SrcSeq.begin(), SrcSeq.end());
    for (int64_t V : DstSeq)
      EXPECT_FALSE(SrcVals.count(V))
          << "statically independent pair collided on subscript " << V;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// E10: the dependence equation of loop L21
//===----------------------------------------------------------------------===//

TEST(DependenceTest, LoopL21Equation) {
  // i=0; j=3; loop: i=i+1; A(i) = A(j-1)...; j=j+2.  The paper classifies
  // the write subscript as (L21, 1, 1) and the read as (L21, 2, 2); the
  // equation i'+1 = 2i+2 has solutions, e.g. (i, i') = (0, 1) -> h' = h+...
  DepRun R = analyzeDeps("func l21(n) {"
                         "  i = 0; j = 3;"
                         "  loop L21 {"
                         "    i = i + 1;"
                         "    A[i] = A[j - 1] + 1;"
                         "    j = j + 2;"
                         "    if (i > n) break;"
                         "  }"
                         "  return i;"
                         "}");
  // Write A[i]: i after increment = (L21, 1, 1).
  // Read A[j-1]: j = (L21, 3, 2), j-1 = (L21, 2, 2).
  // Solutions of 1+h' == 2+2h always have h' > h: the read-then-write pair
  // carries an anti dependence (<); no flow dependence exists.
  ASSERT_EQ(R.Deps.size(), 1u);
  EXPECT_EQ(R.Deps[0].Kind, DepKind::Anti);
  EXPECT_NE(R.Deps[0].Result.O, DependenceResult::Outcome::Independent);
  EXPECT_EQ(R.Deps[0].Result.dirsFor(R.A.loop("L21")), DirLT);
}

TEST(DependenceTest, StrongSIVDistance) {
  // A[i] = A[i-1]: classic distance-1 flow dependence.
  DepRun R = analyzeDeps("func f(n) {"
                         "  for L: i = 1 to 100 {"
                         "    A[i] = A[i - 1] + 1;"
                         "  }"
                         "  return 0;"
                         "}");
  const Dependence *Flow = depOfKind(R, DepKind::Flow);
  ASSERT_NE(Flow, nullptr);
  EXPECT_EQ(Flow->Result.O, DependenceResult::Outcome::Dependent);
  ASSERT_EQ(Flow->Result.Directions.size(), 1u);
  EXPECT_EQ(Flow->Result.Directions[0].Dirs, DirLT);
  ASSERT_TRUE(Flow->Result.Directions[0].Distance.has_value());
  EXPECT_EQ(*Flow->Result.Directions[0].Distance, 1);
}

TEST(DependenceTest, StrongSIVIndependentBeyondBounds) {
  // A[i] vs A[i+200] in a 100-iteration loop: distance exceeds the bound.
  DepRun R = analyzeDeps("func f() {"
                         "  for L: i = 1 to 100 {"
                         "    A[i] = A[i + 200] + 1;"
                         "  }"
                         "  return 0;"
                         "}");
  for (const Dependence &D : R.Deps)
    EXPECT_EQ(D.Result.O, DependenceResult::Outcome::Independent);
  interp::ExecutionTrace T = interp::run(*R.A.F, {});
  checkNoFalseIndependence(R, T);
}

TEST(DependenceTest, ZIVDistinctConstants) {
  DepRun R = analyzeDeps("func f(n) {"
                         "  for L: i = 1 to n {"
                         "    A[1] = A[2] + i;"
                         "  }"
                         "  return 0;"
                         "}");
  for (const Dependence &D : R.Deps)
    if (D.Kind != DepKind::Output) { // A[1]'s self output dep is real
      EXPECT_EQ(D.Result.O, DependenceResult::Outcome::Independent)
          << D.Result.Note;
    }
}

TEST(DependenceTest, ZIVEqualConstantsDependent) {
  DepRun R = analyzeDeps("func f(n) {"
                         "  for L: i = 1 to n {"
                         "    A[5] = A[5] + i;"
                         "  }"
                         "  return 0;"
                         "}");
  bool AnyDependent = false;
  for (const Dependence &D : R.Deps)
    AnyDependent |= D.Result.O == DependenceResult::Outcome::Dependent;
  EXPECT_TRUE(AnyDependent);
}

TEST(DependenceTest, GCDTestIndependence) {
  // A[2i] vs A[2i+1]: even vs odd cells never meet.
  DepRun R = analyzeDeps("func f(n) {"
                         "  for L: i = 1 to n {"
                         "    A[2*i] = A[2*i + 1] + 1;"
                         "  }"
                         "  return 0;"
                         "}");
  for (const Dependence &D : R.Deps)
    EXPECT_EQ(D.Result.O, DependenceResult::Outcome::Independent)
        << D.Result.Note;
  interp::ExecutionTrace T = interp::run(*R.A.F, {50});
  checkNoFalseIndependence(R, T);
}

TEST(DependenceTest, WeakZeroSIV) {
  // A[i] vs A[10] in 1..100: dependence pinned at i == 10.
  DepRun R = analyzeDeps("func f() {"
                         "  for L: i = 1 to 100 {"
                         "    A[i] = A[10] + 1;"
                         "  }"
                         "  return 0;"
                         "}");
  const Dependence *Flow = depOfKind(R, DepKind::Flow);
  ASSERT_NE(Flow, nullptr);
  EXPECT_NE(Flow->Result.O, DependenceResult::Outcome::Independent);
}

TEST(DependenceTest, WeakZeroSIVOutOfBounds) {
  // A[i] vs A[200] in 1..100: pinned iteration out of range.
  DepRun R = analyzeDeps("func f() {"
                         "  for L: i = 1 to 100 {"
                         "    A[i] = A[200] + 1;"
                         "  }"
                         "  return 0;"
                         "}");
  for (const Dependence &D : R.Deps)
    EXPECT_EQ(D.Result.O, DependenceResult::Outcome::Independent)
        << D.Result.Note;
}

TEST(DependenceTest, MultiDimensionalExactDistances) {
  // A[i][j] = A[i-1][j]: distance (1, 0) -- the L23 example.
  DepRun R = analyzeDeps("func l23(n) {"
                         "  for L23: i = 1 to 50 {"
                         "    for L24: j = 1 to 50 {"
                         "      A[i, j] = A[i - 1, j] + 1;"
                         "    }"
                         "  }"
                         "  return 0;"
                         "}");
  const Dependence *Flow = depOfKind(R, DepKind::Flow);
  ASSERT_NE(Flow, nullptr);
  ASSERT_EQ(Flow->Result.Directions.size(), 2u);
  const LoopDirection &Outer = Flow->Result.Directions[0];
  const LoopDirection &Inner = Flow->Result.Directions[1];
  EXPECT_EQ(Outer.L->name(), "L23");
  ASSERT_TRUE(Outer.Distance.has_value());
  EXPECT_EQ(*Outer.Distance, 1);
  ASSERT_TRUE(Inner.Distance.has_value());
  EXPECT_EQ(*Inner.Distance, 0);
}

TEST(DependenceTest, NormalizationInvarianceL23L24) {
  // Section 6.1: the paper's anti-normalization example.  The triangular
  // loop `for j = i+1 to 50` and its normalized form `for j = 1 to 50-i`
  // with shifted subscripts compute the same thing; classically they give
  // different distance vectors, but in this framework "the shape of the
  // loop iteration space is not part of the induction variable recognition
  // strategy": both forms must produce the *same* expanded subscripts and
  // the same dependence results.
  const char *Original = "func l23(n) {"
                         "  for L23: i = 1 to 50 {"
                         "    for L24: j = i + 1 to 50 {"
                         "      A[i, j] = A[i - 1, j] + 1;"
                         "    }"
                         "  }"
                         "  return 0;"
                         "}";
  const char *Normalized = "func l23n(n) {"
                           "  for L23: i = 1 to 50 {"
                           "    for L24: j = 1 to 50 - i {"
                           "      A[i, j + i] = A[i - 1, j + i] + 1;"
                           "    }"
                           "  }"
                           "  return 0;"
                           "}";
  auto expandRead = [](DepRun &R) {
    // The read A[.., ..] second subscript, fully expanded.
    const ir::Instruction *Load = nullptr;
    for (const auto &BB : R.A.F->blocks())
      for (const auto &I : *BB)
        if (I->opcode() == ir::Opcode::ArrayLoad)
          Load = I;
    EXPECT_NE(Load, nullptr);
    SubscriptInfo SI = classifySubscript(*R.A.IA, Load->operand(1),
                                         R.A.loop("L24"));
    EXPECT_TRUE(SI.Linear.has_value());
    return *SI.Linear;
  };
  DepRun R1 = analyzeDeps(Original);
  DepRun R2 = analyzeDeps(Normalized);
  LinearSubscript S1 = expandRead(R1);
  LinearSubscript S2 = expandRead(R2);
  // Identical expansions: const 2 + 1*h(L23) + 1*h(L24) in both forms.
  EXPECT_EQ(S1.Const, Affine(2));
  EXPECT_EQ(S2.Const, Affine(2));
  EXPECT_EQ(S1.coeff(R1.A.loop("L23")), Affine(1));
  EXPECT_EQ(S2.coeff(R2.A.loop("L23")), Affine(1));
  EXPECT_EQ(S1.coeff(R1.A.loop("L24")), Affine(1));
  EXPECT_EQ(S2.coeff(R2.A.loop("L24")), Affine(1));
  // And identical dependence verdicts.
  ASSERT_EQ(R1.Deps.size(), R2.Deps.size());
  for (size_t I = 0; I < R1.Deps.size(); ++I) {
    EXPECT_EQ(R1.Deps[I].Kind, R2.Deps[I].Kind);
    EXPECT_EQ(static_cast<int>(R1.Deps[I].Result.O),
              static_cast<int>(R2.Deps[I].Result.O));
  }
  // Neither form may claim independence for the flow pair: the dependence
  // is real (the paper's motivating interchange-blocker).
  const Dependence *Flow = depOfKind(R1, DepKind::Flow);
  ASSERT_NE(Flow, nullptr);
  EXPECT_NE(Flow->Result.O, DependenceResult::Outcome::Independent);
  ASSERT_TRUE(Flow->Result.Directions[0].Distance.has_value());
  EXPECT_EQ(*Flow->Result.Directions[0].Distance, 1);
}

TEST(DependenceTest, SymbolicIdenticalSubscripts) {
  // A[i + n] on both sides: symbolic but identical -> distance 0.
  DepRun R = analyzeDeps("func f(n) {"
                         "  for L: i = 1 to 100 {"
                         "    A[i + n] = A[i + n] + 1;"
                         "  }"
                         "  return 0;"
                         "}");
  // The read executes before the write, so distance 0 is an anti dep.
  const Dependence *Anti = depOfKind(R, DepKind::Anti);
  ASSERT_NE(Anti, nullptr);
  ASSERT_EQ(Anti->Result.Directions.size(), 1u);
  EXPECT_EQ(Anti->Result.Directions[0].Dirs, DirEQ);
}

TEST(DependenceTest, BanerjeeDirectionRefinement) {
  // A[i] = A[n - i]: crossing pattern; no exact distance but directions
  // stay unrefuted (crossing can give <, =, >) -- while A[i] = A[i + n]
  // with unknown n stays (*) too; check Banerjee prunes A[i] vs A[-i-1]
  // (always disjoint for i >= 0: subscripts positive vs negative).
  DepRun R = analyzeDeps("func f() {"
                         "  for L: i = 1 to 100 {"
                         "    A[i] = A[-i - 1] + 1;"
                         "  }"
                         "  return 0;"
                         "}");
  for (const Dependence &D : R.Deps)
    EXPECT_EQ(D.Result.O, DependenceResult::Outcome::Independent)
        << D.Result.Note;
}

TEST(DependenceTest, MIVCoupledSubscripts) {
  // A[i + j] = A[i + j - 1]: MIV; dependence must be assumed.
  DepRun R = analyzeDeps("func f() {"
                         "  for L1: i = 1 to 10 {"
                         "    for L2: j = 1 to 10 {"
                         "      A[i + j] = A[i + j - 1] + 1;"
                         "    }"
                         "  }"
                         "  return 0;"
                         "}");
  const Dependence *Flow = depOfKind(R, DepKind::Flow);
  ASSERT_NE(Flow, nullptr);
  EXPECT_NE(Flow->Result.O, DependenceResult::Outcome::Independent);
}

TEST(DependenceTest, NoWriteNoDependence) {
  DepRun R = analyzeDeps("func f(n) {"
                         "  s = 0;"
                         "  for L: i = 1 to n {"
                         "    s = s + A[i] + A[i + 1];"
                         "  }"
                         "  return s;"
                         "}");
  EXPECT_TRUE(R.Deps.empty()) << "read-only arrays produce no dependences";
}

TEST(DependenceTest, RandomizedIndependenceOracle) {
  // Sweep stride/offset combinations; every Independent verdict is checked
  // against a real execution.
  for (int64_t Stride1 : {1, 2, 3})
    for (int64_t Stride2 : {1, 2, 4})
      for (int64_t Off : {0, 1, 3, 7}) {
        std::string Src = "func f() {"
                          "  for L: i = 0 to 30 {"
                          "    A[" +
                          std::to_string(Stride1) + "*i] = A[" +
                          std::to_string(Stride2) + "*i + " +
                          std::to_string(Off) + "] + 1;"
                                                "  }"
                                                "  return 0;"
                                                "}";
        DepRun R = analyzeDeps(Src);
        interp::ExecutionTrace T = interp::run(*R.A.F, {});
        checkNoFalseIndependence(R, T);
      }
}
