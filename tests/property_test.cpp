//===- tests/property_test.cpp - Randomized end-to-end oracles ----------------===//
//
// Generates random loop programs and checks the analyses against real
// executions:
//   O1  every closed-form classification reproduces the observed sequence;
//   O2  monotonic classifications are monotone on the observed sequence;
//   O3  periodic members follow Ring[(phase+h) mod p];
//   O4  numeric trip counts equal observed header visits minus one;
//   O5  exit-value materialization does not change program behaviour;
//   O6  pairs proven independent never touch a common cell at runtime.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "dependence/DependenceAnalyzer.h"

using namespace biv;
using namespace biv::testutil;

namespace {

/// Deterministic LCG (independent of library RNGs).
class Lcg {
public:
  explicit Lcg(uint64_t Seed) : S(Seed * 2654435761u + 1) {}
  uint64_t next() {
    S = S * 6364136223846793005ull + 1442695040888963407ull;
    return S >> 17;
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() % uint64_t(Hi - Lo + 1));
  }
  bool chance(int Percent) { return range(1, 100) <= Percent; }

private:
  uint64_t S;
};

/// Generates a random, always-terminating loop program.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Src = "func prog(n) {\n";
    for (int V = 0; V < 6; ++V)
      Src += "  v" + std::to_string(V) + " = " +
             std::to_string(R.range(0, 9)) + ";\n";
    Src += "  p0 = 1; p1 = 2; p2 = 3; tmp = 0;\n";
    genLoop(1, 0);
    if (R.chance(50))
      genLoop(1, 1);
    Src += "  return v0;\n}\n";
    return Src;
  }

private:
  void genLoop(unsigned Depth, unsigned Sibling) {
    std::string Pad(2 * Depth, ' ');
    std::string L = "L" + std::to_string(Depth) + std::to_string(Sibling);
    std::string IV = "i" + std::to_string(Depth) + std::to_string(Sibling);
    int64_t Trip = R.range(3, 9);
    Src += Pad + "for " + L + ": " + IV + " = 1 to " +
           std::to_string(Trip) + " {\n";
    unsigned Stmts = R.range(2, 6);
    for (unsigned K = 0; K < Stmts; ++K)
      genStatement(Depth, IV);
    if (Depth < 3 && R.chance(35))
      genLoop(Depth + 1, Sibling);
    Src += Pad + "}\n";
  }

  void genStatement(unsigned Depth, const std::string &IV) {
    std::string Pad(2 * Depth + 2, ' ');
    std::string V = "v" + std::to_string(R.range(0, 5));
    std::string W = "v" + std::to_string(R.range(0, 5));
    switch (R.range(0, 9)) {
    case 0: // linear update
      Src += Pad + V + " = " + V + " + " + std::to_string(R.range(1, 5)) +
             ";\n";
      break;
    case 1: // polynomial update
      Src += Pad + V + " = " + V + " + " + IV + ";\n";
      break;
    case 2: // geometric update (bounded growth: trips <= 9, depth <= 3)
      Src += Pad + V + " = " + V + " * 2 + " +
             std::to_string(R.range(0, 3)) + ";\n";
      break;
    case 3: // flip-flop
      Src += Pad + V + " = " + std::to_string(R.range(1, 6)) + " - " + V +
             ";\n";
      break;
    case 4: // copy (wrap-around chains)
      Src += Pad + V + " = " + W + ";\n";
      break;
    case 5: // rotation
      Src += Pad + "tmp = p0; p0 = p1; p1 = p2; p2 = tmp;\n";
      break;
    case 6: // conditional increment (monotonic)
      Src += Pad + "if (A[" + IV + "] > " + std::to_string(R.range(0, 3)) +
             ") { " + V + " = " + V + " + " +
             std::to_string(R.range(1, 2)) + "; }\n";
      break;
    case 7: // derived store
      Src += Pad + "B[" + std::to_string(R.range(1, 3)) + "*" + IV + " + " +
             std::to_string(R.range(0, 4)) + "] = " + V + ";\n";
      break;
    case 8: // load through an IV
      Src += Pad + V + " = " + V + " + B[" + IV + " + " +
             std::to_string(R.range(0, 2)) + "];\n";
      break;
    case 9: // negated subscript store
      Src += Pad + "C[" + std::to_string(R.range(5, 9)) + " - " + IV +
             "] = " + V + ";\n";
      break;
    }
  }

  Lcg R;
  std::string Src;
};

/// Seeds array A with mixed signs so conditional paths both execute.
std::map<std::string, std::map<std::vector<int64_t>, int64_t>>
seedArrays(Lcg &R) {
  std::map<std::string, std::map<std::vector<int64_t>, int64_t>> M;
  for (int64_t I = -20; I <= 40; ++I)
    M["A"][{I}] = R.range(-5, 8);
  return M;
}

} // namespace

TEST(PropertyTest, RandomProgramsSatisfyAllOracles) {
  unsigned ClosedFormsChecked = 0, MonotonicChecked = 0, PeriodicChecked = 0,
           TripCountsChecked = 0, IndependentChecked = 0;
  for (uint64_t Seed = 1; Seed <= 150; ++Seed) {
    ProgramGen Gen(Seed);
    std::string Src = Gen.generate();
    SCOPED_TRACE("seed " + std::to_string(Seed) + "\n" + Src);

    // Reference execution on the *unanalyzed* program (O5 baseline).
    auto FRef = frontend::parseAndLowerOrDie(Src);
    ssa::buildSSA(*FRef);
    Lcg SeedR(Seed * 77);
    auto Arrays = seedArrays(SeedR);
    interp::ExecOptions ExecOpts;
    ExecOpts.MaxSteps = 4u << 20;
    interp::ExecutionTrace Ref =
        interp::runWithArrays(*FRef, {6}, Arrays, ExecOpts);
    ASSERT_TRUE(Ref.ok()) << Ref.Error;

    // Full pipeline (mutates the function: SCCP + exit values).
    Analyzed A = analyze(Src, /*RunSCCP=*/true);
    ssa::verifySSAOrDie(*A.F);
    interp::ExecutionTrace Post =
        interp::runWithArrays(*A.F, {6}, Arrays, ExecOpts);
    ASSERT_TRUE(Post.ok()) << Post.Error;

    // O5: behaviour unchanged by the analysis' instruction insertion.
    EXPECT_EQ(Ref.ReturnValue, Post.ReturnValue);
    ASSERT_EQ(Ref.Accesses.size(), Post.Accesses.size());
    for (size_t K = 0; K < Ref.Accesses.size(); ++K) {
      EXPECT_EQ(Ref.Accesses[K].A->name(), Post.Accesses[K].A->name());
      EXPECT_EQ(Ref.Accesses[K].Indices, Post.Accesses[K].Indices);
      EXPECT_EQ(Ref.Accesses[K].IsWrite, Post.Accesses[K].IsWrite);
    }

    for (const auto &L : A.LI->loops()) {
      // O4: numeric trip counts vs observed header visits.
      const ivclass::TripCountInfo &TC = A.IA->tripCount(L.get());
      ir::Instruction *AnyHeaderPhi =
          L->header()->phis().empty() ? nullptr : L->header()->phis()[0];
      if (TC.isCountable() && !TC.Guarded && AnyHeaderPhi &&
          L->depth() == 1) {
        std::optional<Rational> C = TC.count().getConstant();
        if (C && C->isInteger()) {
          size_t Visits = Post.sequenceOf(AnyHeaderPhi).size();
          EXPECT_EQ(static_cast<int64_t>(Visits), C->getInteger() + 1)
              << "loop " << L->name();
          ++TripCountsChecked;
        }
      }

      // O1-O3 on top-level loops (their symbols are run constants).
      if (L->depth() != 1)
        continue;
      for (ir::Instruction *Phi : L->header()->phis()) {
        const ivclass::Classification &C = A.IA->classify(Phi, L.get());
        const std::vector<int64_t> &Seq = Post.sequenceOf(Phi);
        if (Seq.size() < 2)
          continue;
        if (C.hasClosedForm() && !C.isInvariant()) {
          bool AllNumeric = true;
          for (size_t H = 0; H < Seq.size() && AllNumeric; ++H) {
            Affine V;
            try {
              V = C.Form.evaluateAt(H);
            } catch (const RationalOverflow &) {
              // The exact value left int64, so the machine run wrapped
              // before iteration H: the claim holds over Z and is
              // unfalsifiable by this execution.
              AllNumeric = false;
              break;
            }
            std::optional<Rational> VC = V.getConstant();
            if (!VC) {
              AllNumeric = false; // symbolic (e.g. argument): skip
              break;
            }
            ASSERT_TRUE(VC->isInteger());
            EXPECT_EQ(VC->getInteger(), Seq[H])
                << "loop " << L->name() << " phi " << Phi->name()
                << " at h=" << H;
          }
          ClosedFormsChecked += AllNumeric;
        } else if (C.isMonotonic()) {
          expectMonotoneTrace(C, Phi, Post);
          ++MonotonicChecked;
        } else if (C.isPeriodic()) {
          bool AllNumeric = true;
          for (size_t H = 0; H < Seq.size(); ++H) {
            const Affine &Init = C.RingInits[(C.Phase + H) % C.Period];
            std::optional<Rational> VC = Init.getConstant();
            if (!VC) {
              AllNumeric = false;
              break;
            }
            EXPECT_EQ(VC->getInteger(), Seq[H]);
          }
          PeriodicChecked += AllNumeric;
        }
      }
    }

    // O6: independence verdicts vs the dynamic access log.
    dependence::DependenceAnalyzer DA(*A.IA);
    std::vector<dependence::Dependence> Deps = DA.analyze();
    for (const dependence::Dependence &D : Deps) {
      if (D.Result.O !=
          dependence::DependenceResult::Outcome::Independent)
        continue;
      // Collect the cells each reference touched, from the per-instruction
      // value histories of its subscript operands.
      auto cellsOf = [&](const ir::Instruction *I) {
        std::set<std::vector<int64_t>> Cells;
        unsigned Rank = I->array()->rank();
        unsigned Base = I->opcode() == ir::Opcode::ArrayStore ? 1 : 0;
        // Length = executions of the reference = length of any
        // instruction-operand sequence; constants fill in directly.
        size_t Len = 0;
        for (unsigned Dim = 0; Dim < Rank; ++Dim)
          if (const auto *OpI = ir::dyn_cast<ir::Instruction>(
                  I->operand(Base + Dim)))
            Len = std::max(Len, Post.sequenceOf(OpI).size());
        if (Len == 0 && Rank > 0) {
          // All-constant subscripts: executed iff the enclosing block ran;
          // approximate by one cell (sound for the disjointness check).
          std::vector<int64_t> Cell;
          for (unsigned Dim = 0; Dim < Rank; ++Dim)
            Cell.push_back(
                ir::cast<ir::Constant>(I->operand(Base + Dim))->value());
          Cells.insert(Cell);
          return Cells;
        }
        for (size_t K = 0; K < Len; ++K) {
          std::vector<int64_t> Cell;
          bool OK = true;
          for (unsigned Dim = 0; Dim < Rank; ++Dim) {
            const ir::Value *Op = I->operand(Base + Dim);
            if (const auto *C = ir::dyn_cast<ir::Constant>(Op)) {
              Cell.push_back(C->value());
            } else if (const auto *OpI =
                           ir::dyn_cast<ir::Instruction>(Op)) {
              const auto &S = Post.sequenceOf(OpI);
              if (K >= S.size()) {
                OK = false;
                break;
              }
              Cell.push_back(S[K]);
            } else {
              OK = false;
              break;
            }
          }
          if (OK)
            Cells.insert(Cell);
        }
        return Cells;
      };
      std::set<std::vector<int64_t>> SrcCells = cellsOf(D.Src);
      for (const std::vector<int64_t> &Cell : cellsOf(D.Dst))
        EXPECT_FALSE(SrcCells.count(Cell))
            << "independent pair collided on a cell";
      ++IndependentChecked;
    }
  }
  // The sweep must actually have exercised the oracles.
  EXPECT_GT(ClosedFormsChecked, 20u);
  EXPECT_GT(MonotonicChecked, 5u);
  EXPECT_GT(PeriodicChecked, 5u);
  EXPECT_GT(TripCountsChecked, 30u);
  EXPECT_GT(IndependentChecked, 10u);
}
