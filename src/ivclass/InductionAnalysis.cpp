//===- ivclass/InductionAnalysis.cpp - The paper's algorithm -------------------===//

#include "ivclass/InductionAnalysis.h"
#include "ivclass/RecurrenceSolver.h"
#include "ivclass/SSAGraph.h"
#include "ivclass/Summarize.h"
#include "ir/AffineOrder.h"
#include "support/Stats.h"
#include <algorithm>
#include <optional>
#include <set>
#include <unordered_set>

using namespace biv;
using namespace biv::ivclass;

//===----------------------------------------------------------------------===//
// ClassTable
//===----------------------------------------------------------------------===//

Classification *ClassTable::find(const ir::Value *V) {
  if (const auto *I = ir::dyn_cast<ir::Instruction>(V)) {
    unsigned Seq = I->seq();
    return Seq < BySeq.size() ? BySeq[Seq] : nullptr;
  }
  auto It = Other.find(V);
  return It != Other.end() ? It->second : nullptr;
}

Classification &ClassTable::getOrCreate(const ir::Value *V, bool &Created) {
  Created = false;
  if (const auto *I = ir::dyn_cast<ir::Instruction>(V)) {
    unsigned Seq = I->seq();
    if (Seq >= BySeq.size())
      BySeq.resize(std::max<size_t>(Seq + 1, BySeq.size() * 2), nullptr);
    Classification *&Slot = BySeq[Seq];
    if (!Slot) {
      Pool.emplace_back();
      Slot = &Pool.back();
      Entries.push_back({V, Slot});
      Created = true;
    }
    return *Slot;
  }
  Classification *&Slot = Other[V];
  if (!Slot) {
    Pool.emplace_back();
    Slot = &Pool.back();
    Entries.push_back({V, Slot});
    Created = true;
  }
  return *Slot;
}

namespace {

/// A symbolic value during SCR evaluation: A * X + B(h), where X is the
/// value of the region's loop-header phi on the current iteration.
/// Through records which SCR nodes this path's value passed through; it
/// feeds the paper's per-member strictness argument (Figure 10: "if the k3
/// assignment occurs more than once, it must assign a larger value each
/// time").
struct LinTerm {
  Rational A;
  ClosedForm B;
  std::set<const ir::Instruction *> Through;

  bool operator==(const LinTerm &O) const { return A == O.A && B == O.B; }
};

/// The set of possible symbolic values of a node (one per control path
/// through the loop body); nullopt = not expressible.
using SymSet = std::vector<LinTerm>;

/// Classifies one loop.  Owned state is per-loop; long-lived results land in
/// the analysis' ClassMap.
class LoopClassifier {
public:
  LoopClassifier(InductionAnalysis &IA, const analysis::Loop *L,
                 ClassTable &Map, const InductionAnalysis::Options &Opts,
                 unsigned &FamilyId, InductionAnalysis::Stats &S)
      : IA(IA), L(L), G(*L, IA.loopInfo()), Map(Map), Opts(Opts),
        NextFamilyId(FamilyId), S(S) {
    // The graph construction numbered the function if needed; the SCR
    // membership mask is keyed by those sequence numbers.
    InSCRMask.assign(L->header()->parent()->instrSeqBound(), 0);
    // Arrays written inside the loop (for the array-load invariance rule).
    for (ir::BasicBlock *BB : L->blocks())
      for (const auto &I : *BB)
        if (I->opcode() == ir::Opcode::ArrayStore)
          StoredArrays.insert(I->array());
  }

  void run() {
    static const stats::Counter NumSCCs("ivclass.sccs_visited");
    static const stats::Counter NumOverflows("ivclass.classify.overflow");
    for (const SCR &Region : G.stronglyConnectedRegions()) {
      ++S.Regions;
      NumSCCs.bump();
      try {
        if (Region.Trivial)
          classifyTrivial(Region.Nodes.front());
        else
          classifyRegion(Region);
      } catch (const RationalOverflow &) {
        // Exact arithmetic left int64 somewhere in this region's algebra.
        // Classifications are per-region, so degrade just this region to
        // unknown (overwriting any partial result) and keep going; later
        // regions see "unknown" operands, the defined fallback.
        NumOverflows.bump();
        for (ir::Instruction *I : Region.Nodes)
          setClass(I, Classification::unknown());
        ++S.UnknownRegions;
      }
    }
  }

private:
  const Classification &classOf(const ir::Value *V) {
    bool Created = false;
    Classification &C = Map.getOrCreate(V, Created);
    if (Created)
      C = IA.classifyExternal(V, L);
    return C;
  }

  void setClass(const ir::Instruction *I, Classification C) {
    bool Created = false;
    Map.getOrCreate(I, Created) = std::move(C);
  }

  bool inSCR(const ir::Instruction *I) const {
    return I->seq() < InSCRMask.size() && InSCRMask[I->seq()];
  }

  //===------------------------------------------------------------------===//
  // Trivial regions
  //===------------------------------------------------------------------===//

  void classifyTrivial(ir::Instruction *I) {
    if (I->isPhi()) {
      if (I->parent() == L->header())
        setClass(I, classifyHeaderPhi(I));
      else
        setClass(I, classifyMergePhi(I));
      return;
    }
    setClass(I, classifyOperation(I));
  }

  /// A loop-header phi alone in its region: a wrap-around variable
  /// (section 4.1), re-classified as an induction variable when the initial
  /// value fits the carried sequence.
  Classification classifyHeaderPhi(ir::Instruction *Phi) {
    ir::Value *Init = nullptr, *Carried = nullptr;
    if (!splitHeaderPhi(Phi, Init, Carried))
      return Classification::unknown();
    const Classification &CC = classOf(Carried);

    if (CC.hasClosedForm()) {
      // phi(h) = carried(h-1); does the initial value fit the sequence?
      std::optional<ClosedForm> Shifted = CC.Form.shifted(-1);
      Classification InitC = IA.classifyExternal(Init, L);
      if (Shifted && InitC.isInvariant() &&
          Shifted->evaluateAt(0) == InitC.Form.initialValue())
        return Classification::fromForm(L, *Shifted);
      ++S.WrapArounds;
      return Classification::wrapAround(L, 1, CC);
    }
    if (CC.isWrapAround()) {
      ++S.WrapArounds;
      return Classification::wrapAround(L, CC.WrapOrder + 1, *CC.Inner);
    }
    if (CC.isPeriodic() || CC.isMonotonic()) {
      ++S.WrapArounds;
      return Classification::wrapAround(L, 1, CC);
    }
    return Classification::unknown();
  }

  /// Merge-point phi outside any recurrence: classifiable only when every
  /// live-in path carries the same closed form.
  Classification classifyMergePhi(ir::Instruction *Phi) {
    std::optional<ClosedForm> Common;
    for (ir::Value *Op : Phi->operands()) {
      const Classification &C = classOf(Op);
      if (!C.hasClosedForm())
        return Classification::unknown();
      if (!Common)
        Common = C.Form;
      else if (*Common != C.Form)
        return Classification::unknown();
    }
    if (!Common)
      return Classification::unknown();
    return Classification::fromForm(L, *Common);
  }

  //===------------------------------------------------------------------===//
  // Operation algebra (section 5.1)
  //===------------------------------------------------------------------===//

  Classification classifyOperation(ir::Instruction *I) {
    switch (I->opcode()) {
    case ir::Opcode::Copy:
      return classOf(I->operand(0));
    case ir::Opcode::Neg:
      return negateClass(classOf(I->operand(0)));
    case ir::Opcode::Add:
      return addClasses(classOf(I->operand(0)), classOf(I->operand(1)));
    case ir::Opcode::Sub:
      return addClasses(classOf(I->operand(0)),
                        negateClass(classOf(I->operand(1))));
    case ir::Opcode::Mul:
      return mulClasses(I, classOf(I->operand(0)), classOf(I->operand(1)));
    case ir::Opcode::Div:
      if (classOf(I->operand(0)).isInvariant() &&
          classOf(I->operand(1)).isInvariant())
        return Classification::invariant(Affine::symbol(I));
      return Classification::unknown();
    case ir::Opcode::Exp:
      return expClasses(I, classOf(I->operand(0)), classOf(I->operand(1)));
    case ir::Opcode::ArrayLoad: {
      // The paper's indexed-load rule: invariant address and no stores to
      // the array inside the loop make the load invariant.
      if (StoredArrays.count(I->array()))
        return Classification::unknown();
      for (ir::Value *Op : I->operands())
        if (!classOf(Op).isInvariant())
          return Classification::unknown();
      return Classification::invariant(Affine::symbol(I));
    }
    case ir::Opcode::CmpEQ:
    case ir::Opcode::CmpNE:
    case ir::Opcode::CmpLT:
    case ir::Opcode::CmpLE:
    case ir::Opcode::CmpGT:
    case ir::Opcode::CmpGE:
      // A comparison of invariants is an invariant 0/1 value (used by
      // nested-loop bounds); anything else is not tracked.
      if (classOf(I->operand(0)).isInvariant() &&
          classOf(I->operand(1)).isInvariant())
        return Classification::invariant(Affine::symbol(I));
      return Classification::unknown();
    default:
      return Classification::unknown();
    }
  }

  Classification negateClass(const Classification &C) {
    switch (C.Kind) {
    case IVKind::Invariant:
    case IVKind::Linear:
    case IVKind::Polynomial:
    case IVKind::Geometric:
    case IVKind::CFinite:
      return Classification::fromForm(L, -C.Form);
    case IVKind::Monotonic: {
      Classification R = Classification::monotonic(
          C.L,
          C.Dir == MonotoneDir::Increasing ? MonotoneDir::Decreasing
                                           : MonotoneDir::Increasing,
          C.Strict);
      R.MonoFamilyId = C.MonoFamilyId;
      return R;
    }
    case IVKind::Periodic: {
      Classification R = C;
      R.PScale = -R.PScale;
      R.POffset = -R.POffset;
      return R;
    }
    case IVKind::WrapAround: {
      Classification Inner = negateClass(*C.Inner);
      if (Inner.isUnknown())
        return Classification::unknown();
      return Classification::wrapAround(C.L, C.WrapOrder, std::move(Inner));
    }
    case IVKind::PhasePeriodic:
      // Summaries are attached to header phis after classification and
      // do not flow through the expression algebra.
    case IVKind::Unknown:
      return Classification::unknown();
    }
    return Classification::unknown();
  }

  Classification addClasses(const Classification &C1,
                            const Classification &C2) {
    // Exact closed forms add exactly.
    if (C1.hasClosedForm() && C2.hasClosedForm())
      return Classification::fromForm(L, C1.Form + C2.Form);
    // Order so special classes come first.
    const Classification &A = C1.hasClosedForm() ? C2 : C1;
    const Classification &B = C1.hasClosedForm() ? C1 : C2;
    if (A.isMonotonic()) {
      if (B.hasClosedForm()) {
        // monotonic + form that moves the same way stays monotonic.
        bool Inc = A.Dir == MonotoneDir::Increasing;
        const ClosedForm &F = Inc ? B.Form : -B.Form;
        if (F.provablyNonDecreasing()) {
          Classification R = Classification::monotonic(
              A.L ? A.L : L, A.Dir, A.Strict || F.provablyIncreasing());
          // An invariant offset keeps the underlying recurrence's identity.
          if (B.isInvariant())
            R.MonoFamilyId = A.MonoFamilyId;
          return R;
        }
        return Classification::unknown();
      }
      if (B.isMonotonic() && A.Dir == B.Dir) {
        Classification R = Classification::monotonic(A.L ? A.L : L, A.Dir,
                                                     A.Strict || B.Strict);
        if (A.MonoFamilyId == B.MonoFamilyId)
          R.MonoFamilyId = A.MonoFamilyId;
        return R;
      }
      return Classification::unknown();
    }
    if (A.isPeriodic() && B.isInvariant()) {
      Classification R = A;
      R.POffset += B.Form.initialValue();
      return R;
    }
    if (A.isWrapAround() && B.isInvariant()) {
      Classification Inner = addClasses(*A.Inner, B);
      if (Inner.isUnknown())
        return Classification::unknown();
      return Classification::wrapAround(A.L, A.WrapOrder, std::move(Inner));
    }
    return Classification::unknown();
  }

  Classification mulClasses(ir::Instruction *I, const Classification &C1,
                            const Classification &C2) {
    if (C1.hasClosedForm() && C2.hasClosedForm()) {
      if (std::optional<ClosedForm> P = C1.Form.mulChecked(C2.Form))
        return Classification::fromForm(L, *P);
      // All operands invariant but symbol products are not affine: the
      // result is still a loop invariant, as an opaque symbol.
      if (C1.isInvariant() && C2.isInvariant())
        return Classification::invariant(Affine::symbol(I));
      // The paper's section 5.1 fallback: a product like (2^i+i)*(3^i-2^i)
      // may still be monotonic.
      if (C1.Form.provablyNonNegative() && C2.Form.provablyNonNegative() &&
          C1.Form.provablyNonDecreasing() && C2.Form.provablyNonDecreasing())
        return Classification::monotonic(L, MonotoneDir::Increasing, false);
      return Classification::unknown();
    }
    // Scale the special classes by a numeric invariant.
    const Classification &A = C1.hasClosedForm() ? C2 : C1;
    const Classification &B = C1.hasClosedForm() ? C1 : C2;
    std::optional<Rational> Scale =
        B.isInvariant() ? B.Form.initialValue().getConstant() : std::nullopt;
    if (!Scale)
      return Classification::unknown();
    if (Scale->isZero())
      return Classification::invariant(Affine(0));
    if (A.isMonotonic()) {
      MonotoneDir D = A.Dir;
      if (Scale->isNegative())
        D = D == MonotoneDir::Increasing ? MonotoneDir::Decreasing
                                         : MonotoneDir::Increasing;
      Classification R = Classification::monotonic(A.L ? A.L : L, D,
                                                   A.Strict);
      R.MonoFamilyId = A.MonoFamilyId;
      return R;
    }
    if (A.isPeriodic()) {
      Classification R = A;
      R.PScale *= *Scale;
      R.POffset *= *Scale;
      return R;
    }
    if (A.isWrapAround()) {
      Classification Inner = mulClasses(I, *A.Inner, B);
      if (Inner.isUnknown())
        return Classification::unknown();
      return Classification::wrapAround(A.L, A.WrapOrder, std::move(Inner));
    }
    return Classification::unknown();
  }

  /// c ^ e: geometric when the base is a numeric invariant and the exponent
  /// a linear IV with numeric coefficients (2^i with i = (L,0,1) becomes the
  /// exponential 1*2^h... for i0=0).
  Classification expClasses(ir::Instruction *I, const Classification &Base,
                            const Classification &Exp) {
    if (Base.isInvariant() && Exp.isInvariant())
      return Classification::invariant(Affine::symbol(I));
    // Closed-form base raised to a small numeric constant exponent: i^2 is
    // repeated multiplication, exactly matching the interpreter.
    if (Base.hasClosedForm() && Exp.isInvariant()) {
      std::optional<Rational> K = Exp.Form.initialValue().getConstant();
      if (!K || !K->isInteger() || K->getInteger() < 0 ||
          K->getInteger() > 4)
        return Classification::unknown();
      try {
        ClosedForm Acc = ClosedForm::constant(Affine(1));
        for (int64_t J = 0; J < K->getInteger(); ++J) {
          std::optional<ClosedForm> P = Acc.mulChecked(Base.Form);
          if (!P)
            return Classification::unknown();
          Acc = std::move(*P);
        }
        return Classification::fromForm(L, Acc);
      } catch (const RationalOverflow &) {
        return Classification::unknown();
      }
    }
    if (!Base.isInvariant() || !Exp.isLinear() || !Exp.Form.isLinear())
      return Classification::unknown();
    std::optional<Rational> C = Base.Form.initialValue().getConstant();
    std::optional<Rational> I0 = Exp.Form.coeff(0).getConstant();
    std::optional<Rational> St = Exp.Form.coeff(1).getConstant();
    if (!C || !I0 || !St)
      return Classification::unknown();
    if (!C->isInteger() || !I0->isInteger() || !St->isInteger())
      return Classification::unknown();
    int64_t CB = C->getInteger(), E0 = I0->getInteger(),
            SI = St->getInteger();
    // Keep the folded constants small enough for exact 64-bit rationals.
    if (CB == 0 || CB > 8 || CB < -8 || E0 < 0 || E0 > 20 || SI < 0 ||
        SI > 20)
      return Classification::unknown();
    // c^(i0 + s*h) = c^i0 * (c^s)^h.
    Rational GeoBase = Rational(CB).pow(SI);
    Rational Coeff = Rational(CB).pow(E0);
    if (!GeoBase.isInteger())
      return Classification::unknown();
    if (GeoBase.isOne())
      return Classification::invariant(Affine(Coeff));
    std::map<int64_t, Affine> Geo;
    Geo[GeoBase.getInteger()] = Affine(Coeff);
    return Classification::fromForm(L, ClosedForm::make({}, std::move(Geo)));
  }

  //===------------------------------------------------------------------===//
  // Nontrivial regions
  //===------------------------------------------------------------------===//

  /// Splits a header phi into (init from outside, carried from inside).
  /// Fails for multi-latch headers.
  bool splitHeaderPhi(ir::Instruction *Phi, ir::Value *&Init,
                      ir::Value *&Carried) {
    Init = Carried = nullptr;
    for (unsigned Idx = 0; Idx < Phi->numOperands(); ++Idx) {
      if (L->contains(Phi->blocks()[Idx])) {
        if (Carried)
          return false;
        Carried = Phi->operand(Idx);
      } else {
        if (Init)
          return false;
        Init = Phi->operand(Idx);
      }
    }
    return Init && Carried;
  }

  void classifyRegion(const SCR &Region) {
    for (const ir::Instruction *N : Region.Nodes)
      InSCRMask[N->seq()] = 1;
    classifyRegionImpl(Region);
    for (const ir::Instruction *N : Region.Nodes)
      InSCRMask[N->seq()] = 0;
  }

  void classifyRegionImpl(const SCR &Region) {
    std::vector<ir::Instruction *> HeaderPhis;
    bool OnlyPhisAndCopies = true;
    for (ir::Instruction *N : Region.Nodes) {
      if (N->isPhi() && N->parent() == L->header())
        HeaderPhis.push_back(N);
      else if (N->opcode() != ir::Opcode::Copy)
        OnlyPhisAndCopies = N->isPhi() ? OnlyPhisAndCopies : false;
    }

    if (HeaderPhis.empty()) {
      markAllUnknown(Region);
      return;
    }

    // Section 4.2: >= 2 header phis, no arithmetic, no other phis -> a
    // family of periodic variables rotating around the ring.
    if (HeaderPhis.size() >= 2 && OnlyPhisAndCopies &&
        onlyHeaderPhis(Region, HeaderPhis))
      if (classifyPeriodic(Region, HeaderPhis))
        return;

    if (HeaderPhis.size() == 1) {
      classifySingleHeader(Region, HeaderPhis.front());
      return;
    }

    // Several mutually recurrent header phis with arithmetic: a coupled
    // constant-coefficient system (the c-finite extension).
    if (classifySystem(Region, HeaderPhis))
      return;
    markAllUnknown(Region);
  }

  bool onlyHeaderPhis(const SCR &Region,
                      const std::vector<ir::Instruction *> &HeaderPhis) {
    size_t NonCopy = 0;
    for (ir::Instruction *N : Region.Nodes)
      if (N->opcode() != ir::Opcode::Copy)
        ++NonCopy;
    return NonCopy == HeaderPhis.size();
  }

  /// Chases Copy instructions to the underlying value.
  ir::Value *chaseCopies(ir::Value *V) {
    while (auto *I = ir::dyn_cast<ir::Instruction>(V)) {
      if (I->opcode() != ir::Opcode::Copy)
        break;
      V = I->operand(0);
    }
    return V;
  }

  bool classifyPeriodic(const SCR &Region,
                        const std::vector<ir::Instruction *> &HeaderPhis) {
    const unsigned P = HeaderPhis.size();
    // Follow the carried chain from a canonical start; it must visit every
    // header phi exactly once and return.
    std::vector<ir::Instruction *> Ring;
    std::map<const ir::Instruction *, unsigned> PhaseOf;
    ir::Instruction *Cur = HeaderPhis.front();
    for (unsigned Step = 0; Step < P; ++Step) {
      if (PhaseOf.count(Cur))
        return false;
      PhaseOf[Cur] = Step;
      Ring.push_back(Cur);
      ir::Value *Init = nullptr, *Carried = nullptr;
      if (!splitHeaderPhi(Cur, Init, Carried))
        return false;
      auto *Next = ir::dyn_cast<ir::Instruction>(chaseCopies(Carried));
      if (!Next || !inSCR(Next) || !Next->isPhi())
        return false;
      Cur = Next;
    }
    if (Cur != HeaderPhis.front())
      return false;

    // Ring of initial values: member at phase d has value Ring[(d+h) mod P].
    std::vector<Affine> Inits;
    for (ir::Instruction *Phi : Ring) {
      ir::Value *Init = nullptr, *Carried = nullptr;
      splitHeaderPhi(Phi, Init, Carried);
      Classification IC = IA.classifyExternal(Init, L);
      Inits.push_back(IC.isInvariant() ? IC.Form.initialValue()
                                       : Affine::symbol(Init));
    }
    unsigned FamilyId = NextFamilyId++;
    ++S.PeriodicFamilies;
    for (unsigned D = 0; D < P; ++D)
      setClass(Ring[D],
               Classification::periodic(L, FamilyId, P, D, Inits));
    // Copies take the class of their source phi.
    for (ir::Instruction *N : Region.Nodes)
      if (N->opcode() == ir::Opcode::Copy) {
        auto *Src = ir::dyn_cast<ir::Instruction>(chaseCopies(N));
        auto It = PhaseOf.find(Src);
        if (It != PhaseOf.end())
          setClass(N, Classification::periodic(L, FamilyId, P, It->second,
                                               Inits));
        else
          setClass(N, Classification::unknown());
      }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Single-header-phi regions: symbolic evaluation + recurrence solving
  //===------------------------------------------------------------------===//

  using EvalMemo =
      std::unordered_map<const ir::Instruction *, std::optional<SymSet>>;

  std::optional<SymSet> evalValue(ir::Value *V, ir::Instruction *H,
                                  EvalMemo &Memo) {
    if (V == H)
      return SymSet{{Rational(1), ClosedForm(), {}}};
    auto *I = ir::dyn_cast<ir::Instruction>(V);
    if (I && inSCR(I))
      return evalInst(I, H, Memo);
    const Classification &C = classOf(V);
    if (C.hasClosedForm())
      return SymSet{{Rational(0), C.Form, {}}};
    return std::nullopt;
  }

  std::optional<SymSet> evalInst(ir::Instruction *I, ir::Instruction *H,
                                 EvalMemo &Memo) {
    auto It = Memo.find(I);
    if (It != Memo.end())
      return It->second;
    // Break accidental cycles defensively (a cycle not through H would be a
    // malformed graph); mark failure first, overwrite on success.
    Memo[I] = std::nullopt;

    auto combine2 = [&](auto &&Fn) -> std::optional<SymSet> {
      std::optional<SymSet> LHS = evalValue(I->operand(0), H, Memo);
      std::optional<SymSet> RHS = evalValue(I->operand(1), H, Memo);
      if (!LHS || !RHS)
        return std::nullopt;
      SymSet Out;
      for (const LinTerm &X : *LHS)
        for (const LinTerm &Y : *RHS) {
          std::optional<LinTerm> T = Fn(X, Y);
          if (!T)
            return std::nullopt;
          T->Through = X.Through;
          T->Through.insert(Y.Through.begin(), Y.Through.end());
          addTerm(Out, std::move(*T));
        }
      if (Out.size() > Opts.MaxSymbolicPaths)
        return std::nullopt;
      return Out;
    };

    std::optional<SymSet> Result;
    switch (I->opcode()) {
    case ir::Opcode::Phi: {
      SymSet Out;
      bool OK = true;
      for (ir::Value *Op : I->operands()) {
        std::optional<SymSet> OpSet = evalValue(Op, H, Memo);
        if (!OpSet) {
          OK = false;
          break;
        }
        for (LinTerm &T : *OpSet)
          addTerm(Out, std::move(T));
      }
      if (OK && Out.size() <= Opts.MaxSymbolicPaths)
        Result = std::move(Out);
      break;
    }
    case ir::Opcode::Copy: {
      Result = evalValue(I->operand(0), H, Memo);
      break;
    }
    case ir::Opcode::Neg: {
      std::optional<SymSet> Sub = evalValue(I->operand(0), H, Memo);
      if (Sub) {
        SymSet Out;
        for (const LinTerm &T : *Sub)
          addTerm(Out, {-T.A, -T.B, T.Through});
        Result = std::move(Out);
      }
      break;
    }
    case ir::Opcode::Add:
      Result = combine2([](const LinTerm &X, const LinTerm &Y)
                            -> std::optional<LinTerm> {
        return LinTerm{X.A + Y.A, X.B + Y.B, {}};
      });
      break;
    case ir::Opcode::Sub:
      Result = combine2([](const LinTerm &X, const LinTerm &Y)
                            -> std::optional<LinTerm> {
        return LinTerm{X.A - Y.A, X.B - Y.B, {}};
      });
      break;
    case ir::Opcode::Mul:
      Result = combine2([](const LinTerm &X, const LinTerm &Y)
                            -> std::optional<LinTerm> {
        // (A1*X + B1) * (A2*X + B2): linear in X only when one side is free
        // of X; the scaling side must be a numeric invariant when the other
        // side still references X.
        auto scaled = [](const LinTerm &Var, const LinTerm &Const)
            -> std::optional<LinTerm> {
          std::optional<Rational> C =
              Const.B.isInvariant()
                  ? Const.B.initialValue().getConstant()
                  : std::nullopt;
          if (!C)
            return std::nullopt;
          return LinTerm{Var.A * *C, Var.B * *C, {}};
        };
        if (X.A.isZero() && Y.A.isZero()) {
          std::optional<ClosedForm> P = X.B.mulChecked(Y.B);
          if (!P)
            return std::nullopt;
          return LinTerm{Rational(0), *P, {}};
        }
        if (Y.A.isZero())
          return scaled(X, Y);
        if (X.A.isZero())
          return scaled(Y, X);
        return std::nullopt;
      });
      break;
    default:
      // Div, Exp, loads, compares inside a recurrence are out of scope.
      break;
    }
    if (Result)
      for (LinTerm &T : *Result)
        T.Through.insert(I);
    Memo[I] = Result;
    return Result;
  }

  static void addTerm(SymSet &Set, LinTerm T) {
    for (LinTerm &E : Set)
      if (E == T) {
        // Same symbolic value via another path: union the node sets (a
        // larger Through only weakens strictness claims -- conservative).
        E.Through.insert(T.Through.begin(), T.Through.end());
        return;
      }
    Set.push_back(std::move(T));
  }

  void classifySingleHeader(const SCR &Region, ir::Instruction *H) {
    ir::Value *InitV = nullptr, *CarriedV = nullptr;
    if (!splitHeaderPhi(H, InitV, CarriedV)) {
      markAllUnknown(Region);
      return;
    }
    Classification InitC = IA.classifyExternal(InitV, L);
    Affine Init = InitC.isInvariant() ? InitC.Form.initialValue()
                                      : Affine::symbol(InitV);

    EvalMemo Memo;
    Memo.reserve(Region.Nodes.size() * 2);
    std::optional<SymSet> Carried = evalValue(CarriedV, H, Memo);
    if (!Carried || Carried->empty()) {
      // The carried update itself is inexpressible (e.g. X' = X*X + m), but
      // members of the region whose value is free of the header phi are
      // still exact: project the solvable sub-recurrence out.
      markAllUnknown(Region);
      sweepPartialMembers(Region, H, Memo, /*Partial=*/true);
      return;
    }

    if (Carried->size() == 1) {
      const LinTerm &T = Carried->front();
      std::optional<ClosedForm> HForm = solveLinearRecurrence(T.A, T.B, Init);
      if (HForm) {
        noteFamily(*HForm);
        setClass(H, Classification::fromForm(L, *HForm));
        // Family members: M = A*X + B over the solved X.
        for (ir::Instruction *N : Region.Nodes) {
          if (N == H)
            continue;
          auto MIt = Memo.find(N);
          if (MIt == Memo.end() || !MIt->second ||
              MIt->second->size() != 1) {
            setClass(N, Classification::unknown());
            continue;
          }
          const LinTerm &M = MIt->second->front();
          setClass(N, Classification::fromForm(L, *HForm * M.A + M.B));
        }
        return;
      }
      if (T.A.isZero()) {
        // X' = B(h) forgets its past each iteration but the initial value
        // does not fit the shifted sequence (the solver handles the case
        // where it does): a first-order wrap-around into B, phi(h) = B(h-1)
        // for h >= 1.
        ++S.WrapArounds;
        setClass(H, Classification::wrapAround(
                        L, 1, Classification::fromForm(L, T.B)));
        for (ir::Instruction *N : Region.Nodes)
          if (N != H)
            setClass(N, Classification::unknown());
        // Members free of the phi are exact for every h (not projections of
        // an unsolved region -- the region head is classified).
        sweepPartialMembers(Region, H, Memo, /*Partial=*/false);
        return;
      }
    }
    // Multiple paths or an unsolvable recurrence: monotonic analysis
    // (section 4.4) over every possible per-iteration effect, then recover
    // exact forms for phi-free members.
    classifyMonotonic(Region, H, Init, *Carried);
    sweepPartialMembers(Region, H, Memo, /*Partial=*/true);
  }

  /// Overwrites region members whose symbolic value has a zero coefficient
  /// on the header phi with their exact closed form.  \p Partial marks forms
  /// projected out of a region whose own update stayed unsolved.
  void sweepPartialMembers(const SCR &Region, const ir::Instruction *H,
                           const EvalMemo &Memo, bool Partial) {
    static const stats::Counter NumPartialMembers("ivclass.partial_members");
    for (ir::Instruction *N : Region.Nodes) {
      if (N == H)
        continue;
      auto It = Memo.find(N);
      if (It == Memo.end() || !It->second || It->second->size() != 1)
        continue;
      const LinTerm &T = It->second->front();
      if (!T.A.isZero())
        continue;
      Classification C = Classification::fromForm(L, T.B);
      C.Partial = Partial;
      setClass(N, C);
      if (Partial)
        NumPartialMembers.bump();
    }
  }

  //===------------------------------------------------------------------===//
  // Coupled systems: several header phis updated linearly in each other
  //===------------------------------------------------------------------===//

  /// A value linear in the region's header-phi vector:
  /// sum_j A[j] * X_j + B.  The single-path counterpart of LinTerm for
  /// systems (control-flow merges inside the region are out of scope; the
  /// monotonic machinery does not apply to vectors anyway).
  struct VecTerm {
    std::vector<Rational> A;
    ClosedForm B;
  };
  using VecMemo =
      std::unordered_map<const ir::Instruction *, std::optional<VecTerm>>;
  using PhiIndexMap = std::map<const ir::Instruction *, unsigned>;

  std::optional<VecTerm> evalVecValue(ir::Value *V, const PhiIndexMap &PhiIdx,
                                      VecMemo &Memo) {
    const unsigned K = unsigned(PhiIdx.size());
    if (auto *I = ir::dyn_cast<ir::Instruction>(V)) {
      auto PIt = PhiIdx.find(I);
      if (PIt != PhiIdx.end()) {
        VecTerm T{std::vector<Rational>(K), ClosedForm()};
        T.A[PIt->second] = Rational(1);
        return T;
      }
      if (inSCR(I))
        return evalVecInst(I, PhiIdx, Memo);
    }
    const Classification &C = classOf(V);
    if (C.hasClosedForm())
      return VecTerm{std::vector<Rational>(K), C.Form};
    return std::nullopt;
  }

  std::optional<VecTerm> evalVecInst(ir::Instruction *I,
                                     const PhiIndexMap &PhiIdx,
                                     VecMemo &Memo) {
    auto It = Memo.find(I);
    if (It != Memo.end())
      return It->second;
    Memo[I] = std::nullopt;

    auto isFree = [](const VecTerm &T) {
      for (const Rational &R : T.A)
        if (!R.isZero())
          return false;
      return true;
    };
    auto combine2 = [&](auto &&Fn) -> std::optional<VecTerm> {
      std::optional<VecTerm> X = evalVecValue(I->operand(0), PhiIdx, Memo);
      std::optional<VecTerm> Y = evalVecValue(I->operand(1), PhiIdx, Memo);
      if (!X || !Y)
        return std::nullopt;
      return Fn(*X, *Y);
    };

    std::optional<VecTerm> Result;
    switch (I->opcode()) {
    case ir::Opcode::Copy:
      Result = evalVecValue(I->operand(0), PhiIdx, Memo);
      break;
    case ir::Opcode::Neg: {
      std::optional<VecTerm> Sub = evalVecValue(I->operand(0), PhiIdx, Memo);
      if (Sub) {
        for (Rational &R : Sub->A)
          R = -R;
        Sub->B = -Sub->B;
        Result = std::move(Sub);
      }
      break;
    }
    case ir::Opcode::Add:
      Result = combine2([](VecTerm &X, VecTerm &Y) -> std::optional<VecTerm> {
        for (size_t J = 0; J < X.A.size(); ++J)
          X.A[J] = X.A[J] + Y.A[J];
        X.B = X.B + Y.B;
        return std::move(X);
      });
      break;
    case ir::Opcode::Sub:
      Result = combine2([](VecTerm &X, VecTerm &Y) -> std::optional<VecTerm> {
        for (size_t J = 0; J < X.A.size(); ++J)
          X.A[J] = X.A[J] - Y.A[J];
        X.B = X.B - Y.B;
        return std::move(X);
      });
      break;
    case ir::Opcode::Mul:
      Result = combine2(
          [&](VecTerm &X, VecTerm &Y) -> std::optional<VecTerm> {
            auto scaled = [](VecTerm &Var,
                             const VecTerm &Const) -> std::optional<VecTerm> {
              std::optional<Rational> C =
                  Const.B.isInvariant()
                      ? Const.B.initialValue().getConstant()
                      : std::nullopt;
              if (!C)
                return std::nullopt;
              for (Rational &R : Var.A)
                R = R * *C;
              Var.B = Var.B * *C;
              return std::move(Var);
            };
            if (isFree(X) && isFree(Y)) {
              std::optional<ClosedForm> P = X.B.mulChecked(Y.B);
              if (!P)
                return std::nullopt;
              return VecTerm{std::vector<Rational>(X.A.size()),
                             std::move(*P)};
            }
            if (isFree(Y))
              return scaled(X, Y);
            if (isFree(X))
              return scaled(Y, X);
            return std::nullopt;
          });
      break;
    default:
      // Phis inside the region (per-path values) and non-linear ops are out
      // of scope for the system evaluator.
      break;
    }
    Memo[I] = Result;
    return Result;
  }

  /// Classifies a region with K >= 2 header phis as the coupled system
  /// X(h+1) = M * X(h) + B(h).  Components whose solution exists become
  /// closed forms; when only some do, they are marked Partial.  Returns
  /// false when the region does not even evaluate to a linear system (the
  /// caller falls back to unknown).
  bool classifySystem(const SCR &Region,
                      const std::vector<ir::Instruction *> &HeaderPhis) {
    static const stats::Counter NumSystemRegions("ivclass.system_regions");
    const unsigned K = unsigned(HeaderPhis.size());
    if (K > 4)
      return false;
    PhiIndexMap PhiIdx;
    for (unsigned I = 0; I < K; ++I)
      PhiIdx[HeaderPhis[I]] = I;

    RatMatrix M(K, K);
    std::vector<ClosedForm> B(K);
    std::vector<Affine> Init(K);
    VecMemo Memo;
    Memo.reserve(Region.Nodes.size() * 2);
    bool Evaluated = true;
    for (unsigned I = 0; I < K && Evaluated; ++I) {
      ir::Value *InitV = nullptr, *CarriedV = nullptr;
      if (!splitHeaderPhi(HeaderPhis[I], InitV, CarriedV)) {
        Evaluated = false;
        break;
      }
      Classification InitC = IA.classifyExternal(InitV, L);
      Init[I] = InitC.isInvariant() ? InitC.Form.initialValue()
                                    : Affine::symbol(InitV);
      std::optional<VecTerm> T = evalVecValue(CarriedV, PhiIdx, Memo);
      if (!T) {
        Evaluated = false;
        break;
      }
      for (unsigned J = 0; J < K; ++J)
        M.at(I, J) = T->A[J];
      B[I] = std::move(T->B);
    }

    unsigned Solved = 0;
    std::vector<std::optional<ClosedForm>> Sol;
    if (Evaluated) {
      NumSystemRegions.bump();
      Sol = solveLinearSystem(M, B, Init);
      for (const std::optional<ClosedForm> &SF : Sol)
        Solved += SF.has_value();
    }
    if (!Solved) {
      // Nothing solved (or the update is not linear): the region stays
      // unknown, but phi-free members evaluated along the way are exact --
      // project them out.
      markAllUnknown(Region);
      sweepPartialMembersVec(Region, PhiIdx, Memo, Sol);
      return true;
    }
    const bool PartialSolve = Solved < K;

    for (unsigned I = 0; I < K; ++I) {
      if (Sol[I]) {
        noteFamily(*Sol[I]);
        Classification C = Classification::fromForm(L, *Sol[I]);
        C.Partial = PartialSolve;
        setClass(HeaderPhis[I], C);
      } else {
        setClass(HeaderPhis[I], Classification::unknown());
      }
    }
    // Members: exact whenever every component they depend on solved.
    for (ir::Instruction *N : Region.Nodes) {
      if (PhiIdx.count(N))
        continue;
      std::optional<ClosedForm> Form = memberForm(N, Memo, Sol);
      if (Form) {
        Classification C = Classification::fromForm(L, *Form);
        C.Partial = PartialSolve;
        setClass(N, C);
      } else {
        setClass(N, Classification::unknown());
      }
    }
    return true;
  }

  /// Closed form of a system-region member from its memoized VecTerm:
  /// sum_j A[j] * Sol[j] + B, defined when every component with a nonzero
  /// coefficient solved.
  std::optional<ClosedForm>
  memberForm(const ir::Instruction *N, const VecMemo &Memo,
             const std::vector<std::optional<ClosedForm>> &Sol) {
    auto It = Memo.find(N);
    if (It == Memo.end() || !It->second)
      return std::nullopt;
    const VecTerm &T = *It->second;
    ClosedForm Form = T.B;
    for (size_t J = 0; J < T.A.size(); ++J) {
      if (T.A[J].isZero())
        continue;
      if (J >= Sol.size() || !Sol[J])
        return std::nullopt;
      Form = Form + *Sol[J] * T.A[J];
    }
    return Form;
  }

  /// The system-evaluator counterpart of sweepPartialMembers: after an
  /// unsolved system region is marked unknown, members free of every header
  /// phi keep their exact form, flagged Partial.
  void sweepPartialMembersVec(
      const SCR &Region, const PhiIndexMap &PhiIdx, const VecMemo &Memo,
      const std::vector<std::optional<ClosedForm>> &Sol) {
    static const stats::Counter NumPartialMembers("ivclass.partial_members");
    for (ir::Instruction *N : Region.Nodes) {
      if (PhiIdx.count(N))
        continue;
      std::optional<ClosedForm> Form = memberForm(N, Memo, Sol);
      if (!Form)
        continue;
      Classification C = Classification::fromForm(L, *Form);
      C.Partial = true;
      setClass(N, C);
      NumPartialMembers.bump();
    }
  }

  /// Is every per-iteration effect whose path runs through \p N a strict
  /// move in direction \p Inc?  The paper's Figure 10 argument: when the
  /// node executes, the loop-header value must strictly advance before it
  /// can execute again.
  static bool strictThrough(const ir::Instruction *N, const SymSet &Carried,
                            const Affine &Init, bool Inc) {
    bool Any = false;
    for (const LinTerm &T : Carried) {
      if (!T.Through.count(N))
        continue;
      Any = true;
      MonoProof P = Inc ? proveIncreasing(T.A, T.B, Init)
                        : proveIncreasing(T.A, -T.B, -Init);
      if (!P.Strict)
        return false;
    }
    return Any;
  }

  void noteFamily(const ClosedForm &Form) {
    if (Form.hasExponential())
      ++S.GeometricFamilies;
    else if (Form.isLinear())
      ++S.LinearFamilies;
    else
      ++S.PolynomialFamilies;
  }

  /// Does X' = A*X + B always move up (or always down)?  Conservative,
  /// numeric-only proofs, section 4.4 (including the paper's multiply rule
  /// "such as 2*i+i as long as the initial value of i is known").
  struct MonoProof {
    bool NonDecreasing = false;
    bool Strict = false;
  };
  static MonoProof proveIncreasing(const Rational &A, const ClosedForm &B,
                                   const Affine &Init) {
    MonoProof P;
    if (A.isOne()) {
      P.NonDecreasing = B.provablyNonNegative();
      if (P.NonDecreasing) {
        std::optional<Rational> B0 = B.evaluateAt(0).getConstant();
        P.Strict = B0 && B0->isPositive();
      }
      return P;
    }
    std::optional<Rational> I0 = Init.getConstant();
    if (A > Rational(1) && I0 && !I0->isNegative() &&
        B.provablyNonNegative()) {
      P.NonDecreasing = true;
      std::optional<Rational> B0 = B.evaluateAt(0).getConstant();
      P.Strict = I0->isPositive() || (B0 && B0->isPositive());
    }
    return P;
  }

  void classifyMonotonic(const SCR &Region, ir::Instruction *H,
                         const Affine &Init, const SymSet &Carried) {
    bool AllIncNonDec = true, AllIncStrict = true;
    bool AllDecNonInc = true, AllDecStrict = true;
    for (const LinTerm &T : Carried) {
      MonoProof Up = proveIncreasing(T.A, T.B, Init);
      MonoProof Down = proveIncreasing(T.A, -T.B, -Init);
      AllIncNonDec &= Up.NonDecreasing;
      AllIncStrict &= Up.Strict;
      AllDecNonInc &= Down.NonDecreasing;
      AllDecStrict &= Down.Strict;
    }
    Classification C;
    if (AllIncNonDec)
      C = Classification::monotonic(L, MonotoneDir::Increasing, AllIncStrict);
    else if (AllDecNonInc)
      C = Classification::monotonic(L, MonotoneDir::Decreasing, AllDecStrict);
    else {
      markAllUnknown(Region);
      return;
    }
    C.MonoFamilyId = NextFamilyId++;
    ++S.MonotonicRegions;
    bool Inc = C.Dir == MonotoneDir::Increasing;
    for (ir::Instruction *N : Region.Nodes) {
      Classification NC = C;
      // Per-member strictness (Figure 10): a node executes only on paths
      // that pass through it; if all of those strictly advance the header
      // value, the node's observed sequence is strict even when the region
      // as a whole is not.
      if (!NC.Strict && N != H && strictThrough(N, Carried, Init, Inc))
        NC.Strict = true;
      setClass(N, NC);
    }
  }

  void markAllUnknown(const SCR &Region) {
    ++S.UnknownRegions;
    for (ir::Instruction *N : Region.Nodes)
      setClass(N, Classification::unknown());
  }

  InductionAnalysis &IA;
  const analysis::Loop *L;
  SSAGraph G;
  ClassTable &Map;
  const InductionAnalysis::Options &Opts;
  unsigned &NextFamilyId;
  InductionAnalysis::Stats &S;
  std::unordered_set<const ir::Array *> StoredArrays;
  /// Instruction::seq() -> membership in the SCR currently being classified.
  std::vector<char> InSCRMask;
};

} // namespace

//===----------------------------------------------------------------------===//
// InductionAnalysis
//===----------------------------------------------------------------------===//

InductionAnalysis::InductionAnalysis(ir::Function &F,
                                     const analysis::DominatorTree &DT,
                                     const analysis::LoopInfo &LI,
                                     Options Opts)
    : F(F), DT(DT), LI(LI), Opts(Opts) {
  // Dense numbering backs every per-loop table and the SSA graphs; doing it
  // here (cheap, idempotent) also repairs numbering after mutating passes.
  F.renumberInstructions();
  ClassMap.resize(LI.loops().size());
  TripCounts.resize(LI.loops().size());
}

ClassTable &InductionAnalysis::tableFor(const analysis::Loop *L) {
  if (!L)
    return NullLoopClasses;
  assert(L->index() < ClassMap.size() && "loop not from this LoopInfo");
  return ClassMap[L->index()];
}

InductionAnalysis::InductionAnalysis(ir::Function &F,
                                     const analysis::DominatorTree &DT,
                                     const analysis::LoopInfo &LI)
    : InductionAnalysis(F, DT, LI, Options()) {}

void InductionAnalysis::run() {
  static const stats::Timer ClassifyPhase("phase.classify");
  stats::ScopedSpan Span(ClassifyPhase);
  for (const analysis::Loop *L : LI.innerToOuter())
    processLoop(L);
}

void InductionAnalysis::processLoop(const analysis::Loop *L) {
  LoopClassifier(*this, L, tableFor(L), Opts, NextFamilyId, S).run();

  // Second chance for punted multi-branch loops: runs after the classifier
  // (it consumes sibling classifications) and before the trip count (which
  // consumes the upgraded forms).
  if (Opts.Summarize)
    summarizeLoop(*this, L, tableFor(L));

  TripCountInfo TC = computeTripCount(
      *L, [&](const ir::Value *V) -> Classification {
        return classify(V, L);
      });
  TripCounts[L->index()] = TC;
  if (Opts.MaterializeExitValues)
    materializeExitValues(L, TC);
}

const Classification &InductionAnalysis::classify(const ir::Value *V,
                                                  const analysis::Loop *L) {
  bool Created = false;
  Classification &C = tableFor(L).getOrCreate(V, Created);
  if (Created)
    C = classifyExternal(V, L);
  return C;
}

const TripCountInfo &
InductionAnalysis::tripCount(const analysis::Loop *L) const {
  assert(L->index() < TripCounts.size() && TripCounts[L->index()] &&
         "trip count queried before run()");
  return *TripCounts[L->index()];
}

Classification
InductionAnalysis::classifyExternal(const ir::Value *V,
                                    const analysis::Loop *L) const {
  if (const auto *C = ir::dyn_cast<ir::Constant>(V))
    return Classification::invariant(Affine(C->value()));
  if (ir::isa<ir::Argument>(V))
    return Classification::invariant(Affine::symbol(V));
  if (ir::isa<ir::UndefValue>(V))
    return Classification::unknown();
  const auto *I = ir::cast<ir::Instruction>(V);
  if (!L || !L->contains(I->parent()))
    return Classification::invariant(Affine::symbol(V));
  // Defined inside the loop (in a nested loop whose exit value was not
  // materialized): the paper's "treated as unknown".
  return Classification::unknown();
}

SymbolNamer InductionAnalysis::namer() const {
  return [](SymbolRef S) -> std::string {
    const auto *V = static_cast<const ir::Value *>(S);
    return V->name().empty() ? std::string("<tmp>")
                             : std::string(V->name());
  };
}

std::string InductionAnalysis::strNested(const Classification &C,
                                         unsigned Depth) {
  SymbolNamer N = [this, Depth](SymbolRef S) -> std::string {
    const auto *V = static_cast<const ir::Value *>(S);
    if (Depth > 0)
      if (const auto *I = ir::dyn_cast<ir::Instruction>(V))
        if (const analysis::Loop *VL = LI.loopFor(I->parent())) {
          const Classification &IC = classify(I, VL);
          if (IC.hasClosedForm() && !IC.isInvariant())
            return strNested(IC, Depth - 1);
        }
    return V->name().empty() ? std::string("<tmp>")
                             : std::string(V->name());
  };
  return C.str(N);
}

//===----------------------------------------------------------------------===//
// Exit values (section 5.3)
//===----------------------------------------------------------------------===//

ir::Value *InductionAnalysis::materializeAffine(const Affine &V,
                                                ir::BasicBlock *BB,
                                                const std::string &Name) {
  if (!V.constantPart().isInteger())
    return nullptr;
  for (const auto &[Sym, Coeff] : V.terms())
    if (!Coeff.isInteger())
      return nullptr;

  // Insert at the top of the block (after its phis) so existing uses of the
  // replaced value later in the same block stay dominated.
  size_t InsertPos = BB->phis().size();
  // newInstr hands out a fresh seq, so the enclosing loops' dense numbering
  // stays valid for the materialized instructions.
  auto emit = [&](ir::Instruction *I) { return BB->insertAt(InsertPos++, I); };
  ir::Value *Acc = nullptr;
  // Emission order must be stable across runs and worker threads (terms()
  // iterates in pointer order); see ir/AffineOrder.h.
  for (const auto &[Sym, Coeff] : ir::orderedTerms(V)) {
    auto *SymV = const_cast<ir::Value *>(Sym);
    ir::Value *Term = SymV;
    if (!Coeff.isOne())
      Term = emit(
          F.newInstr(ir::Opcode::Mul, {F.constant(Coeff.getInteger()), SymV}));
    Acc = Acc ? emit(F.newInstr(ir::Opcode::Add, {Acc, Term})) : Term;
  }
  int64_t C0 = V.constantPart().getInteger();
  if (!Acc)
    return F.constant(C0);
  if (C0 != 0)
    Acc = emit(F.newInstr(ir::Opcode::Add, {Acc, F.constant(C0)}));
  if (auto *AI = ir::dyn_cast<ir::Instruction>(Acc))
    if (AI->name().empty())
      AI->setName(F.uniqueName(Name));
  return Acc;
}

void InductionAnalysis::materializeExitValues(const analysis::Loop *L,
                                              const TripCountInfo &TC) {
  if (!TC.isCountable() || !TC.ExitBranch || L->latches().size() != 1)
    return;
  ir::BasicBlock *ExitBB = nullptr;
  for (ir::BasicBlock *Succ : TC.ExitBranch->blocks())
    if (!L->contains(Succ))
      ExitBB = Succ;
  if (!ExitBB)
    return;
  ir::BasicBlock *Latch = L->latches().front();
  const ir::BasicBlock *Exiting = TC.ExitingBlock;
  const Affine TCA = TC.count();
  std::optional<int64_t> TCNum;
  if (std::optional<Rational> C = TCA.getConstant())
    if (C->isInteger())
      TCNum = C->getInteger();

  // Candidates: this loop's classified instructions with closed forms
  // (including loop-internal invariants, which the enclosing loop cannot
  // see through otherwise), plus wrap-arounds whose inner class has a
  // closed form -- those follow inner(h - order) once h >= order, so a
  // numeric trip count past the settle point yields an exact exit value.
  // Periodic ring members and summarized phase-periodic tuples also have
  // exact exit values when the trip count is numeric: the last execution's
  // ring slot (or branch phase) is pinned by h mod period.
  // Copy the list first; materialization mutates the block contents.
  struct Candidate {
    const ir::Instruction *I;
    const Classification *C; // resolved past wrap-around chains
    unsigned MinH;           // wrap-around settle point; C is in h - MinH
  };
  std::vector<Candidate> Candidates;
  for (const auto &[V, C] : tableFor(L).entries()) {
    const auto *I = ir::dyn_cast<ir::Instruction>(V);
    if (!I || !L->contains(I->parent()))
      continue;
    unsigned Order = 0;
    const Classification *W = C;
    while (W->isWrapAround() && W->Inner) {
      Order += W->WrapOrder;
      W = W->Inner.get();
    }
    if (W->hasClosedForm() ||
        (W->isPeriodic() && W->Period >= 2 &&
         W->RingInits.size() == W->Period) ||
        (W->isPhasePeriodic() && W->Period >= 2 &&
         W->PhaseForms.size() == W->Period))
      Candidates.push_back({I, W, Order});
  }

  for (const auto &[V, Cls, MinH] : Candidates) {
    // Where does the final execution land relative to the exit test?
    // Values above the test run once more than values below (section 5.2).
    int64_t Extra;
    if (V->parent() == Exiting ||
        DT.properlyDominates(V->parent(), Exiting))
      Extra = 0; // executes on the exiting visit: h = tc
    else if (DT.dominates(V->parent(), Latch))
      Extra = -1; // last full iteration: h = tc - 1
    else
      continue; // conditionally executed; no single exit value

    // Exit value as an affine expression over values live at the exit.
    // Evaluation over exact rationals can overflow int64 (e.g. a geometric
    // 2^h form past h = 62); the machine value wrapped there, so a
    // materialized exact constant would *change* behavior -- skip the
    // candidate instead.
    std::optional<Affine> EV;
    try {
      if (TCNum) {
        int64_t H = *TCNum + Extra;
        if (H < 0)
          continue; // the value never executed
        if (H < int64_t(MinH))
          continue; // still inside the wrap-around prefix
        const int64_t HS = H - int64_t(MinH);
        if (Cls->hasClosedForm())
          EV = Cls->Form.evaluateAt(HS);
        else if (Cls->isPeriodic())
          EV = Cls->RingInits[(Cls->Phase + uint64_t(HS)) % Cls->Period] *
                   Cls->PScale +
               Cls->POffset;
        else
          EV = Cls->PhaseForms[uint64_t(HS) % Cls->Period].evaluateAt(
              HS / int64_t(Cls->Period));
      } else if (MinH == 0 && Cls->hasClosedForm()) {
        Affine At = Extra == 0 ? TCA : TCA + Affine(-1);
        EV = Cls->Form.evaluateAtAffine(At);
      } else {
        // A symbolic count cannot prove h >= the settle point, and a ring
        // or phase slot needs h mod period, so it needs a numeric count.
        continue;
      }
    } catch (const RationalOverflow &) {
      static const stats::Counter NumOverflows(
          "ivclass.materialize.overflow");
      NumOverflows.bump();
      continue;
    }
    if (!EV)
      continue;

    // Find uses outside the loop; phi uses count by their incoming edge.
    struct Use {
      ir::Instruction *User;
      unsigned Index;
    };
    std::vector<Use> Uses;
    for (const auto &BB : F.blocks())
      for (ir::Instruction *U : *BB)
        for (unsigned Idx = 0; Idx < U->numOperands(); ++Idx) {
          if (U->operand(Idx) != V)
            continue;
          const ir::BasicBlock *Where =
              U->isPhi() ? U->blocks()[Idx] : U->parent();
          if (L->contains(Where))
            continue;
          if (Where != ExitBB && !DT.properlyDominates(ExitBB, Where))
            continue;
          Uses.push_back({U, Idx});
        }
    if (Uses.empty())
      continue;

    ir::Value *Mat =
        materializeAffine(*EV, ExitBB, std::string(V->name()) + ".exit");
    if (!Mat)
      continue;
    for (const Use &U : Uses)
      U.User->setOperand(U.Index, Mat);
    ++S.ExitValuesMaterialized;
    static const stats::Counter NumExitValues("ivclass.exit_values_materialized");
    NumExitValues.bump();
  }
}
