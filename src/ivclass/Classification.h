//===- ivclass/Classification.h - The paper's variable classes --*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified classification scheme of the paper: every integer scalar in a
/// loop is an invariant, a (linear/polynomial/geometric) induction variable,
/// a wrap-around variable of some order, a member of a periodic family, a
/// monotonic variable, or unknown.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IVCLASS_CLASSIFICATION_H
#define BEYONDIV_IVCLASS_CLASSIFICATION_H

#include "ivclass/ClosedForm.h"
#include <memory>
#include <string>
#include <vector>

namespace biv {

namespace analysis {
class Loop;
}

namespace ivclass {

/// The classes of section 2-4, plus Invariant and Unknown, plus the
/// c-finite extension beyond the paper's lattice.
enum class IVKind {
  Unknown,
  Invariant,
  Linear,     ///< (L, i, s): value i + s*h.
  Polynomial, ///< (L, i, s1..sm): value sum sk*h^k, m >= 2.
  Geometric,  ///< polynomial plus exponential terms (constant coefficients).
  CFinite,    ///< exponential terms with polynomial coefficients (h*2^h).
  WrapAround, ///< settles into another class after `order` iterations.
  Periodic,   ///< member of a rotation family with period >= 2.
  Monotonic,  ///< only the direction (and strictness) is known.
  /// Multi-branch loop summarization (beyond the paper, LoopSCC-style):
  /// the loop's taken-branch sequence cycles with period k, and the value
  /// follows a separate exact closed form on each phase of the cycle.
  PhasePeriodic,
};

/// Returns "linear", "wrap-around", ... for diagnostics.
const char *ivKindName(IVKind K);

/// Direction of a monotonic variable.
enum class MonotoneDir { Increasing, Decreasing };

/// Classification of one SSA value relative to one loop.
///
/// Closed-form kinds (Invariant/Linear/Polynomial/Geometric) carry Form; the
/// Affine symbols inside Form are values defined outside the loop, which may
/// themselves be classified in an enclosing loop -- that is the paper's
/// nested tuple, e.g. k3 = (L18, (L17, 0, 204), 2).
class Classification {
public:
  IVKind Kind = IVKind::Unknown;
  /// Loop the classification is relative to; null for Invariant/Unknown.
  const analysis::Loop *L = nullptr;

  /// True when this closed form was projected out of a strongly connected
  /// region whose full update is unsolvable (the (un)solvable-loop trick):
  /// the value itself is exact, but sibling values of its region are not.
  bool Partial = false;

  /// Closed form for Invariant/Linear/Polynomial/Geometric.
  ClosedForm Form;

  // --- WrapAround ---
  /// After Order iterations the value follows Inner's class (Figure 4).
  unsigned WrapOrder = 0;
  std::shared_ptr<Classification> Inner;

  // --- Periodic / PhasePeriodic ---
  unsigned Period = 0;
  /// Identifies the family (all members share it).
  unsigned FamilyId = 0;
  /// Position in the rotation: the member whose value at iteration h equals
  /// initial value (PhaseIndex + h) mod Period of the family's initial-value
  /// ring.
  unsigned Phase = 0;
  /// Initial values of the family in ring order (affine; distinctness is
  /// checked by the dependence tests).
  std::vector<Affine> RingInits;

  /// Affine image of a periodic member: the classified value equals
  /// PScale * member + POffset (so `2*j` keeps j's family identity and the
  /// dependence tests can still reason about it).
  Rational PScale = Rational(1);
  Affine POffset;

  // --- PhasePeriodic ---
  /// One closed form per phase of the branch cycle: the value on iteration
  /// h = Period*c + p is PhaseForms[p] evaluated at the cycle index c.
  /// PhaseForms[0] doubles as the composed whole-cycle form (the value at
  /// cycle boundaries).
  std::vector<ClosedForm> PhaseForms;

  // --- Monotonic ---
  MonotoneDir Dir = MonotoneDir::Increasing;
  bool Strict = false;
  /// All values of one monotonic SCR share a family id (like periodic
  /// families); the dependence tests use it to apply the paper's
  /// "=" -> "<=" translation only within one recurrence.
  unsigned MonoFamilyId = 0;

  //===--------------------------------------------------------------------===//
  // Factories
  //===--------------------------------------------------------------------===//

  static Classification unknown() { return Classification(); }

  static Classification invariant(Affine V) {
    Classification C;
    C.Kind = IVKind::Invariant;
    C.Form = ClosedForm::constant(std::move(V));
    return C;
  }

  /// Builds Linear/Polynomial/Geometric/Invariant from \p Form 's shape.
  static Classification fromForm(const analysis::Loop *L, ClosedForm Form);

  static Classification wrapAround(const analysis::Loop *L, unsigned Order,
                                   Classification InnerClass);

  static Classification periodic(const analysis::Loop *L, unsigned FamilyId,
                                 unsigned Period, unsigned Phase,
                                 std::vector<Affine> RingInits);

  static Classification monotonic(const analysis::Loop *L, MonotoneDir Dir,
                                  bool Strict);

  static Classification phasePeriodic(const analysis::Loop *L,
                                      unsigned Period,
                                      std::vector<ClosedForm> PhaseForms);

  //===--------------------------------------------------------------------===//
  // Predicates
  //===--------------------------------------------------------------------===//

  bool isUnknown() const { return Kind == IVKind::Unknown; }
  bool isInvariant() const { return Kind == IVKind::Invariant; }
  bool isLinear() const { return Kind == IVKind::Linear; }
  /// Any class with an exact closed form.
  bool hasClosedForm() const {
    return Kind == IVKind::Invariant || Kind == IVKind::Linear ||
           Kind == IVKind::Polynomial || Kind == IVKind::Geometric ||
           Kind == IVKind::CFinite;
  }
  /// Linear including degenerate (invariant) forms.
  bool isAffineForm() const { return hasClosedForm() && Form.isLinear(); }
  bool isMonotonic() const { return Kind == IVKind::Monotonic; }
  bool isPeriodic() const { return Kind == IVKind::Periodic; }
  bool isWrapAround() const { return Kind == IVKind::WrapAround; }
  bool isPhasePeriodic() const { return Kind == IVKind::PhasePeriodic; }

  /// For a PhasePeriodic value: true when the full iteration-order sequence
  /// value(0), value(1), ... is provably strictly monotone in \p Dir
  /// (conservative, numeric coefficients only).  This is what lets the
  /// dependence tests reuse the strict-monotonic "=" rule on summarized
  /// values.  Never throws: coefficient overflow answers false.
  bool phaseSequenceStrictly(MonotoneDir Dir) const;

  /// A flip-flop is a period-2 periodic variable; geometric base -1 forms
  /// (the paper's `j = c - j`) also satisfy this.
  bool isFlipFlop() const;

  /// Renders the paper's tuple syntax, e.g. "(L18, k2+2, 2)" for linear,
  /// "(L14, 2, 3/2, 1/2)" for polynomial, "wrap-around(order 1, linear ...)"
  /// etc.  \p Namer resolves affine symbols (usually to IR value names).
  std::string str(const SymbolNamer &Namer = SymbolNamer()) const;
};

} // namespace ivclass
} // namespace biv

#endif // BEYONDIV_IVCLASS_CLASSIFICATION_H
