//===- ivclass/TripCount.cpp - Loop trip counts --------------------------------===//

#include "ivclass/TripCount.h"
#include "support/Stats.h"

using namespace biv;
using namespace biv::ivclass;

std::string TripCountInfo::str(const SymbolNamer &Namer) const {
  switch (K) {
  case Kind::Unknown:
    if (MaxCount)
      return "unknown (max " + MaxCount->str(Namer) + ")";
    return "unknown";
  case Kind::Zero:
    return "0";
  case Kind::Finite:
    return Count.str(Namer) + (Guarded ? " (if positive, else 0)" : "");
  case Kind::Infinite:
    return "infinite";
  }
  return "<bad>";
}

namespace {

/// Trip count of a single exit: the first h >= 0 at which the exit fires.
/// May throw RationalOverflow when the margin arithmetic leaves int64 (e.g.
/// bounds near INT64_MIN/MAX); the analyzeExit wrapper below degrades that
/// to Unknown.
TripCountInfo analyzeExitImpl(const analysis::Loop &L,
                              ir::BasicBlock *Exiting,
                              const ClassifyFn &Classify) {
  TripCountInfo Info;
  ir::Instruction *Term = Exiting->terminator();
  if (!Term || Term->opcode() != ir::Opcode::CondBr)
    return Info;
  auto *Cmp = ir::dyn_cast<ir::Instruction>(Term->operand(0));
  if (!Cmp || !Cmp->isCompare())
    return Info;

  // Which way stays in the loop?
  bool TrueStays = L.contains(Term->blocks()[0]);
  bool FalseStays = L.contains(Term->blocks()[1]);
  if (TrueStays == FalseStays)
    return Info; // Not really an exit (or a degenerate branch).

  Classification LC = Classify(Cmp->operand(0));
  Classification RC = Classify(Cmp->operand(1));
  // Resolve wrap-around chains over phase-periodic cores (the shape the
  // summarizer commits for reset variables and rotations): past the
  // accumulated order W the value follows the inner per-phase forms at
  // h - W.  The first W iterations carry no claim, so a count through a
  // W > 0 resolution degrades from exact to an upper bound below.
  unsigned LOrd = 0, ROrd = 0;
  const Classification *LR = &LC, *RR = &RC;
  while (LR->isWrapAround() && LR->Inner && LR->Inner->isPhasePeriodic()) {
    LOrd += LR->WrapOrder;
    LR = LR->Inner.get();
  }
  while (RR->isWrapAround() && RR->Inner && RR->Inner->isPhasePeriodic()) {
    ROrd += RR->WrapOrder;
    RR = RR->Inner.get();
  }
  const bool LPhase = LR->isPhasePeriodic();
  const bool RPhase = RR->isPhasePeriodic();
  if ((!LC.isAffineForm() && !LPhase) || (!RC.isAffineForm() && !RPhase))
    return Info;
  ClosedForm A = LPhase ? ClosedForm() : LC.Form;
  ClosedForm B = RPhase ? ClosedForm() : RC.Form;

  // Normalize the *stay* condition to a < b (integer arithmetic: a <= b is
  // a < b+1).  The table in section 5.2, folded with the stay/exit sense.
  ir::Opcode Op = Cmp->opcode();
  if (!TrueStays) {
    switch (Op) { // Negate: stay condition is the false branch.
    case ir::Opcode::CmpEQ:
      Op = ir::Opcode::CmpNE;
      break;
    case ir::Opcode::CmpNE:
      Op = ir::Opcode::CmpEQ;
      break;
    case ir::Opcode::CmpLT:
      Op = ir::Opcode::CmpGE;
      break;
    case ir::Opcode::CmpLE:
      Op = ir::Opcode::CmpGT;
      break;
    case ir::Opcode::CmpGT:
      Op = ir::Opcode::CmpLE;
      break;
    case ir::Opcode::CmpGE:
      Op = ir::Opcode::CmpLT;
      break;
    default:
      return Info;
    }
  }

  Info.ExitBranch = Term;
  Info.ExitingBlock = Exiting;

  // A phase-periodic operand (the summarizer's per-phase closed forms):
  // rewrite both sides as forms in the cycle index c at h = W + K*c + p and
  // take the minimum first-failing h over the phases.  Ordering compares
  // only, fully numeric margins only.  W == 0 claims the exact count; a
  // wrapped core (W > 0) claims an upper bound -- the warmup iterations
  // are outside the proved domain, so the exit may fire earlier but never
  // later than the bound.
  if (LPhase || RPhase) {
    if (Op == ir::Opcode::CmpEQ || Op == ir::Opcode::CmpNE)
      return Info;
    const unsigned K = LPhase ? LR->Period : RR->Period;
    const unsigned W = LPhase ? LOrd : ROrd;
    if (K < 2 || (LPhase && RPhase && (LR->Period != RR->Period || LOrd != ROrd)) ||
        (LPhase && LR->L != &L) || (RPhase && RR->L != &L))
      return Info;
    ClosedForm One = ClosedForm::constant(Affine(1));
    std::optional<int64_t> Best; // first failing h - W across phases
    struct PhaseMargin {
      ClosedForm A, B; // per-phase operand forms (functions of c)
    };
    std::vector<PhaseMargin> Ops(K);
    for (unsigned P = 0; P < K; ++P) {
      std::optional<ClosedForm> AP =
          LPhase ? std::optional<ClosedForm>(LR->PhaseForms[P])
                 : LC.Form.atLinear(int64_t(K), int64_t(W + P));
      std::optional<ClosedForm> BP =
          RPhase ? std::optional<ClosedForm>(RR->PhaseForms[P])
                 : RC.Form.atLinear(int64_t(K), int64_t(W + P));
      if (!AP || !BP)
        return Info;
      Ops[P] = {*AP, *BP};
      ClosedForm E;
      switch (Op) {
      case ir::Opcode::CmpLT:
        E = *BP - *AP;
        break;
      case ir::Opcode::CmpLE:
        // Subtract before the +1, same as the affine path below.
        E = *BP - *AP + One;
        break;
      case ir::Opcode::CmpGT:
        E = *AP - *BP;
        break;
      case ir::Opcode::CmpGE:
        E = *AP - *BP + One;
        break;
      default:
        return Info;
      }
      if (!E.isLinear())
        return Info;
      std::optional<Rational> IC = E.coeff(0).getConstant();
      std::optional<Rational> S = E.coeff(1).getConstant();
      if (!IC || !S)
        return Info;
      // Stay at h = W + K*c + p iff E(c) > 0; c_p = first failing cycle.
      std::optional<int64_t> CP;
      if (!IC->isPositive())
        CP = 0;
      else if (S->isNegative())
        CP = (*IC / -*S).ceil();
      if (CP) {
        int64_t H = int64_t(K) * *CP + int64_t(P);
        if (!Best || H < *Best)
          Best = H;
      }
    }
    if (!Best)
      return Info; // no phase's margin ever fails: possibly infinite
    // Wrap guard: the count reasons over Z but execution wraps int64.
    // Bound every operand's trajectory by evaluating each phase form at
    // the extreme cycle indices reached (|base| >= 1 for every geometric
    // term, so magnitudes peak at the endpoints); overflow throws and the
    // wrapper degrades to Unknown.
    const int64_t CEnd = *Best / int64_t(K) + 1;
    for (unsigned P = 0; P < K; ++P) {
      (void)Ops[P].A.evaluateAt(0);
      (void)Ops[P].B.evaluateAt(0);
      (void)Ops[P].A.evaluateAt(CEnd);
      (void)Ops[P].B.evaluateAt(CEnd);
    }
    if (W > 0) {
      // The wrapped warmup is unverified: the loop exits no later than
      // W + Best, possibly earlier.
      Info.K = TripCountInfo::Kind::Unknown;
      Info.MaxCount = Affine(int64_t(W) + *Best);
    } else if (*Best == 0) {
      Info.K = TripCountInfo::Kind::Zero;
    } else {
      Info.K = TripCountInfo::Kind::Finite;
      Info.Count = Affine(*Best);
    }
    return Info;
  }

  // Equality-controlled loops: stay while a == b or a != b.
  if (Op == ir::Opcode::CmpEQ || Op == ir::Opcode::CmpNE) {
    ClosedForm E = B - A; // zero iff equal
    if (!E.isLinear())
      return Info;
    std::optional<Rational> I0 = E.coeff(0).getConstant();
    std::optional<Rational> S = E.coeff(1).getConstant();
    if (!I0 || !S)
      return Info;
    if (Op == ir::Opcode::CmpEQ) {
      // Stay while equal: exits at the first h with E(h) != 0.
      if (!I0->isZero())
        Info.K = TripCountInfo::Kind::Zero;
      else if (S->isZero())
        Info.K = TripCountInfo::Kind::Infinite;
      else {
        Info.K = TripCountInfo::Kind::Finite;
        Info.Count = Affine(1); // E(0)==0, E(1)!=0.
      }
      return Info;
    }
    // Stay while different: exits at the first h with E(h) == 0.
    if (S->isZero()) {
      Info.K = I0->isZero() ? TripCountInfo::Kind::Zero
                            : TripCountInfo::Kind::Infinite;
      return Info;
    }
    Rational H = -*I0 / *S;
    if (H.isInteger() && !H.isNegative()) {
      Info.K = TripCountInfo::Kind::Finite;
      Info.Count = Affine(H.getInteger());
    } else {
      Info.K = TripCountInfo::Kind::Infinite;
    }
    return Info;
  }

  // Orderings: build the strict margin E with "stay iff E(h) > 0".
  ClosedForm One = ClosedForm::constant(Affine(1));
  ClosedForm E;
  switch (Op) {
  case ir::Opcode::CmpLT: // a < b
    E = B - A;
    break;
  case ir::Opcode::CmpLE: // a <= b  ==  a < b+1
    // Subtract before adding the 1: b+1 overflows for b == INT64_MAX (the
    // classic `downto`/`to` boundary loops) even when the margin is small.
    E = B - A + One;
    break;
  case ir::Opcode::CmpGT: // a > b  ==  b < a
    E = A - B;
    break;
  case ir::Opcode::CmpGE: // a >= b  ==  b < a+1
    E = A - B + One;
    break;
  default:
    return Info;
  }
  if (!E.isLinear())
    return Info;
  Affine I = E.coeff(0);
  std::optional<Rational> S = E.coeff(1).getConstant();

  if (std::optional<Rational> IC = I.getConstant()) {
    // Fully numeric: the paper's three-way formula.
    if (!IC->isPositive())
      Info.K = TripCountInfo::Kind::Zero;
    else if (!S || !S->isNegative())
      // Symbolic or non-negative step with positive margin: the margin may
      // never shrink to zero.
      Info.K = S ? TripCountInfo::Kind::Infinite : TripCountInfo::Kind::Unknown;
    else {
      int64_t TC = (*IC / -*S).ceil();
      // The formula reasons over mathematical integers, but execution wraps
      // in two's-complement int64.  If either compared operand overflows
      // before the deciding iteration (e.g. `i < INT64_MAX` from
      // INT64_MAX-5 stepping by 2 jumps past the bound and wraps negative,
      // staying in the loop), the exact count is a lie about the machine.
      // Evaluating both sides at h = TC in exact arithmetic bounds every
      // intermediate value of a linear form (h = 0 is the already-
      // representable initial value); an overflow throws and the wrapper
      // reports Unknown instead.
      (void)A.evaluateAt(TC);
      (void)B.evaluateAt(TC);
      Info.K = TripCountInfo::Kind::Finite;
      Info.Count = Affine(TC);
    }
    return Info;
  }

  // Symbolic initial margin: only the unit-step case divides exactly
  // (ceil(i/1) == i); this covers every `for v = lo to hi` loop.
  if (S && *S == Rational(-1)) {
    Info.K = TripCountInfo::Kind::Finite;
    Info.Count = I;
    Info.Guarded = true;
    return Info;
  }
  return Info;
}

/// analyzeExitImpl with overflow containment: margins built from bounds
/// near INT64_MIN/MAX (the `(hi - lo)` subtraction, the `<=` +1 rewrite,
/// the final-value evaluation) throw RationalOverflow; an uncountable exit
/// is Unknown, never a wrapped number.
TripCountInfo analyzeExit(const analysis::Loop &L, ir::BasicBlock *Exiting,
                          const ClassifyFn &Classify) {
  static const stats::Counter NumOverflows("ivclass.tripcount.overflow");
  try {
    return analyzeExitImpl(L, Exiting, Classify);
  } catch (const RationalOverflow &) {
    NumOverflows.bump();
    return TripCountInfo();
  }
}

} // namespace

TripCountInfo biv::ivclass::computeTripCount(const analysis::Loop &L,
                                             const ClassifyFn &Classify) {
  const std::vector<ir::BasicBlock *> &Exiting = L.exitingBlocks();
  if (Exiting.empty())
    return TripCountInfo(); // No exit: unknown (runs forever or via return).

  if (Exiting.size() == 1)
    return analyzeExit(L, Exiting[0], Classify);

  // Multiple exits: the true count is the minimum over all exits.  Numeric
  // finite counts combine exactly; otherwise report an upper bound.
  TripCountInfo Combined;
  std::optional<Affine> Min;
  bool AllNumeric = true;
  for (ir::BasicBlock *BB : Exiting) {
    TripCountInfo One = analyzeExit(L, BB, Classify);
    if (One.K == TripCountInfo::Kind::Zero) {
      // Some exit fires before the first stay: the whole loop trips zero
      // times regardless of the others.
      return One;
    }
    if (One.K == TripCountInfo::Kind::Infinite)
      continue; // Never fires; other exits decide.
    if (One.K != TripCountInfo::Kind::Finite) {
      AllNumeric = false;
      // An Unknown exit that still carries an upper bound (a wrapped
      // phase-periodic count) tightens the combined bound: the loop exits
      // no later than the earliest bound over its exits.
      if (One.K == TripCountInfo::Kind::Unknown && One.MaxCount &&
          One.MaxCount->isConstant()) {
        if (!Min || (Min->isConstant() &&
                     *One.MaxCount->getConstant() < *Min->getConstant()))
          Min = *One.MaxCount;
      }
      continue;
    }
    if (One.Guarded || !One.Count.isConstant())
      AllNumeric = false;
    if (!Min) {
      Min = One.Count;
    } else if (Min->isConstant() && One.Count.isConstant()) {
      if (*One.Count.getConstant() < *Min->getConstant())
        Min = One.Count;
    } else {
      AllNumeric = false;
    }
  }
  if (Min && AllNumeric) {
    Combined.K = TripCountInfo::Kind::Finite;
    Combined.Count = *Min;
  } else if (Min) {
    Combined.K = TripCountInfo::Kind::Unknown;
    Combined.MaxCount = *Min;
  }
  return Combined;
}
