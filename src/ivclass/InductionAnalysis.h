//===- ivclass/InductionAnalysis.h - The paper's algorithm ------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified induction-variable classification algorithm.
///
/// Loops are processed inner to outer (section 5.3).  For each loop the SSA
/// graph is built and Tarjan's algorithm emits strongly connected regions in
/// an order that guarantees all operands of a region are classified first.
/// Trivial regions are classified by an algebra over the operand classes
/// (section 5.1); a lone loop-header phi is a wrap-around variable (4.1);
/// cycles of header phis are periodic families (4.2); single-header-phi
/// cycles are evaluated symbolically to X' = A*X + B(h) and solved exactly
/// (linear 3.1, polynomial/geometric 4.3) or downgraded to monotonic (4.4).
/// Countable inner loops get their trip count (5.2) and materialized exit
/// values (5.3, Figures 7-9) so the enclosing loop sees ordinary operands.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IVCLASS_INDUCTIONANALYSIS_H
#define BEYONDIV_IVCLASS_INDUCTIONANALYSIS_H

#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "ivclass/Classification.h"
#include "ivclass/TripCount.h"
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

namespace biv {
namespace ivclass {

/// Classification storage for one loop.  Instructions (the hot path) are
/// keyed by their dense Instruction::seq() through a flat pointer vector;
/// constants, arguments, and undef fall back to a hash map.  Entries are
/// pooled in a deque so references stay stable across inserts, and the
/// insertion order is recorded so iteration is deterministic (a pointer-keyed
/// std::map iterated in address order, which varies run to run).
class ClassTable {
public:
  /// The entry for \p V, or null when none has been recorded.
  Classification *find(const ir::Value *V);

  /// The entry for \p V, default-constructed on first touch.  \p Created
  /// tells the caller whether to fill it in.
  Classification &getOrCreate(const ir::Value *V, bool &Created);

  /// Entries in insertion order (value, classification).
  const std::vector<std::pair<const ir::Value *, const Classification *>> &
  entries() const {
    return Entries;
  }

private:
  std::vector<Classification *> BySeq;
  std::unordered_map<const ir::Value *, Classification *> Other;
  std::deque<Classification> Pool;
  std::vector<std::pair<const ir::Value *, const Classification *>> Entries;
};

/// Runs the paper's algorithm over a function and answers classification
/// queries per (value, loop) pair.
class InductionAnalysis {
public:
  struct Options {
    /// Insert exit-value instructions for countable inner loops so outer
    /// loops classify through them (Figures 8 and 9).  Disable to see the
    /// paper's "treated as unknown" fallback.
    bool MaterializeExitValues = true;

    /// Cap on the number of distinct (A, B) symbolic values tracked per
    /// node during SCR evaluation (paths through nested conditionals).
    unsigned MaxSymbolicPaths = 64;

    /// Multi-branch loop summarization (Summarize.h): after the classifier
    /// punts on a loop, conjecture a period-k branch cycle by sampling the
    /// interpreter and prove exact per-phase closed forms.  Off by default
    /// (the --summarize pipeline flag).
    bool Summarize = false;
  };

  struct Stats {
    unsigned Regions = 0;
    unsigned LinearFamilies = 0;
    unsigned PolynomialFamilies = 0;
    unsigned GeometricFamilies = 0;
    unsigned PeriodicFamilies = 0;
    unsigned WrapArounds = 0;
    unsigned MonotonicRegions = 0;
    unsigned UnknownRegions = 0;
    unsigned ExitValuesMaterialized = 0;

    /// Accumulates \p O (batch drivers merge per-function stats).
    Stats &operator+=(const Stats &O) {
      Regions += O.Regions;
      LinearFamilies += O.LinearFamilies;
      PolynomialFamilies += O.PolynomialFamilies;
      GeometricFamilies += O.GeometricFamilies;
      PeriodicFamilies += O.PeriodicFamilies;
      WrapArounds += O.WrapArounds;
      MonotonicRegions += O.MonotonicRegions;
      UnknownRegions += O.UnknownRegions;
      ExitValuesMaterialized += O.ExitValuesMaterialized;
      return *this;
    }
  };

  /// \p F must be in SSA form with preds computed.  \p DT must be the
  /// dominator tree of \p F; the analysis inserts instructions but never
  /// changes the CFG, so \p DT stays valid throughout.
  ///
  /// Thread-safety: with MaterializeExitValues off, run() reads the IR but
  /// never writes it, so analyses of *distinct* functions may run
  /// concurrently (the batch driver relies on this).  Construction numbers
  /// the function's instructions (a write), so concurrent analyses of the
  /// same function are not supported.
  InductionAnalysis(ir::Function &F, const analysis::DominatorTree &DT,
                    const analysis::LoopInfo &LI, Options Opts);
  InductionAnalysis(ir::Function &F, const analysis::DominatorTree &DT,
                    const analysis::LoopInfo &LI);

  /// Processes every loop, inner to outer.
  void run();

  /// Classification of \p V relative to \p L.  Values defined outside \p L
  /// classify as invariants (symbols); values inside nested loops without a
  /// materialized exit value are unknown.
  const Classification &classify(const ir::Value *V, const analysis::Loop *L);

  /// Trip count computed for \p L (valid after run()).
  const TripCountInfo &tripCount(const analysis::Loop *L) const;

  const Stats &stats() const { return S; }

  ir::Function &function() const { return F; }
  const analysis::LoopInfo &loopInfo() const { return LI; }
  const analysis::DominatorTree &domTree() const { return DT; }

  /// Names affine symbols by their IR value name.
  SymbolNamer namer() const;

  /// Renders \p C with the paper's nested-tuple expansion: symbols that are
  /// themselves induction variables of enclosing loops print as tuples,
  /// e.g. "(L18, (L17, 0, 204), 2)".
  std::string strNested(const Classification &C, unsigned Depth = 4);

  /// Classification of a value used by (but not belonging to) the SSA graph
  /// of \p L: constants and values defined outside \p L are invariants;
  /// values inside a nested loop are unknown (section 5.3).
  Classification classifyExternal(const ir::Value *V,
                                  const analysis::Loop *L) const;

private:
  void processLoop(const analysis::Loop *L);
  void materializeExitValues(const analysis::Loop *L,
                             const TripCountInfo &TC);
  /// Builds IR computing \p V (integer affine) at the end of \p BB; returns
  /// null when a coefficient is not an integer.
  ir::Value *materializeAffine(const Affine &V, ir::BasicBlock *BB,
                               const std::string &Name);

  /// Table for \p L; loops are keyed by their dense index, a null loop (the
  /// "no enclosing loop" queries) by a dedicated slot.
  ClassTable &tableFor(const analysis::Loop *L);

  ir::Function &F;
  const analysis::DominatorTree &DT;
  const analysis::LoopInfo &LI;
  Options Opts;
  Stats S;

  /// Indexed by Loop::index(); sized once at construction.
  std::vector<ClassTable> ClassMap;
  ClassTable NullLoopClasses;
  std::vector<std::optional<TripCountInfo>> TripCounts;
  unsigned NextFamilyId = 1;
};

} // namespace ivclass
} // namespace biv

#endif // BEYONDIV_IVCLASS_INDUCTIONANALYSIS_H
