//===- ivclass/ClosedForm.h - Closed forms of recurrences -------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed forms of induction sequences.
///
/// Section 4.3 represents a polynomial induction variable as the tuple
/// (l, i, s1, ..., sm) whose value on iteration h is sum(sk * h^k), and a
/// geometric one by "the polynomial coefficients followed by the
/// coefficients of each exponential term": sum(sk * h^k) + sum(gb * b^h).
/// ClosedForm generalizes that to the full exponential-polynomial space of
/// c-finite recurrences: each exponential base carries a *polynomial*
/// coefficient, sum(sk * h^k) + sum_b (sum_j gbj * h^j) * b^h, which is
/// closed under the resonant case x' = a*x + c*a^h (whose solution needs
/// h*a^h) and under constant-coefficient linear systems with integer
/// eigenvalues.  Every coefficient is an Affine (rational coefficients over
/// loop-invariant symbols) and h is the canonical basic loop counter
/// (l, 0, 1) that is zero on the first iteration.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IVCLASS_CLOSEDFORM_H
#define BEYONDIV_IVCLASS_CLOSEDFORM_H

#include "support/Affine.h"
#include "support/Rational.h"
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace biv {
namespace ivclass {

/// Polynomial coefficient of one exponential term: sum_j p[j] * h^j
/// multiplying b^h.  Like the plain polynomial part, index = power of h.
using ExpPoly = std::vector<Affine>;

/// value(h) = sum_k poly[k] * h^k  +  sum_b (sum_j geo[b][j] * h^j) * b^h.
///
/// Invariants: the polynomial coefficient list has no trailing zeros;
/// exponential terms never use base 0 or 1 (base-1 folds into the
/// polynomial part), their coefficient polynomials have no trailing zeros,
/// and an all-zero coefficient polynomial is never stored.
class ClosedForm {
public:
  /// Constructs the zero form.
  ClosedForm() = default;

  /// The constant (loop-invariant) form \p C.
  static ClosedForm constant(Affine C);

  /// The canonical basic counter h = (L, 0, 1).
  static ClosedForm counter();

  /// init + step * h: the paper's linear tuple (L, init, step).
  static ClosedForm linear(Affine Init, Affine Step);

  /// Builds from explicit coefficients (normalizes); each exponential term
  /// gets a constant (degree-0) coefficient polynomial.
  static ClosedForm make(std::vector<Affine> Poly,
                         std::map<int64_t, Affine> Geo = {});

  /// Builds from explicit coefficients with full coefficient polynomials on
  /// the exponential terms (normalizes).
  static ClosedForm makeExp(std::vector<Affine> Poly,
                            std::map<int64_t, ExpPoly> Geo);

  bool isZero() const { return Poly.empty() && Geo.empty(); }
  bool isInvariant() const { return degree() == 0 && Geo.empty(); }
  bool isLinear() const { return degree() <= 1 && Geo.empty(); }
  bool isPolynomial() const { return Geo.empty(); }
  bool hasExponential() const { return !Geo.empty(); }

  /// True when some exponential term carries a non-constant coefficient
  /// polynomial (e.g. h*2^h) -- the c-finite extension beyond the paper's
  /// geometric class.
  bool hasPolyExponential() const {
    for (const auto &[Base, Coeff] : Geo)
      if (Coeff.size() > 1)
        return true;
    return false;
  }

  /// Degree of the polynomial part (0 for a constant).
  unsigned degree() const {
    return Poly.size() <= 1 ? 0 : static_cast<unsigned>(Poly.size() - 1);
  }

  /// Coefficient of h^k (zero when absent).
  Affine coeff(unsigned K) const {
    return K < Poly.size() ? Poly[K] : Affine();
  }

  /// The paper's "initial value": value(0).
  Affine initialValue() const;

  /// Step of a linear form (its h coefficient); requires isLinear().
  Affine linearStep() const {
    assert(isLinear() && "step of non-linear form");
    return coeff(1);
  }

  const std::map<int64_t, ExpPoly> &geoTerms() const { return Geo; }

  /// Coefficient of h^J * Base^h (zero when absent).
  Affine geoCoeff(int64_t Base, unsigned J = 0) const {
    auto It = Geo.find(Base);
    if (It == Geo.end() || J >= It->second.size())
      return Affine();
    return It->second[J];
  }

  /// Degree of the coefficient polynomial on Base^h (0 when absent or
  /// constant).
  unsigned geoDegree(int64_t Base) const {
    auto It = Geo.find(Base);
    return It == Geo.end() || It->second.size() <= 1
               ? 0
               : unsigned(It->second.size() - 1);
  }

  ClosedForm operator-() const;
  ClosedForm operator+(const ClosedForm &RHS) const;
  ClosedForm operator-(const ClosedForm &RHS) const;
  ClosedForm operator*(const Rational &Scale) const;

  /// Full product; nullopt when the result leaves the representable space
  /// (symbol-by-symbol products).  h^k * b^h cross terms stay representable
  /// here: they land in the coefficient polynomial of b^h.
  std::optional<ClosedForm> mulChecked(const ClosedForm &RHS) const;

  /// Exact value on iteration \p H (H >= 0).
  Affine evaluateAt(int64_t H) const;

  /// value(h + Delta) as a form in h; nullopt when an exponential
  /// coefficient would leave the rationals (never happens for integer
  /// bases with Delta >= -62).
  std::optional<ClosedForm> shifted(int64_t Delta) const;

  /// value(K*c + P) as a form in the new variable c (K >= 1, P >= 0): the
  /// time-stretch that moves an iteration-domain form into the cycle domain
  /// of a period-K branch cycle at phase P.  Exponential bases become b^K;
  /// nullopt when a stretched base leaves int64.  May throw
  /// RationalOverflow (coefficient arithmetic), like the other operators.
  std::optional<ClosedForm> atLinear(int64_t K, int64_t P) const;

  /// Evaluates at a *symbolic* iteration count: only possible for linear
  /// forms (init + step*TC must stay affine).  This is how inner-loop exit
  /// values with symbolic trip counts (the triangular loop of Figure 9) are
  /// built.
  std::optional<Affine> evaluateAtAffine(const Affine &TC) const;

  /// True when the sequence is non-decreasing for all h >= 0, provable from
  /// numeric coefficients alone (conservative).
  bool provablyNonDecreasing() const;
  /// True when strictly increasing for all h >= 0 (conservative).
  bool provablyIncreasing() const;
  /// True when value(h) >= 0 for all h >= 0 (conservative).
  bool provablyNonNegative() const;

  bool operator==(const ClosedForm &RHS) const {
    return Poly == RHS.Poly && Geo == RHS.Geo;
  }
  bool operator!=(const ClosedForm &RHS) const { return !(*this == RHS); }

  /// Renders e.g. "3 + 1/2*h + 1/2*h^2", "-2 - h + 3*2^h", or (c-finite)
  /// "1 + 2*h*2^h".  Term order is fixed -- polynomial powers ascending,
  /// then bases ascending with coefficient powers ascending -- so the
  /// rendering never depends on pointer or insertion order.
  std::string str(const SymbolNamer &Namer = SymbolNamer()) const;

private:
  void normalize();

  std::vector<Affine> Poly;
  std::map<int64_t, ExpPoly> Geo;
};

} // namespace ivclass
} // namespace biv

#endif // BEYONDIV_IVCLASS_CLOSEDFORM_H
