//===- ivclass/ClosedForm.h - Closed forms of recurrences -------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closed forms of induction sequences.
///
/// Section 4.3 represents a polynomial induction variable as the tuple
/// (l, i, s1, ..., sm) whose value on iteration h is sum(sk * h^k), and a
/// geometric one by "the polynomial coefficients followed by the
/// coefficients of each exponential term": sum(sk * h^k) + sum(gb * b^h).
/// ClosedForm is exactly that, with every coefficient an Affine (rational
/// coefficients over loop-invariant symbols) and h the canonical basic loop
/// counter (l, 0, 1) that is zero on the first iteration.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IVCLASS_CLOSEDFORM_H
#define BEYONDIV_IVCLASS_CLOSEDFORM_H

#include "support/Affine.h"
#include "support/Rational.h"
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace biv {
namespace ivclass {

/// value(h) = sum_k poly[k] * h^k  +  sum_b geo[b] * b^h.
///
/// Invariants: the polynomial coefficient list has no trailing zeros, and
/// exponential terms never use base 0 or 1 (base-1 folds into poly[0]) and
/// never carry a zero coefficient.
class ClosedForm {
public:
  /// Constructs the zero form.
  ClosedForm() = default;

  /// The constant (loop-invariant) form \p C.
  static ClosedForm constant(Affine C);

  /// The canonical basic counter h = (L, 0, 1).
  static ClosedForm counter();

  /// init + step * h: the paper's linear tuple (L, init, step).
  static ClosedForm linear(Affine Init, Affine Step);

  /// Builds from explicit coefficients (normalizes).
  static ClosedForm make(std::vector<Affine> Poly,
                         std::map<int64_t, Affine> Geo = {});

  bool isZero() const { return Poly.empty() && Geo.empty(); }
  bool isInvariant() const { return degree() == 0 && Geo.empty(); }
  bool isLinear() const { return degree() <= 1 && Geo.empty(); }
  bool isPolynomial() const { return Geo.empty(); }
  bool hasExponential() const { return !Geo.empty(); }

  /// Degree of the polynomial part (0 for a constant).
  unsigned degree() const {
    return Poly.size() <= 1 ? 0 : static_cast<unsigned>(Poly.size() - 1);
  }

  /// Coefficient of h^k (zero when absent).
  Affine coeff(unsigned K) const {
    return K < Poly.size() ? Poly[K] : Affine();
  }

  /// The paper's "initial value": value(0).
  Affine initialValue() const;

  /// Step of a linear form (its h coefficient); requires isLinear().
  Affine linearStep() const {
    assert(isLinear() && "step of non-linear form");
    return coeff(1);
  }

  const std::map<int64_t, Affine> &geoTerms() const { return Geo; }

  ClosedForm operator-() const;
  ClosedForm operator+(const ClosedForm &RHS) const;
  ClosedForm operator-(const ClosedForm &RHS) const;
  ClosedForm operator*(const Rational &Scale) const;

  /// Full product; nullopt when the result leaves the representable space
  /// (symbol-by-symbol products, h^k * b^h cross terms with k > 0, ...).
  std::optional<ClosedForm> mulChecked(const ClosedForm &RHS) const;

  /// Exact value on iteration \p H (H >= 0).
  Affine evaluateAt(int64_t H) const;

  /// value(h + Delta) as a form in h; nullopt when an exponential
  /// coefficient would leave the rationals (never happens for integer
  /// bases with Delta >= -62).
  std::optional<ClosedForm> shifted(int64_t Delta) const;

  /// Evaluates at a *symbolic* iteration count: only possible for linear
  /// forms (init + step*TC must stay affine).  This is how inner-loop exit
  /// values with symbolic trip counts (the triangular loop of Figure 9) are
  /// built.
  std::optional<Affine> evaluateAtAffine(const Affine &TC) const;

  /// True when the sequence is non-decreasing for all h >= 0, provable from
  /// numeric coefficients alone (conservative).
  bool provablyNonDecreasing() const;
  /// True when strictly increasing for all h >= 0 (conservative).
  bool provablyIncreasing() const;
  /// True when value(h) >= 0 for all h >= 0 (conservative).
  bool provablyNonNegative() const;

  bool operator==(const ClosedForm &RHS) const {
    return Poly == RHS.Poly && Geo == RHS.Geo;
  }
  bool operator!=(const ClosedForm &RHS) const { return !(*this == RHS); }

  /// Renders e.g. "3 + 1/2*h + 1/2*h^2" or "-2 - h + 3*2^h".
  std::string str(const SymbolNamer &Namer = SymbolNamer()) const;

private:
  void normalize();

  std::vector<Affine> Poly;
  std::map<int64_t, Affine> Geo;
};

} // namespace ivclass
} // namespace biv

#endif // BEYONDIV_IVCLASS_CLOSEDFORM_H
