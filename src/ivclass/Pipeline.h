//===- ivclass/Pipeline.h - Source-to-analysis facade -----------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one-call entry point used by examples, benchmarks, and downstream
/// clients: parse a loop-language program, build SSA, optionally run
/// constant propagation, and run the induction-variable analysis.  The
/// returned bundle keeps every intermediate structure alive (the analysis
/// holds references into them).
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IVCLASS_PIPELINE_H
#define BEYONDIV_IVCLASS_PIPELINE_H

#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "ivclass/InductionAnalysis.h"
#include "ssa/SSABuilder.h"
#include <memory>
#include <string>
#include <vector>

namespace biv {
namespace ivclass {

/// Everything produced by analyzing one program.
struct AnalyzedProgram {
  std::unique_ptr<ir::Function> F;
  ssa::SSAInfo Info;
  std::unique_ptr<analysis::DominatorTree> DT;
  std::unique_ptr<analysis::LoopInfo> LI;
  std::unique_ptr<InductionAnalysis> IA;
};

/// Pipeline switches.
struct PipelineOptions {
  /// Run Wegman-Zadeck constant propagation (fold-only) before the IV
  /// analysis, as the paper suggests for resolving initial values.
  bool RunSCCP = true;
  /// Re-verify SSA after each mutating stage (post-SCCP).  On by default so
  /// tests catch pass bugs at the stage that introduced them; benches and
  /// the batch driver turn it off -- the initial post-construction verify
  /// always runs.
  bool VerifyEach = true;
  InductionAnalysis::Options Analysis;
};

/// Frontend half of analyzeSource: parse, lower, build SSA (and verify it).
/// Fills only F and Info; DT/LI/IA stay null until analyzeParsed() runs.
/// Split out so the batch driver can hash the canonical IR print and probe
/// the analysis cache before paying for the analysis half.
std::optional<AnalyzedProgram> parseSource(const std::string &Source,
                                           std::vector<std::string> &Errors);

/// Analysis half: optional constant propagation, dominators, loops, and the
/// induction-variable analysis, in place on a parseSource() result.
void analyzeParsed(AnalyzedProgram &P,
                   const PipelineOptions &Opts = PipelineOptions());

/// Parses and analyzes \p Source (parseSource + analyzeParsed).  On error
/// returns an empty optional and fills \p Errors.
std::optional<AnalyzedProgram>
analyzeSource(const std::string &Source, std::vector<std::string> &Errors,
              const PipelineOptions &Opts = PipelineOptions());

/// Like analyzeSource but aborts with diagnostics (for known-good inputs).
AnalyzedProgram analyzeSourceOrDie(const std::string &Source,
                                   const PipelineOptions &Opts =
                                       PipelineOptions());

/// Analyzes several independent programs with one set of options.  Slot i
/// holds source i's analysis, or nullopt with its diagnostics appended to
/// \p Errors[i].  This is the serial entry; driver::BatchAnalyzer shards the
/// same per-unit work across a thread pool.
std::vector<std::optional<AnalyzedProgram>>
analyzeSources(const std::vector<std::string> &Sources,
               std::vector<std::vector<std::string>> &Errors,
               const PipelineOptions &Opts = PipelineOptions());

} // namespace ivclass
} // namespace biv

#endif // BEYONDIV_IVCLASS_PIPELINE_H
