//===- ivclass/TripCount.h - Loop trip counts -------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trip counts from exit conditions (paper section 5.2).
///
/// The loop-exit comparison is normalized to "stay while a < b", the margin
/// E = b - a is classified as a linear induction expression (L, i, s), and
///
///     tripcount = 0               if i <= 0
///                 ceil(i / -s)    if i > 0 and s < 0
///                 infinite        if i > 0 and s >= 0
///
/// The trip count is defined as the number of stay decisions the exit test
/// makes; the loop-header phis are therefore evaluated tc+1 times and carry
/// values X(0) .. X(tc), with X(tc) being the value on the final (partial or
/// exiting) visit.  With several exits only a maximum trip count is derived.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IVCLASS_TRIPCOUNT_H
#define BEYONDIV_IVCLASS_TRIPCOUNT_H

#include "analysis/LoopInfo.h"
#include "ivclass/Classification.h"
#include <functional>
#include <optional>

namespace biv {
namespace ivclass {

/// Result of trip-count analysis for one loop.
struct TripCountInfo {
  enum class Kind {
    Unknown,  ///< Could not be determined.
    Zero,     ///< The loop body never re-executes (tc = 0).
    Finite,   ///< Count holds the (possibly symbolic) trip count.
    Infinite, ///< The analyzed exit never fires.
  };

  Kind K = Kind::Unknown;

  /// Valid when K == Finite.  May be symbolic (affine over values defined
  /// outside the loop).
  Affine Count;

  /// True when a symbolic Count is only valid under the assumption that it
  /// is positive (otherwise the real count is zero).  Numeric counts are
  /// never guarded.
  bool Guarded = false;

  /// Upper bound when K == Unknown but some exit was countable (the paper's
  /// "maximum trip count" for multi-exit loops).
  std::optional<Affine> MaxCount;

  /// The controlling exit branch and its block, when a single exit decided
  /// the count.
  const ir::Instruction *ExitBranch = nullptr;
  const ir::BasicBlock *ExitingBlock = nullptr;

  bool isCountable() const { return K == Kind::Finite || K == Kind::Zero; }

  /// The trip count as an affine (0 for Zero); requires isCountable().
  Affine count() const {
    assert(isCountable() && "count() on non-countable loop");
    return K == Kind::Zero ? Affine(0) : Count;
  }

  std::string str(const SymbolNamer &Namer = SymbolNamer()) const;
};

/// Classifies a value relative to the loop under analysis.
using ClassifyFn = std::function<Classification(const ir::Value *)>;

/// Computes the trip count of \p L.  \p Classify must return classifications
/// relative to \p L (the induction analysis provides it).
TripCountInfo computeTripCount(const analysis::Loop &L,
                               const ClassifyFn &Classify);

} // namespace ivclass
} // namespace biv

#endif // BEYONDIV_IVCLASS_TRIPCOUNT_H
