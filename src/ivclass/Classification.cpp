//===- ivclass/Classification.cpp - The paper's variable classes --------------===//

#include "ivclass/Classification.h"
#include "analysis/LoopInfo.h"

using namespace biv;
using namespace biv::ivclass;

const char *biv::ivclass::ivKindName(IVKind K) {
  switch (K) {
  case IVKind::Unknown:
    return "unknown";
  case IVKind::Invariant:
    return "invariant";
  case IVKind::Linear:
    return "linear";
  case IVKind::Polynomial:
    return "polynomial";
  case IVKind::Geometric:
    return "geometric";
  case IVKind::CFinite:
    return "c-finite";
  case IVKind::WrapAround:
    return "wrap-around";
  case IVKind::Periodic:
    return "periodic";
  case IVKind::Monotonic:
    return "monotonic";
  case IVKind::PhasePeriodic:
    return "phase-periodic";
  }
  assert(false && "unknown IVKind");
  return "<bad>";
}

Classification Classification::fromForm(const analysis::Loop *L,
                                        ClosedForm Form) {
  Classification C;
  C.Form = std::move(Form);
  if (C.Form.isInvariant()) {
    C.Kind = IVKind::Invariant;
    return C;
  }
  C.L = L;
  if (C.Form.hasPolyExponential())
    C.Kind = IVKind::CFinite;
  else if (C.Form.hasExponential())
    C.Kind = IVKind::Geometric;
  else if (C.Form.isLinear())
    C.Kind = IVKind::Linear;
  else
    C.Kind = IVKind::Polynomial;
  return C;
}

Classification Classification::wrapAround(const analysis::Loop *L,
                                          unsigned Order,
                                          Classification InnerClass) {
  Classification C;
  C.Kind = IVKind::WrapAround;
  C.L = L;
  C.WrapOrder = Order;
  C.Inner = std::make_shared<Classification>(std::move(InnerClass));
  return C;
}

Classification Classification::periodic(const analysis::Loop *L,
                                        unsigned FamilyId, unsigned Period,
                                        unsigned Phase,
                                        std::vector<Affine> RingInits) {
  assert(Period >= 2 && "periodic family needs period >= 2");
  Classification C;
  C.Kind = IVKind::Periodic;
  C.L = L;
  C.FamilyId = FamilyId;
  C.Period = Period;
  C.Phase = Phase;
  C.RingInits = std::move(RingInits);
  return C;
}

Classification Classification::monotonic(const analysis::Loop *L,
                                         MonotoneDir Dir, bool Strict) {
  Classification C;
  C.Kind = IVKind::Monotonic;
  C.L = L;
  C.Dir = Dir;
  C.Strict = Strict;
  return C;
}

Classification Classification::phasePeriodic(
    const analysis::Loop *L, unsigned Period,
    std::vector<ClosedForm> PhaseForms) {
  assert(Period >= 2 && PhaseForms.size() == Period &&
         "phase-periodic summaries need one form per phase, period >= 2");
  Classification C;
  C.Kind = IVKind::PhasePeriodic;
  C.L = L;
  C.Period = Period;
  C.PhaseForms = std::move(PhaseForms);
  return C;
}

bool Classification::phaseSequenceStrictly(MonotoneDir Dir) const {
  if (Kind != IVKind::PhasePeriodic || PhaseForms.size() != Period)
    return false;
  // The h-order sequence interleaves the phase forms: consecutive values
  // are (phase p, cycle c) -> (phase p+1, cycle c), wrapping into
  // (phase 0, cycle c+1).  Strict monotonicity holds when every
  // consecutive difference is provably >= 1 (integer sequences).
  try {
    const ClosedForm One = ClosedForm::constant(Affine(1));
    for (unsigned P = 0; P < Period; ++P) {
      ClosedForm Next;
      if (P + 1 < Period) {
        Next = PhaseForms[P + 1];
      } else {
        std::optional<ClosedForm> Wrapped = PhaseForms[0].shifted(1);
        if (!Wrapped)
          return false;
        Next = *Wrapped;
      }
      ClosedForm Diff = Dir == MonotoneDir::Increasing
                            ? Next - PhaseForms[P]
                            : PhaseForms[P] - Next;
      if (!(Diff - One).provablyNonNegative())
        return false;
    }
    return true;
  } catch (const RationalOverflow &) {
    return false;
  }
}

bool Classification::isFlipFlop() const {
  if (Kind == IVKind::Periodic)
    return Period == 2;
  if (Kind == IVKind::Geometric) {
    // c + d*(-1)^h alternates between two values (a polynomial coefficient
    // on (-1)^h would not, but those classify as CFinite).
    return Form.degree() == 0 && Form.geoTerms().size() == 1 &&
           Form.geoTerms().begin()->first == -1;
  }
  return false;
}

std::string Classification::str(const SymbolNamer &Namer) const {
  const std::string LoopName = L ? L->name() : "?";
  // Values projected out of an unsolvable region carry a marker: the form
  // is exact, but it is the solvable sub-recurrence of its region.
  const std::string Partiality = Partial ? "partial " : "";
  switch (Kind) {
  case IVKind::Unknown:
    return "unknown";
  case IVKind::Invariant:
    return Partiality + "invariant " + Form.initialValue().str(Namer);
  case IVKind::Linear:
    return Partiality + "(" + LoopName + ", " + Form.coeff(0).str(Namer) +
           ", " + Form.coeff(1).str(Namer) + ")";
  case IVKind::Polynomial: {
    std::string Out = Partiality + "(" + LoopName;
    for (unsigned K = 0; K <= Form.degree(); ++K)
      Out += ", " + Form.coeff(K).str(Namer);
    return Out + ")";
  }
  case IVKind::Geometric:
  case IVKind::CFinite:
    return Partiality + "(" + LoopName + ", " + Form.str(Namer) + ")";
  case IVKind::WrapAround:
    return "wrap-around(" + LoopName + ", order " +
           std::to_string(WrapOrder) + ", " +
           (Inner ? Inner->str(Namer) : std::string("?")) + ")";
  case IVKind::Periodic: {
    std::string Out = "periodic(" + LoopName + ", period " +
                      std::to_string(Period) + ", phase " +
                      std::to_string(Phase) + ", inits [";
    for (size_t I = 0; I < RingInits.size(); ++I) {
      if (I)
        Out += ", ";
      Out += RingInits[I].str(Namer);
    }
    return Out + "])";
  }
  case IVKind::Monotonic:
    return std::string("monotonic ") +
           (Strict ? "strictly " : "") +
           (Dir == MonotoneDir::Increasing ? "increasing" : "decreasing") +
           " (" + LoopName + ")";
  case IVKind::PhasePeriodic: {
    // Phase forms are functions of the cycle index: the value on iteration
    // h = period*c + p is the p-th form at c (the rendered variable h is
    // that cycle index).  Form 0 is also the composed whole-cycle form.
    std::string Out = "phase-periodic(" + LoopName + ", period " +
                      std::to_string(Period) + ", [";
    for (size_t I = 0; I < PhaseForms.size(); ++I) {
      if (I)
        Out += " ; ";
      Out += PhaseForms[I].str(Namer);
    }
    return Out + "])";
  }
  }
  assert(false && "unknown IVKind");
  return "";
}
