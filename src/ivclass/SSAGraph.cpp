//===- ivclass/SSAGraph.cpp - Per-loop SSA graph and Tarjan SCCs ---------------===//

#include "ivclass/SSAGraph.h"
#include <algorithm>

using namespace biv;
using namespace biv::ivclass;

SSAGraph::SSAGraph(const analysis::Loop &L, const analysis::LoopInfo &LI)
    : Loop(L) {
  ir::Function *F = L.header()->parent();

  // Collect the member instructions: blocks whose innermost loop is L.
  for (ir::BasicBlock *BB : L.blocks()) {
    if (LI.loopFor(BB) != &L)
      continue;
    for (ir::Instruction *I : *BB)
      Nodes.push_back(I);
  }

  // Instructions must carry valid dense numbers; number the function on
  // first contact (idempotent) or when a mutating pass left strays behind.
  bool Valid = F->instrSeqBound() > 0;
  for (const ir::Instruction *I : Nodes)
    if (!Valid || I->seq() >= F->instrSeqBound()) {
      Valid = false;
      break;
    }
  if (!Valid)
    F->renumberInstructions();

  SeqToNode.assign(F->instrSeqBound(), NoNode);
  for (unsigned Idx = 0; Idx < Nodes.size(); ++Idx)
    SeqToNode[Nodes[Idx]->seq()] = Idx;

  // CSR adjacency, one pass to count and one to fill.
  const unsigned N = Nodes.size();
  EdgeOffsets.assign(N + 1, 0);
  auto memberOf = [&](const ir::Value *Op) -> unsigned {
    const auto *OpInst = ir::dyn_cast<ir::Instruction>(Op);
    if (!OpInst || OpInst->seq() >= SeqToNode.size())
      return NoNode;
    return SeqToNode[OpInst->seq()];
  };
  for (unsigned Idx = 0; Idx < N; ++Idx)
    for (const ir::Value *Op : Nodes[Idx]->operands())
      if (memberOf(Op) != NoNode)
        ++EdgeOffsets[Idx + 1];
  for (unsigned Idx = 0; Idx < N; ++Idx)
    EdgeOffsets[Idx + 1] += EdgeOffsets[Idx];
  Edges.resize(EdgeOffsets[N]);
  std::vector<unsigned> Fill(EdgeOffsets.begin(), EdgeOffsets.end() - 1);
  for (unsigned Idx = 0; Idx < N; ++Idx)
    for (const ir::Value *Op : Nodes[Idx]->operands()) {
      unsigned W = memberOf(Op);
      if (W != NoNode)
        Edges[Fill[Idx]++] = W;
    }
}

std::vector<SCR> SSAGraph::stronglyConnectedRegions() const {
  // Iterative Tarjan so deep use chains in generated benchmarks cannot
  // overflow the call stack.  All bookkeeping is flat, reserved storage;
  // the only per-region allocation is the SCR node list itself.
  const unsigned N = Nodes.size();
  constexpr unsigned None = ~0u;
  std::vector<unsigned> Index(N, None), LowLink(N, None);
  std::vector<char> OnStack(N, 0);
  std::vector<unsigned> Stack;
  Stack.reserve(N);
  std::vector<SCR> Result;
  unsigned NextIndex = 0;

  struct Frame {
    unsigned Node;
    unsigned NextEdge; // index into Edges, runs to EdgeOffsets[Node + 1]
  };
  std::vector<Frame> CallStack;
  CallStack.reserve(64);

  for (unsigned Root = 0; Root < N; ++Root) {
    if (Index[Root] != None)
      continue;
    CallStack.push_back({Root, EdgeOffsets[Root]});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = 1;

    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      if (F.NextEdge < EdgeOffsets[F.Node + 1]) {
        unsigned W = Edges[F.NextEdge++];
        if (Index[W] == None) {
          Index[W] = LowLink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = 1;
          CallStack.push_back({W, EdgeOffsets[W]});
        } else if (OnStack[W]) {
          LowLink[F.Node] = std::min(LowLink[F.Node], Index[W]);
        }
        continue;
      }
      // Finished this node: pop an SCR if it is a root.
      unsigned V = F.Node;
      CallStack.pop_back();
      if (!CallStack.empty()) {
        unsigned Parent = CallStack.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[V]);
      }
      if (LowLink[V] != Index[V])
        continue;
      SCR Region;
      while (true) {
        unsigned W = Stack.back();
        Stack.pop_back();
        OnStack[W] = 0;
        Region.Nodes.push_back(Nodes[W]);
        if (W == V)
          break;
      }
      if (Region.Nodes.size() > 1) {
        Region.Trivial = false;
      } else {
        // Single node: trivial unless it references itself.
        ir::Instruction *Only = Region.Nodes.front();
        Region.Trivial = true;
        for (ir::Value *Op : Only->operands())
          if (Op == Only)
            Region.Trivial = false;
      }
      Result.push_back(std::move(Region));
    }
  }
  return Result;
}
