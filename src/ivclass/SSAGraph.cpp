//===- ivclass/SSAGraph.cpp - Per-loop SSA graph and Tarjan SCCs ---------------===//

#include "ivclass/SSAGraph.h"
#include <algorithm>

using namespace biv;
using namespace biv::ivclass;

SSAGraph::SSAGraph(const analysis::Loop &L, const analysis::LoopInfo &LI)
    : Loop(L) {
  for (ir::BasicBlock *BB : L.blocks()) {
    // Skip blocks owned by a nested loop: the innermost loop of the block
    // must be L itself.
    if (LI.loopFor(BB) != &L)
      continue;
    for (const auto &I : *BB) {
      NodeIndex[I.get()] = Nodes.size();
      Nodes.push_back(I.get());
    }
  }
}

std::vector<ir::Instruction *>
SSAGraph::successors(const ir::Instruction *I) const {
  std::vector<ir::Instruction *> Succs;
  for (ir::Value *Op : I->operands()) {
    auto *OpInst = ir::dyn_cast<ir::Instruction>(Op);
    if (OpInst && NodeIndex.count(OpInst))
      Succs.push_back(OpInst);
  }
  return Succs;
}

std::vector<SCR> SSAGraph::stronglyConnectedRegions() const {
  // Iterative Tarjan so deep use chains in generated benchmarks cannot
  // overflow the call stack.
  const unsigned N = Nodes.size();
  constexpr unsigned None = ~0u;
  std::vector<unsigned> Index(N, None), LowLink(N, None);
  std::vector<char> OnStack(N, 0);
  std::vector<unsigned> Stack;
  std::vector<SCR> Result;
  unsigned NextIndex = 0;

  struct Frame {
    unsigned Node;
    std::vector<ir::Instruction *> Succs;
    size_t NextSucc = 0;
  };
  std::vector<Frame> CallStack;

  for (unsigned Root = 0; Root < N; ++Root) {
    if (Index[Root] != None)
      continue;
    CallStack.push_back({Root, successors(Nodes[Root])});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = 1;

    while (!CallStack.empty()) {
      Frame &F = CallStack.back();
      if (F.NextSucc < F.Succs.size()) {
        unsigned W = NodeIndex.at(F.Succs[F.NextSucc++]);
        if (Index[W] == None) {
          Index[W] = LowLink[W] = NextIndex++;
          Stack.push_back(W);
          OnStack[W] = 1;
          CallStack.push_back({W, successors(Nodes[W])});
        } else if (OnStack[W]) {
          LowLink[F.Node] = std::min(LowLink[F.Node], Index[W]);
        }
        continue;
      }
      // Finished this node: pop an SCR if it is a root.
      unsigned V = F.Node;
      CallStack.pop_back();
      if (!CallStack.empty()) {
        unsigned Parent = CallStack.back().Node;
        LowLink[Parent] = std::min(LowLink[Parent], LowLink[V]);
      }
      if (LowLink[V] != Index[V])
        continue;
      SCR Region;
      while (true) {
        unsigned W = Stack.back();
        Stack.pop_back();
        OnStack[W] = 0;
        Region.Nodes.push_back(Nodes[W]);
        if (W == V)
          break;
      }
      if (Region.Nodes.size() > 1) {
        Region.Trivial = false;
      } else {
        // Single node: trivial unless it references itself.
        ir::Instruction *Only = Region.Nodes.front();
        Region.Trivial = true;
        for (ir::Value *Op : Only->operands())
          if (Op == Only)
            Region.Trivial = false;
      }
      Result.push_back(std::move(Region));
    }
  }
  return Result;
}
