//===- ivclass/Report.cpp - Classification report -------------------------------===//

#include "ivclass/Report.h"
#include "ir/Printer.h"
#include "support/Stats.h"

using namespace biv;
using namespace biv::ivclass;

namespace {
// The per-kind stats counters mirror the lattice.  countHeaderPhiKinds is
// the one accounting site (callers invoke it once per analyzed function:
// the batch driver per unit, bivc once per run), so the `ivclass.kind.*`
// counters always equal the KindCounts the Report is rendered from.
const stats::Counter KindLinear("ivclass.kind.linear");
const stats::Counter KindPolynomial("ivclass.kind.polynomial");
const stats::Counter KindGeometric("ivclass.kind.geometric");
const stats::Counter KindCFinite("ivclass.kind.cfinite");
const stats::Counter KindWrapAround("ivclass.kind.wrap_around");
const stats::Counter KindPeriodic("ivclass.kind.periodic");
const stats::Counter KindMonotonic("ivclass.kind.monotonic");
const stats::Counter KindPhasePeriodic("ivclass.kind.phase_periodic");
const stats::Counter KindInvariant("ivclass.kind.invariant");
const stats::Counter KindUnknown("ivclass.kind.unknown");
// The punt-rate numerator: header phis the analysis gave up on entirely.
// ivclass.punt / sum(ivclass.kind.*) is the tracked punt rate (see
// EXPERIMENTS.md); partial counts closed forms projected out of unsolvable
// regions, i.e. phis that would have been punts before the c-finite
// extension.
const stats::Counter KindPartial("ivclass.kind.partial");
const stats::Counter Punt("ivclass.punt");
} // namespace

std::string biv::ivclass::report(InductionAnalysis &IA,
                                 const ssa::SSAInfo *Info,
                                 const ReportOptions &Opts) {
  const analysis::LoopInfo &LI = IA.loopInfo();
  ir::Printer P(IA.function());
  std::string Out;
  for (const auto &L : LI.loops()) {
    Out += "loop " + L->name() + " (depth " +
           std::to_string(L->depth()) + "): trip count " +
           IA.tripCount(L.get()).str(IA.namer()) + "\n";
    auto line = [&](const ir::Instruction *I, const std::string &Label) {
      const Classification &C = IA.classify(I, L.get());
      std::string Tuple =
          Opts.NestedTuples ? IA.strNested(C) : C.str(IA.namer());
      Out += "  " + Label + ": " + Tuple + "\n";
    };
    for (ir::Instruction *Phi : L->header()->phis()) {
      std::string Label = P.nameOf(Phi);
      if (Info)
        if (const ir::Var *V = Phi->variable())
          Label = std::string(V->name());
      line(Phi, Label);
    }
    if (Opts.AllValues)
      for (ir::BasicBlock *BB : L->blocks()) {
        if (LI.loopFor(BB) != L.get())
          continue;
        for (const ir::Instruction *I : *BB) {
          if (I->isPhi() && I->parent() == L->header())
            continue;
          if (I->isTerminator() || I->hasSideEffects())
            continue;
          line(I, P.nameOf(I));
        }
      }
  }
  return Out;
}

KindCounts biv::ivclass::countHeaderPhiKinds(InductionAnalysis &IA) {
  KindCounts C;
  for (const auto &L : IA.loopInfo().loops())
    for (ir::Instruction *Phi : L->header()->phis()) {
      const Classification &PhiClass = IA.classify(Phi, L.get());
      if (PhiClass.Partial)
        ++C.Partial;
      switch (PhiClass.Kind) {
      case IVKind::Linear:
        ++C.Linear;
        break;
      case IVKind::Polynomial:
        ++C.Polynomial;
        break;
      case IVKind::Geometric:
        ++C.Geometric;
        break;
      case IVKind::CFinite:
        ++C.CFinite;
        break;
      case IVKind::WrapAround:
        ++C.WrapAround;
        break;
      case IVKind::Periodic:
        ++C.Periodic;
        break;
      case IVKind::Monotonic:
        ++C.Monotonic;
        break;
      case IVKind::PhasePeriodic:
        ++C.PhasePeriodic;
        break;
      case IVKind::Invariant:
        ++C.Invariant;
        break;
      case IVKind::Unknown:
        ++C.Unknown;
        break;
      }
    }
  KindLinear.bump(C.Linear);
  KindPolynomial.bump(C.Polynomial);
  KindGeometric.bump(C.Geometric);
  KindCFinite.bump(C.CFinite);
  KindWrapAround.bump(C.WrapAround);
  KindPeriodic.bump(C.Periodic);
  KindMonotonic.bump(C.Monotonic);
  KindPhasePeriodic.bump(C.PhasePeriodic);
  KindInvariant.bump(C.Invariant);
  KindUnknown.bump(C.Unknown);
  KindPartial.bump(C.Partial);
  Punt.bump(C.Unknown);
  return C;
}
