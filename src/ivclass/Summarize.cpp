//===- ivclass/Summarize.cpp - Multi-branch loop summarization -----------------===//

#include "ivclass/Summarize.h"
#include "ivclass/RecurrenceSolver.h"
#include "interp/Interpreter.h"
#include "support/Stats.h"
#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

using namespace biv;
using namespace biv::ivclass;

namespace {

const stats::Counter NumAttempted("ivclass.summarize.attempted");
const stats::Counter NumConjectured("ivclass.summarize.conjectured");
const stats::Counter NumProved("ivclass.summarize.proved");
const stats::Counter NumDisproved("ivclass.summarize.disproved");
const stats::Counter NumPhis("ivclass.summarize.phis");
const stats::Counter NumOverflow("ivclass.summarize.overflow");
const stats::Counter NumFailPrep("ivclass.summarize.fail.prep");
const stats::Counter NumFailOblig("ivclass.summarize.fail.oblig");
const stats::Counter NumFailEmpty("ivclass.summarize.fail.empty");
const stats::Counter NumFailSolve("ivclass.summarize.fail.solve");
const stats::Counter NumFailBranch("ivclass.summarize.fail.branch");
const stats::Timer SummarizePhase("phase.summarize");

/// Seed values fed to the probe runs; every function argument receives the
/// same seed within one run (SummarizeSampleCount runs total).
constexpr int64_t SampleSeeds[SummarizeSampleCount] = {3, 7, 12};

/// Symbolic value along one phase path: sum_i A[i] * X_i(h) + B(h), where
/// X is the vector of unknown header phis at the start of iteration h and
/// the forcing B is a closed form in the global iteration counter h.
struct VecForm {
  std::vector<Rational> A;
  ClosedForm B;

  bool freeOfX() const {
    for (const Rational &C : A)
      if (!C.isZero())
        return false;
    return true;
  }
};

class Summarizer {
public:
  Summarizer(InductionAnalysis &IA, const analysis::Loop *L, ClassTable &Map)
      : IA(IA), L(L), Map(Map), Header(L->header()) {}

  void run() {
    // Single-latch loops only: multiple latches break the one-init-one-
    // carried phi split.  Loops with subloops are fine -- the sampled paths
    // keep just the directly-contained blocks, and any phi whose value
    // chain crosses into a subloop drops out of the proved subset on its
    // own (its evaluation leaves the path).
    if (L->latches().size() != 1)
      return;
    if (!collectUnknowns())
      return;
    NumAttempted.bump();
    if (!conjecture())
      return;
    NumConjectured.bump();
    // A path cycle of length k is also a path cycle of any multiple, and
    // several recurrence shapes only become solvable at the right multiple:
    // periodic-family forcings (s = s + a with a in a period-q ring) resolve
    // to per-phase constants once q divides the cycle, and a ring crossing a
    // subloop reaches the outer cycle as a permutation of the unknowns whose
    // matrix has complex eigenvalues until some power composes back to the
    // identity (p0->p1->p2 over 3 cycles).  Sweep every multiple of the
    // observed period and keep whichever attempt rescues the most phis
    // (ties to the shortest cycle for the cheaper report).
    bool Overflowed = false;
    auto attempt = [&](unsigned Cand) {
      try {
        return tryProve(Cand);
      } catch (const RationalOverflow &) {
        Overflowed = true; // degrade this attempt only
        return false;
      }
    };
    bool Proved = false;
    Attempt Best;
    unsigned BestCount = 0;
    for (unsigned Cand = BaseK; Cand <= SummarizeMaxPeriod; Cand += BaseK) {
      if (!attempt(Cand))
        continue;
      if (const unsigned C = count(Result.InS); !Proved || C > BestCount) {
        Best = Result; // tryProve overwrites Result
        BestCount = C;
        Proved = true;
      }
      if (BestCount == Unknowns.size())
        break; // nothing left for a longer cycle to rescue
    }
    if (Proved)
      Result = Best;
    if (!Proved) {
      (Overflowed ? NumOverflow : NumDisproved).bump();
      if (!Overflowed && FailWhy)
        FailWhy->bump();
      return;
    }
    NumProved.bump();
    commit();
  }

private:
  /// One visited direct block, paired with the block that *actually*
  /// preceded it in the trace.  Across a subloop the predecessor is the
  /// inner exit block, not the previous direct block -- join phis must
  /// resolve through the edge execution really took (the skip edge would
  /// silently yield the wrong value), and the mismatch also marks where
  /// the path crossed a subloop.  The header's predecessor is null: its
  /// phis are the recurrence unknowns, never resolved through an edge.
  struct Step {
    const ir::BasicBlock *B = nullptr;
    const ir::BasicBlock *Pred = nullptr;
    bool operator==(const Step &O) const {
      return B == O.B && Pred == O.Pred;
    }
    bool operator!=(const Step &O) const { return !(*this == O); }
  };
  using Path = std::vector<Step>;

  //===------------------------------------------------------------------===//
  // Eligibility
  //===------------------------------------------------------------------===//

  bool splitPhi(const ir::Instruction *Phi, ir::Value *&Init,
                ir::Value *&Carried) const {
    Init = Carried = nullptr;
    for (unsigned Idx = 0; Idx < Phi->numOperands(); ++Idx) {
      if (L->contains(Phi->blocks()[Idx])) {
        if (Carried)
          return false;
        Carried = Phi->operand(Idx);
      } else {
        if (Init)
          return false;
        Init = Phi->operand(Idx);
      }
    }
    return Init && Carried;
  }

  bool collectUnknowns() {
    for (ir::Instruction *Phi : Header->phis()) {
      Classification *C = Map.find(Phi);
      if (!C || !C->isUnknown())
        continue;
      ir::Value *Init = nullptr, *Carried = nullptr;
      if (!splitPhi(Phi, Init, Carried))
        continue; // irregular phi: stays Unknown, the rest may still prove
      IndexOf[Phi] = unsigned(Unknowns.size());
      Unknowns.push_back(Phi);
    }
    return !Unknowns.empty();
  }

  static unsigned count(const std::vector<bool> &S) {
    unsigned N = 0;
    for (bool B : S)
      N += B;
    return N;
  }

  //===------------------------------------------------------------------===//
  // Sampling and conjecture
  //===------------------------------------------------------------------===//

  /// Slices the block-visit sequence of one probe run into completed
  /// iteration paths, grouped by loop activation.  An iteration path runs
  /// [header .. latch] keeping only the blocks *directly* in L -- subloop
  /// blocks are filtered out, so an outer loop's path is its own control
  /// skeleton with each inner activation collapsed to nothing.  The final
  /// (exiting or truncated) iteration of an activation is dropped -- the
  /// conjecture is about completed cycles.
  void collectActivations(const std::vector<const ir::BasicBlock *> &Blocks,
                          std::vector<std::vector<Path>> &Acts) const {
    const analysis::LoopInfo &LI = IA.loopInfo();
    std::vector<Path> *Cur = nullptr;
    Path Iter;
    bool InIter = false;
    const ir::BasicBlock *PrevInL = nullptr;
    auto closeIter = [&](bool Completed) {
      if (InIter && Completed && Cur)
        Cur->push_back(Iter);
      Iter.clear();
      InIter = false;
    };
    for (const ir::BasicBlock *B : Blocks) {
      if (!L->contains(B)) {
        // Left the loop: the in-flight iteration exited, not completed.
        closeIter(false);
        Cur = nullptr;
        PrevInL = nullptr;
        continue;
      }
      if (LI.loopFor(B) != L) {
        PrevInL = B; // subloop block: not part of L's own path
        continue;
      }
      if (B == Header) {
        closeIter(true); // reaching the header again completes the previous
        if (!Cur) {
          Acts.emplace_back();
          Cur = &Acts.back();
        }
        InIter = true;
      }
      if (InIter)
        Iter.push_back({B, B == Header ? nullptr : PrevInL});
      PrevInL = B;
    }
    closeIter(false); // a truncated tail never counts
  }

  bool conjecture() {
    std::vector<std::vector<Path>> Acts;
    const ir::Function &F = IA.function();
    for (int64_t Seed : SampleSeeds) {
      interp::ExecOptions EO;
      EO.MaxSteps = SummarizeSampleSteps;
      EO.TraceValues = false;
      EO.TraceArrays = false;
      EO.TraceBlocks = true;
      std::vector<int64_t> Args(F.arguments().size(), Seed);
      interp::ExecutionTrace T = interp::run(F, Args, EO);
      // Errored or budget-truncated runs still contribute the iterations
      // they completed (the partial tail was dropped above).
      collectActivations(T.Blocks, Acts);
    }

    size_t Total = 0, Longest = 0;
    for (const auto &A : Acts) {
      Total += A.size();
      Longest = std::max(Longest, A.size());
    }
    if (Total < 2)
      return false;

    for (unsigned Cand = 1; Cand <= SummarizeMaxPeriod; ++Cand) {
      // Demand at least one full cycle plus a wrap-around repeat; shorter
      // evidence cannot distinguish a cycle from a coincidence.
      if (Longest < Cand + 1)
        break;
      bool OK = true;
      for (const auto &A : Acts)
        for (size_t H = Cand; H < A.size() && OK; ++H)
          if (A[H] != A[H % Cand])
            OK = false;
      if (!OK)
        continue;
      BaseK = Cand;
      for (const auto &A : Acts)
        if (A.size() >= BaseK) {
          BasePaths.assign(A.begin(), A.begin() + BaseK);
          return true;
        }
      return false;
    }
    return false;
  }

  static unsigned gcd(unsigned A, unsigned B) {
    while (B) {
      unsigned T = A % B;
      A = B;
      B = T;
    }
    return A;
  }
  static unsigned lcm(unsigned A, unsigned B) { return A / gcd(A, B) * B; }

  /// One proof attempt at period \p Cand (a multiple of the observed path
  /// period): resets the per-phase state, re-derives the obligations and
  /// transfer matrices, then iterates subset selection and branch-relevance
  /// analysis until a provable subset of the unknowns survives (or none
  /// does).  On success Result holds the subset and its solved phase forms.
  bool tryProve(unsigned Cand) {
    K = Cand;
    CyclePaths.clear();
    for (unsigned P = 0; P < K; ++P)
      CyclePaths.push_back(BasePaths[P % BaseK]);
    Phases.clear();
    Obligations.clear();
    Result = Attempt();
    Result.K = K;
    if (!preparePhases()) {
      FailWhy = &NumFailPrep;
      return false;
    }
    if (!collectObligations()) {
      FailWhy = &NumFailOblig;
      return false;
    }
    return proveSubset();
  }

  //===------------------------------------------------------------------===//
  // Symbolic path evaluation
  //===------------------------------------------------------------------===//

  struct PhaseCtx {
    /// On-path predecessor per path block (null for the header); doubles as
    /// the path membership set.
    std::unordered_map<const ir::BasicBlock *, const ir::BasicBlock *> PredOf;
    std::unordered_map<const ir::Instruction *, std::optional<VecForm>> Memo;
  };

  bool preparePhases() {
    Phases.assign(K, PhaseCtx());
    for (unsigned P = 0; P < K; ++P) {
      const Path &PB = CyclePaths[P];
      if (PB.empty() || PB.front().B != Header)
        return false;
      for (const Step &S : PB) {
        // A repeated block would mean a cycle not through the header.
        if (!Phases[P].PredOf.emplace(S.B, S.Pred).second)
          return false;
      }
    }
    return true;
  }

  VecForm invariant(ClosedForm B) const {
    return VecForm{std::vector<Rational>(Unknowns.size()), std::move(B)};
  }

  const Classification &classOf(const ir::Value *V) {
    bool Created = false;
    Classification &C = Map.getOrCreate(V, Created);
    if (Created)
      C = IA.classifyExternal(V, L);
    return C;
  }

  /// Value of classified header phi \p Phi on iterations h === P (mod K).
  std::optional<VecForm> headerPhiValue(const ir::Instruction *Phi,
                                        unsigned P) {
    const Classification &C = classOf(Phi);
    if (C.hasClosedForm())
      return invariant(C.Form);
    if (C.isPeriodic() && C.Period >= 2 && K % C.Period == 0 &&
        C.RingInits.size() == C.Period) {
      // The family period divides the cycle, so the ring slot is pinned:
      // value = PScale * ring[(Phase + P) mod Period] + POffset.
      Affine V =
          C.RingInits[(C.Phase + P) % C.Period] * C.PScale + C.POffset;
      return invariant(ClosedForm::constant(std::move(V)));
    }
    return std::nullopt;
  }

  std::optional<VecForm> evalValue(ir::Value *V, PhaseCtx &Ctx, unsigned P) {
    if (const auto *C = ir::dyn_cast<ir::Constant>(V))
      return invariant(ClosedForm::constant(Affine(C->value())));
    if (ir::isa<ir::Argument>(V))
      return invariant(ClosedForm::constant(Affine::symbol(V)));
    auto *I = ir::dyn_cast<ir::Instruction>(V);
    if (!I)
      return std::nullopt; // undef
    auto It = IndexOf.find(I);
    if (It != IndexOf.end()) {
      VecForm VF = invariant(ClosedForm());
      VF.A[It->second] = Rational(1);
      return VF;
    }
    if (I->isPhi() && I->parent() == Header)
      return headerPhiValue(I, P);
    if (!L->contains(I->parent()))
      return invariant(ClosedForm::constant(Affine::symbol(I)));
    if (!Ctx.PredOf.count(I->parent())) {
      // In the loop but off this phase's path: a value defined inside a
      // subloop the path crossed still has an exact value -- the exit
      // value of the activation that just completed.
      if (IA.loopInfo().loopFor(I->parent()) != L)
        return subloopExitValue(I, Ctx, P);
      return std::nullopt;
    }
    return evalInst(I, Ctx, P);
  }

  /// Exit value of \p I -- defined inside a subloop of L -- as a phase
  /// form: the subloop's closed form evaluated at its trip count, with
  /// every subloop-invariant symbol (the inner inits and bounds, which may
  /// be outer-phase values or even members of X) re-evaluated in the phase
  /// context.  Only sound when this phase's path actually crossed that
  /// subloop: the value read is the activation that just completed, whose
  /// entry state is this iteration's.
  std::optional<VecForm> subloopExitValue(ir::Instruction *I, PhaseCtx &Ctx,
                                          unsigned P) {
    auto It = Ctx.Memo.find(I);
    if (It != Ctx.Memo.end())
      return It->second;
    Ctx.Memo[I] = std::nullopt;

    const analysis::LoopInfo &LI = IA.loopInfo();
    const analysis::Loop *Child = LI.loopFor(I->parent());
    while (Child && Child->parent() != L)
      Child = Child->parent();
    if (!Child)
      return std::nullopt;
    // A gap predecessor inside Child marks the crossing.
    bool Crossed = false;
    for (const auto &[B, Pred] : Ctx.PredOf)
      if (Pred && Child->contains(Pred)) {
        Crossed = true;
        break;
      }
    if (!Crossed)
      return std::nullopt;

    const TripCountInfo &TC = IA.tripCount(Child);
    if (!TC.isCountable() || !TC.ExitBranch ||
        Child->latches().size() != 1)
      return std::nullopt;

    // Section 5.3's placement rule: values at or above the exit test see
    // h = tc, values below it only completed tc - 1 full iterations.
    const analysis::DominatorTree &DT = IA.domTree();
    const ir::BasicBlock *Exiting = TC.ExitingBlock;
    const ir::BasicBlock *Latch = Child->latches().front();
    int64_t Extra;
    if (I->parent() == Exiting || DT.properlyDominates(I->parent(), Exiting))
      Extra = 0;
    else if (DT.dominates(I->parent(), Latch))
      Extra = -1;
    else
      return std::nullopt;

    const Classification &C = IA.classify(I, Child);
    unsigned MinH = 0;
    const Classification *W = &C;
    while (W->isWrapAround() && W->Inner) {
      MinH += W->WrapOrder;
      W = W->Inner.get();
    }
    const bool Ring = W->isPeriodic() && W->Period >= 2 &&
                      W->RingInits.size() == W->Period;
    const bool Phases = W->isPhasePeriodic() && W->Period >= 2 &&
                        W->PhaseForms.size() == W->Period;
    if (!W->hasClosedForm() && !Ring && !Phases)
      return std::nullopt;

    const Affine TCA = TC.count();
    std::optional<int64_t> TCNum;
    if (std::optional<Rational> Cst = TCA.getConstant())
      if (Cst->isInteger())
        TCNum = Cst->getInteger();

    std::optional<Affine> EV;
    if (TCNum) {
      const int64_t H = *TCNum + Extra;
      if (H < 0 || H < int64_t(MinH))
        return std::nullopt;
      const int64_t HS = H - int64_t(MinH);
      if (W->hasClosedForm())
        EV = W->Form.evaluateAt(HS);
      else if (Ring)
        EV = W->RingInits[(W->Phase + uint64_t(HS)) % W->Period] * W->PScale +
             W->POffset;
      else
        EV = W->PhaseForms[uint64_t(HS) % W->Period].evaluateAt(
            HS / int64_t(W->Period));
    } else if (MinH == 0 && W->hasClosedForm()) {
      // A symbolic count's symbols are re-evaluated below like any other.
      EV = W->Form.evaluateAtAffine(Extra == 0 ? TCA : TCA + Affine(-1));
    } else {
      // A ring or phase slot needs h mod period: numeric counts only.
      return std::nullopt;
    }
    if (!EV)
      return std::nullopt;

    VecForm Out = invariant(ClosedForm::constant(Affine(EV->constantPart())));
    for (const auto &[Sym, Coeff] : EV->terms()) {
      auto *SymV = const_cast<ir::Value *>(static_cast<const ir::Value *>(Sym));
      std::optional<VecForm> SV = evalValue(SymV, Ctx, P);
      if (!SV)
        return std::nullopt;
      for (size_t J = 0; J < Out.A.size(); ++J)
        Out.A[J] = Out.A[J] + SV->A[J] * Coeff;
      Out.B = Out.B + SV->B * Coeff;
    }
    Ctx.Memo[I] = Out;
    return Out;
  }

  std::optional<VecForm> evalInst(ir::Instruction *I, PhaseCtx &Ctx,
                                  unsigned P) {
    auto It = Ctx.Memo.find(I);
    if (It != Ctx.Memo.end())
      return It->second;
    // Defensive cycle break (a cycle not through a header phi would be a
    // malformed graph): record failure first, overwrite on success.
    Ctx.Memo[I] = std::nullopt;

    std::optional<VecForm> R;
    switch (I->opcode()) {
    case ir::Opcode::Phi: {
      // Body merge: resolved by the path's incoming edge.
      const ir::BasicBlock *Pred = Ctx.PredOf.at(I->parent());
      if (Pred)
        R = evalValue(I->incomingFor(Pred), Ctx, P);
      break;
    }
    case ir::Opcode::Copy:
      R = evalValue(I->operand(0), Ctx, P);
      break;
    case ir::Opcode::Neg: {
      std::optional<VecForm> S = evalValue(I->operand(0), Ctx, P);
      if (S) {
        for (Rational &C : S->A)
          C = -C;
        S->B = -S->B;
        R = std::move(S);
      }
      break;
    }
    case ir::Opcode::Add:
    case ir::Opcode::Sub: {
      std::optional<VecForm> LHS = evalValue(I->operand(0), Ctx, P);
      std::optional<VecForm> RHS = evalValue(I->operand(1), Ctx, P);
      if (LHS && RHS) {
        const bool Minus = I->opcode() == ir::Opcode::Sub;
        VecForm Out = std::move(*LHS);
        for (size_t J = 0; J < Out.A.size(); ++J)
          Out.A[J] = Minus ? Out.A[J] - RHS->A[J] : Out.A[J] + RHS->A[J];
        Out.B = Minus ? Out.B - RHS->B : Out.B + RHS->B;
        R = std::move(Out);
      }
      break;
    }
    case ir::Opcode::Mul: {
      std::optional<VecForm> LHS = evalValue(I->operand(0), Ctx, P);
      std::optional<VecForm> RHS = evalValue(I->operand(1), Ctx, P);
      if (!LHS || !RHS)
        break;
      // Linear in X only when one side is free of X; the scaling side must
      // be a numeric invariant when the other still references X.
      auto scaled = [](const VecForm &Var,
                       const VecForm &Const) -> std::optional<VecForm> {
        std::optional<Rational> C = Const.B.isInvariant()
                                        ? Const.B.initialValue().getConstant()
                                        : std::nullopt;
        if (!C)
          return std::nullopt;
        VecForm Out{Var.A, Var.B * *C};
        for (Rational &Cf : Out.A)
          Cf = Cf * *C;
        return Out;
      };
      if (LHS->freeOfX() && RHS->freeOfX()) {
        std::optional<ClosedForm> Prod = LHS->B.mulChecked(RHS->B);
        if (Prod)
          R = invariant(std::move(*Prod));
      } else if (RHS->freeOfX()) {
        R = scaled(*LHS, *RHS);
      } else if (LHS->freeOfX()) {
        R = scaled(*RHS, *LHS);
      }
      break;
    }
    default:
      // Div, Exp, loads, compares inside the update are out of scope.
      break;
    }
    Ctx.Memo[I] = R;
    return R;
  }

  //===------------------------------------------------------------------===//
  // Proof obligations
  //===------------------------------------------------------------------===//

  struct Obligation {
    ir::Opcode Cmp = ir::Opcode::CmpNE;
    /// Condition operands as phase forms; nullopt when the condition is not
    /// symbolically evaluable (a load, a division) -- such a branch can
    /// still be *irrelevant*: provably the same transfer either way.
    std::optional<VecForm> LHS, RHS;
    bool TakenTrue = false;
    unsigned Phase = 0;
    size_t BlockIdx = 0; ///< Position of the branching block in its path.
    /// The successor the sample actually took (for a branch into a subloop
    /// this is the inner side, not the next direct block).
    const ir::BasicBlock *Taken = nullptr;
  };

  static ir::Value *chaseCopies(ir::Value *V) {
    while (auto *I = ir::dyn_cast<ir::Instruction>(V)) {
      if (I->opcode() != ir::Opcode::Copy)
        break;
      V = I->operand(0);
    }
    return V;
  }

  bool collectObligations() {
    const analysis::LoopInfo &LI = IA.loopInfo();
    for (unsigned P = 0; P < K; ++P) {
      const Path &PB = CyclePaths[P];
      for (size_t J = 0; J < PB.size(); ++J) {
        const ir::BasicBlock *Target =
            J + 1 < PB.size() ? PB[J + 1].B : Header;
        // A trace predecessor that is not the previous direct block means
        // control crossed a subloop between the two: the sampled edge out
        // of this block led inward, whatever the next direct block is.
        const bool Gap = J + 1 < PB.size() && PB[J + 1].Pred != PB[J].B;
        const ir::Instruction *T = PB[J].B->terminator();
        if (!T)
          return false;
        if (T->opcode() == ir::Opcode::Br)
          continue; // single successor, taken by construction
        if (T->opcode() != ir::Opcode::CondBr)
          return false;
        ir::BasicBlock *S0 = T->blocks()[0], *S1 = T->blocks()[1];
        const bool In0 = L->contains(S0), In1 = L->contains(S1);
        if (!In0 || !In1) {
          // An exit test: a completed iteration follows the stay side by
          // definition, so no invariance proof is needed (the per-phase
          // claim is conditional on the iteration happening at all).
          if (Gap || (In0 ? S0 : S1) != Target)
            return false;
          continue;
        }
        Obligation O;
        if (Gap) {
          // The sampled side is the one that enters a subloop of L.
          const bool Inner0 = LI.loopFor(S0) != L;
          const bool Inner1 = LI.loopFor(S1) != L;
          if (Inner0 == Inner1)
            return false;
          O.Taken = Inner0 ? S0 : S1;
        } else {
          if (Target != S0 && Target != S1)
            return false;
          O.Taken = Target;
        }
        O.TakenTrue = O.Taken == S0;
        O.Phase = P;
        O.BlockIdx = J;
        ir::Value *Cond = chaseCopies(T->operand(0));
        const auto *CI = ir::dyn_cast<ir::Instruction>(Cond);
        if (CI && CI->isCompare()) {
          O.Cmp = CI->opcode();
          O.LHS = evalValue(CI->operand(0), Phases[P], P);
          O.RHS = evalValue(CI->operand(1), Phases[P], P);
        } else {
          // A non-compare condition branches on value != 0.
          O.Cmp = ir::Opcode::CmpNE;
          O.LHS = evalValue(Cond, Phases[P], P);
          O.RHS = invariant(ClosedForm());
        }
        if (!O.LHS || !O.RHS)
          O.LHS = O.RHS = std::nullopt; // unevaluable, not unprovable-yet
        Obligations.push_back(std::move(O));
      }
    }
    return true;
  }

  //===------------------------------------------------------------------===//
  // Composition, solving, and discharge
  //===------------------------------------------------------------------===//

  /// Transfers of every unknown on every phase: Row[i][p] is nullopt when
  /// unknown i's carried value is not linear over X on phase p's path.
  void evalTransfers() {
    const unsigned N = unsigned(Unknowns.size());
    Row.assign(N, std::vector<std::optional<VecForm>>(K));
    for (unsigned P = 0; P < K; ++P)
      for (unsigned I = 0; I < N; ++I) {
        ir::Value *Init = nullptr, *Carried = nullptr;
        splitPhi(Unknowns[I], Init, Carried);
        Row[I][P] = evalValue(Carried, Phases[P], P);
      }
  }

  /// Shrinks \p S to its largest closed subset: every member has a transfer
  /// on every phase, and those transfers reference only members.  A phi
  /// coupled to a nonlinear one (ps += f(px) with px' = px*px) drops out
  /// here instead of sinking the whole loop.
  void close(std::vector<bool> &S) const {
    const unsigned N = unsigned(Unknowns.size());
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned I = 0; I < N; ++I) {
        if (!S[I])
          continue;
        bool OK = true;
        for (unsigned P = 0; P < K && OK; ++P) {
          if (!Row[I][P]) {
            OK = false;
            break;
          }
          for (unsigned J = 0; J < N; ++J)
            if (!Row[I][P]->A[J].isZero() && !S[J]) {
              OK = false;
              break;
            }
        }
        if (!OK) {
          S[I] = false;
          Changed = true;
        }
      }
    }
  }

  /// Composes and solves the cycle recurrence restricted to \p S.  On
  /// success fills Result.PF for members of S.  On failure sets \p FailVar
  /// for the members the solver could not close (the caller drops them and
  /// retries); a failure naming no variable is unrecoverable.
  bool solveSubset(const std::vector<bool> &S, std::vector<bool> &FailVar) {
    const unsigned N = unsigned(Unknowns.size());
    FailVar.assign(N, false);

    // Per-phase transfers restricted to S; identity rows keep the excluded
    // variables inert (their solutions are never read).
    std::vector<RatMatrix> M;
    std::vector<std::vector<ClosedForm>> B;
    bool Failed = false;
    for (unsigned P = 0; P < K; ++P) {
      RatMatrix MP(N, N);
      std::vector<ClosedForm> BP(N);
      for (unsigned I = 0; I < N; ++I) {
        if (!S[I]) {
          MP.at(I, I) = Rational(1);
          continue;
        }
        const VecForm &VF = *Row[I][P];
        for (unsigned J = 0; J < N; ++J)
          MP.at(I, J) = VF.A[J];
        BP[I] = VF.B;
      }
      M.push_back(std::move(MP));
      B.push_back(std::move(BP));
    }

    // Accumulate X(K*c + p) = Pfx[p] * Y(c) + D[p](c) across the cycle,
    // where Y(c) = X(K*c) and the per-phase forcings are time-stretched
    // into the cycle domain: b_p at iteration K*c + p is b_p.atLinear(K, p)
    // at cycle c.
    std::vector<RatMatrix> Pfx{RatMatrix::identity(N)};
    std::vector<std::vector<ClosedForm>> D{std::vector<ClosedForm>(N)};
    for (unsigned P = 0; P < K; ++P) {
      Pfx.push_back(M[P] * Pfx[P]);
      std::vector<ClosedForm> DN(N);
      for (unsigned I = 0; I < N; ++I) {
        if (!S[I])
          continue;
        std::optional<ClosedForm> Str = B[P][I].atLinear(int64_t(K), P);
        if (!Str) {
          FailVar[I] = true;
          Failed = true;
          continue;
        }
        ClosedForm Acc = std::move(*Str);
        for (unsigned J = 0; J < N; ++J)
          Acc = Acc + D[P][J] * M[P].at(I, J);
        DN[I] = std::move(Acc);
      }
      D.push_back(std::move(DN));
    }
    if (Failed)
      return false;

    // The composed whole-cycle recurrence Y(c+1) = A*Y(c) + F(c).
    std::vector<Affine> Inits(N);
    for (unsigned I = 0; I < N; ++I) {
      ir::Value *Init = nullptr, *Carried = nullptr;
      splitPhi(Unknowns[I], Init, Carried);
      Classification IC = IA.classifyExternal(Init, L);
      Inits[I] = IC.isInvariant() ? IC.Form.initialValue()
                                  : Affine::symbol(Init);
    }
    // Stashed for the early-cycle obligation checks (c < Result.Shift is
    // outside the solved forms' domain, so those cycles replay concretely).
    EarlyM = M;
    EarlyB = B;
    EarlyInit = Inits;

    // A reset variable -- one overwritten along the cycle with values that
    // read no unknown (the flag idiom of multi-branch loops) -- makes A
    // singular, which the closed-form solver rejects outright.  Peel such
    // rows first: a zero row means Y_i(c) = F_i(c-1) verbatim, valid once
    // the cycle index clears the peel.  Substitute the peeled solutions
    // into the rows still coupled, advance the time origin one cycle per
    // round (a row that read only reset variables goes zero next round),
    // and solve the survivors from the advanced origin.  commit() realigns
    // the first Shift cycles with a wrap-around of order K*Shift.
    RatMatrix A = Pfx[K];
    std::vector<ClosedForm> F = D[K];
    std::vector<Affine> Origin = Inits;
    std::vector<bool> Active = S;
    std::vector<std::optional<ClosedForm>> Sol(N);
    unsigned T = 0;
    while (true) {
      std::vector<unsigned> Reset;
      for (unsigned I = 0; I < N; ++I) {
        if (!Active[I])
          continue;
        bool Zero = true;
        for (unsigned J = 0; J < N && Zero; ++J)
          if (!A.at(I, J).isZero())
            Zero = false;
        if (Zero)
          Reset.push_back(I);
      }
      if (Reset.empty())
        break;
      // Values one cycle later seed the advanced origin.
      std::vector<Affine> Next(N);
      for (unsigned I = 0; I < N; ++I) {
        if (!Active[I])
          continue;
        Affine V = F[I].evaluateAt(int64_t(T));
        for (unsigned J = 0; J < N; ++J)
          if (!A.at(I, J).isZero())
            V += Origin[J] * A.at(I, J);
        Next[I] = std::move(V);
      }
      for (unsigned I : Reset) {
        std::optional<ClosedForm> SI = F[I].shifted(-1);
        if (!SI) {
          FailVar[I] = true;
          Failed = true;
        } else {
          Sol[I] = std::move(*SI);
        }
        Active[I] = false;
      }
      if (Failed)
        return false;
      for (unsigned I = 0; I < N; ++I) {
        if (!Active[I])
          continue;
        for (unsigned J : Reset)
          if (!A.at(I, J).isZero()) {
            F[I] = F[I] + *Sol[J] * A.at(I, J);
            A.at(I, J) = Rational(0);
          }
      }
      Origin = std::move(Next);
      ++T;
    }

    // Follower peel -- the dual of the reset peel.  A variable whose
    // *column* is zero among the active rows (its own diagonal included)
    // is read by nothing that remains: it cannot influence the coupled
    // core, yet its presence makes the matrix singular, which the solver
    // rejects outright.  The scratch variable of a rotation is the
    // canonical case (tmp = p0; p0 = p1; p1 = p2; p2 = tmp composes over
    // the cycle to tmp' = f(ring) with no reads of tmp).  Peel followers
    // before the core solve and back-substitute from the solved forms
    // afterwards; each level of substitution shifts the domain one cycle,
    // which the commit-time wrap-around prefix absorbs.
    std::vector<unsigned> Follow; // removal order
    for (bool Changed = true; Changed;) {
      Changed = false;
      for (unsigned I = 0; I < N && !Changed; ++I) {
        if (!Active[I])
          continue;
        bool ColZero = true;
        for (unsigned J = 0; J < N && ColZero; ++J)
          if (Active[J] && !A.at(J, I).isZero())
            ColZero = false;
        if (!ColZero)
          continue;
        Follow.push_back(I);
        Active[I] = false;
        Changed = true; // re-scan: removing I may zero another column
      }
    }

    if (count(Active)) {
      // Split the still-coupled remainder into connected components of the
      // dependency graph and solve each one separately as Z(m) = Y(m + T):
      // same matrix block, forcing and origin advanced by T cycles.  The
      // coupling is usually sparse -- a rotation family and a geometric
      // accumulator share no variables -- and solving them jointly is not
      // just wasteful, it is lossy twice over: the solver's size bound sees
      // the sum of the block sizes, and its symbolic iterates are shared,
      // so one huge-eigenvalue scalar overflows the arithmetic and nulls
      // out every other component's solution with it.
      std::vector<unsigned> Comp(N, ~0u);
      std::vector<std::vector<unsigned>> Comps;
      for (unsigned I = 0; I < N; ++I) {
        if (!Active[I] || Comp[I] != ~0u)
          continue;
        std::vector<unsigned> Members{I};
        Comp[I] = unsigned(Comps.size());
        for (size_t Q = 0; Q < Members.size(); ++Q) {
          const unsigned U = Members[Q];
          for (unsigned J = 0; J < N; ++J) {
            if (!Active[J] || Comp[J] != ~0u)
              continue;
            if (!A.at(U, J).isZero() || !A.at(J, U).isZero()) {
              Comp[J] = Comp[I];
              Members.push_back(J);
            }
          }
        }
        Comps.push_back(std::move(Members));
      }
      for (const std::vector<unsigned> &Idx : Comps) {
        const unsigned NA = unsigned(Idx.size());
        // The closure cap (SummarizeMaxVars) is wider than the solver's
        // bound; when a single component is still too big, defer its
        // highest-indexed variable and let the caller's dead-set loop
        // retry without it rather than failing wholesale.
        if (NA > MaxSystemSize) {
          FailVar[Idx.back()] = true;
          Failed = true;
          continue;
        }
        RatMatrix AS(NA, NA);
        std::vector<ClosedForm> G(NA);
        std::vector<Affine> ZInit(NA);
        bool Bad = false;
        for (unsigned I = 0; I < NA; ++I) {
          for (unsigned J = 0; J < NA; ++J)
            AS.at(I, J) = A.at(Idx[I], Idx[J]);
          std::optional<ClosedForm> GI = T ? F[Idx[I]].shifted(int64_t(T))
                                           : std::optional<ClosedForm>(F[Idx[I]]);
          if (!GI) {
            FailVar[Idx[I]] = true;
            Failed = Bad = true;
            continue;
          }
          G[I] = std::move(*GI);
          ZInit[I] = Origin[Idx[I]];
        }
        if (Bad)
          continue;
        std::vector<std::optional<ClosedForm>> Z =
            solveLinearSystem(AS, G, ZInit);
        for (unsigned I = 0; I < NA; ++I) {
          std::optional<ClosedForm> SI;
          if (Z[I])
            SI = T ? Z[I]->shifted(-int64_t(T)) : Z[I];
          if (!SI) {
            FailVar[Idx[I]] = true;
            Failed = true;
            continue;
          }
          Sol[Idx[I]] = std::move(SI);
        }
      }
      if (Failed)
        return false;
    }

    // Back-substitute followers in reverse removal order: a follower's row
    // reads only core variables and later-removed followers (anything that
    // read it was removed earlier), so its solution is one cycle of the
    // recurrence applied to already-solved forms.  Y_I(c) = (A*Y + F)_I at
    // c-1, which is only guaranteed once every referenced solution's own
    // domain cleared -- one cycle later than the deepest dependency.  A
    // concrete point-check often discharges that cycle: if the form already
    // reproduces the origin state at cycle T, its domain extends down to T
    // and the commit-time wrap prefix stays as short as the peel alone
    // requires (the rotation scratch variable always passes this check).
    std::vector<unsigned> ValidFrom(N, T);
    unsigned MaxValid = T;
    for (size_t Fi = Follow.size(); Fi-- > 0;) {
      const unsigned I = Follow[Fi];
      ClosedForm Acc = F[I];
      bool OK = true;
      unsigned VF = T + 1;
      for (unsigned J = 0; J < N && OK; ++J)
        if (!A.at(I, J).isZero()) {
          if (!Sol[J])
            OK = false;
          else {
            Acc = Acc + *Sol[J] * A.at(I, J);
            VF = std::max(VF, ValidFrom[J] + 1);
          }
        }
      std::optional<ClosedForm> SI;
      if (OK)
        SI = Acc.shifted(-1);
      if (!SI) {
        FailVar[I] = true;
        Failed = true;
        continue;
      }
      if (VF == T + 1) {
        try {
          if (SI->evaluateAt(int64_t(T)) == Origin[I])
            VF = T;
        } catch (const RationalOverflow &) {
          // keep the conservative domain
        }
      }
      ValidFrom[I] = VF;
      MaxValid = std::max(MaxValid, VF);
      Sol[I] = std::move(*SI);
    }
    if (Failed)
      return false;

    Result.Shift = MaxValid;
    Result.PF.assign(N, std::vector<ClosedForm>(K));
    for (unsigned P = 0; P < K; ++P)
      for (unsigned I = 0; I < N; ++I) {
        if (!S[I])
          continue;
        ClosedForm Acc = D[P][I];
        for (unsigned J = 0; J < N; ++J)
          if (!Pfx[P].at(I, J).isZero())
            Acc = Acc + *Sol[J] * Pfx[P].at(I, J);
        Result.PF[I][P] = std::move(Acc);
      }
    return true;
  }

  /// True when every unknown-phi coefficient the condition reads is inside
  /// \p S (otherwise its value depends on a phi we are not summarizing).
  bool condCoeffsWithin(const Obligation &O,
                        const std::vector<bool> &S) const {
    for (const VecForm *VF : {&*O.LHS, &*O.RHS})
      for (size_t J = 0; J < VF->A.size(); ++J)
        if (!VF->A[J].isZero() && !S[J])
          return false;
    return true;
  }

  /// Branch-relevance analysis for an obligation that could not be proved
  /// phase-constant: walks the branch's *other* arm to the rejoin point,
  /// re-evaluates the phase transfer of every member of \p S along that
  /// alternative path, and reports which members' transfers differ.  An
  /// all-false result means the branch cannot steer any summarized value
  /// (both arms produce the same update), so the obligation is vacuous.
  /// nullopt: the alternative arm exits the loop, branches again, or
  /// re-enters the path upstream -- relevance unknown, proof must fail.
  std::optional<std::vector<bool>> armDiffVars(const Obligation &O,
                                               const std::vector<bool> &S) {
    const analysis::LoopInfo &LI = IA.loopInfo();
    const Path &PB = CyclePaths[O.Phase];
    const ir::Instruction *T = PB[O.BlockIdx].B->terminator();
    const ir::BasicBlock *Other =
        O.Taken == T->blocks()[0] ? T->blocks()[1] : T->blocks()[0];

    std::unordered_map<const ir::BasicBlock *, size_t> Pos;
    for (size_t J = 0; J < PB.size(); ++J)
      Pos[PB[J].B] = J;

    // Walk the other arm to its rejoin point on the sampled path.
    std::vector<const ir::BasicBlock *> Seg;
    const ir::BasicBlock *Cur = Other;
    size_t Rejoin = PB.size(), Steps = 0;
    while (true) {
      if (Cur == Header)
        break; // the arm runs straight to the backedge
      auto It = Pos.find(Cur);
      if (It != Pos.end()) {
        if (It->second <= O.BlockIdx)
          return std::nullopt; // rejoins upstream: not a diamond
        Rejoin = It->second;
        break;
      }
      if (!L->contains(Cur) || LI.loopFor(Cur) != L)
        return std::nullopt; // the arm exits or enters a subloop
      Seg.push_back(Cur);
      if (++Steps > 64)
        return std::nullopt;
      const ir::Instruction *BT = Cur->terminator();
      if (!BT || BT->opcode() != ir::Opcode::Br)
        return std::nullopt; // nested control flow in the arm
      Cur = BT->blocks()[0];
    }

    // Alternative-path context: the shared prefix and suffix keep their
    // sampled trace predecessors; the arm itself and the rejoin block take
    // the walked edges.
    PhaseCtx Ctx;
    for (size_t J = 0; J <= O.BlockIdx; ++J)
      if (!Ctx.PredOf.emplace(PB[J].B, PB[J].Pred).second)
        return std::nullopt;
    const ir::BasicBlock *Prev = PB[O.BlockIdx].B;
    for (const ir::BasicBlock *B : Seg) {
      if (!Ctx.PredOf.emplace(B, Prev).second)
        return std::nullopt;
      Prev = B;
    }
    if (Rejoin < PB.size()) {
      if (!Ctx.PredOf.emplace(PB[Rejoin].B, Prev).second)
        return std::nullopt;
      for (size_t J = Rejoin + 1; J < PB.size(); ++J)
        if (!Ctx.PredOf.emplace(PB[J].B, PB[J].Pred).second)
          return std::nullopt;
    }

    std::vector<bool> Diff(Unknowns.size(), false);
    for (unsigned I = 0; I < unsigned(Unknowns.size()); ++I) {
      if (!S[I])
        continue;
      ir::Value *Init = nullptr, *Carried = nullptr;
      splitPhi(Unknowns[I], Init, Carried);
      std::optional<VecForm> VF = evalValue(Carried, Ctx, O.Phase);
      const std::optional<VecForm> &Ref = Row[I][O.Phase];
      Diff[I] = !VF || !Ref || VF->A != Ref->A || !(VF->B == Ref->B);
    }
    return Diff;
  }

  /// The subset-refinement loop: solve the closed subset, discharge every
  /// obligation (by proof or by irrelevance), and shrink the subset by the
  /// variables a steering branch actually touches until a fixpoint.
  bool proveSubset() {
    evalTransfers();
    const unsigned N = unsigned(Unknowns.size());
    // Vars proven hopeless (solver failure, branch-steered): never retried.
    // The working set S is re-derived from the survivors each round, so a
    // var squeezed out by the size cap gets its turn once a capped-in var
    // dies -- the cap defers, it does not condemn.
    std::vector<bool> Dead(N, false);
    while (true) {
      std::vector<bool> S(N);
      for (unsigned I = 0; I < N; ++I)
        S[I] = !Dead[I];
      close(S);
      // Deterministic cap: drop the highest-index members, re-close.
      while (count(S) > SummarizeMaxVars) {
        for (unsigned I = N; I-- > 0;)
          if (S[I]) {
            S[I] = false;
            break;
          }
        close(S);
      }
      if (count(S) == 0) {
        FailWhy = &NumFailEmpty;
        return false;
      }

      std::vector<bool> FailVar;
      if (!solveSubset(S, FailVar)) {
        bool Any = false;
        for (unsigned J = 0; J < N; ++J)
          if (FailVar[J] && S[J] && !Dead[J]) {
            Dead[J] = true;
            Any = true;
          }
        if (!Any) {
          FailWhy = &NumFailSolve;
          return false;
        }
        continue;
      }
      bool NeedShrink = false, Fail = false;
      std::vector<bool> Shrink(N, false);
      for (size_t Oi = 0; Oi < Obligations.size() && !Fail; ++Oi) {
        const Obligation &O = Obligations[Oi];
        if (O.LHS && condCoeffsWithin(O, S) && checkObligation(O))
          continue;
        std::optional<std::vector<bool>> Diff = armDiffVars(O, S);
        if (!Diff) {
          Fail = true;
          break;
        }
        for (unsigned J = 0; J < N; ++J)
          if ((*Diff)[J]) {
            Shrink[J] = true;
            NeedShrink = true;
          }
        // No S-var differs between the arms: vacuous for this subset.
      }
      if (Fail) {
        FailWhy = &NumFailBranch;
        return false;
      }
      if (!NeedShrink) {
        Result.InS = S;
        return true;
      }
      bool Progress = false;
      for (unsigned J = 0; J < N; ++J)
        if (Shrink[J] && !Dead[J]) {
          Dead[J] = true;
          Progress = true;
        }
      if (!Progress) {
        FailWhy = &NumFailBranch;
        return false;
      }
    }
  }

  /// The value of \p VF on iterations h = K*c + P, as a form in c: the
  /// unknown-phi coefficients substitute the solved phase forms.
  std::optional<ClosedForm> obligationValue(const VecForm &VF, unsigned P) {
    std::optional<ClosedForm> Str = VF.B.atLinear(int64_t(K), P);
    if (!Str)
      return std::nullopt;
    ClosedForm Acc = std::move(*Str);
    for (size_t I = 0; I < VF.A.size(); ++I)
      if (!VF.A[I].isZero())
        Acc = Acc + Result.PF[I][P] * VF.A[I];
    return Acc;
  }

  /// Does `lhs Cmp rhs` hold (branch taken as sampled) given the integer
  /// difference sequence \p Dlt = lhs - rhs over all h >= 0?
  static bool cmpHolds(ir::Opcode Cmp, bool W, const ClosedForm &Dlt) {
    const ClosedForm One = ClosedForm::constant(Affine(1));
    auto GE0 = [](const ClosedForm &F) { return F.provablyNonNegative(); };
    // Integer sequences: a < b  <=>  b - a - 1 >= 0, etc.
    switch (Cmp) {
    case ir::Opcode::CmpLT:
      return W ? GE0(-Dlt - One) : GE0(Dlt);
    case ir::Opcode::CmpLE:
      return W ? GE0(-Dlt) : GE0(Dlt - One);
    case ir::Opcode::CmpGT:
      return W ? GE0(Dlt - One) : GE0(-Dlt);
    case ir::Opcode::CmpGE:
      return W ? GE0(Dlt) : GE0(-Dlt - One);
    case ir::Opcode::CmpEQ:
      return W ? Dlt.isZero() : (GE0(Dlt - One) || GE0(-Dlt - One));
    case ir::Opcode::CmpNE:
      return W ? (GE0(Dlt - One) || GE0(-Dlt - One)) : Dlt.isZero();
    default:
      return false;
    }
  }

  /// Concrete replay of the obligation at the (pre-shift) cycle \p Cyc:
  /// iterates the restricted per-phase transfer maps from the real inits up
  /// to iteration h = K*Cyc + Phase, then tests the comparison on exact
  /// affine values.
  bool earlyObligationHolds(const Obligation &O, unsigned Cyc) {
    const unsigned N = unsigned(Unknowns.size());
    std::vector<Affine> X = EarlyInit;
    const int64_t HT = int64_t(K) * Cyc + O.Phase;
    for (int64_t H = 0; H < HT; ++H) {
      const unsigned P = unsigned(H % int64_t(K));
      std::vector<Affine> NX(N);
      for (unsigned I = 0; I < N; ++I) {
        Affine V = EarlyB[P][I].evaluateAt(H);
        for (unsigned J = 0; J < N; ++J)
          if (!EarlyM[P].at(I, J).isZero())
            V += X[J] * EarlyM[P].at(I, J);
        NX[I] = std::move(V);
      }
      X = std::move(NX);
    }
    auto val = [&](const VecForm &VF) {
      Affine V = VF.B.evaluateAt(HT);
      for (unsigned I = 0; I < N; ++I)
        if (!VF.A[I].isZero())
          V += X[I] * VF.A[I];
      return V;
    };
    const ClosedForm Dlt =
        ClosedForm::constant(val(*O.LHS) - val(*O.RHS));
    return cmpHolds(O.Cmp, O.TakenTrue, Dlt);
  }

  bool checkObligation(const Obligation &O) {
    std::optional<ClosedForm> LHS = obligationValue(*O.LHS, O.Phase);
    std::optional<ClosedForm> RHS = obligationValue(*O.RHS, O.Phase);
    if (!LHS || !RHS)
      return false;
    ClosedForm Dlt = *LHS - *RHS;
    if (Result.Shift) {
      // The solved forms only cover cycles c >= Shift: prove that domain by
      // shifting, and replay the peeled-off prefix cycles concretely.
      std::optional<ClosedForm> Sh = Dlt.shifted(int64_t(Result.Shift));
      if (!Sh)
        return false;
      Dlt = std::move(*Sh);
      for (unsigned Cyc = 0; Cyc < Result.Shift; ++Cyc)
        if (!earlyObligationHolds(O, Cyc))
          return false;
    }
    return cmpHolds(O.Cmp, O.TakenTrue, Dlt);
  }

  void commit() {
    for (size_t I = 0; I < Unknowns.size(); ++I) {
      if (!Result.InS[I])
        continue; // outside the proved subset: stays Unknown
      std::vector<ClosedForm> PF = Result.PF[I];
      if (Result.Shift) {
        // The forms cover cycles c >= Shift; rebase them to start at 0 and
        // let a wrap-around of order K*Shift carry the peeled prefix (its
        // first K*Shift values follow the sampled iterations verbatim).
        // Rebasing composes the forms' coefficients (shifted() goes through
        // Affine arithmetic), so near-INT64 constants can overflow here even
        // though the proof itself fit -- degrade that variable to Unknown
        // rather than letting the exception escape the analysis.
        bool OK = true;
        try {
          for (ClosedForm &F : PF) {
            std::optional<ClosedForm> Sh = F.shifted(int64_t(Result.Shift));
            if (!Sh) {
              OK = false;
              break;
            }
            F = std::move(*Sh);
          }
        } catch (const RationalOverflow &) {
          NumOverflow.bump();
          OK = false;
        }
        if (!OK)
          continue; // stays Unknown; the rest of the subset still commits
      }
      Classification C = Result.K == 1
                             ? Classification::fromForm(L, PF[0])
                             : Classification::phasePeriodic(L, Result.K, PF);
      if (Result.Shift)
        C = Classification::wrapAround(L, Result.K * Result.Shift,
                                       std::move(C));
      bool Created = false;
      Map.getOrCreate(Unknowns[I], Created) = std::move(C);
      NumPhis.bump();
    }
  }

  InductionAnalysis &IA;
  const analysis::Loop *L;
  ClassTable &Map;
  const ir::BasicBlock *Header;

  /// The vector X: unknown header phis in block order.
  std::vector<ir::Instruction *> Unknowns;
  std::unordered_map<const ir::Instruction *, unsigned> IndexOf;

  unsigned BaseK = 0;           ///< Observed path-cycle period.
  std::vector<Path> BasePaths;  ///< One observed path per base phase.
  unsigned K = 0;               ///< Period of the current proof attempt.
  std::vector<Path> CyclePaths; ///< One iteration path per phase.
  std::vector<PhaseCtx> Phases;
  std::vector<Obligation> Obligations;
  /// Row[i][p]: transfer of X_i on phase p of the current attempt.
  std::vector<std::vector<std::optional<VecForm>>> Row;

  /// One proof attempt's outcome: the proved subset and, for its members,
  /// PF[i][p] -- the closed form of X_i on iterations h = K*c + p, in c.
  struct Attempt {
    unsigned K = 0;
    /// Cycles peeled while eliminating reset variables: PF[i][p] is only
    /// valid for cycle indices c >= Shift; commit() wraps accordingly and
    /// checkObligation() replays the first Shift cycles concretely.
    unsigned Shift = 0;
    std::vector<bool> InS;
    std::vector<std::vector<ClosedForm>> PF;
  };
  Attempt Result;
  /// Restricted per-phase transfers of the last successful solve, kept for
  /// the concrete early-cycle obligation replay.
  std::vector<RatMatrix> EarlyM;
  std::vector<std::vector<ClosedForm>> EarlyB;
  std::vector<Affine> EarlyInit;
  const stats::Counter *FailWhy = nullptr;
};

} // namespace

void biv::ivclass::summarizeLoop(InductionAnalysis &IA,
                                 const analysis::Loop *L, ClassTable &Map) {
  stats::ScopedSpan Span(SummarizePhase);
  Summarizer(IA, L, Map).run();
}
