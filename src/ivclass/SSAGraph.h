//===- ivclass/SSAGraph.h - Per-loop SSA graph and Tarjan SCCs --*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's SSA graph (section 3): when analyzing a loop, vertices are
/// the operations in that loop and edges run from each operation to its
/// source operands.  Tarjan's algorithm [Tar72] emits strongly connected
/// regions only after everything reachable from them, so "when an SCR is
/// identified, all the source operands reaching the SCR will already have
/// been visited and [classified]" -- the property the classifier exploits.
///
/// Instructions belonging to a *nested* loop are excluded from the graph;
/// operands defined there are treated as opaque (paper section 5.3), except
/// for exit values the analysis has already materialized.
///
/// Representation: nodes are keyed by Instruction::seq() (dense per-function
/// numbering) through a flat vector, and edges live in one CSR-style array
/// built once at construction, so both graph construction and Tarjan's walk
/// are allocation-free per node and touch no ordered containers.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IVCLASS_SSAGRAPH_H
#define BEYONDIV_IVCLASS_SSAGRAPH_H

#include "analysis/LoopInfo.h"
#include "ir/Function.h"
#include <vector>

namespace biv {
namespace ivclass {

/// One strongly connected region of the SSA graph.
struct SCR {
  std::vector<ir::Instruction *> Nodes;

  /// Trivial = single node without a self edge; never a recurrence.
  bool Trivial = true;
};

/// The SSA graph of one loop.
class SSAGraph {
public:
  /// Builds the graph of \p L: all instructions whose block is in \p L but
  /// in none of L's sub-loops.  Numbers the function's instructions densely
  /// when that has not happened yet.
  SSAGraph(const analysis::Loop &L, const analysis::LoopInfo &LI);

  const analysis::Loop &loop() const { return Loop; }
  const std::vector<ir::Instruction *> &nodes() const { return Nodes; }
  bool containsNode(const ir::Instruction *I) const {
    return I->seq() < SeqToNode.size() && SeqToNode[I->seq()] != NoNode;
  }

  /// Strongly connected regions in Tarjan pop order: every SCR appears
  /// after all SCRs it (transitively) reads from.
  std::vector<SCR> stronglyConnectedRegions() const;

private:
  static constexpr unsigned NoNode = ~0u;

  const analysis::Loop &Loop;
  std::vector<ir::Instruction *> Nodes;
  /// Instruction::seq() -> node index, NoNode for non-members.  Sized to the
  /// function's seq bound.
  std::vector<unsigned> SeqToNode;
  /// CSR adjacency: successors of node i are Edges[EdgeOffsets[i] ..
  /// EdgeOffsets[i+1]).
  std::vector<unsigned> EdgeOffsets;
  std::vector<unsigned> Edges;
};

} // namespace ivclass
} // namespace biv

#endif // BEYONDIV_IVCLASS_SSAGRAPH_H
