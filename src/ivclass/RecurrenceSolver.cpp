//===- ivclass/RecurrenceSolver.cpp - Matrix-based recurrence solving ----------===//

#include "ivclass/RecurrenceSolver.h"
#include "support/Stats.h"
#include <algorithm>
#include <cstdlib>
#include <map>
#include <vector>

using namespace biv;
using namespace biv::ivclass;

namespace {

// The iterate values, Vandermonde-style basis matrix, and Gauss-Jordan
// elimination all run in exact rational arithmetic; a high-order recurrence
// (degree-k polynomial IVs produce determinants that grow superfactorially)
// can push an intermediate past int64 even though every input fits.
// Overflow is not a wrong answer -- it means the closed form is not
// representable here -- so the entry points report "no closed form" instead
// of computing with wrapped numbers.
const stats::Counter NumOverflows("ivclass.solver.overflow");
// Basis guesses whose unknown count exceeds MaxUnknowns; the fit is skipped
// outright (rational elimination at that size would overflow anyway).
const stats::Counter NumTooLarge("ivclass.solver.too_large");
// Coupled-system solves attempted / rejected at the eigenvalue stage.
const stats::Counter NumSystems("ivclass.solver.system");
const stats::Counter NumBadEigen("ivclass.solver.system_bad_eigen");

/// Hard cap on the basis size: beyond this the exact elimination overflows
/// int64 rationals in practice, so don't even build the matrix.
constexpr unsigned MaxUnknowns = 16;

/// Largest coupled system worth attempting (the classifier only builds
/// small ones; the characteristic-polynomial root search below is exact and
/// cheap at this size).

/// Basis shape of an exponential-polynomial fit: powers of h up to PolyDeg,
/// plus h^j * b^h for each (b, d) in ExpDeg with j <= d.
unsigned countUnknowns(unsigned PolyDeg,
                       const std::map<int64_t, unsigned> &ExpDeg) {
  unsigned N = PolyDeg + 1;
  for (const auto &[Base, Deg] : ExpDeg) {
    (void)Base;
    N += Deg + 1;
  }
  return N;
}

/// Fits an exponential-polynomial of the given shape through the first
/// Unknowns entries of \p Values (Values[h] = X(h)) and verifies the result
/// against \p Verify extra iterates.  The generalized Vandermonde matrix of
/// {h^k} u {h^j * b^h} at consecutive h is nonsingular, so over-spanning the
/// true basis is safe -- the surplus coefficients solve to zero.
std::optional<ClosedForm> fitExpPoly(unsigned PolyDeg,
                                     const std::map<int64_t, unsigned> &ExpDeg,
                                     const std::vector<Affine> &Values,
                                     unsigned Verify) {
  const unsigned Unknowns = countUnknowns(PolyDeg, ExpDeg);
  if (Unknowns > MaxUnknowns) {
    NumTooLarge.bump();
    return std::nullopt;
  }
  assert(Values.size() >= Unknowns + Verify && "not enough iterates");

  RatMatrix M(Unknowns, Unknowns);
  for (unsigned H = 0; H < Unknowns; ++H) {
    unsigned Col = 0;
    for (unsigned K = 0; K <= PolyDeg; ++K)
      M.at(H, Col++) = Rational(int64_t(H)).pow(K);
    for (const auto &[Base, Deg] : ExpDeg) {
      const Rational BPow = Rational(Base).pow(H);
      for (unsigned J = 0; J <= Deg; ++J)
        M.at(H, Col++) = Rational(int64_t(H)).pow(J) * BPow;
    }
  }

  std::vector<Affine> RHS(Values.begin(), Values.begin() + Unknowns);
  std::optional<std::vector<Affine>> Coeffs = M.solveAffine(RHS);
  if (!Coeffs)
    return std::nullopt;

  std::vector<Affine> Poly(Coeffs->begin(), Coeffs->begin() + PolyDeg + 1);
  std::map<int64_t, ExpPoly> Geo;
  unsigned Col = PolyDeg + 1;
  for (const auto &[Base, Deg] : ExpDeg) {
    ExpPoly &P = Geo[Base];
    for (unsigned J = 0; J <= Deg; ++J)
      P.push_back((*Coeffs)[Col++]);
  }
  ClosedForm Form = ClosedForm::makeExp(std::move(Poly), std::move(Geo));

  // Verify on the extra iterates; a wrong basis guess fails here.
  for (unsigned V = 0; V < Verify; ++V)
    if (Form.evaluateAt(Unknowns + V) != Values[Unknowns + V])
      return std::nullopt;
  return Form;
}

std::optional<ClosedForm> solveLinearRecurrenceImpl(const Rational &A,
                                                    const ClosedForm &B,
                                                    const Affine &Init) {
  // Fast path: X' = X + c is the classical linear induction variable.
  if (A.isOne() && B.isInvariant())
    return ClosedForm::linear(Init, B.initialValue());

  if (A.isZero()) {
    // X(h) = B(h-1) for every h >= 1: the value forgets its past each
    // iteration.  That is a single closed form only when the shifted
    // forcing already passes through Init at h = 0; otherwise the caller
    // models it as an order-1 wrap-around into B.
    std::optional<ClosedForm> S = B.shifted(-1);
    if (S && S->evaluateAt(0) == Init)
      return S;
    return std::nullopt;
  }

  // Choose the basis the solution can be written in.
  //  - A == 1: summing B raises the polynomial degree by one; each
  //    exponential term q(h)*b^h sums to r(h)*b^h + const with deg r =
  //    deg q (b != 1), so the exponential shape carries over.
  //  - A == a (integer, != 0, 1): the homogeneous part contributes a^h; the
  //    particular solution matches B's shape, except the resonant base
  //    b == a, whose coefficient degree grows by one (c*a^h forces
  //    c*h*a^(h-1) into the solution -- the h*2^h case).
  // Non-integer A needs rational bases, which the representation (by
  // design, like the paper's) does not cover.
  if (!A.isInteger())
    return std::nullopt;
  const int64_t ABase = A.getInteger();

  unsigned PolyDeg = B.degree();
  std::map<int64_t, unsigned> ExpDeg;
  for (const auto &[Base, Coeff] : B.geoTerms())
    ExpDeg[Base] = unsigned(Coeff.size() - 1);
  if (ABase == 1) {
    PolyDeg += 1;
  } else {
    auto It = ExpDeg.find(ABase);
    if (It != ExpDeg.end())
      It->second += 1; // resonance
    else
      ExpDeg[ABase] = 0; // homogeneous term
  }

  const unsigned Unknowns = countUnknowns(PolyDeg, ExpDeg);
  if (Unknowns > MaxUnknowns) {
    NumTooLarge.bump();
    return std::nullopt;
  }

  // First Unknowns values of X, plus one more to verify the basis guess.
  std::vector<Affine> Values;
  Values.reserve(Unknowns + 1);
  Values.push_back(Init);
  for (unsigned H = 0; H < Unknowns; ++H)
    Values.push_back(Values.back() * A + B.evaluateAt(H));

  return fitExpPoly(PolyDeg, ExpDeg, Values, 1);
}

std::vector<std::optional<ClosedForm>>
solveLinearSystemImpl(const RatMatrix &M, const std::vector<ClosedForm> &B,
                      const std::vector<Affine> &Init) {
  const unsigned P = M.rows();
  assert(M.cols() == P && B.size() == P && Init.size() == P &&
         "malformed system");
  std::vector<std::optional<ClosedForm>> Out(P);
  if (P == 0 || P > MaxSystemSize)
    return Out;
  if (P == 1) {
    Out[0] = solveLinearRecurrence(M.at(0, 0), B[0], Init[0]);
    return Out;
  }
  NumSystems.bump();

  // Characteristic polynomial of M via Faddeev-LeVerrier, exact over the
  // rationals: char(x) = x^P + C[1]*x^(P-1) + ... + C[P].
  std::vector<Rational> C(P + 1);
  C[0] = Rational(1);
  RatMatrix N = RatMatrix::identity(P);
  for (unsigned K = 1; K <= P; ++K) {
    const RatMatrix MN = M * N;
    Rational Tr;
    for (unsigned I = 0; I < P; ++I)
      Tr = Tr + MN.at(I, I);
    C[K] = -(Tr / Rational(int64_t(K)));
    N = MN;
    for (unsigned I = 0; I < P; ++I)
      N.at(I, I) = N.at(I, I) + C[K];
  }

  // Representable solutions need every eigenvalue to be a nonzero integer.
  // Then the monic characteristic polynomial has integer coefficients and
  // every root divides the constant term, so deflate by each candidate
  // divisor (synthetic division over the rationals, counting multiplicity).
  for (unsigned K = 1; K <= P; ++K)
    if (!C[K].isInteger()) {
      NumBadEigen.bump();
      return Out;
    }
  const int64_t Const = C[P].getInteger();
  if (Const == 0) {
    // Zero eigenvalue: the system has a finite memory component, which the
    // classifier models as wrap-around, not as a closed form.
    NumBadEigen.bump();
    return Out;
  }
  const int64_t AbsC = Const < 0 ? -Const : Const;
  std::vector<int64_t> Divs;
  for (int64_t D = 1; D * D <= AbsC; ++D)
    if (AbsC % D == 0) {
      Divs.push_back(D);
      if (D != AbsC / D)
        Divs.push_back(AbsC / D);
    }
  std::sort(Divs.begin(), Divs.end());

  std::vector<Rational> Poly(C); // highest power first, Poly[0] == 1
  std::map<int64_t, unsigned> Mult;
  for (int64_t D : Divs)
    for (int64_t Sign : {int64_t(1), int64_t(-1)}) {
      const Rational R(Sign * D);
      while (Poly.size() > 1) {
        // Synthetic division by (x - R): Horner accumulators are the
        // quotient coefficients, the final one the remainder.
        std::vector<Rational> Q;
        Rational Acc;
        for (const Rational &Co : Poly) {
          Acc = Acc * R + Co;
          Q.push_back(Acc);
        }
        if (!Q.back().isZero())
          break;
        Q.pop_back();
        Poly = std::move(Q);
        ++Mult[Sign * D];
      }
    }
  if (Poly.size() > 1) {
    // Residual factor with no integer roots: irrational or complex
    // eigenvalues, outside the representable space.
    NumBadEigen.bump();
    return Out;
  }

  // Basis shape.  Coupling mixes every component's forcing into every
  // solution, so take the max forcing shape across components; eigenvalue 1
  // with multiplicity m raises the polynomial degree by m, any other
  // eigenvalue b raises the coefficient degree of b^h by its multiplicity
  // (repeated roots and resonance both land in the h^j * b^h columns).
  unsigned FPoly = 0;
  std::map<int64_t, unsigned> ExpDeg;
  for (const ClosedForm &Bi : B) {
    FPoly = std::max(FPoly, Bi.degree());
    for (const auto &[Base, Coeff] : Bi.geoTerms()) {
      unsigned &D = ExpDeg[Base];
      D = std::max(D, unsigned(Coeff.size() - 1));
    }
  }
  auto MultOneIt = Mult.find(1);
  const unsigned MultOne = MultOneIt == Mult.end() ? 0 : MultOneIt->second;
  if (MultOneIt != Mult.end())
    Mult.erase(MultOneIt);
  const unsigned PolyDeg = FPoly + MultOne;
  for (const auto &[R, MuR] : Mult)
    ExpDeg[R] += MuR; // creates the entry for eigenvalue-only bases

  const unsigned Unknowns = countUnknowns(PolyDeg, ExpDeg);
  if (Unknowns > MaxUnknowns) {
    NumTooLarge.bump();
    return Out;
  }

  // Symbolic iterates of the whole vector; two verification iterates per
  // component (systems have more ways to alias on few points than the
  // scalar solve).
  const unsigned Verify = 2;
  std::vector<std::vector<Affine>> Vals(P);
  for (unsigned I = 0; I < P; ++I) {
    Vals[I].reserve(Unknowns + Verify);
    Vals[I].push_back(Init[I]);
  }
  std::vector<Affine> Cur = Init;
  for (unsigned H = 0; H + 1 < Unknowns + Verify; ++H) {
    std::vector<Affine> Next(P);
    for (unsigned I = 0; I < P; ++I) {
      Affine S = B[I].evaluateAt(H);
      for (unsigned J = 0; J < P; ++J)
        S += Cur[J] * M.at(I, J);
      Next[I] = S;
      Vals[I].push_back(Next[I]);
    }
    Cur = std::move(Next);
  }

  // Per-component fit: a component whose solution leaves the space (or
  // overflows) simply stays nullopt -- that is the partial-solve result the
  // classifier projects out.
  for (unsigned I = 0; I < P; ++I)
    try {
      Out[I] = fitExpPoly(PolyDeg, ExpDeg, Vals[I], Verify);
    } catch (const RationalOverflow &) {
      NumOverflows.bump();
    }
  return Out;
}

} // namespace

std::optional<ClosedForm>
biv::ivclass::solveLinearRecurrence(const Rational &A, const ClosedForm &B,
                                    const Affine &Init) {
  try {
    return solveLinearRecurrenceImpl(A, B, Init);
  } catch (const RationalOverflow &) {
    NumOverflows.bump();
    return std::nullopt;
  }
}

std::vector<std::optional<ClosedForm>>
biv::ivclass::solveLinearSystem(const RatMatrix &M,
                                const std::vector<ClosedForm> &B,
                                const std::vector<Affine> &Init) {
  try {
    return solveLinearSystemImpl(M, B, Init);
  } catch (const RationalOverflow &) {
    NumOverflows.bump();
    return std::vector<std::optional<ClosedForm>>(M.rows());
  }
}
