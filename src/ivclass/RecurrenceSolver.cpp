//===- ivclass/RecurrenceSolver.cpp - Matrix-based recurrence solving ----------===//

#include "ivclass/RecurrenceSolver.h"
#include "support/Matrix.h"
#include "support/Stats.h"
#include <vector>

using namespace biv;
using namespace biv::ivclass;

namespace {

std::optional<ClosedForm> solveLinearRecurrenceImpl(const Rational &A,
                                                    const ClosedForm &B,
                                                    const Affine &Init) {
  // Fast path: X' = X + c is the classical linear induction variable.
  if (A.isOne() && B.isInvariant())
    return ClosedForm::linear(Init, B.initialValue());

  if (A.isZero())
    return std::nullopt;

  // Choose the basis the solution can be written in.
  //  - A == 1: summing B raises the polynomial degree by one and each
  //    exponential term of B stays an exponential (plus a constant).
  //  - A == a (integer, != 0, 1): the homogeneous part contributes a^h; the
  //    particular solution matches B's polynomial degree and bases.
  // A resonant base (a appearing in B) or a non-integer A needs h*a^h or
  // rational bases, which the representation (by design, like the paper's)
  // does not cover -- the verification step below rejects those.
  unsigned Degree;
  std::vector<int64_t> Bases;
  for (const auto &[Base, Coeff] : B.geoTerms()) {
    (void)Coeff;
    Bases.push_back(Base);
  }
  if (A.isOne()) {
    Degree = B.degree() + 1;
  } else {
    if (!A.isInteger())
      return std::nullopt;
    Degree = B.degree();
    int64_t ABase = A.getInteger();
    bool Present = false;
    for (int64_t BBase : Bases)
      Present |= BBase == ABase;
    if (!Present)
      Bases.push_back(ABase);
  }

  const unsigned Unknowns = Degree + 1 + Bases.size();

  // First Unknowns values of X, plus one more to verify the basis guess.
  std::vector<Affine> Values;
  Values.reserve(Unknowns + 1);
  Values.push_back(Init);
  for (unsigned H = 0; H < Unknowns; ++H)
    Values.push_back(Values.back() * A + B.evaluateAt(H));

  // Basis-value matrix for h = 0 .. Unknowns-1.
  RatMatrix M(Unknowns, Unknowns);
  for (unsigned H = 0; H < Unknowns; ++H) {
    for (unsigned K = 0; K <= Degree; ++K)
      M.at(H, K) = Rational(int64_t(H)).pow(K);
    for (unsigned J = 0; J < Bases.size(); ++J)
      M.at(H, Degree + 1 + J) = Rational(Bases[J]).pow(H);
  }

  std::vector<Affine> RHS(Values.begin(), Values.begin() + Unknowns);
  std::optional<std::vector<Affine>> Coeffs = M.solveAffine(RHS);
  if (!Coeffs)
    return std::nullopt;

  std::vector<Affine> Poly(Coeffs->begin(), Coeffs->begin() + Degree + 1);
  std::map<int64_t, Affine> Geo;
  for (unsigned J = 0; J < Bases.size(); ++J)
    Geo[Bases[J]] = (*Coeffs)[Degree + 1 + J];
  ClosedForm Form = ClosedForm::make(std::move(Poly), std::move(Geo));

  // Verify on the extra iterate; a wrong basis guess fails here.
  if (Form.evaluateAt(Unknowns) != Values[Unknowns])
    return std::nullopt;
  return Form;
}

} // namespace

std::optional<ClosedForm>
biv::ivclass::solveLinearRecurrence(const Rational &A, const ClosedForm &B,
                                    const Affine &Init) {
  // The iterate values, Vandermonde-style basis matrix, and Gauss-Jordan
  // elimination all run in exact rational arithmetic; a high-order
  // recurrence (degree-k polynomial IVs produce determinants that grow
  // superfactorially) can push an intermediate past int64 even though every
  // input fits.  Overflow is not a wrong answer -- it means the closed form
  // is not representable here -- so report "no closed form" instead of
  // computing with wrapped numbers.
  static const stats::Counter NumOverflows("ivclass.solver.overflow");
  try {
    return solveLinearRecurrenceImpl(A, B, Init);
  } catch (const RationalOverflow &) {
    NumOverflows.bump();
    return std::nullopt;
  }
}
