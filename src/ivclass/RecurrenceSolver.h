//===- ivclass/RecurrenceSolver.h - Matrix-based recurrence solving -*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solves the first-order recurrences the classifier extracts from a
/// strongly connected region:
///
///   X(0)    = Init
///   X(h+1)  = A * X(h) + B(h)        for h >= 0
///
/// with A a rational constant and B a ClosedForm, using the paper's method
/// (section 4.3): pick the basis functions the solution can use (powers of h
/// up to the expected degree plus the exponential bases), compute the first
/// values of X symbolically, build the integer matrix of basis values,
/// invert it over the rationals, and multiply by the computed values.  The
/// solution is verified against one extra iterate, so a wrong basis guess
/// (e.g. the resonant case A = g appearing in B's bases, which needs h*g^h)
/// safely returns nullopt instead of a bogus form.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IVCLASS_RECURRENCESOLVER_H
#define BEYONDIV_IVCLASS_RECURRENCESOLVER_H

#include "ivclass/ClosedForm.h"
#include <optional>

namespace biv {
namespace ivclass {

/// Solves X(h+1) = A*X(h) + B(h), X(0) = Init.  Returns the closed form of
/// X, or nullopt when the solution is outside the representable space.
std::optional<ClosedForm> solveLinearRecurrence(const Rational &A,
                                                const ClosedForm &B,
                                                const Affine &Init);

} // namespace ivclass
} // namespace biv

#endif // BEYONDIV_IVCLASS_RECURRENCESOLVER_H
