//===- ivclass/RecurrenceSolver.h - Matrix-based recurrence solving -*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solves the c-finite recurrences the classifier extracts from a strongly
/// connected region:
///
///   X(0)    = Init
///   X(h+1)  = A * X(h) + B(h)        for h >= 0
///
/// with A a rational constant and B a ClosedForm, plus the coupled
/// constant-coefficient generalization X(h+1) = M * X(h) + B(h) over the
/// RatMatrix machinery, using the paper's method (section 4.3): pick the
/// basis functions the solution can be written in (powers of h plus
/// h^j * b^h exponential-polynomial terms), compute the first values of X
/// symbolically, build the integer matrix of basis values, solve it over the
/// rationals, and verify the fit against extra iterates.  The basis now
/// covers the resonant case A appearing in B's bases (which needs h*A^h)
/// and repeated integer eigenvalues of coupled systems; anything outside
/// the exponential-polynomial space (rational or irrational eigenvalues,
/// zero eigenvalues past order one) safely returns nullopt, never a bogus
/// form, because the verification iterates reject a wrong basis guess.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IVCLASS_RECURRENCESOLVER_H
#define BEYONDIV_IVCLASS_RECURRENCESOLVER_H

#include "ivclass/ClosedForm.h"
#include "support/Matrix.h"
#include <optional>
#include <vector>

namespace biv {
namespace ivclass {

/// Largest coupled system solveLinearSystem() accepts: the Faddeev-
/// LeVerrier + deflation pipeline is exact-rational and its cost (and
/// overflow odds) grow fast with the dimension.  Callers that can shrink a
/// system (peeling, subsetting) should do so before handing it over.
inline constexpr unsigned MaxSystemSize = 4;

/// Solves X(h+1) = A*X(h) + B(h), X(0) = Init.  Returns the closed form of
/// X, or nullopt when the solution is outside the representable space.
std::optional<ClosedForm> solveLinearRecurrence(const Rational &A,
                                                const ClosedForm &B,
                                                const Affine &Init);

/// Solves the coupled constant-coefficient system
///
///   X(0)    = Init                  (component i starts at Init[i])
///   X(h+1)  = M * X(h) + B(h)       (component i adds forcing B[i])
///
/// over the exponential-polynomial space.  Returns one entry per component:
/// its closed form, or nullopt for components that could not be fitted.  The
/// whole vector is nullopt when the characteristic polynomial of M has roots
/// outside the nonzero integers (no component is representable then).
/// Requires M square with B.size() == Init.size() == M.rows().
std::vector<std::optional<ClosedForm>>
solveLinearSystem(const RatMatrix &M, const std::vector<ClosedForm> &B,
                  const std::vector<Affine> &Init);

} // namespace ivclass
} // namespace biv

#endif // BEYONDIV_IVCLASS_RECURRENCESOLVER_H
