//===- ivclass/Summarize.h - Multi-branch loop summarization ----*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-branch loop summarization (beyond the paper).
///
/// The classifier punts on loops whose carried update differs per control
/// path ("Multiple paths or an unsolvable recurrence").  Many of those
/// loops are still exactly summarizable because their taken-branch sequence
/// cycles with a small period k: a flip-flop selects `z += 5` and `z -= 2`
/// alternately, a period-3 ring drives a three-arm selector, and so on.
/// The summarizer recovers them in three steps:
///
///  1. *Sample*: run the function with the interpreter on a few argument
///     vectors, slice the block trace into per-iteration paths, and
///     conjecture the smallest period k <= SummarizeMaxPeriod such that
///     every observed activation repeats its paths with period k.
///  2. *Prove*: symbolically evaluate each phase path over the SSA graph as
///     X(h+1) = M_p * X(h) + b_p(h) (X = the loop's unknown header phis),
///     compose the per-cycle update, solve it with the recurrence solver,
///     and discharge one proof obligation per in-loop conditional branch:
///     its condition must be provably constant on every phase given the
///     solved forms.  Exit tests are exempt -- a completed iteration
///     follows the stay side by definition, so the per-phase claim is
///     conditional on the iteration happening at all.
///  3. *Report*: period 1 upgrades the phis to plain closed forms; period
///     k >= 2 reports IVKind::PhasePeriodic with one form per phase (plus
///     the composed whole-cycle form as phase 0), consumable by the trip
///     count and, where the interleaved sequence is strictly monotone, the
///     dependence tests.
///
/// A disproved conjecture (or a solver/arithmetic failure) falls back to
/// the classifier's result: summarization only ever upgrades Unknown
/// header phis, never touches solved ones.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IVCLASS_SUMMARIZE_H
#define BEYONDIV_IVCLASS_SUMMARIZE_H

#include "ivclass/InductionAnalysis.h"

namespace biv {
namespace ivclass {

/// Longest branch-cycle period the conjecture considers; larger cycles are
/// left to the monotonic fallback (documented in DESIGN.md section 14).
inline constexpr unsigned SummarizeMaxPeriod = 6;

/// Number of interpreter probe runs per summarized loop; every function
/// argument receives the same seed value within one run, and the runs
/// differ only in that seed (documented in DESIGN.md section 14).
inline constexpr unsigned SummarizeSampleCount = 3;

/// Instruction budget of one probe run; probes past the budget contribute
/// the iterations they completed.
inline constexpr uint64_t SummarizeSampleSteps = 8192;

/// Cap on simultaneously-unknown header phis per summarized loop: bounds
/// the per-phase transfer matrices and cycle composition.  Deliberately
/// wider than the recurrence solver's MaxSystemSize -- reset-variable
/// peeling usually shrinks the coupled core well below the closure's size,
/// and the prover defers one variable at a time when it does not.
inline constexpr unsigned SummarizeMaxVars = 8;

/// Attempts to summarize \p L: conjectures a period-k branch cycle from
/// interpreter samples, proves it over the SSA graph, and upgrades provable
/// Unknown header phis in \p Map to PhasePeriodic (k >= 2) or plain closed
/// forms (k == 1).  Runs after the classifier and never downgrades an
/// existing classification.  Read-only with respect to the IR.
void summarizeLoop(InductionAnalysis &IA, const analysis::Loop *L,
                   ClassTable &Map);

} // namespace ivclass
} // namespace biv

#endif // BEYONDIV_IVCLASS_SUMMARIZE_H
