//===- ivclass/Report.h - Classification report -----------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A human-readable summary of an InductionAnalysis run: per loop, the trip
/// count and the classification tuple of every loop-header phi (and,
/// optionally, of every value in the loop), in the paper's notation.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_IVCLASS_REPORT_H
#define BEYONDIV_IVCLASS_REPORT_H

#include "ivclass/InductionAnalysis.h"
#include "ssa/SSABuilder.h"
#include <string>

namespace biv {
namespace ivclass {

/// Options for report rendering.
struct ReportOptions {
  /// Include every classified instruction, not just the header phis.
  bool AllValues = false;
  /// Expand nested tuples, e.g. (L18, (L17, 0, 204), 2).
  bool NestedTuples = true;
};

/// Renders the analysis results.  \p Info (when available) lets header phis
/// print under their source variable names.
std::string report(InductionAnalysis &IA, const ssa::SSAInfo *Info = nullptr,
                   const ReportOptions &Opts = ReportOptions());

/// Per-kind counts across all loops of the function (coverage tables).
struct KindCounts {
  unsigned Linear = 0;
  unsigned Polynomial = 0;
  unsigned Geometric = 0;
  unsigned CFinite = 0;
  unsigned WrapAround = 0;
  unsigned Periodic = 0;
  unsigned Monotonic = 0;
  unsigned PhasePeriodic = 0;
  unsigned Invariant = 0;
  unsigned Unknown = 0;
  /// Header phis whose closed form was projected out of an otherwise
  /// unsolvable region (subset of the closed-form kind counts above).
  unsigned Partial = 0;

  unsigned classified() const {
    return Linear + Polynomial + Geometric + CFinite + WrapAround +
           Periodic + Monotonic + PhasePeriodic + Invariant;
  }

  /// Accumulates \p O (batch drivers merge per-function counts).
  KindCounts &operator+=(const KindCounts &O) {
    Linear += O.Linear;
    Polynomial += O.Polynomial;
    Geometric += O.Geometric;
    CFinite += O.CFinite;
    WrapAround += O.WrapAround;
    Periodic += O.Periodic;
    Monotonic += O.Monotonic;
    PhasePeriodic += O.PhasePeriodic;
    Invariant += O.Invariant;
    Unknown += O.Unknown;
    Partial += O.Partial;
    return *this;
  }
};

/// Counts the classification kinds of all loop-header phis.
KindCounts countHeaderPhiKinds(InductionAnalysis &IA);

} // namespace ivclass
} // namespace biv

#endif // BEYONDIV_IVCLASS_REPORT_H
