//===- ivclass/Pipeline.cpp - Source-to-analysis facade -------------------------===//

#include "ivclass/Pipeline.h"
#include "frontend/Lowering.h"
#include "ssa/SCCP.h"
#include "ssa/SSAVerifier.h"
#include <cstdio>
#include <cstdlib>

using namespace biv;
using namespace biv::ivclass;

std::optional<AnalyzedProgram>
biv::ivclass::parseSource(const std::string &Source,
                          std::vector<std::string> &Errors) {
  AnalyzedProgram P;
  P.F = frontend::parseAndLower(Source, Errors);
  if (!P.F)
    return std::nullopt;
  P.Info = ssa::buildSSA(*P.F);
  ssa::verifySSAOrDie(*P.F);
  return P;
}

void biv::ivclass::analyzeParsed(AnalyzedProgram &P,
                                 const PipelineOptions &Opts) {
  if (Opts.RunSCCP) {
    // Fold-only: branch pruning could delete the loops under analysis.
    ssa::runSCCP(*P.F, /*SimplifyCFG=*/false);
    if (Opts.VerifyEach)
      ssa::verifySSAOrDie(*P.F);
  }
  P.DT = std::make_unique<analysis::DominatorTree>(*P.F);
  P.LI = std::make_unique<analysis::LoopInfo>(*P.F, *P.DT);
  P.IA = std::make_unique<InductionAnalysis>(*P.F, *P.DT, *P.LI,
                                             Opts.Analysis);
  P.IA->run();
}

std::optional<AnalyzedProgram>
biv::ivclass::analyzeSource(const std::string &Source,
                            std::vector<std::string> &Errors,
                            const PipelineOptions &Opts) {
  std::optional<AnalyzedProgram> P = parseSource(Source, Errors);
  if (P)
    analyzeParsed(*P, Opts);
  return P;
}

std::vector<std::optional<AnalyzedProgram>>
biv::ivclass::analyzeSources(const std::vector<std::string> &Sources,
                             std::vector<std::vector<std::string>> &Errors,
                             const PipelineOptions &Opts) {
  std::vector<std::optional<AnalyzedProgram>> Results;
  Results.reserve(Sources.size());
  Errors.assign(Sources.size(), {});
  for (size_t I = 0; I < Sources.size(); ++I)
    Results.push_back(analyzeSource(Sources[I], Errors[I], Opts));
  return Results;
}

AnalyzedProgram
biv::ivclass::analyzeSourceOrDie(const std::string &Source,
                                 const PipelineOptions &Opts) {
  std::vector<std::string> Errors;
  std::optional<AnalyzedProgram> P = analyzeSource(Source, Errors, Opts);
  if (P)
    return std::move(*P);
  std::fprintf(stderr, "analyzeSource failed:\n");
  for (const std::string &E : Errors)
    std::fprintf(stderr, "  %s\n", E.c_str());
  std::abort();
}
