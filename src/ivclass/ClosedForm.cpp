//===- ivclass/ClosedForm.cpp - Closed forms of recurrences -------------------===//

#include "ivclass/ClosedForm.h"

using namespace biv;
using namespace biv::ivclass;

namespace {

void trimTrailingZeros(std::vector<Affine> &P) {
  while (!P.empty() && P.back().isZero())
    P.pop_back();
}

} // namespace

void ClosedForm::normalize() {
  trimTrailingZeros(Poly);
  for (auto It = Geo.begin(); It != Geo.end();) {
    assert(It->first != 0 && It->first != 1 && "degenerate exponential base");
    trimTrailingZeros(It->second);
    if (It->second.empty())
      It = Geo.erase(It);
    else
      ++It;
  }
}

ClosedForm ClosedForm::constant(Affine C) {
  ClosedForm F;
  if (!C.isZero())
    F.Poly.push_back(std::move(C));
  return F;
}

ClosedForm ClosedForm::counter() { return linear(Affine(0), Affine(1)); }

ClosedForm ClosedForm::linear(Affine Init, Affine Step) {
  ClosedForm F;
  F.Poly.push_back(std::move(Init));
  F.Poly.push_back(std::move(Step));
  F.normalize();
  return F;
}

ClosedForm ClosedForm::make(std::vector<Affine> Poly,
                            std::map<int64_t, Affine> Geo) {
  std::map<int64_t, ExpPoly> Wide;
  for (auto &[Base, Coeff] : Geo)
    Wide[Base] = {std::move(Coeff)};
  return makeExp(std::move(Poly), std::move(Wide));
}

ClosedForm ClosedForm::makeExp(std::vector<Affine> Poly,
                               std::map<int64_t, ExpPoly> Geo) {
  ClosedForm F;
  F.Poly = std::move(Poly);
  for (auto &[Base, Coeff] : Geo) {
    if (Base == 1) {
      // Base-1 exponentials are plain polynomial terms.
      if (F.Poly.size() < Coeff.size())
        F.Poly.resize(Coeff.size());
      for (size_t J = 0; J < Coeff.size(); ++J)
        F.Poly[J] += Coeff[J];
      continue;
    }
    F.Geo[Base] = std::move(Coeff);
  }
  F.normalize();
  return F;
}

Affine ClosedForm::initialValue() const {
  Affine V = coeff(0);
  for (const auto &[Base, Coeff] : Geo) {
    (void)Base; // b^0 == 1 and h^j vanishes at h = 0 for j > 0
    if (!Coeff.empty())
      V += Coeff[0];
  }
  return V;
}

ClosedForm ClosedForm::operator-() const {
  ClosedForm F;
  for (const Affine &C : Poly)
    F.Poly.push_back(-C);
  for (const auto &[Base, Coeff] : Geo) {
    ExpPoly N;
    for (const Affine &C : Coeff)
      N.push_back(-C);
    F.Geo[Base] = std::move(N);
  }
  return F;
}

ClosedForm ClosedForm::operator+(const ClosedForm &RHS) const {
  ClosedForm F = *this;
  if (F.Poly.size() < RHS.Poly.size())
    F.Poly.resize(RHS.Poly.size());
  for (size_t K = 0; K < RHS.Poly.size(); ++K)
    F.Poly[K] += RHS.Poly[K];
  for (const auto &[Base, Coeff] : RHS.Geo) {
    ExpPoly &Dst = F.Geo[Base];
    if (Dst.size() < Coeff.size())
      Dst.resize(Coeff.size());
    for (size_t J = 0; J < Coeff.size(); ++J)
      Dst[J] += Coeff[J];
  }
  F.normalize();
  return F;
}

ClosedForm ClosedForm::operator-(const ClosedForm &RHS) const {
  // Mirrors operator+ with binary subtraction per coefficient: negating
  // RHS first would throw on INT64_MIN coefficients whose difference fits.
  ClosedForm F = *this;
  if (F.Poly.size() < RHS.Poly.size())
    F.Poly.resize(RHS.Poly.size());
  for (size_t K = 0; K < RHS.Poly.size(); ++K)
    F.Poly[K] -= RHS.Poly[K];
  for (const auto &[Base, Coeff] : RHS.Geo) {
    ExpPoly &Dst = F.Geo[Base]; // default-constructs empty when absent
    if (Dst.size() < Coeff.size())
      Dst.resize(Coeff.size());
    for (size_t J = 0; J < Coeff.size(); ++J)
      Dst[J] -= Coeff[J];
  }
  F.normalize();
  return F;
}

ClosedForm ClosedForm::operator*(const Rational &Scale) const {
  ClosedForm F;
  if (Scale.isZero())
    return F;
  for (const Affine &C : Poly)
    F.Poly.push_back(C * Scale);
  for (const auto &[Base, Coeff] : Geo) {
    ExpPoly N;
    for (const Affine &C : Coeff)
      N.push_back(C * Scale);
    F.Geo[Base] = std::move(N);
  }
  return F;
}

std::optional<ClosedForm> ClosedForm::mulChecked(const ClosedForm &RHS) const {
  // Every pairwise coefficient product must keep at least one affine side
  // constant (Affine::mul); the h/b structure itself is always closed under
  // multiplication in the exponential-polynomial space.
  ClosedForm F;
  // Polynomial x polynomial: coefficient convolution.
  if (!Poly.empty() && !RHS.Poly.empty()) {
    F.Poly.assign(Poly.size() + RHS.Poly.size() - 1, Affine());
    for (size_t I = 0; I < Poly.size(); ++I)
      for (size_t J = 0; J < RHS.Poly.size(); ++J) {
        if (Poly[I].isZero() || RHS.Poly[J].isZero())
          continue;
        std::optional<Affine> P = Affine::mul(Poly[I], RHS.Poly[J]);
        if (!P)
          return std::nullopt;
        F.Poly[I + J] += *P;
      }
  }
  // Adds Coeff * h^Shift * Base^h into the accumulating form, folding
  // base 1 into the polynomial part.
  auto addExp = [&](int64_t Base, const ExpPoly &Coeff,
                    size_t Shift) -> bool {
    std::vector<Affine> &Dst = Base == 1 ? F.Poly : F.Geo[Base];
    if (Dst.size() < Coeff.size() + Shift)
      Dst.resize(Coeff.size() + Shift);
    for (size_t J = 0; J < Coeff.size(); ++J)
      Dst[J + Shift] += Coeff[J];
    return true;
  };
  // Exponential x exponential: bases multiply, coefficients convolve.
  for (const auto &[B1, C1] : Geo)
    for (const auto &[B2, C2] : RHS.Geo) {
      ExpPoly Conv(C1.size() + C2.size() - 1, Affine());
      for (size_t I = 0; I < C1.size(); ++I)
        for (size_t J = 0; J < C2.size(); ++J) {
          if (C1[I].isZero() || C2[J].isZero())
            continue;
          std::optional<Affine> P = Affine::mul(C1[I], C2[J]);
          if (!P)
            return std::nullopt;
          Conv[I + J] += *P;
        }
      addExp(B1 * B2, Conv, 0);
    }
  // Polynomial x exponential cross terms: h^k * (p(h) * b^h) shifts the
  // coefficient polynomial by k.
  auto crossTerms = [&](const std::vector<Affine> &P,
                        const std::map<int64_t, ExpPoly> &G) -> bool {
    for (size_t K = 0; K < P.size(); ++K) {
      if (P[K].isZero())
        continue;
      for (const auto &[Base, Coeff] : G) {
        ExpPoly Scaled;
        for (const Affine &C : Coeff) {
          std::optional<Affine> Prod = Affine::mul(P[K], C);
          if (!Prod)
            return false;
          Scaled.push_back(*Prod);
        }
        addExp(Base, Scaled, K);
      }
    }
    return true;
  };
  if (!crossTerms(Poly, RHS.Geo) || !crossTerms(RHS.Poly, Geo))
    return std::nullopt;
  F.normalize();
  return F;
}

Affine ClosedForm::evaluateAt(int64_t H) const {
  assert(H >= 0 && "iterations are numbered from zero");
  Affine V;
  Rational HPow(1);
  for (size_t K = 0; K < Poly.size(); ++K) {
    V += Poly[K] * HPow;
    HPow *= Rational(H);
  }
  for (const auto &[Base, Coeff] : Geo) {
    Rational BPow = Rational(Base).pow(H);
    Rational HP(1);
    for (size_t J = 0; J < Coeff.size(); ++J) {
      V += Coeff[J] * (HP * BPow);
      HP *= Rational(H);
    }
  }
  return V;
}

std::optional<ClosedForm> ClosedForm::shifted(int64_t Delta) const {
  ClosedForm F;
  // Substitutes (h + Delta)^k via binomial expansion into Dst (index = new
  // power of h), scaling every contribution by Scale.
  auto shiftPoly = [&](const std::vector<Affine> &Src,
                       std::vector<Affine> &Dst, const Rational &Scale) {
    if (Dst.size() < Src.size())
      Dst.resize(Src.size());
    for (size_t K = 0; K < Src.size(); ++K) {
      if (Src[K].isZero())
        continue;
      // (h+D)^K = sum_j C(K,j) D^(K-j) h^j.
      Rational Binom(1); // C(K, 0)
      for (size_t J = 0; J <= K; ++J) {
        Rational Term =
            Binom * Rational(Delta).pow(static_cast<int64_t>(K - J));
        Dst[J] += Src[K] * (Term * Scale);
        // C(K, J+1) = C(K, J) * (K-J) / (J+1).
        Binom = Binom * Rational(static_cast<int64_t>(K - J)) /
                Rational(static_cast<int64_t>(J + 1));
      }
    }
  };
  shiftPoly(Poly, F.Poly, Rational(1));
  // Exponential part: p(h+D) * b^(h+D) = (p(h+D) * b^D) * b^h.
  for (const auto &[Base, Coeff] : Geo) {
    if (Base == 0)
      return std::nullopt;
    ExpPoly Dst;
    shiftPoly(Coeff, Dst, Rational(Base).pow(Delta));
    F.Geo[Base] = std::move(Dst);
  }
  F.normalize();
  return F;
}

std::optional<ClosedForm> ClosedForm::atLinear(int64_t K, int64_t P) const {
  assert(K >= 1 && P >= 0 && "stretch needs a forward affine reindexing");
  // Substitutes (K*c + P)^k via binomial expansion into Dst (index = power
  // of c), scaling every contribution by Scale.
  auto stretchPoly = [&](const std::vector<Affine> &Src,
                         std::vector<Affine> &Dst, const Rational &Scale) {
    if (Dst.size() < Src.size())
      Dst.resize(Src.size());
    for (size_t N = 0; N < Src.size(); ++N) {
      if (Src[N].isZero())
        continue;
      // (K*c + P)^N = sum_j C(N,j) K^j P^(N-j) c^j.
      Rational Binom(1); // C(N, 0)
      for (size_t J = 0; J <= N; ++J) {
        Rational Term = Binom * Rational(K).pow(static_cast<int64_t>(J)) *
                        Rational(P).pow(static_cast<int64_t>(N - J));
        Dst[J] += Src[N] * (Term * Scale);
        Binom = Binom * Rational(static_cast<int64_t>(N - J)) /
                Rational(static_cast<int64_t>(J + 1));
      }
    }
  };
  std::vector<Affine> NewPoly;
  stretchPoly(Poly, NewPoly, Rational(1));
  std::map<int64_t, ExpPoly> NewGeo;
  // p(h) * b^h at h = K*c+P is (p(K*c+P) * b^P) * (b^K)^c.
  for (const auto &[Base, Coeff] : Geo) {
    Rational Stretched = Rational(Base).pow(K);
    if (!Stretched.isInteger())
      return std::nullopt;
    int64_t NewBase = Stretched.getInteger();
    ExpPoly Dst = NewGeo.count(NewBase) ? NewGeo[NewBase] : ExpPoly();
    stretchPoly(Coeff, Dst, Rational(Base).pow(P));
    NewGeo[NewBase] = std::move(Dst);
  }
  // makeExp folds base-1 terms ((-1)^h stretched by an even K) into the
  // polynomial part and normalizes.
  return makeExp(std::move(NewPoly), std::move(NewGeo));
}

std::optional<Affine> ClosedForm::evaluateAtAffine(const Affine &TC) const {
  if (!isLinear())
    return std::nullopt;
  std::optional<Affine> StepTimesTC = Affine::mul(coeff(1), TC);
  if (!StepTimesTC)
    return std::nullopt;
  return coeff(0) + *StepTimesTC;
}

bool ClosedForm::provablyNonDecreasing() const {
  // Differences: d(h) = value(h+1) - value(h); require numeric coefficients
  // that are all >= 0 (then d(h) >= 0 for every h >= 0).
  std::optional<ClosedForm> Next = shifted(1);
  if (!Next)
    return false;
  return (*Next - *this).provablyNonNegative();
}

bool ClosedForm::provablyIncreasing() const {
  std::optional<ClosedForm> Next = shifted(1);
  if (!Next)
    return false;
  ClosedForm Diff = *Next - *this;
  // Strictly positive: non-negative and value(0) of the difference > 0 with
  // every coefficient numeric and >= 0 (so it can never dip back to zero)...
  // except that a zero difference form must be rejected.
  if (!Diff.provablyNonNegative())
    return false;
  std::optional<Rational> At0 = Diff.evaluateAt(0).getConstant();
  return At0 && At0->isPositive();
}

bool ClosedForm::provablyNonNegative() const {
  // Conservative: every coefficient numeric and >= 0, and exponential bases
  // positive (so every h^j * b^h term is >= 0 for h >= 0).
  for (const Affine &C : Poly) {
    std::optional<Rational> V = C.getConstant();
    if (!V || V->isNegative())
      return false;
  }
  for (const auto &[Base, Coeff] : Geo) {
    if (Base <= 0)
      return false;
    for (const Affine &C : Coeff) {
      std::optional<Rational> V = C.getConstant();
      if (!V || V->isNegative())
        return false;
    }
  }
  return true;
}

std::string ClosedForm::str(const SymbolNamer &Namer) const {
  if (isZero())
    return "0";
  std::string Out;
  auto addTerm = [&](const Affine &Coeff, const std::string &Basis) {
    std::string CS = Coeff.str(Namer);
    bool Leading = Out.empty();
    bool Negated = false;
    if (Coeff.isConstant() && Coeff.constantPart().isNegative()) {
      CS = (-Coeff).str(Namer);
      Negated = true;
    }
    if (!Leading)
      Out += Negated ? " - " : " + ";
    else if (Negated)
      Out += "-";
    if (Basis.empty()) {
      Out += CS;
      return;
    }
    if (CS == "1") {
      Out += Basis;
      return;
    }
    // Parenthesize multi-term coefficients.
    if (CS.find(' ') != std::string::npos)
      CS = "(" + CS + ")";
    Out += CS + "*" + Basis;
  };
  auto hPow = [](size_t K) -> std::string {
    return K == 0 ? "" : (K == 1 ? "h" : "h^" + std::to_string(K));
  };
  for (size_t K = 0; K < Poly.size(); ++K) {
    if (Poly[K].isZero())
      continue;
    addTerm(Poly[K], hPow(K));
  }
  // Bases ascend (int64-keyed map), coefficient powers ascend within one
  // base: the order is a function of the form's value, never of pointers.
  for (const auto &[Base, Coeff] : Geo) {
    std::string BaseStr = Base < 0 ? "(" + std::to_string(Base) + ")"
                                   : std::to_string(Base);
    for (size_t J = 0; J < Coeff.size(); ++J) {
      if (Coeff[J].isZero())
        continue;
      std::string Basis = hPow(J);
      if (!Basis.empty())
        Basis += "*";
      addTerm(Coeff[J], Basis + BaseStr + "^h");
    }
  }
  return Out;
}
