//===- ivclass/ClosedForm.cpp - Closed forms of recurrences -------------------===//

#include "ivclass/ClosedForm.h"

using namespace biv;
using namespace biv::ivclass;

void ClosedForm::normalize() {
  while (!Poly.empty() && Poly.back().isZero())
    Poly.pop_back();
  for (auto It = Geo.begin(); It != Geo.end();) {
    assert(It->first != 0 && It->first != 1 && "degenerate exponential base");
    if (It->second.isZero())
      It = Geo.erase(It);
    else
      ++It;
  }
}

ClosedForm ClosedForm::constant(Affine C) {
  ClosedForm F;
  if (!C.isZero())
    F.Poly.push_back(std::move(C));
  return F;
}

ClosedForm ClosedForm::counter() { return linear(Affine(0), Affine(1)); }

ClosedForm ClosedForm::linear(Affine Init, Affine Step) {
  ClosedForm F;
  F.Poly.push_back(std::move(Init));
  F.Poly.push_back(std::move(Step));
  F.normalize();
  return F;
}

ClosedForm ClosedForm::make(std::vector<Affine> Poly,
                            std::map<int64_t, Affine> Geo) {
  ClosedForm F;
  F.Poly = std::move(Poly);
  for (auto &[Base, Coeff] : Geo) {
    if (Base == 1) {
      // Base-1 exponentials are constants.
      if (F.Poly.empty())
        F.Poly.push_back(Affine());
      F.Poly[0] += Coeff;
      continue;
    }
    F.Geo[Base] = std::move(Coeff);
  }
  F.normalize();
  return F;
}

Affine ClosedForm::initialValue() const {
  Affine V = coeff(0);
  for (const auto &[Base, Coeff] : Geo) {
    (void)Base; // b^0 == 1
    V += Coeff;
  }
  return V;
}

ClosedForm ClosedForm::operator-() const {
  ClosedForm F;
  for (const Affine &C : Poly)
    F.Poly.push_back(-C);
  for (const auto &[Base, Coeff] : Geo)
    F.Geo[Base] = -Coeff;
  return F;
}

ClosedForm ClosedForm::operator+(const ClosedForm &RHS) const {
  ClosedForm F = *this;
  if (F.Poly.size() < RHS.Poly.size())
    F.Poly.resize(RHS.Poly.size());
  for (size_t K = 0; K < RHS.Poly.size(); ++K)
    F.Poly[K] += RHS.Poly[K];
  for (const auto &[Base, Coeff] : RHS.Geo)
    F.Geo[Base] += Coeff;
  F.normalize();
  return F;
}

ClosedForm ClosedForm::operator-(const ClosedForm &RHS) const {
  // Mirrors operator+ with binary subtraction per coefficient: negating
  // RHS first would throw on INT64_MIN coefficients whose difference fits.
  ClosedForm F = *this;
  if (F.Poly.size() < RHS.Poly.size())
    F.Poly.resize(RHS.Poly.size());
  for (size_t K = 0; K < RHS.Poly.size(); ++K)
    F.Poly[K] -= RHS.Poly[K];
  for (const auto &[Base, Coeff] : RHS.Geo) {
    F.Geo[Base] -= Coeff; // default-constructs zero when absent
  }
  F.normalize();
  return F;
}

ClosedForm ClosedForm::operator*(const Rational &Scale) const {
  ClosedForm F;
  if (Scale.isZero())
    return F;
  for (const Affine &C : Poly)
    F.Poly.push_back(C * Scale);
  for (const auto &[Base, Coeff] : Geo)
    F.Geo[Base] = Coeff * Scale;
  return F;
}

std::optional<ClosedForm> ClosedForm::mulChecked(const ClosedForm &RHS) const {
  ClosedForm F;
  // Polynomial x polynomial: coefficient convolution; each pairwise product
  // must keep at least one affine side constant.
  if (!Poly.empty() && !RHS.Poly.empty()) {
    F.Poly.assign(Poly.size() + RHS.Poly.size() - 1, Affine());
    for (size_t I = 0; I < Poly.size(); ++I)
      for (size_t J = 0; J < RHS.Poly.size(); ++J) {
        if (Poly[I].isZero() || RHS.Poly[J].isZero())
          continue;
        std::optional<Affine> P = Affine::mul(Poly[I], RHS.Poly[J]);
        if (!P)
          return std::nullopt;
        F.Poly[I + J] += *P;
      }
  }
  // Exponential x exponential: bases multiply.
  for (const auto &[B1, C1] : Geo)
    for (const auto &[B2, C2] : RHS.Geo) {
      std::optional<Affine> P = Affine::mul(C1, C2);
      if (!P)
        return std::nullopt;
      int64_t Base = B1 * B2;
      if (Base == 1) {
        if (F.Poly.empty())
          F.Poly.push_back(Affine());
        F.Poly[0] += *P;
      } else {
        F.Geo[Base] += *P;
      }
    }
  // Polynomial x exponential cross terms: representable only when the
  // polynomial side is the constant h^0 term (h^k * b^h is outside the
  // paper's representation).
  auto crossTerms = [&](const std::vector<Affine> &P,
                        const std::map<int64_t, Affine> &G) -> bool {
    for (size_t K = 0; K < P.size(); ++K) {
      if (P[K].isZero())
        continue;
      for (const auto &[Base, Coeff] : G) {
        if (K > 0)
          return false;
        std::optional<Affine> Prod = Affine::mul(P[K], Coeff);
        if (!Prod)
          return false;
        F.Geo[Base] += *Prod;
      }
    }
    return true;
  };
  if (!crossTerms(Poly, RHS.Geo) || !crossTerms(RHS.Poly, Geo))
    return std::nullopt;
  F.normalize();
  return F;
}

Affine ClosedForm::evaluateAt(int64_t H) const {
  assert(H >= 0 && "iterations are numbered from zero");
  Affine V;
  Rational HPow(1);
  for (size_t K = 0; K < Poly.size(); ++K) {
    V += Poly[K] * HPow;
    HPow *= Rational(H);
  }
  for (const auto &[Base, Coeff] : Geo)
    V += Coeff * Rational(Base).pow(H);
  return V;
}

std::optional<ClosedForm> ClosedForm::shifted(int64_t Delta) const {
  ClosedForm F;
  // Polynomial part: substitute (h + Delta)^k via binomial expansion.
  F.Poly.assign(Poly.size(), Affine());
  for (size_t K = 0; K < Poly.size(); ++K) {
    if (Poly[K].isZero())
      continue;
    // (h+D)^K = sum_j C(K,j) D^(K-j) h^j.
    Rational Binom(1); // C(K, 0)
    for (size_t J = 0; J <= K; ++J) {
      Rational Term = Binom * Rational(Delta).pow(static_cast<int64_t>(K - J));
      F.Poly[J] += Poly[K] * Term;
      // C(K, J+1) = C(K, J) * (K-J) / (J+1).
      Binom = Binom * Rational(static_cast<int64_t>(K - J)) /
              Rational(static_cast<int64_t>(J + 1));
    }
  }
  // Exponential part: b^(h+D) = b^D * b^h; negative D needs b != 0.
  for (const auto &[Base, Coeff] : Geo) {
    if (Base == 0)
      return std::nullopt;
    F.Geo[Base] = Coeff * Rational(Base).pow(Delta);
  }
  F.normalize();
  return F;
}

std::optional<Affine> ClosedForm::evaluateAtAffine(const Affine &TC) const {
  if (!isLinear())
    return std::nullopt;
  std::optional<Affine> StepTimesTC = Affine::mul(coeff(1), TC);
  if (!StepTimesTC)
    return std::nullopt;
  return coeff(0) + *StepTimesTC;
}

bool ClosedForm::provablyNonDecreasing() const {
  // Differences: d(h) = value(h+1) - value(h); require numeric coefficients
  // that are all >= 0 (then d(h) >= 0 for every h >= 0).
  std::optional<ClosedForm> Next = shifted(1);
  if (!Next)
    return false;
  return (*Next - *this).provablyNonNegative();
}

bool ClosedForm::provablyIncreasing() const {
  std::optional<ClosedForm> Next = shifted(1);
  if (!Next)
    return false;
  ClosedForm Diff = *Next - *this;
  // Strictly positive: non-negative and value(0) of the difference > 0 with
  // every coefficient numeric and >= 0 (so it can never dip back to zero)...
  // except that a zero difference form must be rejected.
  if (!Diff.provablyNonNegative())
    return false;
  std::optional<Rational> At0 = Diff.evaluateAt(0).getConstant();
  return At0 && At0->isPositive();
}

bool ClosedForm::provablyNonNegative() const {
  // Conservative: every coefficient numeric and >= 0, and exponential bases
  // positive (so all terms are >= 0 for h >= 0).
  for (const Affine &C : Poly) {
    std::optional<Rational> V = C.getConstant();
    if (!V || V->isNegative())
      return false;
  }
  for (const auto &[Base, Coeff] : Geo) {
    std::optional<Rational> V = Coeff.getConstant();
    if (Base <= 0 || !V || V->isNegative())
      return false;
  }
  return true;
}

std::string ClosedForm::str(const SymbolNamer &Namer) const {
  if (isZero())
    return "0";
  std::string Out;
  auto addTerm = [&](const Affine &Coeff, const std::string &Basis) {
    std::string CS = Coeff.str(Namer);
    bool Leading = Out.empty();
    bool Negated = false;
    if (Coeff.isConstant() && Coeff.constantPart().isNegative()) {
      CS = (-Coeff).str(Namer);
      Negated = true;
    }
    if (!Leading)
      Out += Negated ? " - " : " + ";
    else if (Negated)
      Out += "-";
    if (Basis.empty()) {
      Out += CS;
      return;
    }
    if (CS == "1") {
      Out += Basis;
      return;
    }
    // Parenthesize multi-term coefficients.
    if (CS.find(' ') != std::string::npos)
      CS = "(" + CS + ")";
    Out += CS + "*" + Basis;
  };
  for (size_t K = 0; K < Poly.size(); ++K) {
    if (Poly[K].isZero())
      continue;
    std::string Basis =
        K == 0 ? "" : (K == 1 ? "h" : "h^" + std::to_string(K));
    addTerm(Poly[K], Basis);
  }
  for (const auto &[Base, Coeff] : Geo) {
    std::string BaseStr = Base < 0 ? "(" + std::to_string(Base) + ")"
                                   : std::to_string(Base);
    addTerm(Coeff, BaseStr + "^h");
  }
  return Out;
}
