//===- dependence/DependenceTests.h - Decision algorithms -------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dependence decision algorithms over classified subscripts (section 6).
///
/// For linear subscripts this is the classical suite the paper defers to
/// [GKT91]: ZIV, strong SIV, weak-zero SIV, exact SIV via extended gcd, and
/// GCD + Banerjee bounds with direction-vector refinement for MIV.  The
/// paper's contribution -- handled in DependenceAnalyzer -- is feeding these
/// tests wrap-around, periodic, and monotonic subscripts as well.
///
/// Direction convention: for a source access at iteration vector h and a
/// sink at h', direction LT means h < h' in that loop, EQ means h == h'.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_DEPENDENCE_DEPENDENCETESTS_H
#define BEYONDIV_DEPENDENCE_DEPENDENCETESTS_H

#include "dependence/SubscriptExpr.h"
#include <optional>
#include <string>
#include <vector>

namespace biv {
namespace dependence {

/// Direction bits.
enum Direction : uint8_t {
  DirLT = 1,
  DirEQ = 2,
  DirGT = 4,
  DirAll = DirLT | DirEQ | DirGT,
  DirNone = 0,
};

/// Renders e.g. "(<)", "(<=)", "(*)".
std::string dirSetStr(uint8_t Dirs);

/// Constraint on one common loop of a dependence.
struct LoopDirection {
  const analysis::Loop *L = nullptr;
  uint8_t Dirs = DirAll;
  /// Exact dependence distance (sink minus source iteration) when known.
  std::optional<int64_t> Distance;
  /// Periodic refinement: distance == ModResidue (mod ModPeriod).
  std::optional<unsigned> ModPeriod;
  std::optional<unsigned> ModResidue;
};

/// Result of testing one reference pair (all dimensions combined).
struct DependenceResult {
  enum class Outcome {
    Independent, ///< Proven: no dependence.
    Dependent,   ///< Proven: a dependence exists (e.g. exact distance).
    Maybe,       ///< Must be assumed.
  };
  Outcome O = Outcome::Maybe;

  /// Per common loop, outermost first.  Meaningful unless Independent.
  std::vector<LoopDirection> Directions;

  /// Explicit feasible direction vectors (each entry one Direction bit per
  /// common loop, parallel to Directions).  Kept whenever the nest is
  /// shallow enough (<= 6 loops); combining dimensions intersects these
  /// exactly, which catches couplings per-loop sets cannot (e.g. (=,<)
  /// infeasible although '=' and '<' are separately feasible).  Empty means
  /// "product of the per-loop sets".
  std::vector<std::vector<uint8_t>> Vectors;

  /// Rebuilds the per-loop Dirs sets as the projection of Vectors (no-op
  /// when Vectors is empty, where the per-loop sets stay authoritative).
  /// An Independent result instead clears every per-loop set to DirNone and
  /// drops the vectors: no direction is realizable without a dependence.
  void projectVectors();

  /// Wrap-around subscripts: the relation only holds after this many
  /// iterations (peel candidates; paper section 6).
  unsigned ValidAfterIterations = 0;

  /// Which test decided (for reports and tests).
  std::string Note;

  /// Allowed direction bits for loop \p L (DirAll when unconstrained).
  uint8_t dirsFor(const analysis::Loop *L) const;
};

/// Upper bound on a loop counter h (inclusive): h in [0, U], or unbounded.
struct LoopBound {
  const analysis::Loop *L = nullptr;
  std::optional<int64_t> U;
};

/// Tests a single subscript dimension pair.  \p Common lists the loops
/// shared by source and sink (outermost first) with their bounds; loop
/// coefficients outside \p Common are treated as extra unknowns within
/// their own bounds.
DependenceResult testLinearPair(const LinearSubscript &Src,
                                const LinearSubscript &Dst,
                                const std::vector<LoopBound> &Common,
                                const std::vector<LoopBound> &NonCommon);

/// Intersects per-dimension results of one reference pair: any Independent
/// dimension proves independence; direction sets intersect per loop.
DependenceResult combineDimensions(const std::vector<DependenceResult> &Dims);

} // namespace dependence
} // namespace biv

#endif // BEYONDIV_DEPENDENCE_DEPENDENCETESTS_H
