//===- dependence/SubscriptExpr.h - Classified subscripts -------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Subscript expressions for dependence testing (paper section 6).
///
/// "The algorithm used to classify variables will actually classify each
/// subexpression as one of the generalized variable types.  Thus, each
/// subscript expression will be classified as an induction expression,
/// monotonic expression, etc."  A LinearSubscript is the fully-expanded
/// linear view, c0 + sum over loops coeff_L * h_L, with h_L the canonical
/// counter of loop L -- this is the representation that makes the loop
/// normalization of section 6.1 unnecessary.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_DEPENDENCE_SUBSCRIPTEXPR_H
#define BEYONDIV_DEPENDENCE_SUBSCRIPTEXPR_H

#include "ivclass/InductionAnalysis.h"
#include <map>

namespace biv {
namespace dependence {

/// A subscript written as Const + sum(Coeff[L] * h_L) over enclosing loops.
struct LinearSubscript {
  Affine Const;
  std::map<const analysis::Loop *, Affine> Coeff;

  /// Coefficient of \p L 's counter (zero when absent).
  Affine coeff(const analysis::Loop *L) const {
    auto It = Coeff.find(L);
    return It == Coeff.end() ? Affine() : It->second;
  }

  std::string str(const SymbolNamer &Namer = SymbolNamer()) const;
};

/// One classified subscript of one array reference.
struct SubscriptInfo {
  /// Classification relative to the innermost loop containing the access.
  ivclass::Classification Class;

  /// The linear expansion across the whole nest, when the subscript is an
  /// affine function of the enclosing loop counters.
  std::optional<LinearSubscript> Linear;
};

/// Expands \p Sub (an operand of an indexed access in \p AtLoop, which may
/// be null for loop-free code) into SubscriptInfo.  Linear classifications
/// whose symbolic initial values are induction variables of enclosing loops
/// are expanded recursively (the nested-tuple walk).
SubscriptInfo classifySubscript(ivclass::InductionAnalysis &IA,
                                const ir::Value *Sub,
                                const analysis::Loop *AtLoop);

} // namespace dependence
} // namespace biv

#endif // BEYONDIV_DEPENDENCE_SUBSCRIPTEXPR_H
