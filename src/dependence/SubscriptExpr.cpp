//===- dependence/SubscriptExpr.cpp - Classified subscripts --------------------===//

#include "dependence/SubscriptExpr.h"

using namespace biv;
using namespace biv::dependence;

std::string LinearSubscript::str(const SymbolNamer &Namer) const {
  std::string Out = Const.str(Namer);
  for (const auto &[L, C] : Coeff) {
    if (C.isZero())
      continue;
    std::string CS = C.str(Namer);
    if (CS.find(' ') != std::string::npos)
      CS = "(" + CS + ")";
    Out += " + " + CS + "*h(" + L->name() + ")";
  }
  return Out;
}

namespace {

/// Expands every symbol of \p A that is itself a linear IV of an enclosing
/// loop; adds results into \p Out.  Returns false when a symbol has a
/// non-affine classification (the subscript is not linear across the nest).
bool expandAffine(ivclass::InductionAnalysis &IA, const Affine &A,
                  Rational Scale, LinearSubscript &Out, unsigned Depth) {
  if (Depth == 0)
    return false;
  Out.Const += Affine(A.constantPart() * Scale);
  for (const auto &[Sym, C] : A.terms()) {
    Rational SC = C * Scale;
    const auto *V = static_cast<const ir::Value *>(Sym);
    const analysis::Loop *SymLoop = nullptr;
    if (const auto *I = ir::dyn_cast<ir::Instruction>(V))
      SymLoop = IA.loopInfo().loopFor(I->parent());
    if (!SymLoop) {
      Out.Const += Affine::symbol(Sym) * SC;
      continue;
    }
    const ivclass::Classification &SymC = IA.classify(V, SymLoop);
    if (SymC.isInvariant()) {
      Out.Const += Affine::symbol(Sym) * SC;
      continue;
    }
    if (!SymC.isLinear())
      return false;
    // coeff * (init + step*h_SymLoop): recurse into init, add to the loop's
    // counter coefficient.
    std::optional<Affine> StepTerm =
        Affine::mul(SymC.Form.coeff(1), Affine(SC));
    if (!StepTerm)
      return false;
    Out.Coeff[SymLoop] += *StepTerm;
    if (!expandAffine(IA, SymC.Form.coeff(0), SC, Out, Depth - 1))
      return false;
  }
  return true;
}

} // namespace

SubscriptInfo biv::dependence::classifySubscript(ivclass::InductionAnalysis &IA,
                                                 const ir::Value *Sub,
                                                 const analysis::Loop *AtLoop) {
  SubscriptInfo Info;
  Info.Class = AtLoop ? IA.classify(Sub, AtLoop)
                      : IA.classifyExternal(Sub, nullptr);
  if (!Info.Class.isAffineForm())
    return Info;

  LinearSubscript Lin;
  bool OK = true;
  if (AtLoop && Info.Class.isLinear()) {
    Lin.Coeff[AtLoop] = Info.Class.Form.coeff(1);
    OK = expandAffine(IA, Info.Class.Form.coeff(0), Rational(1), Lin, 8);
  } else {
    OK = expandAffine(IA, Info.Class.Form.initialValue(), Rational(1), Lin,
                      8);
  }
  if (OK) {
    // Drop zero coefficients for a canonical shape.
    for (auto It = Lin.Coeff.begin(); It != Lin.Coeff.end();)
      It = It->second.isZero() ? Lin.Coeff.erase(It) : std::next(It);
    Info.Linear = std::move(Lin);
  }
  return Info;
}
