//===- dependence/DependenceAnalyzer.h - Whole-function driver --*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-function data dependence analysis over classified subscripts.
///
/// For every pair of references to the same array with at least one write,
/// subscripts are classified (section 6) and dispatched:
///  - linear induction expressions go to the classical ZIV/SIV/MIV tests;
///  - wrap-around subscripts are tested through their underlying class, and
///    the dependence is flagged as "holds after k iterations" so the client
///    can decide whether peeling pays off;
///  - same-family periodic subscripts translate `=` solutions to a modular
///    distance constraint (a `!=` direction when the phases differ -- the
///    paper's relaxation-code result);
///  - same-family monotonic subscripts translate `=` solutions to `(=)`
///    when strictly monotonic and `(<=)` otherwise (Figure 10).
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_DEPENDENCE_DEPENDENCEANALYZER_H
#define BEYONDIV_DEPENDENCE_DEPENDENCEANALYZER_H

#include "dependence/DependenceTests.h"
#include <vector>

namespace biv {
namespace dependence {

/// Flow: write then read; Anti: read then write; Output: write then write.
enum class DepKind { Flow, Anti, Output };

const char *depKindName(DepKind K);

/// One (possible) dependence between two array references, from the
/// textually earlier Src to the later Dst.
struct Dependence {
  const ir::Instruction *Src = nullptr;
  const ir::Instruction *Dst = nullptr;
  DepKind Kind = DepKind::Flow;
  DependenceResult Result;
};

/// Statistics for the precision benchmarks.
struct DependenceStats {
  unsigned PairsTested = 0;
  unsigned Independent = 0;
  unsigned ExactDistance = 0;     ///< Some loop carries an exact distance.
  unsigned DirectionRefined = 0;  ///< Some loop excludes a direction.
  unsigned AssumedDependences = 0;
};

/// Runs the dependence tests over one analyzed function.
class DependenceAnalyzer {
public:
  struct Options {
    /// Apply the paper's wrap-around/periodic/monotonic translations; when
    /// off, such subscript pairs are simply assumed dependent with all
    /// directions (the classical-analysis behaviour, for the ablation
    /// benchmarks).
    bool UseExtendedClasses = true;
  };

  explicit DependenceAnalyzer(ivclass::InductionAnalysis &IA);
  DependenceAnalyzer(ivclass::InductionAnalysis &IA, Options Opts);

  /// Tests every array reference pair; results include proven-independent
  /// pairs so clients can count precision.
  std::vector<Dependence> analyze();

  const DependenceStats &stats() const { return Stats; }

  /// Human-readable report of analyze()'s results.
  std::string report(const std::vector<Dependence> &Deps) const;

private:
  struct Reference {
    ir::Instruction *I;
    bool IsWrite;
    const analysis::Loop *InnermostLoop; // null outside all loops
  };

  DependenceResult testPair(const Reference &Src, const Reference &Dst);
  DependenceResult testDimension(const ir::Value *SrcSub,
                                 const ir::Value *DstSub,
                                 const Reference &Src, const Reference &Dst,
                                 const std::vector<LoopBound> &Common,
                                 const std::vector<LoopBound> &NonCommon);

  /// Loop bound from the trip count: counters run 0 .. tc (inclusive upper
  /// bound is conservative and sound).
  LoopBound boundFor(const analysis::Loop *L) const;

  ivclass::InductionAnalysis &IA;
  Options Opts;
  DependenceStats Stats;
};

} // namespace dependence
} // namespace biv

#endif // BEYONDIV_DEPENDENCE_DEPENDENCEANALYZER_H
