//===- dependence/DependenceAnalyzer.cpp - Whole-function driver ---------------===//

#include "dependence/DependenceAnalyzer.h"
#include "ir/Printer.h"
#include "support/Stats.h"
#include <set>

using namespace biv;
using namespace biv::dependence;
using ivclass::Classification;
using ivclass::IVKind;
using ivclass::MonotoneDir;

const char *biv::dependence::depKindName(DepKind K) {
  switch (K) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  }
  return "<bad>";
}

DependenceAnalyzer::DependenceAnalyzer(ivclass::InductionAnalysis &IA)
    : IA(IA) {}

DependenceAnalyzer::DependenceAnalyzer(ivclass::InductionAnalysis &IA,
                                       Options Opts)
    : IA(IA), Opts(Opts) {}

LoopBound DependenceAnalyzer::boundFor(const analysis::Loop *L) const {
  LoopBound B;
  B.L = L;
  const ivclass::TripCountInfo &TC = IA.tripCount(L);
  if (TC.isCountable() && !TC.Guarded)
    if (std::optional<Rational> C = TC.count().getConstant())
      if (C->isInteger())
        B.U = C->getInteger();
  return B;
}

namespace {

/// Restricts per-loop direction sets (outermost first) to vectors that are
/// lexicographically positive, or all-'=' when \p SrcBeforeDst.  Returns
/// false when no executable forward vector remains.  A level may keep GT
/// only when some outer level can still be LT.
bool restrictToForward(DependenceResult &R, bool SrcBeforeDst) {
  // Exact path: keep lexicographically positive vectors, plus the all-'='
  // vector when the source textually precedes the sink.
  if (!R.Vectors.empty()) {
    std::vector<std::vector<uint8_t>> Kept;
    for (const std::vector<uint8_t> &V : R.Vectors) {
      bool LexPos = false, AllEq = true;
      for (uint8_t D : V) {
        if (D == DirLT) {
          LexPos = true;
          AllEq = false;
          break;
        }
        if (D == DirGT) {
          AllEq = false;
          break;
        }
        // D == DirEQ: keep scanning.
      }
      if (LexPos || (AllEq && SrcBeforeDst))
        Kept.push_back(V);
    }
    R.Vectors = std::move(Kept);
    if (R.Vectors.empty())
      return false;
    R.projectVectors();
    return true;
  }
  // Approximate per-loop path.
  bool OuterLTPossible = false;
  for (LoopDirection &LD : R.Directions) {
    if (!OuterLTPossible)
      LD.Dirs &= uint8_t(DirLT | DirEQ);
    if (LD.Dirs == DirNone)
      return false;
    OuterLTPossible |= (LD.Dirs & DirLT) != 0;
  }
  // Either some loop can carry the dependence, or it is loop-independent
  // and needs the source to execute first.
  return OuterLTPossible || SrcBeforeDst;
}

/// Swaps source and sink: reverses directions, distances, and residues.
void reverseResult(DependenceResult &R) {
  for (LoopDirection &LD : R.Directions) {
    uint8_t D = LD.Dirs;
    LD.Dirs = uint8_t(((D & DirLT) ? DirGT : 0) | (D & DirEQ) |
                      ((D & DirGT) ? DirLT : 0));
    if (LD.Distance)
      LD.Distance = -*LD.Distance;
    if (LD.ModPeriod)
      LD.ModResidue = (*LD.ModPeriod - *LD.ModResidue) % *LD.ModPeriod;
  }
  for (std::vector<uint8_t> &V : R.Vectors)
    for (uint8_t &D : V)
      D = D == DirLT ? uint8_t(DirGT) : (D == DirGT ? uint8_t(DirLT) : D);
}

DepKind kindOf(bool SrcWrite, bool DstWrite) {
  if (SrcWrite)
    return DstWrite ? DepKind::Output : DepKind::Flow;
  return DepKind::Anti;
}

} // namespace

namespace {

const stats::Timer DependencePhase("phase.dependence");
const stats::Counter NumPairsTested("dependence.pairs_tested");
const stats::Counter NumIndependent("dependence.independent");
const stats::Counter NumAssumed("dependence.assumed");

/// Which decision algorithm proved a pair independent, keyed off the
/// DependenceResult note the deciding test recorded.
const stats::Counter &indepCounterFor(const std::string &Note) {
  static const stats::Counter Ziv("dependence.indep.ziv");
  static const stats::Counter ExactSiv("dependence.indep.exact_siv");
  static const stats::Counter Gcd("dependence.indep.gcd");
  static const stats::Counter Banerjee("dependence.indep.banerjee");
  static const stats::Counter Periodic("dependence.indep.periodic");
  static const stats::Counter Combine("dependence.indep.combine");
  if (Note.rfind("ZIV", 0) == 0)
    return Ziv;
  if (Note.rfind("exact SIV", 0) == 0)
    return ExactSiv;
  if (Note.rfind("GCD", 0) == 0)
    return Gcd;
  if (Note.rfind("Banerjee", 0) == 0)
    return Banerjee;
  if (Note.rfind("periodic", 0) == 0)
    return Periodic;
  return Combine; // cross-dimension/direction intersection proofs
}

} // namespace

std::vector<Dependence> DependenceAnalyzer::analyze() {
  stats::ScopedSpan Span(DependencePhase);
  // Gather references per array, in program order (block id, then index).
  struct ArrayRefs {
    std::vector<Reference> Refs;
    bool AnyWrite = false;
  };
  std::map<const ir::Array *, ArrayRefs> ByArray;
  const analysis::LoopInfo &LI = IA.loopInfo();
  for (const ir::BasicBlock *BB : IA.function().blocks())
    for (ir::Instruction *I : *BB) {
      bool IsWrite = I->opcode() == ir::Opcode::ArrayStore;
      if (!IsWrite && I->opcode() != ir::Opcode::ArrayLoad)
        continue;
      ArrayRefs &AR = ByArray[I->array()];
      AR.Refs.push_back({I, IsWrite, LI.loopFor(BB)});
      AR.AnyWrite |= IsWrite;
    }

  std::vector<Dependence> Result;
  for (auto &[Array, AR] : ByArray) {
    (void)Array;
    if (!AR.AnyWrite)
      continue;
    for (size_t I = 0; I < AR.Refs.size(); ++I)
      for (size_t J = I; J < AR.Refs.size(); ++J) {
        const Reference &R1 = AR.Refs[I];
        const Reference &R2 = AR.Refs[J];
        if (!R1.IsWrite && !R2.IsWrite)
          continue; // input "dependences" are not dependences
        if (I == J && !R1.IsWrite)
          continue;
        DependenceResult R = testPair(R1, R2);
        ++Stats.PairsTested;
        NumPairsTested.bump();
        if (R.O == DependenceResult::Outcome::Independent) {
          ++Stats.Independent;
          NumIndependent.bump();
          indepCounterFor(R.Note).bump();
          Dependence D;
          D.Src = R1.I;
          D.Dst = R2.I;
          D.Kind = kindOf(R1.IsWrite, R2.IsWrite);
          D.Result = std::move(R);
          Result.push_back(std::move(D));
          continue;
        }
        // Split by execution order: directions are h_src vs h_dst; the
        // forward pair keeps lexicographically positive vectors (plus the
        // loop-independent all-'=' when R1 precedes R2), the backward pair
        // gets the reversed remainder.
        bool Emitted = false;
        auto emit = [&](const Reference &S, const Reference &T,
                        DependenceResult RR, bool SrcBeforeDst) {
          if (!restrictToForward(RR, SrcBeforeDst))
            return;
          Dependence D;
          D.Src = S.I;
          D.Dst = T.I;
          D.Kind = kindOf(S.IsWrite, T.IsWrite);
          D.Result = std::move(RR);
          bool Refined = false, Exact = false;
          for (const LoopDirection &LD : D.Result.Directions) {
            Refined |= LD.Dirs != DirAll || LD.ModPeriod.has_value();
            Exact |= LD.Distance.has_value();
          }
          Stats.DirectionRefined += Refined;
          Stats.ExactDistance += Exact;
          Emitted = true;
          Result.push_back(std::move(D));
        };
        emit(R1, R2, R, /*SrcBeforeDst=*/I != J);
        if (I != J) {
          DependenceResult Rev = R;
          reverseResult(Rev);
          emit(R2, R1, std::move(Rev), /*SrcBeforeDst=*/false);
        }
        if (Emitted) {
          ++Stats.AssumedDependences;
          NumAssumed.bump();
        } else {
          ++Stats.Independent; // e.g. a self pair pinned to distance zero
          NumIndependent.bump();
          indepCounterFor(R.Note).bump();
        }
      }
  }
  return Result;
}

DependenceResult DependenceAnalyzer::testPair(const Reference &Src,
                                              const Reference &Dst) {
  // Common loops: enclose both references; outermost first.
  std::vector<LoopBound> Common, NonCommon;
  std::vector<const analysis::Loop *> SrcChain, DstChain;
  for (const analysis::Loop *L = Src.InnermostLoop; L; L = L->parent())
    SrcChain.push_back(L);
  for (const analysis::Loop *L = Dst.InnermostLoop; L; L = L->parent())
    DstChain.push_back(L);
  std::set<const analysis::Loop *> DstSet(DstChain.begin(), DstChain.end());
  for (auto It = SrcChain.rbegin(); It != SrcChain.rend(); ++It) {
    if (DstSet.count(*It))
      Common.push_back(boundFor(*It));
    else
      NonCommon.push_back(boundFor(*It));
  }
  for (const analysis::Loop *L : DstChain)
    if (!std::count_if(SrcChain.begin(), SrcChain.end(),
                       [&](const analysis::Loop *S) { return S == L; }))
      NonCommon.push_back(boundFor(L));

  // Test every dimension and combine.
  unsigned Rank = Src.I->array()->rank();
  std::vector<DependenceResult> Dims;
  for (unsigned D = 0; D < Rank; ++D) {
    const ir::Value *SrcSub =
        Src.I->operand(Src.IsWrite ? D + 1 : D); // stores carry the value
    const ir::Value *DstSub = Dst.I->operand(Dst.IsWrite ? D + 1 : D);
    Dims.push_back(
        testDimension(SrcSub, DstSub, Src, Dst, Common, NonCommon));
  }
  return combineDimensions(Dims);
}

namespace {

/// Are the ring initial values numeric and pairwise distinct (required to
/// exploit periodicity, section 4.2)?
bool distinctNumericRing(const std::vector<Affine> &Ring) {
  std::set<Rational> Seen;
  for (const Affine &A : Ring) {
    std::optional<Rational> C = A.getConstant();
    if (!C || !Seen.insert(*C).second)
      return false;
  }
  return true;
}

} // namespace

DependenceResult DependenceAnalyzer::testDimension(
    const ir::Value *SrcSub, const ir::Value *DstSub, const Reference &Src,
    const Reference &Dst, const std::vector<LoopBound> &Common,
    const std::vector<LoopBound> &NonCommon) {
  SubscriptInfo SI = classifySubscript(IA, SrcSub, Src.InnermostLoop);
  SubscriptInfo DI = classifySubscript(IA, DstSub, Dst.InnermostLoop);

  // When a subscript is invariant relative to its innermost loop, its
  // interesting class may live in an enclosing common loop (e.g. the
  // relaxation planes of section 4.2 rotate in the *outer* loop while the
  // array accesses sit in the inner sweep).  Pick the innermost enclosing
  // loop where the value is not merely invariant.
  auto effective = [&](const ir::Value *Sub,
                       ivclass::Classification C) -> ivclass::Classification {
    if (!C.isInvariant() && !C.isUnknown())
      return C;
    for (auto It = Common.rbegin(); It != Common.rend(); ++It) {
      const ivclass::Classification &C2 = IA.classify(Sub, It->L);
      if (!C2.isInvariant() && !C2.isUnknown())
        return C2;
    }
    return C;
  };
  SI.Class = effective(SrcSub, SI.Class);
  DI.Class = effective(DstSub, DI.Class);

  auto maybeAll = [&](std::string Note) {
    DependenceResult R;
    R.O = DependenceResult::Outcome::Maybe;
    for (const LoopBound &LB : Common)
      R.Directions.push_back(
          {LB.L, DirAll, std::nullopt, std::nullopt, std::nullopt});
    R.Note = std::move(Note);
    return R;
  };

  // Linear x linear: the classical tests.
  if (SI.Linear && DI.Linear)
    return testLinearPair(*SI.Linear, *DI.Linear, Common, NonCommon);

  if (!Opts.UseExtendedClasses)
    return maybeAll("non-linear subscripts (extended classes disabled)");

  const Classification &SC = SI.Class;
  const Classification &DC = DI.Class;

  // Wrap-around: test through the settled class and flag the prefix
  // (supported when the settled class is again an affine IV).
  if (SC.isWrapAround() || DC.isWrapAround()) {
    auto settle = [&](const Classification &C, const ir::Value *Sub,
                      const Reference &Ref,
                      unsigned &Order) -> std::optional<LinearSubscript> {
      SubscriptInfo Info = classifySubscript(IA, Sub, Ref.InnermostLoop);
      if (Info.Linear) {
        return Info.Linear;
      }
      if (!C.isWrapAround() || !C.Inner || !C.Inner->isAffineForm())
        return std::nullopt;
      Order = std::max(Order, C.WrapOrder);
      // The settled value of the wrap-around phi lags its carried value by
      // one iteration: phi(h) = inner(h-1) for h >= Order.
      std::optional<ivclass::ClosedForm> Settled = C.Inner->Form.shifted(-1);
      if (!Settled || !Settled->isLinear())
        return std::nullopt;
      LinearSubscript Lin;
      Lin.Const = Settled->coeff(0);
      if (!Settled->coeff(1).isZero())
        Lin.Coeff[Ref.InnermostLoop] = Settled->coeff(1);
      return Lin;
    };
    unsigned Order = 0;
    std::optional<LinearSubscript> SL = settle(SC, SrcSub, Src, Order);
    std::optional<LinearSubscript> DL = settle(DC, DstSub, Dst, Order);
    if (SL && DL) {
      DependenceResult R = testLinearPair(*SL, *DL, Common, NonCommon);
      R.ValidAfterIterations = Order;
      if (R.O == DependenceResult::Outcome::Independent && Order > 0) {
        // Independence only proven for the settled iterations; the first
        // `Order` iterations still touch the wrapped value.
        R.O = DependenceResult::Outcome::Maybe;
        R.Note += " (wrap-around: first " + std::to_string(Order) +
                  " iteration(s) unanalyzed)";
      } else if (Order > 0) {
        R.Note += " [holds after " + std::to_string(Order) +
                  " iteration(s); peel to exploit]";
      }
      return R;
    }
    return maybeAll("wrap-around with unsupported inner class");
  }

  // Periodic x periodic: same family with distinct ring values means the
  // dependence distance is fixed modulo the period.
  if (SC.isPeriodic() && DC.isPeriodic()) {
    if (SC.FamilyId != DC.FamilyId || SC.PScale != DC.PScale ||
        SC.POffset != DC.POffset)
      return maybeAll("periodic: unrelated families");
    if (!distinctNumericRing(SC.RingInits))
      return maybeAll("periodic: ring values not provably distinct");
    // Values match iff (phase_src + h_src) == (phase_dst + h_dst) (mod p):
    // h_dst - h_src == phase_src - phase_dst (mod p).
    unsigned P = SC.Period;
    unsigned Residue = (SC.Phase + P - DC.Phase) % P;
    DependenceResult R = maybeAll("periodic family");
    // The modular constraint binds the loop that rotates the family.
    for (LoopDirection &LD : R.Directions)
      if (LD.L == SC.L) {
        LD.ModPeriod = P;
        LD.ModResidue = Residue;
        if (Residue != 0)
          LD.Dirs &= ~DirEQ; // the paper's "=" -> "!=" translation
      }
    return R;
  }

  // Monotonic x monotonic within one recurrence (Figure 10).
  if (SC.isMonotonic() && DC.isMonotonic() && SC.MonoFamilyId != 0 &&
      SC.MonoFamilyId == DC.MonoFamilyId) {
    DependenceResult R = maybeAll("monotonic family");
    const analysis::Loop *ML = SC.L;
    for (LoopDirection &LD : R.Directions) {
      if (LD.L != ML)
        continue;
      if (SrcSub == DstSub && SC.Strict) {
        // The same strictly monotonic value never repeats: "=" only.
        LD.Dirs = DirEQ;
        LD.Distance = 0;
      } else {
        // Equal values of a (non-strict) monotonic recurrence can only
        // occur at non-negative distance: "=" becomes "<=".
        LD.Dirs = DirLT | DirEQ;
      }
    }
    R.Note = SC.Strict ? "monotonic: strict" : "monotonic: non-strict";
    return R;
  }

  // Non-linear closed forms (geometric / c-finite): when both subscripts
  // follow the *same* exact sequence in the same loop and that sequence is
  // provably strictly monotone, equal values can only meet at equal
  // iterations -- "=" with distance 0 in that loop (the closed-form
  // counterpart of the strict-monotonic rule above).  Partial forms are
  // exact for the value they describe, so they qualify too.
  if (SC.hasClosedForm() && DC.hasClosedForm() && SC.L && SC.L == DC.L &&
      SC.Form == DC.Form &&
      // A numeric initial value plus a numeric-difference monotonicity proof
      // pins the whole sequence to fixed numbers, so it is the same sequence
      // on every iteration of any enclosing loop (a symbolic term could be
      // rebound there, breaking the equal-iteration argument).
      SC.Form.initialValue().getConstant().has_value()) {
    const bool StrictlyUp = SC.Form.provablyIncreasing();
    const bool StrictlyDown = (-SC.Form).provablyIncreasing();
    if (StrictlyUp || StrictlyDown) {
      static const stats::Counter NumClosedFormEQ("dependence.closed_form_eq");
      NumClosedFormEQ.bump();
      DependenceResult R = maybeAll("closed form: strictly monotone");
      for (LoopDirection &LD : R.Directions)
        if (LD.L == SC.L) {
          LD.Dirs = DirEQ;
          LD.Distance = 0;
        }
      return R;
    }
  }

  // Phase-periodic subscripts (the summarizer's per-phase closed forms):
  // when both references follow the same k-tuple of forms in the same loop
  // and the interleaved sequence value(h) = form[h mod k](h div k) is
  // strictly monotone across every phase boundary (including the wrap into
  // the next cycle), equal values meet only at equal iterations -- "=" with
  // distance 0, exactly like the strict closed-form rule above.
  if (SC.isPhasePeriodic() && DC.isPhasePeriodic() && SC.L && SC.L == DC.L &&
      SC.Period == DC.Period && SC.PhaseForms == DC.PhaseForms) {
    bool Numeric = true;
    for (const ivclass::ClosedForm &F : SC.PhaseForms)
      if (!F.initialValue().getConstant()) {
        Numeric = false;
        break;
      }
    if (Numeric &&
        (SC.phaseSequenceStrictly(MonotoneDir::Increasing) ||
         SC.phaseSequenceStrictly(MonotoneDir::Decreasing))) {
      static const stats::Counter NumPhasePeriodicEQ(
          "dependence.phase_periodic_eq");
      NumPhasePeriodicEQ.bump();
      DependenceResult R = maybeAll("phase-periodic: strictly monotone");
      for (LoopDirection &LD : R.Directions)
        if (LD.L == SC.L) {
          LD.Dirs = DirEQ;
          LD.Distance = 0;
        }
      return R;
    }
  }

  return maybeAll("unclassified subscript pair");
}

std::string
DependenceAnalyzer::report(const std::vector<Dependence> &Deps) const {
  ir::Printer P(IA.function());
  std::string Out;
  for (const Dependence &D : Deps) {
    Out += depKindName(D.Kind);
    Out += " dep " + P.str(D.Src) + "  ->  " + P.str(D.Dst) + "\n";
    switch (D.Result.O) {
    case DependenceResult::Outcome::Independent:
      Out += "  INDEPENDENT (" + D.Result.Note + ")\n";
      continue;
    case DependenceResult::Outcome::Dependent:
      Out += "  dependent (" + D.Result.Note + ")";
      break;
    case DependenceResult::Outcome::Maybe:
      Out += "  assumed (" + D.Result.Note + ")";
      break;
    }
    for (const LoopDirection &LD : D.Result.Directions) {
      Out += "  " + LD.L->name() + ":" + dirSetStr(LD.Dirs);
      if (LD.Distance)
        Out += " dist=" + std::to_string(*LD.Distance);
      if (LD.ModPeriod)
        Out += " dist==" + std::to_string(*LD.ModResidue) + " (mod " +
               std::to_string(*LD.ModPeriod) + ")";
    }
    if (D.Result.ValidAfterIterations)
      Out += "  after " + std::to_string(D.Result.ValidAfterIterations) +
             " iter";
    Out += "\n";
  }
  return Out;
}
