//===- dependence/DependenceTests.cpp - Decision algorithms --------------------===//

#include "dependence/DependenceTests.h"
#include <algorithm>
#include <numeric>

using namespace biv;
using namespace biv::dependence;

std::string biv::dependence::dirSetStr(uint8_t Dirs) {
  switch (Dirs & DirAll) {
  case DirNone:
    return "()";
  case DirLT:
    return "(<)";
  case DirEQ:
    return "(=)";
  case DirGT:
    return "(>)";
  case DirLT | DirEQ:
    return "(<=)";
  case DirEQ | DirGT:
    return "(>=)";
  case DirLT | DirGT:
    return "(<>)";
  default:
    return "(*)";
  }
}

uint8_t DependenceResult::dirsFor(const analysis::Loop *L) const {
  for (const LoopDirection &D : Directions)
    if (D.L == L)
      return D.Dirs;
  return DirAll;
}

void DependenceResult::projectVectors() {
  if (Directions.empty())
    return;
  if (O == Outcome::Independent) {
    // No dependence: no direction is realizable, so stale per-loop sets
    // from before vector intersection must not survive into the report.
    for (LoopDirection &D : Directions)
      D.Dirs = DirNone;
    Vectors.clear();
    return;
  }
  if (Vectors.empty())
    return; // nest too deep to enumerate; keep the conservative sets
  std::vector<uint8_t> Union(Directions.size(), DirNone);
  for (const std::vector<uint8_t> &V : Vectors)
    for (size_t I = 0; I < V.size(); ++I)
      Union[I] |= V[I];
  for (size_t I = 0; I < Directions.size(); ++I)
    Directions[I].Dirs = Union[I];
}

namespace {

/// Expands per-loop direction sets into the explicit vector list; empty
/// when the nest is too deep to enumerate.
std::vector<std::vector<uint8_t>>
enumerateVectors(const std::vector<LoopDirection> &Dirs) {
  if (Dirs.empty() || Dirs.size() > 6)
    return {};
  std::vector<std::vector<uint8_t>> Out{{}};
  for (const LoopDirection &LD : Dirs) {
    std::vector<std::vector<uint8_t>> Next;
    for (uint8_t D : {DirLT, DirEQ, DirGT}) {
      if (!(LD.Dirs & D))
        continue;
      for (const std::vector<uint8_t> &Prefix : Out) {
        std::vector<uint8_t> V = Prefix;
        V.push_back(D);
        Next.push_back(std::move(V));
      }
    }
    Out = std::move(Next);
    if (Out.size() > 1024)
      return {};
  }
  return Out;
}

} // namespace

namespace {

/// An interval with optional infinities, for Banerjee bounds.
struct Interval {
  std::optional<Rational> Lo = Rational(0); // nullopt = -inf
  std::optional<Rational> Hi = Rational(0); // nullopt = +inf

  static Interval point(Rational V) { return {V, V}; }
  static Interval everything() { return {std::nullopt, std::nullopt}; }
  /// The empty interval (used for infeasible directions).
  static Interval empty() { return {Rational(1), Rational(0)}; }

  bool isEmpty() const { return Lo && Hi && *Lo > *Hi; }

  Interval operator+(const Interval &O) const {
    Interval R;
    R.Lo = (Lo && O.Lo) ? std::optional<Rational>(*Lo + *O.Lo) : std::nullopt;
    R.Hi = (Hi && O.Hi) ? std::optional<Rational>(*Hi + *O.Hi) : std::nullopt;
    return R;
  }

  bool contains(const Rational &V) const {
    if (isEmpty())
      return false;
    if (Lo && V < *Lo)
      return false;
    if (Hi && V > *Hi)
      return false;
    return true;
  }
};

/// Interval of c * x for x in [0, U] (U nullopt = unbounded).
Interval scaledRange(const Rational &C, const std::optional<int64_t> &U) {
  if (C.isZero())
    return Interval::point(Rational(0));
  Interval R;
  if (U) {
    Rational End = C * Rational(*U);
    R.Lo = std::min(Rational(0), End);
    R.Hi = std::max(Rational(0), End);
    return R;
  }
  if (C.isPositive()) {
    R.Lo = Rational(0);
    R.Hi = std::nullopt;
  } else {
    R.Lo = std::nullopt;
    R.Hi = Rational(0);
  }
  return R;
}

/// Interval of a*h - b*h' under a direction constraint, h and h' in [0, U].
Interval termRange(int64_t A, int64_t B, const std::optional<int64_t> &U,
                   uint8_t Dir) {
  switch (Dir) {
  case DirEQ:
    // (a - b) * h.
    return scaledRange(Rational(A - B), U);
  case DirLT: {
    // h' = h + k, k >= 1: expr = (a-b)h - b*k over the triangle
    // {h >= 0, k >= 1, h + k <= U}; extremes at its corners.
    if (U && *U < 1)
      return Interval::empty();
    if (!U) {
      // Unbounded: start from the corner (h=0, k=1) and open the ends that
      // grow without bound.
      Interval R = Interval::point(Rational(-B));
      if (A - B > 0 || -B > 0)
        R.Hi = std::nullopt;
      if (A - B < 0 || -B < 0)
        R.Lo = std::nullopt;
      return R;
    }
    auto Val = [&](int64_t H, int64_t K) {
      return Rational((A - B) * H - B * K);
    };
    Rational C1 = Val(0, 1), C2 = Val(0, *U), C3 = Val(*U - 1, 1);
    return {std::min({C1, C2, C3}), std::max({C1, C2, C3})};
  }
  case DirGT: {
    // h = h' + k, k >= 1: expr = (a-b)h' + a*k; mirror of DirLT.
    if (U && *U < 1)
      return Interval::empty();
    if (!U) {
      Interval R = Interval::point(Rational(A));
      if (A - B > 0 || A > 0)
        R.Hi = std::nullopt;
      if (A - B < 0 || A < 0)
        R.Lo = std::nullopt;
      return R;
    }
    auto Val = [&](int64_t HP, int64_t K) {
      return Rational((A - B) * HP + A * K);
    };
    Rational C1 = Val(0, 1), C2 = Val(0, *U), C3 = Val(*U - 1, 1);
    return {std::min({C1, C2, C3}), std::max({C1, C2, C3})};
  }
  default:
    // '*': independent h and h'.
    return scaledRange(Rational(A), U) + scaledRange(Rational(-B), U);
  }
}

/// Extended gcd: returns g = gcd(a, b) and x, y with a*x + b*y = g.
int64_t egcd(int64_t A, int64_t B, int64_t &X, int64_t &Y) {
  if (B == 0) {
    X = A >= 0 ? 1 : -1;
    Y = 0;
    return A >= 0 ? A : -A;
  }
  int64_t X1, Y1;
  int64_t G = egcd(B, A % B, X1, Y1);
  X = Y1;
  Y = X1 - (A / B) * Y1;
  return G;
}

std::optional<int64_t> intOf(const Affine &A) {
  std::optional<Rational> C = A.getConstant();
  if (!C || !C->isInteger())
    return std::nullopt;
  return C->getInteger();
}

/// Numeric view of the dependence equation
///   sum_L (a_L h_L - b_L h'_L) + sum_M c_M x_M = Delta.
struct Equation {
  struct CommonTerm {
    const analysis::Loop *L;
    int64_t A, B;
    std::optional<int64_t> U;
  };
  struct ExtraTerm {
    Rational C;
    std::optional<int64_t> U;
  };
  std::vector<CommonTerm> Common;
  std::vector<ExtraTerm> Extra;
  int64_t Delta = 0;
};

DependenceResult maybeAll(const std::vector<LoopBound> &Common,
                          std::string Note) {
  DependenceResult R;
  R.O = DependenceResult::Outcome::Maybe;
  for (const LoopBound &LB : Common)
    R.Directions.push_back({LB.L, DirAll, std::nullopt, std::nullopt,
                            std::nullopt});
  R.Note = std::move(Note);
  return R;
}

/// Exact SIV: integer solutions of a*h - b*h' = Delta with optional bounds,
/// and the feasible direction set.
DependenceResult exactSIV(const Equation::CommonTerm &T, int64_t Delta,
                          const std::vector<LoopBound> &Common) {
  DependenceResult R = maybeAll(Common, "exact SIV");
  int64_t X, Y;
  int64_t G = egcd(T.A, -T.B, X, Y);
  if (G == 0) {
    // a == b == 0: the loop does not constrain the subscript.
    return R;
  }
  if (Delta % G != 0) {
    R.O = DependenceResult::Outcome::Independent;
    R.Note = "exact SIV: gcd";
    return R;
  }
  // Particular solution of A*h + (-B)*h' = Delta from the Bezout pair;
  // homogeneous solutions step by (B/G, A/G).
  int64_t H0 = X * (Delta / G);
  int64_t HP0 = Y * (Delta / G);
  int64_t StepH = T.B / G, StepHP = T.A / G;

  // Feasible t interval from 0 <= h <= U and 0 <= h' <= U.
  Interval TRange = Interval::everything();
  auto clamp = [&](int64_t Base, int64_t Step, std::optional<int64_t> Upper) {
    // 0 <= Base + Step*t (and <= Upper when known).
    if (Step == 0) {
      if (Base < 0 || (Upper && Base > *Upper))
        TRange = Interval::empty();
      return;
    }
    Rational LoT = Rational(-Base, Step);
    if (Step > 0) {
      Rational NewLo = LoT;
      if (!TRange.Lo || *TRange.Lo < NewLo)
        TRange.Lo = NewLo;
    } else {
      if (!TRange.Hi || *TRange.Hi > LoT)
        TRange.Hi = LoT;
    }
    if (Upper) {
      Rational HiT = Rational(*Upper - Base, Step);
      if (Step > 0) {
        if (!TRange.Hi || *TRange.Hi > HiT)
          TRange.Hi = HiT;
      } else if (!TRange.Lo || *TRange.Lo < HiT) {
        TRange.Lo = HiT;
      }
    }
  };
  clamp(H0, StepH, T.U);
  clamp(HP0, StepHP, T.U);

  // Is there an integer t in TRange?
  auto hasInteger = [](const Interval &I) {
    if (I.isEmpty())
      return false;
    if (!I.Lo || !I.Hi)
      return true;
    return I.Lo->ceil() <= I.Hi->floor();
  };
  if (!hasInteger(TRange)) {
    R.O = DependenceResult::Outcome::Independent;
    R.Note = "exact SIV: bounds";
    return R;
  }

  // Directions: h' - h = (HP0 - H0) + (StepHP - StepH) t.
  int64_t DiffBase = HP0 - H0, DiffStep = StepHP - StepH;
  uint8_t Dirs = DirNone;
  auto dirFeasible = [&](uint8_t D) {
    // Need integer t in TRange with sign(DiffBase + DiffStep*t) matching D.
    Interval Want = TRange;
    auto tighten = [&](bool Lower, Rational Bound) {
      // Lower: t >= Bound; else t <= Bound.
      if (Lower) {
        if (!Want.Lo || *Want.Lo < Bound)
          Want.Lo = Bound;
      } else if (!Want.Hi || *Want.Hi > Bound) {
        Want.Hi = Bound;
      }
    };
    if (DiffStep == 0) {
      int64_t Diff = DiffBase;
      bool Match = (D == DirEQ && Diff == 0) || (D == DirLT && Diff > 0) ||
                   (D == DirGT && Diff < 0);
      return Match && hasInteger(Want);
    }
    switch (D) {
    case DirEQ: {
      // t = -DiffBase / DiffStep exactly.
      Rational TEq = Rational(-DiffBase, DiffStep);
      if (!TEq.isInteger())
        return false;
      return Want.contains(TEq);
    }
    case DirLT: // h' - h >= 1
      if (DiffStep > 0)
        tighten(true, Rational(1 - DiffBase, DiffStep));
      else
        tighten(false, Rational(1 - DiffBase, DiffStep));
      return hasInteger(Want);
    case DirGT: // h' - h <= -1
      if (DiffStep > 0)
        tighten(false, Rational(-1 - DiffBase, DiffStep));
      else
        tighten(true, Rational(-1 - DiffBase, DiffStep));
      return hasInteger(Want);
    default:
      return false;
    }
  };
  for (uint8_t D : {DirLT, DirEQ, DirGT})
    if (dirFeasible(D))
      Dirs |= D;
  if (Dirs == DirNone) {
    R.O = DependenceResult::Outcome::Independent;
    R.Note = "exact SIV: no feasible direction";
    return R;
  }
  for (LoopDirection &LD : R.Directions)
    if (LD.L == T.L) {
      LD.Dirs = Dirs;
      // A unique distance exists when h'-h is constant over solutions.
      if (DiffStep == 0)
        LD.Distance = DiffBase;
    }
  // With a known in-bounds solution the dependence is proven; with unknown
  // bounds it remains assumed.
  R.O = T.U ? DependenceResult::Outcome::Dependent
            : DependenceResult::Outcome::Maybe;
  R.Note = "exact SIV";
  return R;
}

} // namespace

DependenceResult
biv::dependence::testLinearPair(const LinearSubscript &Src,
                                const LinearSubscript &Dst,
                                const std::vector<LoopBound> &Common,
                                const std::vector<LoopBound> &NonCommon) {
  // Delta = DstConst - SrcConst.
  Affine DeltaA = Dst.Const - Src.Const;

  // Symbolic handling: identical subscript shapes are distance-0 dependent.
  bool SameShape = DeltaA.isZero();
  for (const LoopBound &LB : Common)
    SameShape &= Src.coeff(LB.L) == Dst.coeff(LB.L);
  for (const LoopBound &LB : NonCommon)
    SameShape &= Src.coeff(LB.L).isZero() && Dst.coeff(LB.L).isZero();

  // Gather numeric terms.
  Equation Eq;
  bool AllNumeric = true;
  bool AnyLoopTerm = false;
  for (const LoopBound &LB : Common) {
    std::optional<int64_t> A = intOf(Src.coeff(LB.L));
    std::optional<int64_t> B = intOf(Dst.coeff(LB.L));
    if (!A || !B) {
      AllNumeric = false;
      continue;
    }
    if (*A || *B)
      AnyLoopTerm = true;
    Eq.Common.push_back({LB.L, *A, *B, LB.U});
  }
  for (const LoopBound &LB : NonCommon) {
    Affine C = Src.coeff(LB.L) - Dst.coeff(LB.L);
    if (C.isZero())
      continue;
    AnyLoopTerm = true;
    std::optional<Rational> CN = C.getConstant();
    if (!CN) {
      AllNumeric = false;
      continue;
    }
    Eq.Extra.push_back({*CN, LB.U});
  }
  std::optional<int64_t> Delta = intOf(DeltaA);
  if (!Delta)
    AllNumeric = false;
  else
    Eq.Delta = *Delta;

  if (!AllNumeric) {
    if (SameShape) {
      // A[f(h)] vs A[f(h')] for the same affine f: distance zero always.
      DependenceResult R = maybeAll(Common, "symbolic: identical subscripts");
      bool AnyCoeff = false;
      for (const LoopBound &LB : Common)
        AnyCoeff |= !Src.coeff(LB.L).isZero();
      if (AnyCoeff) {
        for (LoopDirection &LD : R.Directions)
          if (!Src.coeff(LD.L).isZero()) {
            LD.Dirs = DirEQ;
            LD.Distance = 0;
          }
        R.O = DependenceResult::Outcome::Dependent;
      }
      return R;
    }
    return maybeAll(Common, "symbolic subscripts");
  }

  // ZIV: no loop-variant term at all.
  if (!AnyLoopTerm) {
    DependenceResult R = maybeAll(Common, "ZIV");
    if (Eq.Delta != 0) {
      R.O = DependenceResult::Outcome::Independent;
      R.Note = "ZIV: distinct constants";
    } else {
      R.O = DependenceResult::Outcome::Dependent;
      R.Note = "ZIV: equal constants";
    }
    return R;
  }

  // GCD test across every coefficient.
  int64_t G = 0;
  for (const Equation::CommonTerm &T : Eq.Common)
    G = std::gcd(std::gcd(G, T.A < 0 ? -T.A : T.A), T.B < 0 ? -T.B : T.B);
  for (const Equation::ExtraTerm &T : Eq.Extra) {
    if (!T.C.isInteger())
      G = 1; // rational coefficient: give up on gcd refinement
    else {
      int64_t C = T.C.getInteger();
      G = std::gcd(G, C < 0 ? -C : C);
    }
  }
  if (G > 0 && Eq.Delta % G != 0) {
    DependenceResult R;
    R.O = DependenceResult::Outcome::Independent;
    R.Note = "GCD test";
    return R;
  }

  // Single-loop (SIV) fast path with exact answers.
  unsigned ActiveCommon = 0;
  const Equation::CommonTerm *Single = nullptr;
  for (const Equation::CommonTerm &T : Eq.Common)
    if (T.A || T.B) {
      ++ActiveCommon;
      Single = &T;
    }
  if (ActiveCommon == 1 && Eq.Extra.empty() &&
      Eq.Common.size() == Common.size())
    return exactSIV(*Single, Eq.Delta, Common);

  // MIV: Banerjee bounds over the direction-vector hierarchy [GKT91].
  // Assign each common loop a direction in turn (depth-first over the
  // refinement tree, pruning infeasible prefixes); feasible *full* vectors
  // are unioned into per-loop direction sets.  This captures couplings the
  // per-loop independent test misses (e.g. (=, <) infeasible while (=) and
  // (<) are separately feasible).
  std::vector<uint8_t> Assigned(Eq.Common.size(), DirAll);
  auto boundWith = [&]() -> Interval {
    Interval Total = Interval::point(Rational(0));
    for (size_t I = 0; I < Eq.Common.size(); ++I)
      Total = Total + termRange(Eq.Common[I].A, Eq.Common[I].B,
                                Eq.Common[I].U, Assigned[I]);
    for (const Equation::ExtraTerm &T : Eq.Extra)
      Total = Total + scaledRange(T.C, T.U);
    return Total;
  };

  if (!boundWith().contains(Rational(Eq.Delta))) {
    DependenceResult R;
    R.O = DependenceResult::Outcome::Independent;
    R.Note = "Banerjee bounds";
    return R;
  }

  // Depth-first refinement with pruning; each feasible leaf is one full
  // direction vector over the *equation's* common loops.
  std::vector<std::vector<uint8_t>> Leaves;
  auto refine = [&](auto &&Self, size_t Level) -> void {
    if (Level == Eq.Common.size()) {
      Leaves.push_back(Assigned);
      return;
    }
    for (uint8_t D : {DirLT, DirEQ, DirGT}) {
      Assigned[Level] = D;
      if (boundWith().contains(Rational(Eq.Delta)))
        Self(Self, Level + 1);
    }
    Assigned[Level] = DirAll;
  };
  refine(refine, 0);

  if (Leaves.empty()) {
    DependenceResult R;
    R.O = DependenceResult::Outcome::Independent;
    R.Note = "Banerjee: no feasible direction vector";
    return R;
  }
  DependenceResult R = maybeAll(Common, "Banerjee with direction vectors");
  // Translate the equation-loop leaves to full Common-loop vectors (loops
  // absent from the numeric equation stay unconstrained).
  std::map<const analysis::Loop *, size_t> EqIndex;
  for (size_t I = 0; I < Eq.Common.size(); ++I)
    EqIndex[Eq.Common[I].L] = I;
  std::vector<LoopDirection> Template = R.Directions;
  for (const std::vector<uint8_t> &Leaf : Leaves) {
    std::vector<LoopDirection> Dirs = Template;
    for (LoopDirection &LD : Dirs) {
      auto It = EqIndex.find(LD.L);
      LD.Dirs = It == EqIndex.end() ? uint8_t(DirAll) : Leaf[It->second];
    }
    for (std::vector<uint8_t> &V : enumerateVectors(Dirs))
      R.Vectors.push_back(std::move(V));
  }
  // Deduplicate.
  std::sort(R.Vectors.begin(), R.Vectors.end());
  R.Vectors.erase(std::unique(R.Vectors.begin(), R.Vectors.end()),
                  R.Vectors.end());
  R.projectVectors();
  return R;
}

DependenceResult biv::dependence::combineDimensions(
    const std::vector<DependenceResult> &Dims) {
  assert(!Dims.empty() && "no dimensions to combine");
  DependenceResult R = Dims.front();
  if (R.Vectors.empty())
    R.Vectors = enumerateVectors(R.Directions);
  for (size_t I = 1; I < Dims.size(); ++I) {
    const DependenceResult &D = Dims[I];
    if (D.O == DependenceResult::Outcome::Independent) {
      R = D;
      R.projectVectors();
      return R;
    }
    if (R.O == DependenceResult::Outcome::Independent)
      return R;
    // Intersect the explicit vector sets when both sides have them; this is
    // exact across dimensions (a vector survives only if every dimension
    // admits it).
    std::vector<std::vector<uint8_t>> DVecs = D.Vectors;
    if (DVecs.empty())
      DVecs = enumerateVectors(D.Directions);
    if (!R.Vectors.empty() && !DVecs.empty()) {
      std::sort(DVecs.begin(), DVecs.end());
      std::vector<std::vector<uint8_t>> Kept;
      for (const std::vector<uint8_t> &V : R.Vectors)
        if (std::binary_search(DVecs.begin(), DVecs.end(), V))
          Kept.push_back(V);
      R.Vectors = std::move(Kept);
      if (R.Vectors.empty()) {
        R.O = DependenceResult::Outcome::Independent;
        R.Note = "no common feasible direction vector";
        R.projectVectors();
        return R;
      }
    }
    // Merge per-loop metadata (distances, modular constraints).
    for (LoopDirection &LD : R.Directions) {
      LD.Dirs &= D.dirsFor(LD.L);
      for (const LoopDirection &OD : D.Directions)
        if (OD.L == LD.L) {
          if (!LD.Distance)
            LD.Distance = OD.Distance;
          else if (OD.Distance && *OD.Distance != *LD.Distance) {
            R.O = DependenceResult::Outcome::Independent;
            R.Note = "conflicting exact distances";
            R.projectVectors();
            return R;
          }
          if (!LD.ModPeriod) {
            LD.ModPeriod = OD.ModPeriod;
            LD.ModResidue = OD.ModResidue;
          }
        }
      if (LD.Dirs == DirNone) {
        R.O = DependenceResult::Outcome::Independent;
        R.Note = "no common feasible direction";
        R.projectVectors();
        return R;
      }
    }
    // Dependence is proven only if every dimension proves it.
    if (D.O != DependenceResult::Outcome::Dependent)
      if (R.O == DependenceResult::Outcome::Dependent)
        R.O = DependenceResult::Outcome::Maybe;
    R.ValidAfterIterations =
        std::max(R.ValidAfterIterations, D.ValidAfterIterations);
  }
  // Tighten the per-loop sets to the surviving vectors.
  R.projectVectors();
  return R;
}
