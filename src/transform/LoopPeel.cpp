//===- transform/LoopPeel.cpp - Loop peeling ------------------------------------===//

#include "transform/LoopPeel.h"
#include "analysis/DominatorTree.h"
#include "analysis/LoopInfo.h"
#include "support/Stats.h"
#include <map>

using namespace biv;
using namespace biv::transform;

namespace {

/// Clones one iteration of \p L in front of it.  Pre-SSA: all scalar
/// dataflow goes through variables, so only intra-clone operand references
/// need remapping.
bool peelOnce(ir::Function &F, const std::string &LoopName) {
  F.recomputePreds();
  analysis::DominatorTree DT(F);
  analysis::LoopInfo LI(F, DT);
  analysis::Loop *L = LI.byName(LoopName);
  if (!L || !L->preheader() || L->latches().size() != 1)
    return false;

  // Refuse SSA-form functions: cloned phis would need dominance repair.
  for (ir::BasicBlock *BB : L->blocks())
    if (!BB->phis().empty())
      return false;

  ir::BasicBlock *Preheader = L->preheader();
  ir::BasicBlock *Header = L->header();
  ir::BasicBlock *Latch = L->latches().front();

  // Clone every loop block.
  std::map<const ir::BasicBlock *, ir::BasicBlock *> BlockMap;
  std::map<const ir::Value *, ir::Value *> ValueMap;
  for (ir::BasicBlock *BB : L->blocks())
    BlockMap[BB] = F.createBlock(std::string(BB->name()) + ".peel");
  for (ir::BasicBlock *BB : L->blocks()) {
    ir::BasicBlock *NewBB = BlockMap[BB];
    for (const ir::Instruction *I : *BB) {
      ir::Instruction *Clone = F.newInstr(
          I->opcode(), I->operands(),
          I->name().empty() ? std::string_view() : F.uniqueName(I->name()));
      Clone->setVariable(I->variable());
      Clone->setArray(I->array());
      for (ir::BasicBlock *Succ : I->blocks()) {
        auto It = BlockMap.find(Succ);
        // The cloned latch's backedge enters the original loop (iteration
        // 2 onward); exits keep their original targets.
        if (Succ == Header || It == BlockMap.end())
          Clone->addBlock(Succ);
        else
          Clone->addBlock(It->second);
      }
      ValueMap[I] = NewBB->append(Clone);
    }
  }
  // Remap intra-clone operands.
  for (ir::BasicBlock *BB : L->blocks())
    for (const ir::Instruction *I : *BB) {
      auto *Clone = ir::cast<ir::Instruction>(ValueMap[I]);
      for (unsigned Idx = 0; Idx < Clone->numOperands(); ++Idx) {
        auto It = ValueMap.find(Clone->operand(Idx));
        if (It != ValueMap.end())
          Clone->setOperand(Idx, It->second);
      }
    }
  (void)Latch;

  // Redirect the preheader into the peeled copy.
  ir::Instruction *PreTerm = Preheader->terminator();
  for (unsigned Idx = 0; Idx < PreTerm->blocks().size(); ++Idx)
    if (PreTerm->blocks()[Idx] == Header)
      PreTerm->setBlock(Idx, BlockMap[Header]);

  F.recomputePreds();
  return true;
}

} // namespace

unsigned biv::transform::peelLoop(ir::Function &F, const std::string &LoopName,
                                  unsigned Times) {
  static const stats::Counter NumPeeled("transform.iterations_peeled");
  for (unsigned K = 0; K < Times; ++K) {
    if (!peelOnce(F, LoopName))
      return K;
    NumPeeled.bump();
  }
  return Times;
}
