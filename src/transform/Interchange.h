//===- transform/Interchange.h - Interchange legality -----------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop-interchange legality from direction vectors — the transformation
/// section 6.1 uses to motivate the whole framework ("some important
/// transformations (such as loop interchanging) are prevented" when
/// normalization perturbs distance vectors).  Interchanging two adjacent
/// loops is legal iff no dependence has direction (<, >) across them: such
/// a vector would become the lexicographically negative (>, <).
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_TRANSFORM_INTERCHANGE_H
#define BEYONDIV_TRANSFORM_INTERCHANGE_H

#include "dependence/DependenceAnalyzer.h"

namespace biv {
namespace transform {

/// Why interchange was rejected (or Legal).
enum class InterchangeVerdict {
  Legal,
  IllegalDirection, ///< Some dependence carries (<, >).
  NotPerfectlyNested, ///< Inner is not the only child, or not a child.
  UnknownDependence,  ///< A dependence has no direction information at all.
};

const char *interchangeVerdictName(InterchangeVerdict V);

/// Decides whether \p Outer and its immediate sub-loop \p Inner can be
/// interchanged, from the direction vectors in \p Deps (as produced by
/// DependenceAnalyzer::analyze on the same function).
InterchangeVerdict
canInterchange(const analysis::Loop *Outer, const analysis::Loop *Inner,
               const std::vector<dependence::Dependence> &Deps);

} // namespace transform
} // namespace biv

#endif // BEYONDIV_TRANSFORM_INTERCHANGE_H
