//===- transform/Interchange.cpp - Interchange legality --------------------------===//

#include "transform/Interchange.h"

using namespace biv;
using namespace biv::transform;
using namespace biv::dependence;

const char *biv::transform::interchangeVerdictName(InterchangeVerdict V) {
  switch (V) {
  case InterchangeVerdict::Legal:
    return "legal";
  case InterchangeVerdict::IllegalDirection:
    return "illegal: a dependence carries (<, >)";
  case InterchangeVerdict::NotPerfectlyNested:
    return "not an immediately nested pair";
  case InterchangeVerdict::UnknownDependence:
    return "unknown dependence blocks the proof";
  }
  return "<bad>";
}

InterchangeVerdict
biv::transform::canInterchange(const analysis::Loop *Outer,
                               const analysis::Loop *Inner,
                               const std::vector<Dependence> &Deps) {
  if (!Inner || !Outer || Inner->parent() != Outer)
    return InterchangeVerdict::NotPerfectlyNested;

  for (const Dependence &D : Deps) {
    if (D.Result.O == DependenceResult::Outcome::Independent)
      continue;
    // Only dependences between references inside the inner loop move.
    if (!Inner->contains(D.Src->parent()) ||
        !Inner->contains(D.Dst->parent()))
      continue;
    // With explicit vectors, look for a (<, >) pattern at the two levels.
    size_t OuterIdx = SIZE_MAX, InnerIdx = SIZE_MAX;
    for (size_t I = 0; I < D.Result.Directions.size(); ++I) {
      if (D.Result.Directions[I].L == Outer)
        OuterIdx = I;
      if (D.Result.Directions[I].L == Inner)
        InnerIdx = I;
    }
    if (OuterIdx == SIZE_MAX || InnerIdx == SIZE_MAX)
      return InterchangeVerdict::UnknownDependence;
    if (!D.Result.Vectors.empty()) {
      for (const std::vector<uint8_t> &V : D.Result.Vectors) {
        // A vector shorter than Directions carries no information for the
        // missing levels; indexing it would read out of bounds.  Treat it
        // as an unprovable dependence rather than guessing.
        if (V.size() <= OuterIdx || V.size() <= InnerIdx)
          return InterchangeVerdict::UnknownDependence;
        if (V[OuterIdx] == DirLT && V[InnerIdx] == DirGT)
          return InterchangeVerdict::IllegalDirection;
      }
      continue;
    }
    // Per-loop sets only: conservative cross product.
    uint8_t OD = D.Result.Directions[OuterIdx].Dirs;
    uint8_t ID = D.Result.Directions[InnerIdx].Dirs;
    if ((OD & DirLT) && (ID & DirGT))
      return InterchangeVerdict::IllegalDirection;
  }
  return InterchangeVerdict::Legal;
}
