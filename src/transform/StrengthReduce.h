//===- transform/StrengthReduce.h - Strength reduction ----------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classical strength reduction, driven by the paper's classification
/// instead of pattern matching.  The paper opens with the observation that
/// "induction variable recognition is inextricably linked to the strength
/// reduction transformation"; this pass closes the loop: every
/// multiplication (or other arithmetic) classified as a *linear* induction
/// variable with materializable init/step is replaced by a new recurrence —
/// a phi initialized in the preheader and bumped by the step in the latch.
///
/// Runs on SSA form after InductionAnalysis; the inserted phis/adds keep
/// the function in valid SSA (verified by the tests), but any previously
/// computed analysis results are stale afterwards.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_TRANSFORM_STRENGTHREDUCE_H
#define BEYONDIV_TRANSFORM_STRENGTHREDUCE_H

#include "ivclass/InductionAnalysis.h"

namespace biv {
namespace transform {

struct StrengthReduceStats {
  unsigned Reduced = 0;        ///< Multiplications replaced by recurrences.
  unsigned PhisInserted = 0;
};

/// Reduces every multiplication classified linear in its innermost loop.
/// \p IA must have been run on \p IA.function().
StrengthReduceStats strengthReduce(ivclass::InductionAnalysis &IA);

} // namespace transform
} // namespace biv

#endif // BEYONDIV_TRANSFORM_STRENGTHREDUCE_H
