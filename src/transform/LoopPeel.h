//===- transform/LoopPeel.h - Loop peeling ----------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loop peeling: "the standard compiler trick, once a wrap-around variable
/// is found, is to peel off the first iteration of the loop and replace the
/// wrap-around variable with the appropriate induction variable" (section
/// 4.1).  Peeling k iterations makes an order-k wrap-around collapse into
/// its settled class on the next analysis run, and the flagged "holds after
/// k iterations" dependences become ordinary ones.
///
/// The transform runs on the *pre-SSA* CFG (scalar variables still in
/// LoadVar/StoreVar form), where cloning a loop body is a pure block copy;
/// run it between lowering and SSA construction.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_TRANSFORM_LOOPPEEL_H
#define BEYONDIV_TRANSFORM_LOOPPEEL_H

#include "ir/Function.h"
#include <string>

namespace biv {
namespace transform {

/// Peels \p Times iterations off the loop labeled \p LoopName (as in
/// `loop L9 { ... }` / `for L9: ...`).  \p F must be pre-SSA (no phis).
/// Returns the number of iterations actually peeled, which is less than
/// \p Times when peeling stops early — the loop does not exist, has no
/// unique preheader/latch, or \p F is already in SSA form.  0 means \p F is
/// untouched; any shortfall leaves the successfully peeled copies in place,
/// so callers must compare the result against \p Times rather than testing
/// truthiness.
unsigned peelLoop(ir::Function &F, const std::string &LoopName,
                  unsigned Times = 1);

} // namespace transform
} // namespace biv

#endif // BEYONDIV_TRANSFORM_LOOPPEEL_H
