//===- transform/StrengthReduce.cpp - Strength reduction -------------------------===//

#include "transform/StrengthReduce.h"
#include "support/Stats.h"

#include "ir/AffineOrder.h"

using namespace biv;
using namespace biv::transform;

namespace {

/// Materializes an integer affine expression at position \p Pos of \p BB.
/// Returns null when a coefficient is not an integer.
ir::Value *materializeAt(ir::Function &F, const Affine &V,
                         ir::BasicBlock *BB, size_t Pos,
                         const std::string &Name) {
  if (!V.constantPart().isInteger())
    return nullptr;
  for (const auto &[Sym, Coeff] : V.terms())
    if (!Coeff.isInteger())
      return nullptr;
  auto emit = [&](ir::Instruction *I) { return BB->insertAt(Pos++, I); };
  ir::Value *Acc = nullptr;
  // Emission order must be stable across runs and worker threads (terms()
  // iterates in pointer order); see ir/AffineOrder.h.
  for (const auto &[Sym, Coeff] : ir::orderedTerms(V)) {
    auto *SymV = const_cast<ir::Value *>(Sym);
    ir::Value *Term = SymV;
    if (!Coeff.isOne())
      Term = emit(
          F.newInstr(ir::Opcode::Mul, {F.constant(Coeff.getInteger()), SymV}));
    Acc = Acc ? emit(F.newInstr(ir::Opcode::Add, {Acc, Term})) : Term;
  }
  int64_t C0 = V.constantPart().getInteger();
  if (!Acc)
    return F.constant(C0);
  if (C0 != 0)
    Acc = emit(F.newInstr(ir::Opcode::Add, {Acc, F.constant(C0)}));
  if (auto *AI = ir::dyn_cast<ir::Instruction>(Acc))
    if (AI->name().empty())
      AI->setName(F.uniqueName(Name));
  return Acc;
}

/// Every affine symbol must be defined outside \p L (it is, by
/// construction of the classification) *and* dominate the preheader end;
/// with our single-preheader loops that is automatic, but guard anyway by
/// requiring symbols to be non-instructions or instructions outside L.
bool symbolsAvailable(const Affine &V, const analysis::Loop *L) {
  for (const auto &[Sym, Coeff] : V.terms()) {
    (void)Coeff;
    const auto *I =
        ir::dyn_cast<ir::Instruction>(static_cast<const ir::Value *>(Sym));
    if (I && L->contains(I->parent()))
      return false;
  }
  return true;
}

} // namespace

StrengthReduceStats
biv::transform::strengthReduce(ivclass::InductionAnalysis &IA) {
  static const stats::Timer TransformPhase("phase.transform");
  stats::ScopedSpan Span(TransformPhase);
  StrengthReduceStats Stats;
  ir::Function &F = IA.function();
  const analysis::LoopInfo &LI = IA.loopInfo();

  for (const analysis::Loop *L : LI.innerToOuter()) {
    if (!L->preheader() || L->latches().size() != 1)
      continue;
    ir::BasicBlock *Preheader = L->preheader();
    ir::BasicBlock *Latch = L->latches().front();

    // Collect reducible multiplications first; rewriting mutates blocks.
    std::vector<std::pair<ir::Instruction *, ivclass::ClosedForm>> Work;
    for (ir::BasicBlock *BB : L->blocks()) {
      const analysis::Loop *Innermost = LI.loopFor(BB);
      for (ir::Instruction *I : *BB) {
        if (I->opcode() != ir::Opcode::Mul)
          continue;
        std::optional<ivclass::ClosedForm> Form;
        if (Innermost == L) {
          const ivclass::Classification &C = IA.classify(I, L);
          if (C.isLinear())
            Form = C.Form;
        } else if (IA.classify(I, Innermost).isInvariant()) {
          // Inside a nested loop but invariant there: the value advances
          // only with L.  The mul itself is not a node of L's SSA graph, so
          // derive its L-form from the operands' classifications.
          const ivclass::Classification &A = IA.classify(I->operand(0), L);
          const ivclass::Classification &B = IA.classify(I->operand(1), L);
          if (A.hasClosedForm() && B.hasClosedForm())
            if (std::optional<ivclass::ClosedForm> P =
                    A.Form.mulChecked(B.Form))
              if (P->isLinear() && !P->isInvariant())
                Form = *P;
        }
        if (!Form)
          continue;
        if (!symbolsAvailable(Form->coeff(0), L) ||
            !symbolsAvailable(Form->coeff(1), L))
          continue;
        Work.push_back({I, *Form});
      }
    }

    for (auto &[Mul, Form] : Work) {
      // Materialize init and step at the end of the preheader.
      size_t PrePos = Preheader->size() - (Preheader->terminator() ? 1 : 0);
      ir::Value *Init = materializeAt(F, Form.coeff(0), Preheader, PrePos,
                                      std::string(Mul->name()) + ".sr.init");
      if (!Init)
        continue;
      PrePos = Preheader->size() - (Preheader->terminator() ? 1 : 0);
      ir::Value *Step = materializeAt(F, Form.coeff(1), Preheader, PrePos,
                                      std::string(Mul->name()) + ".sr.step");
      if (!Step)
        continue;

      // Recurrence: X = phi(init, X + step).
      ir::Instruction *Phi = L->header()->insertAt(
          L->header()->phis().size(),
          F.newInstr(ir::Opcode::Phi, {},
                     F.uniqueName(Mul->name().empty()
                                      ? std::string("sr")
                                      : std::string(Mul->name()) + ".sr")));
      ir::Instruction *Next = Latch->insertBeforeTerminator(
          F.newInstr(ir::Opcode::Add, {Phi, Step},
                     F.uniqueName(std::string(Phi->name()) + ".next")));
      // Wire the phi: one incoming per header predecessor.
      for (ir::BasicBlock *Pred : L->header()->predecessors())
        Phi->addIncoming(L->contains(Pred) ? static_cast<ir::Value *>(Next)
                                           : Init,
                         Pred);
      ++Stats.PhisInserted;

      // The multiplication's value on iteration h is exactly X(h).
      F.replaceAllUsesWith(Mul, Phi);
      Mul->parent()->erase(Mul);
      ++Stats.Reduced;
    }
  }
  F.recomputePreds();
  static const stats::Counter NumReduced("transform.strength_reduced");
  static const stats::Counter NumPhisInserted("transform.phis_inserted");
  NumReduced.bump(Stats.Reduced);
  NumPhisInserted.bump(Stats.PhisInserted);
  return Stats;
}
