//===- frontend/Token.h - Lexical tokens ------------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and source locations for the BeyondIV loop language, a small
/// structured language in which all of the paper's example loops (L1..L24,
/// Figures 1-10) can be written essentially verbatim.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_FRONTEND_TOKEN_H
#define BEYONDIV_FRONTEND_TOKEN_H

#include "support/StringInterner.h"
#include <cstdint>
#include <string>
#include <string_view>

namespace biv {
namespace frontend {

/// 1-based line/column position in the source buffer.
struct SourceLoc {
  unsigned Line = 1;
  unsigned Col = 1;

  std::string str() const {
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

enum class TokenKind {
  EndOfFile,
  Error,
  // Literals and names.
  Number,
  Identifier,
  // Keywords.
  KwFunc,
  KwLoop,
  KwFor,
  KwWhile,
  KwIf,
  KwElse,
  KwBreak,
  KwReturn,
  KwTo,
  KwDownTo,
  KwBy,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Caret,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
};

/// Returns a printable spelling for diagnostics (e.g. "'('", "identifier").
const char *tokenKindName(TokenKind K);

/// A single lexed token.
///
/// Identifier (and keyword) spellings are interned by the lexer: Text views
/// the interner's arena copy (stable for the interner's lifetime, not tied
/// to the source buffer) and Sym is the dense per-unit symbol, so everything
/// downstream compares u32s instead of strings.  Error tokens carry their
/// message in Text.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  support::Symbol Sym = support::NoSymbol; ///< Identifier symbol.
  std::string_view Text;  ///< Interned spelling or diagnostic text.
  int64_t Value = 0;      ///< Numeric value for Number tokens.
  SourceLoc Loc;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace frontend
} // namespace biv

#endif // BEYONDIV_FRONTEND_TOKEN_H
