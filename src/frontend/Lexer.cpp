//===- frontend/Lexer.cpp - Lexer for the loop language --------------------===//

#include "frontend/Lexer.h"
#include <cctype>
#include <cstdint>

using namespace biv::frontend;

const char *biv::frontend::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::EndOfFile:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Number:
    return "number";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::KwFunc:
    return "'func'";
  case TokenKind::KwLoop:
    return "'loop'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwTo:
    return "'to'";
  case TokenKind::KwDownTo:
    return "'downto'";
  case TokenKind::KwBy:
    return "'by'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Caret:
    return "'^'";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  }
  return "<bad token kind>";
}

Lexer::Lexer(std::string Source, biv::support::StringInterner &Strings)
    : SI(&Strings), Src(std::move(Source)) {
  seedKeywords();
}

Lexer::Lexer(std::string Source)
    : Owned(std::make_unique<OwnedStrings>()), SI(&Owned->SI),
      Src(std::move(Source)) {
  seedKeywords();
}

void Lexer::seedKeywords() {
  static constexpr struct {
    const char *Spelling;
    TokenKind Kind;
  } Keywords[] = {
      {"func", TokenKind::KwFunc},     {"loop", TokenKind::KwLoop},
      {"for", TokenKind::KwFor},       {"while", TokenKind::KwWhile},
      {"if", TokenKind::KwIf},         {"else", TokenKind::KwElse},
      {"break", TokenKind::KwBreak},   {"return", TokenKind::KwReturn},
      {"to", TokenKind::KwTo},         {"downto", TokenKind::KwDownTo},
      {"by", TokenKind::KwBy},
  };
  support::Arena &A = SI->arena();
  for (const auto &KW : Keywords) {
    support::Symbol Sym = SI->intern(KW.Spelling);
    if (Sym >= KwKinds.size())
      KwKinds.resize(A, Sym + 1, TokenKind::Identifier);
    KwKinds[Sym] = KW.Kind;
  }
}

char Lexer::get() {
  char C = peek();
  if (C == '\0')
    return C;
  ++Pos;
  if (C == '\n') {
    ++Loc.Line;
    Loc.Col = 1;
  } else {
    ++Loc.Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (true) {
    char C = peek();
    if (C == '#') {
      while (peek() != '\n' && peek() != '\0')
        get();
      continue;
    }
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      get();
      continue;
    }
    return;
  }
}

Token Lexer::make(TokenKind K, std::string_view Text) {
  Token T;
  T.Kind = K;
  T.Text = Text;
  T.Loc = TokenStart;
  return T;
}

Token Lexer::next() {
  skipTrivia();
  TokenStart = Loc;
  char C = peek();
  if (C == '\0')
    return make(TokenKind::EndOfFile);

  if (std::isdigit(static_cast<unsigned char>(C))) {
    size_t Start = Pos;
    while (std::isdigit(static_cast<unsigned char>(peek())))
      get();
    std::string_view Digits(Src.data() + Start, Pos - Start);
    // Accumulate with an explicit overflow check: source text is untrusted
    // (the fuzzer feeds arbitrary digit strings) and std::stoll would throw.
    int64_t V = 0;
    for (char D : Digits) {
      int64_t Digit = D - '0';
      if (V > (INT64_MAX - Digit) / 10)
        return make(TokenKind::Error,
                    SI->internView("integer literal out of range: " +
                                   std::string(Digits)));
      V = V * 10 + Digit;
    }
    Token T = make(TokenKind::Number);
    T.Value = V;
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    size_t Start = Pos;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
      get();
    support::Symbol Sym =
        SI->intern(std::string_view(Src.data() + Start, Pos - Start));
    TokenKind Kind = Sym < KwKinds.size() ? KwKinds[Sym] : TokenKind::Identifier;
    Token T = make(Kind, SI->str(Sym));
    T.Sym = Sym;
    return T;
  }

  get();
  switch (C) {
  case '(':
    return make(TokenKind::LParen);
  case ')':
    return make(TokenKind::RParen);
  case '{':
    return make(TokenKind::LBrace);
  case '}':
    return make(TokenKind::RBrace);
  case '[':
    return make(TokenKind::LBracket);
  case ']':
    return make(TokenKind::RBracket);
  case ',':
    return make(TokenKind::Comma);
  case ';':
    return make(TokenKind::Semicolon);
  case ':':
    return make(TokenKind::Colon);
  case '+':
    return make(TokenKind::Plus);
  case '-':
    return make(TokenKind::Minus);
  case '*':
    return make(TokenKind::Star);
  case '/':
    return make(TokenKind::Slash);
  case '^':
    return make(TokenKind::Caret);
  case '=':
    if (peek() == '=') {
      get();
      return make(TokenKind::EqEq);
    }
    return make(TokenKind::Assign);
  case '!':
    if (peek() == '=') {
      get();
      return make(TokenKind::NotEq);
    }
    return make(TokenKind::Error, "stray '!'");
  case '<':
    if (peek() == '=') {
      get();
      return make(TokenKind::LessEq);
    }
    return make(TokenKind::Less);
  case '>':
    if (peek() == '=') {
      get();
      return make(TokenKind::GreaterEq);
    }
    return make(TokenKind::Greater);
  default:
    return make(TokenKind::Error,
                SI->internView(std::string("unexpected character '") + C +
                               "'"));
  }
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  Tokens.reserve(Src.size() / 4 + 8);
  while (true) {
    Tokens.push_back(next());
    if (Tokens.back().is(TokenKind::EndOfFile) ||
        Tokens.back().is(TokenKind::Error))
      break;
  }
  return Tokens;
}
