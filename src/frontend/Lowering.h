//===- frontend/Lowering.h - AST to CFG lowering ----------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed FuncDecl to a (pre-SSA) CFG.  Scalar variables become
/// LoadVar/StoreVar pairs that the SSA builder later promotes; arrays stay
/// as indexed loads/stores for dependence analysis.
///
/// Loop shapes produced:
///  - `loop L { ... }`      header = first body block; single backedge from
///                          the body's fall-through end; `break` exits.
///  - `for L: v = a to b`   preheader stores v; header tests v against b and
///                          branches body/exit; dedicated latch increments.
///  - `while (c) { ... }`   like `for` but with the user's condition.
///
/// Loop labels are recorded as block-name prefixes (<label>.header etc.) so
/// the loop analysis can report the paper's loop names.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_FRONTEND_LOWERING_H
#define BEYONDIV_FRONTEND_LOWERING_H

#include "frontend/AST.h"
#include "ir/Function.h"
#include <memory>
#include <string>
#include <vector>

namespace biv {
namespace frontend {

/// Lowers \p Decl to IR.  Semantic problems (break outside a loop, array
/// rank mismatches, reads of never-assigned names) are appended to
/// \p Errors and null is returned.
std::unique_ptr<ir::Function> lower(const FuncDecl &Decl,
                                    std::vector<std::string> &Errors);

/// Parses and lowers \p Source in one step (the common entry point for
/// tests, examples and benches).  Null plus diagnostics on any error.
std::unique_ptr<ir::Function> parseAndLower(const std::string &Source,
                                            std::vector<std::string> &Errors);

/// Like parseAndLower but aborts with the diagnostics on stderr; for tests
/// whose inputs are known to be valid.
std::unique_ptr<ir::Function> parseAndLowerOrDie(const std::string &Source);

} // namespace frontend
} // namespace biv

#endif // BEYONDIV_FRONTEND_LOWERING_H
