//===- frontend/Parser.cpp - Recursive-descent parser -----------------------===//

#include "frontend/Parser.h"
#include "support/Stats.h"
#include <cstdio>

using namespace biv::frontend;

namespace {
const biv::stats::Counter NumTokens("frontend.tokens");
const biv::stats::Counter NumDiagnostics("frontend.diagnostics");
} // namespace

Parser::Parser(std::string Source) {
  Lexer L(std::move(Source), SI);
  Tokens = L.lexAll();
  NumTokens.bump(Tokens.size());
  if (Tokens.back().is(TokenKind::Error)) {
    error("lex error: " + std::string(Tokens.back().Text));
    // Replace the error token by EOF so the parser can bail out cleanly.
    Tokens.back().Kind = TokenKind::EndOfFile;
  }
}

Token Parser::advance() {
  Token T = peek();
  if (!T.is(TokenKind::EndOfFile))
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  error(std::string("expected ") + tokenKindName(K) + " " + Context +
        ", found " + tokenKindName(peek().Kind));
  return false;
}

void Parser::error(const std::string &Msg) {
  Failed = true;
  NumDiagnostics.bump();
  Errors.push_back(peek().Loc.str() + ": " + Msg);
}

std::pair<std::string_view, biv::support::Symbol> Parser::freshLabel() {
  char Buf[16];
  int Len = std::snprintf(Buf, sizeof(Buf), "L$%u", NextLabel++);
  support::Symbol Sym = SI.intern(std::string_view(Buf, size_t(Len)));
  return {SI.str(Sym), Sym};
}

FuncDecl *Parser::parseFunction() {
  auto *F = A.create<FuncDecl>();
  F->Strings = &SI;
  F->Loc = peek().Loc;
  if (!expect(TokenKind::KwFunc, "at start of function"))
    return nullptr;
  if (!check(TokenKind::Identifier)) {
    error("expected function name");
    return nullptr;
  }
  Token Name = advance();
  F->Name = Name.Text;
  F->NameSym = Name.Sym;
  if (!expect(TokenKind::LParen, "after function name"))
    return nullptr;
  if (!check(TokenKind::RParen)) {
    do {
      if (!check(TokenKind::Identifier)) {
        error("expected parameter name");
        return nullptr;
      }
      Token P = advance();
      F->Params.push_back(A, ParamDecl{P.Text, P.Sym});
    } while (accept(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "after parameters"))
    return nullptr;
  if (!expect(TokenKind::LBrace, "before function body"))
    return nullptr;
  F->Body = parseBlock();
  if (Failed)
    return nullptr;
  return F;
}

StmtList Parser::parseBlock() {
  StmtList Body;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile) &&
         !Failed) {
    Stmt *S = parseStatement();
    if (!S)
      break;
    Body.push_back(A, S);
  }
  expect(TokenKind::RBrace, "to close block");
  return Body;
}

StmtList Parser::parseBlockOrStatement() {
  if (accept(TokenKind::LBrace))
    return parseBlock();
  StmtList Body;
  if (Stmt *S = parseStatement())
    Body.push_back(A, S);
  return Body;
}

Stmt *Parser::parseStatement() {
  SourceLoc Loc = peek().Loc;

  if (accept(TokenKind::KwBreak)) {
    expect(TokenKind::Semicolon, "after 'break'");
    return A.create<BreakStmt>(Loc);
  }

  if (accept(TokenKind::KwReturn)) {
    Expr *V = nullptr;
    if (!check(TokenKind::Semicolon)) {
      V = parseExpr();
      if (!V)
        return nullptr;
    }
    expect(TokenKind::Semicolon, "after 'return'");
    return A.create<ReturnStmt>(V, Loc);
  }

  if (accept(TokenKind::KwIf)) {
    if (!expect(TokenKind::LParen, "after 'if'"))
      return nullptr;
    Expr *Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokenKind::RParen, "after if condition"))
      return nullptr;
    StmtList Then = parseBlockOrStatement();
    StmtList Else;
    if (accept(TokenKind::KwElse))
      Else = parseBlockOrStatement();
    return A.create<IfStmt>(Cond, Then, Else, Loc);
  }

  if (accept(TokenKind::KwLoop)) {
    std::string_view Label;
    support::Symbol LabelSym;
    if (check(TokenKind::Identifier)) {
      Token T = advance();
      Label = T.Text;
      LabelSym = T.Sym;
    } else {
      std::tie(Label, LabelSym) = freshLabel();
    }
    if (!expect(TokenKind::LBrace, "to open loop body"))
      return nullptr;
    StmtList Body = parseBlock();
    return A.create<LoopStmt>(Label, LabelSym, Body, Loc);
  }

  if (accept(TokenKind::KwFor)) {
    // `for L18: i = ...` or `for i = ...`.
    std::string_view Label;
    support::Symbol LabelSym = support::NoSymbol;
    if (check(TokenKind::Identifier) && peekAhead(1).is(TokenKind::Colon)) {
      Token T = advance();
      Label = T.Text;
      LabelSym = T.Sym;
      advance(); // ':'
    }
    if (!check(TokenKind::Identifier)) {
      error("expected loop variable after 'for'");
      return nullptr;
    }
    Token VarTok = advance();
    if (Label.empty())
      std::tie(Label, LabelSym) = freshLabel();
    if (!expect(TokenKind::Assign, "after for-loop variable"))
      return nullptr;
    Expr *Lo = parseExpr();
    if (!Lo)
      return nullptr;
    bool Down = false;
    if (accept(TokenKind::KwDownTo))
      Down = true;
    else if (!expect(TokenKind::KwTo, "in for-loop bounds"))
      return nullptr;
    Expr *Hi = parseExpr();
    if (!Hi)
      return nullptr;
    Expr *Step = nullptr;
    if (accept(TokenKind::KwBy)) {
      Step = parseExpr();
      if (!Step)
        return nullptr;
    }
    if (!expect(TokenKind::LBrace, "to open for-loop body"))
      return nullptr;
    StmtList Body = parseBlock();
    return A.create<ForStmt>(Label, LabelSym, VarTok.Text, VarTok.Sym, Lo, Hi,
                             Step, Down, Body, Loc);
  }

  if (accept(TokenKind::KwWhile)) {
    std::string_view Label;
    support::Symbol LabelSym = support::NoSymbol;
    if (check(TokenKind::Identifier) && peekAhead(1).is(TokenKind::Colon)) {
      Token T = advance();
      Label = T.Text;
      LabelSym = T.Sym;
      advance(); // ':'
    }
    if (Label.empty())
      std::tie(Label, LabelSym) = freshLabel();
    if (!expect(TokenKind::LParen, "after 'while'"))
      return nullptr;
    Expr *Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokenKind::RParen, "after while condition"))
      return nullptr;
    if (!expect(TokenKind::LBrace, "to open while body"))
      return nullptr;
    StmtList Body = parseBlock();
    return A.create<WhileStmt>(Label, LabelSym, Cond, Body, Loc);
  }

  if (check(TokenKind::Identifier)) {
    Token Name = advance();
    if (accept(TokenKind::LBracket)) {
      ExprList Indices;
      do {
        Expr *E = parseExpr();
        if (!E)
          return nullptr;
        Indices.push_back(A, E);
      } while (accept(TokenKind::Comma));
      if (!expect(TokenKind::RBracket, "after subscripts"))
        return nullptr;
      if (!expect(TokenKind::Assign, "in array assignment"))
        return nullptr;
      Expr *V = parseExpr();
      if (!V)
        return nullptr;
      expect(TokenKind::Semicolon, "after assignment");
      return A.create<ArrayAssignStmt>(Name.Text, Name.Sym, Indices, V, Loc);
    }
    if (!expect(TokenKind::Assign, "in assignment"))
      return nullptr;
    Expr *V = parseExpr();
    if (!V)
      return nullptr;
    expect(TokenKind::Semicolon, "after assignment");
    return A.create<AssignStmt>(Name.Text, Name.Sym, V, Loc);
  }

  error(std::string("expected statement, found ") +
        tokenKindName(peek().Kind));
  return nullptr;
}

Expr *Parser::parseExpr() { return parseComparison(); }

Expr *Parser::parseComparison() {
  Expr *L = parseAdditive();
  if (!L)
    return nullptr;
  while (true) {
    BinOp Op;
    if (check(TokenKind::EqEq))
      Op = BinOp::EQ;
    else if (check(TokenKind::NotEq))
      Op = BinOp::NE;
    else if (check(TokenKind::Less))
      Op = BinOp::LT;
    else if (check(TokenKind::LessEq))
      Op = BinOp::LE;
    else if (check(TokenKind::Greater))
      Op = BinOp::GT;
    else if (check(TokenKind::GreaterEq))
      Op = BinOp::GE;
    else
      return L;
    SourceLoc Loc = advance().Loc;
    Expr *R = parseAdditive();
    if (!R)
      return nullptr;
    L = A.create<BinaryExpr>(Op, L, R, Loc);
  }
}

Expr *Parser::parseAdditive() {
  Expr *L = parseMultiplicative();
  if (!L)
    return nullptr;
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    BinOp Op = check(TokenKind::Plus) ? BinOp::Add : BinOp::Sub;
    SourceLoc Loc = advance().Loc;
    Expr *R = parseMultiplicative();
    if (!R)
      return nullptr;
    L = A.create<BinaryExpr>(Op, L, R, Loc);
  }
  return L;
}

Expr *Parser::parseMultiplicative() {
  Expr *L = parseUnary();
  if (!L)
    return nullptr;
  while (check(TokenKind::Star) || check(TokenKind::Slash)) {
    BinOp Op = check(TokenKind::Star) ? BinOp::Mul : BinOp::Div;
    SourceLoc Loc = advance().Loc;
    Expr *R = parseUnary();
    if (!R)
      return nullptr;
    L = A.create<BinaryExpr>(Op, L, R, Loc);
  }
  return L;
}

Expr *Parser::parseUnary() {
  if (check(TokenKind::Minus)) {
    SourceLoc Loc = advance().Loc;
    Expr *S = parseUnary();
    if (!S)
      return nullptr;
    return A.create<UnaryExpr>(S, Loc);
  }
  return parsePower();
}

Expr *Parser::parsePower() {
  Expr *L = parsePrimary();
  if (!L)
    return nullptr;
  if (check(TokenKind::Caret)) {
    SourceLoc Loc = advance().Loc;
    // Right associative: a^b^c == a^(b^c).
    Expr *R = parseUnary();
    if (!R)
      return nullptr;
    return A.create<BinaryExpr>(BinOp::Pow, L, R, Loc);
  }
  return L;
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  if (check(TokenKind::Number)) {
    Token T = advance();
    return A.create<IntLitExpr>(T.Value, Loc);
  }
  if (check(TokenKind::Identifier)) {
    Token Name = advance();
    if (accept(TokenKind::LBracket)) {
      ExprList Indices;
      do {
        Expr *E = parseExpr();
        if (!E)
          return nullptr;
        Indices.push_back(A, E);
      } while (accept(TokenKind::Comma));
      if (!expect(TokenKind::RBracket, "after subscripts"))
        return nullptr;
      return A.create<ArrayRefExpr>(Name.Text, Name.Sym, Indices, Loc);
    }
    return A.create<VarRefExpr>(Name.Text, Name.Sym, Loc);
  }
  if (accept(TokenKind::LParen)) {
    Expr *E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return E;
  }
  error(std::string("expected expression, found ") +
        tokenKindName(peek().Kind));
  return nullptr;
}
