//===- frontend/Parser.cpp - Recursive-descent parser -----------------------===//

#include "frontend/Parser.h"
#include "support/Stats.h"

using namespace biv::frontend;

namespace {
const biv::stats::Counter NumTokens("frontend.tokens");
const biv::stats::Counter NumDiagnostics("frontend.diagnostics");
} // namespace

Parser::Parser(std::string Source) {
  Lexer L(std::move(Source));
  Tokens = L.lexAll();
  NumTokens.bump(Tokens.size());
  if (Tokens.back().is(TokenKind::Error)) {
    error("lex error: " + Tokens.back().Text);
    // Replace the error token by EOF so the parser can bail out cleanly.
    Tokens.back().Kind = TokenKind::EndOfFile;
  }
}

Token Parser::advance() {
  Token T = peek();
  if (!T.is(TokenKind::EndOfFile))
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  error(std::string("expected ") + tokenKindName(K) + " " + Context +
        ", found " + tokenKindName(peek().Kind));
  return false;
}

void Parser::error(const std::string &Msg) {
  Failed = true;
  NumDiagnostics.bump();
  Errors.push_back(peek().Loc.str() + ": " + Msg);
}

std::string Parser::freshLabel() {
  return "L$" + std::to_string(NextLabel++);
}

std::unique_ptr<FuncDecl> Parser::parseFunction() {
  auto F = std::make_unique<FuncDecl>();
  F->Loc = peek().Loc;
  if (!expect(TokenKind::KwFunc, "at start of function"))
    return nullptr;
  if (!check(TokenKind::Identifier)) {
    error("expected function name");
    return nullptr;
  }
  F->Name = advance().Text;
  if (!expect(TokenKind::LParen, "after function name"))
    return nullptr;
  if (!check(TokenKind::RParen)) {
    do {
      if (!check(TokenKind::Identifier)) {
        error("expected parameter name");
        return nullptr;
      }
      F->Params.push_back(advance().Text);
    } while (accept(TokenKind::Comma));
  }
  if (!expect(TokenKind::RParen, "after parameters"))
    return nullptr;
  if (!expect(TokenKind::LBrace, "before function body"))
    return nullptr;
  F->Body = parseBlock();
  if (Failed)
    return nullptr;
  return F;
}

StmtList Parser::parseBlock() {
  StmtList Body;
  while (!check(TokenKind::RBrace) && !check(TokenKind::EndOfFile) &&
         !Failed) {
    StmtPtr S = parseStatement();
    if (!S)
      break;
    Body.push_back(std::move(S));
  }
  expect(TokenKind::RBrace, "to close block");
  return Body;
}

StmtList Parser::parseBlockOrStatement() {
  if (accept(TokenKind::LBrace))
    return parseBlock();
  StmtList Body;
  if (StmtPtr S = parseStatement())
    Body.push_back(std::move(S));
  return Body;
}

StmtPtr Parser::parseStatement() {
  SourceLoc Loc = peek().Loc;

  if (accept(TokenKind::KwBreak)) {
    expect(TokenKind::Semicolon, "after 'break'");
    return std::make_unique<BreakStmt>(Loc);
  }

  if (accept(TokenKind::KwReturn)) {
    ExprPtr V;
    if (!check(TokenKind::Semicolon)) {
      V = parseExpr();
      if (!V)
        return nullptr;
    }
    expect(TokenKind::Semicolon, "after 'return'");
    return std::make_unique<ReturnStmt>(std::move(V), Loc);
  }

  if (accept(TokenKind::KwIf)) {
    if (!expect(TokenKind::LParen, "after 'if'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokenKind::RParen, "after if condition"))
      return nullptr;
    StmtList Then = parseBlockOrStatement();
    StmtList Else;
    if (accept(TokenKind::KwElse))
      Else = parseBlockOrStatement();
    return std::make_unique<IfStmt>(std::move(Cond), std::move(Then),
                                    std::move(Else), Loc);
  }

  if (accept(TokenKind::KwLoop)) {
    std::string Label =
        check(TokenKind::Identifier) ? advance().Text : freshLabel();
    if (!expect(TokenKind::LBrace, "to open loop body"))
      return nullptr;
    StmtList Body = parseBlock();
    return std::make_unique<LoopStmt>(std::move(Label), std::move(Body), Loc);
  }

  if (accept(TokenKind::KwFor)) {
    // `for L18: i = ...` or `for i = ...`.
    std::string Label;
    if (check(TokenKind::Identifier) && peekAhead(1).is(TokenKind::Colon)) {
      Label = advance().Text;
      advance(); // ':'
    }
    if (!check(TokenKind::Identifier)) {
      error("expected loop variable after 'for'");
      return nullptr;
    }
    std::string Var = advance().Text;
    if (Label.empty())
      Label = freshLabel();
    if (!expect(TokenKind::Assign, "after for-loop variable"))
      return nullptr;
    ExprPtr Lo = parseExpr();
    if (!Lo)
      return nullptr;
    bool Down = false;
    if (accept(TokenKind::KwDownTo))
      Down = true;
    else if (!expect(TokenKind::KwTo, "in for-loop bounds"))
      return nullptr;
    ExprPtr Hi = parseExpr();
    if (!Hi)
      return nullptr;
    ExprPtr Step;
    if (accept(TokenKind::KwBy)) {
      Step = parseExpr();
      if (!Step)
        return nullptr;
    }
    if (!expect(TokenKind::LBrace, "to open for-loop body"))
      return nullptr;
    StmtList Body = parseBlock();
    return std::make_unique<ForStmt>(std::move(Label), std::move(Var),
                                     std::move(Lo), std::move(Hi),
                                     std::move(Step), Down, std::move(Body),
                                     Loc);
  }

  if (accept(TokenKind::KwWhile)) {
    std::string Label;
    if (check(TokenKind::Identifier) && peekAhead(1).is(TokenKind::Colon)) {
      Label = advance().Text;
      advance(); // ':'
    }
    if (Label.empty())
      Label = freshLabel();
    if (!expect(TokenKind::LParen, "after 'while'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokenKind::RParen, "after while condition"))
      return nullptr;
    if (!expect(TokenKind::LBrace, "to open while body"))
      return nullptr;
    StmtList Body = parseBlock();
    return std::make_unique<WhileStmt>(std::move(Label), std::move(Cond),
                                       std::move(Body), Loc);
  }

  if (check(TokenKind::Identifier)) {
    std::string Name = advance().Text;
    if (accept(TokenKind::LBracket)) {
      std::vector<ExprPtr> Indices;
      do {
        ExprPtr E = parseExpr();
        if (!E)
          return nullptr;
        Indices.push_back(std::move(E));
      } while (accept(TokenKind::Comma));
      if (!expect(TokenKind::RBracket, "after subscripts"))
        return nullptr;
      if (!expect(TokenKind::Assign, "in array assignment"))
        return nullptr;
      ExprPtr V = parseExpr();
      if (!V)
        return nullptr;
      expect(TokenKind::Semicolon, "after assignment");
      return std::make_unique<ArrayAssignStmt>(std::move(Name),
                                               std::move(Indices),
                                               std::move(V), Loc);
    }
    if (!expect(TokenKind::Assign, "in assignment"))
      return nullptr;
    ExprPtr V = parseExpr();
    if (!V)
      return nullptr;
    expect(TokenKind::Semicolon, "after assignment");
    return std::make_unique<AssignStmt>(std::move(Name), std::move(V), Loc);
  }

  error(std::string("expected statement, found ") +
        tokenKindName(peek().Kind));
  return nullptr;
}

ExprPtr Parser::parseExpr() { return parseComparison(); }

ExprPtr Parser::parseComparison() {
  ExprPtr L = parseAdditive();
  if (!L)
    return nullptr;
  while (true) {
    BinOp Op;
    if (check(TokenKind::EqEq))
      Op = BinOp::EQ;
    else if (check(TokenKind::NotEq))
      Op = BinOp::NE;
    else if (check(TokenKind::Less))
      Op = BinOp::LT;
    else if (check(TokenKind::LessEq))
      Op = BinOp::LE;
    else if (check(TokenKind::Greater))
      Op = BinOp::GT;
    else if (check(TokenKind::GreaterEq))
      Op = BinOp::GE;
    else
      return L;
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseAdditive();
    if (!R)
      return nullptr;
    L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
  }
}

ExprPtr Parser::parseAdditive() {
  ExprPtr L = parseMultiplicative();
  if (!L)
    return nullptr;
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    BinOp Op = check(TokenKind::Plus) ? BinOp::Add : BinOp::Sub;
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseMultiplicative();
    if (!R)
      return nullptr;
    L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
  }
  return L;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr L = parseUnary();
  if (!L)
    return nullptr;
  while (check(TokenKind::Star) || check(TokenKind::Slash)) {
    BinOp Op = check(TokenKind::Star) ? BinOp::Mul : BinOp::Div;
    SourceLoc Loc = advance().Loc;
    ExprPtr R = parseUnary();
    if (!R)
      return nullptr;
    L = std::make_unique<BinaryExpr>(Op, std::move(L), std::move(R), Loc);
  }
  return L;
}

ExprPtr Parser::parseUnary() {
  if (check(TokenKind::Minus)) {
    SourceLoc Loc = advance().Loc;
    ExprPtr S = parseUnary();
    if (!S)
      return nullptr;
    return std::make_unique<UnaryExpr>(std::move(S), Loc);
  }
  return parsePower();
}

ExprPtr Parser::parsePower() {
  ExprPtr L = parsePrimary();
  if (!L)
    return nullptr;
  if (check(TokenKind::Caret)) {
    SourceLoc Loc = advance().Loc;
    // Right associative: a^b^c == a^(b^c).
    ExprPtr R = parseUnary();
    if (!R)
      return nullptr;
    return std::make_unique<BinaryExpr>(BinOp::Pow, std::move(L),
                                        std::move(R), Loc);
  }
  return L;
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = peek().Loc;
  if (check(TokenKind::Number)) {
    Token T = advance();
    return std::make_unique<IntLitExpr>(T.Value, Loc);
  }
  if (check(TokenKind::Identifier)) {
    std::string Name = advance().Text;
    if (accept(TokenKind::LBracket)) {
      std::vector<ExprPtr> Indices;
      do {
        ExprPtr E = parseExpr();
        if (!E)
          return nullptr;
        Indices.push_back(std::move(E));
      } while (accept(TokenKind::Comma));
      if (!expect(TokenKind::RBracket, "after subscripts"))
        return nullptr;
      return std::make_unique<ArrayRefExpr>(std::move(Name),
                                            std::move(Indices), Loc);
    }
    return std::make_unique<VarRefExpr>(std::move(Name), Loc);
  }
  if (accept(TokenKind::LParen)) {
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return E;
  }
  error(std::string("expected expression, found ") +
        tokenKindName(peek().Kind));
  return nullptr;
}
