//===- frontend/AST.h - Abstract syntax tree --------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the BeyondIV loop language.
///
/// Grammar sketch (see Parser.cpp for details):
/// \code
///   func   ::= 'func' ident '(' params? ')' block
///   stmt   ::= ident '=' expr ';'
///            | ident '[' exprs ']' '=' expr ';'
///            | 'if' '(' expr ')' block-or-stmt ('else' block-or-stmt)?
///            | 'loop' ident? block
///            | 'for' (ident ':')? ident '=' expr ('to'|'downto') expr
///              ('by' expr)? block
///            | 'while' '(' expr ')' block
///            | 'break' ';'  | 'return' expr? ';'
///   expr   ::= comparison over +,-,*,/,^ with unary minus
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_FRONTEND_AST_H
#define BEYONDIV_FRONTEND_AST_H

#include "frontend/Token.h"
#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace biv {
namespace frontend {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind { IntLit, VarRef, ArrayRef, Binary, Unary };

/// Binary operators; the comparison operators only appear in conditions but
/// the grammar does not enforce that.
enum class BinOp { Add, Sub, Mul, Div, Pow, EQ, NE, LT, LE, GT, GE };

/// Returns the surface spelling of \p Op (e.g. "+", "<=").
const char *binOpSpelling(BinOp Op);

class Expr {
public:
  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;
  virtual ~Expr();

  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Expr(ExprKind K, SourceLoc L) : Kind(K), Loc(L) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t V, SourceLoc L) : Expr(ExprKind::IntLit, L), Val(V) {}
  int64_t value() const { return Val; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

private:
  int64_t Val;
};

class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string N, SourceLoc L)
      : Expr(ExprKind::VarRef, L), Name(std::move(N)) {}
  const std::string &name() const { return Name; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::VarRef; }

private:
  std::string Name;
};

class ArrayRefExpr : public Expr {
public:
  ArrayRefExpr(std::string N, std::vector<ExprPtr> Idx, SourceLoc L)
      : Expr(ExprKind::ArrayRef, L), Name(std::move(N)),
        Indices(std::move(Idx)) {}
  const std::string &name() const { return Name; }
  const std::vector<ExprPtr> &indices() const { return Indices; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ArrayRef;
  }

private:
  std::string Name;
  std::vector<ExprPtr> Indices;
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinOp Op, ExprPtr L, ExprPtr R, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(std::move(L)),
        RHS(std::move(R)) {}
  BinOp op() const { return Op; }
  const Expr *lhs() const { return LHS.get(); }
  const Expr *rhs() const { return RHS.get(); }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  BinOp Op;
  ExprPtr LHS, RHS;
};

/// Unary minus.
class UnaryExpr : public Expr {
public:
  UnaryExpr(ExprPtr S, SourceLoc L)
      : Expr(ExprKind::Unary, L), Sub(std::move(S)) {}
  const Expr *sub() const { return Sub.get(); }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  ExprPtr Sub;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind { Assign, ArrayAssign, If, Loop, For, While, Break,
                      Return };

class Stmt {
public:
  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;
  virtual ~Stmt();

  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(StmtKind K, SourceLoc L) : Kind(K), Loc(L) {}

private:
  StmtKind Kind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

class AssignStmt : public Stmt {
public:
  AssignStmt(std::string N, ExprPtr V, SourceLoc L)
      : Stmt(StmtKind::Assign, L), Name(std::move(N)), Val(std::move(V)) {}
  const std::string &name() const { return Name; }
  const Expr *value() const { return Val.get(); }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }

private:
  std::string Name;
  ExprPtr Val;
};

class ArrayAssignStmt : public Stmt {
public:
  ArrayAssignStmt(std::string N, std::vector<ExprPtr> Idx, ExprPtr V,
                  SourceLoc L)
      : Stmt(StmtKind::ArrayAssign, L), Name(std::move(N)),
        Indices(std::move(Idx)), Val(std::move(V)) {}
  const std::string &name() const { return Name; }
  const std::vector<ExprPtr> &indices() const { return Indices; }
  const Expr *value() const { return Val.get(); }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::ArrayAssign;
  }

private:
  std::string Name;
  std::vector<ExprPtr> Indices;
  ExprPtr Val;
};

class IfStmt : public Stmt {
public:
  IfStmt(ExprPtr C, StmtList T, StmtList E, SourceLoc L)
      : Stmt(StmtKind::If, L), Cond(std::move(C)), Then(std::move(T)),
        Else(std::move(E)) {}
  const Expr *cond() const { return Cond.get(); }
  const StmtList &thenBody() const { return Then; }
  const StmtList &elseBody() const { return Else; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  ExprPtr Cond;
  StmtList Then, Else;
};

/// The paper's `loop ... endloop`: an unconditional loop exited by `break`.
class LoopStmt : public Stmt {
public:
  LoopStmt(std::string Label, StmtList B, SourceLoc L)
      : Stmt(StmtKind::Loop, L), Label(std::move(Label)), Body(std::move(B)) {}
  const std::string &label() const { return Label; }
  const StmtList &body() const { return Body; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Loop; }

private:
  std::string Label;
  StmtList Body;
};

/// `for [L:] v = lo to hi [by s]` (or `downto`, stepping negatively).
class ForStmt : public Stmt {
public:
  ForStmt(std::string Label, std::string Var, ExprPtr Lo, ExprPtr Hi,
          ExprPtr Step, bool Down, StmtList B, SourceLoc L)
      : Stmt(StmtKind::For, L), Label(std::move(Label)), Var(std::move(Var)),
        Lo(std::move(Lo)), Hi(std::move(Hi)), Step(std::move(Step)),
        Down(Down), Body(std::move(B)) {}
  const std::string &label() const { return Label; }
  const std::string &var() const { return Var; }
  const Expr *lo() const { return Lo.get(); }
  const Expr *hi() const { return Hi.get(); }
  /// Null means step 1 (or -1 when counting down).
  const Expr *step() const { return Step.get(); }
  bool isDown() const { return Down; }
  const StmtList &body() const { return Body; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }

private:
  std::string Label, Var;
  ExprPtr Lo, Hi, Step;
  bool Down;
  StmtList Body;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(std::string Label, ExprPtr C, StmtList B, SourceLoc L)
      : Stmt(StmtKind::While, L), Label(std::move(Label)), Cond(std::move(C)),
        Body(std::move(B)) {}
  const std::string &label() const { return Label; }
  const Expr *cond() const { return Cond.get(); }
  const StmtList &body() const { return Body; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }

private:
  std::string Label;
  ExprPtr Cond;
  StmtList Body;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc L) : Stmt(StmtKind::Break, L) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Break; }
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(ExprPtr V, SourceLoc L)
      : Stmt(StmtKind::Return, L), Val(std::move(V)) {}
  /// Null for a bare `return;`.
  const Expr *value() const { return Val.get(); }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }

private:
  ExprPtr Val;
};

/// A parsed `func` declaration.
struct FuncDecl {
  std::string Name;
  std::vector<std::string> Params;
  StmtList Body;
  SourceLoc Loc;
};

/// LLVM-style casts over Expr/Stmt (kind-tag based, no RTTI).
template <typename To, typename From> bool ast_isa(const From *N) {
  return To::classof(N);
}
template <typename To, typename From> const To *ast_cast(const From *N) {
  assert(To::classof(N) && "bad AST cast");
  return static_cast<const To *>(N);
}
template <typename To, typename From> const To *ast_dyn_cast(const From *N) {
  return N && To::classof(N) ? static_cast<const To *>(N) : nullptr;
}

/// Renders an expression back to surface syntax (for diagnostics/tests).
std::string toString(const Expr *E);

/// Renders a statement list with two-space indentation.
std::string toString(const StmtList &Body, unsigned Indent = 0);

/// Renders a whole function.
std::string toString(const FuncDecl &F);

} // namespace frontend
} // namespace biv

#endif // BEYONDIV_FRONTEND_AST_H
