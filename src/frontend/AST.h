//===- frontend/AST.h - Abstract syntax tree --------------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for the BeyondIV loop language.
///
/// Grammar sketch (see Parser.cpp for details):
/// \code
///   func   ::= 'func' ident '(' params? ')' block
///   stmt   ::= ident '=' expr ';'
///            | ident '[' exprs ']' '=' expr ';'
///            | 'if' '(' expr ')' block-or-stmt ('else' block-or-stmt)?
///            | 'loop' ident? block
///            | 'for' (ident ':')? ident '=' expr ('to'|'downto') expr
///              ('by' expr)? block
///            | 'while' '(' expr ')' block
///            | 'break' ';'  | 'return' expr? ';'
///   expr   ::= comparison over +,-,*,/,^ with unary minus
/// \endcode
///
/// Memory architecture (DESIGN.md §11): nodes are allocated from the owning
/// Parser's arena and never individually freed -- they are trivially
/// destructible (no vtables, no owning containers) and the whole tree goes
/// away when the parser does.  Names are interned: each node carries the
/// dense per-unit Symbol plus a string_view of the arena-backed spelling, so
/// lowering works on u32s while diagnostics and pretty-printing keep the
/// text at hand.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_FRONTEND_AST_H
#define BEYONDIV_FRONTEND_AST_H

#include "frontend/Token.h"
#include "support/Arena.h"
#include "support/StringInterner.h"
#include <cassert>
#include <string>
#include <string_view>

namespace biv {
namespace frontend {

class Expr;
class Stmt;

/// Child lists live in the parser's arena alongside the nodes.
using ExprList = support::ArenaVector<Expr *>;
using StmtList = support::ArenaVector<Stmt *>;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind { IntLit, VarRef, ArrayRef, Binary, Unary };

/// Binary operators; the comparison operators only appear in conditions but
/// the grammar does not enforce that.
enum class BinOp { Add, Sub, Mul, Div, Pow, EQ, NE, LT, LE, GT, GE };

/// Returns the surface spelling of \p Op (e.g. "+", "<=").
const char *binOpSpelling(BinOp Op);

class Expr {
public:
  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;

  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Expr(ExprKind K, SourceLoc L) : Kind(K), Loc(L) {}
  ~Expr() = default;

private:
  ExprKind Kind;
  SourceLoc Loc;
};

class IntLitExpr : public Expr {
public:
  IntLitExpr(int64_t V, SourceLoc L) : Expr(ExprKind::IntLit, L), Val(V) {}
  int64_t value() const { return Val; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

private:
  int64_t Val;
};

class VarRefExpr : public Expr {
public:
  VarRefExpr(std::string_view N, support::Symbol S, SourceLoc L)
      : Expr(ExprKind::VarRef, L), Name(N), Sym(S) {}
  std::string_view name() const { return Name; }
  support::Symbol sym() const { return Sym; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::VarRef; }

private:
  std::string_view Name;
  support::Symbol Sym;
};

class ArrayRefExpr : public Expr {
public:
  ArrayRefExpr(std::string_view N, support::Symbol S, ExprList Idx,
               SourceLoc L)
      : Expr(ExprKind::ArrayRef, L), Name(N), Sym(S), Indices(Idx) {}
  std::string_view name() const { return Name; }
  support::Symbol sym() const { return Sym; }
  const ExprList &indices() const { return Indices; }
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ArrayRef;
  }

private:
  std::string_view Name;
  support::Symbol Sym;
  ExprList Indices;
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinOp Op, Expr *L, Expr *R, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(L), RHS(R) {}
  BinOp op() const { return Op; }
  const Expr *lhs() const { return LHS; }
  const Expr *rhs() const { return RHS; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  BinOp Op;
  Expr *LHS, *RHS;
};

/// Unary minus.
class UnaryExpr : public Expr {
public:
  UnaryExpr(Expr *S, SourceLoc L) : Expr(ExprKind::Unary, L), Sub(S) {}
  const Expr *sub() const { return Sub; }
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

private:
  Expr *Sub;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind { Assign, ArrayAssign, If, Loop, For, While, Break,
                      Return };

class Stmt {
public:
  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;

  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(StmtKind K, SourceLoc L) : Kind(K), Loc(L) {}
  ~Stmt() = default;

private:
  StmtKind Kind;
  SourceLoc Loc;
};

class AssignStmt : public Stmt {
public:
  AssignStmt(std::string_view N, support::Symbol S, Expr *V, SourceLoc L)
      : Stmt(StmtKind::Assign, L), Name(N), Sym(S), Val(V) {}
  std::string_view name() const { return Name; }
  support::Symbol sym() const { return Sym; }
  const Expr *value() const { return Val; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Assign; }

private:
  std::string_view Name;
  support::Symbol Sym;
  Expr *Val;
};

class ArrayAssignStmt : public Stmt {
public:
  ArrayAssignStmt(std::string_view N, support::Symbol S, ExprList Idx,
                  Expr *V, SourceLoc L)
      : Stmt(StmtKind::ArrayAssign, L), Name(N), Sym(S), Indices(Idx),
        Val(V) {}
  std::string_view name() const { return Name; }
  support::Symbol sym() const { return Sym; }
  const ExprList &indices() const { return Indices; }
  const Expr *value() const { return Val; }
  static bool classof(const Stmt *S) {
    return S->kind() == StmtKind::ArrayAssign;
  }

private:
  std::string_view Name;
  support::Symbol Sym;
  ExprList Indices;
  Expr *Val;
};

class IfStmt : public Stmt {
public:
  IfStmt(Expr *C, StmtList T, StmtList E, SourceLoc L)
      : Stmt(StmtKind::If, L), Cond(C), Then(T), Else(E) {}
  const Expr *cond() const { return Cond; }
  const StmtList &thenBody() const { return Then; }
  const StmtList &elseBody() const { return Else; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::If; }

private:
  Expr *Cond;
  StmtList Then, Else;
};

/// The paper's `loop ... endloop`: an unconditional loop exited by `break`.
class LoopStmt : public Stmt {
public:
  LoopStmt(std::string_view Label, support::Symbol LabelS, StmtList B,
           SourceLoc L)
      : Stmt(StmtKind::Loop, L), Label(Label), LabelSym(LabelS), Body(B) {}
  std::string_view label() const { return Label; }
  support::Symbol labelSym() const { return LabelSym; }
  const StmtList &body() const { return Body; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Loop; }

private:
  std::string_view Label;
  support::Symbol LabelSym;
  StmtList Body;
};

/// `for [L:] v = lo to hi [by s]` (or `downto`, stepping negatively).
class ForStmt : public Stmt {
public:
  ForStmt(std::string_view Label, support::Symbol LabelS, std::string_view Var,
          support::Symbol VarS, Expr *Lo, Expr *Hi, Expr *Step, bool Down,
          StmtList B, SourceLoc L)
      : Stmt(StmtKind::For, L), Label(Label), Var(Var), LabelSym(LabelS),
        VarSym(VarS), Lo(Lo), Hi(Hi), Step(Step), Down(Down), Body(B) {}
  std::string_view label() const { return Label; }
  support::Symbol labelSym() const { return LabelSym; }
  std::string_view var() const { return Var; }
  support::Symbol varSym() const { return VarSym; }
  const Expr *lo() const { return Lo; }
  const Expr *hi() const { return Hi; }
  /// Null means step 1 (or -1 when counting down).
  const Expr *step() const { return Step; }
  bool isDown() const { return Down; }
  const StmtList &body() const { return Body; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::For; }

private:
  std::string_view Label, Var;
  support::Symbol LabelSym, VarSym;
  Expr *Lo, *Hi, *Step;
  bool Down;
  StmtList Body;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(std::string_view Label, support::Symbol LabelS, Expr *C,
            StmtList B, SourceLoc L)
      : Stmt(StmtKind::While, L), Label(Label), LabelSym(LabelS), Cond(C),
        Body(B) {}
  std::string_view label() const { return Label; }
  support::Symbol labelSym() const { return LabelSym; }
  const Expr *cond() const { return Cond; }
  const StmtList &body() const { return Body; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::While; }

private:
  std::string_view Label;
  support::Symbol LabelSym;
  Expr *Cond;
  StmtList Body;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc L) : Stmt(StmtKind::Break, L) {}
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Break; }
};

class ReturnStmt : public Stmt {
public:
  ReturnStmt(Expr *V, SourceLoc L) : Stmt(StmtKind::Return, L), Val(V) {}
  /// Null for a bare `return;`.
  const Expr *value() const { return Val; }
  static bool classof(const Stmt *S) { return S->kind() == StmtKind::Return; }

private:
  Expr *Val;
};

/// A formal parameter: interned name plus its symbol.
struct ParamDecl {
  std::string_view Name;
  support::Symbol Sym = support::NoSymbol;
};

/// A parsed `func` declaration.  Arena-allocated like every node; Strings is
/// the parser's interner, letting lowering size dense symbol-indexed tables
/// (and resolve symbols to spellings) without rehashing anything.
struct FuncDecl {
  std::string_view Name;
  support::Symbol NameSym = support::NoSymbol;
  support::ArenaVector<ParamDecl> Params;
  StmtList Body;
  SourceLoc Loc;
  const support::StringInterner *Strings = nullptr;
};

/// LLVM-style casts over Expr/Stmt (kind-tag based, no RTTI).
template <typename To, typename From> bool ast_isa(const From *N) {
  return To::classof(N);
}
template <typename To, typename From> const To *ast_cast(const From *N) {
  assert(To::classof(N) && "bad AST cast");
  return static_cast<const To *>(N);
}
template <typename To, typename From> const To *ast_dyn_cast(const From *N) {
  return N && To::classof(N) ? static_cast<const To *>(N) : nullptr;
}

/// Renders an expression back to surface syntax (for diagnostics/tests).
std::string toString(const Expr *E);

/// Renders a statement list with two-space indentation.
std::string toString(const StmtList &Body, unsigned Indent = 0);

/// Renders a whole function.
std::string toString(const FuncDecl &F);

} // namespace frontend
} // namespace biv

#endif // BEYONDIV_FRONTEND_AST_H
