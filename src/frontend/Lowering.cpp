//===- frontend/Lowering.cpp - AST to CFG lowering ---------------------------===//

#include "frontend/Lowering.h"
#include "frontend/Parser.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Stats.h"
#include <algorithm>
#include <cstdio>
#include <span>

using namespace biv;
using namespace biv::frontend;

namespace {

using support::Symbol;

/// Walks the AST once to find which names are assigned (scalars), which are
/// subscripted (arrays, with rank), and basic semantic errors.
///
/// All bookkeeping is symbol-indexed over the parse interner's dense id
/// space -- flat vectors instead of string sets/maps.  The var/array
/// creation order handed to the driver is sorted by spelling, which is
/// exactly the iteration order the old std::set/std::map produced; the SSA
/// builder places phis in variable creation order, so this keeps printed IR
/// (and cache digests) byte-identical.
class NameCollector {
public:
  explicit NameCollector(const support::StringInterner &SI)
      : Rank(SI.size(), 0), SI(SI), IsParam(SI.size(), 0),
        IsAssigned(SI.size(), 0), IsLabel(SI.size(), 0) {}

  /// Assigned scalar symbols, sorted by spelling.
  std::vector<Symbol> ScalarsByName;
  /// Array symbols, sorted by spelling; Rank[Sym] is their rank.
  std::vector<Symbol> ArraysByName;
  std::vector<uint32_t> Rank;
  std::vector<std::string> Errors;

  void run(const FuncDecl &F) {
    for (const ParamDecl &P : F.Params) {
      if (IsParam[P.Sym])
        Errors.push_back("duplicate parameter name '" + std::string(P.Name) +
                         "'");
      IsParam[P.Sym] = 1;
    }
    visit(F.Body);
    auto BySpelling = [this](Symbol A, Symbol B) {
      return SI.str(A) < SI.str(B);
    };
    std::sort(ScalarsByName.begin(), ScalarsByName.end(), BySpelling);
    std::sort(ArraysByName.begin(), ArraysByName.end(), BySpelling);
    for (Symbol Sym : ArraysByName)
      if (IsAssigned[Sym] || IsParam[Sym])
        Errors.push_back("name '" + std::string(SI.str(Sym)) +
                         "' used as both array and scalar");
  }

private:
  const support::StringInterner &SI;
  std::vector<uint8_t> IsParam;
  std::vector<uint8_t> IsAssigned;
  std::vector<uint8_t> IsLabel;

  void noteAssigned(Symbol Sym) {
    if (!IsAssigned[Sym]) {
      IsAssigned[Sym] = 1;
      ScalarsByName.push_back(Sym);
    }
  }

  /// Loop labels must be unique: analyses address loops by name
  /// (LoopInfo::byName), so a duplicate would be silently ambiguous.
  void noteLabel(std::string_view Label, Symbol Sym, SourceLoc Loc) {
    if (IsLabel[Sym])
      Errors.push_back(Loc.str() + ": duplicate loop label '" +
                       std::string(Label) + "'");
    IsLabel[Sym] = 1;
  }

  void noteArray(std::string_view Name, Symbol Sym, unsigned ArrRank,
                 SourceLoc Loc) {
    if (!Rank[Sym]) {
      Rank[Sym] = ArrRank;
      ArraysByName.push_back(Sym);
    } else if (Rank[Sym] != ArrRank) {
      Errors.push_back(Loc.str() + ": array '" + std::string(Name) +
                       "' used with inconsistent rank");
    }
  }

  void visit(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
    case ExprKind::VarRef:
      return;
    case ExprKind::ArrayRef: {
      const auto *A = ast_cast<ArrayRefExpr>(E);
      noteArray(A->name(), A->sym(), A->indices().size(), A->loc());
      for (const Expr *I : A->indices())
        visit(I);
      return;
    }
    case ExprKind::Binary: {
      const auto *B = ast_cast<BinaryExpr>(E);
      visit(B->lhs());
      visit(B->rhs());
      return;
    }
    case ExprKind::Unary:
      visit(ast_cast<UnaryExpr>(E)->sub());
      return;
    }
  }

  void visit(const StmtList &Body) {
    for (const Stmt *S : Body)
      visit(S);
  }

  void visit(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = ast_cast<AssignStmt>(S);
      noteAssigned(A->sym());
      visit(A->value());
      return;
    }
    case StmtKind::ArrayAssign: {
      const auto *A = ast_cast<ArrayAssignStmt>(S);
      noteArray(A->name(), A->sym(), A->indices().size(), A->loc());
      for (const Expr *I : A->indices())
        visit(I);
      visit(A->value());
      return;
    }
    case StmtKind::If: {
      const auto *I = ast_cast<IfStmt>(S);
      visit(I->cond());
      visit(I->thenBody());
      visit(I->elseBody());
      return;
    }
    case StmtKind::Loop: {
      const auto *L = ast_cast<LoopStmt>(S);
      noteLabel(L->label(), L->labelSym(), L->loc());
      visit(L->body());
      return;
    }
    case StmtKind::For: {
      const auto *F = ast_cast<ForStmt>(S);
      noteLabel(F->label(), F->labelSym(), F->loc());
      noteAssigned(F->varSym());
      visit(F->lo());
      visit(F->hi());
      if (F->step())
        visit(F->step());
      visit(F->body());
      return;
    }
    case StmtKind::While: {
      const auto *W = ast_cast<WhileStmt>(S);
      noteLabel(W->label(), W->labelSym(), W->loc());
      visit(W->cond());
      visit(W->body());
      return;
    }
    case StmtKind::Break:
      return;
    case StmtKind::Return:
      if (const Expr *V = ast_cast<ReturnStmt>(S)->value())
        visit(V);
      return;
    }
  }
};

/// Lowers one function.  Name resolution is a vector index: the collector's
/// symbol space maps straight to ir::Var*/Array*/Argument* tables.
class LoweringDriver {
public:
  LoweringDriver(const FuncDecl &Decl, std::vector<std::string> &Errors)
      : Decl(Decl), Errors(Errors) {}

  std::unique_ptr<ir::Function> run() {
    assert(Decl.Strings && "FuncDecl lost its interner");
    const support::StringInterner &Names = *Decl.Strings;
    NameCollector NC(Names);
    NC.run(Decl);
    for (std::string &E : NC.Errors)
      Errors.push_back(std::move(E));
    if (!Errors.empty())
      return nullptr;

    F = std::make_unique<ir::Function>(Decl.Name);
    VarBySym.assign(Names.size(), nullptr);
    ArrayBySym.assign(Names.size(), nullptr);
    ArgBySym.assign(Names.size(), nullptr);
    for (const ParamDecl &P : Decl.Params)
      ArgBySym[P.Sym] = F->addArgument(P.Name);
    for (Symbol Sym : NC.ScalarsByName)
      VarBySym[Sym] = F->getOrCreateVar(Names.str(Sym));
    for (Symbol Sym : NC.ArraysByName)
      ArrayBySym[Sym] = F->getOrCreateArray(Names.str(Sym), NC.Rank[Sym]);

    B = std::make_unique<ir::IRBuilder>(*F, F->createBlock("entry"));
    lowerBody(Decl.Body);
    if (!B->insertBlock()->terminator())
      B->ret();
    if (!Errors.empty())
      return nullptr;

    F->removeUnreachableBlocks();
    ir::verifyOrDie(*F);
    return std::move(F);
  }

private:
  const FuncDecl &Decl;
  std::vector<std::string> &Errors;
  std::unique_ptr<ir::Function> F;
  std::unique_ptr<ir::IRBuilder> B;
  std::vector<ir::Var *> VarBySym;
  std::vector<ir::Array *> ArrayBySym;
  std::vector<ir::Argument *> ArgBySym;
  std::vector<ir::BasicBlock *> LoopExits;
  /// Shared subscript scratch: nested array refs stack their index values
  /// here (each ref restores its own base), so lowering a ref allocates
  /// nothing once the vector has grown to the deepest nesting seen.
  std::vector<ir::Value *> IndexScratch;

  void error(SourceLoc Loc, const std::string &Msg) {
    Errors.push_back(Loc.str() + ": " + Msg);
  }

  /// "<label><suffix>" block (e.g. "L1.header"); short names stay on the
  /// stack via SSO.
  ir::BasicBlock *labeledBlock(std::string_view Label, const char *Suffix) {
    std::string N(Label);
    N += Suffix;
    return F->createBlock(N);
  }

  /// Starts a fresh anonymous block for code following a `break`/`return`;
  /// it is unreachable and removed at the end.
  void startDeadBlock() { B->setInsertBlock(F->createBlock("dead")); }

  /// Lowers \p Indices onto IndexScratch and emits via \p Emit, restoring
  /// the scratch watermark afterwards.
  template <typename EmitFn>
  ir::Instruction *withIndices(const ExprList &Indices, EmitFn Emit) {
    size_t Base = IndexScratch.size();
    for (const Expr *I : Indices)
      IndexScratch.push_back(lowerExpr(I));
    ir::Instruction *Out = Emit(std::span<ir::Value *const>(
        IndexScratch.data() + Base, Indices.size()));
    IndexScratch.resize(Base);
    return Out;
  }

  ir::Value *lowerExpr(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return B->constInt(ast_cast<IntLitExpr>(E)->value());
    case ExprKind::VarRef: {
      const auto *V = ast_cast<VarRefExpr>(E);
      if (ir::Var *Var = VarBySym[V->sym()])
        return B->loadVar(Var);
      if (ir::Argument *A = ArgBySym[V->sym()])
        return A;
      error(V->loc(), "use of undefined name '" + std::string(V->name()) +
                          "'");
      return B->constInt(0);
    }
    case ExprKind::ArrayRef: {
      const auto *A = ast_cast<ArrayRefExpr>(E);
      return withIndices(A->indices(),
                         [&](std::span<ir::Value *const> Idx) {
                           return B->arrayLoad(ArrayBySym[A->sym()], Idx);
                         });
    }
    case ExprKind::Binary: {
      const auto *Bin = ast_cast<BinaryExpr>(E);
      ir::Value *L = lowerExpr(Bin->lhs());
      ir::Value *R = lowerExpr(Bin->rhs());
      switch (Bin->op()) {
      case BinOp::Add:
        return B->add(L, R);
      case BinOp::Sub:
        return B->sub(L, R);
      case BinOp::Mul:
        return B->mul(L, R);
      case BinOp::Div:
        return B->div(L, R);
      case BinOp::Pow:
        return B->exp(L, R);
      case BinOp::EQ:
        return B->binary(ir::Opcode::CmpEQ, L, R);
      case BinOp::NE:
        return B->binary(ir::Opcode::CmpNE, L, R);
      case BinOp::LT:
        return B->binary(ir::Opcode::CmpLT, L, R);
      case BinOp::LE:
        return B->binary(ir::Opcode::CmpLE, L, R);
      case BinOp::GT:
        return B->binary(ir::Opcode::CmpGT, L, R);
      case BinOp::GE:
        return B->binary(ir::Opcode::CmpGE, L, R);
      }
      assert(false && "unknown binop");
      return nullptr;
    }
    case ExprKind::Unary: {
      // Fold negative literals so loop bounds like `-4` are constants.
      const auto *U = ast_cast<UnaryExpr>(E);
      if (const auto *Lit = ast_dyn_cast<IntLitExpr>(U->sub()))
        return B->constInt(-Lit->value());
      return B->neg(lowerExpr(U->sub()));
    }
    }
    assert(false && "unknown expr kind");
    return nullptr;
  }

  void lowerBody(const StmtList &Body) {
    for (const Stmt *S : Body)
      lowerStmt(S);
  }

  void lowerStmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = ast_cast<AssignStmt>(S);
      ir::Value *V = lowerExpr(A->value());
      B->storeVar(VarBySym[A->sym()], V);
      return;
    }
    case StmtKind::ArrayAssign: {
      // Lower subscripts and value before forming the scratch span: either
      // lowering may grow (reallocate) the scratch vector.
      const auto *A = ast_cast<ArrayAssignStmt>(S);
      size_t Base = IndexScratch.size();
      for (const Expr *I : A->indices())
        IndexScratch.push_back(lowerExpr(I));
      ir::Value *V = lowerExpr(A->value());
      B->arrayStore(ArrayBySym[A->sym()],
                    std::span<ir::Value *const>(IndexScratch.data() + Base,
                                                A->indices().size()),
                    V);
      IndexScratch.resize(Base);
      return;
    }
    case StmtKind::If:
      lowerIf(ast_cast<IfStmt>(S));
      return;
    case StmtKind::Loop:
      lowerLoop(ast_cast<LoopStmt>(S));
      return;
    case StmtKind::For:
      lowerFor(ast_cast<ForStmt>(S));
      return;
    case StmtKind::While:
      lowerWhile(ast_cast<WhileStmt>(S));
      return;
    case StmtKind::Break: {
      if (LoopExits.empty()) {
        error(S->loc(), "'break' outside of a loop");
        return;
      }
      B->br(LoopExits.back());
      startDeadBlock();
      return;
    }
    case StmtKind::Return: {
      const auto *R = ast_cast<ReturnStmt>(S);
      ir::Value *V = R->value() ? lowerExpr(R->value()) : nullptr;
      B->ret(V);
      startDeadBlock();
      return;
    }
    }
  }

  void lowerIf(const IfStmt *S) {
    ir::Value *Cond = lowerExpr(S->cond());
    ir::BasicBlock *ThenBB = F->createBlock("if.then");
    ir::BasicBlock *JoinBB = F->createBlock("if.join");
    ir::BasicBlock *ElseBB =
        S->elseBody().empty() ? JoinBB : F->createBlock("if.else");
    B->condBr(Cond, ThenBB, ElseBB);

    B->setInsertBlock(ThenBB);
    lowerBody(S->thenBody());
    if (!B->insertBlock()->terminator())
      B->br(JoinBB);

    if (!S->elseBody().empty()) {
      B->setInsertBlock(ElseBB);
      lowerBody(S->elseBody());
      if (!B->insertBlock()->terminator())
        B->br(JoinBB);
    }
    B->setInsertBlock(JoinBB);
  }

  void lowerLoop(const LoopStmt *S) {
    ir::BasicBlock *Header = labeledBlock(S->label(), ".header");
    ir::BasicBlock *Exit = labeledBlock(S->label(), ".exit");
    B->br(Header);
    B->setInsertBlock(Header);
    LoopExits.push_back(Exit);
    lowerBody(S->body());
    LoopExits.pop_back();
    if (!B->insertBlock()->terminator())
      B->br(Header); // The fall-through end of the body is the backedge.
    B->setInsertBlock(Exit);
  }

  void lowerFor(const ForStmt *S) {
    ir::Var *V = VarBySym[S->varSym()];
    ir::Value *Lo = lowerExpr(S->lo());
    ir::Value *Hi = lowerExpr(S->hi());
    ir::Value *Step = S->step() ? lowerExpr(S->step())
                                : static_cast<ir::Value *>(B->constInt(1));
    B->storeVar(V, Lo);

    ir::BasicBlock *Header = labeledBlock(S->label(), ".header");
    ir::BasicBlock *Body = labeledBlock(S->label(), ".body");
    ir::BasicBlock *Latch = labeledBlock(S->label(), ".latch");
    ir::BasicBlock *Exit = labeledBlock(S->label(), ".exit");

    B->br(Header);
    B->setInsertBlock(Header);
    ir::Value *Cur = B->loadVar(V);
    ir::Value *Cond =
        B->binary(S->isDown() ? ir::Opcode::CmpGE : ir::Opcode::CmpLE, Cur,
                  Hi);
    B->condBr(Cond, Body, Exit);

    B->setInsertBlock(Body);
    LoopExits.push_back(Exit);
    lowerBody(S->body());
    LoopExits.pop_back();
    if (!B->insertBlock()->terminator())
      B->br(Latch);

    B->setInsertBlock(Latch);
    ir::Value *Next = B->loadVar(V);
    Next = S->isDown() ? B->sub(Next, Step) : B->add(Next, Step);
    B->storeVar(V, Next);
    B->br(Header);

    B->setInsertBlock(Exit);
  }

  void lowerWhile(const WhileStmt *S) {
    ir::BasicBlock *Header = labeledBlock(S->label(), ".header");
    ir::BasicBlock *Body = labeledBlock(S->label(), ".body");
    ir::BasicBlock *Exit = labeledBlock(S->label(), ".exit");

    B->br(Header);
    B->setInsertBlock(Header);
    ir::Value *Cond = lowerExpr(S->cond());
    B->condBr(Cond, Body, Exit);

    B->setInsertBlock(Body);
    LoopExits.push_back(Exit);
    lowerBody(S->body());
    LoopExits.pop_back();
    if (!B->insertBlock()->terminator())
      B->br(Header);

    B->setInsertBlock(Exit);
  }
};

} // namespace

std::unique_ptr<ir::Function>
biv::frontend::lower(const FuncDecl &Decl, std::vector<std::string> &Errors) {
  return LoweringDriver(Decl, Errors).run();
}

namespace {
const biv::stats::Timer ParsePhase("phase.parse");
const biv::stats::Counter NumFunctionsLowered("frontend.functions_lowered");
// Lowering diagnostics share the parser's counter (same registry cell).
const biv::stats::Counter NumLowerDiagnostics("frontend.diagnostics");
// Unit memory footprint at lowering time: the parse arena (AST + tokens'
// interned text) plus the function arena (IR built so far).  SSA and the
// analyses grow the function arena further; these counters capture the
// front-end cost that DESIGN.md §11 budgets.
const biv::stats::Counter NumAllocBytes("alloc.bytes");
const biv::stats::Counter NumAllocChunks("alloc.chunks");
const biv::stats::Counter NumInternSymbols("intern.symbols");
} // namespace

std::unique_ptr<ir::Function>
biv::frontend::parseAndLower(const std::string &Source,
                             std::vector<std::string> &Errors) {
  stats::ScopedSpan Span(ParsePhase);
  Parser P(Source);
  FuncDecl *Decl = P.parseFunction();
  if (!Decl) {
    Errors.insert(Errors.end(), P.errors().begin(), P.errors().end());
    return nullptr;
  }
  size_t ErrorsBefore = Errors.size();
  std::unique_ptr<ir::Function> F = lower(*Decl, Errors);
  NumLowerDiagnostics.bump(Errors.size() - ErrorsBefore);
  if (F) {
    NumFunctionsLowered.bump();
    NumAllocBytes.bump(P.arena().bytesAllocated() +
                       F->arena().bytesAllocated());
    NumAllocChunks.bump(P.arena().numChunks() + F->arena().numChunks());
    NumInternSymbols.bump(P.strings().size() + F->interner().size());
  }
  return F;
}

std::unique_ptr<ir::Function>
biv::frontend::parseAndLowerOrDie(const std::string &Source) {
  std::vector<std::string> Errors;
  std::unique_ptr<ir::Function> F = parseAndLower(Source, Errors);
  if (F)
    return F;
  std::fprintf(stderr, "parseAndLowerOrDie failed:\n");
  for (const std::string &E : Errors)
    std::fprintf(stderr, "  %s\n", E.c_str());
  abort();
}
