//===- frontend/Lowering.cpp - AST to CFG lowering ---------------------------===//

#include "frontend/Lowering.h"
#include "frontend/Parser.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/Stats.h"
#include <cstdio>
#include <map>
#include <set>

using namespace biv;
using namespace biv::frontend;

namespace {

/// Walks the AST once to find which names are assigned (scalars), which are
/// subscripted (arrays, with rank), and basic semantic errors.
class NameCollector {
public:
  std::set<std::string> AssignedScalars;
  std::map<std::string, unsigned> ArrayRanks;
  std::vector<std::string> Errors;

  void run(const FuncDecl &F) {
    for (const std::string &P : F.Params)
      if (!Params.insert(P).second)
        Errors.push_back("duplicate parameter name '" + P + "'");
    visit(F.Body);
    for (const auto &[Name, Rank] : ArrayRanks) {
      (void)Rank;
      if (AssignedScalars.count(Name) || Params.count(Name))
        Errors.push_back("name '" + Name +
                         "' used as both array and scalar");
    }
  }

private:
  std::set<std::string> Params;
  std::set<std::string> Labels;

  /// Loop labels must be unique: analyses address loops by name
  /// (LoopInfo::byName), so a duplicate would be silently ambiguous.
  void noteLabel(const std::string &Label, SourceLoc Loc) {
    if (!Labels.insert(Label).second)
      Errors.push_back(Loc.str() + ": duplicate loop label '" + Label + "'");
  }

  void noteArray(const std::string &Name, unsigned Rank, SourceLoc Loc) {
    auto [It, Inserted] = ArrayRanks.try_emplace(Name, Rank);
    if (!Inserted && It->second != Rank)
      Errors.push_back(Loc.str() + ": array '" + Name +
                       "' used with inconsistent rank");
  }

  void visit(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
    case ExprKind::VarRef:
      return;
    case ExprKind::ArrayRef: {
      const auto *A = ast_cast<ArrayRefExpr>(E);
      noteArray(A->name(), A->indices().size(), A->loc());
      for (const ExprPtr &I : A->indices())
        visit(I.get());
      return;
    }
    case ExprKind::Binary: {
      const auto *B = ast_cast<BinaryExpr>(E);
      visit(B->lhs());
      visit(B->rhs());
      return;
    }
    case ExprKind::Unary:
      visit(ast_cast<UnaryExpr>(E)->sub());
      return;
    }
  }

  void visit(const StmtList &Body) {
    for (const StmtPtr &S : Body)
      visit(S.get());
  }

  void visit(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = ast_cast<AssignStmt>(S);
      AssignedScalars.insert(A->name());
      visit(A->value());
      return;
    }
    case StmtKind::ArrayAssign: {
      const auto *A = ast_cast<ArrayAssignStmt>(S);
      noteArray(A->name(), A->indices().size(), A->loc());
      for (const ExprPtr &I : A->indices())
        visit(I.get());
      visit(A->value());
      return;
    }
    case StmtKind::If: {
      const auto *I = ast_cast<IfStmt>(S);
      visit(I->cond());
      visit(I->thenBody());
      visit(I->elseBody());
      return;
    }
    case StmtKind::Loop: {
      const auto *L = ast_cast<LoopStmt>(S);
      noteLabel(L->label(), L->loc());
      visit(L->body());
      return;
    }
    case StmtKind::For: {
      const auto *F = ast_cast<ForStmt>(S);
      noteLabel(F->label(), F->loc());
      AssignedScalars.insert(F->var());
      visit(F->lo());
      visit(F->hi());
      if (F->step())
        visit(F->step());
      visit(F->body());
      return;
    }
    case StmtKind::While: {
      const auto *W = ast_cast<WhileStmt>(S);
      noteLabel(W->label(), W->loc());
      visit(W->cond());
      visit(W->body());
      return;
    }
    case StmtKind::Break:
      return;
    case StmtKind::Return:
      if (const Expr *V = ast_cast<ReturnStmt>(S)->value())
        visit(V);
      return;
    }
  }
};

/// Lowers one function.
class LoweringDriver {
public:
  LoweringDriver(const FuncDecl &Decl, std::vector<std::string> &Errors)
      : Decl(Decl), Errors(Errors) {}

  std::unique_ptr<ir::Function> run() {
    NameCollector Names;
    Names.run(Decl);
    for (std::string &E : Names.Errors)
      Errors.push_back(std::move(E));
    if (!Errors.empty())
      return nullptr;

    F = std::make_unique<ir::Function>(Decl.Name);
    for (const std::string &P : Decl.Params)
      F->addArgument(P);
    for (const std::string &N : Names.AssignedScalars)
      F->getOrCreateVar(N);
    for (const auto &[N, Rank] : Names.ArrayRanks)
      F->getOrCreateArray(N, Rank);

    B = std::make_unique<ir::IRBuilder>(*F, F->createBlock("entry"));
    lowerBody(Decl.Body);
    if (!B->insertBlock()->terminator())
      B->ret();
    if (!Errors.empty())
      return nullptr;

    F->removeUnreachableBlocks();
    ir::verifyOrDie(*F);
    return std::move(F);
  }

private:
  const FuncDecl &Decl;
  std::vector<std::string> &Errors;
  std::unique_ptr<ir::Function> F;
  std::unique_ptr<ir::IRBuilder> B;
  std::vector<ir::BasicBlock *> LoopExits;

  void error(SourceLoc Loc, const std::string &Msg) {
    Errors.push_back(Loc.str() + ": " + Msg);
  }

  /// Starts a fresh anonymous block for code following a `break`/`return`;
  /// it is unreachable and removed at the end.
  void startDeadBlock() { B->setInsertBlock(F->createBlock("dead")); }

  ir::Value *lowerExpr(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::IntLit:
      return B->constInt(ast_cast<IntLitExpr>(E)->value());
    case ExprKind::VarRef: {
      const auto *V = ast_cast<VarRefExpr>(E);
      if (ir::Var *Var = F->findVar(V->name()))
        return B->loadVar(Var);
      if (ir::Argument *A = F->findArgument(V->name()))
        return A;
      error(V->loc(), "use of undefined name '" + V->name() + "'");
      return B->constInt(0);
    }
    case ExprKind::ArrayRef: {
      const auto *A = ast_cast<ArrayRefExpr>(E);
      std::vector<ir::Value *> Indices;
      for (const ExprPtr &I : A->indices())
        Indices.push_back(lowerExpr(I.get()));
      return B->arrayLoad(F->findArray(A->name()), std::move(Indices));
    }
    case ExprKind::Binary: {
      const auto *Bin = ast_cast<BinaryExpr>(E);
      ir::Value *L = lowerExpr(Bin->lhs());
      ir::Value *R = lowerExpr(Bin->rhs());
      switch (Bin->op()) {
      case BinOp::Add:
        return B->add(L, R);
      case BinOp::Sub:
        return B->sub(L, R);
      case BinOp::Mul:
        return B->mul(L, R);
      case BinOp::Div:
        return B->div(L, R);
      case BinOp::Pow:
        return B->exp(L, R);
      case BinOp::EQ:
        return B->binary(ir::Opcode::CmpEQ, L, R);
      case BinOp::NE:
        return B->binary(ir::Opcode::CmpNE, L, R);
      case BinOp::LT:
        return B->binary(ir::Opcode::CmpLT, L, R);
      case BinOp::LE:
        return B->binary(ir::Opcode::CmpLE, L, R);
      case BinOp::GT:
        return B->binary(ir::Opcode::CmpGT, L, R);
      case BinOp::GE:
        return B->binary(ir::Opcode::CmpGE, L, R);
      }
      assert(false && "unknown binop");
      return nullptr;
    }
    case ExprKind::Unary: {
      // Fold negative literals so loop bounds like `-4` are constants.
      const auto *U = ast_cast<UnaryExpr>(E);
      if (const auto *Lit = ast_dyn_cast<IntLitExpr>(U->sub()))
        return B->constInt(-Lit->value());
      return B->neg(lowerExpr(U->sub()));
    }
    }
    assert(false && "unknown expr kind");
    return nullptr;
  }

  void lowerBody(const StmtList &Body) {
    for (const StmtPtr &S : Body)
      lowerStmt(S.get());
  }

  void lowerStmt(const Stmt *S) {
    switch (S->kind()) {
    case StmtKind::Assign: {
      const auto *A = ast_cast<AssignStmt>(S);
      ir::Value *V = lowerExpr(A->value());
      B->storeVar(F->findVar(A->name()), V);
      return;
    }
    case StmtKind::ArrayAssign: {
      const auto *A = ast_cast<ArrayAssignStmt>(S);
      std::vector<ir::Value *> Indices;
      for (const ExprPtr &I : A->indices())
        Indices.push_back(lowerExpr(I.get()));
      ir::Value *V = lowerExpr(A->value());
      B->arrayStore(F->findArray(A->name()), std::move(Indices), V);
      return;
    }
    case StmtKind::If:
      lowerIf(ast_cast<IfStmt>(S));
      return;
    case StmtKind::Loop:
      lowerLoop(ast_cast<LoopStmt>(S));
      return;
    case StmtKind::For:
      lowerFor(ast_cast<ForStmt>(S));
      return;
    case StmtKind::While:
      lowerWhile(ast_cast<WhileStmt>(S));
      return;
    case StmtKind::Break: {
      if (LoopExits.empty()) {
        error(S->loc(), "'break' outside of a loop");
        return;
      }
      B->br(LoopExits.back());
      startDeadBlock();
      return;
    }
    case StmtKind::Return: {
      const auto *R = ast_cast<ReturnStmt>(S);
      ir::Value *V = R->value() ? lowerExpr(R->value()) : nullptr;
      B->ret(V);
      startDeadBlock();
      return;
    }
    }
  }

  void lowerIf(const IfStmt *S) {
    ir::Value *Cond = lowerExpr(S->cond());
    ir::BasicBlock *ThenBB = F->createBlock("if.then");
    ir::BasicBlock *JoinBB = F->createBlock("if.join");
    ir::BasicBlock *ElseBB =
        S->elseBody().empty() ? JoinBB : F->createBlock("if.else");
    B->condBr(Cond, ThenBB, ElseBB);

    B->setInsertBlock(ThenBB);
    lowerBody(S->thenBody());
    if (!B->insertBlock()->terminator())
      B->br(JoinBB);

    if (!S->elseBody().empty()) {
      B->setInsertBlock(ElseBB);
      lowerBody(S->elseBody());
      if (!B->insertBlock()->terminator())
        B->br(JoinBB);
    }
    B->setInsertBlock(JoinBB);
  }

  void lowerLoop(const LoopStmt *S) {
    ir::BasicBlock *Header = F->createBlock(S->label() + ".header");
    ir::BasicBlock *Exit = F->createBlock(S->label() + ".exit");
    B->br(Header);
    B->setInsertBlock(Header);
    LoopExits.push_back(Exit);
    lowerBody(S->body());
    LoopExits.pop_back();
    if (!B->insertBlock()->terminator())
      B->br(Header); // The fall-through end of the body is the backedge.
    B->setInsertBlock(Exit);
  }

  void lowerFor(const ForStmt *S) {
    ir::Var *V = F->findVar(S->var());
    ir::Value *Lo = lowerExpr(S->lo());
    ir::Value *Hi = lowerExpr(S->hi());
    ir::Value *Step = S->step() ? lowerExpr(S->step())
                                : static_cast<ir::Value *>(B->constInt(1));
    B->storeVar(V, Lo);

    ir::BasicBlock *Header = F->createBlock(S->label() + ".header");
    ir::BasicBlock *Body = F->createBlock(S->label() + ".body");
    ir::BasicBlock *Latch = F->createBlock(S->label() + ".latch");
    ir::BasicBlock *Exit = F->createBlock(S->label() + ".exit");

    B->br(Header);
    B->setInsertBlock(Header);
    ir::Value *Cur = B->loadVar(V);
    ir::Value *Cond =
        B->binary(S->isDown() ? ir::Opcode::CmpGE : ir::Opcode::CmpLE, Cur,
                  Hi);
    B->condBr(Cond, Body, Exit);

    B->setInsertBlock(Body);
    LoopExits.push_back(Exit);
    lowerBody(S->body());
    LoopExits.pop_back();
    if (!B->insertBlock()->terminator())
      B->br(Latch);

    B->setInsertBlock(Latch);
    ir::Value *Next = B->loadVar(V);
    Next = S->isDown() ? B->sub(Next, Step) : B->add(Next, Step);
    B->storeVar(V, Next);
    B->br(Header);

    B->setInsertBlock(Exit);
  }

  void lowerWhile(const WhileStmt *S) {
    ir::BasicBlock *Header = F->createBlock(S->label() + ".header");
    ir::BasicBlock *Body = F->createBlock(S->label() + ".body");
    ir::BasicBlock *Exit = F->createBlock(S->label() + ".exit");

    B->br(Header);
    B->setInsertBlock(Header);
    ir::Value *Cond = lowerExpr(S->cond());
    B->condBr(Cond, Body, Exit);

    B->setInsertBlock(Body);
    LoopExits.push_back(Exit);
    lowerBody(S->body());
    LoopExits.pop_back();
    if (!B->insertBlock()->terminator())
      B->br(Header);

    B->setInsertBlock(Exit);
  }
};

} // namespace

std::unique_ptr<ir::Function>
biv::frontend::lower(const FuncDecl &Decl, std::vector<std::string> &Errors) {
  return LoweringDriver(Decl, Errors).run();
}

namespace {
const biv::stats::Timer ParsePhase("phase.parse");
const biv::stats::Counter NumFunctionsLowered("frontend.functions_lowered");
// Lowering diagnostics share the parser's counter (same registry cell).
const biv::stats::Counter NumLowerDiagnostics("frontend.diagnostics");
} // namespace

std::unique_ptr<ir::Function>
biv::frontend::parseAndLower(const std::string &Source,
                             std::vector<std::string> &Errors) {
  stats::ScopedSpan Span(ParsePhase);
  Parser P(Source);
  std::unique_ptr<FuncDecl> Decl = P.parseFunction();
  if (!Decl) {
    Errors.insert(Errors.end(), P.errors().begin(), P.errors().end());
    return nullptr;
  }
  size_t ErrorsBefore = Errors.size();
  std::unique_ptr<ir::Function> F = lower(*Decl, Errors);
  NumLowerDiagnostics.bump(Errors.size() - ErrorsBefore);
  if (F)
    NumFunctionsLowered.bump();
  return F;
}

std::unique_ptr<ir::Function>
biv::frontend::parseAndLowerOrDie(const std::string &Source) {
  std::vector<std::string> Errors;
  std::unique_ptr<ir::Function> F = parseAndLower(Source, Errors);
  if (F)
    return F;
  std::fprintf(stderr, "parseAndLowerOrDie failed:\n");
  for (const std::string &E : Errors)
    std::fprintf(stderr, "  %s\n", E.c_str());
  abort();
}
