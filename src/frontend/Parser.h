//===- frontend/Parser.h - Recursive-descent parser -------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the loop language.  On error it records a
/// diagnostic and returns null; it never throws.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_FRONTEND_PARSER_H
#define BEYONDIV_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Lexer.h"
#include <memory>
#include <string>
#include <vector>

namespace biv {
namespace frontend {

/// Parses one function per call; diagnostics accumulate in errors().
class Parser {
public:
  explicit Parser(std::string Source);

  /// Parses a single `func`; returns null and records diagnostics on error.
  std::unique_ptr<FuncDecl> parseFunction();

  const std::vector<std::string> &errors() const { return Errors; }

private:
  const Token &peek() const { return Tokens[Pos]; }
  const Token &peekAhead(size_t N) const {
    return Tokens[std::min(Pos + N, Tokens.size() - 1)];
  }
  Token advance();
  bool check(TokenKind K) const { return peek().is(K); }
  bool accept(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  void error(const std::string &Msg);

  StmtList parseBlock();
  StmtPtr parseStatement();
  StmtList parseBlockOrStatement();
  ExprPtr parseExpr();
  ExprPtr parseComparison();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePower();
  ExprPtr parsePrimary();

  std::string freshLabel();

  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::vector<std::string> Errors;
  bool Failed = false;
  unsigned NextLabel = 1;
};

} // namespace frontend
} // namespace biv

#endif // BEYONDIV_FRONTEND_PARSER_H
