//===- frontend/Parser.h - Recursive-descent parser -------------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the loop language.  On error it records a
/// diagnostic and returns null; it never throws.
///
/// The parser owns the unit's parse arena and string interner: tokens,
/// AST nodes, child lists, and identifier spellings all live there, so the
/// returned FuncDecl* is valid exactly as long as the Parser and the whole
/// tree is batch-freed when the Parser is destroyed.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_FRONTEND_PARSER_H
#define BEYONDIV_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Lexer.h"
#include "support/Arena.h"
#include "support/StringInterner.h"
#include <string>
#include <utility>
#include <vector>

namespace biv {
namespace frontend {

/// Parses one function per call; diagnostics accumulate in errors().
class Parser {
public:
  explicit Parser(std::string Source);

  /// Parses a single `func`; returns null and records diagnostics on error.
  /// The declaration lives in this parser's arena.
  FuncDecl *parseFunction();

  const std::vector<std::string> &errors() const { return Errors; }

  /// The parse arena (AST nodes, spellings, token text).
  support::Arena &arena() { return A; }

  /// The unit's interner; FuncDecl::Strings points here.
  const support::StringInterner &strings() const { return SI; }

private:
  const Token &peek() const { return Tokens[Pos]; }
  const Token &peekAhead(size_t N) const {
    return Tokens[std::min(Pos + N, Tokens.size() - 1)];
  }
  Token advance();
  bool check(TokenKind K) const { return peek().is(K); }
  bool accept(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  void error(const std::string &Msg);

  StmtList parseBlock();
  Stmt *parseStatement();
  StmtList parseBlockOrStatement();
  Expr *parseExpr();
  Expr *parseComparison();
  Expr *parseAdditive();
  Expr *parseMultiplicative();
  Expr *parseUnary();
  Expr *parsePower();
  Expr *parsePrimary();

  /// A fresh interned "L$<n>" label.
  std::pair<std::string_view, support::Symbol> freshLabel();

  support::Arena A; // must precede the interner and all parse products
  support::StringInterner SI{A};
  std::vector<Token> Tokens;
  size_t Pos = 0;
  std::vector<std::string> Errors;
  bool Failed = false;
  unsigned NextLabel = 1;
};

} // namespace frontend
} // namespace biv

#endif // BEYONDIV_FRONTEND_PARSER_H
