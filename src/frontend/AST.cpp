//===- frontend/AST.cpp - Abstract syntax tree ------------------------------===//

#include "frontend/AST.h"
#include <cassert>

using namespace biv::frontend;

const char *biv::frontend::binOpSpelling(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Pow:
    return "^";
  case BinOp::EQ:
    return "==";
  case BinOp::NE:
    return "!=";
  case BinOp::LT:
    return "<";
  case BinOp::LE:
    return "<=";
  case BinOp::GT:
    return ">";
  case BinOp::GE:
    return ">=";
  }
  assert(false && "unknown binop");
  return "?";
}

std::string biv::frontend::toString(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::IntLit:
    return std::to_string(ast_cast<IntLitExpr>(E)->value());
  case ExprKind::VarRef:
    return std::string(ast_cast<VarRefExpr>(E)->name());
  case ExprKind::ArrayRef: {
    const auto *A = ast_cast<ArrayRefExpr>(E);
    std::string Out = std::string(A->name()) + "[";
    for (size_t I = 0; I < A->indices().size(); ++I) {
      if (I)
        Out += ", ";
      Out += toString(A->indices()[I]);
    }
    return Out + "]";
  }
  case ExprKind::Binary: {
    const auto *B = ast_cast<BinaryExpr>(E);
    return "(" + toString(B->lhs()) + " " + binOpSpelling(B->op()) + " " +
           toString(B->rhs()) + ")";
  }
  case ExprKind::Unary:
    return "(-" + toString(ast_cast<UnaryExpr>(E)->sub()) + ")";
  }
  assert(false && "unknown expr kind");
  return "";
}

static std::string indentStr(unsigned N) { return std::string(N * 2, ' '); }

static std::string stmtToString(const Stmt *S, unsigned Indent) {
  std::string Pad = indentStr(Indent);
  switch (S->kind()) {
  case StmtKind::Assign: {
    const auto *A = ast_cast<AssignStmt>(S);
    return Pad + std::string(A->name()) + " = " + toString(A->value()) +
           ";\n";
  }
  case StmtKind::ArrayAssign: {
    const auto *A = ast_cast<ArrayAssignStmt>(S);
    std::string Out = Pad + std::string(A->name()) + "[";
    for (size_t I = 0; I < A->indices().size(); ++I) {
      if (I)
        Out += ", ";
      Out += toString(A->indices()[I]);
    }
    return Out + "] = " + toString(A->value()) + ";\n";
  }
  case StmtKind::If: {
    const auto *I = ast_cast<IfStmt>(S);
    std::string Out =
        Pad + "if (" + toString(I->cond()) + ") {\n" +
        biv::frontend::toString(I->thenBody(), Indent + 1) + Pad + "}";
    if (!I->elseBody().empty())
      Out += " else {\n" + biv::frontend::toString(I->elseBody(), Indent + 1) +
             Pad + "}";
    return Out + "\n";
  }
  case StmtKind::Loop: {
    const auto *L = ast_cast<LoopStmt>(S);
    return Pad + "loop " + std::string(L->label()) + " {\n" +
           biv::frontend::toString(L->body(), Indent + 1) + Pad + "}\n";
  }
  case StmtKind::For: {
    const auto *F = ast_cast<ForStmt>(S);
    std::string Out = Pad + "for " + std::string(F->label()) + ": " +
                      std::string(F->var()) + " = " + toString(F->lo()) +
                      (F->isDown() ? " downto " : " to ") + toString(F->hi());
    if (F->step())
      Out += " by " + toString(F->step());
    return Out + " {\n" + biv::frontend::toString(F->body(), Indent + 1) +
           Pad + "}\n";
  }
  case StmtKind::While: {
    const auto *W = ast_cast<WhileStmt>(S);
    return Pad + "while " + std::string(W->label()) + " (" +
           toString(W->cond()) + ") {\n" +
           biv::frontend::toString(W->body(), Indent + 1) + Pad + "}\n";
  }
  case StmtKind::Break:
    return Pad + "break;\n";
  case StmtKind::Return: {
    const auto *R = ast_cast<ReturnStmt>(S);
    if (R->value())
      return Pad + "return " + toString(R->value()) + ";\n";
    return Pad + "return;\n";
  }
  }
  assert(false && "unknown stmt kind");
  return "";
}

std::string biv::frontend::toString(const StmtList &Body, unsigned Indent) {
  std::string Out;
  for (const Stmt *S : Body)
    Out += stmtToString(S, Indent);
  return Out;
}

std::string biv::frontend::toString(const FuncDecl &F) {
  std::string Out = "func " + std::string(F.Name) + "(";
  for (size_t I = 0; I < F.Params.size(); ++I) {
    if (I)
      Out += ", ";
    Out += F.Params[I].Name;
  }
  Out += ") {\n" + toString(F.Body, 1) + "}\n";
  return Out;
}
