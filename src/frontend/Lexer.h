//===- frontend/Lexer.h - Lexer for the loop language -----------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer.  Comments run from '#' to end of line.
///
/// Identifiers are interned as they are scanned: keyword recognition is a
/// symbol-table lookup (the keywords are interned up front), not a string
/// compare chain, and every identifier token carries its Symbol so later
/// stages never touch the spelling.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_FRONTEND_LEXER_H
#define BEYONDIV_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/StringInterner.h"
#include <memory>
#include <string>
#include <vector>

namespace biv {
namespace frontend {

/// Splits a source buffer into tokens; malformed input yields an Error
/// token carrying a message in its Text.
class Lexer {
public:
  /// Lexes into \p Strings (the caller's per-unit interner); identifier
  /// spellings outlive the lexer and the source buffer.
  Lexer(std::string Source, support::StringInterner &Strings);

  /// Convenience form owning a private interner, for standalone use (tests,
  /// tooling).  Token spellings then live only as long as the lexer.
  explicit Lexer(std::string Source);

  /// Lexes and returns the next token.
  Token next();

  /// Lexes the entire buffer (including the trailing EndOfFile token).
  std::vector<Token> lexAll();

  /// The interner receiving this lexer's identifiers.
  support::StringInterner &strings() { return *SI; }

private:
  char peek() const { return Pos < Src.size() ? Src[Pos] : '\0'; }
  char get();
  void skipTrivia();
  Token make(TokenKind K, std::string_view Text = {});
  void seedKeywords();

  /// Backing storage for the single-argument constructor.
  struct OwnedStrings {
    support::Arena A;
    support::StringInterner SI{A};
  };

  std::unique_ptr<OwnedStrings> Owned; ///< Only set for standalone lexers.
  support::StringInterner *SI;
  std::string Src;
  size_t Pos = 0;
  SourceLoc Loc;
  SourceLoc TokenStart;
  /// Keyword symbol -> token kind (keywords are interned first, so their
  /// symbols are small); identifiers map through this to detect keywords.
  support::ArenaVector<TokenKind> KwKinds;
};

} // namespace frontend
} // namespace biv

#endif // BEYONDIV_FRONTEND_LEXER_H
