//===- frontend/Lexer.h - Lexer for the loop language -----------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer.  Comments run from '#' to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_FRONTEND_LEXER_H
#define BEYONDIV_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include <string>
#include <vector>

namespace biv {
namespace frontend {

/// Splits a source buffer into tokens; malformed input yields an Error
/// token carrying a message in its Text.
class Lexer {
public:
  explicit Lexer(std::string Source) : Src(std::move(Source)) {}

  /// Lexes and returns the next token.
  Token next();

  /// Lexes the entire buffer (including the trailing EndOfFile token).
  std::vector<Token> lexAll();

private:
  char peek() const { return Pos < Src.size() ? Src[Pos] : '\0'; }
  char get();
  void skipTrivia();
  Token make(TokenKind K, std::string Text = "");

  std::string Src;
  size_t Pos = 0;
  SourceLoc Loc;
  SourceLoc TokenStart;
};

} // namespace frontend
} // namespace biv

#endif // BEYONDIV_FRONTEND_LEXER_H
