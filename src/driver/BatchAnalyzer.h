//===- driver/BatchAnalyzer.h - Parallel batch analysis ---------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch-analysis engine behind `bivc --batch -jN`: shards a set of
/// sources (whole files, split into top-level functions) across a
/// work-stealing thread pool and runs the full pipeline -- parse, SSA, SCCP,
/// induction-variable classification -- on each unit independently.
///
/// Per-loop summarization is embarrassingly parallel across functions
/// because every unit owns its IR, dominator tree, loop nest, and analysis
/// arena outright; nothing is shared but immutable options.  Results are
/// committed into a pre-sized slot per unit and rendered in input order, so
/// the merged report is byte-identical no matter how many workers ran or how
/// the scheduler interleaved them.
///
/// By default batch mode keeps InductionAnalysis side-effect-free on the IR
/// (MaterializeExitValues off) and skips re-verification, matching the
/// throughput configuration the benchmarks measure.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_DRIVER_BATCHANALYZER_H
#define BEYONDIV_DRIVER_BATCHANALYZER_H

#include "cache/AnalysisCache.h"
#include "ivclass/Pipeline.h"
#include "ivclass/Report.h"
#include "support/Stats.h"
#include <functional>
#include <string>
#include <vector>

namespace biv {
namespace driver {

/// One named source text (a file, or one function split out of a file).
struct SourceInput {
  std::string Name;
  std::string Text;
};

/// Batch switches.
struct BatchOptions {
  /// Worker threads; 1 analyzes serially on the calling thread, 0 picks the
  /// hardware concurrency.
  unsigned Jobs = 1;
  bool RunSCCP = true;
  /// Post-SCCP SSA re-verification (off: the throughput configuration).
  bool VerifyEach = false;
  /// Exit-value materialization mutates the IR; keeping it off makes run()
  /// read-only, which batch mode requires only per-unit but benches rely on.
  bool MaterializeExitValues = false;
  /// Render a classification report per unit (off for pure throughput runs).
  bool Classify = true;
  /// Multi-branch loop summarization (`bivc --batch --summarize`): sample,
  /// conjecture, and prove per-phase closed forms for punted loops.
  bool Summarize = false;
  ivclass::ReportOptions Report;
  /// Content-addressed result cache (`bivc --batch --cache FILE`), or null
  /// to analyze every unit.  Workers probe it concurrently after parsing
  /// (lookup is const); misses are inserted by the driver thread in input
  /// order once the pool drains, so the cache file bytes are deterministic
  /// for any Jobs value.  Failed units are never cached.
  cache::AnalysisCache *Cache = nullptr;
  /// Test-only: runs at the top of every unit, before its pipeline.  Lets
  /// tests inject a throwing task and assert the batch neither deadlocks
  /// nor drops the unit silently.
  std::function<void(const SourceInput &)> PerUnitHook;
};

/// What one unit produced.
struct UnitResult {
  std::string Name;
  bool OK = false;
  std::vector<std::string> Errors;
  std::string ReportText;
  ivclass::InductionAnalysis::Stats Stats;
  ivclass::KindCounts Kinds;
  size_t Instructions = 0;
  size_t Loops = 0;
  /// Observability delta for this unit alone: the worker thread's stats
  /// frame captured before and after the unit's pipeline, subtracted.
  stats::Frame StatsDelta;
};

/// Everything a batch run produced, in input order.
struct BatchResult {
  std::vector<UnitResult> Units;
  ivclass::InductionAnalysis::Stats Stats; ///< aggregate over OK units
  ivclass::KindCounts Kinds;               ///< aggregate over OK units
  size_t TotalInstructions = 0;
  size_t TotalLoops = 0;
  unsigned Failed = 0;
  /// Program-wide stats: per-unit deltas merged in input order.  Counter
  /// values (and span counts) are independent of Jobs; only span durations
  /// vary run to run.
  stats::Frame MergedStats;

  /// Merged human-readable report: per-unit sections in input order plus a
  /// summary footer.  Deterministic across thread counts.
  std::string renderText() const;
};

/// Splits a file that may hold several top-level `func` declarations into
/// one SourceInput per function ("name:funcname").  A file without a `func`
/// keyword comes back unchanged (the parser will diagnose it).
std::vector<SourceInput> splitFunctions(const SourceInput &File);

/// Analyzes every unit of \p Sources (files are split into functions first)
/// with \p Opts.Jobs workers.
BatchResult analyzeBatch(const std::vector<SourceInput> &Sources,
                         const BatchOptions &Opts = BatchOptions());

} // namespace driver
} // namespace biv

#endif // BEYONDIV_DRIVER_BATCHANALYZER_H
