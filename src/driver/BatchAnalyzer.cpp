//===- driver/BatchAnalyzer.cpp - Parallel batch analysis ----------------------===//

#include "driver/BatchAnalyzer.h"
#include "driver/ThreadPool.h"
#include "ir/Printer.h"
#include <cctype>

using namespace biv;
using namespace biv::driver;

//===----------------------------------------------------------------------===//
// Function splitting
//===----------------------------------------------------------------------===//

std::vector<SourceInput>
biv::driver::splitFunctions(const SourceInput &File) {
  const std::string &T = File.Text;
  std::vector<SourceInput> Units;
  size_t UnitStart = std::string::npos;
  std::string UnitName;

  auto flush = [&](size_t End) {
    if (UnitStart == std::string::npos)
      return;
    Units.push_back({File.Name + ":" + UnitName,
                     T.substr(UnitStart, End - UnitStart)});
    UnitStart = std::string::npos;
  };

  int Depth = 0;
  for (size_t I = 0; I < T.size(); ++I) {
    char C = T[I];
    if (C == '#') { // comment to end of line
      while (I < T.size() && T[I] != '\n')
        ++I;
      continue;
    }
    if (C == '{') {
      ++Depth;
      continue;
    }
    if (C == '}') {
      --Depth;
      continue;
    }
    // A top-level `func` keyword starts the next unit.
    if (Depth == 0 && C == 'f' && T.compare(I, 4, "func") == 0 &&
        (I == 0 || (!std::isalnum(unsigned(T[I - 1])) && T[I - 1] != '_')) &&
        I + 4 < T.size() && std::isspace(unsigned(T[I + 4]))) {
      flush(I);
      UnitStart = I;
      size_t P = I + 4;
      while (P < T.size() && std::isspace(unsigned(T[P])))
        ++P;
      UnitName.clear();
      while (P < T.size() &&
             (std::isalnum(unsigned(T[P])) || T[P] == '_'))
        UnitName += T[P++];
      I += 3;
    }
  }
  flush(T.size());

  if (Units.empty())
    return {File}; // no `func` at all; let the parser diagnose it
  if (Units.size() == 1)
    Units.front().Name = File.Name; // common case: one function per file
  return Units;
}

//===----------------------------------------------------------------------===//
// Batch driver
//===----------------------------------------------------------------------===//

BatchResult biv::driver::analyzeBatch(const std::vector<SourceInput> &Sources,
                                      const BatchOptions &Opts) {
  // Shard: files -> functions.  Each function is one unit of work.
  std::vector<SourceInput> Units;
  Units.reserve(Sources.size());
  for (const SourceInput &S : Sources)
    for (SourceInput &U : splitFunctions(S))
      Units.push_back(std::move(U));

  BatchResult R;
  R.Units.resize(Units.size());

  ivclass::PipelineOptions PO;
  PO.RunSCCP = Opts.RunSCCP;
  PO.VerifyEach = Opts.VerifyEach;
  PO.Analysis.MaterializeExitValues = Opts.MaterializeExitValues;
  PO.Analysis.Summarize = Opts.Summarize;

  static const stats::Counter NumHits("cache.hit");
  static const stats::Counter NumMisses("cache.miss");
  static const stats::Counter NumBytes("cache.bytes");
  static const stats::Timer CacheTimer("phase.cache");

  // Only the switches that change result bytes feed the digest; VerifyEach
  // and Jobs cannot alter what a unit produces.
  const uint64_t OptsBits = (Opts.RunSCCP ? 1u : 0u) |
                            (Opts.MaterializeExitValues ? 2u : 0u) |
                            (Opts.Classify ? 4u : 0u) |
                            (Opts.Report.AllValues ? 8u : 0u) |
                            (Opts.Report.NestedTuples ? 16u : 0u) |
                            (Opts.Summarize ? 32u : 0u);

  // Miss results parked per slot; the driver thread commits them to the
  // cache in input order after the pool drains (digest 0 = nothing to add).
  std::vector<std::pair<uint64_t, cache::CacheEntry>> NewEntries(
      Opts.Cache ? Units.size() : 0);

  // Each unit owns its whole pipeline; slots are disjoint, so workers never
  // contend on anything but the queue.
  auto runUnit = [&](size_t I) {
    UnitResult &U = R.Units[I];
    U.Name = Units[I].Name;
    // Delta the worker thread's stats frame around this unit so the batch
    // can merge per-unit contributions in input order, independent of which
    // thread ran what.
    stats::Frame Before = stats::captureFrame();
    try {
      if (Opts.PerUnitHook)
        Opts.PerUnitHook(Units[I]);
      std::vector<std::string> Errors;
      std::optional<ivclass::AnalyzedProgram> P =
          ivclass::parseSource(Units[I].Text, Errors);
      if (!P) {
        U.OK = false;
        U.Errors = std::move(Errors);
        U.StatsDelta = stats::captureFrame() - Before;
        return;
      }
      uint64_t Digest = 0;
      if (Opts.Cache) {
        // The span must close before the hit path captures StatsDelta,
        // or the warm run's phase.cache time lands outside the unit's
        // frame and vanishes from the merged stats.
        const cache::CacheEntry *CE = nullptr;
        {
          stats::ScopedSpan Span(CacheTimer);
          Digest = cache::unitDigest(ir::toString(*P->F), OptsBits);
          CE = Opts.Cache->lookup(Digest);
        }
        if (CE) {
          NumHits.bump();
          NumBytes.bump(CE->ReportText.size());
          // Replay the stored unit's analysis-phase counters so merged
          // counters stay corpus-shaped on a warm run.  Timers are *not*
          // replayed: phase spans must reflect work that actually ran
          // (that is how --stats-json proves the skip).
          for (const auto &[Name, V] : CE->Counters)
            stats::bumpNamedCounter(Name, V);
          U.OK = true;
          U.Stats = CE->Stats;
          U.Kinds = CE->Kinds;
          U.Instructions = size_t(CE->Instructions);
          U.Loops = size_t(CE->Loops);
          U.ReportText = CE->ReportText;
          U.StatsDelta = stats::captureFrame() - Before;
          return;
        }
        NumMisses.bump();
      }
      // Capture after parse + probe: the entry stores only analysis-phase
      // counter deltas, because a hit still parses (to hash) and those
      // frontend counters fire live.
      stats::Frame PostParse = stats::captureFrame();
      ivclass::analyzeParsed(*P, PO);
      U.OK = true;
      U.Stats = P->IA->stats();
      U.Kinds = ivclass::countHeaderPhiKinds(*P->IA);
      U.Instructions = P->F->instructionCount();
      U.Loops = P->LI->loops().size();
      if (Opts.Classify)
        U.ReportText = ivclass::report(*P->IA, &P->Info, Opts.Report);
      if (Opts.Cache) {
        cache::CacheEntry E;
        E.ReportText = U.ReportText;
        E.Stats = U.Stats;
        E.Kinds = U.Kinds;
        E.Instructions = U.Instructions;
        E.Loops = U.Loops;
        E.Counters =
            stats::snapshotFrame(stats::captureFrame() - PostParse).Counters;
        NewEntries[I] = {Digest, std::move(E)};
      }
      U.StatsDelta = stats::captureFrame() - Before;
    } catch (const std::exception &E) {
      // A throwing unit must fail loudly but locally: its siblings finish,
      // the batch reports which unit died, and the driver exits non-zero.
      U.OK = false;
      U.Errors.push_back(std::string("internal error: ") + E.what());
      U.StatsDelta = stats::captureFrame() - Before;
    }
  };

  if (Opts.Jobs == 1) {
    for (size_t I = 0; I < Units.size(); ++I)
      runUnit(I);
  } else {
    ThreadPool Pool(Opts.Jobs);
    for (size_t I = 0; I < Units.size(); ++I)
      Pool.submit([&runUnit, I] { runUnit(I); });
    Pool.wait();
  }

  if (Opts.Cache)
    for (auto &[Digest, E] : NewEntries)
      if (Digest != 0)
        Opts.Cache->insert(Digest, std::move(E));

  for (const UnitResult &U : R.Units) {
    if (!U.OK) {
      ++R.Failed;
      continue;
    }
    R.Stats += U.Stats;
    R.Kinds += U.Kinds;
    R.TotalInstructions += U.Instructions;
    R.TotalLoops += U.Loops;
  }
  // Merge every unit's delta (including failed units, whose frontend
  // diagnostics still count) in input order: element-wise addition is
  // commutative, so the merged frame is identical for any Jobs value.
  for (const UnitResult &U : R.Units)
    R.MergedStats += U.StatsDelta;
  return R;
}

std::string BatchResult::renderText() const {
  std::string Out;
  for (const UnitResult &U : Units) {
    // Summary-only runs leave ReportText empty; a bare section header for
    // every healthy unit would just be noise, so only failures show.
    if (U.OK && U.ReportText.empty())
      continue;
    Out += ";; === " + U.Name + " ===\n";
    if (!U.OK) {
      for (const std::string &E : U.Errors)
        Out += ";; error: " + E + "\n";
      continue;
    }
    Out += U.ReportText;
  }
  Out += ";; === batch summary ===\n";
  Out += ";; units: " + std::to_string(Units.size()) + " (failed " +
         std::to_string(Failed) + "), instructions: " +
         std::to_string(TotalInstructions) + ", loops: " +
         std::to_string(TotalLoops) + "\n";
  Out += ";; header-phi kinds: linear " + std::to_string(Kinds.Linear) +
         ", polynomial " + std::to_string(Kinds.Polynomial) + ", geometric " +
         std::to_string(Kinds.Geometric) + ", wrap-around " +
         std::to_string(Kinds.WrapAround) + ", periodic " +
         std::to_string(Kinds.Periodic) + ", monotonic " +
         std::to_string(Kinds.Monotonic) + ", phase-periodic " +
         std::to_string(Kinds.PhasePeriodic) + ", invariant " +
         std::to_string(Kinds.Invariant) + ", unknown " +
         std::to_string(Kinds.Unknown) + "\n";
  Out += ";; regions: " + std::to_string(Stats.Regions) +
         ", exit values materialized: " +
         std::to_string(Stats.ExitValuesMaterialized) + "\n";
  return Out;
}
