//===- driver/BatchAnalyzer.cpp - Parallel batch analysis ----------------------===//

#include "driver/BatchAnalyzer.h"
#include "driver/ThreadPool.h"
#include <cctype>

using namespace biv;
using namespace biv::driver;

//===----------------------------------------------------------------------===//
// Function splitting
//===----------------------------------------------------------------------===//

std::vector<SourceInput>
biv::driver::splitFunctions(const SourceInput &File) {
  const std::string &T = File.Text;
  std::vector<SourceInput> Units;
  size_t UnitStart = std::string::npos;
  std::string UnitName;

  auto flush = [&](size_t End) {
    if (UnitStart == std::string::npos)
      return;
    Units.push_back({File.Name + ":" + UnitName,
                     T.substr(UnitStart, End - UnitStart)});
    UnitStart = std::string::npos;
  };

  int Depth = 0;
  for (size_t I = 0; I < T.size(); ++I) {
    char C = T[I];
    if (C == '#') { // comment to end of line
      while (I < T.size() && T[I] != '\n')
        ++I;
      continue;
    }
    if (C == '{') {
      ++Depth;
      continue;
    }
    if (C == '}') {
      --Depth;
      continue;
    }
    // A top-level `func` keyword starts the next unit.
    if (Depth == 0 && C == 'f' && T.compare(I, 4, "func") == 0 &&
        (I == 0 || (!std::isalnum(unsigned(T[I - 1])) && T[I - 1] != '_')) &&
        I + 4 < T.size() && std::isspace(unsigned(T[I + 4]))) {
      flush(I);
      UnitStart = I;
      size_t P = I + 4;
      while (P < T.size() && std::isspace(unsigned(T[P])))
        ++P;
      UnitName.clear();
      while (P < T.size() &&
             (std::isalnum(unsigned(T[P])) || T[P] == '_'))
        UnitName += T[P++];
      I += 3;
    }
  }
  flush(T.size());

  if (Units.empty())
    return {File}; // no `func` at all; let the parser diagnose it
  if (Units.size() == 1)
    Units.front().Name = File.Name; // common case: one function per file
  return Units;
}

//===----------------------------------------------------------------------===//
// Batch driver
//===----------------------------------------------------------------------===//

BatchResult biv::driver::analyzeBatch(const std::vector<SourceInput> &Sources,
                                      const BatchOptions &Opts) {
  // Shard: files -> functions.  Each function is one unit of work.
  std::vector<SourceInput> Units;
  Units.reserve(Sources.size());
  for (const SourceInput &S : Sources)
    for (SourceInput &U : splitFunctions(S))
      Units.push_back(std::move(U));

  BatchResult R;
  R.Units.resize(Units.size());

  ivclass::PipelineOptions PO;
  PO.RunSCCP = Opts.RunSCCP;
  PO.VerifyEach = Opts.VerifyEach;
  PO.Analysis.MaterializeExitValues = Opts.MaterializeExitValues;

  // Each unit owns its whole pipeline; slots are disjoint, so workers never
  // contend on anything but the queue.
  auto runUnit = [&](size_t I) {
    UnitResult &U = R.Units[I];
    U.Name = Units[I].Name;
    // Delta the worker thread's stats frame around this unit so the batch
    // can merge per-unit contributions in input order, independent of which
    // thread ran what.
    stats::Frame Before = stats::captureFrame();
    std::vector<std::string> Errors;
    std::optional<ivclass::AnalyzedProgram> P =
        ivclass::analyzeSource(Units[I].Text, Errors, PO);
    if (!P) {
      U.OK = false;
      U.Errors = std::move(Errors);
      U.StatsDelta = stats::captureFrame() - Before;
      return;
    }
    U.OK = true;
    U.Stats = P->IA->stats();
    U.Kinds = ivclass::countHeaderPhiKinds(*P->IA);
    U.Instructions = P->F->instructionCount();
    U.Loops = P->LI->loops().size();
    if (Opts.Classify)
      U.ReportText = ivclass::report(*P->IA, &P->Info, Opts.Report);
    U.StatsDelta = stats::captureFrame() - Before;
  };

  if (Opts.Jobs == 1) {
    for (size_t I = 0; I < Units.size(); ++I)
      runUnit(I);
  } else {
    ThreadPool Pool(Opts.Jobs);
    for (size_t I = 0; I < Units.size(); ++I)
      Pool.submit([&runUnit, I] { runUnit(I); });
    Pool.wait();
  }

  for (const UnitResult &U : R.Units) {
    if (!U.OK) {
      ++R.Failed;
      continue;
    }
    R.Stats += U.Stats;
    R.Kinds += U.Kinds;
    R.TotalInstructions += U.Instructions;
    R.TotalLoops += U.Loops;
  }
  // Merge every unit's delta (including failed units, whose frontend
  // diagnostics still count) in input order: element-wise addition is
  // commutative, so the merged frame is identical for any Jobs value.
  for (const UnitResult &U : R.Units)
    R.MergedStats += U.StatsDelta;
  return R;
}

std::string BatchResult::renderText() const {
  std::string Out;
  for (const UnitResult &U : Units) {
    // Summary-only runs leave ReportText empty; a bare section header for
    // every healthy unit would just be noise, so only failures show.
    if (U.OK && U.ReportText.empty())
      continue;
    Out += ";; === " + U.Name + " ===\n";
    if (!U.OK) {
      for (const std::string &E : U.Errors)
        Out += ";; error: " + E + "\n";
      continue;
    }
    Out += U.ReportText;
  }
  Out += ";; === batch summary ===\n";
  Out += ";; units: " + std::to_string(Units.size()) + " (failed " +
         std::to_string(Failed) + "), instructions: " +
         std::to_string(TotalInstructions) + ", loops: " +
         std::to_string(TotalLoops) + "\n";
  Out += ";; header-phi kinds: linear " + std::to_string(Kinds.Linear) +
         ", polynomial " + std::to_string(Kinds.Polynomial) + ", geometric " +
         std::to_string(Kinds.Geometric) + ", wrap-around " +
         std::to_string(Kinds.WrapAround) + ", periodic " +
         std::to_string(Kinds.Periodic) + ", monotonic " +
         std::to_string(Kinds.Monotonic) + ", invariant " +
         std::to_string(Kinds.Invariant) + ", unknown " +
         std::to_string(Kinds.Unknown) + "\n";
  Out += ";; regions: " + std::to_string(Stats.Regions) +
         ", exit values materialized: " +
         std::to_string(Stats.ExitValuesMaterialized) + "\n";
  return Out;
}
