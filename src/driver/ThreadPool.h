//===- driver/ThreadPool.h - Work-stealing thread pool ----------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the batch-analysis driver.  Each
/// worker owns a deque; submissions are distributed round-robin, workers pop
/// their own queue LIFO (cache-warm) and steal FIFO from the others when it
/// runs dry.  Tasks are independent function/loop-nest analyses, so there is
/// no dependency tracking -- submit() then wait().
///
/// Exceptions thrown by tasks are captured; the first one is rethrown from
/// wait(), after all tasks have drained (a failed unit never aborts its
/// siblings).
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_DRIVER_THREADPOOL_H
#define BEYONDIV_DRIVER_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace biv {
namespace driver {

class ThreadPool {
public:
  /// Spawns \p Threads workers; 0 picks defaultThreadCount().
  explicit ThreadPool(unsigned Threads = 0);

  /// Drains outstanding tasks, then joins the workers.  Pending exceptions
  /// that were never collected by wait() are dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues \p Task.  Safe from any thread, including pool workers.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any of them raised (if any).  The pool stays usable
  /// afterwards.
  void wait();

  unsigned threadCount() const { return unsigned(Workers.size()); }

  /// Hardware concurrency, at least 1.
  static unsigned defaultThreadCount();

private:
  struct WorkerQueue {
    std::mutex M;
    std::deque<std::function<void()>> Q;
  };

  bool popTask(unsigned Self, std::function<void()> &Task);
  void workerLoop(unsigned Self);

  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  std::mutex WaitM;
  std::condition_variable WorkCV; ///< workers sleep here
  std::condition_variable IdleCV; ///< wait() sleeps here

  std::atomic<size_t> Queued{0};   ///< tasks sitting in some queue
  std::atomic<size_t> InFlight{0}; ///< queued + currently running
  std::atomic<unsigned> NextQueue{0};
  std::atomic<bool> Stop{false};

  std::mutex ErrM;
  std::exception_ptr FirstError;
};

} // namespace driver
} // namespace biv

#endif // BEYONDIV_DRIVER_THREADPOOL_H
