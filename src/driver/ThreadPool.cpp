//===- driver/ThreadPool.cpp - Work-stealing thread pool -----------------------===//

#include "driver/ThreadPool.h"
#include <algorithm>

using namespace biv;
using namespace biv::driver;

unsigned ThreadPool::defaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = defaultThreadCount();
  Queues.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  Stop.store(true);
  {
    // Empty critical section: a worker between its predicate check and its
    // wait() now either sees Stop or receives the notify below.
    std::lock_guard<std::mutex> L(WaitM);
  }
  WorkCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  unsigned Qi = NextQueue.fetch_add(1, std::memory_order_relaxed) %
                unsigned(Queues.size());
  // Count the task in-flight *before* it becomes visible in a queue: a
  // worker that is already awake scans the queues directly and may pop and
  // finish the task immediately, and its decrement must never observe the
  // counters at zero (the underflow would wedge wait() forever and skip the
  // idle notification).
  InFlight.fetch_add(1, std::memory_order_relaxed);
  Queued.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> L(Queues[Qi]->M);
    Queues[Qi]->Q.push_back(std::move(Task));
  }
  {
    std::lock_guard<std::mutex> L(WaitM);
  }
  WorkCV.notify_one();
}

bool ThreadPool::popTask(unsigned Self, std::function<void()> &Task) {
  // Own queue first, newest task (LIFO keeps the submitter's data warm) ...
  {
    WorkerQueue &Mine = *Queues[Self];
    std::lock_guard<std::mutex> L(Mine.M);
    if (!Mine.Q.empty()) {
      Task = std::move(Mine.Q.back());
      Mine.Q.pop_back();
      return true;
    }
  }
  // ... then steal the oldest task from anyone else (FIFO spreads the
  // largest remaining chunks of work).
  for (unsigned Off = 1; Off < Queues.size(); ++Off) {
    WorkerQueue &Other = *Queues[(Self + Off) % Queues.size()];
    std::lock_guard<std::mutex> L(Other.M);
    if (!Other.Q.empty()) {
      Task = std::move(Other.Q.front());
      Other.Q.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned Self) {
  for (;;) {
    std::function<void()> Task;
    if (!popTask(Self, Task)) {
      std::unique_lock<std::mutex> L(WaitM);
      WorkCV.wait(L, [this] {
        return Stop.load() || Queued.load(std::memory_order_acquire) > 0;
      });
      if (Stop.load() && Queued.load() == 0)
        return;
      continue;
    }
    Queued.fetch_sub(1, std::memory_order_relaxed);
    try {
      Task();
    } catch (...) {
      std::lock_guard<std::mutex> L(ErrM);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    if (InFlight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> L(WaitM);
      IdleCV.notify_all();
    }
  }
}

void ThreadPool::wait() {
  {
    std::unique_lock<std::mutex> L(WaitM);
    IdleCV.wait(L, [this] { return InFlight.load() == 0; });
  }
  std::exception_ptr E;
  {
    std::lock_guard<std::mutex> L(ErrM);
    std::swap(E, FirstError);
  }
  if (E)
    std::rethrow_exception(E);
}
