//===- fuzz/Fuzzer.h - Differential fuzzing campaign driver -----*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives a whole campaign: generate N seeded programs, run the differential
/// oracle on each, diff `--batch -j1` against `-jN` output over the fuzzed
/// corpus (byte identity), and delta-minimize every failure before
/// reporting.  This is the engine behind `bivc --fuzz N --seed S` and the
/// `fuzz_test` ctest smoke.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_FUZZ_FUZZER_H
#define BEYONDIV_FUZZ_FUZZER_H

#include "fuzz/Oracle.h"
#include "fuzz/ProgramGen.h"
#include <cstdint>
#include <string>
#include <vector>

namespace biv {
namespace fuzz {

struct FuzzOptions {
  /// Programs to generate and check.
  unsigned Count = 500;
  /// Campaign seed; program i runs under an LCG stream derived from
  /// (Seed, i), so any failure replays from (Seed, i) alone.
  uint64_t Seed = 1;
  /// Delta-minimize failures before reporting.
  bool Minimize = false;
  /// Stop after this many failing programs.
  unsigned MaxFailures = 10;
  /// Worker count diffed against -j1 in the batch determinism check
  /// (0 disables the check).
  unsigned BatchJobs = 8;
  /// Run the per-program cache oracle (cold + warm analysis through an
  /// in-memory AnalysisCache, reports diffed byte-for-byte) on *every*
  /// program.  Off: a random ~1/8 subset, chosen per program seed, still
  /// exercises it, so the flip replays deterministically.
  bool CacheOracleAlways = false;

  GenOptions Gen;
  OracleOptions Oracle;
};

/// One failing program, minimized when requested.
struct FuzzFailure {
  uint64_t ProgramSeed = 0;
  std::string Source;
  std::vector<Mismatch> Mismatches;
  /// Filled when FuzzOptions::Minimize is set.
  std::string MinimizedSource;
  unsigned MinimizedStatements = 0;
  std::vector<Mismatch> MinimizedMismatches;
};

struct FuzzResult {
  unsigned Programs = 0;
  CheckCounts Checks;
  std::vector<FuzzFailure> Failures;

  /// Batch determinism diff over the fuzzed corpus.
  bool BatchChecked = false;
  bool BatchDeterministic = true;

  /// Cache cold/warm byte-identity: per-program oracle runs plus one
  /// corpus-level no-cache vs mixed (half-primed) vs fully-warm diff.
  bool CacheChecked = false;
  bool CacheDeterministic = true;
  unsigned CacheOracleRuns = 0;

  bool ok() const {
    return Failures.empty() && BatchDeterministic && CacheDeterministic;
  }

  /// Human-readable campaign report (the `bivc --fuzz` output).
  std::string renderText() const;
};

/// Runs one campaign.
FuzzResult runFuzz(const FuzzOptions &Opts = {});

} // namespace fuzz
} // namespace biv

#endif // BEYONDIV_FUZZ_FUZZER_H
