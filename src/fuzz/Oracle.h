//===- fuzz/Oracle.h - Differential interpreter oracle ----------*- C++ -*-===//
//
// Part of the BeyondIV project: a reproduction of Michael Wolfe,
// "Beyond Induction Variables", PLDI 1992.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracle behind `bivc --fuzz`: push one program through
/// parse -> SSA -> classification, execute it with interp::Interpreter, and
/// check every claim the classifier emitted against the observed trace.
///
/// Checks, per top-level loop:
///  - closed forms (invariant/linear/polynomial/geometric) reproduce the
///    observed sequence at every iteration h = 0..T, with argument symbols
///    and once-computed loop-external instructions bound to their runtime
///    values;
///  - wrap-around variables match their inner form shifted by `order` after
///    the first `order` iterations (tail checks for periodic/monotonic
///    inners included);
///  - periodic members follow RingInits[(phase + h) mod period] through the
///    PScale/POffset affine image;
///  - monotonic claims hold with the stated direction and strictness;
///  - countable trip counts equal observed header visits minus one, and
///    multi-exit MaxCount bounds them.
///
/// Structural diffs, per program:
///  - behaviour preservation: the analyzed (SCCP-folded, exit-value
///    materialized) function returns the same value and touches the same
///    array cells in the same order as a plain parse -> SSA build;
///  - baseline subsumption: every variable the classical [ACK81]-style
///    algorithm proves a linear IV must classify as linear (or invariant)
///    under the unified analysis.
///
/// All checks are library calls returning structured mismatches -- no test
/// framework involved -- so the CLI fuzzer, the minimizer predicate, and the
/// gtest smoke all share one implementation.
///
//===----------------------------------------------------------------------===//

#ifndef BEYONDIV_FUZZ_ORACLE_H
#define BEYONDIV_FUZZ_ORACLE_H

#include <cstdint>
#include <string>
#include <vector>

namespace biv {
namespace fuzz {

/// Switches for one oracle run.
struct OracleOptions {
  /// Argument values for the executions (programs take one parameter `n`;
  /// extra values are ignored by functions with fewer parameters).
  std::vector<int64_t> Args = {6};
  /// Step budget per execution.
  uint64_t MaxSteps = 4u << 20;
  /// Seed array A's cells [-32, 64] with mixed-sign values derived from
  /// this seed so data-dependent branches take both sides.
  uint64_t ArraySeed = 1;
  /// Check classical-IV subsumption (classifier superset of baseline).
  bool CheckBaseline = true;
  /// Run the multi-branch summarizer (ivclass --summarize) in the analyzed
  /// build, so its phase-periodic claims are generated and checked.
  bool Summarize = false;
  /// Per-value claims (closed form, wrap-around, periodic, monotonic) are
  /// statements over mathematical integers, while execution wraps in
  /// two's-complement int64.  When an observed sequence leaves this
  /// magnitude bound the two semantics may legitimately diverge (e.g. a
  /// geometric update doubling past 2^63), so those claims are skipped --
  /// without counting toward CheckCounts.  Structural checks (behavior,
  /// trip count, baseline) stay unguarded.
  int64_t ClaimValueBound = int64_t(1) << 31;

  /// Test-only fault injection: skews every *linear* closed-form prediction
  /// by `Skew * h`, making correct classifications look wrong.  Exercises
  /// the mismatch reporting and minimization path end to end; must be 0 in
  /// real runs.
  int64_t InjectLinearSkew = 0;
};

/// One violated claim.
struct Mismatch {
  /// Which oracle fired: "closed-form", "partial", "wrap-around",
  /// "periodic", "monotonic", "phase-periodic", "trip-count", "behavior",
  /// "baseline", "execution".
  std::string Check;
  std::string Loop;     ///< Loop name, when the claim is loop-relative.
  std::string Value;    ///< IR value name the claim is about.
  std::string Claim;    ///< The classifier's claim, rendered.
  std::string Observed; ///< What execution actually produced.

  std::string str() const;
};

/// Per-category counts of claims actually checked (fuzz campaigns assert
/// these stay non-trivial, so grammar drift cannot silently disable an
/// oracle).
struct CheckCounts {
  unsigned ClosedForm = 0;
  /// Closed forms with a polynomial coefficient on an exponential term
  /// (h*2^h): the c-finite extension.  Disjoint from ClosedForm.
  unsigned CFinite = 0;
  /// Exact forms projected out of unsolvable regions (non-phi members
  /// carrying the Partial flag).
  unsigned Partial = 0;
  unsigned WrapAround = 0;
  unsigned Periodic = 0;
  unsigned Monotonic = 0;
  /// Per-phase closed forms proved by the multi-branch summarizer
  /// (value(h) = PhaseForms[h mod k](h div k)).  Only fires with
  /// OracleOptions::Summarize on.
  unsigned PhasePeriodic = 0;
  unsigned TripCount = 0;
  unsigned Behavior = 0;
  unsigned Baseline = 0;

  unsigned total() const {
    return ClosedForm + CFinite + Partial + WrapAround + Periodic +
           Monotonic + PhasePeriodic + TripCount + Behavior + Baseline;
  }
  CheckCounts &operator+=(const CheckCounts &O) {
    ClosedForm += O.ClosedForm;
    CFinite += O.CFinite;
    Partial += O.Partial;
    WrapAround += O.WrapAround;
    Periodic += O.Periodic;
    Monotonic += O.Monotonic;
    PhasePeriodic += O.PhasePeriodic;
    TripCount += O.TripCount;
    Behavior += O.Behavior;
    Baseline += O.Baseline;
    return *this;
  }
};

/// Everything one oracle run produced.
struct OracleResult {
  /// False when the frontend rejected the program (not a mismatch: the
  /// fuzzer's generator only emits valid programs, but the minimizer
  /// probes invalid candidates all the time).
  bool ParseOK = true;
  std::vector<std::string> FrontendErrors;

  CheckCounts Checks;
  std::vector<Mismatch> Mismatches;

  /// Clean = parsed, executed, and every checked claim held.
  bool clean() const { return ParseOK && Mismatches.empty(); }
};

/// Runs the full differential check on one program.
OracleResult checkProgram(const std::string &Source,
                          const OracleOptions &Opts = {});

} // namespace fuzz
} // namespace biv

#endif // BEYONDIV_FUZZ_ORACLE_H
